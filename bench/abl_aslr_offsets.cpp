// Ablation C — physical-layout randomization vs offset learning (paper
// §VI point 3). Two results:
//   1. the live-window attack survives any randomization (translations
//      are resolved before termination);
//   2. the post-mortem pool-scan attack is defeated by randomized frame
//      placement, because reconstruction relies on VA-contiguity of the
//      physical image of the heap.
#include "bench_common.h"

#include "defense/presets.h"

namespace {

using namespace msa;

attack::ScenarioConfig base_config(bool post_mortem) {
  attack::ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();
  cfg.image_width = 64;
  cfg.image_height = 64;
  cfg.post_mortem_scan = post_mortem;
  if (post_mortem) cfg.scan_bytes = 2ULL * 1024 * 1024;
  return cfg;
}

void run_row(const char* label, mem::PlacementPolicy placement,
             bool post_mortem, std::uint64_t seed) {
  attack::ScenarioConfig cfg = base_config(post_mortem);
  cfg.system.placement = placement;
  cfg.system.seed = seed;
  const attack::ScenarioResult r = attack::run_scenario(cfg);
  std::printf("%-14s %-12s %9s %11s %12.4f\n", label,
              post_mortem ? "pool-scan" : "live-window",
              r.denied ? "denied" : "ran",
              r.model_identified_correctly ? "identified" : "missed",
              r.pixel_match);
}

void print_table() {
  bench::print_header(
      "Abl. C", "physical placement randomization vs both attack modes");
  std::printf("%-14s %-12s %9s %11s %12s\n", "placement", "attack-mode",
              "status", "model-id", "pixel-match");
  for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    run_row("sequential", mem::PlacementPolicy::kSequentialLifo, false, seed);
    run_row("randomized", mem::PlacementPolicy::kRandomized, false, seed);
    run_row("sequential", mem::PlacementPolicy::kSequentialLifo, true, seed);
    run_row("randomized", mem::PlacementPolicy::kRandomized, true, seed);
  }
  std::puts("\nexpected shape: only the (randomized, pool-scan) rows lose the");
  std::puts("image; string-based model-id may still succeed there because");
  std::puts("each metadata string sits within a single page.\n");
}

void BM_LiveAttackSequential(benchmark::State& state) {
  const auto cfg = base_config(false);
  for (auto _ : state) benchmark::DoNotOptimize(attack::run_scenario(cfg));
}
BENCHMARK(BM_LiveAttackSequential);

void BM_PoolScanSequential(benchmark::State& state) {
  const auto cfg = base_config(true);
  for (auto _ : state) benchmark::DoNotOptimize(attack::run_scenario(cfg));
}
BENCHMARK(BM_PoolScanSequential);

void BM_PoolScanRandomized(benchmark::State& state) {
  auto cfg = base_config(true);
  cfg.system.placement = mem::PlacementPolicy::kRandomized;
  for (auto _ : state) benchmark::DoNotOptimize(attack::run_scenario(cfg));
}
BENCHMARK(BM_PoolScanRandomized);

}  // namespace

MSA_BENCH_MAIN(print_table)
