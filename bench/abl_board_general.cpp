// Ablation E — generalizability across boards (paper §I-C): the attack is
// demonstrated on the ZCU104 and re-verified on the ZCU102. Both board
// profiles run the full scenario.
#include "bench_common.h"

namespace {

using namespace msa;

attack::ScenarioConfig config_for(const os::SystemConfig& board) {
  attack::ScenarioConfig cfg;
  cfg.system = board;
  cfg.image_width = 64;
  cfg.image_height = 64;
  return cfg;
}

void print_table() {
  bench::print_header("Abl. E", "board generalizability: ZCU104 vs ZCU102");
  std::printf("%-10s %10s %9s %11s %12s %10s\n", "board", "dram", "status",
              "model-id", "pixel-match", "deep-id");
  for (const auto& board :
       {os::SystemConfig::zcu104(), os::SystemConfig::zcu102()}) {
    const attack::ScenarioResult r = attack::run_scenario(config_for(board));
    std::printf("%-10s %7llu GiB %9s %11s %12.4f %10s\n",
                board.board.board_name.c_str(),
                static_cast<unsigned long long>(board.board.size >> 30),
                r.denied ? "denied" : "ran",
                r.model_identified_correctly ? "identified" : "missed",
                r.pixel_match,
                r.report.deep_match ? "yes" : "no");
  }
  std::puts("\nexpected shape: identical full success on both boards — the");
  std::puts("vulnerability is architectural, not board-specific.\n");
}

void BM_FullAttackZcu104(benchmark::State& state) {
  const auto cfg = config_for(os::SystemConfig::zcu104());
  for (auto _ : state) benchmark::DoNotOptimize(attack::run_scenario(cfg));
}
BENCHMARK(BM_FullAttackZcu104);

void BM_FullAttackZcu102(benchmark::State& state) {
  const auto cfg = config_for(os::SystemConfig::zcu102());
  for (auto _ : state) benchmark::DoNotOptimize(attack::run_scenario(cfg));
}
BENCHMARK(BM_FullAttackZcu102);

}  // namespace

MSA_BENCH_MAIN(print_table)
