// Ablation — campaign engine scaling. Two questions the ROADMAP asks the
// numbers for: how do cells/second scale with worker-thread count, and
// what does streaming every trial/cell into the durable store cost over
// the in-memory sweep? Regressions in either show up here before they
// show up in a week-long production sweep.
#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "campaign/grid.h"
#include "campaign/runner.h"
#include "persist/campaign_store.h"
#include "persist/lease_log.h"

namespace {

using namespace msa;

attack::ScenarioConfig base_config() {
  attack::ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();  // fast trials
  cfg.image_width = 48;
  cfg.image_height = 48;
  return cfg;
}

/// 2 defenses x 2 delays x 2 scrubbers = 8 cells, the same shape the
/// campaign tests sweep.
campaign::GridBuilder bench_grid() {
  campaign::GridBuilder grid{base_config()};
  grid.defenses({"baseline", "zero_on_free"})
      .attack_delays_s({0.0, 5.0})
      .scrubber_rates({0.0, 512.0 * 1024});
  return grid;
}

/// Defense-matrix-shaped grid for the profile-cache series: 5 defenses x
/// 2 delays = 10 cells over one (model, dims, placement) profile key, so
/// a multi-trial sweep reuses the key heavily — the campaign shape the
/// cross-cell cache exists for.
campaign::GridBuilder cache_grid() {
  // The production sweep shape, not the test_small fixture: the
  // campaign_sweep default board (zcu104) and image geometry, over the
  // paper's access-control defense family plus the vulnerable baseline.
  // On this board the uncached offline phase pays for a full twin
  // PetaLinuxSystem + model build + marker scrape per trial.
  attack::ScenarioConfig cfg;
  cfg.image_width = 96;
  cfg.image_height = 96;
  campaign::GridBuilder grid{cfg};
  grid.defenses({"baseline", "proc_owner_only", "dbg_owner_only",
                 "dbg_disabled", "fw_owner_residue"})
      .attack_delays_s({0.0, 5.0});
  return grid;
}

/// Skewed-cost grid for the scheduler comparison: 3 heavy cells
/// (resnet50 on the full zcu104 board at 96x96) seated on the indices
/// that static `--shard I/3` hands to ONE worker (0, 3, 6), padded with
/// 6 light cells (squeezenet on the small test board at 48x48). The
/// worst case for a static partition — one shard owns every expensive
/// cell — and exactly the shape work-stealing exists to fix.
std::vector<campaign::CampaignCell> skewed_cells() {
  attack::ScenarioConfig heavy_base;
  heavy_base.image_width = 96;
  heavy_base.image_height = 96;
  campaign::GridBuilder heavy_grid{heavy_base};
  heavy_grid.models({"resnet50_pt"}).attack_delays_s({0.0, 5.0, 60.0});

  campaign::GridBuilder light_grid{base_config()};
  light_grid.models({"squeezenet_pt"})
      .attack_delays_s({0.0, 5.0, 60.0})
      .scrubber_rates({0.0, 512.0 * 1024});

  const auto heavy = heavy_grid.build();  // 3 cells
  const auto light = light_grid.build();  // 6 cells
  std::vector<campaign::CampaignCell> cells;
  cells.reserve(heavy.size() + light.size());
  std::size_t h = 0;
  std::size_t l = 0;
  for (std::size_t i = 0; i < heavy.size() + light.size(); ++i) {
    cells.push_back(i % 3 == 0 && h < heavy.size() ? heavy[h++] : light[l++]);
    cells.back().index = i;
  }
  return cells;
}

campaign::CampaignOptions one_thread_two_trials() {
  campaign::CampaignOptions options;
  options.threads = 1;
  options.trials_per_cell = 2;
  // Per-trial re-profiling keeps a cell's cost proportional to its trial
  // count wherever it runs. (A shared profile cache would make a heavy
  // cell's cost depend on which worker runs it — profiling is per
  // (worker, model-key) — muddying a scheduler A/B into a cache A/B.)
  options.share_profiles = false;
  return options;
}

void print_intro() {
  bench::print_header("Abl. campaign scaling",
                      "cells/second vs threads; store & profiling overhead");
  std::puts("SweepThreads/N: one 8-cell sweep on N workers (items = cells).");
  std::puts("SweepInMemory vs SweepWithStore: identical sweep, the latter");
  std::puts("streaming per-trial + per-cell records to an on-disk store.");
  std::puts("SweepProfileCache/1 vs /0: 4-trial defense-matrix sweep with the");
  std::puts("shared profile cache on vs re-profiling a twin board per trial.");
  std::puts("SweepStaticShards vs SweepWorkStealing: 3 single-thread workers");
  std::puts("over a 9-cell skewed-cost grid whose heavy cells all land in one");
  std::puts("static shard; the lease scheduler redistributes them (makespan).\n");
}

void BM_SweepThreads(benchmark::State& state) {
  campaign::CampaignOptions options;
  options.threads = static_cast<unsigned>(state.range(0));
  options.trials_per_cell = 1;
  campaign::CampaignRunner runner{options};
  const auto cells = bench_grid().build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(cells));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cells.size()));
}
// UseRealTime: the work happens on pool threads, so wall clock — not the
// calling thread's CPU time — is what cells/second must be charged to.
BENCHMARK(BM_SweepThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SweepInMemory(benchmark::State& state) {
  campaign::CampaignOptions options;
  options.threads = 4;
  options.trials_per_cell = 2;
  campaign::CampaignRunner runner{options};
  const auto cells = bench_grid().build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(cells));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cells.size()));
}
BENCHMARK(BM_SweepInMemory)->Unit(benchmark::kMillisecond)->UseRealTime();

/// The ROADMAP's cross-board-batching item, measured: cells/second with
/// the cross-cell profile cache (Arg 1) vs per-trial re-profiling (Arg 0)
/// on a grid whose 40 trials share one profile key. The cached runner
/// keeps its cache across iterations, so this reports the steady-state
/// win of a long campaign, not the cold first cell.
void BM_SweepProfileCache(benchmark::State& state) {
  campaign::CampaignOptions options;
  options.threads = 4;
  options.trials_per_cell = 4;
  options.share_profiles = state.range(0) != 0;
  campaign::CampaignRunner runner{options};
  const auto cells = cache_grid().build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(cells));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cells.size()));
}
BENCHMARK(BM_SweepProfileCache)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SweepWithStore(benchmark::State& state) {
  campaign::CampaignOptions options;
  options.threads = 4;
  options.trials_per_cell = 2;
  campaign::CampaignRunner runner{options};
  const campaign::GridBuilder grid = bench_grid();
  const auto cells = grid.build();

  persist::StoreManifest manifest;
  manifest.grid_fingerprint = grid.fingerprint();
  manifest.grid_cells = grid.full_size();
  manifest.trials_per_cell = options.trials_per_cell;
  manifest.trial_salt = options.trial_salt;

  const std::string path =
      (std::filesystem::temp_directory_path() / "abl_campaign_scaling.store")
          .string();
  for (auto _ : state) {
    // A fresh store each iteration: the cost measured includes the
    // manifest write, per-trial streaming and the per-cell flushes.
    std::filesystem::remove(path);
    persist::CampaignStore store{path, manifest,
                                 persist::CampaignStore::Mode::kCreate};
    benchmark::DoNotOptimize(runner.run(cells, store));
  }
  std::filesystem::remove(path);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cells.size()));
}
BENCHMARK(BM_SweepWithStore)->Unit(benchmark::kMillisecond)->UseRealTime();

/// Calibrated sequential cost of one heavy and one light cell, measured
/// once and cached: the weights behind the straggler_share counter.
struct SkewWeights {
  double heavy_ms = 0.0;
  double light_ms = 0.0;
};
const SkewWeights& skew_weights() {
  static const SkewWeights weights = [] {
    const auto cells = skewed_cells();
    campaign::CampaignRunner runner{one_thread_two_trials()};
    SkewWeights w;
    const auto time_one = [&](const campaign::CampaignCell& cell) {
      const auto t0 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(
          runner.run(std::vector<campaign::CampaignCell>{cell}));
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
          .count();
    };
    w.heavy_ms = time_one(cells[0]);  // index 0: heavy by construction
    w.light_ms = time_one(cells[1]);
    return w;
  }();
  return weights;
}

/// Weighted share of the whole grid's work carried by the most-loaded
/// worker: the schedule-quality number. 1/3 is a perfect 3-worker
/// balance; the skewed grid's static partition is pinned near
/// 3*heavy/(3*heavy + 6*light) regardless of hardware. (The wall-clock
/// makespan column only separates the two schedulers when real cores
/// are available — on a 1-core container both arms serialize to the
/// total work, and the lease arm's scan/backoff overhead shows up
/// instead. The CI bench job runs on multi-core runners.)
double straggler_share(const std::vector<campaign::SweepReport>& per_worker) {
  const SkewWeights& w = skew_weights();
  // Each grid cell is attributed once (first report wins): a lease race
  // can leave a forfeited duplicate in a second worker's local report,
  // and double-counting it would both inflate the denominator and smear
  // the straggler's load — the share must stay comparable to the static
  // arm, whose partition cannot duplicate.
  std::set<std::uint64_t> attributed;
  double total = 0.0;
  double worst = 0.0;
  for (const campaign::SweepReport& report : per_worker) {
    double load = 0.0;
    for (const campaign::CellStats& cell : report.cells) {
      if (!attributed.insert(cell.index).second) continue;
      load += cell.index % 3 == 0 ? w.heavy_ms : w.light_ms;
    }
    total += load;
    worst = std::max(worst, load);
  }
  return total > 0.0 ? worst / total : 0.0;
}

/// Baseline for the scheduler comparison: the static `--shard I/3`
/// partition. Three single-thread workers start together, each bound to
/// its index%3 slice; the measured makespan is the slowest shard — the
/// one that drew every heavy cell.
void BM_SweepStaticShards(benchmark::State& state) {
  const auto cells = skewed_cells();
  std::vector<std::vector<campaign::CampaignCell>> shards(3);
  for (const campaign::CampaignCell& cell : cells) {
    shards[cell.index % 3].push_back(cell);
  }
  double share = 0.0;
  for (auto _ : state) {
    std::vector<campaign::SweepReport> reports(shards.size());
    std::vector<std::thread> workers;
    workers.reserve(shards.size());
    for (std::size_t s = 0; s < shards.size(); ++s) {
      workers.emplace_back([&, s] {
        campaign::CampaignRunner runner{one_thread_two_trials()};
        reports[s] = runner.run(shards[s]);
      });
    }
    for (std::thread& t : workers) t.join();
    share = straggler_share(reports);
  }
  state.counters["straggler_share"] = share;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cells.size()));
}
BENCHMARK(BM_SweepStaticShards)->Unit(benchmark::kMillisecond)->UseRealTime();

/// The same grid and the same three single-thread workers, but leasing
/// cells through a shared store directory instead of a fixed partition:
/// whoever finishes its light cells steals the straggler's remaining
/// work. Includes every lease-log append/scan, so the win shown is net
/// of the scheduler's own I/O.
void BM_SweepWorkStealing(benchmark::State& state) {
  const auto cells = skewed_cells();
  const campaign::CampaignOptions options = one_thread_two_trials();
  persist::StoreManifest manifest;
  manifest.grid_cells = cells.size();
  manifest.trials_per_cell = options.trials_per_cell;
  manifest.trial_salt = options.trial_salt;
  // A wide expiry window (~400ms of silence) so a live worker mid-trial
  // is never presumed dead (renewals land once per trial), with a short
  // backoff so drained workers notice the finished grid quickly.
  persist::LeaseSchedulerOptions lease_options;
  lease_options.expiry_scans = 80;
  lease_options.idle_backoff = std::chrono::milliseconds{5};

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "abl_campaign_worksteal";
  double share = 0.0;
  for (auto _ : state) {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    std::vector<campaign::SweepReport> reports(3);
    std::vector<std::thread> workers;
    workers.reserve(3);
    for (int w = 0; w < 3; ++w) {
      workers.emplace_back([&, w] {
        campaign::CampaignRunner runner{options};
        persist::LeaseScheduler scheduler{dir.string(),
                                          "bench-w" + std::to_string(w),
                                          cells,
                                          manifest,
                                          nullptr,
                                          lease_options};
        reports[w] = runner.run(scheduler);
      });
    }
    for (std::thread& t : workers) t.join();
    share = straggler_share(reports);
  }
  std::filesystem::remove_all(dir);
  state.counters["straggler_share"] = share;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cells.size()));
}
BENCHMARK(BM_SweepWorkStealing)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

MSA_BENCH_MAIN(print_intro)
