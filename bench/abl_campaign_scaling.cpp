// Ablation — campaign engine scaling. Two questions the ROADMAP asks the
// numbers for: how do cells/second scale with worker-thread count, and
// what does streaming every trial/cell into the durable store cost over
// the in-memory sweep? Regressions in either show up here before they
// show up in a week-long production sweep.
#include "bench_common.h"

#include <filesystem>

#include "campaign/grid.h"
#include "campaign/runner.h"
#include "persist/campaign_store.h"

namespace {

using namespace msa;

attack::ScenarioConfig base_config() {
  attack::ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();  // fast trials
  cfg.image_width = 48;
  cfg.image_height = 48;
  return cfg;
}

/// 2 defenses x 2 delays x 2 scrubbers = 8 cells, the same shape the
/// campaign tests sweep.
campaign::GridBuilder bench_grid() {
  campaign::GridBuilder grid{base_config()};
  grid.defenses({"baseline", "zero_on_free"})
      .attack_delays_s({0.0, 5.0})
      .scrubber_rates({0.0, 512.0 * 1024});
  return grid;
}

/// Defense-matrix-shaped grid for the profile-cache series: 5 defenses x
/// 2 delays = 10 cells over one (model, dims, placement) profile key, so
/// a multi-trial sweep reuses the key heavily — the campaign shape the
/// cross-cell cache exists for.
campaign::GridBuilder cache_grid() {
  // The production sweep shape, not the test_small fixture: the
  // campaign_sweep default board (zcu104) and image geometry, over the
  // paper's access-control defense family plus the vulnerable baseline.
  // On this board the uncached offline phase pays for a full twin
  // PetaLinuxSystem + model build + marker scrape per trial.
  attack::ScenarioConfig cfg;
  cfg.image_width = 96;
  cfg.image_height = 96;
  campaign::GridBuilder grid{cfg};
  grid.defenses({"baseline", "proc_owner_only", "dbg_owner_only",
                 "dbg_disabled", "fw_owner_residue"})
      .attack_delays_s({0.0, 5.0});
  return grid;
}

void print_intro() {
  bench::print_header("Abl. campaign scaling",
                      "cells/second vs threads; store & profiling overhead");
  std::puts("SweepThreads/N: one 8-cell sweep on N workers (items = cells).");
  std::puts("SweepInMemory vs SweepWithStore: identical sweep, the latter");
  std::puts("streaming per-trial + per-cell records to an on-disk store.");
  std::puts("SweepProfileCache/1 vs /0: 4-trial defense-matrix sweep with the");
  std::puts("shared profile cache on vs re-profiling a twin board per trial.\n");
}

void BM_SweepThreads(benchmark::State& state) {
  campaign::CampaignOptions options;
  options.threads = static_cast<unsigned>(state.range(0));
  options.trials_per_cell = 1;
  campaign::CampaignRunner runner{options};
  const auto cells = bench_grid().build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(cells));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cells.size()));
}
// UseRealTime: the work happens on pool threads, so wall clock — not the
// calling thread's CPU time — is what cells/second must be charged to.
BENCHMARK(BM_SweepThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SweepInMemory(benchmark::State& state) {
  campaign::CampaignOptions options;
  options.threads = 4;
  options.trials_per_cell = 2;
  campaign::CampaignRunner runner{options};
  const auto cells = bench_grid().build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(cells));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cells.size()));
}
BENCHMARK(BM_SweepInMemory)->Unit(benchmark::kMillisecond)->UseRealTime();

/// The ROADMAP's cross-board-batching item, measured: cells/second with
/// the cross-cell profile cache (Arg 1) vs per-trial re-profiling (Arg 0)
/// on a grid whose 40 trials share one profile key. The cached runner
/// keeps its cache across iterations, so this reports the steady-state
/// win of a long campaign, not the cold first cell.
void BM_SweepProfileCache(benchmark::State& state) {
  campaign::CampaignOptions options;
  options.threads = 4;
  options.trials_per_cell = 4;
  options.share_profiles = state.range(0) != 0;
  campaign::CampaignRunner runner{options};
  const auto cells = cache_grid().build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(cells));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cells.size()));
}
BENCHMARK(BM_SweepProfileCache)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SweepWithStore(benchmark::State& state) {
  campaign::CampaignOptions options;
  options.threads = 4;
  options.trials_per_cell = 2;
  campaign::CampaignRunner runner{options};
  const campaign::GridBuilder grid = bench_grid();
  const auto cells = grid.build();

  persist::StoreManifest manifest;
  manifest.grid_fingerprint = grid.fingerprint();
  manifest.grid_cells = grid.full_size();
  manifest.trials_per_cell = options.trials_per_cell;
  manifest.trial_salt = options.trial_salt;

  const std::string path =
      (std::filesystem::temp_directory_path() / "abl_campaign_scaling.store")
          .string();
  for (auto _ : state) {
    // A fresh store each iteration: the cost measured includes the
    // manifest write, per-trial streaming and the per-cell flushes.
    std::filesystem::remove(path);
    persist::CampaignStore store{path, manifest,
                                 persist::CampaignStore::Mode::kCreate};
    benchmark::DoNotOptimize(runner.run(cells, store));
  }
  std::filesystem::remove(path);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cells.size()));
}
BENCHMARK(BM_SweepWithStore)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

MSA_BENCH_MAIN(print_intro)
