// Ablation A — attack outcome under every defense preset (DESIGN.md).
// The paper argues three holes enable the attack; each preset closes one,
// and the matrix attributes the attack's failure to the right hole.
#include "bench_common.h"

#include "defense/evaluator.h"

namespace {

using namespace msa;

attack::ScenarioConfig base_config() {
  attack::ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();  // fast trials
  cfg.image_width = 64;
  cfg.image_height = 64;
  return cfg;
}

void print_table() {
  bench::print_header("Abl. A", "attack success under each defense preset");
  defense::DefenseEvaluator evaluator{base_config()};
  const auto outcomes = evaluator.evaluate_all(/*trials=*/5);
  std::printf("%s\n", defense::DefenseEvaluator::format_table(outcomes).c_str());
  std::puts("expected shape: baseline/zero_on_alloc/ASLR/fw_live_only rows");
  std::puts("succeed fully (half measures don't help); zero_on_free zeroes");
  std::puts("the residue; ACL rows and the owner-or-residue firewall deny");
  std::puts("the attack outright.\n");
}

void BM_ScenarioBaseline(benchmark::State& state) {
  const auto cfg = defense::preset("baseline").apply(base_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::run_scenario(cfg));
  }
}
BENCHMARK(BM_ScenarioBaseline);

void BM_ScenarioZeroOnFree(benchmark::State& state) {
  const auto cfg = defense::preset("zero_on_free").apply(base_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::run_scenario(cfg));
  }
}
BENCHMARK(BM_ScenarioZeroOnFree);

void BM_ScenarioDebuggerDenied(benchmark::State& state) {
  const auto cfg = defense::preset("dbg_owner_only").apply(base_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::run_scenario(cfg));
  }
}
BENCHMARK(BM_ScenarioDebuggerDenied);

}  // namespace

MSA_BENCH_MAIN(print_table)
