// Ablation F — model identification accuracy across the zoo: for every
// victim model, which model does the attack name? (Confusion matrix; the
// paper identifies resnet50_pt from strings — we verify the method never
// confuses the library's models with one another.)
#include "bench_common.h"

#include "attack/signature_db.h"
#include "vitis/model_zoo.h"

namespace {

using namespace msa;

void print_table() {
  bench::print_header("Abl. F", "model identification confusion matrix");

  const auto& names = vitis::zoo_model_names();
  std::printf("%-18s", "victim \\ result");
  for (const auto& n : names) std::printf(" %-16.16s", n.c_str());
  std::printf(" %-8s\n", "deep-id");

  std::size_t correct = 0;
  for (const auto& victim_model : names) {
    attack::ScenarioConfig cfg;
    cfg.system = os::SystemConfig::test_small();
    cfg.model_name = victim_model;
    cfg.image_width = 64;
    cfg.image_height = 64;
    const attack::ScenarioResult r = attack::run_scenario(cfg);

    std::printf("%-18s", victim_model.c_str());
    for (const auto& candidate : names) {
      const bool hit = r.report.identified_model == candidate;
      if (hit && candidate == victim_model) ++correct;
      std::printf(" %-16s", hit ? "      X" : "      .");
    }
    std::printf(" %-8s\n",
                r.report.deep_match &&
                        r.report.deep_match->model_name == victim_model
                    ? "yes"
                    : "no");
  }
  std::printf("\nidentification accuracy: %zu/%zu\n\n", correct, names.size());
}

void BM_EndToEndPerModel(benchmark::State& state) {
  const std::string model =
      vitis::zoo_model_names()[static_cast<std::size_t>(state.range(0))];
  attack::ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();
  cfg.model_name = model;
  cfg.image_width = 64;
  cfg.image_height = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::run_scenario(cfg));
  }
  state.SetLabel(model);
}
BENCHMARK(BM_EndToEndPerModel)->DenseRange(0, 4);

}  // namespace

MSA_BENCH_MAIN(print_table)
