// Ablation H — remanence under interrupted refresh. The paper's attack
// assumes a powered board (refresh keeps residue bit-exact forever). If
// the board power-cycles between victim and attacker, cells decay; this
// bench sweeps the unpowered interval and shows how recovery quality
// degrades — and why prompt scraping is part of the threat model.
#include "bench_common.h"

#include "dram/remanence.h"

namespace {

using namespace msa;

attack::ScenarioConfig base_config() {
  attack::ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();
  cfg.image_width = 64;
  cfg.image_height = 64;
  cfg.power_cycled = true;
  cfg.retention_half_life_s = 2.0;
  return cfg;
}

void print_table() {
  bench::print_header(
      "Abl. H", "recovery quality vs unpowered interval (half-life 2 s)");

  const dram::RemanenceModel model{dram::RemanenceParams{
      .refresh_active = false, .retention_half_life_s = 2.0}};

  std::printf("%12s %14s %11s %12s %10s\n", "off-time(s)", "P(bit-decay)",
              "model-id", "pixel-match", "psnr-db");
  for (const double off_s : {0.0, 0.1, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    attack::ScenarioConfig cfg = base_config();
    cfg.attack_delay_s = off_s;
    const attack::ScenarioResult r = attack::run_scenario(cfg);
    std::printf("%12.1f %14.4f %11s %12.4f %10.2f\n", off_s,
                model.decay_probability(off_s),
                r.model_identified_correctly ? "identified" : "missed",
                r.pixel_match, r.psnr);
  }
  std::puts("\nexpected shape: pixel-exactness collapses within a fraction");
  std::puts("of a half-life; model-id survives a little longer (any one");
  std::puts("intact string copy suffices); by a few half-lives all is noise.");
  std::puts("off-time 0 reproduces the paper's powered-board setting.\n");
}

void BM_DecayApplication(benchmark::State& state) {
  dram::DramModel dram{dram::DramConfig::test_small()};
  dram.fill_range(0x100000, 64 * 1024, 0xA5);
  const dram::RemanenceModel model{dram::RemanenceParams{
      .refresh_active = false, .retention_half_life_s = 2.0}};
  util::Prng prng{7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.apply(dram, 0x100000, 64 * 1024, 0.5, prng));
  }
  state.SetBytesProcessed(64 * 1024 * state.iterations());
}
BENCHMARK(BM_DecayApplication);

void BM_ScenarioPowerCycled(benchmark::State& state) {
  attack::ScenarioConfig cfg = base_config();
  cfg.attack_delay_s = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::run_scenario(cfg));
  }
}
BENCHMARK(BM_ScenarioPowerCycled);

}  // namespace

MSA_BENCH_MAIN(print_table)
