// Ablation I — residue accumulation under multi-tenant churn.
// FaaS boards run many tenants' jobs back to back; this study replays a
// synthetic day of churn and then performs ONE late pool scan, counting
// how many distinct models (and how many full weight sets) the residue
// still betrays — the cumulative form of the paper's single-victim attack.
#include "bench_common.h"

#include <set>

#include "attack/model_recovery.h"
#include "attack/signature_db.h"
#include "vitis/workload.h"

namespace {

using namespace msa;

struct ChurnOutcome {
  std::size_t events = 0;
  std::size_t distinct_models_ran = 0;
  std::size_t models_identified = 0;
  std::size_t containers_recovered = 0;
};

ChurnOutcome run_churn(std::size_t events, std::uint64_t seed,
                       mem::SanitizePolicy sanitize) {
  os::SystemConfig cfg = os::SystemConfig::test_small();
  cfg.sanitize = sanitize;
  os::PetaLinuxSystem sys{cfg};
  for (os::Uid uid : {1000u, 1001u, 1002u}) {
    sys.add_user(uid, "tenant" + std::to_string(uid));
  }
  vitis::VitisAiRuntime runtime{sys};

  vitis::WorkloadGenerator gen{seed};
  vitis::WorkloadParams params;
  params.events = events;
  params.tenants = 3;
  params.image_side = 40;
  vitis::WorkloadExecutor exec{sys, runtime};
  const auto executed = exec.run(gen.generate(params));

  std::set<std::string> ran;
  for (const auto& e : executed) ran.insert(e.event.model);

  dbg::SystemDebugger dbg{sys, 1001};
  attack::MemoryScraper scraper{dbg};
  const dram::PhysAddr pool_base =
      mem::PageFrameAllocator::frame_to_phys(cfg.pool_first_pfn);
  const attack::ScrapedDump scan =
      scraper.scrape_physical_range(pool_base, 4ULL * 1024 * 1024);

  ChurnOutcome out;
  out.events = events;
  out.distinct_models_ran = ran.size();
  const attack::SignatureDb db = attack::SignatureDb::for_zoo();
  for (const auto& m : db.scan(scan.bytes)) {
    if (ran.count(m.model_name) != 0) ++out.models_identified;
  }
  out.containers_recovered = attack::recover_all_models(scan.bytes).size();
  return out;
}

void print_table() {
  bench::print_header(
      "Abl. I", "one late pool scan after multi-tenant churn");

  std::printf("%8s %10s %12s %14s %16s\n", "events", "sanitize",
              "models-ran", "models-found", "weights-recov");
  for (const std::size_t events : {4UL, 8UL, 16UL, 32UL}) {
    for (const auto& [label, policy] :
         {std::pair{"none", mem::SanitizePolicy::kNone},
          {"zero-free", mem::SanitizePolicy::kZeroOnFree}}) {
      const ChurnOutcome o = run_churn(events, 1234 + events, policy);
      std::printf("%8zu %10s %12zu %14zu %16zu\n", o.events, label,
                  o.distinct_models_ran, o.models_identified,
                  o.containers_recovered);
    }
  }
  std::puts("\nexpected shape: without sanitization the scan always betrays");
  std::puts("the most recent job(s); older residue is progressively");
  std::puts("overwritten by frame reuse, and overlapping jobs fragment the");
  std::puts("pool so full weight recovery (which needs physically contiguous");
  std::puts("containers) succeeds less often than string identification");
  std::puts("(page-local). zero-on-free leaves the scan empty at any churn.\n");
}

void BM_ChurnAndScan(benchmark::State& state) {
  const std::size_t events = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_churn(events, seed++, mem::SanitizePolicy::kNone));
  }
}
BENCHMARK(BM_ChurnAndScan)->Arg(4)->Arg(16);

}  // namespace

MSA_BENCH_MAIN(print_table)
