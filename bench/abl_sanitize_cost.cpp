// Ablation B — sanitization cost and collateral damage (paper §I-B).
// CPU-store zeroing vs RowClone vs RowReset across freed-set sizes and
// layouts; whole-row in-DRAM ops destroy interleaved co-tenant data.
#include "bench_common.h"

#include "defense/sanitize_cost.h"

namespace {

using namespace msa;

void print_table() {
  bench::print_header(
      "Abl. B", "zeroing cost & multi-tenant collateral (paper §I-B)");

  defense::SanitizeCostModel model{
      dram::DramTimingModel{dram::DramConfig::zcu104()}};

  std::printf("%7s %-11s %14s %14s %14s %8s %12s %9s\n", "frames", "layout",
              "cpu-zero(us)", "rowclone(us)", "rowreset(us)", "rows",
              "collateral", "speedup");
  for (const std::uint64_t count : {16ULL, 64ULL, 256ULL, 1024ULL, 4096ULL}) {
    for (const auto& [label, stride] :
         {std::pair{"contiguous", 1ULL}, {"stride-2", 2ULL}, {"stride-16", 16ULL}}) {
      const auto freed = defense::make_frame_set(0x60000, count, stride);
      // Interleave a live tenant in the gaps (worst case for row ops).
      std::vector<mem::Pfn> live;
      if (stride > 1) {
        live = defense::make_frame_set(0x60001, count, stride);
      }
      const auto r = model.cost(freed, live);
      std::printf("%7llu %-11s %14.2f %14.2f %14.2f %8llu %9llu B %8.1fx\n",
                  static_cast<unsigned long long>(count), label,
                  r.cpu_zero_ns / 1000.0, r.rowclone_ns / 1000.0,
                  r.rowreset_ns / 1000.0,
                  static_cast<unsigned long long>(r.rows_touched),
                  static_cast<unsigned long long>(r.collateral_bytes),
                  r.cpu_over_rowclone());
    }
  }
  std::puts("\nexpected shape: in-DRAM ops are 1-2 orders cheaper, but any");
  std::puts("non-contiguous layout inflicts kilobytes-per-row collateral on");
  std::puts("live tenants — the paper's argument against naive bulk init.\n");
}

void BM_CostModelContiguous(benchmark::State& state) {
  defense::SanitizeCostModel model{
      dram::DramTimingModel{dram::DramConfig::zcu104()}};
  const auto freed =
      defense::make_frame_set(0x60000, static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.cost(freed, {}));
  }
}
BENCHMARK(BM_CostModelContiguous)->Arg(64)->Arg(1024)->Arg(4096);

void BM_ActualDramScrub(benchmark::State& state) {
  // Real (simulated-DRAM) scrubbing throughput of the zero-on-free path.
  dram::DramModel dram{dram::DramConfig::test_small()};
  const std::uint64_t bytes = static_cast<std::uint64_t>(state.range(0));
  dram.fill_range(0x100000, bytes, 0xEE);
  for (auto _ : state) {
    dram.fill_range(0x100000, bytes, 0xEE);
    dram.zero_range(0x100000, bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) * state.iterations());
}
BENCHMARK(BM_ActualDramScrub)->Arg(4096)->Arg(64 * 1024)->Arg(1024 * 1024);

}  // namespace

MSA_BENCH_MAIN(print_table)
