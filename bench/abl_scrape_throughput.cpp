// Ablation D — scraping throughput and scaling: devmem-sweep cost as the
// victim heap grows, plus the word-width sensitivity of the sweep.
#include "bench_common.h"

#include "attack/address_resolver.h"
#include "attack/scraper.h"

namespace {

using namespace msa;

struct ScrapeSetup {
  bench::PaperBoard board;
  attack::ResolvedTarget target;
  std::unique_ptr<dbg::SystemDebugger> dbg;

  explicit ScrapeSetup(std::uint32_t image_side) {
    const img::Image input = img::make_test_image(image_side, image_side, 7);
    board.sys->set_next_pid(1391);
    const vitis::VictimRun run =
        board.runtime->launch(1000, "resnet50_pt", input, "pts/1");
    dbg = std::make_unique<dbg::SystemDebugger>(*board.sys, 1001);
    attack::AddressResolver resolver{*dbg};
    target = resolver.resolve_heap(run.pid);
    board.sys->terminate(run.pid);
  }
};

void print_table() {
  bench::print_header("Abl. D", "scrape cost vs victim heap size");
  std::printf("%12s %12s %14s\n", "image-side", "heap-bytes", "devmem-reads");
  for (const std::uint32_t side : {48u, 96u, 192u, 384u}) {
    ScrapeSetup s{side};
    attack::MemoryScraper scraper{*s.dbg};
    const attack::ScrapedDump dump = scraper.scrape(s.target);
    std::printf("%9ux%-3u %12zu %14llu\n", side, side, dump.bytes.size(),
                static_cast<unsigned long long>(dump.devmem_reads));
  }
  std::puts("\nexpected shape: reads scale linearly with residue size — one");
  std::puts("32-bit devmem per word, exactly the paper's automated loop.\n");
}

void BM_ScrapeHeap(benchmark::State& state) {
  ScrapeSetup s{static_cast<std::uint32_t>(state.range(0))};
  attack::MemoryScraper scraper{*s.dbg};
  std::size_t bytes = 0;
  for (auto _ : state) {
    const attack::ScrapedDump dump = scraper.scrape(s.target);
    bytes = dump.bytes.size();
    benchmark::DoNotOptimize(dump);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) * state.iterations());
  state.counters["devmem_reads_per_scrape"] =
      static_cast<double>(bytes) / 4.0;
}
BENCHMARK(BM_ScrapeHeap)->Arg(48)->Arg(96)->Arg(192);

void BM_PhysicalRangeSweep(benchmark::State& state) {
  bench::PaperBoard board;
  dbg::SystemDebugger dbg{*board.sys, 1001};
  attack::MemoryScraper scraper{dbg};
  const std::uint64_t len = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scraper.scrape_physical_range(0x60000000, len));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(len) * state.iterations());
}
BENCHMARK(BM_PhysicalRangeSweep)->Arg(64 * 1024)->Arg(1024 * 1024);

}  // namespace

MSA_BENCH_MAIN(print_table)
