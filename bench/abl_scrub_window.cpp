// Ablation G — window of vulnerability under deferred scrubbing.
// Synchronous zero-on-free stops the attack but taxes every exit; the
// deployable variant is a background scrubber daemon. This bench sweeps
// (attacker reaction time × scrubber throughput) and reports what
// survives — quantifying how fast a daemon must be to make the paper's
// attack impractical.
#include "bench_common.h"

#include "os/scrubber.h"

namespace {

using namespace msa;

attack::ScenarioConfig base_config() {
  attack::ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();
  cfg.image_width = 64;
  cfg.image_height = 64;
  return cfg;
}

void print_table() {
  bench::print_header(
      "Abl. G", "attack success vs reaction time x scrubber throughput");

  std::printf("%12s %14s %11s %12s %14s\n", "delay(s)", "scrub(B/s)",
              "model-id", "pixel-match", "via-descriptor");
  for (const double rate : {4.0 * 1024, 16.0 * 1024, 256.0 * 1024}) {
    for (const double delay : {0.1, 0.5, 1.0, 5.0, 20.0}) {
      attack::ScenarioConfig cfg = base_config();
      cfg.attack_delay_s = delay;
      cfg.scrubber_bytes_per_s = rate;
      const attack::ScenarioResult r = attack::run_scenario(cfg);
      std::printf("%12.1f %14.0f %11s %12.4f %14.4f\n", delay, rate,
                  r.model_identified_correctly ? "identified" : "missed",
                  r.pixel_match, r.descriptor_pixel_match);
    }
  }
  std::puts("\nexpected shape: recovery collapses once rate x delay covers");
  std::puts("the victim's first heap pages (the strings/descriptor prefix");
  std::puts("dies first, lowest-PFN-first); only a sub-page budget — fast");
  std::puts("attacker and/or severely throttled scrubber — leaves the");
  std::puts("attack intact.\n");
}

void BM_ScenarioWithScrubber(benchmark::State& state) {
  attack::ScenarioConfig cfg = base_config();
  cfg.attack_delay_s = 1.0;
  cfg.scrubber_bytes_per_s = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::run_scenario(cfg));
  }
}
BENCHMARK(BM_ScenarioWithScrubber)->Arg(16 * 1024)->Arg(16 * 1024 * 1024);

void BM_ScrubberDrainRate(benchmark::State& state) {
  // Raw daemon throughput over a large dirty backlog.
  for (auto _ : state) {
    state.PauseTiming();
    os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
    const os::Pid pid = sys.spawn(0, {"app"}, "pts/0");
    const mem::VirtAddr base = sys.sbrk(pid, 256 * mem::kPageSize);
    std::vector<std::uint8_t> junk(256 * mem::kPageSize, 0xEE);
    sys.write_virt(pid, base, junk);
    sys.terminate(pid);
    os::ScrubberDaemon daemon{sys, 1e12};
    state.ResumeTiming();
    benchmark::DoNotOptimize(daemon.run_for(1.0));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(256 * mem::kPageSize) *
                          state.iterations());
}
BENCHMARK(BM_ScrubberDrainRate)->Iterations(50);

}  // namespace

MSA_BENCH_MAIN(print_table)
