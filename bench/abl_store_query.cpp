// Ablation — store query latency, flat vs segmented. Builds synthetic
// campaign stores of 1e4/1e5/1e6 trials (100 trials per cell), keeps a
// flat copy and a compacted (sorted block-indexed segment) copy of each,
// and times the artifact-to-answer path: open the store, read one cell
// (or a ~1% cell range) through persist::StoreReader. On the flat copy
// that is a full log replay; on the segmented copy the footer+index load
// plus the few blocks that hold the requested cells. The bytes_read
// counter (persist.log_bytes_read + persist.segment_bytes_read deltas
// per iteration) pins WHY the segmented numbers stay flat as the store
// grows — the JSON artifact (BENCH_store_query.json) carries both the
// latency and the touched-byte series.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "campaign/axis.h"
#include "obs/metrics.h"
#include "persist/campaign_store.h"
#include "persist/manifest.h"
#include "persist/store_reader.h"

namespace {

using namespace msa;

constexpr std::uint32_t kTrialsPerCell = 100;

std::filesystem::path bench_dir() {
  const auto dir =
      std::filesystem::temp_directory_path() / "msa_bench_store_query";
  std::filesystem::create_directories(dir);
  return dir;
}

persist::StoreManifest manifest_for(std::uint64_t cells) {
  persist::StoreManifest m;
  m.grid_fingerprint = 0xbe7cbe7cu;
  m.grid_cells = cells;
  m.trials_per_cell = kTrialsPerCell;
  m.trial_salt = 7;
  campaign::AxisSpec axis;
  axis.name = "delay_s";
  axis.kind = campaign::AxisKind::kDouble;
  for (std::uint64_t i = 0; i < cells; ++i) {
    axis.values.push_back(campaign::AxisValue::of_number(double(i)));
  }
  m.axes = {std::move(axis)};
  return m;
}

std::vector<campaign::AxisCoordinate> coords_for(std::uint64_t index) {
  return {{"delay_s", campaign::AxisValue::of_number(double(index))}};
}

/// Builds (once per size) a flat store and a compacted twin; returns
/// {flat path, segmented path}.
struct StorePair {
  std::string flat;
  std::string segmented;
};
const StorePair& stores_for(std::uint64_t trials) {
  static std::map<std::uint64_t, StorePair> cache;
  const auto it = cache.find(trials);
  if (it != cache.end()) return it->second;

  const std::uint64_t cells = trials / kTrialsPerCell;
  const auto dir = bench_dir();
  StorePair pair;
  pair.flat = (dir / ("flat_" + std::to_string(trials) + ".store")).string();
  pair.segmented =
      (dir / ("seg_" + std::to_string(trials) + ".store")).string();
  for (const std::string& path : {pair.flat, pair.segmented}) {
    std::filesystem::remove(path);
    persist::remove_segment_files(path);
  }

  const persist::StoreManifest manifest = manifest_for(cells);
  {
    persist::CampaignStore store{pair.flat, manifest,
                                 persist::CampaignStore::Mode::kCreate};
    persist::TrialRecord t;
    for (std::uint64_t c = 0; c < cells; ++c) {
      for (std::uint32_t i = 0; i < kTrialsPerCell; ++i) {
        t.cell_index = c;
        t.trial = i;
        t.denied = (c + i) % 3 == 0;
        t.pixel_match = 0.5;
        t.psnr = 20.0 + double(c % 40);
        t.descriptor_pixel_match = 0.25;
        store.append_trial(t);
      }
      campaign::CellStats stats;
      stats.index = c;
      stats.coords = coords_for(c);
      stats.trials = kTrialsPerCell;
      stats.denials = kTrialsPerCell / 3;
      stats.mean_pixel_match = 0.5;
      stats.mean_psnr_db = 20.0 + double(c % 40);
      stats.mean_descriptor_pixel_match = 0.25;
      store.complete_cell(stats);
    }
  }
  std::filesystem::copy_file(pair.flat, pair.segmented);
  (void)persist::compact_store(pair.segmented);
  return cache.emplace(trials, std::move(pair)).first->second;
}

std::uint64_t bytes_read_now() {
  return obs::counter("persist.log_bytes_read").value() +
         obs::counter("persist.segment_bytes_read").value();
}

/// ~1% of the grid (at least 2 cells), spread evenly.
persist::CellFilter range_filter(std::uint64_t cells) {
  persist::CellFilter::Clause clause;
  clause.axis = "delay_s";
  const std::uint64_t want = cells / 100 < 2 ? 2 : cells / 100;
  for (std::uint64_t i = 0; i < want; ++i) {
    clause.labels.push_back(
        campaign::AxisValue::of_number(double(i * (cells / want))).label());
  }
  return persist::CellFilter{{clause}};
}

void report_bytes(benchmark::State& state, std::uint64_t bytes_before,
                  const std::string& store_path) {
  state.counters["bytes_read"] = benchmark::Counter(
      static_cast<double>(bytes_read_now() - bytes_before) /
      static_cast<double>(state.iterations()));
  state.counters["store_bytes"] = benchmark::Counter(
      static_cast<double>(persist::StoreReader{store_path}.store_bytes()));
}

void single_cell_query(benchmark::State& state, const std::string& path) {
  const std::uint64_t trials = static_cast<std::uint64_t>(state.range(0));
  const auto coords = coords_for(trials / kTrialsPerCell / 2);
  const std::uint64_t bytes_before = bytes_read_now();
  for (auto _ : state) {
    // Open + query: the full artifact-to-answer latency, not a warm
    // in-memory lookup.
    const persist::StoreReader reader{path};
    auto cell = reader.read_cell(coords);
    if (!cell.has_value() || cell->trials.size() != kTrialsPerCell) {
      state.SkipWithError("query returned the wrong cell");
      return;
    }
    benchmark::DoNotOptimize(cell);
  }
  report_bytes(state, bytes_before, path);
}

void range_query(benchmark::State& state, const std::string& path) {
  const std::uint64_t trials = static_cast<std::uint64_t>(state.range(0));
  const persist::CellFilter filter = range_filter(trials / kTrialsPerCell);
  const std::uint64_t bytes_before = bytes_read_now();
  for (auto _ : state) {
    const persist::StoreReader reader{path};
    persist::StoreContents contents = reader.read_matching(filter);
    if (contents.cells.empty()) {
      state.SkipWithError("range query matched nothing");
      return;
    }
    benchmark::DoNotOptimize(contents);
  }
  report_bytes(state, bytes_before, path);
}

void BM_SingleCellFlat(benchmark::State& state) {
  single_cell_query(state,
                    stores_for(std::uint64_t(state.range(0))).flat);
}
void BM_SingleCellSegmented(benchmark::State& state) {
  single_cell_query(state,
                    stores_for(std::uint64_t(state.range(0))).segmented);
}
void BM_RangeFlat(benchmark::State& state) {
  range_query(state, stores_for(std::uint64_t(state.range(0))).flat);
}
void BM_RangeSegmented(benchmark::State& state) {
  range_query(state, stores_for(std::uint64_t(state.range(0))).segmented);
}

BENCHMARK(BM_SingleCellFlat)
    ->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SingleCellSegmented)
    ->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RangeFlat)
    ->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RangeSegmented)
    ->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void print_intro() {
  std::printf("==================================================================\n");
  std::printf("Abl. store query — flat log replay vs block-indexed segments\n");
  std::printf("==================================================================\n");
  std::puts("Each iteration opens the store and answers from disk:");
  std::puts("SingleCell* reads one mid-grid cell, Range* a ~1%% cell");
  std::puts("filter, over stores of 1e4/1e5/1e6 trials (100 per cell).");
  std::puts("bytes_read counts log + segment bytes actually touched per");
  std::puts("query; store_bytes is the on-disk footprint — flat queries");
  std::puts("scale with the store, segmented queries with the answer.\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_intro();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
