// Ablation — trial hot path, broken down by pipeline stage. Runs the
// end-to-end scenario under the obs span recorder and reports the mean
// wall time of each traced stage (profile, residue_decay, scrape,
// reconstruct, score) as benchmark counters, so the CI JSON artifact
// (BENCH_trial_hotpath.json) carries a per-stage breakdown a plain
// end-to-end number hides: a scrape regression and a scoring regression
// look identical from the outside, but not here. The untraced twin of
// the same loop pins the cost of the tracing gate itself.
#include "bench_common.h"

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "attack/profile_cache.h"
#include "obs/trace.h"

namespace {

using namespace msa;

/// One representative success cell: baseline defense, 5 simulated
/// seconds of scrubber+decay between termination and scrape, so every
/// traced stage (including residue_decay) appears in the breakdown.
attack::ScenarioConfig hotpath_config() {
  attack::ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();
  cfg.image_width = 48;
  cfg.image_height = 48;
  cfg.attack_delay_s = 5.0;
  cfg.scrubber_bytes_per_s = 512.0 * 1024;
  return cfg;
}

void print_intro() {
  bench::print_header("Abl. trial hotpath",
                      "per-stage time breakdown from trace spans");
  std::puts("TrialTraced: one cached-profile trial per iteration with the");
  std::puts("span recorder on; stage_<name>_ms counters are the mean span");
  std::puts("duration per stage, aggregated from the trace rings.");
  std::puts("TrialUntraced: the identical loop with tracing disabled — the");
  std::puts("pair bounds the recorder's own overhead on the hot path.\n");
}

void BM_TrialTraced(benchmark::State& state) {
  attack::ProfileCache cache;
  const attack::ScenarioConfig cfg = hotpath_config();
  (void)attack::run_scenario(cfg, &cache);  // warm the profile cache

  obs::Trace::enable(/*per_thread_capacity=*/std::size_t{1} << 20);
  obs::Trace::clear();
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::run_scenario(cfg, &cache));
  }
  obs::Trace::disable();

  // Mean duration per stage occurrence. Dividing each stage by its own
  // span count (not by iterations) keeps the numbers honest even if a
  // ring wrapped and dropped the oldest spans.
  struct Stage {
    std::uint64_t total_ns = 0;
    std::uint64_t spans = 0;
  };
  std::map<std::string, Stage> stages;
  for (const obs::ThreadTrace& thread : obs::Trace::snapshot()) {
    for (const obs::TraceSpan& span : thread.spans) {
      if (std::string_view{span.category} != "trial") continue;
      Stage& stage = stages[span.name];
      stage.total_ns += span.dur_ns;
      stage.spans += 1;
    }
  }
  obs::Trace::clear();
  for (const auto& [name, stage] : stages) {
    state.counters["stage_" + name + "_ms"] = benchmark::Counter(
        static_cast<double>(stage.total_ns) / 1e6 /
        static_cast<double>(stage.spans));
  }
}
BENCHMARK(BM_TrialTraced)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_TrialUntraced(benchmark::State& state) {
  attack::ProfileCache cache;
  const attack::ScenarioConfig cfg = hotpath_config();
  (void)attack::run_scenario(cfg, &cache);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::run_scenario(cfg, &cache));
  }
}
BENCHMARK(BM_TrialUntraced)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

MSA_BENCH_MAIN(print_intro)
