// Shared fixtures for the figure-reproduction benchmarks: a ZCU104 board
// populated the way the paper's terminals show it (kworker thread, shells,
// pids in the 1389+ range) and helpers to launch the resnet50_pt victim.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "attack/orchestrator.h"
#include "attack/scenario.h"
#include "dbg/debugger.h"
#include "os/system.h"
#include "vitis/runtime.h"

namespace msa::bench {

struct PaperBoard {
  std::unique_ptr<os::PetaLinuxSystem> sys;
  std::unique_ptr<vitis::VitisAiRuntime> runtime;
  os::Pid kworker_pid = 0;
  os::Pid victim_shell_pid = 0;
  os::Pid attacker_shell_pid = 0;

  PaperBoard() {
    sys = std::make_unique<os::PetaLinuxSystem>(os::SystemConfig::zcu104());
    sys->add_user(0, "root");
    sys->add_user(1000, "victim");
    sys->add_user(1001, "attacker");
    runtime = std::make_unique<vitis::VitisAiRuntime>(*sys);

    // Background processes visible in the paper's Figs. 5/6/9.
    sys->set_next_pid(843);
    attacker_shell_pid = sys->spawn(1001, {"-sh"}, "pts/0", 1);
    sys->set_next_pid(1389);
    kworker_pid = sys->spawn(0, {"[kworker/3:0-events]"}, "", 2);
    sys->set_next_pid(2430);
    victim_shell_pid = sys->spawn(1000, {"-sh"}, "pts/1", 1);
  }

  /// Launches resnet50_pt as pid 1391 at 12:33, exactly like Fig. 6.
  vitis::VictimRun launch_victim(const img::Image& input) {
    sys->advance_time(8 * 3600 + 42 * 60);  // 03:51 board time -> 12:33
    sys->set_next_pid(1391);
    return runtime->launch(1000, "resnet50_pt", input, "pts/1",
                           victim_shell_pid);
  }

  dbg::SystemDebugger attacker_debugger() {
    return dbg::SystemDebugger{*sys, 1001};
  }
};

inline void print_header(const char* figure, const char* what) {
  std::printf("==================================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("==================================================================\n");
}

/// Small victim input used across figure benches.
inline img::Image victim_image() { return img::make_test_image(96, 96, 7); }

}  // namespace msa::bench

/// Shared main: print the figure artifact, then run the benchmarks.
#define MSA_BENCH_MAIN(print_fn)                      \
  int main(int argc, char** argv) {                   \
    print_fn();                                       \
    benchmark::Initialize(&argc, argv);               \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    benchmark::RunSpecifiedBenchmarks();              \
    benchmark::Shutdown();                            \
    return 0;                                         \
  }
