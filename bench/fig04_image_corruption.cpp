// Fig. 4 — original vs corrupted input image for resnet50_pt.
// The paper replaces the sample input's pixels with 0xFFFFFF so the image
// becomes recognisable in a raw memory dump. We regenerate both images,
// report their divergence, and benchmark the image-manipulation paths.
#include "bench_common.h"

#include "img/ppm.h"

namespace {

using namespace msa;

void print_figure() {
  bench::print_header("Fig. 4", "original vs 0xFFFFFF-corrupted input image");

  const img::Image original = img::make_test_image(224, 224, 7);
  img::Image corrupted = original;
  // The paper corrupts the input; its figure masks ~20 % to show the
  // original beneath. We corrupt 80 % and keep 20 % original.
  corrupted.fill_region(img::kCorruptPixel, 0.8);

  img::write_ppm_file(original, "fig04_original.ppm");
  img::write_ppm_file(corrupted, "fig04_corrupted.ppm");

  std::size_t ff_pixels = 0;
  for (const img::Rgb& p : corrupted.pixels()) {
    if (p == img::kCorruptPixel) ++ff_pixels;
  }
  std::printf("(a) original image   : 224x224 synthetic sample "
              "(fig04_original.ppm)\n");
  std::printf("(b) corrupted image  : %.0f%% pixels -> 0xFFFFFF "
              "(fig04_corrupted.ppm)\n",
              100.0 * static_cast<double>(ff_pixels) /
                  static_cast<double>(corrupted.pixel_count()));
  std::printf("pixel match original vs corrupted: %.4f, PSNR %.2f dB\n\n",
              img::pixel_match_fraction(original, corrupted),
              img::psnr_db(original, corrupted));
}

void BM_GenerateTestImage(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(img::make_test_image(224, 224, 7));
  }
}
BENCHMARK(BM_GenerateTestImage);

void BM_CorruptImage(benchmark::State& state) {
  const img::Image original = img::make_test_image(224, 224, 7);
  for (auto _ : state) {
    img::Image c = original;
    c.fill_region(img::kCorruptPixel, 0.8);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_CorruptImage);

void BM_PsnrCompute(benchmark::State& state) {
  const img::Image a = img::make_test_image(224, 224, 7);
  img::Image b = a;
  b.fill_region(img::kCorruptPixel, 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(img::psnr_db(a, b));
  }
}
BENCHMARK(BM_PsnrCompute);

void BM_PpmSerialize(benchmark::State& state) {
  const img::Image a = img::make_test_image(224, 224, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(img::to_ppm(a));
  }
}
BENCHMARK(BM_PpmSerialize);

}  // namespace

MSA_BENCH_MAIN(print_figure)
