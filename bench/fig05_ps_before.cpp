// Fig. 5 — (Step 1) process list before the victim model runs.
// The attacker's terminal shows only background processes and their own
// "ps -ef". We reproduce the listing and benchmark the polling primitive.
#include "bench_common.h"

#include "attack/pid_poller.h"

namespace {

using namespace msa;

void print_figure() {
  bench::print_header("Fig. 5", "(Step 1) ps -ef before the victim runs");

  bench::PaperBoard board;
  // The attacker runs ps -ef; it appears in its own listing (pid 2431+).
  const os::Pid ps_pid =
      board.sys->spawn(1001, {"ps", "-ef"}, "pts/0", board.attacker_shell_pid);
  std::printf("%s\n", board.sys->ps_ef().c_str());
  board.sys->terminate(ps_pid);

  dbg::SystemDebugger dbg = board.attacker_debugger();
  attack::PidPoller poller{dbg};
  std::printf("attacker poll for \"resnet50\": %s\n\n",
              poller.find("resnet50") ? "FOUND (unexpected!)" : "not running");
}

void BM_PsEf(benchmark::State& state) {
  bench::PaperBoard board;
  for (auto _ : state) {
    benchmark::DoNotOptimize(board.sys->ps_ef());
  }
}
BENCHMARK(BM_PsEf);

void BM_PollForVictim(benchmark::State& state) {
  bench::PaperBoard board;
  dbg::SystemDebugger dbg = board.attacker_debugger();
  attack::PidPoller poller{dbg};
  for (auto _ : state) {
    benchmark::DoNotOptimize(poller.find("resnet50"));
  }
}
BENCHMARK(BM_PollForVictim);

void BM_ParsePs(benchmark::State& state) {
  bench::PaperBoard board;
  const std::string ps = board.sys->ps_ef();
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::parse_ps(ps));
  }
}
BENCHMARK(BM_ParsePs);

}  // namespace

MSA_BENCH_MAIN(print_figure)
