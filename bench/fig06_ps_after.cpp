// Fig. 6 — (Step 1) process list after the victim model was run.
// The victim's pid (1391 in the paper) appears with the full resnet50_pt
// command line; the attacker's poll extracts it.
#include "bench_common.h"

#include "attack/pid_poller.h"

namespace {

using namespace msa;

void print_figure() {
  bench::print_header("Fig. 6", "(Step 1) ps -ef after the victim launches");

  bench::PaperBoard board;
  const vitis::VictimRun run = board.launch_victim(bench::victim_image());
  board.sys->process(run.pid).set_cpu_percent(18);  // mid-inference snapshot
  const os::Pid ps_pid =
      board.sys->spawn(1001, {"ps", "-ef"}, "pts/0", board.attacker_shell_pid);
  std::printf("%s\n", board.sys->ps_ef().c_str());
  board.sys->terminate(ps_pid);

  dbg::SystemDebugger dbg = board.attacker_debugger();
  attack::PidPoller poller{dbg};
  const auto hit = poller.find("resnet50");
  std::printf("attacker poll for \"resnet50\": pid %lld\n",
              hit ? static_cast<long long>(hit->pid) : -1);
  std::printf("victim cmdline: %s\n\n", hit ? hit->cmd.c_str() : "<none>");
}

void BM_VictimLaunchAndTerminate(benchmark::State& state) {
  // Full victim lifecycle: spawn, stage, infer, terminate.
  bench::PaperBoard board;
  const img::Image input = bench::victim_image();
  for (auto _ : state) {
    const vitis::VictimRun run =
        board.runtime->launch(1000, "resnet50_pt", input, "pts/1");
    board.sys->terminate(run.pid);
  }
}
BENCHMARK(BM_VictimLaunchAndTerminate);

void BM_PollFindsLiveVictim(benchmark::State& state) {
  bench::PaperBoard board;
  (void)board.launch_victim(bench::victim_image());
  dbg::SystemDebugger dbg = board.attacker_debugger();
  attack::PidPoller poller{dbg};
  for (auto _ : state) {
    benchmark::DoNotOptimize(poller.find("resnet50"));
  }
}
BENCHMARK(BM_PollFindsLiveVictim);

void BM_DpuInferenceOnly(benchmark::State& state) {
  // The victim-side compute the attacker's window rides on.
  bench::PaperBoard board;
  const vitis::XModel& model = board.runtime->model("resnet50_pt");
  const img::Image input = img::resize_nearest(bench::victim_image(), 64, 64);
  const vitis::Tensor t = vitis::tensor_from_image(input);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.infer(t));
  }
}
BENCHMARK(BM_DpuInferenceOnly);

}  // namespace

MSA_BENCH_MAIN(print_figure)
