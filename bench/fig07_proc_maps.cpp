// Fig. 7 — (Step 2) the victim's /proc/<pid>/maps showing the heap VA
// range (0xaaaaee775000-... rw-p [heap]) and the /dev/dri/renderD128
// mapping, read from the attacker's user space.
#include "bench_common.h"

#include "os/proc_fs.h"

namespace {

using namespace msa;

void print_figure() {
  bench::print_header("Fig. 7", "(Step 2) victim /proc/<pid>/maps heap range");

  bench::PaperBoard board;
  const vitis::VictimRun run = board.launch_victim(bench::victim_image());

  dbg::SystemDebugger dbg = board.attacker_debugger();
  const std::string maps = dbg.maps(run.pid);
  std::printf("attacker$ vim /proc/%lld/maps\n%s\n",
              static_cast<long long>(run.pid), maps.c_str());

  for (const auto& line : os::parse_maps(maps)) {
    if (line.name == "[heap]") {
      std::printf("=> heap virtual range: 0x%llx .. 0x%llx (%llu bytes)\n\n",
                  static_cast<unsigned long long>(line.start),
                  static_cast<unsigned long long>(line.end),
                  static_cast<unsigned long long>(line.end - line.start));
    }
  }
}

void BM_ReadMapsCrossUser(benchmark::State& state) {
  bench::PaperBoard board;
  const vitis::VictimRun run = board.launch_victim(bench::victim_image());
  dbg::SystemDebugger dbg = board.attacker_debugger();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dbg.maps(run.pid));
  }
}
BENCHMARK(BM_ReadMapsCrossUser);

void BM_ParseMapsText(benchmark::State& state) {
  bench::PaperBoard board;
  const vitis::VictimRun run = board.launch_victim(bench::victim_image());
  dbg::SystemDebugger dbg = board.attacker_debugger();
  const std::string maps = dbg.maps(run.pid);
  for (auto _ : state) {
    benchmark::DoNotOptimize(os::parse_maps(maps));
  }
}
BENCHMARK(BM_ParseMapsText);

}  // namespace

MSA_BENCH_MAIN(print_figure)
