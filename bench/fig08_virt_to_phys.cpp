// Fig. 8 — (Step 2) virtual_to_physical: converting the heap's endpoint
// virtual addresses to physical DRAM addresses through the pagemap.
#include "bench_common.h"

#include "attack/address_resolver.h"
#include "util/strings.h"

namespace {

using namespace msa;

void print_figure() {
  bench::print_header("Fig. 8",
                      "(Step 2) virtual_to_physical over the heap endpoints");

  bench::PaperBoard board;
  const vitis::VictimRun run = board.launch_victim(bench::victim_image());
  dbg::SystemDebugger dbg = board.attacker_debugger();
  attack::AddressResolver resolver{dbg};

  const attack::ResolvedTarget target = resolver.resolve_heap(run.pid);
  const mem::VirtAddr first_va = target.heap_start;
  const mem::VirtAddr last_va = target.heap_end - 4;

  for (const mem::VirtAddr va : {first_va, last_va}) {
    const auto pa = resolver.virt_to_phys(run.pid, va);
    std::printf("xilinx-zcu104$ ./virtual_to_physical.out %lld %s\n%s\n",
                static_cast<long long>(run.pid), util::hex_0x(va).c_str(),
                pa ? util::hex_0x(*pa).c_str() : "<unmapped>");
  }
  std::printf("\nheap pages resolved: %zu / %zu\n\n", target.pages_resolved(),
              target.page_pa.size());
}

void BM_SingleVirtToPhys(benchmark::State& state) {
  bench::PaperBoard board;
  const vitis::VictimRun run = board.launch_victim(bench::victim_image());
  dbg::SystemDebugger dbg = board.attacker_debugger();
  attack::AddressResolver resolver{dbg};
  const mem::VirtAddr va = run.heap_base + 0x730;
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver.virt_to_phys(run.pid, va));
  }
}
BENCHMARK(BM_SingleVirtToPhys);

void BM_ResolveFullHeap(benchmark::State& state) {
  bench::PaperBoard board;
  const vitis::VictimRun run = board.launch_victim(bench::victim_image());
  dbg::SystemDebugger dbg = board.attacker_debugger();
  attack::AddressResolver resolver{dbg};
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver.resolve_heap(run.pid));
  }
  state.counters["heap_pages"] = static_cast<double>(
      resolver.resolve_heap(run.pid).page_pa.size());
}
BENCHMARK(BM_ResolveFullHeap);

void BM_PagemapEntryRead(benchmark::State& state) {
  bench::PaperBoard board;
  const vitis::VictimRun run = board.launch_victim(bench::victim_image());
  dbg::SystemDebugger dbg = board.attacker_debugger();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dbg.pagemap_entry(run.pid, run.heap_base));
  }
}
BENCHMARK(BM_PagemapEntryRead);

}  // namespace

MSA_BENCH_MAIN(print_figure)
