// Fig. 9 — (Step 3) the victim's pid disappears from ps after it
// terminates; the attacker's poll confirms and the scrape window opens.
#include "bench_common.h"

#include "attack/pid_poller.h"

namespace {

using namespace msa;

void print_figure() {
  bench::print_header("Fig. 9", "(Step 3) ps -ef after victim termination");

  bench::PaperBoard board;
  const vitis::VictimRun run = board.launch_victim(bench::victim_image());
  dbg::SystemDebugger dbg = board.attacker_debugger();
  attack::PidPoller poller{dbg};

  std::printf("victim pid %lld alive: %s\n",
              static_cast<long long>(run.pid),
              poller.is_alive(run.pid) ? "yes" : "no");

  board.sys->terminate(run.pid);
  const os::Pid ps_pid =
      board.sys->spawn(1001, {"ps", "-ef"}, "pts/0", board.attacker_shell_pid);
  std::printf("\n%s\n", board.sys->ps_ef().c_str());
  board.sys->terminate(ps_pid);

  std::printf("victim pid %lld alive: %s -> scrape window open\n\n",
              static_cast<long long>(run.pid),
              poller.is_alive(run.pid) ? "yes" : "no");
}

void BM_LivenessPoll(benchmark::State& state) {
  bench::PaperBoard board;
  const vitis::VictimRun run = board.launch_victim(bench::victim_image());
  dbg::SystemDebugger dbg = board.attacker_debugger();
  attack::PidPoller poller{dbg};
  for (auto _ : state) {
    benchmark::DoNotOptimize(poller.is_alive(run.pid));
  }
}
BENCHMARK(BM_LivenessPoll);

void BM_LifecycleWithResidue(benchmark::State& state) {
  // Full victim lifecycle under the vulnerable no-sanitize policy.
  bench::PaperBoard board;
  const img::Image input = bench::victim_image();
  for (auto _ : state) {
    const vitis::VictimRun run =
        board.runtime->launch(1000, "resnet50_pt", input, "pts/1");
    board.sys->terminate(run.pid);
  }
}
BENCHMARK(BM_LifecycleWithResidue);

void BM_LifecycleWithZeroOnFree(benchmark::State& state) {
  // Same lifecycle under the zero-on-free defense: the extra time is the
  // scrubbing cost the defense pays at every exit.
  os::SystemConfig cfg = os::SystemConfig::zcu104();
  cfg.sanitize = mem::SanitizePolicy::kZeroOnFree;
  os::PetaLinuxSystem sys{cfg};
  sys.add_user(1000, "victim");
  vitis::VitisAiRuntime runtime{sys};
  const img::Image input = bench::victim_image();
  for (auto _ : state) {
    const vitis::VictimRun run =
        runtime.launch(1000, "resnet50_pt", input, "pts/1");
    sys.terminate(run.pid);
  }
}
BENCHMARK(BM_LifecycleWithZeroOnFree);

}  // namespace

MSA_BENCH_MAIN(print_figure)
