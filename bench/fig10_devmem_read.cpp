// Fig. 10 — (Step 3) devmem reads of the terminated victim's physical
// addresses. The paper shows one zero word and one data word; we replay
// both against the resolved heap endpoints.
#include "bench_common.h"

#include "attack/address_resolver.h"
#include "attack/scraper.h"

namespace {

using namespace msa;

void print_figure() {
  bench::print_header("Fig. 10", "(Step 3) devmem reads of residue");

  bench::PaperBoard board;
  const vitis::VictimRun run = board.launch_victim(bench::victim_image());
  dbg::SystemDebugger dbg = board.attacker_debugger();
  attack::AddressResolver resolver{dbg};
  const attack::ResolvedTarget target = resolver.resolve_heap(run.pid);
  board.sys->terminate(run.pid);

  // First heap word (heap metadata starts zeroed) and a word inside the
  // staged image (nonzero pixel data), like the paper's two examples.
  const dram::PhysAddr pa_zero = *target.page_pa.front();
  const dram::PhysAddr pa_data =
      *target.page_pa[static_cast<std::size_t>(run.layout.image_off /
                                               mem::kPageSize)] +
      (run.layout.image_off % mem::kPageSize) + 64;
  for (const dram::PhysAddr pa : {pa_zero, pa_data}) {
    std::printf("xilinx-zcu104$ %s", dbg.devmem_command(pa).c_str());
  }
  std::printf("\n(automated attack issues one devmem per 32-bit word over "
              "the full heap)\n\n");
}

void BM_Devmem32(benchmark::State& state) {
  bench::PaperBoard board;
  const vitis::VictimRun run = board.launch_victim(bench::victim_image());
  dbg::SystemDebugger dbg = board.attacker_debugger();
  attack::AddressResolver resolver{dbg};
  const attack::ResolvedTarget target = resolver.resolve_heap(run.pid);
  board.sys->terminate(run.pid);
  const dram::PhysAddr pa = *target.page_pa.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dbg.devmem32(pa));
  }
}
BENCHMARK(BM_Devmem32);

void BM_DevmemCommandFormatted(benchmark::State& state) {
  bench::PaperBoard board;
  dbg::SystemDebugger dbg = board.attacker_debugger();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dbg.devmem_command(0x61c6d730));
  }
}
BENCHMARK(BM_DevmemCommandFormatted);

void BM_FullHeapScrape(benchmark::State& state) {
  bench::PaperBoard board;
  const vitis::VictimRun run = board.launch_victim(bench::victim_image());
  dbg::SystemDebugger dbg = board.attacker_debugger();
  attack::AddressResolver resolver{dbg};
  const attack::ResolvedTarget target = resolver.resolve_heap(run.pid);
  board.sys->terminate(run.pid);
  attack::MemoryScraper scraper{dbg};
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const attack::ScrapedDump dump = scraper.scrape(target);
    bytes = dump.bytes.size();
    benchmark::DoNotOptimize(dump);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
}
BENCHMARK(BM_FullHeapScrape);

}  // namespace

MSA_BENCH_MAIN(print_figure)
