// Fig. 11 — (Step 4.a) identifying the model from strings: the hexdump of
// the scraped residue greps "resnet50" and the library-path fragments
// appear, naming the model the victim ran.
#include "bench_common.h"

#include "attack/hexdump_analyzer.h"
#include "attack/signature_db.h"

namespace {

using namespace msa;

attack::ScrapedDump scrape_victim(bench::PaperBoard& board) {
  const vitis::VictimRun run = board.launch_victim(bench::victim_image());
  dbg::SystemDebugger dbg = board.attacker_debugger();
  attack::AddressResolver resolver{dbg};
  const attack::ResolvedTarget target = resolver.resolve_heap(run.pid);
  board.sys->terminate(run.pid);
  attack::MemoryScraper scraper{dbg};
  return scraper.scrape(target);
}

void print_figure() {
  bench::print_header("Fig. 11",
                      "(Step 4.a) grep \"resnet50\" over the residue hexdump");

  bench::PaperBoard board;
  const attack::ScrapedDump dump = scrape_victim(board);

  attack::HexDumpAnalyzer analyzer{dump.bytes};
  std::printf("attacker$ grep \"resnet50\" %lld_hexdump.log\n",
              static_cast<long long>(dump.pid));
  const auto hits = analyzer.grep("resnet50");
  for (std::size_t i = 0; i < hits.size() && i < 4; ++i) {
    std::printf("%s\n", hits[i].row_text.c_str());
  }
  std::printf("(%zu matching rows total)\n\n", hits.size());

  const attack::SignatureDb db = attack::SignatureDb::for_zoo();
  const auto matches = db.scan(dump.bytes);
  std::printf("signature ranking:\n");
  for (const auto& m : matches) {
    std::printf("  %-18s hits=%-3zu distinct-needles=%zu\n",
                m.model_name.c_str(), m.hits, m.distinct_needles);
  }
  const auto deep = attack::SignatureDb::identify_deep(dump.bytes);
  if (deep) {
    std::printf("deep identification: parsed full xmodel '%s' at offset %zu "
                "(%zu weight bytes recovered)\n\n",
                deep->model_name.c_str(), deep->container_offset,
                deep->param_bytes);
  }
}

void BM_HexDumpRender(benchmark::State& state) {
  bench::PaperBoard board;
  const attack::ScrapedDump dump = scrape_victim(board);
  for (auto _ : state) {
    attack::HexDumpAnalyzer analyzer{dump.bytes};
    benchmark::DoNotOptimize(analyzer.dump_text());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(dump.bytes.size()) *
                          state.iterations());
}
BENCHMARK(BM_HexDumpRender);

void BM_GrepResidue(benchmark::State& state) {
  bench::PaperBoard board;
  const attack::ScrapedDump dump = scrape_victim(board);
  attack::HexDumpAnalyzer analyzer{dump.bytes};
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.grep("resnet50"));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(dump.bytes.size()) *
                          state.iterations());
}
BENCHMARK(BM_GrepResidue);

void BM_SignatureScan(benchmark::State& state) {
  bench::PaperBoard board;
  const attack::ScrapedDump dump = scrape_victim(board);
  const attack::SignatureDb db = attack::SignatureDb::for_zoo();
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.scan(dump.bytes));
  }
}
BENCHMARK(BM_SignatureScan);

void BM_DeepIdentify(benchmark::State& state) {
  bench::PaperBoard board;
  const attack::ScrapedDump dump = scrape_victim(board);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::SignatureDb::identify_deep(dump.bytes));
  }
}
BENCHMARK(BM_DeepIdentify);

}  // namespace

MSA_BENCH_MAIN(print_figure)
