// Fig. 12 — (Step 4.b) reconstructing the input image: the corrupted
// 0xFFFFFF input shows up as unbroken "FFFF FFFF" rows at the offset the
// offline 0x555555-marker profiling predicted, and the image is cut out
// of the dump.
#include "bench_common.h"

#include "attack/hexdump_analyzer.h"
#include "attack/profiler.h"
#include "attack/reconstructor.h"
#include "img/ppm.h"

namespace {

using namespace msa;

struct Fig12Setup {
  bench::PaperBoard board;
  attack::ModelProfile profile;
  attack::ScrapedDump dump;
  img::Image victim_input{96, 96};

  Fig12Setup() {
    // Offline phase on an attacker twin board: profile with 0x555555.
    attack::ScenarioConfig pc;
    pc.image_width = 96;
    pc.image_height = 96;
    profile = attack::profile_on_twin_board(pc);

    // Online phase: victim runs the corrupted image, attacker scrapes.
    victim_input.fill_region(img::kCorruptPixel, 1.0);
    const vitis::VictimRun run = board.launch_victim(victim_input);
    dbg::SystemDebugger dbg = board.attacker_debugger();
    attack::AddressResolver resolver{dbg};
    const attack::ResolvedTarget target = resolver.resolve_heap(run.pid);
    board.sys->terminate(run.pid);
    attack::MemoryScraper scraper{dbg};
    dump = scraper.scrape(target);
  }
};

void print_figure() {
  bench::print_header("Fig. 12",
                      "(Step 4.b) FFFF-FFFF rows locate the corrupted image");

  Fig12Setup s;
  attack::HexDumpAnalyzer analyzer{s.dump.bytes};

  // Heap metadata rows (the paper's dump opens "0000 ... 9102 0000 ...").
  std::printf("%s\n%s\n....\n....\n", analyzer.render_row(0).c_str(),
              analyzer.render_row(1).c_str());

  const auto runs = analyzer.uniform_runs(0xFF, 4);
  if (!runs.empty()) {
    const auto [first_row, row_count] = runs.front();
    for (std::size_t r = first_row; r < first_row + 5; ++r) {
      std::printf("%s\n", analyzer.render_row(r).c_str());
    }
    std::printf("...\n(FF block: rows %zu..%zu, %zu rows total)\n\n",
                first_row, first_row + row_count - 1, row_count);
    std::printf("profiled image offset: %llu (marker run 0x555555)\n",
                static_cast<unsigned long long>(s.profile.image_offset));
    std::printf("FF block starts at byte %zu -> matches profile: %s\n",
                first_row * 16,
                first_row * 16 == s.profile.image_offset ? "yes" : "no");
  }

  const auto image = attack::ImageReconstructor::reconstruct(s.dump, s.profile);
  if (image) {
    img::write_ppm_file(*image, "fig12_reconstructed.ppm");
    std::printf("reconstructed %ux%u image (fig12_reconstructed.ppm), "
                "pixel match vs victim input: %.4f\n\n",
                image->width(), image->height(),
                img::pixel_match_fraction(*image, s.victim_input));
  }
}

void BM_FindFFRuns(benchmark::State& state) {
  Fig12Setup s;
  attack::HexDumpAnalyzer analyzer{s.dump.bytes};
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.uniform_runs(0xFF, 4));
  }
}
BENCHMARK(BM_FindFFRuns);

void BM_FindMarkerRun(benchmark::State& state) {
  Fig12Setup s;
  attack::HexDumpAnalyzer analyzer{s.dump.bytes};
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.find_byte_run(0xFF, 48));
  }
}
BENCHMARK(BM_FindMarkerRun);

void BM_ReconstructImage(benchmark::State& state) {
  Fig12Setup s;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        attack::ImageReconstructor::reconstruct(s.dump, s.profile));
  }
}
BENCHMARK(BM_ReconstructImage);

void BM_OfflineProfileModel(benchmark::State& state) {
  // Cost of one offline profiling pass (attacker-side, one model).
  for (auto _ : state) {
    attack::ScenarioConfig pc;
    pc.image_width = 96;
    pc.image_height = 96;
    benchmark::DoNotOptimize(attack::profile_on_twin_board(pc));
  }
}
BENCHMARK(BM_OfflineProfileModel);

}  // namespace

MSA_BENCH_MAIN(print_figure)
