// attack_cli: the paper's two-terminal workflow as a scripted session.
// Every command the paper's figures show (ps -ef, vim /proc/<pid>/maps,
// ./virtual_to_physical.out, devmem, hexdump|grep) is replayed through
// the library and echoed shell-style, so the output reads like the
// attacker terminal transcript in §V.
//
// Usage: attack_cli [model_name]   (default resnet50_pt)
#include <cstdio>
#include <string>

#include "attack/hexdump_analyzer.h"
#include "attack/orchestrator.h"
#include "attack/scenario.h"
#include "util/strings.h"
#include "vitis/model_zoo.h"
#include "vitis/runtime.h"

namespace {

void shell(const std::string& cmd) { std::printf("attacker$ %s\n", cmd.c_str()); }

}  // namespace

int main(int argc, char** argv) {
  using namespace msa;

  const std::string model = argc > 1 ? argv[1] : "resnet50_pt";
  if (!vitis::zoo_has_model(model)) {
    std::fprintf(stderr, "unknown model '%s'; available:\n", model.c_str());
    for (const auto& n : vitis::zoo_model_names()) {
      std::fprintf(stderr, "  %s\n", n.c_str());
    }
    return 2;
  }

  // Offline phase (attacker's own board).
  std::puts("== offline profiling (attacker board, 0x555555 marker) ==");
  attack::ScenarioConfig pc;
  pc.model_name = model;
  pc.image_width = 96;
  pc.image_height = 96;
  const attack::ModelProfile profile = attack::profile_on_twin_board(pc);
  std::printf("learned: image offset %llu in a %llu-byte heap\n\n",
              static_cast<unsigned long long>(profile.image_offset),
              static_cast<unsigned long long>(profile.heap_bytes));

  // Target board with a victim.
  os::PetaLinuxSystem board{os::SystemConfig::zcu104()};
  board.add_user(1000, "victim");
  board.add_user(1001, "attacker");
  vitis::VitisAiRuntime runtime{board};
  board.set_next_pid(1391);
  const img::Image input = img::make_test_image(96, 96, 2024);
  const vitis::VictimRun run = runtime.launch(1000, model, input, "pts/1");

  dbg::SystemDebugger debugger{board, 1001};
  attack::ProfileDb profiles;
  profiles.add(profile);
  attack::AttackOrchestrator orch{debugger, attack::SignatureDb::for_zoo(),
                                  std::move(profiles)};

  std::puts("== step 1: poll for the victim ==");
  shell("ps -ef | grep " + model);
  const auto entry = orch.find_victim(model);
  if (!entry) {
    std::puts("victim not found");
    return 1;
  }
  std::printf("%lld %lld ... %s\n\n", static_cast<long long>(entry->pid),
              static_cast<long long>(entry->ppid), entry->cmd.c_str());

  std::puts("== step 2: maps + pagemap translation ==");
  shell("vim /proc/" + std::to_string(entry->pid) + "/maps");
  const attack::ResolvedTarget target = orch.resolve(entry->pid);
  std::printf("%s", target.maps_text.c_str());
  shell("./virtual_to_physical.out " + std::to_string(entry->pid) + " " +
        util::hex_0x(target.heap_start));
  if (target.page_pa.front()) {
    std::printf("%s\n", util::hex_0x(*target.page_pa.front()).c_str());
  }
  std::printf("(resolved %zu heap pages)\n\n", target.pages_resolved());

  std::puts("== step 3: victim exits; devmem the residue ==");
  board.terminate(run.pid);
  shell("ps -ef | grep " + std::to_string(entry->pid));
  std::printf("(no output — pid gone)\n");
  shell("devmem " + util::hex_0x(*target.page_pa.front()));
  const attack::AttackReport report = orch.attack_after_termination(target);
  std::printf("... %llu automated devmem reads, %llu bytes\n\n",
              static_cast<unsigned long long>(report.devmem_reads),
              static_cast<unsigned long long>(report.residue_bytes));

  std::puts("== step 4: analysis ==");
  shell("hexdump heap.bin | grep " + model.substr(0, 8));
  std::printf("identified: %s (%zu hits)\n", report.identified_model.c_str(),
              report.signature_hits);
  if (report.deep_match) {
    std::printf("deep: full xmodel parsed, %zu weight bytes\n",
                report.deep_match->param_bytes);
  }
  if (report.reconstructed_image) {
    std::printf("image reconstructed at profiled offset: match %.4f\n",
                img::pixel_match_fraction(*report.reconstructed_image, input));
  }
  if (report.descriptor_image) {
    std::printf("image reconstructed via DPU descriptor:  match %.4f\n",
                img::pixel_match_fraction(*report.descriptor_image, input));
  }
  return report.model_identified() && report.image_recovered() ? 0 : 1;
}
