// Parallel campaign sweep: fans the end-to-end scenario out over a
// cartesian grid of defense preset x model x attack delay x scrubber
// throughput, and prints (or writes) the aggregate report. The default
// grid is 24 cells; the CSV is byte-identical for any --threads value.
//
//   campaign_sweep [--threads N] [--trials N]
//                  [--defenses a,b,...] [--models a,b,...]
//                  [--delays s1,s2,...] [--scrubbers r1,r2,...]
//                  [--csv out.csv] [--json out.json] [--quiet]
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "campaign/grid.h"
#include "campaign/report.h"
#include "campaign/runner.h"
#include "defense/presets.h"
#include "util/strings.h"
#include "vitis/model_zoo.h"

namespace {

[[noreturn]] void bad_number(const char* flag, const std::string& value) {
  std::fprintf(stderr, "%s: not a number: '%s'\n", flag, value.c_str());
  std::exit(2);
}

double parse_double(const char* flag, const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size()) bad_number(flag, s);
  return v;
}

unsigned parse_unsigned(const char* flag, const std::string& s) {
  // strtoul accepts "-1" (wraps to ULONG_MAX); require plain digits and
  // a value that fits in unsigned.
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    bad_number(flag, s);
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE ||
      v > std::numeric_limits<unsigned>::max()) {
    bad_number(flag, s);
  }
  return static_cast<unsigned>(v);
}

std::vector<double> parse_doubles(const char* flag, const std::string& csv) {
  std::vector<double> out;
  for (const auto& piece : msa::util::split(csv, ',')) {
    out.push_back(parse_double(flag, piece));
  }
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
                  content.size();
  return std::fclose(f) == 0 && ok;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threads N] [--trials N] [--defenses a,b] "
               "[--models a,b] [--delays s1,s2] [--scrubbers r1,r2] "
               "[--csv PATH] [--json PATH] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace msa;

  unsigned threads = 0;
  unsigned trials = 1;
  bool quiet = false;
  std::string csv_path;
  std::string json_path;
  // Defaults: 2 defenses x 2 models x 3 delays x 2 scrubber rates = 24
  // cells spanning "attack wins" to "scrubber beat the attacker".
  std::vector<std::string> defenses{"baseline", "zero_on_free"};
  std::vector<std::string> models{"resnet50_pt", "squeezenet_pt"};
  std::vector<double> delays{0.0, 5.0, 60.0};
  std::vector<double> scrubbers{0.0, 4.0 * 1024 * 1024};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--threads") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      threads = parse_unsigned("--threads", v);
    } else if (arg == "--trials") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      trials = parse_unsigned("--trials", v);
    } else if (arg == "--defenses") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      defenses = util::split(v, ',');
    } else if (arg == "--models") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      models = util::split(v, ',');
    } else if (arg == "--delays") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      delays = parse_doubles("--delays", v);
    } else if (arg == "--scrubbers") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      scrubbers = parse_doubles("--scrubbers", v);
    } else if (arg == "--csv") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      csv_path = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      json_path = v;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }

  attack::ScenarioConfig base;
  base.image_width = 96;
  base.image_height = 96;

  campaign::GridBuilder grid{base};
  grid.defenses(defenses).models(models).attack_delays_s(delays).scrubber_rates(
      scrubbers);

  campaign::CampaignOptions options;
  options.threads = threads;
  options.trials_per_cell = trials;
  if (!quiet) {
    options.on_cell_done = [](std::size_t done, std::size_t total) {
      std::fprintf(stderr, "\r[campaign] %zu/%zu cells", done, total);
      if (done == total) std::fputc('\n', stderr);
    };
  }

  campaign::SweepReport report;
  try {
    campaign::CampaignRunner runner{options};
    if (!quiet) {
      std::fprintf(stderr,
                   "[campaign] %zu cells x %u trial(s) on %u thread(s)\n",
                   grid.size(), trials, runner.thread_count());
    }
    report = runner.run(grid);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign failed: %s\n", e.what());
    return 1;
  }

  const std::string csv = report.to_csv();
  if (csv_path.empty()) {
    std::fputs(csv.c_str(), stdout);
  } else if (!write_file(csv_path, csv)) {
    std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    return 1;
  }
  if (!json_path.empty() && !write_file(json_path, report.to_json())) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }

  if (!quiet) {
    std::fprintf(stderr,
                 "[campaign] %zu trials: %zu full successes, %zu denials\n",
                 report.total_trials(), report.total_full_successes(),
                 report.total_denials());
  }
  return 0;
}
