// Parallel campaign sweep: fans the end-to-end scenario out over a
// cartesian grid of defense preset x model x attack delay x scrubber
// throughput, and prints (or writes) the aggregate report. The default
// grid is 24 cells; the CSV is byte-identical for any --threads value.
//
//   campaign_sweep [--threads N] [--trials N]
//                  [--defenses a,b,...] [--models a,b,...]
//                  [--delays s1,s2,...] [--scrubbers r1,r2,...]
//                  [--axis NAME=v1,v2,...]...
//                  [--no-profile-cache] [--fsync-every K]
//                  [--store PATH [--resume]] [--shard I/N]
//                  [--cell-budget K]
//                  [--workers-dir DIR --worker-id ID
//                   [--expiry-scans K] [--idle-backoff-ms M]]
//                  [--trace-out trace.json]
//                  [--csv out.csv] [--json out.json] [--quiet]
//   campaign_sweep merge [--workers-dir DIR | STORE...]
//                  [--csv out.csv] [--json out.json] [--quiet]
//   campaign_sweep stats [--format text|csv|json]
//                  [--workers-dir DIR | STORE...]
//   campaign_sweep diff [--format text|csv|json]
//                  [--exit-on-significant [--metric M] [--direction D]
//                   [--alpha A] [--min-effect E] [--permutations N]] A B
//   campaign_sweep compact STORE...
//   campaign_sweep metrics [--format text|csv|json] [sweep flags...]
//   campaign_sweep progress --workers-dir DIR [--once] [--interval-ms M]
//   campaign_sweep axes
//
// --axis sweeps ANY registered scenario knob (see `campaign_sweep axes`
// for the registry): each occurrence adds one grid dimension (or
// replaces the value list of a legacy axis named again), so
// `--axis power_cycled=0,1 --axis corrupt_fraction=0.5,1.0` crosses the
// default grid with a power-cycle axis and a corruption axis. Values are
// validated against the axis's type and range at parse time; an unknown
// axis name or a bad value exits 2.
//
// With --store, every finished trial and completed cell is streamed to a
// crash-safe on-disk record store; an interrupted sweep is continued with
// --resume (already-completed cells are skipped and the final report is
// byte-identical to an uninterrupted run). --shard I/N sweeps only the
// cells with index % N == I so N processes can cover the grid in
// parallel, one store file each; `merge` reassembles shard stores into
// the single-process report. --cell-budget K scores at most K new cells
// and exits 3 if that leaves the shard incomplete (the CI crash/restart
// harness and batch schedulers use this to bound one invocation's work).
//
// --workers-dir replaces the static --shard partition with work-stealing:
// every worker process points at the same directory (a shared filesystem
// across machines works), leases cells through its own append-only lease
// log, and streams results into its own store there. Heterogeneous cell
// costs even out automatically, a SIGKILLed worker's leases expire and
// its cells are re-run by survivors, and a restarted worker (same
// --worker-id) resumes its store. Each worker exits only when the WHOLE
// grid is complete and prints the merged report — byte-identical to the
// single-process run. `merge --workers-dir DIR` reassembles the report
// offline; `stats` prints per-cell percentiles/CIs and per-axis
// marginals from the trial stream (--format selects text, strict CSV,
// or JSON); `compact` drops superseded duplicate records a resumed or
// raced sweep leaves behind.
//
// `diff A B` compares two sweeps: each side is a store file or a
// workers directory, cells are aligned by AXIS VALUES on the axes the
// two sweeps share (never by index, so reordered, partially overlapping,
// or differently-dimensioned grids — a v1 four-axis store against a v2
// superset included — still pair up), and every matched cell gets its
// success-rate delta (B minus A) with a Newcombe/Wilson 95% CI and
// p-value (plus its Benjamini-Hochberg FDR adjustment over the matched
// cells), PSNR percentile shifts, and denial-rate change; unmatched
// cells are listed per side.
//
// `diff --exit-on-significant` turns the diff into a CI regression gate:
// a whole-grid paired sign-flip permutation test over the matched cells
// (seeded from the two stores' grid fingerprints — deterministic for a
// given pair of artifacts regardless of sweep thread count or shard
// layout) plus the per-cell FDR flags, evaluated against --metric
// (success_rate|denial|psnr_p50), --direction (regress|improve|any),
// --alpha, and --min-effect. A one-line verdict naming the offending
// cells goes to stderr and the process exits 4 when the gate trips; the
// requested diff output still goes to stdout either way.
//
// --trace-out enables the obs span recorder for the sweep and writes the
// collected spans as Chrome trace-event JSON (open it in Perfetto or
// chrome://tracing) when the sweep finishes. `metrics` runs the same
// sweep but prints the process metrics registry to stdout instead of the
// report CSV (the report still goes to --csv/--json files when asked);
// `progress` is a read-only live view over a work-stealing workers
// directory — per-worker claim/completion state, cells/s, and an ETA —
// that polls incrementally and exits when the grid is complete (--once
// renders a single deterministic snapshot instead).
//
// The offline-profiling phase is cached across cells and trials by
// default (reports are byte-identical either way; the cache only changes
// cells/second). --no-profile-cache re-profiles a fresh twin board per
// trial — the escape hatch for A/B-ing the cache itself.
//
// Exit codes: 0 success, 1 runtime failure, 2 usage, 3 sweep incomplete
// (cell budget reached), 4 regression gate tripped.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "campaign/axis.h"
#include "campaign/compare.h"
#include "campaign/gate.h"
#include "campaign/grid.h"
#include "campaign/report.h"
#include "campaign/runner.h"
#include "campaign/stats.h"
#include "defense/presets.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "persist/campaign_store.h"
#include "persist/lease_log.h"
#include "util/monotime.h"
#include "util/strings.h"
#include "vitis/model_zoo.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--threads N] [--trials N] [--defenses a,b] [--models a,b]\n"
      "          [--delays s1,s2] [--scrubbers r1,r2]\n"
      "          [--axis NAME=v1,v2,...]... [--no-profile-cache]\n"
      "          [--store PATH [--resume]] [--shard I/N] [--cell-budget K]\n"
      "          [--workers-dir DIR --worker-id ID [--expiry-scans K]\n"
      "           [--idle-backoff-ms M]] [--fsync-every K]\n"
      "          [--trace-out FILE] [--csv PATH] [--json PATH] [--quiet]\n"
      "       %s merge [--workers-dir DIR | STORE...]\n"
      "                [--csv PATH] [--json PATH] [--quiet]\n"
      "       %s stats [--format text|csv|json] [--cells AXIS=V1[,V2...]]...\n"
      "                [--workers-dir DIR | STORE...]\n"
      "       %s diff [--format text|csv|json] [--cells AXIS=V1[,V2...]]...\n"
      "               [--exit-on-significant [--metric M] [--direction D]\n"
      "                [--alpha A] [--min-effect E] [--permutations N]] A B\n"
      "                (A and B are each a store file or a workers dir)\n"
      "       %s compact [--max-level-bytes N] STORE...\n"
      "       %s metrics [--format text|csv|json] [sweep flags...]\n"
      "       %s progress --workers-dir DIR [--once] [--interval-ms M]\n"
      "       %s axes\n"
      "  --threads/--trials/--cell-budget/--fsync-every/--expiry-scans/\n"
      "  --idle-backoff-ms take positive integers; --delays/--scrubbers\n"
      "  take comma-separated finite non-negative reals\n"
      "  --axis sweeps any registered scenario knob (list them with the\n"
      "  `axes` subcommand); values are typed and validated per axis\n"
      "  --cells restricts stats/diff to cells matching every given\n"
      "  AXIS=VALUE[,VALUE...] clause (values by canonical label; on a\n"
      "  compacted store only the matching blocks are read)\n"
      "  compact rewrites stores into sorted block-indexed segments; the\n"
      "  default merges everything into one segment, --max-level-bytes N\n"
      "  keeps a tiered shape where levels over N bytes merge downward\n"
      "  --workers-dir is work-stealing mode (one process per --worker-id,\n"
      "  any number of machines over a shared filesystem); it excludes\n"
      "  --store/--resume/--shard/--cell-budget\n"
      "  --trace-out records trial-pipeline spans for the sweep and writes\n"
      "  Chrome trace-event JSON; `metrics` sweeps then prints the metrics\n"
      "  registry; `progress` watches a workers dir without writing to it\n"
      "  diff --exit-on-significant gates on a whole-grid paired\n"
      "  permutation test plus per-cell FDR flags: --metric\n"
      "  success_rate|denial|psnr_p50 (default success_rate), --direction\n"
      "  regress|improve|any (default regress), --alpha in (0,1) (default\n"
      "  0.05), --min-effect >= 0 (default 0), --permutations a positive\n"
      "  resample count (default 10000)\n"
      "  exit codes: 0 success/gate clean, 1 runtime failure, 2 usage\n"
      "  error, 3 sweep incomplete (cell budget reached), 4 regression\n"
      "  gate tripped\n",
      argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

/// `campaign_sweep axes`: the sweepable-knob registry, one line per axis.
int run_axes() {
  for (const msa::campaign::AxisDescriptor& axis :
       msa::campaign::axis_registry()) {
    std::string kind = msa::campaign::axis_kind_name(axis.kind);
    if (!axis.enum_labels.empty()) {
      kind += '{';
      for (std::size_t i = 0; i < axis.enum_labels.size(); ++i) {
        if (i > 0) kind += '|';
        kind += axis.enum_labels[i];
      }
      kind += '}';
    }
    std::printf("%-22s %-10s %s\n", axis.name.c_str(), kind.c_str(),
                axis.description.c_str());
  }
  return 0;
}

/// All "*.store" files under a workers directory, sorted for stable
/// error messages.
std::vector<std::string> worker_stores(const std::string& dir) {
  return msa::persist::list_store_files(dir);
}

enum class OutputFormat { kText, kCsv, kJson };

bool parse_format(const std::string& s, OutputFormat* format) {
  if (s == "text") *format = OutputFormat::kText;
  else if (s == "csv") *format = OutputFormat::kCsv;
  else if (s == "json") *format = OutputFormat::kJson;
  else return false;
  return true;
}

[[noreturn]] void bad_number(const char* argv0, const char* flag,
                             const std::string& value) {
  std::fprintf(stderr, "%s: bad value '%s'\n", flag, value.c_str());
  std::exit(usage(argv0));
}

/// Axis values (--delays/--scrubbers) must be finite and non-negative:
/// strtod happily parses "nan", "inf", and "-5", all of which would
/// silently build a nonsense grid axis (NaN delays never compare equal,
/// negative scrubber rates underflow the simulated timeline).
double parse_double(const char* argv0, const char* flag,
                    const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size() || !std::isfinite(v) ||
      v < 0.0) {
    bad_number(argv0, flag, s);
  }
  return v;
}

unsigned parse_unsigned(const char* argv0, const char* flag,
                        const std::string& s) {
  // strtoul accepts "-1" (wraps to ULONG_MAX); require plain digits and
  // a value that fits in unsigned.
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    bad_number(argv0, flag, s);
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE ||
      v > std::numeric_limits<unsigned>::max()) {
    bad_number(argv0, flag, s);
  }
  return static_cast<unsigned>(v);
}

/// Rejects zero as well: "--threads 0" and "--trials 0" are almost always
/// typos, and silently mapping them to a default hides the mistake.
unsigned parse_positive(const char* argv0, const char* flag,
                        const std::string& s) {
  const unsigned v = parse_unsigned(argv0, flag, s);
  if (v == 0) bad_number(argv0, flag, s);
  return v;
}

/// Byte counts (--max-level-bytes) go beyond unsigned range.
std::uint64_t parse_u64(const char* argv0, const char* flag,
                        const std::string& s) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    bad_number(argv0, flag, s);
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) {
    bad_number(argv0, flag, s);
  }
  return static_cast<std::uint64_t>(v);
}

/// One "--cells AXIS=V1[,V2...]" occurrence; repeats AND together.
bool parse_cells_clause(const std::string& spec,
                        msa::persist::CellFilter* filter) {
  try {
    filter->clauses.push_back(msa::persist::CellFilter::parse_clause(spec));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "--cells: %s\n", e.what());
    return false;
  }
  return true;
}

std::vector<double> parse_doubles(const char* argv0, const char* flag,
                                  const std::string& csv) {
  std::vector<double> out;
  for (const auto& piece : msa::util::split(csv, ',')) {
    out.push_back(parse_double(argv0, flag, piece));
  }
  return out;
}

/// "--shard I/N" with 0 <= I < N.
void parse_shard(const char* argv0, const std::string& s,
                 unsigned* shard_index, unsigned* shard_count) {
  const auto slash = s.find('/');
  if (slash == std::string::npos) bad_number(argv0, "--shard", s);
  *shard_index = parse_unsigned(argv0, "--shard", s.substr(0, slash));
  *shard_count = parse_positive(argv0, "--shard", s.substr(slash + 1));
  if (*shard_index >= *shard_count) bad_number(argv0, "--shard", s);
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
                  content.size();
  return std::fclose(f) == 0 && ok;
}

/// Emits the report as CSV (stdout or --csv) and optional JSON.
int emit_report(const msa::campaign::SweepReport& report,
                const std::string& csv_path, const std::string& json_path,
                bool quiet) {
  const std::string csv = report.to_csv();
  if (csv_path.empty()) {
    std::fputs(csv.c_str(), stdout);
  } else if (!write_file(csv_path, csv)) {
    std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    return 1;
  }
  if (!json_path.empty() && !write_file(json_path, report.to_json())) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  if (!quiet) {
    std::fprintf(stderr,
                 "[campaign] %zu trials: %zu full successes, %zu denials\n",
                 report.total_trials(), report.total_full_successes(),
                 report.total_denials());
  }
  return 0;
}

int run_merge(const char* argv0, int argc, char** argv) {
  bool quiet = false;
  std::string csv_path;
  std::string json_path;
  std::string workers_dir;
  std::vector<std::string> stores;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--csv") {
      const char* v = next();
      if (!v) return usage(argv0);
      csv_path = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return usage(argv0);
      json_path = v;
    } else if (arg == "--workers-dir") {
      const char* v = next();
      if (!v) return usage(argv0);
      workers_dir = v;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv0);
    } else {
      stores.push_back(arg);
    }
  }
  if (workers_dir.empty() == stores.empty()) return usage(argv0);

  msa::campaign::SweepReport report;
  try {
    if (!workers_dir.empty()) {
      stores = worker_stores(workers_dir);
      if (stores.empty()) {
        std::fprintf(stderr, "merge failed: no *.store files in %s\n",
                     workers_dir.c_str());
        return 1;
      }
      // Worker stores may legally duplicate a cell (lease reclaimed,
      // original worker resurrected); shard stores may not.
      report = msa::persist::merge_worker_stores(stores);
    } else {
      report = msa::persist::merge_stores(stores);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "merge failed: %s\n", e.what());
    return 1;
  }
  if (!quiet) {
    std::fprintf(stderr, "[campaign] merged %zu store(s): %zu cells\n",
                 stores.size(), report.cells.size());
  }
  return emit_report(report, csv_path, json_path, quiet);
}

int run_stats(const char* argv0, int argc, char** argv) {
  OutputFormat format = OutputFormat::kText;
  std::string workers_dir;
  std::vector<std::string> stores;
  msa::persist::CellFilter filter;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--workers-dir") {
      const char* v = next();
      if (!v) return usage(argv0);
      workers_dir = v;
    } else if (arg == "--format") {
      const char* v = next();
      if (!v || !parse_format(v, &format)) return usage(argv0);
    } else if (arg == "--cells") {
      const char* v = next();
      if (!v || !parse_cells_clause(v, &filter)) return usage(argv0);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv0);
    } else {
      stores.push_back(arg);
    }
  }
  if (workers_dir.empty() == stores.empty()) return usage(argv0);

  try {
    if (!workers_dir.empty()) {
      stores = worker_stores(workers_dir);
      if (stores.empty()) {
        std::fprintf(stderr, "stats failed: no *.store files in %s\n",
                     workers_dir.c_str());
        return 1;
      }
    }
    const msa::persist::SweepData data =
        msa::persist::load_sweep(stores, filter);
    const msa::campaign::StatsReport report = msa::campaign::analyze_sweep(data);
    const std::string out = format == OutputFormat::kText ? report.to_text()
                            : format == OutputFormat::kCsv ? report.to_csv()
                                                           : report.to_json();
    std::fputs(out.c_str(), stdout);
    if (format == OutputFormat::kJson) std::fputc('\n', stdout);
    if (data.truncated_tail) {
      std::fprintf(stderr,
                   "[campaign] warning: a store had a torn tail (crashed "
                   "writer); its unflushed records were skipped\n");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stats failed: %s\n", e.what());
    return 1;
  }
  return 0;
}

int run_diff(const char* argv0, int argc, char** argv) {
  OutputFormat format = OutputFormat::kText;
  bool gate_enabled = false;
  bool gate_flag_seen = false;  // any of the gate-tuning flags
  msa::campaign::GateSpec spec;
  msa::persist::CellFilter filter;
  std::vector<std::string> sides;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--format") {
      const char* v = next();
      if (!v || !parse_format(v, &format)) return usage(argv0);
    } else if (arg == "--cells") {
      const char* v = next();
      if (!v || !parse_cells_clause(v, &filter)) return usage(argv0);
    } else if (arg == "--exit-on-significant") {
      gate_enabled = true;
    } else if (arg == "--metric") {
      const char* v = next();
      gate_flag_seen = true;
      if (!v || !msa::campaign::parse_diff_metric(v, &spec.metric)) {
        std::fprintf(stderr,
                     "--metric wants success_rate|denial|psnr_p50 (got '%s')\n",
                     v ? v : "");
        return usage(argv0);
      }
    } else if (arg == "--direction") {
      const char* v = next();
      gate_flag_seen = true;
      if (!v || !msa::campaign::parse_gate_direction(v, &spec.direction)) {
        std::fprintf(stderr,
                     "--direction wants regress|improve|any (got '%s')\n",
                     v ? v : "");
        return usage(argv0);
      }
    } else if (arg == "--alpha") {
      const char* v = next();
      gate_flag_seen = true;
      if (!v) return usage(argv0);
      // A significance level is strictly inside (0,1): 0 can never trip
      // and 1 always trips, both configuration mistakes.
      char* end = nullptr;
      spec.alpha = std::strtod(v, &end);
      if (*v == '\0' || *end != '\0' || !std::isfinite(spec.alpha) ||
          spec.alpha <= 0.0 || spec.alpha >= 1.0) {
        bad_number(argv0, "--alpha", v);
      }
    } else if (arg == "--min-effect") {
      const char* v = next();
      gate_flag_seen = true;
      if (!v) return usage(argv0);
      spec.min_effect = parse_double(argv0, "--min-effect", v);
    } else if (arg == "--permutations") {
      const char* v = next();
      gate_flag_seen = true;
      if (!v) return usage(argv0);
      spec.iterations = parse_positive(argv0, "--permutations", v);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv0);
    } else {
      sides.push_back(arg);
    }
  }
  if (sides.size() != 2) return usage(argv0);
  if (gate_flag_seen && !gate_enabled) {
    std::fprintf(stderr,
                 "--metric/--direction/--alpha/--min-effect/--permutations "
                 "require --exit-on-significant\n");
    return usage(argv0);
  }

  try {
    const msa::persist::SweepData a =
        msa::persist::load_sweep_path(sides[0], filter);
    const msa::persist::SweepData b =
        msa::persist::load_sweep_path(sides[1], filter);
    for (std::size_t side = 0; side < 2; ++side) {
      if ((side == 0 ? a : b).truncated_tail) {
        std::fprintf(stderr,
                     "[campaign] warning: %s had a torn tail (crashed "
                     "writer); its unflushed records were skipped\n",
                     sides[side].c_str());
      }
    }
    const msa::campaign::DiffReport report = msa::campaign::diff_sweeps(
        msa::campaign::analyze_sweep(a), msa::campaign::analyze_sweep(b));
    const std::string out = format == OutputFormat::kText ? report.to_text()
                            : format == OutputFormat::kCsv ? report.to_csv()
                                                           : report.to_json();
    std::fputs(out.c_str(), stdout);
    if (format == OutputFormat::kJson) std::fputc('\n', stdout);
    if (gate_enabled) {
      const msa::campaign::GateResult gate = msa::campaign::evaluate_gate(
          report, spec,
          msa::campaign::gate_seed(a.manifest.grid_fingerprint,
                                   b.manifest.grid_fingerprint));
      std::fprintf(stderr, "[campaign] %s\n", gate.verdict_line().c_str());
      if (gate.tripped()) return 4;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "diff failed: %s\n", e.what());
    return 1;
  }
  return 0;
}

int run_compact(const char* argv0, int argc, char** argv) {
  msa::persist::CompactOptions options;
  std::vector<std::string> stores;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-level-bytes") {
      const char* v = i + 1 < argc ? argv[++i] : nullptr;
      if (!v) return usage(argv0);
      options.max_level_bytes = parse_u64(argv0, "--max-level-bytes", v);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv0);
    } else {
      stores.push_back(arg);
    }
  }
  if (stores.empty()) return usage(argv0);

  for (const std::string& path : stores) {
    try {
      const msa::persist::CompactionResult result =
          msa::persist::compact_store(path, options);
      std::fprintf(stderr,
                   "[campaign] compacted %s: %llu -> %llu bytes, "
                   "%zu segment(s) (%zu trial record(s), %zu cell "
                   "record(s) dropped)\n",
                   path.c_str(),
                   static_cast<unsigned long long>(result.bytes_before),
                   static_cast<unsigned long long>(result.bytes_after),
                   result.segments_live, result.trials_dropped,
                   result.cells_dropped);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "compact failed: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}

/// `campaign_sweep progress`: read-only live view over a work-stealing
/// workers directory. Exits 0 once the grid is complete (immediately
/// with --once), 2 when --workers-dir is missing or points at nothing
/// observable.
int run_progress(const char* argv0, int argc, char** argv) {
  std::string workers_dir;
  bool once = false;
  unsigned interval_ms = 1000;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--workers-dir") {
      const char* v = next();
      if (!v) {
        std::fprintf(stderr, "--workers-dir wants a directory\n");
        return usage(argv0);
      }
      workers_dir = v;
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--interval-ms") {
      const char* v = next();
      if (!v) return usage(argv0);
      interval_ms = parse_positive(argv0, "--interval-ms", v);
    } else {
      return usage(argv0);
    }
  }
  if (workers_dir.empty()) {
    std::fprintf(stderr, "progress wants --workers-dir DIR\n");
    return usage(argv0);
  }

  // Construction failure (missing directory, no lease log yet) is a
  // usage-shaped error: --workers-dir pointed at nothing observable.
  std::optional<msa::obs::ProgressView> view;
  try {
    view.emplace(workers_dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "--workers-dir %s: %s\n", workers_dir.c_str(),
                 e.what());
    return usage(argv0);
  }

  try {
    if (once) {
      std::fputs(msa::obs::ProgressView::render(view->poll(), -1.0).c_str(),
                 stdout);
      return 0;
    }
    const bool tty = isatty(STDOUT_FILENO) != 0;
    const std::uint64_t start_ns = msa::util::monotonic_ns();
    std::uint64_t baseline = 0;
    bool have_baseline = false;
    for (;;) {
      const msa::obs::ProgressSnapshot snapshot = view->poll();
      if (!have_baseline) {
        baseline = snapshot.completed_cells;
        have_baseline = true;
      }
      // Rate over this observer's own window: cells completed since the
      // first poll, not since the sweep began (a late-joining watcher
      // would otherwise report a stale, inflated rate).
      const std::uint64_t elapsed = msa::util::monotonic_ns() - start_ns;
      double cells_per_s = -1.0;
      if (elapsed > 0 && snapshot.completed_cells > baseline) {
        cells_per_s = static_cast<double>(snapshot.completed_cells - baseline) *
                      1e9 / static_cast<double>(elapsed);
      }
      if (tty) std::fputs("\x1b[H\x1b[J", stdout);
      std::fputs(msa::obs::ProgressView::render(snapshot, cells_per_s).c_str(),
                 stdout);
      std::fflush(stdout);
      if (snapshot.complete()) return 0;
      std::this_thread::sleep_for(std::chrono::milliseconds{interval_ms});
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "progress failed: %s\n", e.what());
  }
  return 1;
}

/// The sweep driver behind both the default invocation and the `metrics`
/// subcommand (`metrics_mode` swaps the stdout report CSV for a
/// metrics-registry snapshot; --csv/--json still write the report).
/// argv[0] is the program name; flags start at argv[1].
int run_sweep(int argc, char** argv, bool metrics_mode) {
  using namespace msa;

  OutputFormat metrics_format = OutputFormat::kText;
  std::string trace_out;
  unsigned threads = 0;  // 0 = hardware concurrency (flag rejects 0)
  unsigned trials = 1;
  unsigned shard_index = 0;
  unsigned shard_count = 1;
  unsigned cell_budget = 0;  // 0 = unlimited
  unsigned fsync_every = 0;  // 0 = flush only (default durability)
  unsigned expiry_scans = 8;
  unsigned idle_backoff_ms = 25;
  bool resume = false;
  bool quiet = false;
  bool profile_cache = true;
  std::string store_path;
  std::string workers_dir;
  std::string worker_id;
  std::string csv_path;
  std::string json_path;
  // Defaults: 2 defenses x 2 models x 3 delays x 2 scrubber rates = 24
  // cells spanning "attack wins" to "scrubber beat the attacker".
  std::vector<std::string> defenses{"baseline", "zero_on_free"};
  std::vector<std::string> models{"resnet50_pt", "squeezenet_pt"};
  std::vector<double> delays{0.0, 5.0, 60.0};
  std::vector<double> scrubbers{0.0, 4.0 * 1024 * 1024};
  // --axis occurrences, validated at parse time, applied to the grid
  // after the legacy flags (so `--axis delay_s=...` overrides --delays).
  std::vector<std::pair<std::string, std::vector<campaign::AxisValue>>>
      axis_flags;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--threads") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      threads = parse_positive(argv[0], "--threads", v);
    } else if (arg == "--trials") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      trials = parse_positive(argv[0], "--trials", v);
    } else if (arg == "--defenses") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      defenses = util::split(v, ',');
    } else if (arg == "--models") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      models = util::split(v, ',');
    } else if (arg == "--delays") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      delays = parse_doubles(argv[0], "--delays", v);
    } else if (arg == "--scrubbers") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      scrubbers = parse_doubles(argv[0], "--scrubbers", v);
    } else if (arg == "--axis") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      const std::string spec = v;
      const auto eq = spec.find('=');
      if (eq == 0 || eq == std::string::npos || eq + 1 == spec.size()) {
        std::fprintf(stderr, "--axis wants NAME=v1,v2,... (got '%s')\n",
                     spec.c_str());
        return usage(argv[0]);
      }
      const std::string name = spec.substr(0, eq);
      const campaign::AxisDescriptor* axis = campaign::find_axis(name);
      if (axis == nullptr) {
        std::fprintf(stderr,
                     "--axis: unknown axis '%s' (list the registry with "
                     "`%s axes`)\n",
                     name.c_str(), argv[0]);
        return usage(argv[0]);
      }
      std::vector<campaign::AxisValue> values;
      for (const auto& piece : util::split(spec.substr(eq + 1), ',')) {
        try {
          values.push_back(campaign::parse_axis_value(*axis, piece));
        } catch (const std::exception& e) {
          std::fprintf(stderr, "--axis: %s\n", e.what());
          return usage(argv[0]);
        }
        // Catch duplicates here for a clean exit 2; GridBuilder would
        // reject them at build() time (exit 1) otherwise.
        for (std::size_t j = 0; j + 1 < values.size(); ++j) {
          if (values[j] == values.back()) {
            std::fprintf(stderr, "--axis: axis '%s' repeats value '%s'\n",
                         name.c_str(), values.back().label().c_str());
            return usage(argv[0]);
          }
        }
      }
      axis_flags.emplace_back(name, std::move(values));
    } else if (arg == "--store") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      store_path = v;
    } else if (arg == "--workers-dir") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      workers_dir = v;
    } else if (arg == "--worker-id") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      worker_id = v;
    } else if (arg == "--expiry-scans") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      expiry_scans = parse_positive(argv[0], "--expiry-scans", v);
    } else if (arg == "--idle-backoff-ms") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      // Zero would busy-spin the endgame AND shrink the lease-expiry
      // window to ~nothing (mass-stealing live peers' cells).
      idle_backoff_ms = parse_positive(argv[0], "--idle-backoff-ms", v);
    } else if (arg == "--fsync-every") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      fsync_every = parse_positive(argv[0], "--fsync-every", v);
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--no-profile-cache") {
      profile_cache = false;
    } else if (arg == "--shard") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      parse_shard(argv[0], v, &shard_index, &shard_count);
    } else if (arg == "--cell-budget") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cell_budget = parse_positive(argv[0], "--cell-budget", v);
    } else if (arg == "--csv") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      csv_path = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      json_path = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) {
        std::fprintf(stderr, "--trace-out wants a file path\n");
        return usage(argv[0]);
      }
      trace_out = v;
    } else if (metrics_mode && arg == "--format") {
      const char* v = next();
      if (!v || !parse_format(v, &metrics_format)) {
        std::fprintf(stderr, "metrics --format wants text|csv|json (got '%s')\n",
                     v ? v : "");
        return usage(argv[0]);
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (store_path.empty() && (resume || cell_budget != 0)) {
    std::fprintf(stderr, "--resume/--cell-budget require --store\n");
    return usage(argv[0]);
  }
  if (workers_dir.empty() != worker_id.empty()) {
    std::fprintf(stderr, "--workers-dir and --worker-id go together\n");
    return usage(argv[0]);
  }
  if (!workers_dir.empty() &&
      (!store_path.empty() || resume || cell_budget != 0 || shard_count > 1)) {
    std::fprintf(stderr,
                 "--workers-dir (work-stealing) excludes "
                 "--store/--resume/--shard/--cell-budget\n");
    return usage(argv[0]);
  }
  if (!worker_id.empty() &&
      !persist::LeaseScheduler::valid_worker_id(worker_id)) {
    std::fprintf(stderr, "--worker-id must match [A-Za-z0-9_-]+\n");
    return usage(argv[0]);
  }

  // Recording starts before the runner exists so every pool thread's
  // ring is live from its first span; export happens after run() joins.
  if (!trace_out.empty()) obs::Trace::enable();

  attack::ScenarioConfig base;
  base.image_width = 96;
  base.image_height = 96;

  campaign::GridBuilder grid{base};
  grid.defenses(defenses).models(models).attack_delays_s(delays).scrubber_rates(
      scrubbers);
  for (auto& [axis_name, axis_values] : axis_flags) {
    grid.axis(axis_name, std::move(axis_values));
  }
  if (shard_count > 1) grid.shard(shard_index, shard_count);

  campaign::CampaignOptions options;
  options.threads = threads;
  options.trials_per_cell = trials;
  options.share_profiles = profile_cache;
  if (!quiet) {
    options.on_cell_done = [](std::size_t done, std::size_t total) {
      std::fprintf(stderr, "\r[campaign] %zu/%zu cells", done, total);
      if (done == total) std::fputc('\n', stderr);
    };
  }

  campaign::SweepReport report;
  std::size_t shard_cells = 0;
  std::size_t completed = 0;
  try {
    campaign::CampaignRunner runner{options};
    shard_cells = grid.size();
    if (!quiet) {
      std::fprintf(stderr,
                   "[campaign] %zu cells x %u trial(s) on %u thread(s)%s\n",
                   shard_cells, trials, runner.thread_count(),
                   !workers_dir.empty()    ? " (work-stealing)"
                   : shard_count > 1 ? " (sharded)" : "");
    }
    if (!workers_dir.empty()) {
      // Work-stealing mode: lease cells from the shared directory, stream
      // results into this worker's own store there, and exit only when
      // the WHOLE grid is complete — at which point the merged report can
      // be emitted locally (every worker computes identical bytes).
      persist::StoreManifest manifest;
      manifest.grid_fingerprint = grid.fingerprint();
      manifest.grid_cells = grid.full_size();
      manifest.trials_per_cell = trials;
      manifest.trial_salt = options.trial_salt;
      manifest.axes = grid.axis_schema();
      std::filesystem::create_directories(workers_dir);
      persist::CampaignStore store{
          persist::LeaseScheduler::store_path(workers_dir, worker_id),
          manifest, persist::CampaignStore::Mode::kCreateOrResume,
          persist::StoreOptions{fsync_every}};
      persist::LeaseSchedulerOptions lease_options;
      lease_options.expiry_scans = expiry_scans;
      lease_options.idle_backoff = std::chrono::milliseconds{idle_backoff_ms};
      persist::LeaseScheduler scheduler{workers_dir,    worker_id,
                                        grid.build(),   manifest,
                                        &store,         lease_options};
      if (!quiet && scheduler.planned() < shard_cells) {
        std::fprintf(stderr, "[campaign] joining: %zu/%zu cells already done\n",
                     shard_cells - scheduler.planned(), shard_cells);
      }
      (void)runner.run(scheduler, store);
      const persist::LeaseScheduler::Telemetry t = scheduler.telemetry();
      if (!quiet) {
        std::fprintf(stderr,
                     "[campaign] worker %s: %llu claim(s) (%llu stolen), "
                     "%llu forfeit(s), %llu scan(s), %zu cell(s) in store\n",
                     worker_id.c_str(),
                     static_cast<unsigned long long>(t.claims),
                     static_cast<unsigned long long>(t.steals),
                     static_cast<unsigned long long>(t.forfeits),
                     static_cast<unsigned long long>(t.scans),
                     store.completed_count());
      }
      report = persist::merge_worker_stores(worker_stores(workers_dir));
      completed = shard_cells;
    } else if (store_path.empty()) {
      report = runner.run(grid);
      completed = shard_cells;
    } else {
      persist::StoreManifest manifest;
      manifest.grid_fingerprint = grid.fingerprint();
      manifest.grid_cells = grid.full_size();
      manifest.trials_per_cell = trials;
      manifest.trial_salt = options.trial_salt;
      manifest.shard_index = shard_index;
      manifest.shard_count = shard_count;
      manifest.axes = grid.axis_schema();
      persist::CampaignStore store{store_path, manifest,
                                   resume
                                       ? persist::CampaignStore::Mode::kResume
                                       : persist::CampaignStore::Mode::kCreate,
                                   persist::StoreOptions{fsync_every}};
      if (resume && !quiet) {
        std::fprintf(stderr, "[campaign] resuming: %zu/%zu cells on disk\n",
                     store.completed_count(), shard_cells);
      }
      report = runner.run(grid, store, cell_budget);
      completed = store.completed_count();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign failed: %s\n", e.what());
    return 1;
  }

  // In lease mode the emitted report is the merged cross-worker one,
  // which carries no cache telemetry — printing its zeros would mislead.
  if (!quiet && profile_cache && workers_dir.empty()) {
    std::fprintf(stderr,
                 "[campaign] profile cache: %llu hits, %llu misses "
                 "(%llu twin boards built, %llu reused)\n",
                 static_cast<unsigned long long>(report.profile_cache_hits),
                 static_cast<unsigned long long>(report.profile_cache_misses),
                 static_cast<unsigned long long>(report.twin_boards_built),
                 static_cast<unsigned long long>(report.twin_boards_reused));
  }

  // The trace is written even when the cell budget cuts the sweep short:
  // a bounded invocation's spans are exactly what a CI drill inspects.
  if (!trace_out.empty() &&
      !write_file(trace_out, obs::Trace::chrome_json())) {
    std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
    return 1;
  }

  if (completed < shard_cells) {
    std::fprintf(stderr,
                 "[campaign] cell budget reached: %zu/%zu cells persisted; "
                 "re-run with --resume to continue\n",
                 completed, shard_cells);
    return 3;
  }
  if (metrics_mode) {
    if (!csv_path.empty() && !write_file(csv_path, report.to_csv())) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 1;
    }
    if (!json_path.empty() && !write_file(json_path, report.to_json())) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    const obs::MetricsFormat fmt =
        metrics_format == OutputFormat::kText  ? obs::MetricsFormat::kText
        : metrics_format == OutputFormat::kCsv ? obs::MetricsFormat::kCsv
                                               : obs::MetricsFormat::kJson;
    std::fputs(obs::render_metrics(fmt).c_str(), stdout);
    return 0;
  }
  return emit_report(report, csv_path, json_path, quiet);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "merge") == 0) {
    return run_merge(argv[0], argc - 2, argv + 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "stats") == 0) {
    return run_stats(argv[0], argc - 2, argv + 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "diff") == 0) {
    return run_diff(argv[0], argc - 2, argv + 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "compact") == 0) {
    return run_compact(argv[0], argc - 2, argv + 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "progress") == 0) {
    return run_progress(argv[0], argc - 2, argv + 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "axes") == 0) {
    return argc == 2 ? run_axes() : usage(argv[0]);
  }
  if (argc > 1 && std::strcmp(argv[1], "metrics") == 0) {
    // Reuse the sweep parser with the subcommand word spliced out, so
    // `metrics` accepts every sweep flag unchanged.
    std::vector<char*> shifted;
    shifted.push_back(argv[0]);
    for (int i = 2; i < argc; ++i) shifted.push_back(argv[i]);
    return run_sweep(static_cast<int>(shifted.size()), shifted.data(), true);
  }
  return run_sweep(argc, argv, false);
}
