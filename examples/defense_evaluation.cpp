// Defense evaluation: runs the full attack under every defense preset and
// prints the outcome table (DESIGN.md Abl. A), plus the sanitization cost
// trade-off the paper's related-work section discusses (CPU stores vs
// RowClone vs RowReset, contiguous vs scattered frames).
#include <cstdio>

#include "defense/evaluator.h"
#include "defense/sanitize_cost.h"

int main() {
  using namespace msa;

  attack::ScenarioConfig base;
  base.image_width = 96;
  base.image_height = 96;

  std::puts("== attack outcome under each defense (3 trials each) ==\n");
  defense::DefenseEvaluator evaluator{base};
  const auto outcomes = evaluator.evaluate_all(/*trials=*/3);
  std::printf("%s\n", defense::DefenseEvaluator::format_table(outcomes).c_str());

  std::puts("== sanitization cost: 256 freed 4 KiB frames ==\n");
  defense::SanitizeCostModel model{
      dram::DramTimingModel{dram::DramConfig::zcu104()}};

  const std::vector<mem::Pfn> live =
      defense::make_frame_set(0x60001, 256, 2);  // co-tenant pages interleaved
  std::printf("%-14s %14s %14s %14s %8s %12s\n", "layout", "cpu-zero(ns)",
              "rowclone(ns)", "rowreset(ns)", "rows", "collateral");
  for (const auto& [label, stride] :
       {std::pair{"contiguous", 1ULL}, {"stride-2", 2ULL}, {"stride-16", 16ULL}}) {
    const auto freed = defense::make_frame_set(0x60000, 256, stride);
    const auto r = model.cost(freed, live);
    std::printf("%-14s %14.0f %14.0f %14.0f %8llu %9llu B\n", label,
                r.cpu_zero_ns, r.rowclone_ns, r.rowreset_ns,
                static_cast<unsigned long long>(r.rows_touched),
                static_cast<unsigned long long>(r.collateral_bytes));
  }
  std::puts("\n(collateral = live co-tenant bytes destroyed by whole-row zeroing;");
  std::puts(" the paper's argument for why bulk in-DRAM init is unsafe in");
  std::puts(" non-contiguous multi-tenant layouts)");
  return 0;
}
