// Model-zoo profiling: the adversary's offline phase in isolation.
// Profiles every bundled model on an attacker-controlled board, printing
// the learned heap layout (image offset, anchor-string offset, heap size)
// — the knowledge base the online attack consumes.
#include <cstdio>

#include "attack/profiler.h"
#include "dbg/debugger.h"
#include "os/system.h"
#include "vitis/runtime.h"

int main() {
  using namespace msa;

  os::PetaLinuxSystem board{os::SystemConfig::zcu104()};
  board.add_user(1001, "attacker");
  vitis::VitisAiRuntime runtime{board};
  dbg::SystemDebugger debugger{board, 1001};

  attack::OfflineProfiler profiler{runtime, debugger};

  std::puts("profiling Vitis-AI zoo with 0x555555 marker images (96x96)...\n");
  std::printf("%-18s %12s %14s %12s\n", "model", "heap-bytes", "image-offset",
              "path-anchor");
  for (const auto& name : vitis::zoo_model_names()) {
    const attack::ModelProfile p =
        profiler.profile_model(name, 96, 96, /*as_uid=*/1001);
    std::printf("%-18s %12llu %14llu %12llu\n", name.c_str(),
                static_cast<unsigned long long>(p.heap_bytes),
                static_cast<unsigned long long>(p.image_offset),
                static_cast<unsigned long long>(p.path_string_offset));
  }
  std::puts("\nimage-offset is stable across runs of the same model because");
  std::puts("PetaLinux randomizes neither the heap layout nor the physical");
  std::puts("placement -- the property the paper's Step 4.b exploits.");
  return 0;
}
