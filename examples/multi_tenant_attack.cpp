// Multi-tenant scenario: two victims share the board back-to-back; the
// attacker replays the full four-step methodology against each, printing
// the figure-style artifacts (ps listings, maps, virtual_to_physical,
// devmem, grep) along the way. Demonstrates the staged orchestrator API
// rather than the one-call scenario driver.
//
// Several knobs this example hard-codes are registered campaign axes
// (`campaign_sweep axes` lists them all): the victim model, the image
// seed/dimensions, and — were a delay inserted between victim exit and
// scrape — delay_s, power_cycled, and scrubber_Bps. To measure how any
// of them shifts the success rate instead of eyeballing one run, sweep
// it, e.g. `campaign_sweep --models resnet50_pt,inception_v1_tf --axis
// image_seed=7001,7002 --axis power_cycled=0,1`.
#include <cstdio>

#include "attack/orchestrator.h"
#include "attack/scenario.h"
#include "dbg/debugger.h"
#include "os/system.h"
#include "util/strings.h"
#include "vitis/runtime.h"

namespace {

void attack_one(msa::os::PetaLinuxSystem& board,
                msa::vitis::VitisAiRuntime& runtime,
                msa::attack::AttackOrchestrator& orchestrator,
                msa::os::Uid victim_uid, const std::string& model,
                std::uint64_t image_seed) {
  using namespace msa;

  std::printf("---- victim (uid %u) runs %s ----\n", victim_uid, model.c_str());
  const img::Image input = img::make_test_image(112, 112, image_seed);
  const vitis::VictimRun run = runtime.launch(victim_uid, model, input, "pts/1");

  // Step 1: the attacker's poll sees the victim appear.
  const auto entry = orchestrator.find_victim(model);
  if (!entry) {
    std::puts("victim not found in ps -- aborting");
    return;
  }
  std::printf("[step 1] victim pid %lld: %s\n",
              static_cast<long long>(entry->pid), entry->cmd.c_str());

  // Step 2: resolve heap physical pages while the process lives.
  const attack::ResolvedTarget target = orchestrator.resolve(entry->pid);
  std::printf("[step 2] heap %s-%s, first page -> %s\n",
              util::hex_no_prefix(target.heap_start).c_str(),
              util::hex_no_prefix(target.heap_end).c_str(),
              target.page_pa.empty() || !target.page_pa[0]
                  ? "<unmapped>"
                  : util::hex_0x(*target.page_pa[0]).c_str());

  // The victim finishes; its pid vanishes from ps.
  board.terminate(run.pid);
  std::printf("[step 3] victim terminated: %s\n",
              orchestrator.victim_terminated(entry->pid) ? "confirmed" : "NO");

  // Steps 3-4: scrape + analyze.
  const attack::AttackReport report =
      orchestrator.attack_after_termination(target);
  std::printf("%s", report.transcript.c_str());
  std::printf("=> identified '%s', image %s\n\n",
              report.identified_model.c_str(),
              report.image_recovered() ? "recovered" : "lost");
}

}  // namespace

int main() {
  using namespace msa;

  // One shared vulnerable board; the attacker profiles both models on a
  // twin board first (paper: offline profiling of the Xilinx library).
  attack::ScenarioConfig base;  // supplies board defaults
  attack::ProfileDb profiles;
  for (const std::string model : {"resnet50_pt", "squeezenet_pt"}) {
    attack::ScenarioConfig c = base;
    c.model_name = model;
    c.image_width = 112;
    c.image_height = 112;
    profiles.add(attack::profile_on_twin_board(c));
  }

  os::PetaLinuxSystem board{base.system};
  board.add_user(1000, "tenant_a");
  board.add_user(1002, "tenant_b");
  board.add_user(1001, "attacker");
  vitis::VitisAiRuntime runtime{board};

  dbg::SystemDebugger debugger{board, /*invoking_uid=*/1001};
  attack::AttackOrchestrator orchestrator{debugger, attack::SignatureDb::for_zoo(),
                                          std::move(profiles)};

  // Tenant A then tenant B — the attacker harvests both worktops.
  attack_one(board, runtime, orchestrator, 1000, "resnet50_pt", 11);
  attack_one(board, runtime, orchestrator, 1002, "squeezenet_pt", 23);

  std::printf("total devmem reads issued by the debugger: %llu\n",
              static_cast<unsigned long long>(debugger.stats().devmem_reads));
  return 0;
}
