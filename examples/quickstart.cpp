// Quickstart: the paper's end-to-end attack on one page of code.
//
// A victim runs resnet50_pt on a Xilinx ZCU104 running PetaLinux; after
// the victim exits, an attacker in a different user space scrapes the
// victim's heap residue out of the FPGA board DRAM, identifies the model
// from strings, and reconstructs the input image. Writes the victim input
// and the reconstruction to PPM files for visual comparison.
#include <cstdio>

#include "attack/scenario.h"
#include "img/ppm.h"

int main() {
  using namespace msa;

  attack::ScenarioConfig config;           // ZCU104 + vulnerable defaults
  config.model_name = "resnet50_pt";
  config.image_width = 128;
  config.image_height = 128;

  std::puts("== Memory Scraping Attack quickstart ==");
  std::puts("board: ZCU104, OS: PetaLinux (no sanitization, world-readable");
  std::puts("pagemaps, unrestricted debugger) -- the paper's target.\n");

  const attack::ScenarioResult result = attack::run_scenario(config);

  std::printf("%s\n", result.report.transcript.c_str());
  std::printf("victim pid .............. %lld\n",
              static_cast<long long>(result.report.victim_pid));
  std::printf("residue scraped ......... %llu bytes (%llu devmem reads)\n",
              static_cast<unsigned long long>(result.report.residue_bytes),
              static_cast<unsigned long long>(result.report.devmem_reads));
  std::printf("model identified ........ %s (%zu signature hits)\n",
              result.report.identified_model.c_str(),
              result.report.signature_hits);
  if (result.report.deep_match) {
    std::printf("deep (xmodel) recovery .. %s, %zu weight bytes at offset %zu\n",
                result.report.deep_match->model_name.c_str(),
                result.report.deep_match->param_bytes,
                result.report.deep_match->container_offset);
  }
  std::printf("image reconstructed ..... %s\n",
              result.report.image_recovered() ? "yes" : "no");
  std::printf("pixel match ............. %.4f (PSNR %.1f dB)\n",
              result.pixel_match, result.psnr);

  img::write_ppm_file(result.victim_input, "quickstart_victim_input.ppm");
  if (result.report.reconstructed_image) {
    img::write_ppm_file(*result.report.reconstructed_image,
                        "quickstart_reconstructed.ppm");
    std::puts("\nwrote quickstart_victim_input.ppm / quickstart_reconstructed.ppm");
  }
  return result.full_success() ? 0 : 1;
}
