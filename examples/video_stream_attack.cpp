// Video-pipeline attack: the victim runs a camera pipeline that pushes a
// stream of frames through resnet50_pt using a ring of reusable buffers.
// After the pipeline exits, the attacker scrapes the residue and recovers
// not one image but the last `ring` frames the camera saw — each located
// by its own surviving DPU descriptor, no offline profiling needed.
//
// The residue-decay knobs this demo leaves at their defaults are all
// registered campaign axes (`campaign_sweep axes`): delay_s and
// retention_half_life_s govern how many ring frames survive the wait,
// power_cycled models a reboot between victim and attacker, and
// corrupt_image/corrupt_fraction degrade the recovered frames. A sweep
// like `campaign_sweep --delays 0,5,30 --axis retention_half_life_s=2,8`
// turns this single anecdote into the paper's retention curves.
#include <cstdio>

#include "attack/address_resolver.h"
#include "attack/descriptor_scan.h"
#include "attack/scraper.h"
#include "attack/signature_db.h"
#include "img/ppm.h"
#include "os/system.h"
#include "vitis/model_zoo.h"
#include "vitis/stream_runner.h"

int main() {
  using namespace msa;

  os::PetaLinuxSystem board{os::SystemConfig::zcu104()};
  board.add_user(1000, "camera_pipeline");
  board.add_user(1001, "attacker");

  // ---- victim: 12 frames through a 4-deep buffer ring --------------------
  constexpr std::size_t kFrames = 12;
  constexpr std::uint32_t kRing = 4;
  std::vector<img::Image> frames;
  for (std::size_t i = 0; i < kFrames; ++i) {
    frames.push_back(img::make_test_image(96, 96, 4000 + i));
  }

  const os::Pid pid = board.spawn(
      1000, {"./video_pipeline", "--model=resnet50_pt", "--ring=4"}, "pts/1");
  const vitis::XModel model = vitis::make_zoo_model("resnet50_pt");
  vitis::StreamRunner runner{board};
  const vitis::StreamRunResult run = runner.run(pid, model, frames, kRing);
  std::printf("victim pipeline processed %zu frames (ring depth %u)\n",
              run.top_classes.size(), kRing);

  // ---- attacker: resolve live, scrape after exit --------------------------
  dbg::SystemDebugger debugger{board, 1001};
  attack::AddressResolver resolver{debugger};
  const attack::ResolvedTarget target = resolver.resolve_heap(pid);
  board.terminate(pid);

  attack::MemoryScraper scraper{debugger};
  const attack::ScrapedDump dump = scraper.scrape(target);
  std::printf("scraped %zu bytes of residue\n", dump.bytes.size());

  const attack::SignatureDb db = attack::SignatureDb::for_zoo();
  std::printf("model identified: %s\n",
              db.identify(dump.bytes).value_or("<none>").c_str());

  const auto recovered = attack::recover_frame_ring(dump);
  std::printf("frames recovered from the ring: %zu\n\n", recovered.size());

  // Score each recovered frame against the ground-truth stream.
  for (std::size_t r = 0; r < recovered.size(); ++r) {
    double best = 0.0;
    std::size_t best_index = 0;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      const double match = img::pixel_match_fraction(recovered[r], frames[i]);
      if (match > best) {
        best = match;
        best_index = i;
      }
    }
    std::printf("  recovered frame %zu == victim frame %zu (match %.4f)\n", r,
                best_index, best);
    img::write_ppm_file(recovered[r],
                        "video_recovered_" + std::to_string(r) + ".ppm");
  }
  std::printf("\nthe ring held the last %u frames; everything the camera saw "
              "in that window leaked.\n", kRing);
  return recovered.size() == kRing ? 0 : 1;
}
