#!/usr/bin/env bash
# CI bench-smoke: run one ablation benchmark with machine-readable JSON
# output — the seed of the BENCH_*.json perf trajectory tracked as a
# workflow artifact per push.
#
#   ci_bench.sh path/to/build-dir [out.json] [bench-name] [grep...]
#
# The human-readable console report still goes to the job log; the JSON
# (benchmark names, real/cpu time, counters) goes to the artifact so
# regressions — cells/second, per-stage trial breakdowns — are diffable
# across commits. Extra args are fixed strings the JSON must contain,
# sanity-checked before publishing.
#
# One bench can publish under several artifact names — bench-smoke runs
# abl_trial_hotpath from a SIMD build as BENCH_trial_hotpath.json and
# from a -DMSA_ENABLE_SIMD=OFF build as BENCH_trial_hotpath_scalar.json,
# keeping the two dispatch modes' series separate per commit.
# shellcheck source=scripts/ci_lib.sh
. "$(dirname "$0")/ci_lib.sh"

BUILD_DIR=${1:?usage: ci_bench.sh path/to/build-dir [out.json] [bench-name] [grep...]}
OUT=${2:-BENCH_campaign_scaling.json}
BENCH=${3:-abl_campaign_scaling}
shift $(( $# > 3 ? 3 : $# ))
EXPECT=("$@")
if [ "${#EXPECT[@]}" -eq 0 ] && [ "$BENCH" = "abl_campaign_scaling" ]; then
  EXPECT=(BM_SweepProfileCache BM_SweepThreads)
fi

BIN="$BUILD_DIR/bench/$BENCH"
ci_require_bin "$BIN"

# A wedged benchmark must fail the job fast instead of stalling the
# runner until the 6-hour job limit (each full run takes well under a
# minute on an idle machine).
timeout 600 "$BIN" \
  --benchmark_out="$tmp/bench.json" --benchmark_out_format=json

# Sanity-check before publishing: the artifact must actually contain the
# expected benchmark entries (and counters, for the per-stage series).
grep -q '"benchmarks"' "$tmp/bench.json"
for pattern in "${EXPECT[@]}"; do
  grep -qF "$pattern" "$tmp/bench.json"
done
mv "$tmp/bench.json" "$OUT"
echo "ci_bench.sh: wrote $OUT"
