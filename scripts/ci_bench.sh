#!/usr/bin/env bash
# CI bench-smoke: run the campaign-scaling ablation with machine-readable
# JSON output — the seed of the BENCH_*.json perf trajectory tracked as a
# workflow artifact per push.
#
#   ci_bench.sh path/to/build-dir [out.json]
#
# The human-readable console report still goes to the job log; the JSON
# (benchmark names, real/cpu time, items_per_second) goes to the artifact
# so regressions in cells/second — including the cached-vs-uncached
# profile series — are diffable across commits.
set -euo pipefail

BUILD_DIR=${1:?usage: ci_bench.sh path/to/build-dir [out.json]}
OUT=${2:-BENCH_campaign_scaling.json}
BIN="$BUILD_DIR/bench/abl_campaign_scaling"
if [ ! -x "$BIN" ]; then
  echo "ci_bench.sh: missing bench binary $BIN" >&2
  exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

# A wedged benchmark must fail the job fast instead of stalling the
# runner until the 6-hour job limit (the full run takes well under a
# minute on an idle machine).
timeout 600 "$BIN" \
  --benchmark_out="$tmp/bench.json" --benchmark_out_format=json

# Sanity-check before publishing: the artifact must actually contain the
# benchmark entries, including the profile-cache series.
grep -q '"benchmarks"' "$tmp/bench.json"
grep -q 'BM_SweepProfileCache' "$tmp/bench.json"
grep -q 'BM_SweepThreads' "$tmp/bench.json"
mv "$tmp/bench.json" "$OUT"
echo "ci_bench.sh: wrote $OUT"
