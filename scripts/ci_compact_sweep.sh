#!/usr/bin/env bash
# Segmented-compaction byte-identity drill for `campaign_sweep compact`.
#
#   ci_compact_sweep.sh path/to/campaign_sweep
#
# The store contract this drill pins: compaction may rewrite the log
# into sorted block-indexed segments, but every analysis artifact must
# come out byte-identical afterwards. Concretely:
#
#  - stats/diff in all three formats (text/CSV/JSON), plus a --cells
#    slice of each, are captured from flat stores, the stores are
#    compacted (side A default, side B with a tiny --max-level-bytes to
#    force the tiered merge path), and every artifact is re-captured
#    and cmp'd byte for byte.
#  - the regression gate replays against the segmented stores with the
#    same exit code, verdict line, and diff JSON as the flat originals.
#  - a shard-0 sweep compacted mid-campaign, then resumed with shard 1
#    and compacted again under a generous level cap, keeps multiple
#    live segments AND still renders the exact single-process stats.
#  - a copy of the checked-in v1 golden store upgraded through
#    compaction still emits the pre-refactor golden stats bytes, and a
#    second compact of it is a no-op (bytes_before == bytes_after).
# shellcheck source=scripts/ci_lib.sh
. "$(dirname "$0")/ci_lib.sh"

BIN=${1:?usage: ci_compact_sweep.sh path/to/campaign_sweep}
ci_require_bin "$BIN"

# 2 defenses x 2 models x 3 delays = 12 cells; enough for --cells to
# carve a real sub-grid and for the gate drill to resolve a trip.
axes=(--defenses baseline,zero_on_free --models resnet50_pt,squeezenet_pt
      --delays 0,5,10 --scrubbers 0)
common=(--trials 3 --threads 2 --quiet)

# Side A: the normal sweep. Side B: the same grid with power-cycling
# on, which kills remanence at these delays — so A->B is a guaranteed
# attack-favoring regression for the gate leg below.
timeout "$SWEEP_TIMEOUT" "$BIN" "${common[@]}" "${axes[@]}" \
  --store "$tmp/flat_a.store" > /dev/null
timeout "$SWEEP_TIMEOUT" "$BIN" "${common[@]}" "${axes[@]}" \
  --axis power_cycled=1 --store "$tmp/flat_b.store" > /dev/null

# capture DIR STORE_A STORE_B: every analysis artifact the drill
# byte-compares — stats and diff in all three formats plus a --cells
# slice, and the regress-gate verdict/JSON/exit-code triple.
capture() {
  local dir=$1 a=$2 b=$3
  mkdir -p "$dir"
  local fmt
  for fmt in text csv json; do
    timeout "$SWEEP_TIMEOUT" "$BIN" stats --format "$fmt" "$a" \
      > "$dir/stats.$fmt"
    timeout "$SWEEP_TIMEOUT" "$BIN" diff --format "$fmt" "$b" "$a" \
      > "$dir/diff.$fmt"
  done
  timeout "$SWEEP_TIMEOUT" "$BIN" stats --cells delay_s=5,10 \
    --cells defense=baseline "$a" > "$dir/stats_cells.txt"
  timeout "$SWEEP_TIMEOUT" "$BIN" diff --format csv --cells delay_s=5,10 \
    "$b" "$a" > "$dir/diff_cells.csv"
  local rc=0
  timeout "$SWEEP_TIMEOUT" "$BIN" diff --format json --exit-on-significant \
    --direction regress "$b" "$a" \
    > "$dir/gate.json" 2> "$dir/gate_verdict.txt" || rc=$?
  echo "$rc" > "$dir/gate_rc.txt"
}

capture "$tmp/before" "$tmp/flat_a.store" "$tmp/flat_b.store"
# Power-cycling kills every baseline cell, so the gate must have
# tripped (exit 4) — otherwise the leg proves nothing.
grep -q '^4$' "$tmp/before/gate_rc.txt"
grep -q "regression gate TRIPPED" "$tmp/before/gate_verdict.txt"

# --- compact both sides, re-capture, byte-compare ---------------------
cp "$tmp/flat_a.store" "$tmp/seg_a.store"
cp "$tmp/flat_b.store" "$tmp/seg_b.store"
timeout "$SWEEP_TIMEOUT" "$BIN" compact "$tmp/seg_a.store" 2> /dev/null
# A deliberately tiny level cap drives side B through the tiered-merge
# path (L0 overflows and cascades) instead of the single-shot flush.
timeout "$SWEEP_TIMEOUT" "$BIN" compact --max-level-bytes 1024 \
  "$tmp/seg_b.store" 2> /dev/null
[ -f "$tmp/seg_a.store.levels" ]
[ -f "$tmp/seg_b.store.levels" ]

capture "$tmp/after" "$tmp/seg_a.store" "$tmp/seg_b.store"
for f in stats.text stats.csv stats.json stats_cells.txt \
         diff.text diff.csv diff.json diff_cells.csv \
         gate.json gate_verdict.txt gate_rc.txt; do
  cmp "$tmp/before/$f" "$tmp/after/$f"
done
echo "compact byte-identity: 11/11 artifacts identical after compaction"

# --- mid-campaign compaction with a tiered tail -----------------------
# The first half of the grid (--cell-budget, exit 3 = incomplete) is
# swept and compacted (segment #1), the sweep resumes to completion and
# a second compact under a generous cap flushes the new cells as their
# own L0 segment — the store now answers from two segments plus an
# empty log tail, and must render the exact single-process stats.
rc=0
timeout "$SWEEP_TIMEOUT" "$BIN" "${common[@]}" "${axes[@]}" \
  --cell-budget 6 --store "$tmp/tiered.store" > /dev/null || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "budgeted sweep exited $rc, expected incomplete 3" >&2
  exit 1
fi
timeout "$SWEEP_TIMEOUT" "$BIN" compact "$tmp/tiered.store" 2> /dev/null
timeout "$SWEEP_TIMEOUT" "$BIN" "${common[@]}" "${axes[@]}" \
  --store "$tmp/tiered.store" --resume > /dev/null
timeout "$SWEEP_TIMEOUT" "$BIN" compact \
  --max-level-bytes $((64 * 1024 * 1024)) "$tmp/tiered.store" \
  2> "$tmp/tiered_compact.txt"
grep -q "2 segment(s)" "$tmp/tiered_compact.txt"
timeout "$SWEEP_TIMEOUT" "$BIN" stats --format csv "$tmp/tiered.store" \
  > "$tmp/tiered_stats.csv"
cmp "$tmp/before/stats.csv" "$tmp/tiered_stats.csv"
echo "tiered resume: 2 live segments, stats byte-identical to flat sweep"

# --- v1 golden upgraded through compaction ----------------------------
# The oldest store format on record must ride through the segmented
# rewrite and still print the checked-in pre-refactor stats goldens.
cp "$REPO/tests/data/golden_v1_4axis.store" "$tmp/v1.store"
timeout "$SWEEP_TIMEOUT" "$BIN" compact "$tmp/v1.store" 2> /dev/null
timeout "$SWEEP_TIMEOUT" "$BIN" stats "$tmp/v1.store" > "$tmp/v1_stats.txt"
timeout "$SWEEP_TIMEOUT" "$BIN" stats --format csv "$tmp/v1.store" \
  > "$tmp/v1_stats.csv"
timeout "$SWEEP_TIMEOUT" "$BIN" stats --format json "$tmp/v1.store" \
  > "$tmp/v1_stats.json"
cmp "$REPO/tests/data/golden_v1_stats.txt" "$tmp/v1_stats.txt"
cmp "$REPO/tests/data/golden_v1_stats.csv" "$tmp/v1_stats.csv"
cmp "$REPO/tests/data/golden_v1_stats.json" "$tmp/v1_stats.json"
# Re-compacting the upgraded store is a stable no-op.
timeout "$SWEEP_TIMEOUT" "$BIN" compact "$tmp/v1.store" \
  2> "$tmp/v1_recompact.txt"
python3 - "$tmp/v1_recompact.txt" <<'EOF'
import re, sys
line = open(sys.argv[1]).read()
m = re.search(r"compacted .*: (\d+) -> (\d+) bytes", line)
assert m, line
assert m.group(1) == m.group(2), f"re-compact moved bytes: {line}"
print("v1 golden: upgraded stats match goldens, re-compact is a no-op")
EOF

echo "ci_compact_sweep.sh: all compaction byte-identity checks passed"
