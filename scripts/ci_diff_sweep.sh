#!/usr/bin/env bash
# Structured-output drill for `campaign_sweep stats/diff`: every emitted
# CSV/JSON artifact must survive a strict parser, a store diffed against
# a sharded copy of the same sweep must align by axis values with every
# delta exactly zero, a cross-family diff must pair the shared axes, a
# registry sweep over non-legacy axes (--axis) must flow through store,
# stats, and diff with thread-count-invariant bytes, the checked-in v1
# golden store must diff against a fresh v2 twin to exactly zero, and
# the grid-axis flags must reject non-finite/negative/unknown values.
# shellcheck source=scripts/ci_lib.sh
. "$(dirname "$0")/ci_lib.sh"

BIN=${1:?usage: ci_diff_sweep.sh path/to/campaign_sweep}
ci_require_bin "$BIN"

# Small but non-trivial grid: 2 defenses x 2 models x 2 delays = 8 cells.
axes=(--defenses baseline,zero_on_free --delays 0,5 --scrubbers 0)
common=(--trials 2 --threads 2 --quiet)

# Sweep A, plus the SAME sweep split into two shard stores. Shards keep
# global cell indices, so the shard pair is a byte-faithful copy of A's
# results distributed over two files in a directory.
timeout "$SWEEP_TIMEOUT" "$BIN" "${common[@]}" "${axes[@]}" \
  --store "$tmp/a.store" > /dev/null
mkdir "$tmp/shards"
timeout "$SWEEP_TIMEOUT" "$BIN" "${common[@]}" "${axes[@]}" \
  --shard 0/2 --store "$tmp/shards/s0.store" > /dev/null
timeout "$SWEEP_TIMEOUT" "$BIN" "${common[@]}" "${axes[@]}" \
  --shard 1/2 --store "$tmp/shards/s1.store" > /dev/null
# A different defense family on the same attack axes (the paper's A/B).
timeout "$SWEEP_TIMEOUT" "$BIN" "${common[@]}" \
  --defenses physical_aslr --delays 0,5 --scrubbers 0 \
  --store "$tmp/c.store" > /dev/null

# --- stats: every format round-trips through a strict parser ----------
timeout "$SWEEP_TIMEOUT" "$BIN" stats --format json "$tmp/a.store" \
  > "$tmp/stats.json"
python3 -m json.tool "$tmp/stats.json" > /dev/null
timeout "$SWEEP_TIMEOUT" "$BIN" stats --format csv "$tmp/a.store" \
  > "$tmp/stats.csv"
python3 - "$tmp/stats.csv" <<'EOF'
import csv, sys
with open(sys.argv[1], newline="") as f:
    rows = list(csv.reader(f, strict=True))
header, data = rows[0], rows[1:]
assert header[0] == "section", header
assert all(len(r) == len(header) for r in data), "ragged CSV"
sections = {r[0] for r in data}
assert sections == {"cell", "marginal"}, sections
assert sum(r[0] == "cell" for r in data) == 8, "expected 8 cell rows"
# Numeric columns of cell rows parse as floats (round-trip formatting).
rate = header.index("success_rate")
for r in data:
    if r[0] == "cell":
        assert 0.0 <= float(r[rate]) <= 1.0, r
print("stats CSV strict-parse OK:", len(data), "rows")
EOF
# Byte-stability: a second run emits identical bytes.
timeout "$SWEEP_TIMEOUT" "$BIN" stats --format json "$tmp/a.store" \
  > "$tmp/stats2.json"
cmp "$tmp/stats.json" "$tmp/stats2.json"

# --- diff vs a sharded copy: axis alignment, all deltas exactly zero --
timeout "$SWEEP_TIMEOUT" "$BIN" diff --format json \
  "$tmp/a.store" "$tmp/shards" > "$tmp/diff_zero.json"
python3 - "$tmp/diff_zero.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["matched_cells"] == 8, d["matched_cells"]
assert d["significant_cells"] == 0
assert d["only_in_a"] == [] and d["only_in_b"] == []
for cell in d["cells"]:
    assert cell["success_delta"] == 0, cell
    assert cell["denial_delta"] == 0, cell
    assert cell["p50_shift"] == 0 and cell["p90_shift"] == 0, cell
    assert cell["significant"] is False, cell
for m in d["marginals"]:
    assert m["success_delta"] == 0 and m["mean_psnr_shift"] == 0, m
print("diff vs sharded copy: 8/8 cells aligned, all deltas zero")
EOF

# --- cross-family diff: disjoint defenses, shared attack axes ---------
timeout "$SWEEP_TIMEOUT" "$BIN" diff --format json \
  "$tmp/a.store" "$tmp/c.store" > "$tmp/diff_ab.json"
python3 - "$tmp/diff_ab.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["matched_cells"] == 0
assert len(d["only_in_a"]) == 8 and len(d["only_in_b"]) == 4
axes = {(m["axis"], m["value"]) for m in d["marginals"]}
# Defense values are disjoint; models/delays/scrubbers are shared.
assert not any(a == "defense" for a, _ in axes), axes
assert ("delay_s", "0") in axes and ("delay_s", "5") in axes, axes
print("cross-family diff: per-axis deltas over shared axes only")
EOF
timeout "$SWEEP_TIMEOUT" "$BIN" diff --format csv \
  "$tmp/a.store" "$tmp/c.store" > "$tmp/diff_ab.csv"
python3 - "$tmp/diff_ab.csv" <<'EOF'
import csv, sys
rows = list(csv.reader(open(sys.argv[1], newline=""), strict=True))
assert all(len(r) == len(rows[0]) for r in rows), "ragged CSV"
print("diff CSV strict-parse OK:", len(rows) - 1, "rows")
EOF
# Text format still renders the human tables.
timeout "$SWEEP_TIMEOUT" "$BIN" diff "$tmp/a.store" "$tmp/c.store" \
  | grep -q "cross-sweep diff (B minus A)"

# --- registry axes: sweep two non-legacy axes end-to-end --------------
# power_cycled x corrupt_fraction on top of a single legacy cell: the
# schema, store manifest, stats columns, and marginals must all carry
# the generic axes, and the report bytes must not depend on threads.
gaxes=(--defenses baseline --models resnet50_pt --delays 0 --scrubbers 0
       --axis power_cycled=0,1 --axis corrupt_fraction=0.5,1.0)
timeout "$SWEEP_TIMEOUT" "$BIN" --trials 2 --threads 2 --quiet \
  "${gaxes[@]}" --store "$tmp/g.store" > /dev/null
timeout "$SWEEP_TIMEOUT" "$BIN" --trials 2 --threads 1 --quiet \
  "${gaxes[@]}" --store "$tmp/g1.store" > /dev/null
timeout "$SWEEP_TIMEOUT" "$BIN" stats --format json "$tmp/g.store" \
  > "$tmp/gstats.json"
python3 -m json.tool "$tmp/gstats.json" > /dev/null
timeout "$SWEEP_TIMEOUT" "$BIN" stats --format json "$tmp/g1.store" \
  > "$tmp/gstats1.json"
cmp "$tmp/gstats.json" "$tmp/gstats1.json"
timeout "$SWEEP_TIMEOUT" "$BIN" stats --format csv "$tmp/g.store" \
  > "$tmp/gstats.csv"
python3 - "$tmp/gstats.csv" <<'EOF'
import csv, sys
rows = list(csv.reader(open(sys.argv[1], newline=""), strict=True))
header, data = rows[0], rows[1:]
assert "power_cycled" in header and "corrupt_fraction" in header, header
assert all(len(r) == len(header) for r in data), "ragged CSV"
assert sum(r[0] == "cell" for r in data) == 4, "expected 4 cell rows"
pc = header.index("power_cycled")
cf = header.index("corrupt_fraction")
cells = [(r[pc], r[cf]) for r in data if r[0] == "cell"]
assert sorted(cells) == [("0", "0.5"), ("0", "1"), ("1", "0.5"), ("1", "1")], cells
ax, val = header.index("axis"), header.index("value")
marg = {(r[ax], r[val]) for r in data if r[0] == "marginal"}
assert ("power_cycled", "0") in marg and ("power_cycled", "1") in marg, marg
assert ("corrupt_fraction", "0.5") in marg, marg
print("generic-axis stats CSV strict-parse OK:", len(data), "rows")
EOF
# Diffing the generic-axis store against itself pairs on all six axes.
timeout "$SWEEP_TIMEOUT" "$BIN" diff --format json \
  "$tmp/g.store" "$tmp/g1.store" > "$tmp/diff_g.json"
python3 - "$tmp/diff_g.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["matched_cells"] == 4 and d["significant_cells"] == 0, d
assert d["only_in_a"] == [] and d["only_in_b"] == []
assert all(c["success_delta"] == 0 for c in d["cells"])
print("generic-axis diff: 4/4 cells aligned, all deltas zero")
EOF

# --- v1 golden store: readable, diffs to zero against a fresh v2 twin -
golden="$REPO/tests/data/golden_v1_4axis.store"
timeout "$SWEEP_TIMEOUT" "$BIN" --trials 2 --threads 2 --quiet \
  --defenses baseline,zero_on_free --models resnet50_pt \
  --delays 0,5 --scrubbers 0 --store "$tmp/twin_v2.store" > /dev/null
timeout "$SWEEP_TIMEOUT" "$BIN" diff --format json \
  "$golden" "$tmp/twin_v2.store" > "$tmp/diff_v1v2.json"
python3 - "$tmp/diff_v1v2.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["matched_cells"] == 4, d["matched_cells"]
assert d["only_in_a"] == [] and d["only_in_b"] == []
assert d["significant_cells"] == 0
for cell in d["cells"]:
    assert cell["success_delta"] == 0 and cell["denial_delta"] == 0, cell
    assert cell["p50_shift"] == 0 and cell["p90_shift"] == 0, cell
for m in d["marginals"]:
    assert m["success_delta"] == 0 and m["mean_psnr_shift"] == 0, m
print("v1 golden vs fresh v2 twin: 4/4 cells aligned, all deltas zero")
EOF

# --- --axis validation: unknown axes / bad values / repeats exit 2 ----
for bad in "nosuch=1" "power_cycled=yes" "delay_s=5x" "corrupt_fraction=1.5" \
           "power_cycled=1,1" "power_cycled" "=1" "firewall=on"; do
  rc=0
  "$BIN" --axis "$bad" --quiet > /dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "--axis $bad exited $rc, expected usage error 2" >&2
    exit 1
  fi
done

# --- grid-axis validation: non-finite / negative values exit usage (2)
for bad in nan inf -1 -0.5 1e999; do
  rc=0
  "$BIN" --delays "$bad" --quiet > /dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "--delays $bad exited $rc, expected usage error 2" >&2
    exit 1
  fi
  rc=0
  "$BIN" --scrubbers "$bad" --quiet > /dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "--scrubbers $bad exited $rc, expected usage error 2" >&2
    exit 1
  fi
done

echo "stats/diff structured output validates; axis-aligned diff is exact"
