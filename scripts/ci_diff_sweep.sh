#!/usr/bin/env bash
# Structured-output drill for `campaign_sweep stats/diff`: every emitted
# CSV/JSON artifact must survive a strict parser, a store diffed against
# a sharded copy of the same sweep must align by axis values with every
# delta exactly zero, a cross-family diff must pair the shared axes, and
# the grid-axis flags must reject non-finite/negative values.
set -euo pipefail

BIN=${1:?usage: ci_diff_sweep.sh path/to/campaign_sweep}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

SWEEP_TIMEOUT=${SWEEP_TIMEOUT:-300}

# Small but non-trivial grid: 2 defenses x 2 models x 2 delays = 8 cells.
axes=(--defenses baseline,zero_on_free --delays 0,5 --scrubbers 0)
common=(--trials 2 --threads 2 --quiet)

# Sweep A, plus the SAME sweep split into two shard stores. Shards keep
# global cell indices, so the shard pair is a byte-faithful copy of A's
# results distributed over two files in a directory.
timeout "$SWEEP_TIMEOUT" "$BIN" "${common[@]}" "${axes[@]}" \
  --store "$tmp/a.store" > /dev/null
mkdir "$tmp/shards"
timeout "$SWEEP_TIMEOUT" "$BIN" "${common[@]}" "${axes[@]}" \
  --shard 0/2 --store "$tmp/shards/s0.store" > /dev/null
timeout "$SWEEP_TIMEOUT" "$BIN" "${common[@]}" "${axes[@]}" \
  --shard 1/2 --store "$tmp/shards/s1.store" > /dev/null
# A different defense family on the same attack axes (the paper's A/B).
timeout "$SWEEP_TIMEOUT" "$BIN" "${common[@]}" \
  --defenses physical_aslr --delays 0,5 --scrubbers 0 \
  --store "$tmp/c.store" > /dev/null

# --- stats: every format round-trips through a strict parser ----------
timeout "$SWEEP_TIMEOUT" "$BIN" stats --format json "$tmp/a.store" \
  > "$tmp/stats.json"
python3 -m json.tool "$tmp/stats.json" > /dev/null
timeout "$SWEEP_TIMEOUT" "$BIN" stats --format csv "$tmp/a.store" \
  > "$tmp/stats.csv"
python3 - "$tmp/stats.csv" <<'EOF'
import csv, sys
with open(sys.argv[1], newline="") as f:
    rows = list(csv.reader(f, strict=True))
header, data = rows[0], rows[1:]
assert header[0] == "section", header
assert all(len(r) == len(header) for r in data), "ragged CSV"
sections = {r[0] for r in data}
assert sections == {"cell", "marginal"}, sections
assert sum(r[0] == "cell" for r in data) == 8, "expected 8 cell rows"
# Numeric columns of cell rows parse as floats (round-trip formatting).
rate = header.index("success_rate")
for r in data:
    if r[0] == "cell":
        assert 0.0 <= float(r[rate]) <= 1.0, r
print("stats CSV strict-parse OK:", len(data), "rows")
EOF
# Byte-stability: a second run emits identical bytes.
timeout "$SWEEP_TIMEOUT" "$BIN" stats --format json "$tmp/a.store" \
  > "$tmp/stats2.json"
cmp "$tmp/stats.json" "$tmp/stats2.json"

# --- diff vs a sharded copy: axis alignment, all deltas exactly zero --
timeout "$SWEEP_TIMEOUT" "$BIN" diff --format json \
  "$tmp/a.store" "$tmp/shards" > "$tmp/diff_zero.json"
python3 - "$tmp/diff_zero.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["matched_cells"] == 8, d["matched_cells"]
assert d["significant_cells"] == 0
assert d["only_in_a"] == [] and d["only_in_b"] == []
for cell in d["cells"]:
    assert cell["success_delta"] == 0, cell
    assert cell["denial_delta"] == 0, cell
    assert cell["p50_shift"] == 0 and cell["p90_shift"] == 0, cell
    assert cell["significant"] is False, cell
for m in d["marginals"]:
    assert m["success_delta"] == 0 and m["mean_psnr_shift"] == 0, m
print("diff vs sharded copy: 8/8 cells aligned, all deltas zero")
EOF

# --- cross-family diff: disjoint defenses, shared attack axes ---------
timeout "$SWEEP_TIMEOUT" "$BIN" diff --format json \
  "$tmp/a.store" "$tmp/c.store" > "$tmp/diff_ab.json"
python3 - "$tmp/diff_ab.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["matched_cells"] == 0
assert len(d["only_in_a"]) == 8 and len(d["only_in_b"]) == 4
axes = {(m["axis"], m["value"]) for m in d["marginals"]}
# Defense values are disjoint; models/delays/scrubbers are shared.
assert not any(a == "defense" for a, _ in axes), axes
assert ("delay_s", "0") in axes and ("delay_s", "5") in axes, axes
print("cross-family diff: per-axis deltas over shared axes only")
EOF
timeout "$SWEEP_TIMEOUT" "$BIN" diff --format csv \
  "$tmp/a.store" "$tmp/c.store" > "$tmp/diff_ab.csv"
python3 - "$tmp/diff_ab.csv" <<'EOF'
import csv, sys
rows = list(csv.reader(open(sys.argv[1], newline=""), strict=True))
assert all(len(r) == len(rows[0]) for r in rows), "ragged CSV"
print("diff CSV strict-parse OK:", len(rows) - 1, "rows")
EOF
# Text format still renders the human tables.
timeout "$SWEEP_TIMEOUT" "$BIN" diff "$tmp/a.store" "$tmp/c.store" \
  | grep -q "cross-sweep diff (B minus A)"

# --- grid-axis validation: non-finite / negative values exit usage (2)
for bad in nan inf -1 -0.5 1e999; do
  rc=0
  "$BIN" --delays "$bad" --quiet > /dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "--delays $bad exited $rc, expected usage error 2" >&2
    exit 1
  fi
  rc=0
  "$BIN" --scrubbers "$bad" --quiet > /dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "--scrubbers $bad exited $rc, expected usage error 2" >&2
    exit 1
  fi
done

echo "stats/diff structured output validates; axis-aligned diff is exact"
