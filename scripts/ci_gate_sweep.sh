#!/usr/bin/env bash
# Golden-baseline regression gate + gate-engine drill for
# `campaign_sweep diff --exit-on-significant`.
#
#   ci_gate_sweep.sh path/to/campaign_sweep            # gate + drill
#   ci_gate_sweep.sh path/to/campaign_sweep --regen    # rebless baseline
#
# Gate: sweep the blessed grid at HEAD and diff it against the
# checked-in golden store (tests/data/golden_gate_baseline.store) with
# --exit-on-significant --direction regress. A statistically significant
# attack-favoring shift fails the job with exit 4 and a one-line verdict
# naming the offending cells; the diff JSON is copied to
# ./diff_gate_sweep.json for artifact upload either way. After an
# INTENDED simulator change, rebless with --regen and commit the new
# store alongside the change that explains it.
#
# Drill: the gate engine itself is exercised against a deliberately
# weakened defense — the same grid swept with --axis power_cycled=1
# (power-cycling kills remanence at these delays) as side A and the
# normal sweep as side B, so success rates rise A->B across every cell
# and the regress gate MUST trip (exit 4). A self-diff must stay clean
# (permutation p exactly 1), the gate verdict and diff JSON must be
# byte-identical whether the stores were swept on 1 thread, 8 threads,
# or as 3 shard files (the permutation seed comes from the stores' grid
# fingerprints, not from any runtime layout), and the gate flags must
# reject bad values with usage exit 2.
# shellcheck source=scripts/ci_lib.sh
. "$(dirname "$0")/ci_lib.sh"

BIN=${1:?usage: ci_gate_sweep.sh path/to/campaign_sweep [--regen]}
ci_require_bin "$BIN"
GOLDEN="$REPO/tests/data/golden_gate_baseline.store"

# The blessed gate grid: 2 defenses x 2 models x 2 delays x 1 scrubber
# = 8 cells spanning "attack wins" (baseline) to "defense holds"
# (zero_on_free), 5 trials each so single-cell flips are resolvable.
gate_grid=(--defenses baseline,zero_on_free --models resnet50_pt,squeezenet_pt
           --delays 0,5 --scrubbers 0 --trials 5)

if [ "${2:-}" = "--regen" ]; then
  rm -f "$GOLDEN"
  timeout "$SWEEP_TIMEOUT" "$BIN" "${gate_grid[@]}" --threads 2 --quiet \
    --store "$GOLDEN" > /dev/null
  echo "ci_gate_sweep.sh: reblessed $GOLDEN"
  exit 0
fi
if [ ! -f "$GOLDEN" ]; then
  echo "ci_gate_sweep.sh: $GOLDEN missing; bless one with --regen" >&2
  exit 1
fi

# --- the gate: HEAD vs the checked-in golden baseline -----------------
timeout "$SWEEP_TIMEOUT" "$BIN" "${gate_grid[@]}" --threads 2 --quiet \
  --store "$tmp/head.store" > /dev/null
rc=0
timeout "$SWEEP_TIMEOUT" "$BIN" diff --format json --exit-on-significant \
  --direction regress "$GOLDEN" "$tmp/head.store" \
  > "$tmp/diff_gate.json" 2> "$tmp/gate_verdict.txt" || rc=$?
cp "$tmp/diff_gate.json" diff_gate_sweep.json
cat "$tmp/gate_verdict.txt" >&2
if [ "$rc" -ne 0 ]; then
  echo "regression gate failed (exit $rc) against the golden baseline;" \
       "if the simulator change is intended, rebless with --regen" >&2
  exit "$rc"
fi
python3 -m json.tool diff_gate_sweep.json > /dev/null
grep -q "gate clean" "$tmp/gate_verdict.txt"

# --- self-diff of the golden store: exactly no evidence ---------------
timeout "$SWEEP_TIMEOUT" "$BIN" diff --exit-on-significant \
  "$GOLDEN" "$GOLDEN" > /dev/null 2> "$tmp/self_verdict.txt"
grep -q "permutation p=1 " "$tmp/self_verdict.txt"

# --- drill: a weakened defense must trip the gate ---------------------
# 6 cells (baseline x 2 models x 3 delays) where the attack always wins;
# power-cycling (side A) kills every one of them, so the A->B success
# deltas are +1 across the grid: permutation p ~= 1/64 < 0.05 and every
# cell is individually FDR-significant.
drill_grid=(--defenses baseline --models resnet50_pt,squeezenet_pt
            --delays 5,10,20 --scrubbers 0 --trials 5)
timeout "$SWEEP_TIMEOUT" "$BIN" "${drill_grid[@]}" --threads 2 --quiet \
  --store "$tmp/normal.store" > /dev/null
timeout "$SWEEP_TIMEOUT" "$BIN" "${drill_grid[@]}" --threads 2 --quiet \
  --axis power_cycled=1 --store "$tmp/weak.store" > /dev/null
rc=0
timeout "$SWEEP_TIMEOUT" "$BIN" diff --format json --exit-on-significant \
  --direction regress "$tmp/weak.store" "$tmp/normal.store" \
  > "$tmp/drill.json" 2> "$tmp/drill_verdict.txt" || rc=$?
if [ "$rc" -ne 4 ]; then
  echo "weakened-defense drill exited $rc, expected gate trip 4" >&2
  cat "$tmp/drill_verdict.txt" >&2
  exit 1
fi
grep -q "regression gate TRIPPED" "$tmp/drill_verdict.txt"
grep -q "defense=baseline" "$tmp/drill_verdict.txt"
# The movement is attack-favoring only: the improve gate stays clean.
timeout "$SWEEP_TIMEOUT" "$BIN" diff --exit-on-significant \
  --direction improve "$tmp/weak.store" "$tmp/normal.store" > /dev/null \
  2> "$tmp/improve_verdict.txt"
grep -q "gate clean" "$tmp/improve_verdict.txt"

# --- determinism: the verdict is a function of the artifacts ----------
# The same drill grid swept on 1 thread and as 3 shard stores must gate
# to byte-identical diff JSON and verdict lines: the permutation seed
# derives from the grid fingerprints and pairs are consumed in AxisKey
# order, so thread counts and shard layouts cannot move the p-value.
timeout "$SWEEP_TIMEOUT" "$BIN" "${drill_grid[@]}" --threads 1 --quiet \
  --store "$tmp/normal_t1.store" > /dev/null
mkdir "$tmp/normal_shards"
for i in 0 1 2; do
  timeout "$SWEEP_TIMEOUT" "$BIN" "${drill_grid[@]}" --threads 2 --quiet \
    --shard "$i/3" --store "$tmp/normal_shards/s$i.store" > /dev/null
done
for b in "$tmp/normal_t1.store" "$tmp/normal_shards"; do
  rc=0
  timeout "$SWEEP_TIMEOUT" "$BIN" diff --format json --exit-on-significant \
    --direction regress "$tmp/weak.store" "$b" \
    > "$tmp/drill_alt.json" 2> "$tmp/drill_alt_verdict.txt" || rc=$?
  if [ "$rc" -ne 4 ]; then
    echo "gate against $b exited $rc, expected 4" >&2
    exit 1
  fi
  cmp "$tmp/drill.json" "$tmp/drill_alt.json"
  cmp "$tmp/drill_verdict.txt" "$tmp/drill_alt_verdict.txt"
done

# --- gate flags: bad values are usage errors naming the flag ----------
for bad_alpha in 0 1 1.5 nan -0.05 ""; do
  rc=0
  "$BIN" diff --exit-on-significant --alpha "$bad_alpha" \
    "$GOLDEN" "$GOLDEN" > /dev/null 2> "$tmp/bad.txt" || rc=$?
  if [ "$rc" -ne 2 ] || ! grep -q -- "--alpha" "$tmp/bad.txt"; then
    echo "--alpha '$bad_alpha' exited $rc, expected usage error 2" >&2
    exit 1
  fi
done
for bad_dir in sideways "" regress,improve; do
  rc=0
  "$BIN" diff --exit-on-significant --direction "$bad_dir" \
    "$GOLDEN" "$GOLDEN" > /dev/null 2> "$tmp/bad.txt" || rc=$?
  if [ "$rc" -ne 2 ] || ! grep -q -- "--direction" "$tmp/bad.txt"; then
    echo "--direction '$bad_dir' exited $rc, expected usage error 2" >&2
    exit 1
  fi
done
rc=0
"$BIN" diff --exit-on-significant --metric psnr_p99 "$GOLDEN" "$GOLDEN" \
  > /dev/null 2> "$tmp/bad.txt" || rc=$?
if [ "$rc" -ne 2 ] || ! grep -q -- "--metric" "$tmp/bad.txt"; then
  echo "--metric psnr_p99 exited $rc, expected usage error 2" >&2
  exit 1
fi
rc=0
"$BIN" diff --alpha 0.01 "$GOLDEN" "$GOLDEN" > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "gate flag without --exit-on-significant exited $rc, expected 2" >&2
  exit 1
fi

echo "golden gate clean; weakened-defense drill trips exit 4;" \
     "verdict byte-stable across threads and shards"
