#!/usr/bin/env bash
# Kill-and-reclaim drill for the work-stealing scheduler: three worker
# processes lease cells from one shared store directory, one of them is
# SIGKILLed mid-sweep, and the survivors must finish the whole grid with
# the merged report byte-identical to an uninterrupted single-process
# run. Also smoke-tests the `stats` and `compact` subcommands over the
# surviving stores (compaction must not change the merged report), and
# the observability surface: one survivor runs with --trace-out and the
# exported Chrome trace must strict-parse with the complete-event schema
# (copied to ./trace_lease_sweep.json for artifact upload), and a
# `metrics --format json` sweep must emit a parseable registry dump.
# shellcheck source=scripts/ci_lib.sh
. "$(dirname "$0")/ci_lib.sh"

BIN=${1:?usage: ci_lease_sweep.sh path/to/campaign_sweep}
ci_require_bin "$BIN"

# Enough cells x trials that the victim is still mid-sweep when killed;
# delays include 60s so cell costs are heterogeneous like a real matrix.
common=(--trials 3 --delays 0,5,60 --quiet)
# ~400ms of lease silence before survivors presume a peer dead: well
# above one trial's duration (renewals land per trial), well below the
# job timeout.
lease=(--workers-dir "$tmp/wd" --expiry-scans 8 --idle-backoff-ms 50)

# Golden: one process, whole grid.
timeout "$SWEEP_TIMEOUT" "$BIN" "${common[@]}" --threads 2 \
  --csv "$tmp/single.csv" --json "$tmp/single.json"

# Three workers race the same grid; the victim starts first so it holds
# claims when the kill lands. NO `timeout` wrapper here: $! must be the
# sweep process itself, or the kill below would hit the wrapper and
# leave the worker alive (making the whole drill vacuous). The kill IS
# this process's timeout.
"$BIN" "${common[@]}" "${lease[@]}" --threads 1 \
  --worker-id victim > /dev/null 2>&1 &
victim_pid=$!

# Kill only once the victim demonstrably holds leases: its lease log has
# grown past the manifest record. Polling keeps the drill timing-robust.
manifest_bytes=0
for _ in $(seq 1 500); do
  if [ -f "$tmp/wd/victim.lease" ]; then
    size=$(stat -c %s "$tmp/wd/victim.lease" 2>/dev/null || echo 0)
    if [ "$manifest_bytes" -eq 0 ] && [ "$size" -gt 8 ]; then
      manifest_bytes=$size  # magic + manifest landed
    elif [ "$manifest_bytes" -gt 0 ] && [ "$size" -gt "$manifest_bytes" ]; then
      break  # at least one claim record is on disk
    fi
  fi
  sleep 0.01
done
if ! kill -9 "$victim_pid" 2>/dev/null; then
  echo "victim finished before the kill landed; drill inconclusive" >&2
  exit 1
fi
rc=0
wait "$victim_pid" 2>/dev/null || rc=$?
if [ "$rc" -ne 137 ]; then
  echo "victim exited $rc, not SIGKILL (137); drill inconclusive" >&2
  exit 1
fi
echo "[lease drill] victim SIGKILLed mid-sweep"

timeout "$SWEEP_TIMEOUT" "$BIN" "${common[@]}" "${lease[@]}" --threads 1 \
  --worker-id live-a --csv "$tmp/a.csv" --trace-out "$tmp/trace_a.json" \
  2> /dev/null &
a_pid=$!
timeout "$SWEEP_TIMEOUT" "$BIN" "${common[@]}" "${lease[@]}" --threads 1 \
  --worker-id live-b --csv "$tmp/b.csv" 2> /dev/null &
b_pid=$!
wait "$a_pid"
wait "$b_pid"

# Every survivor saw the grid to completion and emitted the merged
# report — byte-identical to the single-process run, victim's partial
# store included.
cmp "$tmp/single.csv" "$tmp/a.csv"
cmp "$tmp/single.csv" "$tmp/b.csv"
timeout "$SWEEP_TIMEOUT" "$BIN" merge --workers-dir "$tmp/wd" --quiet \
  --csv "$tmp/merged.csv" --json "$tmp/merged.json"
cmp "$tmp/single.csv" "$tmp/merged.csv"
cmp "$tmp/single.json" "$tmp/merged.json"

# Store-backed analysis runs over the same directory.
timeout "$SWEEP_TIMEOUT" "$BIN" stats --workers-dir "$tmp/wd" \
  > "$tmp/stats.txt"
grep -q "per-cell distributions" "$tmp/stats.txt"
grep -q "per-axis marginals" "$tmp/stats.txt"

# Structured emitters stay parseable even over the kill's leftovers
# (orphan trials, duplicated cells), and diffing the directory against
# itself pairs every cell with zero delta.
timeout "$SWEEP_TIMEOUT" "$BIN" stats --format json --workers-dir "$tmp/wd" \
  | python3 -m json.tool > /dev/null
timeout "$SWEEP_TIMEOUT" "$BIN" diff --format json "$tmp/wd" "$tmp/wd" \
  > "$tmp/selfdiff.json"
python3 -m json.tool "$tmp/selfdiff.json" > /dev/null
grep -q '"significant_cells":0' "$tmp/selfdiff.json"

# live-a ran with --trace-out: the export must strict-parse as Chrome
# trace-event JSON with the complete-event schema, and must contain the
# campaign-layer spans. Kept as a per-push artifact (chrome://tracing /
# Perfetto will open it directly off the CI run).
python3 - "$tmp/trace_a.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "trace has no events"
for e in events:
    assert e["ph"] == "X", e
    for key in ("name", "cat", "ts", "dur", "pid", "tid"):
        assert key in e, (key, e)
cats = {e["cat"] for e in events}
assert "campaign" in cats, cats
print(f"[lease drill] trace_a.json: {len(events)} complete events")
PY
cp "$tmp/trace_a.json" trace_lease_sweep.json

# The metrics subcommand sweeps and dumps the registry; the JSON form
# must survive a strict parser and carry the campaign counters.
timeout "$SWEEP_TIMEOUT" "$BIN" metrics --format json \
  --trials 1 --delays 0 --quiet > "$tmp/metrics.json"
python3 -m json.tool "$tmp/metrics.json" > /dev/null
grep -q '"campaign.cells"' "$tmp/metrics.json"
grep -q '"campaign.trials"' "$tmp/metrics.json"

# Compaction drops the kill's leftovers without changing the report.
for store in "$tmp"/wd/*.store; do
  timeout "$SWEEP_TIMEOUT" "$BIN" compact "$store"
done
timeout "$SWEEP_TIMEOUT" "$BIN" merge --workers-dir "$tmp/wd" --quiet \
  --csv "$tmp/merged2.csv"
cmp "$tmp/single.csv" "$tmp/merged2.csv"

echo "lease sweep with SIGKILL + reclaim merges byte-identical to single-process run"
