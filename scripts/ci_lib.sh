#!/usr/bin/env bash
# Shared preamble for the scripts/ci_*.sh drills: strict mode, the repo
# root, a self-cleaning scratch directory, and the hang timeout every
# sweep invocation is wrapped in. Source it right after the header
# comment:
#
#   # shellcheck source=scripts/ci_lib.sh
#   . "$(dirname "$0")/ci_lib.sh"
#
# Sourcing (not executing) is what makes `set -euo pipefail` and the
# cleanup trap land in the calling drill's shell.
set -euo pipefail

# Repo root, derived from this library's own location (scripts/..), so
# every drill works from any working directory.
# shellcheck disable=SC2034  # consumed by the sourcing drills
REPO=$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)

# Self-cleaning scratch directory.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

# Each sweep finishes in seconds; one that hangs (deadlocked pool,
# wedged store flush, stuck lease scan) must fail the job fast, not
# stall the runner until the job limit.
SWEEP_TIMEOUT=${SWEEP_TIMEOUT:-300}

# ci_require_bin PATH: fail fast with a readable message when the
# binary under test is missing or not executable.
ci_require_bin() {
  if [ ! -x "$1" ]; then
    echo "${0##*/}: missing binary $1" >&2
    exit 1
  fi
}
