#!/usr/bin/env bash
# End-to-end durability check for the campaign store: sweep the grid as
# two shard processes, "crash" shard 1 mid-sweep via the cell budget,
# resume it, merge both stores, and require the merged CSV/JSON to be
# byte-identical to an uninterrupted single-process sweep.
# shellcheck source=scripts/ci_lib.sh
. "$(dirname "$0")/ci_lib.sh"

BIN=${1:?usage: ci_shard_sweep.sh path/to/campaign_sweep}
ci_require_bin "$BIN"

common=(--trials 2 --delays 0,5 --quiet)

# Golden: one process, whole grid.
timeout "$SWEEP_TIMEOUT" "$BIN" "${common[@]}" --threads 4 \
  --csv "$tmp/single.csv" --json "$tmp/single.json"

# Shard 0 sweeps its half of the grid to completion.
timeout "$SWEEP_TIMEOUT" "$BIN" "${common[@]}" --threads 2 --shard 0/2 \
  --store "$tmp/s0.store" > /dev/null

# Shard 1 is killed after 2 cells (exit 3 = incomplete), then restarted
# with --resume on a different thread count.
rc=0
timeout "$SWEEP_TIMEOUT" "$BIN" "${common[@]}" --threads 1 --shard 1/2 \
  --store "$tmp/s1.store" --cell-budget 2 > /dev/null || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "expected exit 3 from the budget-interrupted shard, got $rc" >&2
  exit 1
fi
timeout "$SWEEP_TIMEOUT" "$BIN" "${common[@]}" --threads 4 --shard 1/2 \
  --store "$tmp/s1.store" --resume > /dev/null

# Merge the shard stores and diff against the single-process report.
timeout "$SWEEP_TIMEOUT" "$BIN" merge --quiet --csv "$tmp/merged.csv" \
  --json "$tmp/merged.json" "$tmp/s0.store" "$tmp/s1.store"
cmp "$tmp/single.csv" "$tmp/merged.csv"
cmp "$tmp/single.json" "$tmp/merged.json"
echo "shard + crash/resume + merge report is byte-identical to single-process sweep"
