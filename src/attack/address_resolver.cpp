#include "attack/address_resolver.h"

#include <stdexcept>

#include "os/proc_fs.h"

namespace msa::attack {

ResolvedTarget AddressResolver::resolve_heap(os::Pid pid) {
  ResolvedTarget t;
  t.pid = pid;
  t.maps_text = debugger_.maps(pid);

  // Parse the text exactly as the shell-side attacker does.
  const auto lines = os::parse_maps(t.maps_text);
  const os::MapsLine* heap = nullptr;
  for (const auto& l : lines) {
    if (l.name == "[heap]") {
      heap = &l;
      break;
    }
  }
  if (!heap) {
    throw std::runtime_error("resolve_heap: no [heap] region for pid " +
                             std::to_string(pid));
  }
  t.heap_start = heap->start;
  t.heap_end = heap->end;

  t.page_pa.reserve(static_cast<std::size_t>(
      (t.heap_end - t.heap_start + mem::kPageSize - 1) / mem::kPageSize));
  for (mem::VirtAddr va = t.heap_start; va < t.heap_end; va += mem::kPageSize) {
    t.page_pa.push_back(debugger_.virt_to_phys(pid, va));
  }
  return t;
}

std::optional<dram::PhysAddr> AddressResolver::virt_to_phys(os::Pid pid,
                                                            mem::VirtAddr va) {
  return debugger_.virt_to_phys(pid, va);
}

}  // namespace msa::attack
