// Attack Step 2: fetch the victim's heap virtual addresses and convert
// them to physical addresses.
//
// While the victim is still alive, the adversary reads
// /proc/<pid>/maps (text), locates the [heap] line, and translates every
// page of the heap range through /proc/<pid>/pagemap — the paper's
// virtual_to_physical helper. The resulting VA-ordered physical page list
// is saved; it stays valid after termination because nothing relocates
// dead data.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dbg/debugger.h"

namespace msa::attack {

struct ResolvedTarget {
  os::Pid pid = 0;
  mem::VirtAddr heap_start = 0;
  mem::VirtAddr heap_end = 0;  ///< exclusive
  /// Physical address of each heap page in VA order; nullopt for pages the
  /// pagemap reported absent.
  std::vector<std::optional<dram::PhysAddr>> page_pa;
  /// Raw maps text as captured (Fig. 7 artifact).
  std::string maps_text;

  [[nodiscard]] std::uint64_t heap_bytes() const noexcept {
    return heap_end - heap_start;
  }
  [[nodiscard]] std::size_t pages_resolved() const noexcept {
    std::size_t n = 0;
    for (const auto& p : page_pa) {
      if (p) ++n;
    }
    return n;
  }
};

class AddressResolver {
 public:
  explicit AddressResolver(dbg::SystemDebugger& debugger) : debugger_{debugger} {}

  /// Full Step 2 for one pid. Throws std::runtime_error if the maps text
  /// has no [heap] region. Propagates DebuggerAccessDenied/PermissionError
  /// when a defense blocks the reads.
  [[nodiscard]] ResolvedTarget resolve_heap(os::Pid pid);

  /// Single-address translation, the paper's
  /// "./virtual_to_physical.out <pid> <va>" (Fig. 8).
  [[nodiscard]] std::optional<dram::PhysAddr> virt_to_phys(os::Pid pid,
                                                           mem::VirtAddr va);

 private:
  dbg::SystemDebugger& debugger_;
};

}  // namespace msa::attack
