#include "attack/command_shell.h"

#include "attack/address_resolver.h"
#include "attack/hexdump_analyzer.h"
#include "util/strings.h"

namespace msa::attack {

namespace {

constexpr const char* kHelp =
    "commands:\n"
    "  ps                      process listing\n"
    "  maps <pid>              /proc/<pid>/maps\n"
    "  v2p <pid> <vaddr>       virtual -> physical translation\n"
    "  devmem <paddr>          32-bit physical read\n"
    "  scrape <pid>            dump the pid's heap (retained)\n"
    "  grep <needle>           search the retained dump\n"
    "  strings [min_len]       printable strings in the retained dump\n"
    "  identify                model identification on the retained dump\n"
    "  help                    this text";

std::optional<std::int64_t> parse_pid(const std::string& s) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(s, &pos);
    if (pos != s.size() || v <= 0) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

CommandShell::CommandShell(dbg::SystemDebugger& debugger)
    : debugger_{debugger}, signatures_{SignatureDb::for_zoo()} {}

std::string CommandShell::execute(const std::string& line) {
  const auto words = util::split_ws(line);
  if (words.empty()) return "";
  const std::string& cmd = words.front();
  const std::vector<std::string> args{words.begin() + 1, words.end()};

  try {
    if (cmd == "help") return kHelp;
    if (cmd == "ps") return cmd_ps();
    if (cmd == "maps") return cmd_maps(args);
    if (cmd == "v2p") return cmd_v2p(args);
    if (cmd == "devmem") return cmd_devmem(args);
    if (cmd == "scrape") return cmd_scrape(args);
    if (cmd == "grep") return cmd_grep(args);
    if (cmd == "strings") return cmd_strings(args);
    if (cmd == "identify") return cmd_identify();
    return "error: unknown command '" + cmd + "' (try help)";
  } catch (const dbg::DebuggerAccessDenied& e) {
    return std::string{"error: "} + e.what();
  } catch (const os::PermissionError& e) {
    return std::string{"error: "} + e.what();
  } catch (const std::invalid_argument& e) {
    return std::string{"error: "} + e.what();
  } catch (const std::runtime_error& e) {
    return std::string{"error: "} + e.what();
  }
}

std::string CommandShell::cmd_ps() { return debugger_.ps(); }

std::string CommandShell::cmd_maps(const std::vector<std::string>& args) {
  if (args.size() != 1) return "error: usage: maps <pid>";
  const auto pid = parse_pid(args[0]);
  if (!pid) return "error: bad pid '" + args[0] + "'";
  return debugger_.maps(*pid);
}

std::string CommandShell::cmd_v2p(const std::vector<std::string>& args) {
  if (args.size() != 2) return "error: usage: v2p <pid> <vaddr>";
  const auto pid = parse_pid(args[0]);
  if (!pid) return "error: bad pid '" + args[0] + "'";
  std::uint64_t va = 0;
  try {
    va = util::parse_hex(args[1]);
  } catch (const std::invalid_argument&) {
    return "error: bad address '" + args[1] + "'";
  }
  const auto pa = debugger_.virt_to_phys(*pid, va);
  return pa ? util::hex_0x(*pa) : "error: page not present";
}

std::string CommandShell::cmd_devmem(const std::vector<std::string>& args) {
  if (args.size() != 1) return "error: usage: devmem <paddr>";
  std::uint64_t pa = 0;
  try {
    pa = util::parse_hex(args[0]);
  } catch (const std::invalid_argument&) {
    return "error: bad address '" + args[0] + "'";
  }
  return util::hex_0x(debugger_.devmem32(pa), 8);
}

std::string CommandShell::cmd_scrape(const std::vector<std::string>& args) {
  if (args.size() != 1) return "error: usage: scrape <pid>";
  const auto pid = parse_pid(args[0]);
  if (!pid) return "error: bad pid '" + args[0] + "'";

  AddressResolver resolver{debugger_};
  const ResolvedTarget target = resolver.resolve_heap(*pid);
  MemoryScraper scraper{debugger_};
  dump_ = scraper.scrape(target);
  return "scraped " + std::to_string(dump_->bytes.size()) + " bytes (" +
         std::to_string(dump_->devmem_reads) + " devmem reads, " +
         std::to_string(target.pages_resolved()) + " pages) from heap " +
         util::hex_no_prefix(target.heap_start) + "-" +
         util::hex_no_prefix(target.heap_end);
}

std::string CommandShell::cmd_grep(const std::vector<std::string>& args) {
  if (args.size() != 1) return "error: usage: grep <needle>";
  if (!dump_) return "error: no dump retained (run scrape first)";
  HexDumpAnalyzer analyzer{dump_->bytes};
  const auto hits = analyzer.grep(args[0]);
  if (hits.empty()) return "(no matches)";
  std::string out;
  for (const auto& h : hits) {
    out += h.row_text;
    out += '\n';
  }
  out += "(" + std::to_string(hits.size()) + " matching rows)";
  return out;
}

std::string CommandShell::cmd_strings(const std::vector<std::string>& args) {
  if (!dump_) return "error: no dump retained (run scrape first)";
  std::size_t min_len = 6;
  if (!args.empty()) {
    try {
      min_len = static_cast<std::size_t>(std::stoul(args[0]));
    } catch (const std::exception&) {
      return "error: bad length '" + args[0] + "'";
    }
  }
  HexDumpAnalyzer analyzer{dump_->bytes};
  return util::join(analyzer.strings(min_len), "\n");
}

std::string CommandShell::cmd_identify() {
  if (!dump_) return "error: no dump retained (run scrape first)";
  const auto matches = signatures_.scan(dump_->bytes);
  if (matches.empty()) return "no model signatures found";
  std::string out;
  for (const auto& m : matches) {
    out += m.model_name + " hits=" + std::to_string(m.hits) +
           " needles=" + std::to_string(m.distinct_needles) + "\n";
  }
  if (const auto deep = SignatureDb::identify_deep(dump_->bytes)) {
    out += "deep: " + deep->model_name + " (" +
           std::to_string(deep->param_bytes) + " weight bytes at offset " +
           std::to_string(deep->container_offset) + ")\n";
  }
  out += "=> " + matches.front().model_name;
  return out;
}

}  // namespace msa::attack
