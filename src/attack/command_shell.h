// XSCT/XSDB-style command console over the SystemDebugger.
//
// The paper's attack is driven from a shell; this console accepts the
// same command vocabulary as text and returns the terminal output,
// making the attack scriptable exactly as "our code written in python
// automates the full attack process" describes. Commands:
//
//   ps                          process listing (Figs. 5/6/9)
//   maps <pid>                  /proc/<pid>/maps (Fig. 7)
//   v2p <pid> <vaddr>           virtual_to_physical (Fig. 8)
//   devmem <paddr>              32-bit physical read (Fig. 10)
//   scrape <pid>                resolve + dump the heap, returns a summary
//                               and retains the dump for later commands
//   grep <needle>               grep the retained dump's hexdump (Fig. 11)
//   strings [min_len]           printable strings in the retained dump
//   identify                    signature-based model identification
//   help                        command list
//
// Errors (bad syntax, denials, no such pid) are reported as output lines
// beginning "error:", never as exceptions — shells don't throw.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "attack/scraper.h"
#include "attack/signature_db.h"
#include "dbg/debugger.h"

namespace msa::attack {

class CommandShell {
 public:
  explicit CommandShell(dbg::SystemDebugger& debugger);

  /// Executes one command line; returns its terminal output (possibly
  /// multi-line; no trailing-newline guarantee).
  [[nodiscard]] std::string execute(const std::string& line);

  /// The dump retained by the last successful `scrape`, if any.
  [[nodiscard]] const std::optional<ScrapedDump>& dump() const noexcept {
    return dump_;
  }

 private:
  [[nodiscard]] std::string cmd_ps();
  [[nodiscard]] std::string cmd_maps(const std::vector<std::string>& args);
  [[nodiscard]] std::string cmd_v2p(const std::vector<std::string>& args);
  [[nodiscard]] std::string cmd_devmem(const std::vector<std::string>& args);
  [[nodiscard]] std::string cmd_scrape(const std::vector<std::string>& args);
  [[nodiscard]] std::string cmd_grep(const std::vector<std::string>& args);
  [[nodiscard]] std::string cmd_strings(const std::vector<std::string>& args);
  [[nodiscard]] std::string cmd_identify();

  dbg::SystemDebugger& debugger_;
  SignatureDb signatures_;
  std::optional<ScrapedDump> dump_;
};

}  // namespace msa::attack
