#include "attack/descriptor_scan.h"

#include <algorithm>
#include <cstring>

#include "util/strings.h"

namespace msa::attack {

std::vector<std::pair<std::size_t, vitis::DpuDescriptor>> scan_descriptors(
    std::span<const std::uint8_t> bytes) {
  std::vector<std::pair<std::size_t, vitis::DpuDescriptor>> out;
  // The magic is "DPUD" in byte order D,P,U,D (0x44555044 little-endian).
  const std::string_view magic{"DPUD", 4};
  for (const std::size_t off : util::find_all(bytes, magic)) {
    if (const auto d = vitis::DpuDescriptor::decode_at(bytes, off)) {
      out.emplace_back(off, *d);
    }
  }
  return out;
}

std::optional<img::Image> reconstruct_via_descriptor(const ScrapedDump& dump) {
  for (const auto& [off, d] : scan_descriptors(dump.bytes)) {
    if (d.input_va < dump.va_start) continue;
    const std::uint64_t image_off = d.input_va - dump.va_start;
    const std::uint64_t need =
        static_cast<std::uint64_t>(d.input_width) * d.input_height * 3;
    if (need == 0 || image_off + need > dump.bytes.size()) continue;
    return img::Image::from_rgb_bytes(
        std::span{dump.bytes}.subspan(static_cast<std::size_t>(image_off),
                                      static_cast<std::size_t>(need)),
        d.input_width, d.input_height);
  }
  return std::nullopt;
}

std::vector<img::Image> recover_frame_ring(const ScrapedDump& dump) {
  auto descriptors = scan_descriptors(dump.bytes);
  std::sort(descriptors.begin(), descriptors.end(),
            [](const auto& a, const auto& b) {
              return a.second.input_va < b.second.input_va;
            });
  std::vector<img::Image> frames;
  std::uint64_t last_va = 0;
  for (const auto& [off, d] : descriptors) {
    if (!frames.empty() && d.input_va == last_va) continue;  // dedupe
    if (d.input_va < dump.va_start) continue;
    const std::uint64_t image_off = d.input_va - dump.va_start;
    const std::uint64_t need =
        static_cast<std::uint64_t>(d.input_width) * d.input_height * 3;
    if (need == 0 || image_off + need > dump.bytes.size()) continue;
    frames.push_back(img::Image::from_rgb_bytes(
        std::span{dump.bytes}.subspan(static_cast<std::size_t>(image_off),
                                      static_cast<std::size_t>(need)),
        d.input_width, d.input_height));
    last_va = d.input_va;
  }
  return frames;
}

std::optional<std::vector<float>> recover_output_scores(
    const ScrapedDump& dump) {
  for (const auto& [off, d] : scan_descriptors(dump.bytes)) {
    if (d.output_va < dump.va_start || d.output_len == 0 ||
        d.output_len > 1 << 20) {
      continue;
    }
    const std::uint64_t out_off = d.output_va - dump.va_start;
    const std::uint64_t need = d.output_len * sizeof(float);
    if (out_off + need > dump.bytes.size()) continue;
    std::vector<float> scores(d.output_len);
    std::memcpy(scores.data(), dump.bytes.data() + out_off,
                static_cast<std::size_t>(need));
    return scores;
  }
  return std::nullopt;
}

}  // namespace msa::attack
