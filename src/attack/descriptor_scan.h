// Profile-free reconstruction via DPU job descriptors — an extension of
// the paper's Step 4.b.
//
// The paper learns the input image's heap offset by offline profiling
// with a marker image. That works, but requires one profiling pass per
// (model, input geometry). The runtime, however, also leaves its DPU job
// descriptor in the heap — and the descriptor names the input buffer's
// virtual address and geometry outright. Since the attacker already knows
// the heap's VA range from Step 2, `descriptor.input_va - heap_start`
// gives the offset directly: no profiling, and it even works for input
// sizes never seen before.
#pragma once

#include <optional>
#include <vector>

#include "attack/scraper.h"
#include "img/image.h"
#include "vitis/dpu_descriptor.h"

namespace msa::attack {

/// All valid descriptors in the residue, with their byte offsets.
[[nodiscard]] std::vector<std::pair<std::size_t, vitis::DpuDescriptor>>
scan_descriptors(std::span<const std::uint8_t> bytes);

/// Reconstructs the input image purely from residue + the dump's known VA
/// base (ResolvedTarget::heap_start carried in ScrapedDump::va_start).
/// Returns nullopt when no descriptor survives or the buffer it points at
/// lies outside the dump.
[[nodiscard]] std::optional<img::Image> reconstruct_via_descriptor(
    const ScrapedDump& dump);

/// Recovers the victim's output tensor (class scores) the same way.
[[nodiscard]] std::optional<std::vector<float>> recover_output_scores(
    const ScrapedDump& dump);

/// Recovers *every* frame named by a surviving descriptor (video-pipeline
/// victims keep a ring of frames, each with its own descriptor — see
/// vitis/stream_runner.h). Frames are returned in ascending input-VA
/// order, deduplicated by buffer address.
[[nodiscard]] std::vector<img::Image> recover_frame_ring(
    const ScrapedDump& dump);

}  // namespace msa::attack
