#include "attack/hexdump_analyzer.h"

#include "util/strings.h"

namespace msa::attack {

namespace {
constexpr std::size_t kRowBytes = 16;
}

std::string HexDumpAnalyzer::dump_text() const {
  return util::hex_dump(bytes_, util::HexDumpOptions{});
}

std::string HexDumpAnalyzer::render_row(std::size_t row) const {
  const std::size_t begin = row * kRowBytes;
  if (begin >= bytes_.size()) return {};
  const std::size_t len = std::min(kRowBytes, bytes_.size() - begin);
  return util::hex_row(bytes_.subspan(begin, len), util::HexDumpOptions{});
}

std::vector<GrepHit> HexDumpAnalyzer::grep(std::string_view needle) const {
  std::vector<GrepHit> hits;
  for (const std::size_t off : util::find_all(bytes_, needle)) {
    GrepHit h;
    h.byte_offset = off;
    h.row = off / kRowBytes;
    h.row_text = render_row(h.row);
    hits.push_back(std::move(h));
  }
  return hits;
}

std::vector<std::pair<std::size_t, std::size_t>> HexDumpAnalyzer::uniform_runs(
    std::uint8_t value, std::size_t min_rows) const {
  std::vector<std::pair<std::size_t, std::size_t>> runs;
  const std::size_t total_rows = bytes_.size() / kRowBytes;
  std::size_t run_start = 0;
  std::size_t run_len = 0;
  for (std::size_t row = 0; row < total_rows; ++row) {
    bool uniform = true;
    for (std::size_t i = 0; i < kRowBytes; ++i) {
      if (bytes_[row * kRowBytes + i] != value) {
        uniform = false;
        break;
      }
    }
    if (uniform) {
      if (run_len == 0) run_start = row;
      ++run_len;
    } else if (run_len > 0) {
      if (run_len >= min_rows) runs.emplace_back(run_start, run_len);
      run_len = 0;
    }
  }
  if (run_len >= min_rows) runs.emplace_back(run_start, run_len);
  return runs;
}

std::size_t HexDumpAnalyzer::find_byte_run(std::uint8_t value,
                                           std::size_t count) const {
  if (count == 0 || bytes_.size() < count) return npos;
  std::size_t run = 0;
  for (std::size_t i = 0; i < bytes_.size(); ++i) {
    if (bytes_[i] == value) {
      if (++run >= count) return i + 1 - count;
    } else {
      run = 0;
    }
  }
  return npos;
}

std::vector<std::string> HexDumpAnalyzer::strings(std::size_t min_len) const {
  return util::extract_strings(bytes_, min_len);
}

}  // namespace msa::attack
