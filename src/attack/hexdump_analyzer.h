// Attack Step 4 front-end: format the scraped residue as a hexdump and
// run grep-style queries over it — the "hexdump | grep resnet50" and
// "grep 'FFFF FFFF'" moves from the paper's Figs. 11/12.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/hexdump.h"

namespace msa::attack {

struct GrepHit {
  std::size_t byte_offset = 0;  ///< offset of the match in the residue
  std::size_t row = 0;          ///< hexdump row number (16 bytes per row)
  std::string row_text;         ///< rendered row, hex + ASCII gutter
};

class HexDumpAnalyzer {
 public:
  explicit HexDumpAnalyzer(std::span<const std::uint8_t> bytes)
      : bytes_{bytes} {}

  /// Full hexdump text (16-byte rows, ASCII gutter). Large for big heaps;
  /// prefer grep()/find_marker_rows() which render only matching rows.
  [[nodiscard]] std::string dump_text() const;

  /// All occurrences of an ASCII needle in the residue, each reported with
  /// its rendered hexdump row (Fig. 11: grep "resnet50").
  [[nodiscard]] std::vector<GrepHit> grep(std::string_view needle) const;

  /// Rows consisting entirely of `value` bytes, coalesced into runs:
  /// (first_row, row_count) pairs. Fig. 12's FFFF-FFFF block finder.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> uniform_runs(
      std::uint8_t value, std::size_t min_rows = 4) const;

  /// First byte offset where `count` consecutive bytes equal `value`, or
  /// npos. This is how offline profiling pins the 0x55-marker image start.
  [[nodiscard]] std::size_t find_byte_run(std::uint8_t value,
                                          std::size_t count) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Printable strings of length >= min_len (strings(1) pass).
  [[nodiscard]] std::vector<std::string> strings(std::size_t min_len = 6) const;

  /// Renders row `row` (16 bytes) as hexdump text.
  [[nodiscard]] std::string render_row(std::size_t row) const;

 private:
  std::span<const std::uint8_t> bytes_;
};

}  // namespace msa::attack
