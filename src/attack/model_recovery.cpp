#include "attack/model_recovery.h"

#include <algorithm>

#include "util/strings.h"

namespace msa::attack {

std::optional<RecoveredModel> recover_model(
    std::span<const std::uint8_t> bytes) {
  auto all = recover_all_models(bytes);
  if (all.empty()) return std::nullopt;
  return std::move(all.front());
}

std::vector<RecoveredModel> recover_all_models(
    std::span<const std::uint8_t> bytes) {
  const auto& magic = vitis::XModel::magic();
  const std::string_view magic_sv{reinterpret_cast<const char*>(magic.data()),
                                  magic.size() - 1};
  std::vector<RecoveredModel> out;
  std::size_t resume_at = 0;
  for (const std::size_t off : util::find_all(bytes, magic_sv)) {
    if (off < resume_at) continue;  // magic inside a recovered container
    try {
      std::size_t consumed = 0;
      vitis::XModel model = vitis::XModel::deserialize_at(bytes, off, &consumed);
      out.push_back(RecoveredModel{std::move(model), off, consumed});
      resume_at = off + consumed;
    } catch (const std::invalid_argument&) {
      // Partially overwritten container; keep scanning.
    }
  }
  return out;
}

double clone_agreement(const vitis::XModel& original,
                       const vitis::XModel& clone, std::size_t probes,
                       std::uint64_t seed) {
  if (probes == 0) return 0.0;
  const auto& shape = original.input_shape();
  std::size_t agree = 0;
  for (std::size_t i = 0; i < probes; ++i) {
    const img::Image probe =
        img::make_test_image(shape.w, shape.h, seed + i * 2654435761ULL);
    const vitis::Tensor t = vitis::tensor_from_image(probe);
    const auto a = original.infer(t);
    const auto b = clone.infer(t);
    const auto top = [](const std::vector<float>& v) {
      return std::max_element(v.begin(), v.end()) - v.begin();
    };
    if (a.size() == b.size() && top(a) == top(b)) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(probes);
}

}  // namespace msa::attack
