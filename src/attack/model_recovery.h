// Full model theft from residue — the strongest form of the paper's
// "revealing sensitive information such as input images and weights".
//
// identify_deep() (signature_db.h) proves a serialized xmodel survives in
// the scraped bytes; recover_model() goes the rest of the way and returns
// the parsed, *executable* clone. clone_agreement() then quantifies the
// theft: the fraction of probe inputs on which the clone's predictions
// match the original's (1.0 = functionally identical stolen model).
#pragma once

#include <optional>

#include "attack/scraper.h"
#include "vitis/xmodel.h"

namespace msa::attack {

struct RecoveredModel {
  vitis::XModel model;
  std::size_t container_offset = 0;
  std::size_t container_bytes = 0;
};

/// Parses the first intact xmodel container out of the residue.
[[nodiscard]] std::optional<RecoveredModel> recover_model(
    std::span<const std::uint8_t> bytes);

/// Parses *every* intact container in the residue (a pool scan after
/// multi-tenant churn can hold several terminated jobs' models at once).
/// Ordered by container offset.
[[nodiscard]] std::vector<RecoveredModel> recover_all_models(
    std::span<const std::uint8_t> bytes);

/// Fraction of `probes` random test images on which both models predict
/// the same top class. Deterministic given `seed`.
[[nodiscard]] double clone_agreement(const vitis::XModel& original,
                                     const vitis::XModel& clone,
                                     std::size_t probes, std::uint64_t seed);

}  // namespace msa::attack
