#include "attack/orchestrator.h"

#include "attack/descriptor_scan.h"
#include "attack/hexdump_analyzer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace msa::attack {

AttackOrchestrator::AttackOrchestrator(dbg::SystemDebugger& debugger,
                                       SignatureDb signatures,
                                       ProfileDb profiles)
    : debugger_{debugger},
      signatures_{std::move(signatures)},
      profiles_{std::move(profiles)},
      poller_{debugger} {}

std::optional<PsEntry> AttackOrchestrator::find_victim(
    std::string_view cmd_substring) {
  return poller_.find(cmd_substring);
}

ResolvedTarget AttackOrchestrator::resolve(os::Pid pid) {
  AddressResolver resolver{debugger_};
  return resolver.resolve_heap(pid);
}

bool AttackOrchestrator::victim_terminated(os::Pid pid) {
  return !poller_.is_alive(pid);
}

AttackReport AttackOrchestrator::attack_after_termination(
    const ResolvedTarget& target) {
  MemoryScraper scraper{debugger_};
  ScrapedDump dump = [&] {
    TRACE_SPAN("trial", "scrape");
    return scraper.scrape(target);
  }();
  obs::counter("trial.scraped_bytes").add(dump.bytes.size());
  AttackReport report = analyze(std::move(dump));
  report.victim_pid = target.pid;

  std::string t;
  t += "[step 2] heap " + util::hex_no_prefix(target.heap_start) + "-" +
       util::hex_no_prefix(target.heap_end) + " (" +
       std::to_string(target.page_pa.size()) + " pages, " +
       std::to_string(target.pages_resolved()) + " resolved)\n";
  t += "[step 3] scraped " + std::to_string(report.residue_bytes) +
       " bytes with " + std::to_string(report.devmem_reads) +
       " devmem reads\n";
  t += "[step 4a] identified model: " +
       (report.model_identified() ? report.identified_model : "<none>") +
       " (" + std::to_string(report.signature_hits) + " signature hits)\n";
  t += "[step 4b] image " +
       std::string{report.image_recovered() ? "reconstructed" : "not recovered"} +
       "\n";
  report.transcript = std::move(t);
  return report;
}

AttackReport AttackOrchestrator::attack_physical_scan(dram::PhysAddr base,
                                                      std::uint64_t len) {
  MemoryScraper scraper{debugger_};
  ScrapedDump scan = [&] {
    TRACE_SPAN("trial", "scrape");
    return scraper.scrape_physical_range(base, len);
  }();
  obs::counter("trial.scraped_bytes").add(scan.bytes.size());

  AttackReport report;
  report.devmem_reads = scan.devmem_reads;
  report.residue_bytes = scan.bytes.size();

  if (const auto best = signatures_.identify(scan.bytes)) {
    report.identified_model = *best;
    const auto matches = signatures_.scan(scan.bytes);
    report.signature_hits = matches.front().hits;
  }
  report.deep_match = SignatureDb::identify_deep(scan.bytes);

  if (report.model_identified()) {
    if (const auto profile = profiles_.find(report.identified_model)) {
      TRACE_SPAN("trial", "reconstruct");
      report.reconstructed_image =
          ImageReconstructor::reconstruct_from_scan(scan, *profile);
    }
  }
  report.transcript = "[scan] swept " + std::to_string(len) +
                      " bytes at " + util::hex_0x(base) + "\n";
  return report;
}

AttackReport AttackOrchestrator::analyze(ScrapedDump dump) {
  AttackReport report;
  report.devmem_reads = dump.devmem_reads;
  report.residue_bytes = dump.bytes.size();
  report.pages_unmapped = dump.pages_unmapped;

  const auto matches = signatures_.scan(dump.bytes);
  if (!matches.empty()) {
    report.identified_model = matches.front().model_name;
    report.signature_hits = matches.front().hits;
  }
  report.deep_match = SignatureDb::identify_deep(dump.bytes);

  {
    TRACE_SPAN("trial", "reconstruct");
    if (report.model_identified()) {
      if (const auto profile = profiles_.find(report.identified_model)) {
        report.reconstructed_image =
            ImageReconstructor::reconstruct(dump, *profile);
      }
    }

    // Profile-free extension: a surviving DPU descriptor names the input
    // buffer and the output tensor outright.
    report.descriptor_image = reconstruct_via_descriptor(dump);
    report.recovered_scores = recover_output_scores(dump);
  }
  return report;
}

}  // namespace msa::attack
