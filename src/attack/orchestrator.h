// AttackOrchestrator: the paper's automated end-to-end attack ("Our code
// written in python automates the full attack process"), as a library.
//
// Staged API mirrors the four-step methodology so examples/benches can
// interleave victim activity between steps, plus a one-call
// attack_after_termination() that runs Steps 3-4 once the victim is gone.
#pragma once

#include <optional>
#include <string>

#include "attack/address_resolver.h"
#include "attack/pid_poller.h"
#include "attack/profiler.h"
#include "attack/reconstructor.h"
#include "attack/scraper.h"
#include "attack/signature_db.h"

namespace msa::attack {

struct AttackReport {
  os::Pid victim_pid = 0;
  /// Step-4.a string identification result ("" = unidentified).
  std::string identified_model;
  std::size_t signature_hits = 0;
  /// Deep (container-parse) identification, when a full xmodel survived.
  std::optional<DeepMatch> deep_match;
  /// Step-4.b reconstruction (nullopt if no profile or residue gone).
  std::optional<img::Image> reconstructed_image;
  /// Profile-free reconstruction via a surviving DPU descriptor
  /// (extension; see attack/descriptor_scan.h).
  std::optional<img::Image> descriptor_image;
  /// The victim's inference output recovered via the descriptor.
  std::optional<std::vector<float>> recovered_scores;
  /// Operational counters.
  std::uint64_t devmem_reads = 0;
  std::uint64_t residue_bytes = 0;
  std::uint64_t pages_unmapped = 0;
  /// Human-readable step-by-step transcript (figure-style artifacts).
  std::string transcript;

  [[nodiscard]] bool model_identified() const noexcept {
    return !identified_model.empty();
  }
  [[nodiscard]] bool image_recovered() const noexcept {
    return reconstructed_image.has_value();
  }
};

class AttackOrchestrator {
 public:
  AttackOrchestrator(dbg::SystemDebugger& debugger, SignatureDb signatures,
                     ProfileDb profiles);

  /// Step 1: poll for the victim (by command substring, e.g. "resnet50").
  [[nodiscard]] std::optional<PsEntry> find_victim(std::string_view cmd_substring);

  /// Step 2: resolve the victim's heap while it is alive.
  [[nodiscard]] ResolvedTarget resolve(os::Pid pid);

  /// Step 3 guard: has the victim's pid disappeared from ps?
  [[nodiscard]] bool victim_terminated(os::Pid pid);

  /// Steps 3 + 4 against a previously resolved target. Call only after
  /// victim_terminated() is true (the paper polls until then).
  [[nodiscard]] AttackReport attack_after_termination(const ResolvedTarget& target);

  /// Post-mortem fallback: raw physical sweep + analysis, for when the
  /// live window was missed. Requires profiles for reconstruction.
  [[nodiscard]] AttackReport attack_physical_scan(dram::PhysAddr base,
                                                  std::uint64_t len);

  [[nodiscard]] const ProfileDb& profiles() const noexcept { return profiles_; }

 private:
  AttackReport analyze(ScrapedDump dump);

  dbg::SystemDebugger& debugger_;
  SignatureDb signatures_;
  ProfileDb profiles_;
  PidPoller poller_;
};

}  // namespace msa::attack
