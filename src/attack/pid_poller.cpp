#include "attack/pid_poller.h"

#include "util/strings.h"

namespace msa::attack {

std::vector<PsEntry> parse_ps(const std::string& ps_text) {
  std::vector<PsEntry> out;
  bool first = true;
  for (const auto& line : util::split(ps_text, '\n')) {
    if (first) {  // header
      first = false;
      continue;
    }
    if (line.empty()) continue;
    const auto fields = util::split_ws(line);
    // PID PPID C STIME TTY TIME CMD...
    if (fields.size() < 7) continue;
    PsEntry e;
    try {
      e.pid = std::stoll(fields[0]);
      e.ppid = std::stoll(fields[1]);
    } catch (const std::exception&) {
      continue;
    }
    std::string cmd;
    for (std::size_t i = 6; i < fields.size(); ++i) {
      if (i > 6) cmd += ' ';
      cmd += fields[i];
    }
    e.cmd = std::move(cmd);
    out.push_back(std::move(e));
  }
  return out;
}

std::optional<PsEntry> PidPoller::find(std::string_view cmd_substring) {
  last_listing_ = debugger_.ps();
  ++polls_;
  for (const auto& e : parse_ps(last_listing_)) {
    if (util::contains(e.cmd, cmd_substring)) return e;
  }
  return std::nullopt;
}

bool PidPoller::is_alive(os::Pid pid) {
  last_listing_ = debugger_.ps();
  ++polls_;
  for (const auto& e : parse_ps(last_listing_)) {
    if (e.pid == pid) return true;
  }
  return false;
}

}  // namespace msa::attack
