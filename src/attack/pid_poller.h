// Attack Step 1: polling for the victim's pid.
//
// The adversary runs "ps -ef" through the debugger, parses the listing
// text (they have no structured API — only what the shell shows), and
// watches for a command line containing a model of interest. After the
// victim launches, the poller reports its pid; after it terminates, the
// poller's is_alive() turns false — the trigger for Step 3.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dbg/debugger.h"

namespace msa::attack {

struct PsEntry {
  os::Pid pid = 0;
  os::Pid ppid = 0;
  std::string cmd;
};

/// Parses ps -ef text (header + body lines) into entries. Tolerates
/// unparseable lines by skipping them, as a shell-scripted attacker would.
[[nodiscard]] std::vector<PsEntry> parse_ps(const std::string& ps_text);

class PidPoller {
 public:
  explicit PidPoller(dbg::SystemDebugger& debugger) : debugger_{debugger} {}

  /// One polling round: returns the first process whose command line
  /// contains `cmd_substring` (e.g. "resnet50"), or nullopt.
  [[nodiscard]] std::optional<PsEntry> find(std::string_view cmd_substring);

  /// True while `pid` still appears in ps output.
  [[nodiscard]] bool is_alive(os::Pid pid);

  /// Raw ps -ef text of the most recent poll (the Figs. 5/6/9 artifact).
  [[nodiscard]] const std::string& last_listing() const noexcept {
    return last_listing_;
  }

  [[nodiscard]] std::uint64_t polls() const noexcept { return polls_; }

 private:
  dbg::SystemDebugger& debugger_;
  std::string last_listing_;
  std::uint64_t polls_ = 0;
};

}  // namespace msa::attack
