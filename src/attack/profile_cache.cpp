#include "attack/profile_cache.h"

#include <utility>

#include "attack/profiler.h"
#include "mem/frame_allocator.h"
#include "obs/metrics.h"

namespace msa::attack {

namespace {

obs::Counter& hits_metric() {
  static obs::Counter& c = obs::counter("cache.profile_hits");
  return c;
}
obs::Counter& misses_metric() {
  static obs::Counter& c = obs::counter("cache.profile_misses");
  return c;
}
obs::Counter& built_metric() {
  static obs::Counter& c = obs::counter("cache.twin_boards_built");
  return c;
}
obs::Counter& reused_metric() {
  static obs::Counter& c = obs::counter("cache.twin_boards_reused");
  return c;
}
obs::Counter& victim_built_metric() {
  static obs::Counter& c = obs::counter("cache.victim_boards_built");
  return c;
}
obs::Counter& victim_reused_metric() {
  static obs::Counter& c = obs::counter("cache.victim_boards_reused");
  return c;
}
obs::Counter& input_built_metric() {
  static obs::Counter& c = obs::counter("cache.victim_inputs_built");
  return c;
}
obs::Counter& input_reused_metric() {
  static obs::Counter& c = obs::counter("cache.victim_inputs_reused");
  return c;
}

}  // namespace

TwinBoardKey TwinBoardKey::from_config(const ScenarioConfig& config) {
  const os::SystemConfig& sys = config.system;
  TwinBoardKey key;
  key.board_name = sys.board.board_name;
  key.dram_base = sys.board.base;
  key.dram_size = sys.board.size;
  key.dram_page_size = sys.board.page_size;
  key.pool_first_pfn = sys.pool_first_pfn;
  key.pool_frames = sys.pool_frames;
  key.placement = sys.placement;
  key.heap_va_base = sys.heap_va_base;
  key.heap_va_aslr = sys.heap_va_aslr;
  key.attacker_uid = config.attacker_uid;
  return key;
}

ProfileKey ProfileKey::from_config(const ScenarioConfig& config) {
  ProfileKey key;
  key.board = TwinBoardKey::from_config(config);
  key.model_name = config.model_name;
  key.image_width = config.image_width;
  key.image_height = config.image_height;
  return key;
}

TwinBoardPool::Board::Board(const os::SystemConfig& twin, os::Uid attacker_uid)
    : system{twin},
      runtime{system},
      debugger{system, attacker_uid,
               dbg::DebuggerAcl{dbg::AclMode::kUnrestricted}} {
  system.add_user(attacker_uid, "attacker");
}

std::unique_ptr<TwinBoardPool::Board> TwinBoardPool::acquire(
    const ScenarioConfig& config) {
  {
    const std::lock_guard lock{mutex_};
    const auto it = idle_.find(TwinBoardKey::from_config(config));
    if (it != idle_.end() && !it->second.empty()) {
      std::unique_ptr<Board> board = std::move(it->second.back());
      it->second.pop_back();
      reused_metric().add();
      return board;
    }
  }
  // Build outside the lock: distinct-key misses construct concurrently.
  auto board = std::make_unique<Board>(twin_system_config(config),
                                       config.attacker_uid);
  built_metric().add();
  return board;
}

void TwinBoardPool::release(const ScenarioConfig& config,
                            std::unique_ptr<Board> board) {
  // Zero the residue the profile run left behind so the next profile on
  // this board sees the same all-zero free memory a fresh board would
  // (alignment gaps inside a future heap are never written, so stale
  // bytes there would otherwise leak into the scrape). Whole-page zeroes
  // drop the sparse DRAM blocks, so a parked board stays small.
  mem::PageFrameAllocator& alloc = board->system.allocator();
  for (const mem::Pfn pfn : alloc.dirty_free_frames()) {
    board->system.dram().zero_range(mem::PageFrameAllocator::frame_to_phys(pfn),
                                    mem::PageFrameAllocator::kPageSize);
  }
  const std::lock_guard lock{mutex_};
  idle_[TwinBoardKey::from_config(config)].push_back(std::move(board));
}

VictimBoardKey VictimBoardKey::from_config(const ScenarioConfig& config) {
  const os::SystemConfig& sys = config.system;
  VictimBoardKey key;
  key.board_name = sys.board.board_name;
  key.dram_base = sys.board.base;
  key.dram_size = sys.board.size;
  key.pool_first_pfn = sys.pool_first_pfn;
  key.pool_frames = sys.pool_frames;
  return key;
}

std::unique_ptr<VictimBoardPool::Board> VictimBoardPool::acquire(
    const ScenarioConfig& config) {
  std::unique_ptr<Board> board;
  {
    const std::lock_guard lock{mutex_};
    const auto it = idle_.find(VictimBoardKey::from_config(config));
    if (it != idle_.end() && !it->second.empty()) {
      board = std::move(it->second.back());
      it->second.pop_back();
    }
  }
  if (board) {
    // Reboot outside the lock; this reapplies every config field the
    // bucket key leaves out (seed, placement, sanitize, clock, ...).
    board->system.reset(config.system);
    victim_reused_metric().add();
    return board;
  }
  board = std::make_unique<Board>(config.system);
  victim_built_metric().add();
  return board;
}

void VictimBoardPool::release(const ScenarioConfig& config,
                              std::unique_ptr<Board> board) {
  const std::lock_guard lock{mutex_};
  idle_[VictimBoardKey::from_config(config)].push_back(std::move(board));
}

std::shared_ptr<const img::Image> ProfileCache::victim_input(
    const ScenarioConfig& config) {
  // corrupt_fraction only matters when corruption is on; normalize it out
  // of the key so uncorrupted lookups share one entry per geometry/seed.
  const InputKey key{config.image_width, config.image_height,
                     config.image_seed, config.corrupt_image,
                     config.corrupt_image ? config.corrupt_fraction : 0.0};
  {
    const std::lock_guard lock{input_mutex_};
    const auto it = input_index_.find(key);
    if (it != input_index_.end()) {
      input_lru_.splice(input_lru_.begin(), input_lru_, it->second);
      input_reused_metric().add();
      return it->second->second;
    }
  }
  // Generate outside the lock; a racing duplicate generation is harmless
  // because both threads produce the identical image.
  auto image = std::make_shared<const img::Image>(make_victim_input(config));
  input_built_metric().add();
  const std::lock_guard lock{input_mutex_};
  auto [it, inserted] = input_index_.try_emplace(key);
  if (!inserted) return it->second->second;
  input_lru_.emplace_front(key, image);
  it->second = input_lru_.begin();
  if (input_lru_.size() > kInputCacheCap) {
    input_index_.erase(input_lru_.back().first);
    input_lru_.pop_back();
  }
  return image;
}

ModelProfile ProfileCache::get_or_profile(const ScenarioConfig& config) {
  std::shared_ptr<Entry> entry;
  {
    const std::lock_guard lock{mutex_};
    std::shared_ptr<Entry>& slot = entries_[ProfileKey::from_config(config)];
    if (!slot) slot = std::make_shared<Entry>();
    entry = slot;
  }

  std::unique_lock lock{entry->mutex};
  if (!entry->claimed) {
    // This thread profiles the key; the once-latch (claimed) guarantees
    // no other thread ever will, even after we drop the entry lock.
    entry->claimed = true;
    lock.unlock();
    misses_metric().add();

    ModelProfile profile;
    std::exception_ptr error;
    std::unique_ptr<TwinBoardPool::Board> board;
    try {
      board = pool_.acquire(config);
      OfflineProfiler profiler{board->runtime, board->debugger};
      profile = profiler.profile_model(config.model_name, config.image_width,
                                       config.image_height,
                                       config.attacker_uid);
    } catch (...) {
      error = std::current_exception();
      board.reset();  // a half-profiled board is not reusable
    }
    if (board) pool_.release(config, std::move(board));

    lock.lock();
    entry->profile = std::move(profile);
    entry->error = error;
    entry->ready = true;
    entry->ready_cv.notify_all();
    if (error) std::rethrow_exception(error);
    return entry->profile;
  }

  // Hit: either already published or in flight on another thread.
  entry->ready_cv.wait(lock, [&] { return entry->ready; });
  hits_metric().add();
  if (entry->error) std::rethrow_exception(entry->error);
  return entry->profile;
}

std::size_t ProfileCache::size() const {
  const std::lock_guard lock{mutex_};
  return entries_.size();
}

}  // namespace msa::attack
