// Cross-cell profile cache + shared twin-board pool.
//
// Offline profiling is pure in (model, image geometry, layout policy):
// the attacker's twin board is deterministic, and the profile records
// only heap-relative offsets, so re-running OfflineProfiler for every
// trial of a campaign repeats identical work. ProfileCache memoizes
// profiles under a key of exactly the knobs that can change the result;
// notably the board seed is NOT part of the key — the scrape reassembles
// the heap in VA order, so physical placement and heap-base randomization
// cannot alter the profiled offsets (pinned by the cache tests).
//
// Concurrency contract (the campaign determinism contract depends on it):
//   * per-key once-latch — when N workers miss the same key at once,
//     exactly one profiles; the rest block and reuse its result, so
//     misses == distinct keys and hits == lookups - misses for any
//     thread count and schedule;
//   * a profiling failure is cached and rethrown to every waiter and to
//     every later lookup of the key, matching the uncached behaviour of
//     profile_on_twin_board throwing on each call.
//
// TwinBoardPool amortizes the other half of the offline phase: building
// the attacker's os::PetaLinuxSystem (frame tables, runtime, debugger)
// per profile. Boards are parked per board-key after use and scrubbed
// (dirty free frames zeroed) on release so a reused board is
// byte-equivalent to a fresh one for the next profile; a board whose
// profile threw is discarded instead of parked.
// Cache observability lives on the obs metrics registry: the counters
// cache.profile_hits / cache.profile_misses / cache.twin_boards_built /
// cache.twin_boards_reused aggregate process-wide, and the campaign
// runner snapshots per-sweep deltas into SweepReport's never-serialized
// telemetry fields.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "attack/scenario.h"
#include "dbg/debugger.h"
#include "os/system.h"
#include "vitis/runtime.h"

namespace msa::attack {

/// Identity of an attacker twin board: every SystemConfig field that can
/// change board behaviour, except the seed and boot time (profiles are
/// invariant to both — see file comment).
struct TwinBoardKey {
  std::string board_name;
  dram::PhysAddr dram_base = 0;
  std::uint64_t dram_size = 0;
  std::uint32_t dram_page_size = 0;
  mem::Pfn pool_first_pfn = 0;
  std::uint64_t pool_frames = 0;
  mem::PlacementPolicy placement = mem::PlacementPolicy::kSequentialLifo;
  mem::VirtAddr heap_va_base = 0;
  bool heap_va_aslr = false;
  os::Uid attacker_uid = 0;

  [[nodiscard]] static TwinBoardKey from_config(const ScenarioConfig& config);
  auto operator<=>(const TwinBoardKey&) const = default;
};

/// Cache key: the twin board identity plus what the profiler is asked to
/// profile on it.
struct ProfileKey {
  TwinBoardKey board;
  std::string model_name;
  std::uint32_t image_width = 0;
  std::uint32_t image_height = 0;

  [[nodiscard]] static ProfileKey from_config(const ScenarioConfig& config);
  auto operator<=>(const ProfileKey&) const = default;
};

/// Pool of ready-to-profile attacker boards, keyed by TwinBoardKey so
/// cache misses for distinct models on the same board shape reuse one
/// another's boards while misses on different shapes (e.g. randomized vs
/// sequential placement) never share state.
class TwinBoardPool {
 public:
  struct Board {
    os::PetaLinuxSystem system;
    vitis::VitisAiRuntime runtime;
    dbg::SystemDebugger debugger;

    Board(const os::SystemConfig& twin, os::Uid attacker_uid);
  };

  /// Reuses an idle board for this config's twin shape, or builds one.
  [[nodiscard]] std::unique_ptr<Board> acquire(const ScenarioConfig& config);

  /// Scrubs the board's residue (zeroing dirty free frames, which also
  /// releases their sparse DRAM blocks) and parks it for reuse. Only
  /// boards whose profile completed cleanly may be released; drop the
  /// pointer instead after an exception.
  void release(const ScenarioConfig& config, std::unique_ptr<Board> board);

 private:
  std::mutex mutex_;
  std::map<TwinBoardKey, std::vector<std::unique_ptr<Board>>> idle_;
};

/// Bucket identity for pooled victim boards: only the shape fields that
/// size the board's tables (DRAM window + frame pool). Everything else —
/// seed, placement, sanitize, clock — is reapplied by
/// PetaLinuxSystem::reset() on acquire, so a stale-state reuse is
/// impossible; bucketing merely keeps storage reuse on same-sized
/// boards.
struct VictimBoardKey {
  std::string board_name;
  dram::PhysAddr dram_base = 0;
  std::uint64_t dram_size = 0;
  mem::Pfn pool_first_pfn = 0;
  std::uint64_t pool_frames = 0;

  [[nodiscard]] static VictimBoardKey from_config(const ScenarioConfig& config);
  auto operator<=>(const VictimBoardKey&) const = default;
};

/// Pool of victim boards for run_scenario: the dominant per-trial
/// allocations (sparse DRAM block map, frame table, free list) are
/// reused across trials, and keeping the VitisAiRuntime alongside its
/// board keeps the deserialized XModel cache warm across trials too.
/// Unlike TwinBoardPool there is no scrub-on-release contract: acquire()
/// reboots the board via reset(), which reproduces a fresh construction
/// byte for byte, so boards may be parked in any state.
class VictimBoardPool {
 public:
  struct Board {
    os::PetaLinuxSystem system;
    vitis::VitisAiRuntime runtime;

    explicit Board(const os::SystemConfig& config)
        : system{config}, runtime{system} {}
  };

  /// Returns a board in exactly the state `PetaLinuxSystem{config.system}`
  /// would construct (per-trial seeding included), reusing a parked
  /// board's storage when the shape matches.
  [[nodiscard]] std::unique_ptr<Board> acquire(const ScenarioConfig& config);

  /// Parks the board for reuse, in whatever state the trial left it.
  void release(const ScenarioConfig& config, std::unique_ptr<Board> board);

 private:
  std::mutex mutex_;
  std::map<VictimBoardKey, std::vector<std::unique_ptr<Board>>> idle_;
};

/// Thread-safe memo of profile_on_twin_board. One instance is shared
/// across every cell and trial of a campaign sweep; it also carries the
/// victim-side trial caches (board pool + input memo) so everything the
/// runner shares across trials lives behind one pointer.
class ProfileCache {
 public:
  /// Returns the profile for this config's key, profiling it on a pooled
  /// twin board on first use. Rethrows a cached profiling failure on
  /// every lookup of the failed key.
  [[nodiscard]] ModelProfile get_or_profile(const ScenarioConfig& config);

  /// Memoized victim input (make_test_image + optional corruption) keyed
  /// by (width, height, seed, corrupt knobs). Bounded LRU: trial
  /// reseeding makes most image seeds unique, so the memo pays off on
  /// the repeated trial-0 / same-cell lookups without growing with the
  /// grid.
  [[nodiscard]] std::shared_ptr<const img::Image> victim_input(
      const ScenarioConfig& config);

  /// Pooled victim-board allocations shared across trials.
  [[nodiscard]] VictimBoardPool& victim_boards() noexcept {
    return victim_pool_;
  }

  /// Distinct keys ever looked up (including failed ones).
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::mutex mutex;
    std::condition_variable ready_cv;
    bool claimed = false;  ///< a thread is (or was) profiling this key
    bool ready = false;    ///< profile or error is published
    ModelProfile profile;
    std::exception_ptr error;
  };

  struct InputKey {
    std::uint32_t width = 0;
    std::uint32_t height = 0;
    std::uint64_t seed = 0;
    bool corrupt = false;
    double corrupt_fraction = 0.0;

    auto operator<=>(const InputKey&) const = default;
  };
  static constexpr std::size_t kInputCacheCap = 64;

  TwinBoardPool pool_;
  VictimBoardPool victim_pool_;
  mutable std::mutex mutex_;
  std::map<ProfileKey, std::shared_ptr<Entry>> entries_;

  std::mutex input_mutex_;
  /// LRU list (front = most recent) + index into it.
  std::list<std::pair<InputKey, std::shared_ptr<const img::Image>>> input_lru_;
  std::map<InputKey,
           std::list<std::pair<InputKey,
                               std::shared_ptr<const img::Image>>>::iterator>
      input_index_;
};

}  // namespace msa::attack
