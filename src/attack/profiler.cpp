#include "attack/profiler.h"

#include <algorithm>
#include <stdexcept>

#include "attack/hexdump_analyzer.h"
#include "util/strings.h"

namespace msa::attack {

void ProfileDb::add(ModelProfile profile) {
  profiles_[profile.model_name] = std::move(profile);
}

std::optional<ModelProfile> ProfileDb::find(const std::string& model) const {
  const auto it = profiles_.find(model);
  if (it == profiles_.end()) return std::nullopt;
  return it->second;
}

ModelProfile OfflineProfiler::profile_model(const std::string& model_name,
                                            std::uint32_t width,
                                            std::uint32_t height, os::Uid as_uid,
                                            const std::string& tty) {
  // 1. Run the model on a marker image in our own process.
  img::Image marker{width, height, img::kProfilingPixel};
  const vitis::VictimRun run =
      runtime_.launch(as_uid, model_name, marker, tty);

  // 2. Resolve our own heap (we could read it directly — using the attack
  //    pipeline keeps the measurement identical to the later replay).
  AddressResolver resolver{debugger_};
  const ResolvedTarget target = resolver.resolve_heap(run.pid);

  // 3. Terminate and scrape the residue.
  runtime_.system().terminate(run.pid);
  MemoryScraper scraper{debugger_};
  const ScrapedDump dump = scraper.scrape(target);

  // 4. Locate the marker: the first long run of 0x55 bytes. 3*16 bytes is
  //    16 marker pixels — long enough that weights can't fake it.
  HexDumpAnalyzer analyzer{dump.bytes};
  const std::size_t off = analyzer.find_byte_run(0x55, 48);
  if (off == HexDumpAnalyzer::npos) {
    throw std::runtime_error("profile_model: marker not found in residue of " +
                             model_name);
  }

  // 5. Anchor string for physical-scan reconstruction.
  const std::string path_needle =
      "models/" + model_name + "/" + model_name + ".xmodel";
  const auto path_hits = analyzer.grep(path_needle);
  const std::uint64_t path_off = path_hits.empty() ? 0 : path_hits.front().byte_offset;

  ModelProfile p;
  p.model_name = model_name;
  p.image_offset = off;
  p.image_width = width;
  p.image_height = height;
  p.heap_bytes = dump.bytes.size();
  p.path_string_offset = path_off;

  // 6. Verification runs: replay with non-marker images and require the
  //    profiled offsets to hold byte-for-byte.
  for (unsigned v = 0; v < verification_runs_; ++v) {
    const img::Image sample =
        img::make_test_image(width, height, 0x5EEDF00DULL + v);
    const vitis::VictimRun vrun =
        runtime_.launch(as_uid, model_name, sample, tty);
    const ResolvedTarget vtarget = resolver.resolve_heap(vrun.pid);
    runtime_.system().terminate(vrun.pid);
    const ScrapedDump vdump = scraper.scrape(vtarget);

    const std::vector<std::uint8_t> expect = sample.to_rgb_bytes();
    const bool image_ok =
        vdump.bytes.size() == p.heap_bytes &&
        p.image_offset + expect.size() <= vdump.bytes.size() &&
        std::equal(expect.begin(), expect.end(),
                   vdump.bytes.begin() +
                       static_cast<std::ptrdiff_t>(p.image_offset));
    const bool path_ok =
        p.path_string_offset == 0 ||
        (p.path_string_offset + path_needle.size() <= vdump.bytes.size() &&
         std::equal(path_needle.begin(), path_needle.end(),
                    vdump.bytes.begin() +
                        static_cast<std::ptrdiff_t>(p.path_string_offset)));
    if (!image_ok || !path_ok) {
      throw std::runtime_error(
          "profile_model: offset verification failed for " + model_name +
          " (run " + std::to_string(v + 1) + ")");
    }
  }
  return p;
}

ProfileDb OfflineProfiler::profile_zoo(std::uint32_t width, std::uint32_t height,
                                       os::Uid as_uid) {
  ProfileDb db;
  for (const auto& name : vitis::zoo_model_names()) {
    db.add(profile_model(name, width, height, as_uid));
  }
  return db;
}

}  // namespace msa::attack
