#include "attack/profiler.h"

#include <stdexcept>

#include "attack/hexdump_analyzer.h"
#include "util/strings.h"

namespace msa::attack {

void ProfileDb::add(ModelProfile profile) {
  profiles_[profile.model_name] = std::move(profile);
}

std::optional<ModelProfile> ProfileDb::find(const std::string& model) const {
  const auto it = profiles_.find(model);
  if (it == profiles_.end()) return std::nullopt;
  return it->second;
}

ModelProfile OfflineProfiler::profile_model(const std::string& model_name,
                                            std::uint32_t width,
                                            std::uint32_t height, os::Uid as_uid,
                                            const std::string& tty) {
  // 1. Run the model on a marker image in our own process.
  img::Image marker{width, height, img::kProfilingPixel};
  const vitis::VictimRun run =
      runtime_.launch(as_uid, model_name, marker, tty);

  // 2. Resolve our own heap (we could read it directly — using the attack
  //    pipeline keeps the measurement identical to the later replay).
  AddressResolver resolver{debugger_};
  const ResolvedTarget target = resolver.resolve_heap(run.pid);

  // 3. Terminate and scrape the residue.
  runtime_.system().terminate(run.pid);
  MemoryScraper scraper{debugger_};
  const ScrapedDump dump = scraper.scrape(target);

  // 4. Locate the marker: the first long run of 0x55 bytes. 3*16 bytes is
  //    16 marker pixels — long enough that weights can't fake it.
  HexDumpAnalyzer analyzer{dump.bytes};
  const std::size_t off = analyzer.find_byte_run(0x55, 48);
  if (off == HexDumpAnalyzer::npos) {
    throw std::runtime_error("profile_model: marker not found in residue of " +
                             model_name);
  }

  // 5. Anchor string for physical-scan reconstruction.
  const auto path_hits =
      analyzer.grep("models/" + model_name + "/" + model_name + ".xmodel");
  const std::uint64_t path_off = path_hits.empty() ? 0 : path_hits.front().byte_offset;

  ModelProfile p;
  p.model_name = model_name;
  p.image_offset = off;
  p.image_width = width;
  p.image_height = height;
  p.heap_bytes = dump.bytes.size();
  p.path_string_offset = path_off;
  return p;
}

ProfileDb OfflineProfiler::profile_zoo(std::uint32_t width, std::uint32_t height,
                                       os::Uid as_uid) {
  ProfileDb db;
  for (const auto& name : vitis::zoo_model_names()) {
    db.add(profile_model(name, width, height, as_uid));
  }
  return db;
}

}  // namespace msa::attack
