// Offline profiling (paper Step 4.b setup): the adversary runs each model
// *themselves* with a marker image (every pixel 0x555555), scrapes their
// own run with the identical pipeline, and records where the marker lands
// relative to the heap start. Because PetaLinux applies no layout
// randomization and the runtime's allocations are deterministic, the same
// offset holds for any victim run of that model — "the image's offset
// within the heap remained consistent for any image used with this model".
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "attack/address_resolver.h"
#include "attack/scraper.h"
#include "img/image.h"
#include "vitis/runtime.h"

namespace msa::attack {

struct ModelProfile {
  std::string model_name;
  std::uint64_t image_offset = 0;   ///< bytes from heap start to pixel 0
  std::uint32_t image_width = 0;    ///< geometry of the library sample input
  std::uint32_t image_height = 0;
  std::uint64_t heap_bytes = 0;     ///< heap footprint of a run (scan anchor)
  /// Offset of the model's install-path string, used as an anchor when
  /// reconstructing from raw physical scans (no VA information).
  std::uint64_t path_string_offset = 0;
};

class ProfileDb {
 public:
  void add(ModelProfile profile);
  [[nodiscard]] std::optional<ModelProfile> find(const std::string& model) const;
  [[nodiscard]] std::size_t size() const noexcept { return profiles_.size(); }

 private:
  std::map<std::string, ModelProfile> profiles_;
};

class OfflineProfiler {
 public:
  /// The profiler drives its own victim-free runs through `runtime` and
  /// observes them with `debugger` (both referencing the attacker's
  /// training board, not the live target).
  OfflineProfiler(vitis::VitisAiRuntime& runtime, dbg::SystemDebugger& debugger)
      : runtime_{runtime}, debugger_{debugger} {}

  /// Extra runs after the marker run, each with a differently-seeded
  /// sample image, requiring the image (and path string) to land at the
  /// profiled offsets — the paper's "the image's offset within the heap
  /// remained consistent for any image used with this model" observation
  /// turned into a checked invariant. A verified profile is what makes
  /// caching it across thousands of campaign trials safe: one bad
  /// profile would otherwise poison every cell that hits it. 0 disables.
  void set_verification_runs(unsigned runs) noexcept {
    verification_runs_ = runs;
  }
  [[nodiscard]] unsigned verification_runs() const noexcept {
    return verification_runs_;
  }

  /// Profiles one model: runs it with a 0x555555-filled image of the given
  /// geometry under `as_uid`, scrapes the terminated run, derives the
  /// marker offset, and replays `verification_runs()` differently-imaged
  /// runs to confirm the offsets transfer. Throws std::runtime_error if
  /// the marker is not found (e.g. sanitization wiped it) or a
  /// verification run contradicts the profile.
  [[nodiscard]] ModelProfile profile_model(const std::string& model_name,
                                           std::uint32_t width,
                                           std::uint32_t height, os::Uid as_uid,
                                           const std::string& tty = "pts/9");

  /// Profiles every zoo model into a database.
  [[nodiscard]] ProfileDb profile_zoo(std::uint32_t width, std::uint32_t height,
                                      os::Uid as_uid);

 private:
  vitis::VitisAiRuntime& runtime_;
  dbg::SystemDebugger& debugger_;
  unsigned verification_runs_ = 1;
};

}  // namespace msa::attack
