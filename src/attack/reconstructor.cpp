#include "attack/reconstructor.h"

#include "attack/hexdump_analyzer.h"
#include "attack/signature_db.h"
#include "util/strings.h"

namespace msa::attack {

std::optional<img::Image> ImageReconstructor::reconstruct(
    const ScrapedDump& dump, const ModelProfile& profile) {
  const std::uint64_t need =
      static_cast<std::uint64_t>(profile.image_width) * profile.image_height * 3;
  if (profile.image_offset + need > dump.bytes.size()) return std::nullopt;
  return img::Image::from_rgb_bytes(
      std::span{dump.bytes}.subspan(static_cast<std::size_t>(profile.image_offset),
                                    static_cast<std::size_t>(need)),
      profile.image_width, profile.image_height);
}

std::optional<img::Image> ImageReconstructor::reconstruct_from_scan(
    const ScrapedDump& scan, const ModelProfile& profile) {
  // Find the install-path anchor in the raw scan.
  HexDumpAnalyzer analyzer{scan.bytes};
  const auto hits = analyzer.grep("models/" + profile.model_name + "/" +
                                  profile.model_name + ".xmodel");
  if (hits.empty()) return std::nullopt;
  const std::uint64_t anchor = hits.front().byte_offset;
  if (anchor < profile.path_string_offset) return std::nullopt;

  const std::uint64_t image_start =
      anchor - profile.path_string_offset + profile.image_offset;
  const std::uint64_t need =
      static_cast<std::uint64_t>(profile.image_width) * profile.image_height * 3;
  if (image_start + need > scan.bytes.size()) return std::nullopt;
  return img::Image::from_rgb_bytes(
      std::span{scan.bytes}.subspan(static_cast<std::size_t>(image_start),
                                    static_cast<std::size_t>(need)),
      profile.image_width, profile.image_height);
}

}  // namespace msa::attack
