// Attack Step 4.b: reconstructing the victim's input image from the
// scraped residue using the offline-learned offset.
#pragma once

#include <optional>

#include "attack/profiler.h"
#include "attack/scraper.h"
#include "img/image.h"

namespace msa::attack {

class ImageReconstructor {
 public:
  /// Cuts the image out of a VA-ordered heap dump at the profiled offset.
  /// Returns nullopt when the dump is too small (e.g. partially scrubbed).
  [[nodiscard]] static std::optional<img::Image> reconstruct(
      const ScrapedDump& dump, const ModelProfile& profile);

  /// Post-mortem variant for raw physical scans: anchors on the model's
  /// install-path string (whose residue offset was profiled) and applies
  /// the profiled (image_offset - path_string_offset) delta. Only valid
  /// when physical placement preserved the VA-contiguity of the heap —
  /// exactly what the placement-randomization defense destroys.
  [[nodiscard]] static std::optional<img::Image> reconstruct_from_scan(
      const ScrapedDump& scan, const ModelProfile& profile);
};

}  // namespace msa::attack
