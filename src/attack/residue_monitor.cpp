#include "attack/residue_monitor.h"

#include <stdexcept>

#include "util/crc32.h"

namespace msa::attack {

namespace {
constexpr std::uint64_t kPage = 4096;
}

ResidueMonitor::ResidueMonitor(dbg::SystemDebugger& debugger,
                               dram::PhysAddr base, std::uint64_t pages)
    : debugger_{debugger}, base_{base}, pages_{pages} {
  if (pages == 0) throw std::invalid_argument("ResidueMonitor: zero window");
}

PoolSnapshot ResidueMonitor::snapshot() {
  PoolSnapshot snap;
  snap.base = base_;
  snap.pages = pages_;
  snap.page_crc.reserve(static_cast<std::size_t>(pages_));
  for (std::uint64_t p = 0; p < pages_; ++p) {
    util::Crc32 crc;
    for (std::uint64_t off = 0; off < kPage; off += 4) {
      const std::uint32_t w = debugger_.devmem32(base_ + p * kPage + off);
      const std::uint8_t bytes[4] = {
          static_cast<std::uint8_t>(w & 0xFF),
          static_cast<std::uint8_t>((w >> 8) & 0xFF),
          static_cast<std::uint8_t>((w >> 16) & 0xFF),
          static_cast<std::uint8_t>((w >> 24) & 0xFF),
      };
      crc.update(bytes);
    }
    snap.page_crc.push_back(crc.value());
  }
  return snap;
}

ActivityDelta ResidueMonitor::diff(const PoolSnapshot& before,
                                   const PoolSnapshot& after) {
  if (before.base != after.base || before.pages != after.pages) {
    throw std::invalid_argument("ResidueMonitor::diff: window mismatch");
  }
  ActivityDelta delta;
  std::uint64_t run = 0;
  for (std::uint64_t p = 0; p < before.pages; ++p) {
    if (before.page_crc[p] != after.page_crc[p]) {
      delta.changed_pages.push_back(p);
      ++run;
      delta.largest_extent = std::max(delta.largest_extent, run);
    } else {
      run = 0;
    }
  }
  return delta;
}

ActivityDelta ResidueMonitor::poll() {
  PoolSnapshot now = snapshot();
  ActivityDelta delta;
  if (primed_) {
    delta = diff(last_, now);
  }
  last_ = std::move(now);
  primed_ = true;
  return delta;
}

}  // namespace msa::attack
