// Board-activity inference by physical-memory diffing.
//
// The devmem channel leaks more than dead data: an attacker who snapshots
// the pool periodically learns *which frames changed* between snapshots —
// i.e. when jobs run, how big their working sets are, and where they
// live, without ever touching /proc. This turns the paper's one-shot
// scrape into a standing surveillance primitive: the monitor detects a
// new victim purely from DRAM churn, then the regular pipeline scrapes it
// after exit.
//
// Snapshots store per-page CRCs, so monitoring a 512 MiB pool costs
// 512 Ki CRC words, not a copy of memory.
#pragma once

#include <cstdint>
#include <vector>

#include "dbg/debugger.h"

namespace msa::attack {

struct PoolSnapshot {
  dram::PhysAddr base = 0;
  std::uint64_t pages = 0;
  std::vector<std::uint32_t> page_crc;  ///< one CRC-32 per 4 KiB page
};

struct ActivityDelta {
  /// Page indices (relative to the snapshot base) whose content changed.
  std::vector<std::uint64_t> changed_pages;
  /// Longest run of consecutive changed pages — a working-set estimate
  /// for the largest single allocation that touched the pool.
  std::uint64_t largest_extent = 0;

  [[nodiscard]] bool any() const noexcept { return !changed_pages.empty(); }
  [[nodiscard]] std::uint64_t changed_bytes() const noexcept {
    return changed_pages.size() * 4096;
  }
};

class ResidueMonitor {
 public:
  /// Monitors [base, base + pages*4KiB) through the debugger's devmem
  /// channel (ACL/firewall checks apply on every read).
  ResidueMonitor(dbg::SystemDebugger& debugger, dram::PhysAddr base,
                 std::uint64_t pages);

  /// Takes a snapshot now.
  [[nodiscard]] PoolSnapshot snapshot();

  /// Diffs two snapshots of the same window. Throws std::invalid_argument
  /// on mismatched geometry.
  [[nodiscard]] static ActivityDelta diff(const PoolSnapshot& before,
                                          const PoolSnapshot& after);

  /// Convenience: snapshot-now vs the previous snapshot taken through
  /// this monitor (first call returns an empty delta and primes state).
  [[nodiscard]] ActivityDelta poll();

 private:
  dbg::SystemDebugger& debugger_;
  dram::PhysAddr base_;
  std::uint64_t pages_;
  PoolSnapshot last_;
  bool primed_ = false;
};

}  // namespace msa::attack
