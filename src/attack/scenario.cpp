#include "attack/scenario.h"

#include <memory>
#include <optional>
#include <stdexcept>

#include "attack/profile_cache.h"
#include "dram/remanence.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "os/scrubber.h"
#include "util/log.h"

namespace msa::attack {

namespace {

/// Applies the configured post-termination timeline: the background
/// scrubber works through the freed-dirty backlog and, if the board was
/// power-cycled, unrefreshed cells decay — both for `attack_delay_s`
/// simulated seconds before the scrape happens.
void apply_post_termination(os::PetaLinuxSystem& board,
                            const ScenarioConfig& cfg) {
  if (cfg.attack_delay_s <= 0.0) return;
  TRACE_SPAN("trial", "residue_decay");
  board.advance_time(static_cast<std::uint64_t>(cfg.attack_delay_s));

  if (cfg.scrubber_bytes_per_s > 0.0) {
    os::ScrubberDaemon scrubber{board, cfg.scrubber_bytes_per_s};
    scrubber.run_for(cfg.attack_delay_s);
  }

  if (cfg.power_cycled && !board.terminated().empty()) {
    const dram::RemanenceModel remanence{dram::RemanenceParams{
        .refresh_active = false,
        .retention_half_life_s = cfg.retention_half_life_s}};
    util::Prng prng{cfg.system.seed ^ 0xDEC4FULL};
    // Decay acts on the whole board; applying it to the victim's former
    // frames covers everything the scrape will read. One scratch across
    // the loop keeps the bulk-generated PRNG words flowing page to page;
    // the prng is local and drawn from nowhere else, so the batched
    // overload's run-ahead is unobservable.
    dram::RemanenceScratch scratch;
    for (const dram::PhysAddr pa : board.terminated().back().heap_frames) {
      remanence.apply(board.dram(), pa, mem::kPageSize, cfg.attack_delay_s,
                      prng, scratch);
    }
  }
}

}  // namespace

os::SystemConfig twin_system_config(const ScenarioConfig& config) {
  os::SystemConfig twin = config.system;
  twin.sanitize = mem::SanitizePolicy::kNone;
  twin.proc_access = os::ProcAccessPolicy::kWorldReadable;
  return twin;
}

img::Image make_victim_input(const ScenarioConfig& config) {
  img::Image input = img::make_test_image(config.image_width,
                                          config.image_height,
                                          config.image_seed);
  if (config.corrupt_image) {
    input.fill_region(img::kCorruptPixel, config.corrupt_fraction);
  }
  return input;
}

ModelProfile profile_on_twin_board(const ScenarioConfig& config) {
  os::PetaLinuxSystem board{twin_system_config(config)};
  board.add_user(config.attacker_uid, "attacker");
  vitis::VitisAiRuntime runtime{board};
  dbg::SystemDebugger dbg{board, config.attacker_uid,
                          dbg::DebuggerAcl{dbg::AclMode::kUnrestricted}};
  OfflineProfiler profiler{runtime, dbg};
  return profiler.profile_model(config.model_name, config.image_width,
                                config.image_height, config.attacker_uid);
}

ScenarioResult run_scenario(const ScenarioConfig& config) {
  return run_scenario(config, nullptr);
}

ScenarioResult run_scenario(const ScenarioConfig& config,
                            ProfileCache* profile_cache) {
  ScenarioResult result;
  obs::counter("trial.runs").add();

  // ---- offline phase (attacker's twin board) -----------------------------
  ProfileDb profiles;
  {
    TRACE_SPAN("trial", "profile");
    profiles.add(profile_cache != nullptr
                     ? profile_cache->get_or_profile(config)
                     : profile_on_twin_board(config));
  }

  // ---- victim board -------------------------------------------------------
  // Campaign runs (profile_cache set) draw the board from the shared pool:
  // acquire() reboots a parked board to the exact state the fresh
  // construction below would produce, reusing its DRAM-block, frame-table
  // and XModel-cache storage across trials.
  std::unique_ptr<VictimBoardPool::Board> pooled;
  std::optional<os::PetaLinuxSystem> local_board;
  std::optional<vitis::VitisAiRuntime> local_runtime;
  if (profile_cache != nullptr) {
    pooled = profile_cache->victim_boards().acquire(config);
  } else {
    local_board.emplace(config.system);
    local_runtime.emplace(*local_board);
  }
  os::PetaLinuxSystem& board = pooled ? pooled->system : *local_board;
  vitis::VitisAiRuntime& runtime = pooled ? pooled->runtime : *local_runtime;
  // Park the pooled board on every exit path — early denial returns and
  // exceptions included. Any parked state is fine; acquire() reboots.
  struct ParkBoard {
    ProfileCache* cache;
    const ScenarioConfig& config;
    std::unique_ptr<VictimBoardPool::Board>& board;
    ~ParkBoard() {
      if (board) cache->victim_boards().release(config, std::move(board));
    }
  } park{profile_cache, config, pooled};

  board.add_user(config.victim_uid, "victim");
  board.add_user(config.attacker_uid, "attacker");

  result.victim_input = profile_cache != nullptr
                            ? *profile_cache->victim_input(config)
                            : make_victim_input(config);

  board.advance_time(8 * 3600 + 43 * 60);  // paper: victim starts at 12:33
  const vitis::VictimRun victim = runtime.launch(
      config.victim_uid, config.model_name, result.victim_input, "pts/1");
  result.victim_top_class = victim.top_class;

  // ---- attack --------------------------------------------------------------
  dbg::SystemDebugger debugger{board, config.attacker_uid, config.acl};
  dbg::MemoryFirewall firewall{board, config.firewall};
  if (config.firewall != dbg::FirewallMode::kDisabled) {
    debugger.set_firewall(&firewall);
  }
  AttackOrchestrator orchestrator{debugger, SignatureDb::for_zoo(),
                                  std::move(profiles)};

  try {
    if (config.post_mortem_scan) {
      // The attacker never saw the live process; the victim terminates,
      // then the pool is swept.
      board.terminate(victim.pid);
      apply_post_termination(board, config);
      const auto profile = orchestrator.profiles().find(config.model_name);
      const std::uint64_t heap_guess = profile ? profile->heap_bytes : 1 << 20;
      const std::uint64_t len =
          config.scan_bytes != 0 ? config.scan_bytes : heap_guess * 4;
      const dram::PhysAddr pool_base =
          mem::PageFrameAllocator::frame_to_phys(config.system.pool_first_pfn);
      result.report = orchestrator.attack_physical_scan(pool_base, len);
    } else {
      // Step 1: poll for the victim.
      const auto entry = orchestrator.find_victim(config.model_name);
      if (!entry) {
        result.denied = true;
        result.denial_reason = "victim not visible in ps";
        obs::counter("trial.denials").add();
        return result;
      }
      // Step 2: resolve while alive.
      const ResolvedTarget target = orchestrator.resolve(entry->pid);
      // Victim finishes and exits.
      board.advance_time(60);
      board.terminate(victim.pid);
      if (!orchestrator.victim_terminated(entry->pid)) {
        throw std::logic_error("scenario: victim still alive after terminate");
      }
      apply_post_termination(board, config);
      // Steps 3-4.
      result.report = orchestrator.attack_after_termination(target);
    }
  } catch (const dbg::DebuggerAccessDenied& e) {
    result.denied = true;
    result.denial_reason = e.what();
    obs::counter("trial.denials").add();
    return result;
  } catch (const os::PermissionError& e) {
    result.denied = true;
    result.denial_reason = e.what();
    obs::counter("trial.denials").add();
    return result;
  }

  // ---- scoring ---------------------------------------------------------------
  TRACE_SPAN("trial", "score");
  result.model_identified_correctly =
      result.report.identified_model == config.model_name;
  if (result.report.reconstructed_image) {
    {
      TRACE_SPAN("trial", "score/pixel_match");
      result.pixel_match =
          img::pixel_match_fraction(*result.report.reconstructed_image,
                                    result.victim_input);
    }
    {
      TRACE_SPAN("trial", "score/psnr");
      result.psnr =
          img::psnr_db(*result.report.reconstructed_image, result.victim_input);
    }
  }
  if (result.report.descriptor_image) {
    TRACE_SPAN("trial", "score/pixel_match");
    result.descriptor_pixel_match = img::pixel_match_fraction(
        *result.report.descriptor_image, result.victim_input);
  }
  return result;
}

}  // namespace msa::attack
