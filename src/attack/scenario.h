// End-to-end attack scenario driver: builds a board, profiles offline on
// an attacker-controlled twin board, runs the victim, executes the attack,
// and scores the outcome against ground truth. This is the single entry
// point the tests, benchmarks, examples, and the defense evaluator all
// share, so every number in EXPERIMENTS.md comes from the same code path.
#pragma once

#include <optional>
#include <string>

#include "attack/orchestrator.h"
#include "dbg/debugger.h"
#include "dbg/memory_firewall.h"
#include "img/image.h"
#include "os/system.h"
#include "vitis/runtime.h"

namespace msa::attack {

/// Pixel-match threshold above which a reconstruction counts as exact.
/// The paper's "full success" criterion is is_full_success() below; this
/// constant and helper are THE definition — the scenario result, the
/// campaign stats engine, and the defense evaluator all call it, so the
/// predicate cannot drift between layers.
inline constexpr double kFullSuccessPixelMatch = 0.999;

/// Full success: the model was identified AND the reconstructed input is
/// pixel-exact (match above kFullSuccessPixelMatch).
[[nodiscard]] constexpr bool is_full_success(bool model_identified,
                                             double pixel_match) noexcept {
  return model_identified && pixel_match > kFullSuccessPixelMatch;
}

struct ScenarioConfig {
  /// Victim-board configuration (the defense knobs live here).
  os::SystemConfig system = os::SystemConfig::zcu104();
  /// Debugger ACL on the victim board (kUnrestricted = the vulnerability).
  dbg::DebuggerAcl acl{};
  /// Physical-access firewall on the devmem path (kDisabled = PetaLinux).
  dbg::FirewallMode firewall = dbg::FirewallMode::kDisabled;

  std::string model_name = "resnet50_pt";
  std::uint32_t image_width = 96;
  std::uint32_t image_height = 96;
  std::uint64_t image_seed = 7;

  /// Corrupt the input to 0xFFFFFF like the paper's Fig. 4 experiment.
  bool corrupt_image = false;
  double corrupt_fraction = 1.0;

  /// true: the attacker misses the live window and falls back to a raw
  /// physical sweep of the allocator pool (tests the placement-
  /// randomization defense).
  bool post_mortem_scan = false;
  /// Bytes to sweep in post-mortem mode (0 = 4x the profiled heap size).
  std::uint64_t scan_bytes = 0;

  // ---- post-termination timeline -----------------------------------------
  /// Simulated seconds between the victim's exit and the scrape. The
  /// paper's attacker reacts immediately (0); defenses below act during
  /// this window.
  double attack_delay_s = 0.0;
  /// Background scrubber-daemon throughput (bytes of freed-dirty frames
  /// zeroed per simulated second); 0 disables the daemon.
  double scrubber_bytes_per_s = 0.0;
  /// If true, DRAM refresh is interrupted for the whole delay (board
  /// power-cycle between victim and attacker): cells decay.
  bool power_cycled = false;
  double retention_half_life_s = 2.0;

  os::Uid victim_uid = 1000;
  os::Uid attacker_uid = 1001;
};

struct ScenarioResult {
  AttackReport report;
  img::Image victim_input;            ///< ground-truth input
  std::size_t victim_top_class = 0;   ///< ground-truth inference output

  bool denied = false;                ///< a defense blocked an attack step
  std::string denial_reason;

  bool model_identified_correctly = false;
  double pixel_match = 0.0;           ///< profiled reconstruction vs truth
  double psnr = 0.0;
  /// Profile-free (DPU-descriptor) reconstruction quality vs truth.
  double descriptor_pixel_match = 0.0;

  [[nodiscard]] bool full_success() const noexcept {
    return is_full_success(model_identified_correctly, pixel_match);
  }
};

class ProfileCache;

/// Runs the complete scenario. Never throws on defense interference —
/// blocked steps surface as denied/denial_reason; infrastructure faults
/// (bugs) still throw. When `profiles` is non-null the offline phase is
/// served from (and populates) the shared cache instead of profiling a
/// fresh twin board per call; results are identical either way — the
/// campaign engine's byte-identity tests pin this down.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& config,
                                          ProfileCache* profiles);
[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& config);

/// The attacker's own board derived from `config`: identical hardware and
/// layout policy, but none of the victim's defensive policies apply (the
/// attacker configures their board to be fully observable).
[[nodiscard]] os::SystemConfig twin_system_config(const ScenarioConfig& config);

/// Profiles `model_name` on a fresh attacker-controlled board with the
/// given placement policy (the rest of the config is forced vulnerable —
/// the attacker owns that board). Shared by run_scenario and the examples.
[[nodiscard]] ModelProfile profile_on_twin_board(const ScenarioConfig& config);

/// The victim's ground-truth input for this config: the deterministic test
/// image, optionally corrupted per the corrupt knobs. Pure in
/// (image_width, image_height, image_seed, corrupt_image, corrupt_fraction),
/// which is what lets ProfileCache memoize it across trials.
[[nodiscard]] img::Image make_victim_input(const ScenarioConfig& config);

}  // namespace msa::attack
