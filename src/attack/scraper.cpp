#include "attack/scraper.h"

namespace msa::attack {

namespace {

/// Appends `len` bytes read from `pa` via the debugger's bulk devmem
/// path. Byte content, stats and firewall/ACL behaviour are identical to
/// the historical word-at-a-time loop (see devmem_block's contract);
/// devmem_reads advances by the same ceil(len/4).
void scrape_range_into(dbg::SystemDebugger& debugger, ScrapedDump& dump,
                       dram::PhysAddr pa, std::uint64_t len) {
  const std::size_t old = dump.bytes.size();
  dump.bytes.resize(old + static_cast<std::size_t>(len));
  debugger.devmem_block(pa, {dump.bytes.data() + old,
                             static_cast<std::size_t>(len)});
  dump.devmem_reads += (len + 3) / 4;
}

}  // namespace

ScrapedDump MemoryScraper::scrape(const ResolvedTarget& target) {
  ScrapedDump dump;
  dump.pid = target.pid;
  dump.va_start = target.heap_start;
  dump.bytes.reserve(static_cast<std::size_t>(target.heap_bytes()));

  for (std::size_t page = 0; page < target.page_pa.size(); ++page) {
    const std::uint64_t page_remaining =
        std::min<std::uint64_t>(mem::kPageSize,
                                target.heap_bytes() - page * mem::kPageSize);
    if (!target.page_pa[page]) {
      dump.bytes.insert(dump.bytes.end(),
                        static_cast<std::size_t>(page_remaining), 0);
      ++dump.pages_unmapped;
      continue;
    }
    scrape_range_into(debugger_, dump, *target.page_pa[page], page_remaining);
  }
  return dump;
}

ScrapedDump MemoryScraper::scrape_physical_range(dram::PhysAddr base,
                                                 std::uint64_t len) {
  ScrapedDump dump;
  dump.bytes.reserve(static_cast<std::size_t>(len));
  scrape_range_into(debugger_, dump, base, len);
  return dump;
}

}  // namespace msa::attack
