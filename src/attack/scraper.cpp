#include "attack/scraper.h"

namespace msa::attack {

ScrapedDump MemoryScraper::scrape(const ResolvedTarget& target) {
  ScrapedDump dump;
  dump.pid = target.pid;
  dump.va_start = target.heap_start;
  dump.bytes.reserve(static_cast<std::size_t>(target.heap_bytes()));

  for (std::size_t page = 0; page < target.page_pa.size(); ++page) {
    const std::uint64_t page_remaining =
        std::min<std::uint64_t>(mem::kPageSize,
                                target.heap_bytes() - page * mem::kPageSize);
    if (!target.page_pa[page]) {
      dump.bytes.insert(dump.bytes.end(),
                        static_cast<std::size_t>(page_remaining), 0);
      ++dump.pages_unmapped;
      continue;
    }
    const dram::PhysAddr pa = *target.page_pa[page];
    for (std::uint64_t off = 0; off < page_remaining; off += 4) {
      const std::uint32_t w = debugger_.devmem32(pa + off);
      ++dump.devmem_reads;
      const std::uint64_t take = std::min<std::uint64_t>(4, page_remaining - off);
      for (std::uint64_t b = 0; b < take; ++b) {
        dump.bytes.push_back(static_cast<std::uint8_t>((w >> (8 * b)) & 0xFF));
      }
    }
  }
  return dump;
}

ScrapedDump MemoryScraper::scrape_physical_range(dram::PhysAddr base,
                                                 std::uint64_t len) {
  ScrapedDump dump;
  dump.bytes.reserve(static_cast<std::size_t>(len));
  for (std::uint64_t off = 0; off < len; off += 4) {
    const std::uint32_t w = debugger_.devmem32(base + off);
    ++dump.devmem_reads;
    const std::uint64_t take = std::min<std::uint64_t>(4, len - off);
    for (std::uint64_t b = 0; b < take; ++b) {
      dump.bytes.push_back(static_cast<std::uint8_t>((w >> (8 * b)) & 0xFF));
    }
  }
  return dump;
}

}  // namespace msa::attack
