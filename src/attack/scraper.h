// Attack Step 3: data extraction from physical addresses.
//
// After the victim terminates, the adversary replays the saved physical
// page list with devmem, one aligned 32-bit word at a time (exactly the
// paper's automated loop over "devmem <pa>"), reassembling the heap image
// in VA order. Pages the pagemap reported absent read as zeros, keeping
// offsets stable. The simulator issues each page through the debugger's
// bulk devmem path, which preserves the word loop's accounting (one
// devmem_read per 32-bit word) and per-word firewall semantics while
// copying in blocks.
//
// A second mode, scrape_physical_range(), models the post-mortem variant:
// the attacker missed the live window and sweeps a raw physical region
// (e.g. the allocator pool) hunting for residue. This mode is what the
// physical-layout-randomization defense (paper §VI, point 3) degrades.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/address_resolver.h"

namespace msa::attack {

struct ScrapedDump {
  os::Pid pid = 0;                       ///< 0 for raw range scans
  mem::VirtAddr va_start = 0;
  std::vector<std::uint8_t> bytes;       ///< reassembled residue
  std::uint64_t devmem_reads = 0;        ///< 32-bit read operations issued
  std::uint64_t pages_unmapped = 0;      ///< pages zero-filled (no PA known)
};

class MemoryScraper {
 public:
  explicit MemoryScraper(dbg::SystemDebugger& debugger) : debugger_{debugger} {}

  /// Replays a resolved target's page list. `bytes` covers
  /// [heap_start, heap_end) in VA order.
  [[nodiscard]] ScrapedDump scrape(const ResolvedTarget& target);

  /// Raw physical sweep of [base, base+len) in 32-bit words.
  [[nodiscard]] ScrapedDump scrape_physical_range(dram::PhysAddr base,
                                                  std::uint64_t len);

 private:
  dbg::SystemDebugger& debugger_;
};

}  // namespace msa::attack
