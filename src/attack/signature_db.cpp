#include "attack/signature_db.h"

#include <algorithm>

#include "util/strings.h"
#include "vitis/model_zoo.h"

namespace msa::attack {

SignatureDb SignatureDb::for_zoo() {
  SignatureDb db;
  for (const auto& name : vitis::zoo_model_names()) {
    Signature sig;
    sig.model_name = name;
    sig.needles.push_back(name);  // "resnet50_pt" itself
    sig.needles.push_back("models/" + name + "/");
    if (name.size() > 3 && name.substr(name.size() - 3) == "_pt") {
      // The torchvision-qualified fragment the paper's Fig. 11 greps.
      sig.needles.push_back("torchvision/" + name.substr(0, name.size() - 3));
    }
    db.add(std::move(sig));
  }
  return db;
}

void SignatureDb::add(Signature sig) { signatures_.push_back(std::move(sig)); }

std::vector<SignatureMatch> SignatureDb::scan(
    std::span<const std::uint8_t> bytes) const {
  std::vector<SignatureMatch> matches;
  for (const auto& sig : signatures_) {
    SignatureMatch m;
    m.model_name = sig.model_name;
    for (const auto& needle : sig.needles) {
      const auto offsets = util::find_all(bytes, needle);
      if (!offsets.empty()) {
        ++m.distinct_needles;
        m.hits += offsets.size();
        m.offsets.insert(m.offsets.end(), offsets.begin(), offsets.end());
      }
    }
    if (m.hits > 0) {
      std::sort(m.offsets.begin(), m.offsets.end());
      matches.push_back(std::move(m));
    }
  }
  std::sort(matches.begin(), matches.end(),
            [](const SignatureMatch& a, const SignatureMatch& b) {
              if (a.distinct_needles != b.distinct_needles) {
                return a.distinct_needles > b.distinct_needles;
              }
              return a.hits > b.hits;
            });
  return matches;
}

std::optional<std::string> SignatureDb::identify(
    std::span<const std::uint8_t> bytes) const {
  const auto matches = scan(bytes);
  if (matches.empty()) return std::nullopt;
  return matches.front().model_name;
}

std::optional<DeepMatch> SignatureDb::identify_deep(
    std::span<const std::uint8_t> bytes) {
  const auto& magic = vitis::XModel::magic();
  const std::string_view magic_sv{reinterpret_cast<const char*>(magic.data()),
                                  magic.size() - 1};  // skip trailing NUL
  for (const std::size_t off : util::find_all(bytes, magic_sv)) {
    try {
      std::size_t consumed = 0;
      const vitis::XModel model =
          vitis::XModel::deserialize_at(bytes, off, &consumed);
      DeepMatch m;
      m.model_name = model.name();
      m.container_offset = off;
      m.param_bytes = model.param_bytes();
      return m;
    } catch (const std::invalid_argument&) {
      // Residue can contain stale or partially overwritten containers;
      // keep scanning.
    }
  }
  return std::nullopt;
}

}  // namespace msa::attack
