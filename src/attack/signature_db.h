// Attack Step 4.a: identifying the model from strings in the residue.
//
// The adversary has offline access to the same Vitis-AI model library the
// victim uses (paper §II, "Adversary's access"), so they know each model's
// characteristic strings: the model name itself, its install path, and
// framework-qualified names like "torchvision/resnet50". The SignatureDb
// holds one needle set per model; scanning counts needle hits in the
// scraped bytes and ranks candidates.
//
// Beyond strings, identify_deep() hunts for a serialized xmodel container
// in the residue and parses it outright — recovering not just the model's
// identity but its full weights (the "revealing sensitive information such
// as ... weights" claim).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "vitis/xmodel.h"

namespace msa::attack {

struct Signature {
  std::string model_name;
  std::vector<std::string> needles;
};

struct SignatureMatch {
  std::string model_name;
  std::size_t hits = 0;                 ///< total needle occurrences
  std::size_t distinct_needles = 0;     ///< how many different needles hit
  std::vector<std::size_t> offsets;     ///< all match offsets
};

struct DeepMatch {
  std::string model_name;
  std::size_t container_offset = 0;     ///< where the xmodel blob started
  std::size_t param_bytes = 0;          ///< recovered weight payload size
};

class SignatureDb {
 public:
  /// Builds the database for every bundled zoo model.
  [[nodiscard]] static SignatureDb for_zoo();

  void add(Signature sig);
  [[nodiscard]] std::size_t size() const noexcept { return signatures_.size(); }

  /// Scans the residue; returns matches sorted by (distinct_needles, hits)
  /// descending. Models with zero hits are omitted.
  [[nodiscard]] std::vector<SignatureMatch> scan(
      std::span<const std::uint8_t> bytes) const;

  /// Best string-based identification, or nullopt when nothing matches.
  [[nodiscard]] std::optional<std::string> identify(
      std::span<const std::uint8_t> bytes) const;

  /// Scans for serialized xmodel containers and fully parses the first
  /// valid one (weights and all). Returns nullopt when none parses.
  [[nodiscard]] static std::optional<DeepMatch> identify_deep(
      std::span<const std::uint8_t> bytes);

 private:
  std::vector<Signature> signatures_;
};

}  // namespace msa::attack
