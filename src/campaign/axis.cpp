#include "campaign/axis.h"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "campaign/table.h"
#include "defense/presets.h"
#include "vitis/model_zoo.h"

namespace msa::campaign {

const char* axis_kind_name(AxisKind kind) noexcept {
  switch (kind) {
    case AxisKind::kString: return "string";
    case AxisKind::kDouble: return "double";
    case AxisKind::kBool: return "bool";
    case AxisKind::kEnum: return "enum";
  }
  return "?";
}

AxisValue AxisValue::of_string(std::string s) {
  AxisValue v;
  v.kind = AxisKind::kString;
  v.str = std::move(s);
  return v;
}

AxisValue AxisValue::of_enum(std::string s) {
  AxisValue v;
  v.kind = AxisKind::kEnum;
  v.str = std::move(s);
  return v;
}

AxisValue AxisValue::of_number(double value) {
  AxisValue v;
  v.kind = AxisKind::kDouble;
  v.num = value;
  return v;
}

AxisValue AxisValue::of_bool(bool b) {
  AxisValue v;
  v.kind = AxisKind::kBool;
  v.flag = b;
  return v;
}

std::string AxisValue::label() const {
  switch (kind) {
    case AxisKind::kString:
    case AxisKind::kEnum:
      return str;
    case AxisKind::kDouble:
      return table::format_double(num);
    case AxisKind::kBool:
      return flag ? "1" : "0";
  }
  return "?";
}

bool AxisValue::operator<(const AxisValue& other) const {
  if (kind != other.kind) return kind < other.kind;
  switch (kind) {
    case AxisKind::kString:
    case AxisKind::kEnum:
      return str < other.str;
    case AxisKind::kDouble:
      return num < other.num;
    case AxisKind::kBool:
      return flag < other.flag;
  }
  return false;
}

const AxisValue* find_coord(const std::vector<AxisCoordinate>& coords,
                            std::string_view axis) {
  for (const AxisCoordinate& c : coords) {
    if (c.axis == axis) return &c.value;
  }
  return nullptr;
}

std::string coords_label(const std::vector<AxisCoordinate>& coords) {
  std::string out;
  for (const AxisCoordinate& c : coords) {
    if (!out.empty()) out += '/';
    out += c.axis + "=" + c.value.label();
  }
  return out;
}

namespace {

std::string finite_nonnegative(const AxisValue& v) {
  if (!std::isfinite(v.num)) return "value must be finite";
  if (v.num < 0.0) return "value must be non-negative";
  return "";
}

std::string finite_positive(const AxisValue& v) {
  if (!std::isfinite(v.num)) return "value must be finite";
  if (v.num <= 0.0) return "value must be positive";
  return "";
}

/// Integral doubles only — the encoding for integer-typed config knobs
/// (image dims, seeds, byte counts). 2^53 is the largest width at which
/// every integer is exactly representable.
std::string nonnegative_integer(const AxisValue& v, double max) {
  if (!std::isfinite(v.num)) return "value must be finite";
  if (v.num < 0.0) return "value must be non-negative";
  if (v.num != std::floor(v.num)) return "value must be an integer";
  if (v.num > max) return "value exceeds " + table::format_double(max);
  return "";
}

std::vector<AxisDescriptor> build_registry() {
  std::vector<AxisDescriptor> axes;

  // --- the legacy four: their names are the store/stats/diff
  // compatibility surface with v1 stores -------------------------------
  axes.push_back({
      "defense", AxisKind::kString, {},
      "defense preset applied to the victim board (defense::all_presets)",
      [](attack::ScenarioConfig& cfg, const AxisValue& v) {
        cfg = defense::preset(v.str).apply(cfg);
      },
      // A base config is by definition the un-hardened baseline; presets
      // are deltas applied on top of it.
      [](const attack::ScenarioConfig&) {
        return AxisValue::of_string("baseline");
      },
      [](const AxisValue& v) -> std::string {
        for (const defense::DefensePreset& p : defense::all_presets()) {
          if (p.name == v.str) return "";
        }
        return "unknown defense preset '" + v.str + "'";
      },
  });
  axes.push_back({
      "model", AxisKind::kString, {},
      "zoo model the victim runs (vitis::model_zoo)",
      [](attack::ScenarioConfig& cfg, const AxisValue& v) {
        cfg.model_name = v.str;
      },
      [](const attack::ScenarioConfig& cfg) {
        return AxisValue::of_string(cfg.model_name);
      },
      [](const AxisValue& v) -> std::string {
        return vitis::zoo_has_model(v.str)
                   ? ""
                   : "unknown zoo model '" + v.str + "'";
      },
  });
  axes.push_back({
      "delay_s", AxisKind::kDouble, {},
      "seconds between victim exit and the scrape",
      [](attack::ScenarioConfig& cfg, const AxisValue& v) {
        cfg.attack_delay_s = v.num;
      },
      [](const attack::ScenarioConfig& cfg) {
        return AxisValue::of_number(cfg.attack_delay_s);
      },
      finite_nonnegative,
  });
  axes.push_back({
      "scrubber_Bps", AxisKind::kDouble, {},
      "background scrubber-daemon throughput, bytes/second (0 = off)",
      [](attack::ScenarioConfig& cfg, const AxisValue& v) {
        cfg.scrubber_bytes_per_s = v.num;
      },
      [](const attack::ScenarioConfig& cfg) {
        return AxisValue::of_number(cfg.scrubber_bytes_per_s);
      },
      finite_nonnegative,
  });

  // --- post-termination timeline knobs --------------------------------
  axes.push_back({
      "power_cycled", AxisKind::kBool, {},
      "interrupt DRAM refresh for the whole delay (board power cycle)",
      [](attack::ScenarioConfig& cfg, const AxisValue& v) {
        cfg.power_cycled = v.flag;
      },
      [](const attack::ScenarioConfig& cfg) {
        return AxisValue::of_bool(cfg.power_cycled);
      },
      nullptr,
  });
  axes.push_back({
      "retention_half_life_s", AxisKind::kDouble, {},
      "cell-decay half-life under power loss, seconds",
      [](attack::ScenarioConfig& cfg, const AxisValue& v) {
        cfg.retention_half_life_s = v.num;
      },
      [](const attack::ScenarioConfig& cfg) {
        return AxisValue::of_number(cfg.retention_half_life_s);
      },
      finite_positive,
  });

  // --- attacker strategy ----------------------------------------------
  axes.push_back({
      "post_mortem_scan", AxisKind::kBool, {},
      "miss the live window; raw physical sweep of the allocator pool",
      [](attack::ScenarioConfig& cfg, const AxisValue& v) {
        cfg.post_mortem_scan = v.flag;
      },
      [](const attack::ScenarioConfig& cfg) {
        return AxisValue::of_bool(cfg.post_mortem_scan);
      },
      nullptr,
  });
  axes.push_back({
      "scan_bytes", AxisKind::kDouble, {},
      "bytes swept in post-mortem mode (0 = 4x profiled heap)",
      [](attack::ScenarioConfig& cfg, const AxisValue& v) {
        cfg.scan_bytes = static_cast<std::uint64_t>(v.num);
      },
      [](const attack::ScenarioConfig& cfg) {
        return AxisValue::of_number(static_cast<double>(cfg.scan_bytes));
      },
      [](const AxisValue& v) { return nonnegative_integer(v, 0x1p53); },
  });

  // --- input corruption (the paper's Fig. 4 family) -------------------
  axes.push_back({
      "corrupt_image", AxisKind::kBool, {},
      "corrupt the victim input to the 0xFFFFFF sentinel",
      [](attack::ScenarioConfig& cfg, const AxisValue& v) {
        cfg.corrupt_image = v.flag;
      },
      [](const attack::ScenarioConfig& cfg) {
        return AxisValue::of_bool(cfg.corrupt_image);
      },
      nullptr,
  });
  axes.push_back({
      "corrupt_fraction", AxisKind::kDouble, {},
      "fraction of the input corrupted, [0,1]; sweeping it implies "
      "corrupt_image",
      // A fraction sweep without the flag would score identical cells;
      // sweeping the fraction therefore turns corruption on.
      [](attack::ScenarioConfig& cfg, const AxisValue& v) {
        cfg.corrupt_image = true;
        cfg.corrupt_fraction = v.num;
      },
      [](const attack::ScenarioConfig& cfg) {
        return AxisValue::of_number(cfg.corrupt_fraction);
      },
      [](const AxisValue& v) -> std::string {
        if (!std::isfinite(v.num)) return "value must be finite";
        if (v.num < 0.0 || v.num > 1.0) return "value must be in [0,1]";
        return "";
      },
  });

  // --- platform defenses beyond the preset axis -----------------------
  axes.push_back({
      "firewall", AxisKind::kEnum,
      {"disabled", "live_owner_only", "owner_or_residue"},
      "physical-access firewall mode on the devmem path",
      [](attack::ScenarioConfig& cfg, const AxisValue& v) {
        if (v.str == "disabled") cfg.firewall = dbg::FirewallMode::kDisabled;
        else if (v.str == "live_owner_only")
          cfg.firewall = dbg::FirewallMode::kLiveOwnerOnly;
        else cfg.firewall = dbg::FirewallMode::kOwnerOrResidue;
      },
      [](const attack::ScenarioConfig& cfg) {
        switch (cfg.firewall) {
          case dbg::FirewallMode::kDisabled:
            return AxisValue::of_enum("disabled");
          case dbg::FirewallMode::kLiveOwnerOnly:
            return AxisValue::of_enum("live_owner_only");
          case dbg::FirewallMode::kOwnerOrResidue:
            return AxisValue::of_enum("owner_or_residue");
        }
        return AxisValue::of_enum("disabled");
      },
      nullptr,
  });
  axes.push_back({
      "debugger_acl", AxisKind::kEnum,
      {"unrestricted", "owner_only", "disabled"},
      "debugger ACL mode on the victim board",
      [](attack::ScenarioConfig& cfg, const AxisValue& v) {
        if (v.str == "unrestricted") cfg.acl.mode = dbg::AclMode::kUnrestricted;
        else if (v.str == "owner_only") cfg.acl.mode = dbg::AclMode::kOwnerOnly;
        else cfg.acl.mode = dbg::AclMode::kDisabled;
      },
      [](const attack::ScenarioConfig& cfg) {
        switch (cfg.acl.mode) {
          case dbg::AclMode::kUnrestricted:
            return AxisValue::of_enum("unrestricted");
          case dbg::AclMode::kOwnerOnly:
            return AxisValue::of_enum("owner_only");
          case dbg::AclMode::kDisabled:
            return AxisValue::of_enum("disabled");
        }
        return AxisValue::of_enum("unrestricted");
      },
      nullptr,
  });

  // --- victim input geometry ------------------------------------------
  axes.push_back({
      "image_width", AxisKind::kDouble, {},
      "victim input width, pixels",
      [](attack::ScenarioConfig& cfg, const AxisValue& v) {
        cfg.image_width = static_cast<std::uint32_t>(v.num);
      },
      [](const attack::ScenarioConfig& cfg) {
        return AxisValue::of_number(static_cast<double>(cfg.image_width));
      },
      [](const AxisValue& v) -> std::string {
        const std::string e = nonnegative_integer(v, 4096.0);
        if (!e.empty()) return e;
        return v.num < 1.0 ? "value must be positive" : "";
      },
  });
  axes.push_back({
      "image_height", AxisKind::kDouble, {},
      "victim input height, pixels",
      [](attack::ScenarioConfig& cfg, const AxisValue& v) {
        cfg.image_height = static_cast<std::uint32_t>(v.num);
      },
      [](const attack::ScenarioConfig& cfg) {
        return AxisValue::of_number(static_cast<double>(cfg.image_height));
      },
      [](const AxisValue& v) -> std::string {
        const std::string e = nonnegative_integer(v, 4096.0);
        if (!e.empty()) return e;
        return v.num < 1.0 ? "value must be positive" : "";
      },
  });
  axes.push_back({
      "image_seed", AxisKind::kDouble, {},
      "victim input generator seed",
      [](attack::ScenarioConfig& cfg, const AxisValue& v) {
        cfg.image_seed = static_cast<std::uint64_t>(v.num);
      },
      [](const attack::ScenarioConfig& cfg) {
        return AxisValue::of_number(static_cast<double>(cfg.image_seed));
      },
      [](const AxisValue& v) { return nonnegative_integer(v, 0x1p53); },
  });

  return axes;
}

}  // namespace

const std::vector<AxisDescriptor>& axis_registry() {
  static const std::vector<AxisDescriptor> registry = build_registry();
  return registry;
}

const AxisDescriptor* find_axis(std::string_view name) {
  for (const AxisDescriptor& axis : axis_registry()) {
    if (axis.name == name) return &axis;
  }
  return nullptr;
}

const AxisDescriptor& axis_descriptor(const std::string& name) {
  if (const AxisDescriptor* axis = find_axis(name)) return *axis;
  std::string known;
  for (const AxisDescriptor& axis : axis_registry()) {
    if (!known.empty()) known += ", ";
    known += axis.name;
  }
  throw std::invalid_argument("campaign: unknown axis '" + name +
                              "' (known axes: " + known + ")");
}

std::string check_axis_value(const AxisDescriptor& axis,
                             const AxisValue& value) {
  if (value.kind != axis.kind) {
    return std::string("axis '") + axis.name + "' takes " +
           axis_kind_name(axis.kind) + " values, got " +
           axis_kind_name(value.kind);
  }
  if (axis.kind == AxisKind::kEnum) {
    for (const std::string& label : axis.enum_labels) {
      if (label == value.str) return "";
    }
    std::string allowed;
    for (const std::string& label : axis.enum_labels) {
      if (!allowed.empty()) allowed += "|";
      allowed += label;
    }
    return "axis '" + axis.name + "' takes one of " + allowed + ", got '" +
           value.str + "'";
  }
  if (axis.validate) {
    const std::string err = axis.validate(value);
    if (!err.empty()) {
      return "axis '" + axis.name + "': " + err + " (got '" + value.label() +
             "')";
    }
  }
  return "";
}

AxisValue parse_axis_value(const AxisDescriptor& axis,
                           const std::string& text) {
  AxisValue value;
  switch (axis.kind) {
    case AxisKind::kString:
      value = AxisValue::of_string(text);
      break;
    case AxisKind::kEnum:
      value = AxisValue::of_enum(text);
      break;
    case AxisKind::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      if (text.empty() || end != text.c_str() + text.size()) {
        throw std::invalid_argument("campaign: axis '" + axis.name +
                                    "': not a number: '" + text + "'");
      }
      value = AxisValue::of_number(v);
      break;
    }
    case AxisKind::kBool: {
      if (text == "0" || text == "false") value = AxisValue::of_bool(false);
      else if (text == "1" || text == "true") value = AxisValue::of_bool(true);
      else {
        throw std::invalid_argument("campaign: axis '" + axis.name +
                                    "': not a bool (0/1/true/false): '" +
                                    text + "'");
      }
      break;
    }
  }
  const std::string err = check_axis_value(axis, value);
  if (!err.empty()) throw std::invalid_argument("campaign: " + err);
  return value;
}

const std::vector<std::string>& legacy_axis_names() {
  static const std::vector<std::string> names{"defense", "model", "delay_s",
                                             "scrubber_Bps"};
  return names;
}

}  // namespace msa::campaign
