// Typed axis schema for campaign sweeps. An axis is one sweepable knob of
// attack::ScenarioConfig — its name, value type, and the applier that
// folds a value into a config. The registry below names every knob a
// campaign can sweep, so opening a new scenario family (power-cycle decay
// curves, post-mortem scans, corruption fractions) is a registry entry
// instead of a five-layer surgery across grid, store, stats, diff, and
// the CLI.
//
// Everything downstream consumes this schema: GridBuilder enumerates the
// cartesian product over an ordered axis list, CampaignCell/CellStats
// carry ordered (axis, value) coordinates instead of hard-coded fields,
// the store manifest serializes the schema, stats computes per-(axis,
// value) marginals over whatever axes a sweep used, and diff aligns
// cells across the axes two sweeps share. The pairing discipline is
// structural throughout: cells join on axis VALUES, never on enumeration
// order.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "attack/scenario.h"

namespace msa::campaign {

/// Value type of one axis. The kind is part of a value's identity: a
/// string "0" and a number 0 never compare equal, so a store written
/// with mismatched kinds can never silently pair with a correct one.
enum class AxisKind : std::uint8_t {
  kString = 0,  ///< free-form label validated per axis (preset, model)
  kDouble = 1,  ///< finite double (axis validators restrict range)
  kBool = 2,    ///< flag knob; canonical labels "0" / "1"
  kEnum = 3,    ///< one of a fixed label set (firewall mode, ACL mode)
};

/// "string" | "double" | "bool" | "enum" — for tables and messages.
[[nodiscard]] const char* axis_kind_name(AxisKind kind) noexcept;

/// One typed axis value. Exactly one payload member is active per kind
/// (kString/kEnum -> str, kDouble -> num, kBool -> flag); the factory
/// functions keep the inactive members zeroed so defaulted equality is
/// exact.
struct AxisValue {
  AxisKind kind = AxisKind::kString;
  std::string str;
  double num = 0.0;
  bool flag = false;

  [[nodiscard]] static AxisValue of_string(std::string s);
  [[nodiscard]] static AxisValue of_enum(std::string s);
  [[nodiscard]] static AxisValue of_number(double v);
  [[nodiscard]] static AxisValue of_bool(bool b);

  /// Canonical text form: the string/enum label, format_double for
  /// numbers (round-trip exact), "0"/"1" for bools. This is the label
  /// marginals and CLI parsing round-trip through.
  [[nodiscard]] std::string label() const;

  friend bool operator==(const AxisValue&, const AxisValue&) = default;
  /// Total order: kind first, then the active payload. Doubles must be
  /// finite (grid validation rejects NaN before values reach any map).
  [[nodiscard]] bool operator<(const AxisValue& other) const;
};

/// One (axis, value) binding on a cell — the unit of the structural
/// coordinate that replaces the old defense/model/delay/scrubber fields.
struct AxisCoordinate {
  std::string axis;
  AxisValue value;

  friend bool operator==(const AxisCoordinate&, const AxisCoordinate&) =
      default;
};

/// The value of `axis` in an ordered coordinate list, nullptr when the
/// list does not carry that axis.
[[nodiscard]] const AxisValue* find_coord(
    const std::vector<AxisCoordinate>& coords, std::string_view axis);

/// "a=x/b=y/..." over the coordinates — error messages and text rows.
[[nodiscard]] std::string coords_label(
    const std::vector<AxisCoordinate>& coords);

/// Serializable schema entry: one swept axis and its ordered value list.
/// This is what the store manifest pins (and what GridBuilder enumerates)
/// — plain data, no behavior, so persist can round-trip it.
struct AxisSpec {
  std::string name;
  AxisKind kind = AxisKind::kString;
  std::vector<AxisValue> values;

  friend bool operator==(const AxisSpec&, const AxisSpec&) = default;
};

/// Behavior of one registered axis: how to validate a value and how to
/// fold it into a scenario config.
struct AxisDescriptor {
  std::string name;
  AxisKind kind = AxisKind::kString;
  /// kEnum only: the allowed labels, in canonical order.
  std::vector<std::string> enum_labels;
  /// One-line description for `campaign_sweep axes` and the README table.
  std::string description;
  /// Folds a (validated) value into the config. For the defense axis
  /// this applies the whole preset; for plain knobs it sets one field.
  std::function<void(attack::ScenarioConfig&, const AxisValue&)> apply;
  /// Reads the axis's current value out of a config — the base value
  /// GridBuilder::fingerprint() folds in for every axis, swept or not,
  /// so two experiments differing only in an unswept knob cannot share
  /// a store path.
  std::function<AxisValue(const attack::ScenarioConfig&)> read;
  /// Axis-specific validation beyond the kind check; returns "" when the
  /// value is acceptable, else a human-readable reason.
  std::function<std::string(const AxisValue&)> validate;
};

/// Every sweepable ScenarioConfig knob, in a fixed registry order (the
/// legacy four first — their names are the store/stats compatibility
/// surface — then the scenario-family knobs). The registry is built once
/// and immutable.
[[nodiscard]] const std::vector<AxisDescriptor>& axis_registry();

/// Registry lookup by name; nullptr when unknown.
[[nodiscard]] const AxisDescriptor* find_axis(std::string_view name);

/// Registry lookup that throws std::invalid_argument (with the known
/// axis names in the message) for an unknown name.
[[nodiscard]] const AxisDescriptor& axis_descriptor(const std::string& name);

/// Parses one CLI token into a typed value for `axis` (strtod for
/// doubles, 0/1/true/false for bools, the label set for enums) and runs
/// the axis validator. Throws std::invalid_argument with the axis name
/// and offending token on any failure.
[[nodiscard]] AxisValue parse_axis_value(const AxisDescriptor& axis,
                                         const std::string& text);

/// Kind check plus the axis validator; "" when ok, else the reason.
[[nodiscard]] std::string check_axis_value(const AxisDescriptor& axis,
                                           const AxisValue& value);

/// Names of the four legacy axes (defense, model, delay_s, scrubber_Bps)
/// in their historical grid order — the schema synthesized for a v1
/// store and the default axes of a fresh GridBuilder.
[[nodiscard]] const std::vector<std::string>& legacy_axis_names();

}  // namespace msa::campaign
