#include "campaign/cell_source.h"

namespace msa::campaign {

CellSource::~CellSource() = default;

std::optional<ClaimedCell> StaticCellSource::acquire() {
  const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
  if (i >= cells_->size()) return std::nullopt;
  return ClaimedCell{(*cells_)[i], i};
}

bool StaticCellSource::commit(const ClaimedCell& claim, const CellStats& stats,
                              const std::function<void()>& persist) {
  (void)claim;
  (void)stats;
  if (persist) persist();
  return true;
}

void StaticCellSource::abort() {
  // Jump the cursor past the end; an acquire that already fetched its
  // index may still hand out one cell, which the runner tolerates (the
  // failed batch's results are discarded anyway).
  next_.store(cells_->size(), std::memory_order_relaxed);
}

}  // namespace msa::campaign
