// Cell dispatch for campaign sweeps, split out of CampaignRunner so the
// "where does the next cell come from" policy is pluggable. The runner's
// pool threads pull work through this interface; the two implementations
// are the in-process static queue below (the old vector/shard dispatch)
// and persist::LeaseScheduler, which leases cells dynamically from a
// shared store directory so N independent processes can work-steal one
// grid (see persist/lease_log.h).
//
// Threading contract: every method may be called concurrently from many
// pool workers; implementations do their own locking. acquire() may
// block (the lease scheduler waits on stragglers); abort() must unblock
// it. Slots handed out by acquire() are dense (0, 1, 2, ... in claim
// order) so the runner can collect results into a flat vector.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "campaign/grid.h"
#include "campaign/report.h"

namespace msa::campaign {

/// One unit of claimed work: the cell plus the dense result slot the
/// runner stores its stats under.
struct ClaimedCell {
  CampaignCell cell;
  std::size_t slot = 0;
};

/// Hands cells to CampaignRunner workers and witnesses their completion.
class CellSource {
 public:
  virtual ~CellSource();

  /// Upper bound on the cells this source may hand out over its
  /// lifetime — the progress-hook total. (For a lease scheduler this is
  /// the cells not yet complete when the source was opened; other
  /// workers finishing cells can make the real number smaller.)
  [[nodiscard]] virtual std::size_t planned() const = 0;

  /// Claims the next cell, or nullopt when the source is drained for
  /// this worker. Once any call returns nullopt the source stays
  /// drained: pool workers treat it as the batch-exit signal.
  [[nodiscard]] virtual std::optional<ClaimedCell> acquire() = 0;

  /// Offers a finished cell's aggregate. Returns true when this worker
  /// owns the completion; `persist` is invoked between the ownership
  /// decision and any completion record the source writes, so durable
  /// stats always precede the "done" marker (a crash in between costs a
  /// re-run, never a dangling completion). Returns false when the cell
  /// was lost to another worker (lease reclaimed and re-completed
  /// elsewhere) — the caller must NOT persist the stats; the stale
  /// completion is ignored.
  [[nodiscard]] virtual bool commit(const ClaimedCell& claim,
                                    const CellStats& stats,
                                    const std::function<void()>& persist) = 0;

  /// Liveness beacon from the trial loop: called after every finished
  /// trial of a claimed cell so long-running cells keep their lease
  /// fresh. Default: nothing to renew.
  virtual void renew(const ClaimedCell& claim) { (void)claim; }

  /// Drains the source early: pending and future acquire() calls return
  /// nullopt as soon as possible. Called by the runner when a worker
  /// hits an infrastructure error, so the surviving workers stop
  /// claiming instead of finishing the sweep around a poisoned batch.
  virtual void abort() = 0;
};

/// The static dispatch the runner always had: a fixed vector of cells
/// handed out in order, slot == position. Non-owning — the vector must
/// outlive the source (the runner keeps it alive for the batch).
class StaticCellSource final : public CellSource {
 public:
  explicit StaticCellSource(const std::vector<CampaignCell>& cells)
      : cells_{&cells} {}

  [[nodiscard]] std::size_t planned() const override { return cells_->size(); }
  [[nodiscard]] std::optional<ClaimedCell> acquire() override;
  [[nodiscard]] bool commit(const ClaimedCell& claim, const CellStats& stats,
                            const std::function<void()>& persist) override;
  void abort() override;

 private:
  const std::vector<CampaignCell>* cells_;
  std::atomic<std::size_t> next_{0};
};

}  // namespace msa::campaign
