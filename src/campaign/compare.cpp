#include "campaign/compare.h"

#include <cmath>
#include <map>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "campaign/table.h"

namespace msa::campaign {

namespace {

using table::Align;
using table::Cell;
using table::Column;
using table::Table;
using table::bool_cell;
using table::count_cell;
using table::empty_cell;
using table::num_cell;
using table::str_cell;

double rate(std::size_t numerator, std::size_t denominator) {
  return denominator == 0 ? 0.0
                          : static_cast<double>(numerator) /
                                static_cast<double>(denominator);
}

AxisKey key_of(const CellDistribution& c) {
  return {c.defense, c.model, c.attack_delay_s, c.scrubber_bytes_per_s};
}

/// Cells keyed by axis values; a duplicate key makes the cross-sweep
/// pairing ambiguous and is rejected outright. Non-finite axis values
/// are rejected too — the CLI no longer produces them, but a store
/// written by an older binary can still carry them, and a NaN key would
/// break the map's strict weak ordering.
std::map<AxisKey, const CellDistribution*> index_cells(const StatsReport& r,
                                                       const char* side) {
  std::map<AxisKey, const CellDistribution*> out;
  for (const CellDistribution& c : r.cells) {
    if (!std::isfinite(c.attack_delay_s) ||
        !std::isfinite(c.scrubber_bytes_per_s)) {
      throw std::runtime_error(
          std::string("diff: sweep ") + side + " cell " +
          std::to_string(c.index) +
          " has a non-finite axis value (store written by a pre-validation "
          "tool?) — axis alignment needs finite coordinates");
    }
    const auto [it, inserted] = out.emplace(key_of(c), &c);
    if (!inserted) {
      throw std::runtime_error(
          std::string("diff: sweep ") + side +
          " has two cells with the same axis values (" + key_of(c).label() +
          ") — alignment by axis is ambiguous");
    }
  }
  return out;
}

std::map<std::pair<std::string, std::string>, const AxisMarginal*>
index_marginals(const StatsReport& r, const char* side) {
  std::map<std::pair<std::string, std::string>, const AxisMarginal*> out;
  for (const AxisMarginal& m : r.marginals) {
    const auto [it, inserted] = out.emplace(std::pair{m.axis, m.value}, &m);
    if (!inserted) {
      throw std::runtime_error(std::string("diff: sweep ") + side +
                               " repeats marginal " + m.axis + "=" + m.value);
    }
  }
  return out;
}

Cell delta_ci_cell(const DeltaInterval& ci) {
  return table::interval_cell(ci.low, ci.high);
}

}  // namespace

bool AxisKey::operator<(const AxisKey& other) const {
  return std::tie(defense, model, attack_delay_s, scrubber_bytes_per_s) <
         std::tie(other.defense, other.model, other.attack_delay_s,
                  other.scrubber_bytes_per_s);
}

std::string AxisKey::label() const {
  return defense + "/" + model +
         "/delay=" + table::format_double(attack_delay_s) +
         "/scrubber=" + table::format_double(scrubber_bytes_per_s);
}

DeltaInterval newcombe_interval(std::size_t successes_a, std::size_t trials_a,
                                std::size_t successes_b, std::size_t trials_b,
                                double z) {
  const double pa = rate(successes_a, trials_a);
  const double pb = rate(successes_b, trials_b);
  const WilsonInterval wa = wilson_interval(successes_a, trials_a, z);
  const WilsonInterval wb = wilson_interval(successes_b, trials_b, z);
  const double delta = pb - pa;
  // Newcombe (1998) method 10 / MOVER: compose the two Wilson intervals
  // into an interval for the difference.
  const double low = delta - std::sqrt((pb - wb.low) * (pb - wb.low) +
                                       (wa.high - pa) * (wa.high - pa));
  const double high = delta + std::sqrt((wb.high - pb) * (wb.high - pb) +
                                        (pa - wa.low) * (pa - wa.low));
  return {std::max(-1.0, low), std::min(1.0, high)};
}

DiffReport diff_sweeps(const StatsReport& a, const StatsReport& b) {
  const auto cells_a = index_cells(a, "A");
  const auto cells_b = index_cells(b, "B");
  const auto marginals_a = index_marginals(a, "A");
  const auto marginals_b = index_marginals(b, "B");

  DiffReport out;
  for (const auto& [key, ca] : cells_a) {
    const auto it = cells_b.find(key);
    if (it == cells_b.end()) {
      out.only_in_a.push_back(*ca);
      continue;
    }
    const CellDistribution& cb = *it->second;

    CellDelta d;
    d.key = key;
    d.index_a = ca->index;
    d.index_b = cb.index;
    d.trials_a = ca->trials;
    d.trials_b = cb.trials;
    d.successes_a = ca->successes;
    d.successes_b = cb.successes;
    d.denials_a = ca->denials;
    d.denials_b = cb.denials;
    d.success_rate_a = ca->success_rate;
    d.success_rate_b = cb.success_rate;
    d.success_delta = cb.success_rate - ca->success_rate;
    d.success_delta_ci = newcombe_interval(ca->successes, ca->trials,
                                           cb.successes, cb.trials);
    d.significant = d.success_delta_ci.excludes_zero();
    d.denial_rate_a = rate(ca->denials, ca->trials);
    d.denial_rate_b = rate(cb.denials, cb.trials);
    d.denial_delta = d.denial_rate_b - d.denial_rate_a;
    d.p50_shift = cb.p50_psnr - ca->p50_psnr;
    d.p90_shift = cb.p90_psnr - ca->p90_psnr;
    d.p99_shift = cb.p99_psnr - ca->p99_psnr;
    if (d.significant) ++out.significant_cells;
    out.cells.push_back(std::move(d));
  }
  for (const auto& [key, cb] : cells_b) {
    if (!cells_a.contains(key)) out.only_in_b.push_back(*cb);
  }

  // Marginals in side A's order (axis blocks fixed, values by side-A
  // first appearance); side-B-only values have no delta to report and
  // surface through the unmatched cell lists instead.
  (void)marginals_a;  // built for its duplicate validation
  for (const AxisMarginal& ma : a.marginals) {
    const auto it = marginals_b.find(std::pair{ma.axis, ma.value});
    if (it == marginals_b.end()) continue;
    const AxisMarginal& mb = *it->second;

    AxisDelta d;
    d.axis = ma.axis;
    d.value = ma.value;
    d.trials_a = ma.trials;
    d.trials_b = mb.trials;
    d.successes_a = ma.successes;
    d.successes_b = mb.successes;
    d.denials_a = ma.denials;
    d.denials_b = mb.denials;
    d.success_rate_a = ma.success_rate;
    d.success_rate_b = mb.success_rate;
    d.success_delta = mb.success_rate - ma.success_rate;
    d.success_delta_ci =
        newcombe_interval(ma.successes, ma.trials, mb.successes, mb.trials);
    d.significant = d.success_delta_ci.excludes_zero();
    d.denial_delta = rate(mb.denials, mb.trials) - rate(ma.denials, ma.trials);
    d.mean_psnr_shift = mb.mean_psnr - ma.mean_psnr;
    out.marginals.push_back(std::move(d));
  }

  return out;
}

namespace {

Table unmatched_table(const std::vector<CellDistribution>& cells) {
  Table t{{{"index", Align::kLeft},
           {"defense", Align::kLeft},
           {"model", Align::kLeft},
           {"delay_s", Align::kRight},
           {"scrub_Bps", Align::kRight},
           {"trials", Align::kRight},
           {"success", Align::kRight},
           {"denials", Align::kRight}}};
  for (const CellDistribution& c : cells) {
    t.add_row({count_cell(c.index), str_cell(c.defense), str_cell(c.model),
               num_cell(c.attack_delay_s), num_cell(c.scrubber_bytes_per_s),
               count_cell(c.trials), num_cell(c.success_rate, 3),
               count_cell(c.denials)});
  }
  return t;
}

}  // namespace

std::string DiffReport::to_text() const {
  std::string out;
  out += "== cross-sweep diff (B minus A): " + std::to_string(cells.size()) +
         " matched cell(s), " + std::to_string(significant_cells) +
         " significant, " + std::to_string(only_in_a.size()) + " A-only, " +
         std::to_string(only_in_b.size()) + " B-only ==\n";
  Table cell_table{{{"defense", Align::kLeft},
                    {"model", Align::kLeft},
                    {"delay_s", Align::kRight},
                    {"scrub_Bps", Align::kRight},
                    {"trials_a", Align::kRight},
                    {"trials_b", Align::kRight},
                    {"succ_a", Align::kRight},
                    {"succ_b", Align::kRight},
                    {"delta", Align::kRight},
                    {"delta_ci95", Align::kRight},
                    {"sig", Align::kLeft},
                    {"den_delta", Align::kRight},
                    {"p50_shift", Align::kRight},
                    {"p90_shift", Align::kRight},
                    {"p99_shift", Align::kRight}}};
  for (const CellDelta& d : cells) {
    cell_table.add_row(
        {str_cell(d.key.defense), str_cell(d.key.model),
         num_cell(d.key.attack_delay_s),
         num_cell(d.key.scrubber_bytes_per_s), count_cell(d.trials_a),
         count_cell(d.trials_b), num_cell(d.success_rate_a, 3),
         num_cell(d.success_rate_b, 3), num_cell(d.success_delta, 3),
         delta_ci_cell(d.success_delta_ci), bool_cell(d.significant),
         num_cell(d.denial_delta, 3), num_cell(d.p50_shift, 2),
         num_cell(d.p90_shift, 2), num_cell(d.p99_shift, 2)});
  }
  out += cell_table.to_text();

  out += "\n== unmatched cells (A only: " + std::to_string(only_in_a.size()) +
         ") ==\n";
  out += unmatched_table(only_in_a).to_text();
  out += "\n== unmatched cells (B only: " + std::to_string(only_in_b.size()) +
         ") ==\n";
  out += unmatched_table(only_in_b).to_text();

  out += "\n== per-axis marginal deltas ==\n";
  Table marginal_table{{{"axis", Align::kLeft},
                        {"value", Align::kLeft},
                        {"trials_a", Align::kRight},
                        {"trials_b", Align::kRight},
                        {"succ_a", Align::kRight},
                        {"succ_b", Align::kRight},
                        {"delta", Align::kRight},
                        {"delta_ci95", Align::kRight},
                        {"sig", Align::kLeft},
                        {"den_delta", Align::kRight},
                        {"psnr_shift", Align::kRight}}};
  for (const AxisDelta& d : marginals) {
    marginal_table.add_row(
        {str_cell(d.axis), str_cell(d.value), count_cell(d.trials_a),
         count_cell(d.trials_b), num_cell(d.success_rate_a, 3),
         num_cell(d.success_rate_b, 3), num_cell(d.success_delta, 3),
         delta_ci_cell(d.success_delta_ci), bool_cell(d.significant),
         num_cell(d.denial_delta, 3), num_cell(d.mean_psnr_shift, 2)});
  }
  out += marginal_table.to_text();
  return out;
}

std::string DiffReport::to_csv() const {
  Table t{{{"section"},        {"defense"},        {"model"},
           {"delay_s"},        {"scrubber_Bps"},   {"axis"},
           {"value"},          {"index_a"},        {"index_b"},
           {"trials_a"},       {"trials_b"},       {"successes_a"},
           {"successes_b"},    {"denials_a"},      {"denials_b"},
           {"success_rate_a"}, {"success_rate_b"}, {"success_delta"},
           {"delta_ci95_low"}, {"delta_ci95_high"}, {"significant"},
           {"denial_rate_a"},  {"denial_rate_b"},  {"denial_delta"},
           {"p50_shift"},      {"p90_shift"},      {"p99_shift"},
           {"mean_psnr_shift"}}};
  for (const CellDelta& d : cells) {
    t.add_row({str_cell("cell"), str_cell(d.key.defense),
               str_cell(d.key.model), num_cell(d.key.attack_delay_s),
               num_cell(d.key.scrubber_bytes_per_s), empty_cell(),
               empty_cell(), count_cell(d.index_a), count_cell(d.index_b),
               count_cell(d.trials_a), count_cell(d.trials_b),
               count_cell(d.successes_a), count_cell(d.successes_b),
               count_cell(d.denials_a), count_cell(d.denials_b),
               num_cell(d.success_rate_a), num_cell(d.success_rate_b),
               num_cell(d.success_delta), num_cell(d.success_delta_ci.low),
               num_cell(d.success_delta_ci.high), bool_cell(d.significant),
               num_cell(d.denial_rate_a), num_cell(d.denial_rate_b),
               num_cell(d.denial_delta), num_cell(d.p50_shift),
               num_cell(d.p90_shift), num_cell(d.p99_shift), empty_cell()});
  }
  auto add_unmatched = [&](const char* section,
                           const std::vector<CellDistribution>& side,
                           bool is_a) {
    for (const CellDistribution& c : side) {
      std::vector<Cell> row{str_cell(section), str_cell(c.defense),
                            str_cell(c.model), num_cell(c.attack_delay_s),
                            num_cell(c.scrubber_bytes_per_s), empty_cell(),
                            empty_cell()};
      // index / trials / successes / denials / success_rate land in the
      // matching side's columns; the partner side stays empty.
      auto pair = [&](Cell value) {
        row.push_back(is_a ? value : empty_cell());
        row.push_back(is_a ? empty_cell() : value);
      };
      pair(count_cell(c.index));
      pair(count_cell(c.trials));
      pair(count_cell(c.successes));
      pair(count_cell(c.denials));
      pair(num_cell(c.success_rate));
      // No delta columns for a one-sided cell.
      for (int i = 0; i < 4; ++i) row.push_back(empty_cell());
      pair(num_cell(rate(c.denials, c.trials)));
      for (int i = 0; i < 5; ++i) row.push_back(empty_cell());
      t.add_row(std::move(row));
    }
  };
  add_unmatched("only_in_a", only_in_a, true);
  add_unmatched("only_in_b", only_in_b, false);
  for (const AxisDelta& d : marginals) {
    t.add_row({str_cell("axis"), empty_cell(), empty_cell(), empty_cell(),
               empty_cell(), str_cell(d.axis), str_cell(d.value),
               empty_cell(), empty_cell(), count_cell(d.trials_a),
               count_cell(d.trials_b), count_cell(d.successes_a),
               count_cell(d.successes_b), count_cell(d.denials_a),
               count_cell(d.denials_b), num_cell(d.success_rate_a),
               num_cell(d.success_rate_b), num_cell(d.success_delta),
               num_cell(d.success_delta_ci.low),
               num_cell(d.success_delta_ci.high), bool_cell(d.significant),
               empty_cell(), empty_cell(), num_cell(d.denial_delta),
               empty_cell(), empty_cell(), empty_cell(),
               num_cell(d.mean_psnr_shift)});
  }
  return t.to_csv();
}

std::string DiffReport::to_json() const {
  Table cell_table{{{"defense"},        {"model"},
                    {"delay_s"},        {"scrubber_Bps"},
                    {"index_a"},        {"index_b"},
                    {"trials_a"},       {"trials_b"},
                    {"successes_a"},    {"successes_b"},
                    {"denials_a"},      {"denials_b"},
                    {"success_rate_a"}, {"success_rate_b"},
                    {"success_delta"},  {"delta_ci95_low"},
                    {"delta_ci95_high"}, {"significant"},
                    {"denial_rate_a"},  {"denial_rate_b"},
                    {"denial_delta"},   {"p50_shift"},
                    {"p90_shift"},      {"p99_shift"}}};
  for (const CellDelta& d : cells) {
    cell_table.add_row(
        {str_cell(d.key.defense), str_cell(d.key.model),
         num_cell(d.key.attack_delay_s),
         num_cell(d.key.scrubber_bytes_per_s), count_cell(d.index_a),
         count_cell(d.index_b), count_cell(d.trials_a),
         count_cell(d.trials_b), count_cell(d.successes_a),
         count_cell(d.successes_b), count_cell(d.denials_a),
         count_cell(d.denials_b), num_cell(d.success_rate_a),
         num_cell(d.success_rate_b), num_cell(d.success_delta),
         num_cell(d.success_delta_ci.low),
         num_cell(d.success_delta_ci.high), bool_cell(d.significant),
         num_cell(d.denial_rate_a), num_cell(d.denial_rate_b),
         num_cell(d.denial_delta), num_cell(d.p50_shift),
         num_cell(d.p90_shift), num_cell(d.p99_shift)});
  }
  auto side_table = [](const std::vector<CellDistribution>& side) {
    Table t{{{"index"},
             {"defense"},
             {"model"},
             {"delay_s"},
             {"scrubber_Bps"},
             {"trials"},
             {"successes"},
             {"denials"},
             {"success_rate"}}};
    for (const CellDistribution& c : side) {
      t.add_row({count_cell(c.index), str_cell(c.defense), str_cell(c.model),
                 num_cell(c.attack_delay_s),
                 num_cell(c.scrubber_bytes_per_s), count_cell(c.trials),
                 count_cell(c.successes), count_cell(c.denials),
                 num_cell(c.success_rate)});
    }
    return t;
  };
  Table marginal_table{{{"axis"},           {"value"},
                        {"trials_a"},       {"trials_b"},
                        {"successes_a"},    {"successes_b"},
                        {"denials_a"},      {"denials_b"},
                        {"success_rate_a"}, {"success_rate_b"},
                        {"success_delta"},  {"delta_ci95_low"},
                        {"delta_ci95_high"}, {"significant"},
                        {"denial_delta"},   {"mean_psnr_shift"}}};
  for (const AxisDelta& d : marginals) {
    marginal_table.add_row(
        {str_cell(d.axis), str_cell(d.value), count_cell(d.trials_a),
         count_cell(d.trials_b), count_cell(d.successes_a),
         count_cell(d.successes_b), count_cell(d.denials_a),
         count_cell(d.denials_b), num_cell(d.success_rate_a),
         num_cell(d.success_rate_b), num_cell(d.success_delta),
         num_cell(d.success_delta_ci.low),
         num_cell(d.success_delta_ci.high), bool_cell(d.significant),
         num_cell(d.denial_delta), num_cell(d.mean_psnr_shift)});
  }

  std::string out = "{\"matched_cells\":" + std::to_string(cells.size());
  out += ",\"significant_cells\":" + std::to_string(significant_cells);
  out += ",\"cells\":" + cell_table.to_json();
  out += ",\"only_in_a\":" + side_table(only_in_a).to_json();
  out += ",\"only_in_b\":" + side_table(only_in_b).to_json();
  out += ",\"marginals\":" + marginal_table.to_json();
  out += '}';
  return out;
}

}  // namespace msa::campaign
