#include "campaign/compare.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

#include "campaign/table.h"

namespace msa::campaign {

namespace {

using table::Align;
using table::Cell;
using table::Column;
using table::Table;
using table::axis_text_header;
using table::axis_value_cell;
using table::bool_cell;
using table::count_cell;
using table::empty_cell;
using table::num_cell;
using table::str_cell;

double rate(std::size_t numerator, std::size_t denominator) {
  return denominator == 0 ? 0.0
                          : static_cast<double>(numerator) /
                                static_cast<double>(denominator);
}

/// Ordered axis names of an analyzed sweep — the first cell's coordinate
/// order (every cell of one sweep shares the schema); empty for an empty
/// sweep.
std::vector<std::string> schema_of(const StatsReport& r) {
  std::vector<std::string> axes;
  if (r.cells.empty()) return axes;
  axes.reserve(r.cells.front().coords.size());
  for (const AxisCoordinate& c : r.cells.front().coords) {
    axes.push_back(c.axis);
  }
  return axes;
}

/// Projects a cell onto the shared axes, in shared order. A cell missing
/// one of them means the store mixes schemas — alignment is impossible.
AxisKey project(const CellDistribution& c,
                const std::vector<std::string>& shared, const char* side) {
  AxisKey key;
  key.coords.reserve(shared.size());
  for (const std::string& axis : shared) {
    const AxisValue* v = find_coord(c.coords, axis);
    if (v == nullptr) {
      throw std::runtime_error(std::string("diff: sweep ") + side + " cell " +
                               std::to_string(c.index) + " lacks axis '" +
                               axis + "' (store mixes schemas?)");
    }
    key.coords.push_back({axis, *v});
  }
  return key;
}

/// Cells keyed by their shared-axis values; a duplicate key makes the
/// cross-sweep pairing ambiguous and is rejected outright. Non-finite
/// numeric axis values are rejected too — the CLI no longer produces
/// them, but a store written by an older binary can still carry them,
/// and a NaN key would break the map's strict weak ordering.
std::map<AxisKey, const CellDistribution*> index_cells(
    const StatsReport& r, const char* side,
    const std::vector<std::string>& shared) {
  std::map<AxisKey, const CellDistribution*> out;
  for (const CellDistribution& c : r.cells) {
    for (const AxisCoordinate& coord : c.coords) {
      if (coord.value.kind == AxisKind::kDouble &&
          !std::isfinite(coord.value.num)) {
        throw std::runtime_error(
            std::string("diff: sweep ") + side + " cell " +
            std::to_string(c.index) +
            " has a non-finite axis value (store written by a pre-validation "
            "tool?) — axis alignment needs finite coordinates");
      }
    }
    AxisKey key = project(c, shared, side);
    const std::string label = key.label();
    const auto [it, inserted] = out.emplace(std::move(key), &c);
    if (!inserted) {
      throw std::runtime_error(
          std::string("diff: sweep ") + side +
          " has two cells with the same axis values (" + label +
          ") — alignment by axis is ambiguous");
    }
  }
  return out;
}

std::map<std::pair<std::string, std::string>, const AxisMarginal*>
index_marginals(const StatsReport& r, const char* side) {
  std::map<std::pair<std::string, std::string>, const AxisMarginal*> out;
  for (const AxisMarginal& m : r.marginals) {
    const auto [it, inserted] = out.emplace(std::pair{m.axis, m.value}, &m);
    if (!inserted) {
      throw std::runtime_error(std::string("diff: sweep ") + side +
                               " repeats marginal " + m.axis + "=" + m.value);
    }
  }
  return out;
}

Cell delta_ci_cell(const DeltaInterval& ci) {
  return table::interval_cell(ci.low, ci.high);
}

}  // namespace

bool AxisKey::operator<(const AxisKey& other) const {
  const std::size_t n = std::min(coords.size(), other.coords.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (coords[i].axis != other.coords[i].axis) {
      return coords[i].axis < other.coords[i].axis;
    }
    if (!(coords[i].value == other.coords[i].value)) {
      return coords[i].value < other.coords[i].value;
    }
  }
  return coords.size() < other.coords.size();
}

std::string AxisKey::label() const { return coords_label(coords); }

double newcombe_p_value(std::size_t successes_a, std::size_t trials_a,
                        std::size_t successes_b, std::size_t trials_b) {
  if (trials_a == 0 || trials_b == 0) return 1.0;  // no information
  const auto excludes_zero_at = [&](double z) {
    return newcombe_interval(successes_a, trials_a, successes_b, trials_b, z)
        .excludes_zero();
  };
  // The interval width grows monotonically in z (both Wilson intervals
  // widen), so "excludes zero" flips exactly once. Bisect for the
  // crossing z* and map it through the two-sided normal tail. At z -> 0
  // the interval collapses onto the observed delta, so a zero delta
  // never excludes zero and yields p = 1.
  double lo = 1e-8;
  double hi = 40.0;  // erfc(40/sqrt2) underflows to 0 — effectively p=0
  if (!excludes_zero_at(lo)) return 1.0;
  if (excludes_zero_at(hi)) return 0.0;
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    (excludes_zero_at(mid) ? lo : hi) = mid;
  }
  return std::erfc(0.5 * (lo + hi) / std::sqrt(2.0));
}

std::vector<double> benjamini_hochberg(const std::vector<double>& p_values) {
  for (const double p : p_values) {
    if (!(p >= 0.0 && p <= 1.0)) {
      throw std::invalid_argument("benjamini_hochberg: p-value " +
                                  std::to_string(p) + " outside [0, 1]");
    }
  }
  const std::size_t m = p_values.size();
  std::vector<std::size_t> order(m);
  for (std::size_t i = 0; i < m; ++i) order[i] = i;
  // Ties broken by original position so the adjustment is deterministic.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return p_values[a] != p_values[b] ? p_values[a] < p_values[b] : a < b;
  });
  // Step-up from the largest p: q_(i) = min(q_(i+1), p_(i) * m / i),
  // clamped to 1. Every q >= its raw p because m / rank >= 1.
  std::vector<double> adjusted(m);
  double running = 1.0;
  for (std::size_t r = m; r > 0; --r) {
    const std::size_t idx = order[r - 1];
    running = std::min(
        running, std::min(1.0, p_values[idx] * static_cast<double>(m) /
                                   static_cast<double>(r)));
    adjusted[idx] = running;
  }
  return adjusted;
}

DeltaInterval newcombe_interval(std::size_t successes_a, std::size_t trials_a,
                                std::size_t successes_b, std::size_t trials_b,
                                double z) {
  const double pa = rate(successes_a, trials_a);
  const double pb = rate(successes_b, trials_b);
  const WilsonInterval wa = wilson_interval(successes_a, trials_a, z);
  const WilsonInterval wb = wilson_interval(successes_b, trials_b, z);
  const double delta = pb - pa;
  // Newcombe (1998) method 10 / MOVER: compose the two Wilson intervals
  // into an interval for the difference.
  const double low = delta - std::sqrt((pb - wb.low) * (pb - wb.low) +
                                       (wa.high - pa) * (wa.high - pa));
  const double high = delta + std::sqrt((wb.high - pb) * (wb.high - pb) +
                                        (pa - wa.low) * (pa - wa.low));
  return {std::max(-1.0, low), std::min(1.0, high)};
}

DiffReport diff_sweeps(const StatsReport& a, const StatsReport& b) {
  const auto marginals_a = index_marginals(a, "A");
  const auto marginals_b = index_marginals(b, "B");

  DiffReport out;
  const std::vector<std::string> schema_a = schema_of(a);
  const std::vector<std::string> schema_b = schema_of(b);
  for (const std::string& axis : schema_a) {
    if (std::find(schema_b.begin(), schema_b.end(), axis) != schema_b.end()) {
      out.shared_axes.push_back(axis);
    }
  }

  if (out.shared_axes.empty()) {
    // One side is empty, or the schemas are disjoint: no cell can pair,
    // so everything lists as one-sided and only the marginals compare.
    out.only_in_a = a.cells;
    out.only_in_b = b.cells;
  } else {
    const auto cells_a = index_cells(a, "A", out.shared_axes);
    const auto cells_b = index_cells(b, "B", out.shared_axes);
    for (const auto& [key, ca] : cells_a) {
      const auto it = cells_b.find(key);
      if (it == cells_b.end()) {
        out.only_in_a.push_back(*ca);
        continue;
      }
      const CellDistribution& cb = *it->second;

      CellDelta d;
      d.key = key;
      d.index_a = ca->index;
      d.index_b = cb.index;
      d.trials_a = ca->trials;
      d.trials_b = cb.trials;
      d.successes_a = ca->successes;
      d.successes_b = cb.successes;
      d.denials_a = ca->denials;
      d.denials_b = cb.denials;
      d.success_rate_a = ca->success_rate;
      d.success_rate_b = cb.success_rate;
      d.success_delta = cb.success_rate - ca->success_rate;
      d.success_delta_ci = newcombe_interval(ca->successes, ca->trials,
                                             cb.successes, cb.trials);
      d.significant = d.success_delta_ci.excludes_zero();
      d.p_value = newcombe_p_value(ca->successes, ca->trials, cb.successes,
                                   cb.trials);
      d.denial_rate_a = rate(ca->denials, ca->trials);
      d.denial_rate_b = rate(cb.denials, cb.trials);
      d.denial_delta = d.denial_rate_b - d.denial_rate_a;
      d.p50_shift = cb.p50_psnr - ca->p50_psnr;
      d.p90_shift = cb.p90_psnr - ca->p90_psnr;
      d.p99_shift = cb.p99_psnr - ca->p99_psnr;
      if (d.significant) ++out.significant_cells;
      out.cells.push_back(std::move(d));
    }
    for (const auto& [key, cb] : cells_b) {
      if (!cells_a.contains(key)) out.only_in_b.push_back(*cb);
    }
  }

  // FDR correction over the whole matched family: the per-cell Newcombe
  // flags each run at 5%, so on a big matrix several "significant" cells
  // are expected by chance alone; BH bounds the expected fraction of
  // false flags among the flagged at 5% instead.
  if (!out.cells.empty()) {
    std::vector<double> p_values;
    p_values.reserve(out.cells.size());
    for (const CellDelta& d : out.cells) p_values.push_back(d.p_value);
    const std::vector<double> adjusted = benjamini_hochberg(p_values);
    for (std::size_t i = 0; i < out.cells.size(); ++i) {
      CellDelta& d = out.cells[i];
      d.p_value_fdr = adjusted[i];
      d.significant_fdr =
          d.significant && d.p_value_fdr <= kSignificanceAlpha;
      if (d.significant_fdr) ++out.significant_cells_fdr;
    }
  }

  // Marginals in side A's order (axis blocks in schema order, values by
  // side-A first appearance); side-B-only values have no delta to report
  // and surface through the unmatched cell lists instead.
  for (const AxisMarginal& ma : a.marginals) {
    const auto it = marginals_b.find(std::pair{ma.axis, ma.value});
    if (it == marginals_b.end()) continue;
    const AxisMarginal& mb = *it->second;

    AxisDelta d;
    d.axis = ma.axis;
    d.value = ma.value;
    d.trials_a = ma.trials;
    d.trials_b = mb.trials;
    d.successes_a = ma.successes;
    d.successes_b = mb.successes;
    d.denials_a = ma.denials;
    d.denials_b = mb.denials;
    d.success_rate_a = ma.success_rate;
    d.success_rate_b = mb.success_rate;
    d.success_delta = mb.success_rate - ma.success_rate;
    d.success_delta_ci =
        newcombe_interval(ma.successes, ma.trials, mb.successes, mb.trials);
    d.significant = d.success_delta_ci.excludes_zero();
    d.denial_delta = rate(mb.denials, mb.trials) - rate(ma.denials, ma.trials);
    d.mean_psnr_shift = mb.mean_psnr - ma.mean_psnr;
    out.marginals.push_back(std::move(d));
  }

  return out;
}

const char* diff_metric_name(DiffMetric metric) noexcept {
  switch (metric) {
    case DiffMetric::kSuccessRate: return "success_rate";
    case DiffMetric::kDenialRate: return "denial";
    case DiffMetric::kPsnrP50: return "psnr_p50";
  }
  return "?";
}

bool parse_diff_metric(std::string_view name, DiffMetric* metric) noexcept {
  if (name == "success_rate") *metric = DiffMetric::kSuccessRate;
  else if (name == "denial") *metric = DiffMetric::kDenialRate;
  else if (name == "psnr_p50") *metric = DiffMetric::kPsnrP50;
  else return false;
  return true;
}

double cell_metric_delta(const CellDelta& cell, DiffMetric metric) noexcept {
  switch (metric) {
    case DiffMetric::kSuccessRate: return cell.success_delta;
    case DiffMetric::kDenialRate: return cell.denial_delta;
    case DiffMetric::kPsnrP50: return cell.p50_shift;
  }
  return 0.0;
}

std::vector<double> paired_deltas(const DiffReport& diff, DiffMetric metric) {
  std::vector<double> deltas;
  deltas.reserve(diff.cells.size());
  for (const CellDelta& d : diff.cells) {
    deltas.push_back(cell_metric_delta(d, metric));
  }
  return deltas;
}

namespace {

/// Column alignment for an axis: textual values left, numeric right. The
/// sample coordinate list decides; the registry kind is the fallback for
/// axes with no sample row (empty tables render headers only, where the
/// choice is invisible anyway).
Align axis_align(const std::string& axis,
                 const std::vector<AxisCoordinate>* sample) {
  AxisKind kind = AxisKind::kDouble;
  if (const AxisValue* v = sample ? find_coord(*sample, axis) : nullptr) {
    kind = v->kind;
  } else if (const AxisDescriptor* d = find_axis(axis)) {
    kind = d->kind;
  }
  return kind == AxisKind::kString || kind == AxisKind::kEnum ? Align::kLeft
                                                              : Align::kRight;
}

/// Axis value of `axis` on `coords`, empty cell when the row lacks it
/// (a one-sided row in a CSV whose column union spans both schemas).
Cell coord_cell(const std::vector<AxisCoordinate>& coords,
                const std::string& axis) {
  const AxisValue* v = find_coord(coords, axis);
  return v == nullptr ? empty_cell() : axis_value_cell(*v);
}

/// Axis columns of one side's unmatched-cell table: that side's own
/// schema, the legacy four when the side is empty.
std::vector<std::string> side_axes(const std::vector<CellDistribution>& side) {
  if (side.empty()) return legacy_axis_names();
  std::vector<std::string> axes;
  axes.reserve(side.front().coords.size());
  for (const AxisCoordinate& c : side.front().coords) axes.push_back(c.axis);
  return axes;
}

Table unmatched_table(const std::vector<CellDistribution>& cells) {
  const std::vector<std::string> axes = side_axes(cells);
  const std::vector<AxisCoordinate>* sample =
      cells.empty() ? nullptr : &cells.front().coords;
  std::vector<Column> columns{{"index", Align::kLeft}};
  for (const std::string& axis : axes) {
    columns.push_back({axis_text_header(axis), axis_align(axis, sample)});
  }
  for (const char* name : {"trials", "success", "denials"}) {
    columns.push_back({name, Align::kRight});
  }
  Table t{std::move(columns)};
  for (const CellDistribution& c : cells) {
    std::vector<Cell> row{count_cell(c.index)};
    for (const std::string& axis : axes) {
      row.push_back(coord_cell(c.coords, axis));
    }
    row.push_back(count_cell(c.trials));
    row.push_back(num_cell(c.success_rate, 3));
    row.push_back(count_cell(c.denials));
    t.add_row(std::move(row));
  }
  return t;
}

}  // namespace

std::string DiffReport::to_text() const {
  std::string out;
  out += "== cross-sweep diff (B minus A): " + std::to_string(cells.size()) +
         " matched cell(s), " + std::to_string(significant_cells) +
         " significant (" + std::to_string(significant_cells_fdr) +
         " after FDR), " + std::to_string(only_in_a.size()) + " A-only, " +
         std::to_string(only_in_b.size()) + " B-only ==\n";
  const std::vector<std::string> matched_axes =
      shared_axes.empty() ? legacy_axis_names() : shared_axes;
  const std::vector<AxisCoordinate>* sample =
      cells.empty() ? nullptr : &cells.front().key.coords;
  std::vector<Column> cell_columns;
  for (const std::string& axis : matched_axes) {
    cell_columns.push_back({axis_text_header(axis), axis_align(axis, sample)});
  }
  for (const char* name :
       {"trials_a", "trials_b", "succ_a", "succ_b", "delta", "delta_ci95"}) {
    cell_columns.push_back({name, Align::kRight});
  }
  cell_columns.push_back({"sig", Align::kLeft});
  cell_columns.push_back({"p_fdr", Align::kRight});
  cell_columns.push_back({"sig_fdr", Align::kLeft});
  for (const char* name : {"den_delta", "p50_shift", "p90_shift", "p99_shift"}) {
    cell_columns.push_back({name, Align::kRight});
  }
  Table cell_table{std::move(cell_columns)};
  for (const CellDelta& d : cells) {
    std::vector<Cell> row;
    for (const std::string& axis : matched_axes) {
      row.push_back(coord_cell(d.key.coords, axis));
    }
    row.push_back(count_cell(d.trials_a));
    row.push_back(count_cell(d.trials_b));
    row.push_back(num_cell(d.success_rate_a, 3));
    row.push_back(num_cell(d.success_rate_b, 3));
    row.push_back(num_cell(d.success_delta, 3));
    row.push_back(delta_ci_cell(d.success_delta_ci));
    row.push_back(bool_cell(d.significant));
    row.push_back(table::pvalue_cell(d.p_value_fdr));
    row.push_back(bool_cell(d.significant_fdr));
    row.push_back(num_cell(d.denial_delta, 3));
    row.push_back(num_cell(d.p50_shift, 2));
    row.push_back(num_cell(d.p90_shift, 2));
    row.push_back(num_cell(d.p99_shift, 2));
    cell_table.add_row(std::move(row));
  }
  out += cell_table.to_text();

  out += "\n== unmatched cells (A only: " + std::to_string(only_in_a.size()) +
         ") ==\n";
  out += unmatched_table(only_in_a).to_text();
  out += "\n== unmatched cells (B only: " + std::to_string(only_in_b.size()) +
         ") ==\n";
  out += unmatched_table(only_in_b).to_text();

  out += "\n== per-axis marginal deltas ==\n";
  Table marginal_table{{{"axis", Align::kLeft},
                        {"value", Align::kLeft},
                        {"trials_a", Align::kRight},
                        {"trials_b", Align::kRight},
                        {"succ_a", Align::kRight},
                        {"succ_b", Align::kRight},
                        {"delta", Align::kRight},
                        {"delta_ci95", Align::kRight},
                        {"sig", Align::kLeft},
                        {"den_delta", Align::kRight},
                        {"psnr_shift", Align::kRight}}};
  for (const AxisDelta& d : marginals) {
    marginal_table.add_row(
        {str_cell(d.axis), str_cell(d.value), count_cell(d.trials_a),
         count_cell(d.trials_b), num_cell(d.success_rate_a, 3),
         num_cell(d.success_rate_b, 3), num_cell(d.success_delta, 3),
         delta_ci_cell(d.success_delta_ci), bool_cell(d.significant),
         num_cell(d.denial_delta, 3), num_cell(d.mean_psnr_shift, 2)});
  }
  out += marginal_table.to_text();
  return out;
}

namespace {

/// Axis-column union for the flat CSV: the shared axes first (side A
/// order), then any side-only axes in appearance order, the legacy four
/// when everything is empty. Rows leave the columns their schema lacks
/// empty.
std::vector<std::string> csv_axis_union(const DiffReport& r) {
  std::vector<std::string> axes = r.shared_axes;
  const auto add_side = [&axes](const std::vector<CellDistribution>& side) {
    if (side.empty()) return;
    for (const AxisCoordinate& c : side.front().coords) {
      if (std::find(axes.begin(), axes.end(), c.axis) == axes.end()) {
        axes.push_back(c.axis);
      }
    }
  };
  add_side(r.only_in_a);
  add_side(r.only_in_b);
  if (axes.empty()) axes = legacy_axis_names();
  return axes;
}

}  // namespace

std::string DiffReport::to_csv() const {
  const std::vector<std::string> axes = csv_axis_union(*this);
  std::vector<Column> columns{{"section"}};
  for (const std::string& axis : axes) columns.push_back({axis});
  for (const char* name :
       {"axis", "value", "index_a", "index_b", "trials_a", "trials_b",
        "successes_a", "successes_b", "denials_a", "denials_b",
        "success_rate_a", "success_rate_b", "success_delta", "delta_ci95_low",
        "delta_ci95_high", "significant", "p_value", "p_value_fdr",
        "significant_fdr", "denial_rate_a", "denial_rate_b", "denial_delta",
        "p50_shift", "p90_shift", "p99_shift", "mean_psnr_shift"}) {
    columns.push_back({name});
  }
  Table t{std::move(columns)};
  for (const CellDelta& d : cells) {
    std::vector<Cell> row{str_cell("cell")};
    for (const std::string& axis : axes) {
      row.push_back(coord_cell(d.key.coords, axis));
    }
    row.push_back(empty_cell());  // axis
    row.push_back(empty_cell());  // value
    row.push_back(count_cell(d.index_a));
    row.push_back(count_cell(d.index_b));
    row.push_back(count_cell(d.trials_a));
    row.push_back(count_cell(d.trials_b));
    row.push_back(count_cell(d.successes_a));
    row.push_back(count_cell(d.successes_b));
    row.push_back(count_cell(d.denials_a));
    row.push_back(count_cell(d.denials_b));
    row.push_back(num_cell(d.success_rate_a));
    row.push_back(num_cell(d.success_rate_b));
    row.push_back(num_cell(d.success_delta));
    row.push_back(num_cell(d.success_delta_ci.low));
    row.push_back(num_cell(d.success_delta_ci.high));
    row.push_back(bool_cell(d.significant));
    row.push_back(num_cell(d.p_value));
    row.push_back(num_cell(d.p_value_fdr));
    row.push_back(bool_cell(d.significant_fdr));
    row.push_back(num_cell(d.denial_rate_a));
    row.push_back(num_cell(d.denial_rate_b));
    row.push_back(num_cell(d.denial_delta));
    row.push_back(num_cell(d.p50_shift));
    row.push_back(num_cell(d.p90_shift));
    row.push_back(num_cell(d.p99_shift));
    row.push_back(empty_cell());  // mean_psnr_shift
    t.add_row(std::move(row));
  }
  auto add_unmatched = [&](const char* section,
                           const std::vector<CellDistribution>& side,
                           bool is_a) {
    for (const CellDistribution& c : side) {
      std::vector<Cell> row{str_cell(section)};
      for (const std::string& axis : axes) {
        row.push_back(coord_cell(c.coords, axis));
      }
      row.push_back(empty_cell());  // axis
      row.push_back(empty_cell());  // value
      // index / trials / successes / denials / success_rate land in the
      // matching side's columns; the partner side stays empty.
      auto pair = [&](Cell value) {
        row.push_back(is_a ? value : empty_cell());
        row.push_back(is_a ? empty_cell() : value);
      };
      pair(count_cell(c.index));
      pair(count_cell(c.trials));
      pair(count_cell(c.successes));
      pair(count_cell(c.denials));
      pair(num_cell(c.success_rate));
      // No delta / significance columns for a one-sided cell.
      for (int i = 0; i < 7; ++i) row.push_back(empty_cell());
      pair(num_cell(rate(c.denials, c.trials)));
      for (int i = 0; i < 5; ++i) row.push_back(empty_cell());
      t.add_row(std::move(row));
    }
  };
  add_unmatched("only_in_a", only_in_a, true);
  add_unmatched("only_in_b", only_in_b, false);
  for (const AxisDelta& d : marginals) {
    std::vector<Cell> row{str_cell("axis")};
    for (std::size_t i = 0; i < axes.size(); ++i) row.push_back(empty_cell());
    row.push_back(str_cell(d.axis));
    row.push_back(str_cell(d.value));
    row.push_back(empty_cell());  // index_a
    row.push_back(empty_cell());  // index_b
    row.push_back(count_cell(d.trials_a));
    row.push_back(count_cell(d.trials_b));
    row.push_back(count_cell(d.successes_a));
    row.push_back(count_cell(d.successes_b));
    row.push_back(count_cell(d.denials_a));
    row.push_back(count_cell(d.denials_b));
    row.push_back(num_cell(d.success_rate_a));
    row.push_back(num_cell(d.success_rate_b));
    row.push_back(num_cell(d.success_delta));
    row.push_back(num_cell(d.success_delta_ci.low));
    row.push_back(num_cell(d.success_delta_ci.high));
    row.push_back(bool_cell(d.significant));
    // Marginals carry only the raw flag: FDR is corrected over the cell
    // family, and mixing the pooled marginal tests into it would change
    // what "the family" means.
    row.push_back(empty_cell());  // p_value
    row.push_back(empty_cell());  // p_value_fdr
    row.push_back(empty_cell());  // significant_fdr
    row.push_back(empty_cell());  // denial_rate_a
    row.push_back(empty_cell());  // denial_rate_b
    row.push_back(num_cell(d.denial_delta));
    row.push_back(empty_cell());  // p50_shift
    row.push_back(empty_cell());  // p90_shift
    row.push_back(empty_cell());  // p99_shift
    row.push_back(num_cell(d.mean_psnr_shift));
    t.add_row(std::move(row));
  }
  return t.to_csv();
}

std::string DiffReport::to_json() const {
  const std::vector<std::string> matched_axes =
      shared_axes.empty() ? legacy_axis_names() : shared_axes;
  std::vector<Column> cell_columns;
  for (const std::string& axis : matched_axes) cell_columns.push_back({axis});
  for (const char* name :
       {"index_a", "index_b", "trials_a", "trials_b", "successes_a",
        "successes_b", "denials_a", "denials_b", "success_rate_a",
        "success_rate_b", "success_delta", "delta_ci95_low", "delta_ci95_high",
        "significant", "p_value", "p_value_fdr", "significant_fdr",
        "denial_rate_a", "denial_rate_b", "denial_delta", "p50_shift",
        "p90_shift", "p99_shift"}) {
    cell_columns.push_back({name});
  }
  Table cell_table{std::move(cell_columns)};
  for (const CellDelta& d : cells) {
    std::vector<Cell> row;
    for (const std::string& axis : matched_axes) {
      row.push_back(coord_cell(d.key.coords, axis));
    }
    row.push_back(count_cell(d.index_a));
    row.push_back(count_cell(d.index_b));
    row.push_back(count_cell(d.trials_a));
    row.push_back(count_cell(d.trials_b));
    row.push_back(count_cell(d.successes_a));
    row.push_back(count_cell(d.successes_b));
    row.push_back(count_cell(d.denials_a));
    row.push_back(count_cell(d.denials_b));
    row.push_back(num_cell(d.success_rate_a));
    row.push_back(num_cell(d.success_rate_b));
    row.push_back(num_cell(d.success_delta));
    row.push_back(num_cell(d.success_delta_ci.low));
    row.push_back(num_cell(d.success_delta_ci.high));
    row.push_back(bool_cell(d.significant));
    row.push_back(num_cell(d.p_value));
    row.push_back(num_cell(d.p_value_fdr));
    row.push_back(bool_cell(d.significant_fdr));
    row.push_back(num_cell(d.denial_rate_a));
    row.push_back(num_cell(d.denial_rate_b));
    row.push_back(num_cell(d.denial_delta));
    row.push_back(num_cell(d.p50_shift));
    row.push_back(num_cell(d.p90_shift));
    row.push_back(num_cell(d.p99_shift));
    cell_table.add_row(std::move(row));
  }
  auto side_table = [](const std::vector<CellDistribution>& side) {
    const std::vector<std::string> axes = side_axes(side);
    std::vector<Column> columns{{"index"}};
    for (const std::string& axis : axes) columns.push_back({axis});
    for (const char* name :
         {"trials", "successes", "denials", "success_rate"}) {
      columns.push_back({name});
    }
    Table t{std::move(columns)};
    for (const CellDistribution& c : side) {
      std::vector<Cell> row{count_cell(c.index)};
      for (const std::string& axis : axes) {
        row.push_back(coord_cell(c.coords, axis));
      }
      row.push_back(count_cell(c.trials));
      row.push_back(count_cell(c.successes));
      row.push_back(count_cell(c.denials));
      row.push_back(num_cell(c.success_rate));
      t.add_row(std::move(row));
    }
    return t;
  };
  Table marginal_table{{{"axis"},           {"value"},
                        {"trials_a"},       {"trials_b"},
                        {"successes_a"},    {"successes_b"},
                        {"denials_a"},      {"denials_b"},
                        {"success_rate_a"}, {"success_rate_b"},
                        {"success_delta"},  {"delta_ci95_low"},
                        {"delta_ci95_high"}, {"significant"},
                        {"denial_delta"},   {"mean_psnr_shift"}}};
  for (const AxisDelta& d : marginals) {
    marginal_table.add_row(
        {str_cell(d.axis), str_cell(d.value), count_cell(d.trials_a),
         count_cell(d.trials_b), count_cell(d.successes_a),
         count_cell(d.successes_b), count_cell(d.denials_a),
         count_cell(d.denials_b), num_cell(d.success_rate_a),
         num_cell(d.success_rate_b), num_cell(d.success_delta),
         num_cell(d.success_delta_ci.low),
         num_cell(d.success_delta_ci.high), bool_cell(d.significant),
         num_cell(d.denial_delta), num_cell(d.mean_psnr_shift)});
  }

  std::string out = "{\"matched_cells\":" + std::to_string(cells.size());
  out += ",\"significant_cells\":" + std::to_string(significant_cells);
  out += ",\"significant_cells_fdr\":" + std::to_string(significant_cells_fdr);
  out += ",\"cells\":" + cell_table.to_json();
  out += ",\"only_in_a\":" + side_table(only_in_a).to_json();
  out += ",\"only_in_b\":" + side_table(only_in_b).to_json();
  out += ",\"marginals\":" + marginal_table.to_json();
  out += '}';
  return out;
}

}  // namespace msa::campaign
