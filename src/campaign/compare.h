// Cross-sweep comparison: aligns the cells of two analyzed sweeps by
// AXIS VALUES (defense, model, delay, scrubber rate) — never by cell
// index — and reports per-cell and per-axis outcome deltas with
// Newcombe/Wilson confidence intervals on the success-rate difference.
// Index-independence is the point: two stores whose grids enumerate the
// same combinations in different orders (or only partially overlap)
// still pair up, and the unmatched remainder is reported per side
// instead of silently dropped. This is the `campaign_sweep diff`
// subcommand's engine, the one-command answer to "did defense family B
// beat defense family A under the same attack grid".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/stats.h"

namespace msa::campaign {

/// Axis coordinates of a cell projected onto the axes both sweeps share
/// — the schema-driven join key for cross-sweep alignment (any axis set,
/// not just the legacy four). Ordered lexicographically over the
/// (axis, value) sequence so diff output is deterministic regardless of
/// either side's grid order.
struct AxisKey {
  std::vector<AxisCoordinate> coords;  ///< in shared-axis (side A) order

  friend bool operator==(const AxisKey&, const AxisKey&) = default;
  [[nodiscard]] bool operator<(const AxisKey& other) const;
  /// "axis=value/..." for error messages and text rows.
  [[nodiscard]] std::string label() const;
};

/// CI on a difference of proportions; excludes_zero() is the per-row
/// significance flag ("the grids disagree on this cell beyond what the
/// trial counts can explain").
struct DeltaInterval {
  double low = 0.0;
  double high = 0.0;
  [[nodiscard]] bool excludes_zero() const noexcept {
    return low > 0.0 || high < 0.0;
  }
};

/// Newcombe's score interval (MOVER over two Wilson intervals) for the
/// difference p_b - p_a. Small-n-safe like Wilson itself: never
/// degenerate at 0/n or n/n, always inside [-1, 1]. A side with zero
/// trials contributes the no-information interval [0, 1].
[[nodiscard]] DeltaInterval newcombe_interval(std::size_t successes_a,
                                              std::size_t trials_a,
                                              std::size_t successes_b,
                                              std::size_t trials_b,
                                              double z = 1.959964);

/// Significance level the per-cell flags are computed at: the two-sided
/// level matching the z = 1.959964 default of the Newcombe/Wilson
/// intervals. The gate engine takes its own --alpha; the emitted columns
/// are fixed here so diff output stays byte-stable.
inline constexpr double kSignificanceAlpha = 0.05;

/// Two-sided p-value for "the two proportions differ", obtained by
/// inverting the Newcombe interval: the largest z at which the interval
/// on p_b - p_a still excludes zero maps to p = 2 (1 - Phi(z)). This is
/// exactly consistent with the `significant` flag — p < alpha iff the
/// interval at alpha's z excludes zero — which is what makes
/// Benjamini–Hochberg over these p-values a pure tightening of the raw
/// flags. A side with zero trials (no information) yields 1, as does a
/// zero observed delta.
[[nodiscard]] double newcombe_p_value(std::size_t successes_a,
                                      std::size_t trials_a,
                                      std::size_t successes_b,
                                      std::size_t trials_b);

/// Benjamini–Hochberg step-up adjustment: returns the adjusted p-values
/// (q-values) in the input's order. Flagging q <= alpha controls the
/// false-discovery rate at alpha over the whole family — the
/// multiple-comparison correction a per-cell CI column on a big diff
/// matrix needs. Monotone by construction: every adjusted value is >=
/// its raw input and <= 1. Throws std::invalid_argument on a p-value
/// outside [0, 1] or NaN.
[[nodiscard]] std::vector<double> benjamini_hochberg(
    const std::vector<double>& p_values);

/// One axis-matched cell pair. Every delta is B minus A, so a positive
/// success_delta means the attack succeeds MORE under sweep B.
struct CellDelta {
  AxisKey key;
  std::uint64_t index_a = 0;  ///< global cell index on side A
  std::uint64_t index_b = 0;  ///< may differ — alignment is by key

  std::size_t trials_a = 0, trials_b = 0;
  std::size_t successes_a = 0, successes_b = 0;
  std::size_t denials_a = 0, denials_b = 0;

  double success_rate_a = 0.0, success_rate_b = 0.0;
  double success_delta = 0.0;       ///< rate_b - rate_a (exactly 0 on self)
  DeltaInterval success_delta_ci;   ///< Newcombe 95% on the delta
  bool significant = false;         ///< CI excludes zero (per-cell, raw)
  /// Two-sided Newcombe-inversion p-value for the success-rate delta.
  double p_value = 1.0;
  /// Benjamini–Hochberg adjusted p over this diff's matched cells.
  double p_value_fdr = 1.0;
  /// FDR-corrected flag: raw-significant AND adjusted p <= 0.05. The
  /// conjunction makes "FDR flags are a subset of the raw flags" exact
  /// instead of subject to quantile rounding; BH can only withdraw
  /// significance a raw CI granted, never add it.
  bool significant_fdr = false;

  double denial_rate_a = 0.0, denial_rate_b = 0.0;
  double denial_delta = 0.0;

  // PSNR percentile shifts, B minus A.
  double p50_shift = 0.0;
  double p90_shift = 0.0;
  double p99_shift = 0.0;
};

/// One axis value pooled over each side's own cells. Marginals are
/// matched by (axis, value) independently of cell matching: two sweeps
/// with disjoint defense families but a shared delay axis still compare
/// per-delay — exactly the cross-family question the paper asks.
struct AxisDelta {
  std::string axis;
  std::string value;

  std::size_t trials_a = 0, trials_b = 0;
  std::size_t successes_a = 0, successes_b = 0;
  std::size_t denials_a = 0, denials_b = 0;

  double success_rate_a = 0.0, success_rate_b = 0.0;
  double success_delta = 0.0;
  DeltaInterval success_delta_ci;
  bool significant = false;

  double denial_delta = 0.0;
  double mean_psnr_shift = 0.0;
};

struct DiffReport {
  /// Axes the two sweeps share, in side A's schema order — the
  /// projection the cell matching ran on (empty only when one side has
  /// no cells or the schemas are disjoint; then nothing matches).
  std::vector<std::string> shared_axes;
  /// Matched cells ascending by AxisKey.
  std::vector<CellDelta> cells;
  /// Cells with no axis-value partner on the other side, ascending by
  /// AxisKey (copies of the per-side distributions, untouched).
  std::vector<CellDistribution> only_in_a;
  std::vector<CellDistribution> only_in_b;
  /// Matched (axis, value) marginals, in side A's marginal order (axis
  /// blocks fixed, values by side-A first appearance).
  std::vector<AxisDelta> marginals;
  std::size_t significant_cells = 0;  ///< cells whose CI excludes zero
  /// Cells still significant after Benjamini–Hochberg FDR correction —
  /// the honest discovery count on a many-cell matrix.
  std::size_t significant_cells_fdr = 0;

  [[nodiscard]] std::string to_text() const;
  /// One strict CSV table; `section` is cell | axis | only_in_a |
  /// only_in_b, with the columns a section does not populate left empty.
  [[nodiscard]] std::string to_csv() const;
  /// {"matched_cells":..,"significant_cells":..,"cells":[..],
  ///  "only_in_a":[..],"only_in_b":[..],"marginals":[..]}
  [[nodiscard]] std::string to_json() const;
};

/// Aligns two analyzed sweeps on the axes their schemas share (a v1
/// store's legacy four against a v2 sweep's superset included). Throws
/// std::runtime_error when one side carries two cells with the same
/// projected axis key — duplicate axis values in a grid, or a shared-axis
/// subset too coarse to separate one side's cells — since either makes
/// the pairing ambiguous. Sweeps sharing no axes simply match nothing:
/// every cell lists as one-sided, and only the (axis, value) marginals
/// compare.
[[nodiscard]] DiffReport diff_sweeps(const StatsReport& a,
                                     const StatsReport& b);

/// The comparable scalar metrics of a matched cell pair — what the gate
/// engine's whole-grid permutation test and per-cell thresholds run on.
enum class DiffMetric : std::uint8_t {
  kSuccessRate = 0,  ///< full-success rate (the paper's headline number)
  kDenialRate = 1,   ///< denial-of-service rate
  kPsnrP50 = 2,      ///< median reconstruction PSNR (dB)
};

/// "success_rate" | "denial" | "psnr_p50" — CLI spelling.
[[nodiscard]] const char* diff_metric_name(DiffMetric metric) noexcept;

/// Parses the CLI spelling; false on an unknown name.
[[nodiscard]] bool parse_diff_metric(std::string_view name,
                                     DiffMetric* metric) noexcept;

/// B-minus-A delta of one metric on one matched cell.
[[nodiscard]] double cell_metric_delta(const CellDelta& cell,
                                       DiffMetric metric) noexcept;

/// The paired per-cell deltas of `metric`, in the diff's matched-cell
/// order (ascending AxisKey — deterministic regardless of either store's
/// enumeration order, shard layout, or thread count). This is the input
/// to the whole-grid paired permutation test: one value per shared cell,
/// pairing by axis values having already been done by diff_sweeps.
[[nodiscard]] std::vector<double> paired_deltas(const DiffReport& diff,
                                                DiffMetric metric);

}  // namespace msa::campaign
