#include "campaign/gate.h"

#include <cmath>
#include <cstdlib>

#include "campaign/table.h"
#include "util/prng.h"

namespace msa::campaign {

const char* gate_direction_name(GateDirection d) noexcept {
  switch (d) {
    case GateDirection::kRegress: return "regress";
    case GateDirection::kImprove: return "improve";
    case GateDirection::kAny: return "any";
  }
  return "?";
}

bool parse_gate_direction(std::string_view name,
                          GateDirection* direction) noexcept {
  if (name == "regress") *direction = GateDirection::kRegress;
  else if (name == "improve") *direction = GateDirection::kImprove;
  else if (name == "any") *direction = GateDirection::kAny;
  else return false;
  return true;
}

double metric_orientation(DiffMetric metric) noexcept {
  // Higher success rate and higher reconstruction fidelity favor the
  // attack; a higher denial rate means the attack was stopped more.
  return metric == DiffMetric::kDenialRate ? -1.0 : 1.0;
}

PermutationResult paired_permutation_test(const std::vector<double>& deltas,
                                          std::uint64_t seed,
                                          std::uint64_t iterations,
                                          bool two_sided) {
  PermutationResult r;
  r.paired_cells = deltas.size();
  r.iterations = iterations;
  if (deltas.empty()) return r;

  const double n = static_cast<double>(deltas.size());
  double sum = 0.0;
  for (const double d : deltas) sum += d;
  r.observed_stat = sum / n;
  if (iterations == 0) return r;

  // One PRNG bit per pair per resample, drawn 64 at a time. The ">="
  // comparison is deliberate: resamples that tie the observed statistic
  // (including the identity assignment, always present in the sampled
  // space) count as extreme, which keeps the estimate conservative and
  // makes a grid of all-zero deltas come out at exactly p = 1.
  const double threshold =
      two_sided ? std::abs(r.observed_stat) : r.observed_stat;
  util::Prng prng{seed};
  std::uint64_t hits = 0;
  for (std::uint64_t it = 0; it < iterations; ++it) {
    std::uint64_t bits = 0;
    int available = 0;
    double s = 0.0;
    for (const double d : deltas) {
      if (available == 0) {
        bits = prng();
        available = 64;
      }
      s += (bits & 1u) != 0 ? d : -d;
      bits >>= 1;
      --available;
    }
    const double stat = s / n;
    if ((two_sided ? std::abs(stat) : stat) >= threshold) ++hits;
  }
  r.at_least_as_extreme = hits;
  r.p_value = (static_cast<double>(hits) + 1.0) /
              (static_cast<double>(iterations) + 1.0);
  return r;
}

std::uint64_t gate_seed(std::uint64_t fingerprint_a,
                        std::uint64_t fingerprint_b) noexcept {
  // Two splitmix64 rounds with the second fingerprint folded in between:
  // order-sensitive, well-mixed even when both fingerprints are equal
  // (the golden-baseline case: same grid swept twice).
  std::uint64_t state = fingerprint_a;
  (void)util::splitmix64(state);
  state ^= fingerprint_b;
  return util::splitmix64(state);
}

namespace {

/// Does an oriented (regress-positive) delta move in the gated
/// direction? Zero deltas never match: "nothing moved" trips nothing.
bool direction_matches(GateDirection direction, double oriented) {
  switch (direction) {
    case GateDirection::kRegress: return oriented > 0.0;
    case GateDirection::kImprove: return oriented < 0.0;
    case GateDirection::kAny: return oriented != 0.0;
  }
  return false;
}

/// BH-adjusted per-cell p-values for the gated metric: the diff already
/// carries them for the success rate; the denial rate runs the same
/// Newcombe inversion over the denial counts. PSNR has no per-cell test
/// (a percentile shift carries no counts) — empty result, permutation
/// only.
std::vector<double> per_cell_fdr(const DiffReport& diff, DiffMetric metric) {
  std::vector<double> p;
  p.reserve(diff.cells.size());
  switch (metric) {
    case DiffMetric::kSuccessRate:
      for (const CellDelta& d : diff.cells) p.push_back(d.p_value_fdr);
      return p;
    case DiffMetric::kDenialRate:
      for (const CellDelta& d : diff.cells) {
        p.push_back(newcombe_p_value(d.denials_a, d.trials_a, d.denials_b,
                                     d.trials_b));
      }
      return benjamini_hochberg(p);
    case DiffMetric::kPsnrP50:
      return {};
  }
  return {};
}

}  // namespace

GateResult evaluate_gate(const DiffReport& diff, const GateSpec& spec,
                         std::uint64_t seed) {
  GateResult out;
  out.spec = spec;
  out.seed = seed;

  const double orientation = metric_orientation(spec.metric);
  std::vector<double> oriented = paired_deltas(diff, spec.metric);
  for (double& d : oriented) d *= orientation;

  // The permutation statistic is direction-adjusted so "extreme" always
  // means "in the gated direction": improve-gating negates the oriented
  // deltas, any-gating goes two-sided (sign-flips make the null
  // symmetric, so two-sided needs no adjustment).
  const bool two_sided = spec.direction == GateDirection::kAny;
  std::vector<double> stat_deltas = oriented;
  if (spec.direction == GateDirection::kImprove) {
    for (double& d : stat_deltas) d = -d;
  }
  out.permutation =
      paired_permutation_test(stat_deltas, seed, spec.iterations, two_sided);
  out.grid_tripped =
      out.permutation.p_value <= spec.alpha &&
      std::abs(out.permutation.observed_stat) >= spec.min_effect &&
      (two_sided ? out.permutation.observed_stat != 0.0
                 : out.permutation.observed_stat > 0.0);

  const std::vector<double> fdr = per_cell_fdr(diff, spec.metric);
  for (std::size_t i = 0; i < fdr.size(); ++i) {
    const CellDelta& d = diff.cells[i];
    const double delta = cell_metric_delta(d, spec.metric);
    if (fdr[i] <= spec.alpha &&
        direction_matches(spec.direction, orientation * delta) &&
        std::abs(delta) >= spec.min_effect) {
      out.tripped_cells.push_back({d.key, delta, fdr[i]});
    }
  }
  return out;
}

std::string GateResult::verdict_line() const {
  std::string line = tripped() ? "regression gate TRIPPED" : "gate clean";
  line += ": metric=";
  line += diff_metric_name(spec.metric);
  line += " direction=";
  line += gate_direction_name(spec.direction);
  line += " alpha=" + table::format_double(spec.alpha);
  line += " min_effect=" + table::format_double(spec.min_effect);
  line += "; grid permutation p=" + table::format_double(permutation.p_value);
  line += grid_tripped ? " (TRIPPED," : " (";
  line += "mean oriented delta " +
          table::format_double(permutation.observed_stat) + " over " +
          std::to_string(permutation.paired_cells) + " paired cell(s), " +
          std::to_string(permutation.iterations) + " resamples, seed " +
          std::to_string(seed) + ")";
  line += "; " + std::to_string(tripped_cells.size()) +
          " cell(s) over per-cell threshold";
  constexpr std::size_t kNamedCells = 4;
  for (std::size_t i = 0; i < tripped_cells.size() && i < kNamedCells; ++i) {
    const GateCellVerdict& c = tripped_cells[i];
    line += i == 0 ? ": " : ", ";
    line += c.key.label() + " (delta " + table::format_double(c.delta) +
            ", p_fdr " + table::format_double(c.p_value_fdr) + ")";
  }
  if (tripped_cells.size() > kNamedCells) {
    line += " [+" + std::to_string(tripped_cells.size() - kNamedCells) +
            " more]";
  }
  return line;
}

}  // namespace msa::campaign
