// Statistical regression gating: turns a cross-sweep diff into a CI
// pass/fail verdict. Two independent detectors feed one gate:
//
//  1. A whole-grid PAIRED PERMUTATION TEST over the matched cells. The
//     per-cell deltas are paired by axis values (diff_sweeps already did
//     the same-structure pairing — the discipline of comparing against a
//     partner with identical structure, varying only the thing under
//     study), and under the null hypothesis "the code change moved
//     nothing" each pair's sign is exchangeable. Randomly sign-flipping
//     the deltas therefore samples the null distribution of the mean
//     delta exactly, with no normality assumption and no per-cell
//     trial-count minimum. One campaign-level p-value answers "did the
//     success rate move at all", which single-cell CIs cannot: twenty
//     cells each drifting +3% is invisible per cell and glaring in the
//     grid statistic.
//
//  2. Per-cell Benjamini–Hochberg FDR flags (computed by diff_sweeps)
//     thresholded at the gate's alpha, for the opposite failure shape:
//     one cell swinging hard while the rest of the grid is flat.
//
// Everything is deterministic: the permutation PRNG is seeded from the
// two stores' grid fingerprints (gate_seed), the deltas are consumed in
// matched-cell order (ascending AxisKey), and the loop is single-
// threaded — so the same two stores yield byte-identical p-values
// regardless of sweep thread counts or shard layout, and a CI failure
// reproduces locally from the same artifacts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/compare.h"

namespace msa::campaign {

/// Which movement trips the gate. Directions are phrased in DEFENSE
/// terms and metric_orientation() maps them onto each metric's sign:
/// "regress" means the attack gained ground (success rate up, PSNR up,
/// denial rate down), the thing a defense CI must never let through.
enum class GateDirection : std::uint8_t {
  kRegress = 0,  ///< attack-favoring movement only (one-sided)
  kImprove = 1,  ///< defense-favoring movement only (one-sided)
  kAny = 2,      ///< movement in either direction (two-sided)
};

/// "regress" | "improve" | "any" — CLI spelling.
[[nodiscard]] const char* gate_direction_name(GateDirection d) noexcept;

/// Parses the CLI spelling; false on an unknown name.
[[nodiscard]] bool parse_gate_direction(std::string_view name,
                                        GateDirection* direction) noexcept;

/// +1 when a larger metric value favors the ATTACK (success rate,
/// reconstruction PSNR), -1 when it favors the defense (denial rate).
/// Oriented delta = orientation * (B - A): positive always means "the
/// defense regressed from A to B", whatever the metric.
[[nodiscard]] double metric_orientation(DiffMetric metric) noexcept;

/// What a `campaign_sweep diff --exit-on-significant` invocation gates
/// on. alpha doubles as the per-cell FDR level and the whole-grid
/// permutation threshold; min_effect is a practical-significance floor
/// (in the metric's own units) that both detectors must clear, so a
/// statistically-resolvable-but-tiny drift on a million-trial store
/// cannot fail the build.
struct GateSpec {
  DiffMetric metric = DiffMetric::kSuccessRate;
  GateDirection direction = GateDirection::kRegress;
  double alpha = kSignificanceAlpha;
  double min_effect = 0.0;
  std::uint64_t iterations = 10000;  ///< permutation resamples
};

/// Outcome of the whole-grid paired permutation test.
struct PermutationResult {
  std::size_t paired_cells = 0;
  /// Mean oriented delta over the paired cells — the observed statistic,
  /// already direction-adjusted so "large positive" always means "in the
  /// gated direction".
  double observed_stat = 0.0;
  std::uint64_t iterations = 0;
  /// Resamples whose statistic was at least as extreme as observed.
  std::uint64_t at_least_as_extreme = 0;
  /// (at_least_as_extreme + 1) / (iterations + 1) — the add-one rule
  /// keeps the estimate valid (never exactly 0) at finite iterations.
  double p_value = 1.0;
};

/// Sign-flip permutation test over paired deltas: statistic = mean
/// delta; each resample flips every pair's sign independently. One-sided
/// (two_sided = false) counts resamples with stat >= observed; two-sided
/// compares |stat| >= |observed|. Deterministic for a given (deltas,
/// seed, iterations) triple — single-threaded, fixed summation order.
/// No pairs or zero iterations yield the no-evidence p of 1.
[[nodiscard]] PermutationResult paired_permutation_test(
    const std::vector<double>& deltas, std::uint64_t seed,
    std::uint64_t iterations, bool two_sided);

/// Permutation seed derived from the two stores' grid fingerprints —
/// reproducible by anyone holding the same artifacts, different for
/// different experiment pairs, no wall clock anywhere.
[[nodiscard]] std::uint64_t gate_seed(std::uint64_t fingerprint_a,
                                      std::uint64_t fingerprint_b) noexcept;

/// One offending cell of a tripped gate.
struct GateCellVerdict {
  AxisKey key;
  double delta = 0.0;        ///< raw B - A delta of the gated metric
  double p_value_fdr = 1.0;  ///< BH-adjusted p (proportion metrics)
};

struct GateResult {
  GateSpec spec;
  std::uint64_t seed = 0;
  PermutationResult permutation;
  /// Whole-grid detector: permutation p <= alpha, observed statistic in
  /// the gated direction and >= min_effect.
  bool grid_tripped = false;
  /// Per-cell detector: cells FDR-significant at alpha whose delta is in
  /// the gated direction with |delta| >= min_effect, ascending AxisKey.
  /// Empty for the PSNR metric, which has no per-cell test — the
  /// permutation covers it.
  std::vector<GateCellVerdict> tripped_cells;

  [[nodiscard]] bool tripped() const noexcept {
    return grid_tripped || !tripped_cells.empty();
  }
  /// The one-line verdict `--exit-on-significant` prints: gate state,
  /// spec, grid p-value, and the offending cells by axis values (first
  /// few, then a count).
  [[nodiscard]] std::string verdict_line() const;
};

/// Evaluates `spec` over an axis-aligned diff. Per-cell p-values for the
/// success-rate metric reuse the diff's own Newcombe/BH columns; the
/// denial metric runs the same machinery over the denial counts; the
/// PSNR metric gates on the permutation test alone. A diff with no
/// matched cells trips nothing (p = 1) — CI should treat "the grids
/// don't overlap" as a configuration error upstream, not a regression.
[[nodiscard]] GateResult evaluate_gate(const DiffReport& diff,
                                       const GateSpec& spec,
                                       std::uint64_t seed);

}  // namespace msa::campaign
