#include "campaign/grid.h"

#include <stdexcept>
#include <utility>

#include "defense/presets.h"
#include "vitis/model_zoo.h"

namespace msa::campaign {

GridBuilder::GridBuilder(attack::ScenarioConfig base) : base_{std::move(base)} {}

GridBuilder& GridBuilder::defenses(std::vector<std::string> preset_names) {
  defenses_ = std::move(preset_names);
  return *this;
}

GridBuilder& GridBuilder::models(std::vector<std::string> model_names) {
  models_ = std::move(model_names);
  return *this;
}

GridBuilder& GridBuilder::attack_delays_s(std::vector<double> delays) {
  delays_ = std::move(delays);
  return *this;
}

GridBuilder& GridBuilder::scrubber_rates(std::vector<double> bytes_per_s) {
  scrubbers_ = std::move(bytes_per_s);
  return *this;
}

std::size_t GridBuilder::size() const noexcept {
  const std::size_t models = models_.empty() ? 1 : models_.size();
  return defenses_.size() * models * delays_.size() * scrubbers_.size();
}

std::vector<CampaignCell> GridBuilder::build() const {
  const std::vector<std::string> models =
      models_.empty() ? std::vector<std::string>{base_.model_name} : models_;
  for (const auto& m : models) {
    if (!vitis::zoo_has_model(m)) {
      throw std::invalid_argument("campaign: unknown zoo model: " + m);
    }
  }

  std::vector<CampaignCell> cells;
  cells.reserve(size());
  for (const auto& defense_name : defenses_) {
    // Throws on unknown preset names before any cell is emitted.
    const defense::DefensePreset& preset = defense::preset(defense_name);
    for (const auto& model : models) {
      for (const double delay : delays_) {
        for (const double scrubber : scrubbers_) {
          CampaignCell cell;
          cell.index = cells.size();
          cell.defense = defense_name;
          cell.model = model;
          cell.attack_delay_s = delay;
          cell.scrubber_bytes_per_s = scrubber;
          cell.config = preset.apply(base_);
          cell.config.model_name = model;
          cell.config.attack_delay_s = delay;
          cell.config.scrubber_bytes_per_s = scrubber;
          cells.push_back(std::move(cell));
        }
      }
    }
  }
  return cells;
}

}  // namespace msa::campaign
