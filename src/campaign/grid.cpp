#include "campaign/grid.h"

#include <bit>
#include <stdexcept>
#include <utility>

#include "defense/presets.h"
#include "vitis/model_zoo.h"

namespace msa::campaign {

GridBuilder::GridBuilder(attack::ScenarioConfig base) : base_{std::move(base)} {}

GridBuilder& GridBuilder::defenses(std::vector<std::string> preset_names) {
  defenses_ = std::move(preset_names);
  return *this;
}

GridBuilder& GridBuilder::models(std::vector<std::string> model_names) {
  models_ = std::move(model_names);
  return *this;
}

GridBuilder& GridBuilder::attack_delays_s(std::vector<double> delays) {
  delays_ = std::move(delays);
  return *this;
}

GridBuilder& GridBuilder::scrubber_rates(std::vector<double> bytes_per_s) {
  scrubbers_ = std::move(bytes_per_s);
  return *this;
}

GridBuilder& GridBuilder::shard(std::uint32_t shard_index,
                                std::uint32_t shard_count) {
  if (shard_count == 0 || shard_index >= shard_count) {
    throw std::invalid_argument("campaign: bad shard " +
                                std::to_string(shard_index) + "/" +
                                std::to_string(shard_count));
  }
  shard_index_ = shard_index;
  shard_count_ = shard_count;
  return *this;
}

std::size_t GridBuilder::full_size() const noexcept {
  const std::size_t models = models_.empty() ? 1 : models_.size();
  return defenses_.size() * models * delays_.size() * scrubbers_.size();
}

std::size_t GridBuilder::size() const noexcept {
  const std::size_t full = full_size();
  // Cells i with i % count == index: one per full stride plus the ragged
  // head.
  return full / shard_count_ + (shard_index_ < full % shard_count_ ? 1 : 0);
}

std::uint64_t GridBuilder::fingerprint() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix_byte = [&h](std::uint8_t b) noexcept {
    h ^= b;
    h *= 0x100000001b3ULL;
  };
  const auto mix_u64 = [&](std::uint64_t v) noexcept {
    for (int shift = 0; shift < 64; shift += 8) {
      mix_byte(static_cast<std::uint8_t>((v >> shift) & 0xff));
    }
  };
  const auto mix_str = [&](const std::string& s) noexcept {
    mix_u64(s.size());  // length prefix keeps {"a","b"} != {"ab"}
    for (const char c : s) mix_byte(static_cast<std::uint8_t>(c));
  };

  mix_str(base_.model_name);
  mix_u64(base_.image_width);
  mix_u64(base_.image_height);
  mix_u64(base_.image_seed);
  mix_u64(defenses_.size());
  for (const auto& d : defenses_) mix_str(d);
  mix_u64(models_.size());
  for (const auto& m : models_) mix_str(m);
  mix_u64(delays_.size());
  for (const double d : delays_) mix_u64(std::bit_cast<std::uint64_t>(d));
  mix_u64(scrubbers_.size());
  for (const double s : scrubbers_) mix_u64(std::bit_cast<std::uint64_t>(s));
  return h;
}

std::vector<CampaignCell> GridBuilder::build() const {
  const std::vector<std::string> models =
      models_.empty() ? std::vector<std::string>{base_.model_name} : models_;
  for (const auto& m : models) {
    if (!vitis::zoo_has_model(m)) {
      throw std::invalid_argument("campaign: unknown zoo model: " + m);
    }
  }

  std::vector<CampaignCell> cells;
  cells.reserve(size());
  std::size_t global_index = 0;
  for (const auto& defense_name : defenses_) {
    // Throws on unknown preset names before any cell is emitted.
    const defense::DefensePreset& preset = defense::preset(defense_name);
    for (const auto& model : models) {
      for (const double delay : delays_) {
        for (const double scrubber : scrubbers_) {
          const std::size_t index = global_index++;
          if (index % shard_count_ != shard_index_) continue;
          CampaignCell cell;
          cell.index = index;
          cell.defense = defense_name;
          cell.model = model;
          cell.attack_delay_s = delay;
          cell.scrubber_bytes_per_s = scrubber;
          cell.config = preset.apply(base_);
          cell.config.model_name = model;
          cell.config.attack_delay_s = delay;
          cell.config.scrubber_bytes_per_s = scrubber;
          cells.push_back(std::move(cell));
        }
      }
    }
  }
  return cells;
}

}  // namespace msa::campaign
