#include "campaign/grid.h"

#include <bit>
#include <stdexcept>
#include <utility>

namespace msa::campaign {

GridBuilder::GridBuilder(attack::ScenarioConfig base) : base_{std::move(base)} {
  // The legacy four axes, each with its neutral value, so a fresh builder
  // yields exactly one baseline cell and a sharded/resumed v1-era sweep
  // keeps its historical axis order.
  axes_.push_back({"defense", AxisKind::kString,
                   {AxisValue::of_string("baseline")}});
  axes_.push_back({"model", AxisKind::kString,
                   {AxisValue::of_string(base_.model_name)}});
  axes_.push_back({"delay_s", AxisKind::kDouble, {AxisValue::of_number(0.0)}});
  axes_.push_back({"scrubber_Bps", AxisKind::kDouble,
                   {AxisValue::of_number(0.0)}});
}

GridBuilder& GridBuilder::axis(const std::string& name,
                               std::vector<AxisValue> values) {
  const AxisDescriptor& descriptor = axis_descriptor(name);  // throws unknown
  if (values.empty()) {
    throw std::invalid_argument("campaign: axis '" + name +
                                "' needs at least one value");
  }
  for (const AxisValue& v : values) {
    if (v.kind != descriptor.kind) {
      throw std::invalid_argument(
          std::string("campaign: axis '") + name + "' takes " +
          axis_kind_name(descriptor.kind) + " values, got " +
          axis_kind_name(v.kind));
    }
  }
  for (AxisSpec& existing : axes_) {
    if (existing.name == name) {
      existing.values = std::move(values);
      return *this;
    }
  }
  axes_.push_back({name, descriptor.kind, std::move(values)});
  return *this;
}

GridBuilder& GridBuilder::defenses(std::vector<std::string> preset_names) {
  std::vector<AxisValue> values;
  values.reserve(preset_names.size());
  for (auto& name : preset_names) {
    values.push_back(AxisValue::of_string(std::move(name)));
  }
  return axis("defense", std::move(values));
}

GridBuilder& GridBuilder::models(std::vector<std::string> model_names) {
  // Historical contract: an empty model list means "the base model".
  if (model_names.empty()) model_names.push_back(base_.model_name);
  std::vector<AxisValue> values;
  values.reserve(model_names.size());
  for (auto& name : model_names) {
    values.push_back(AxisValue::of_string(std::move(name)));
  }
  return axis("model", std::move(values));
}

GridBuilder& GridBuilder::attack_delays_s(std::vector<double> delays) {
  std::vector<AxisValue> values;
  values.reserve(delays.size());
  for (const double d : delays) values.push_back(AxisValue::of_number(d));
  return axis("delay_s", std::move(values));
}

GridBuilder& GridBuilder::scrubber_rates(std::vector<double> bytes_per_s) {
  std::vector<AxisValue> values;
  values.reserve(bytes_per_s.size());
  for (const double b : bytes_per_s) values.push_back(AxisValue::of_number(b));
  return axis("scrubber_Bps", std::move(values));
}

GridBuilder& GridBuilder::shard(std::uint32_t shard_index,
                                std::uint32_t shard_count) {
  if (shard_count == 0 || shard_index >= shard_count) {
    throw std::invalid_argument("campaign: bad shard " +
                                std::to_string(shard_index) + "/" +
                                std::to_string(shard_count));
  }
  shard_index_ = shard_index;
  shard_count_ = shard_count;
  return *this;
}

std::size_t GridBuilder::full_size() const noexcept {
  std::size_t product = 1;
  for (const AxisSpec& axis : axes_) product *= axis.values.size();
  return product;
}

std::size_t GridBuilder::size() const noexcept {
  const std::size_t full = full_size();
  // Cells i with i % count == index: one per full stride plus the ragged
  // head.
  return full / shard_count_ + (shard_index_ < full % shard_count_ ? 1 : 0);
}

std::uint64_t GridBuilder::fingerprint() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix_byte = [&h](std::uint8_t b) noexcept {
    h ^= b;
    h *= 0x100000001b3ULL;
  };
  const auto mix_u64 = [&](std::uint64_t v) noexcept {
    for (int shift = 0; shift < 64; shift += 8) {
      mix_byte(static_cast<std::uint8_t>((v >> shift) & 0xff));
    }
  };
  const auto mix_str = [&](const std::string& s) noexcept {
    mix_u64(s.size());  // length prefix keeps {"a","b"} != {"ab"}
    for (const char c : s) mix_byte(static_cast<std::uint8_t>(c));
  };
  const auto mix_value = [&](const AxisValue& v) noexcept {
    mix_byte(static_cast<std::uint8_t>(v.kind));
    switch (v.kind) {
      case AxisKind::kString:
      case AxisKind::kEnum:
        mix_str(v.str);
        break;
      case AxisKind::kDouble:
        mix_u64(std::bit_cast<std::uint64_t>(v.num));
        break;
      case AxisKind::kBool:
        mix_byte(v.flag ? 1 : 0);
        break;
    }
  };

  // Scheme tag: v2 fingerprints can never collide with the old four-axis
  // stream by construction, so a v1 store is only accepted through the
  // manifest version gate, never by accident.
  mix_str("msa-axis-schema-v2");

  // Every registered axis's BASE value, swept or not. This is the
  // satellite bugfix: experiments differing only in an unswept knob
  // (power_cycled, corrupt_fraction, ...) get distinct fingerprints and
  // can no longer share a store path.
  for (const AxisDescriptor& axis : axis_registry()) {
    mix_str(axis.name);
    mix_value(axis.read(base_));
  }

  // The swept schema: ordered axis names and their ordered value lists.
  mix_u64(axes_.size());
  for (const AxisSpec& axis : axes_) {
    mix_str(axis.name);
    mix_byte(static_cast<std::uint8_t>(axis.kind));
    mix_u64(axis.values.size());
    for (const AxisValue& v : axis.values) mix_value(v);
  }
  return h;
}

void GridBuilder::validate() const {
  for (const AxisSpec& axis : axes_) {
    const AxisDescriptor& descriptor = axis_descriptor(axis.name);
    for (std::size_t i = 0; i < axis.values.size(); ++i) {
      const std::string err = check_axis_value(descriptor, axis.values[i]);
      if (!err.empty()) throw std::invalid_argument("campaign: " + err);
      for (std::size_t j = i + 1; j < axis.values.size(); ++j) {
        if (axis.values[i] == axis.values[j]) {
          throw std::invalid_argument(
              "campaign: axis '" + axis.name + "' has duplicate value '" +
              axis.values[i].label() +
              "' (every value on an axis must be distinct)");
        }
      }
    }
  }
}

std::vector<CampaignCell> GridBuilder::build() const {
  validate();

  std::vector<const AxisDescriptor*> descriptors;
  descriptors.reserve(axes_.size());
  for (const AxisSpec& axis : axes_) {
    descriptors.push_back(&axis_descriptor(axis.name));
  }

  std::vector<CampaignCell> cells;
  cells.reserve(size());
  const std::size_t full = full_size();
  // Odometer over the axis value lists, last axis fastest — the same
  // nested-loop order (first axis outermost) the four-loop code used, so
  // cell indices are stable across the refactor.
  std::vector<std::size_t> odo(axes_.size(), 0);
  for (std::size_t index = 0; index < full; ++index) {
    if (index % shard_count_ == shard_index_) {
      CampaignCell cell;
      cell.index = index;
      cell.config = base_;
      cell.coords.reserve(axes_.size());
      for (std::size_t a = 0; a < axes_.size(); ++a) {
        const AxisValue& value = axes_[a].values[odo[a]];
        descriptors[a]->apply(cell.config, value);
        cell.coords.push_back({axes_[a].name, value});
      }
      cells.push_back(std::move(cell));
    }
    for (std::size_t a = axes_.size(); a-- > 0;) {
      if (++odo[a] < axes_[a].values.size()) break;
      odo[a] = 0;
    }
  }
  return cells;
}

}  // namespace msa::campaign
