// Cartesian sweep grids over attack::ScenarioConfig. A campaign is the
// paper's defense-matrix experiment scaled up: every combination of
// post-termination delay, scrubber throughput, defense preset, and model
// becomes one cell, and each cell is scored over a number of independent
// trials. The grid is built eagerly and in a deterministic order so a
// sweep's output is a pure function of (grid, trials), never of the
// thread schedule that executed it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attack/scenario.h"

namespace msa::campaign {

/// One point of the sweep: the fully-applied scenario config plus the
/// axis coordinates it came from (kept for report labelling).
struct CampaignCell {
  std::size_t index = 0;            ///< position in deterministic grid order
  std::string defense;              ///< defense preset name
  std::string model;                ///< zoo model name
  double attack_delay_s = 0.0;
  double scrubber_bytes_per_s = 0.0;
  attack::ScenarioConfig config;    ///< preset-applied, axes folded in
};

/// Builds the cartesian product defense x model x delay x scrubber over a
/// shared base config. Axis setters replace the axis wholesale; every
/// axis defaults to a single neutral value so a builder with no setters
/// called yields exactly one cell (the base scenario under "baseline").
class GridBuilder {
 public:
  explicit GridBuilder(attack::ScenarioConfig base = {});

  GridBuilder& defenses(std::vector<std::string> preset_names);
  GridBuilder& models(std::vector<std::string> model_names);
  GridBuilder& attack_delays_s(std::vector<double> delays);
  GridBuilder& scrubber_rates(std::vector<double> bytes_per_s);

  /// Restricts build() to the cells whose global index i satisfies
  /// i % shard_count == shard_index — a deterministic, disjoint partition
  /// of the full grid so N processes can sweep N slices into separate
  /// stores and a merge reassembles them in grid order. Cell indices stay
  /// GLOBAL (full-grid) under sharding. Throws std::invalid_argument for
  /// shard_count == 0 or shard_index >= shard_count.
  GridBuilder& shard(std::uint32_t shard_index, std::uint32_t shard_count);

  /// Number of cells build() will produce (the shard slice when sharded).
  [[nodiscard]] std::size_t size() const noexcept;

  /// Cells in the FULL grid, ignoring shard().
  [[nodiscard]] std::size_t full_size() const noexcept;

  /// Stable 64-bit identity of the full grid: FNV-1a over a canonical
  /// serialization of the axes plus the base scenario's model/image
  /// parameters. Identical for every shard of the same sweep — it is the
  /// value a campaign store's manifest pins so resume/merge can reject a
  /// store from a different experiment. (Other base-config fields are not
  /// folded in; callers varying those must not reuse store paths.)
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  /// Materializes the grid (or its shard slice). Order is the nested loop
  /// defense > model > delay > scrubber, so cell indices are stable
  /// across runs and thread counts. Throws std::invalid_argument for an
  /// unknown defense preset or model name.
  [[nodiscard]] std::vector<CampaignCell> build() const;

 private:
  attack::ScenarioConfig base_;
  std::vector<std::string> defenses_{"baseline"};
  std::vector<std::string> models_;     // empty = keep base_.model_name
  std::vector<double> delays_{0.0};
  std::vector<double> scrubbers_{0.0};
  std::uint32_t shard_index_ = 0;
  std::uint32_t shard_count_ = 1;
};

}  // namespace msa::campaign
