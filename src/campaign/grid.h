// Cartesian sweep grids over attack::ScenarioConfig. A campaign is the
// paper's defense-matrix experiment scaled up: every combination of
// post-termination delay, scrubber throughput, defense preset, and model
// becomes one cell, and each cell is scored over a number of independent
// trials. The grid is built eagerly and in a deterministic order so a
// sweep's output is a pure function of (grid, trials), never of the
// thread schedule that executed it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attack/scenario.h"

namespace msa::campaign {

/// One point of the sweep: the fully-applied scenario config plus the
/// axis coordinates it came from (kept for report labelling).
struct CampaignCell {
  std::size_t index = 0;            ///< position in deterministic grid order
  std::string defense;              ///< defense preset name
  std::string model;                ///< zoo model name
  double attack_delay_s = 0.0;
  double scrubber_bytes_per_s = 0.0;
  attack::ScenarioConfig config;    ///< preset-applied, axes folded in
};

/// Builds the cartesian product defense x model x delay x scrubber over a
/// shared base config. Axis setters replace the axis wholesale; every
/// axis defaults to a single neutral value so a builder with no setters
/// called yields exactly one cell (the base scenario under "baseline").
class GridBuilder {
 public:
  explicit GridBuilder(attack::ScenarioConfig base = {});

  GridBuilder& defenses(std::vector<std::string> preset_names);
  GridBuilder& models(std::vector<std::string> model_names);
  GridBuilder& attack_delays_s(std::vector<double> delays);
  GridBuilder& scrubber_rates(std::vector<double> bytes_per_s);

  /// Number of cells build() will produce.
  [[nodiscard]] std::size_t size() const noexcept;

  /// Materializes the grid. Order is the nested loop
  /// defense > model > delay > scrubber, so cell indices are stable
  /// across runs and thread counts. Throws std::invalid_argument for an
  /// unknown defense preset or model name.
  [[nodiscard]] std::vector<CampaignCell> build() const;

 private:
  attack::ScenarioConfig base_;
  std::vector<std::string> defenses_{"baseline"};
  std::vector<std::string> models_;     // empty = keep base_.model_name
  std::vector<double> delays_{0.0};
  std::vector<double> scrubbers_{0.0};
};

}  // namespace msa::campaign
