// Cartesian sweep grids over attack::ScenarioConfig. A campaign is the
// paper's defense-matrix experiment scaled up: every combination of the
// swept axis values becomes one cell, and each cell is scored over a
// number of independent trials. The grid is built eagerly and in a
// deterministic order so a sweep's output is a pure function of (grid,
// trials), never of the thread schedule that executed it.
//
// Axes are schema-driven (campaign/axis.h): any registered
// ScenarioConfig knob can be swept with axis(name, values); the four
// historical setters are thin wrappers over the registry's legacy axes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attack/scenario.h"
#include "campaign/axis.h"

namespace msa::campaign {

/// One point of the sweep: the fully-applied scenario config plus the
/// ordered axis coordinates it came from (the structural identity used
/// for report labelling and cross-sweep alignment).
struct CampaignCell {
  std::size_t index = 0;             ///< position in deterministic grid order
  std::vector<AxisCoordinate> coords;  ///< one entry per grid axis, in order
  attack::ScenarioConfig config;     ///< base config with every axis applied

  /// Value of `axis` on this cell, nullptr when the grid did not sweep it.
  [[nodiscard]] const AxisValue* coord(std::string_view axis) const {
    return find_coord(coords, axis);
  }
};

/// Builds the cartesian product over an ordered axis list applied to a
/// shared base config. A fresh builder carries the four legacy axes
/// (defense, model, delay_s, scrubber_Bps), each with a single neutral
/// value, so a builder with no setters called yields exactly one cell
/// (the base scenario under "baseline"). Setters replace an axis's value
/// list wholesale; axis() on a new name appends that axis to the sweep
/// order.
class GridBuilder {
 public:
  explicit GridBuilder(attack::ScenarioConfig base = {});

  /// Generic axis setter: `name` must be registered (campaign/axis.h),
  /// `values` non-empty and of the axis's kind — throws
  /// std::invalid_argument otherwise. Value-level validation (unknown
  /// presets, out-of-range numbers, duplicates) happens in validate()/
  /// build().
  GridBuilder& axis(const std::string& name, std::vector<AxisValue> values);

  // Legacy wrappers over axis() — the historical four-axis surface.
  GridBuilder& defenses(std::vector<std::string> preset_names);
  GridBuilder& models(std::vector<std::string> model_names);
  GridBuilder& attack_delays_s(std::vector<double> delays);
  GridBuilder& scrubber_rates(std::vector<double> bytes_per_s);

  /// Restricts build() to the cells whose global index i satisfies
  /// i % shard_count == shard_index — a deterministic, disjoint partition
  /// of the full grid so N processes can sweep N slices into separate
  /// stores and a merge reassembles them in grid order. Cell indices stay
  /// GLOBAL (full-grid) under sharding. Throws std::invalid_argument for
  /// shard_count == 0 or shard_index >= shard_count.
  GridBuilder& shard(std::uint32_t shard_index, std::uint32_t shard_count);

  /// Number of cells build() will produce (the shard slice when sharded).
  [[nodiscard]] std::size_t size() const noexcept;

  /// Cells in the FULL grid, ignoring shard().
  [[nodiscard]] std::size_t full_size() const noexcept;

  /// The ordered axis schema build() enumerates — what the store
  /// manifest serializes so readers know a sweep's structure.
  [[nodiscard]] const std::vector<AxisSpec>& axis_schema() const noexcept {
    return axes_;
  }

  /// Stable 64-bit identity of the full grid: FNV-1a over the base value
  /// of EVERY registered axis (swept or not — two experiments differing
  /// only in, say, power_cycled can never share a store path) plus the
  /// ordered swept-axis schema. Identical for every shard of the same
  /// sweep — it is the value a campaign store's manifest pins so
  /// resume/merge can reject a store from a different experiment. The
  /// scheme is versioned: v1 stores carry the old four-axis fingerprint
  /// and are accepted on read via the manifest version gate, not by
  /// fingerprint equality.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  /// Validates every axis value list without materializing cells:
  /// duplicate values on an axis (colliding axis keys downstream) and
  /// values the axis rejects (unknown preset/model, out-of-range number)
  /// throw std::invalid_argument naming the axis. build() calls this.
  void validate() const;

  /// Materializes the grid (or its shard slice). Order is the nested
  /// loop over axes in schema order (first axis outermost), so cell
  /// indices are stable across runs and thread counts. Throws
  /// std::invalid_argument on validate() failure.
  [[nodiscard]] std::vector<CampaignCell> build() const;

 private:
  attack::ScenarioConfig base_;
  std::vector<AxisSpec> axes_;
  std::uint32_t shard_index_ = 0;
  std::uint32_t shard_count_ = 1;
};

}  // namespace msa::campaign
