#include "campaign/report.h"

#include "campaign/table.h"

namespace msa::campaign {

// Value formatting lives in campaign/table.h, shared with the stats and
// diff emitters: format_double is shortest-round-trip-exact, csv_escape
// is RFC-4180 (quoting on comma/quote/newline/CR), json_double spells
// infinities as the +/-1e999 sentinels (documented in README).
using table::csv_escape;
using table::format_double;
using table::json_double;
using table::json_escape;

namespace {

// label() is already the canonical text for numbers/bools; string-kind
// labels additionally need RFC-4180 quoting.
std::string csv_value(const AxisValue& v) {
  return v.kind == AxisKind::kString || v.kind == AxisKind::kEnum
             ? csv_escape(v.str)
             : v.label();
}

std::string json_value(const AxisValue& v) {
  switch (v.kind) {
    case AxisKind::kString:
    case AxisKind::kEnum:
      return '"' + json_escape(v.str) + '"';
    case AxisKind::kDouble:
      return json_double(v.num);
    case AxisKind::kBool:
      return v.flag ? "true" : "false";
  }
  return "null";
}

}  // namespace

void CellStats::accumulate(const attack::ScenarioResult& result) {
  ++trials;
  if (result.full_success()) ++full_successes;
  if (result.model_identified_correctly) ++model_identified;
  if (result.denied) {
    ++denials;
    if (first_denial_reason.empty()) first_denial_reason = result.denial_reason;
  }
  mean_pixel_match += result.pixel_match;
  mean_psnr_db += result.psnr;
  mean_descriptor_pixel_match += result.descriptor_pixel_match;
}

void CellStats::finalize() {
  if (trials == 0) return;
  const auto n = static_cast<double>(trials);
  mean_pixel_match /= n;
  mean_psnr_db /= n;
  mean_descriptor_pixel_match /= n;
}

std::size_t SweepReport::total_trials() const noexcept {
  std::size_t n = 0;
  for (const auto& c : cells) n += c.trials;
  return n;
}

std::size_t SweepReport::total_full_successes() const noexcept {
  std::size_t n = 0;
  for (const auto& c : cells) n += c.full_successes;
  return n;
}

std::size_t SweepReport::total_denials() const noexcept {
  std::size_t n = 0;
  for (const auto& c : cells) n += c.denials;
  return n;
}

std::string SweepReport::to_csv() const {
  // Axis columns mirror the sweep's schema (first cell's coordinate
  // order); an empty report falls back to the legacy four so the header
  // shape is stable for header-only output.
  std::string out = "index";
  if (cells.empty()) {
    for (const std::string& name : legacy_axis_names()) out += ',' + name;
  } else {
    for (const AxisCoordinate& c : cells.front().coords) out += ',' + c.axis;
  }
  out +=
      ",trials,full_successes,model_identified,denials,success_rate,"
      "mean_pixel_match,mean_psnr_db,mean_descriptor_pixel_match,"
      "first_denial_reason\n";
  for (const auto& c : cells) {
    out += std::to_string(c.index);
    for (const AxisCoordinate& coord : c.coords) {
      out += ',' + csv_value(coord.value);
    }
    out += ',' + std::to_string(c.trials);
    out += ',' + std::to_string(c.full_successes);
    out += ',' + std::to_string(c.model_identified);
    out += ',' + std::to_string(c.denials);
    out += ',' + format_double(c.success_rate());
    out += ',' + format_double(c.mean_pixel_match);
    out += ',' + format_double(c.mean_psnr_db);
    out += ',' + format_double(c.mean_descriptor_pixel_match);
    out += ',' + csv_escape(c.first_denial_reason);
    out += '\n';
  }
  return out;
}

std::string SweepReport::to_json() const {
  std::string out = "{\"cells\":[";
  bool first = true;
  for (const auto& c : cells) {
    if (!first) out += ',';
    first = false;
    out += "{\"index\":" + std::to_string(c.index);
    for (const AxisCoordinate& coord : c.coords) {
      out += ",\"" + json_escape(coord.axis) +
             "\":" + json_value(coord.value);
    }
    out += ",\"trials\":" + std::to_string(c.trials);
    out += ",\"full_successes\":" + std::to_string(c.full_successes);
    out += ",\"model_identified\":" + std::to_string(c.model_identified);
    out += ",\"denials\":" + std::to_string(c.denials);
    out += ",\"success_rate\":" + json_double(c.success_rate());
    out += ",\"mean_pixel_match\":" + json_double(c.mean_pixel_match);
    out += ",\"mean_psnr_db\":" + json_double(c.mean_psnr_db);
    out += ",\"mean_descriptor_pixel_match\":" +
           json_double(c.mean_descriptor_pixel_match);
    out += ",\"first_denial_reason\":\"" + json_escape(c.first_denial_reason) +
           "\"}";
  }
  out += "],\"totals\":{\"trials\":" + std::to_string(total_trials());
  out += ",\"full_successes\":" + std::to_string(total_full_successes());
  out += ",\"denials\":" + std::to_string(total_denials());
  out += "}}";
  return out;
}

}  // namespace msa::campaign
