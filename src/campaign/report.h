// Aggregated results of a campaign sweep. Aggregation is defined so the
// report is bit-identical for any worker-thread count: trials within a
// cell are accumulated in trial order, cells are stored in grid order,
// and serialization uses fixed formats (no locale, no pointers, no
// timestamps).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "attack/scenario.h"
#include "campaign/grid.h"

namespace msa::campaign {

/// Per-cell aggregate over `trials` independent scenario runs. The cell's
/// identity is its ordered axis coordinates (copied from the CampaignCell
/// it scored), so reports self-describe whatever axes the sweep used.
struct CellStats {
  std::size_t index = 0;
  std::vector<AxisCoordinate> coords;

  std::size_t trials = 0;
  std::size_t full_successes = 0;  ///< attack::is_full_success per trial
  std::size_t model_identified = 0;
  std::size_t denials = 0;            ///< a defense blocked an attack step
  double mean_pixel_match = 0.0;
  double mean_psnr_db = 0.0;          ///< img::psnr_db caps exact at 99 dB
  double mean_descriptor_pixel_match = 0.0;
  /// Denial reason of the earliest denied trial ("" when none denied).
  std::string first_denial_reason;

  /// Value of `axis` on this cell, nullptr when the sweep lacked it.
  [[nodiscard]] const AxisValue* coord(std::string_view axis) const {
    return find_coord(coords, axis);
  }
  /// Canonical "a=x/b=y" label — error messages, test diagnostics.
  [[nodiscard]] std::string coords_text() const { return coords_label(coords); }

  /// Folds one trial into the aggregate; must be called in trial order.
  void accumulate(const attack::ScenarioResult& result);
  /// Converts running sums into means; call once after the last trial.
  void finalize();

  [[nodiscard]] double success_rate() const noexcept {
    return trials == 0 ? 0.0
                       : static_cast<double>(full_successes) /
                             static_cast<double>(trials);
  }
};

/// Whole-sweep report: one CellStats per grid cell, in grid order.
struct SweepReport {
  std::vector<CellStats> cells;

  // Profile-cache telemetry for the run that produced this report
  // (deltas, 0 when the cache was off). Deliberately NOT serialized by
  // to_csv()/to_json(): reports stay byte-identical whether the cache
  // was on or off, which the campaign determinism tests require. The
  // counts themselves are schedule-invariant: the per-key once-latch
  // makes misses == distinct profile keys scored this run.
  std::uint64_t profile_cache_hits = 0;
  std::uint64_t profile_cache_misses = 0;
  std::uint64_t twin_boards_built = 0;
  std::uint64_t twin_boards_reused = 0;

  [[nodiscard]] std::size_t total_trials() const noexcept;
  [[nodiscard]] std::size_t total_full_successes() const noexcept;
  [[nodiscard]] std::size_t total_denials() const noexcept;

  /// RFC-4180-style CSV with a header row; axis columns come from the
  /// first cell's coordinates (the legacy four when the report is empty);
  /// strings are quoted when they contain a delimiter or quote.
  [[nodiscard]] std::string to_csv() const;
  /// Compact JSON: {"cells":[...],"totals":{...}} with one member per
  /// axis coordinate on each cell.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace msa::campaign
