#include "campaign/runner.h"

#include <algorithm>

#include "util/prng.h"

namespace msa::campaign {

CampaignRunner::CampaignRunner(CampaignOptions options)
    : threads_{options.threads != 0 ? options.threads
                                    : std::max(1u,
                                               std::thread::hardware_concurrency())},
      options_{std::move(options)} {
  pool_.reserve(threads_);
  try {
    for (unsigned i = 0; i < threads_; ++i) {
      pool_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // Partial spawn (std::system_error on resource exhaustion): the
    // destructor won't run, so join the threads that did start before
    // letting the exception escape.
    {
      const std::lock_guard lock{mutex_};
      stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : pool_) t.join();
    throw;
  }
}

CampaignRunner::~CampaignRunner() {
  {
    const std::lock_guard lock{mutex_};
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : pool_) t.join();
}

CellStats CampaignRunner::score_cell(const CampaignCell& cell, unsigned trials,
                                     std::uint64_t trial_salt) {
  CellStats stats;
  stats.index = cell.index;
  stats.defense = cell.defense;
  stats.model = cell.model;
  stats.attack_delay_s = cell.attack_delay_s;
  stats.scrubber_bytes_per_s = cell.scrubber_bytes_per_s;

  for (unsigned trial = 0; trial < trials; ++trial) {
    attack::ScenarioConfig cfg = cell.config;
    if (trial > 0) {
      // Fresh board layout and input per trial, derived only from
      // (cell, trial, salt) so any thread may run it.
      std::uint64_t stream = trial_salt + trial +
                             (static_cast<std::uint64_t>(cell.index) << 32);
      cfg.system.seed ^= util::splitmix64(stream);
      cfg.image_seed ^= util::splitmix64(stream);
    }
    stats.accumulate(attack::run_scenario(cfg));
  }
  stats.finalize();
  return stats;
}

SweepReport CampaignRunner::run(const GridBuilder& grid) {
  return run(grid.build());
}

SweepReport CampaignRunner::run(const std::vector<CampaignCell>& cells) {
  SweepReport report;
  report.cells.resize(cells.size());
  if (cells.empty()) return report;

  {
    const std::lock_guard lock{mutex_};
    batch_cells_ = &cells;
    batch_stats_ = &report.cells;
    batch_size_ = cells.size();
    next_index_ = 0;
    cells_done_ = 0;
    in_flight_ = 0;
    batch_error_ = nullptr;
    ++batch_generation_;
  }
  work_cv_.notify_all();

  {
    std::unique_lock lock{mutex_};
    done_cv_.wait(lock, [this] {
      return next_index_ >= batch_size_ && in_flight_ == 0;
    });
    batch_cells_ = nullptr;
    batch_stats_ = nullptr;
    if (batch_error_) std::rethrow_exception(batch_error_);
  }
  return report;
}

void CampaignRunner::worker_loop() {
  std::uint64_t seen_generation = 0;
  while (true) {
    std::unique_lock lock{mutex_};
    work_cv_.wait(lock, [&] {
      return stopping_ ||
             (batch_generation_ != seen_generation && next_index_ < batch_size_);
    });
    if (stopping_) return;
    seen_generation = batch_generation_;

    while (next_index_ < batch_size_) {
      const std::size_t index = next_index_++;
      const CampaignCell& cell = (*batch_cells_)[index];
      ++in_flight_;
      lock.unlock();

      CellStats stats;
      std::exception_ptr error;
      try {
        stats = score_cell(cell, options_.trials_per_cell, options_.trial_salt);
      } catch (...) {
        error = std::current_exception();
      }

      lock.lock();
      if (error) {
        if (!batch_error_) batch_error_ = error;
        next_index_ = batch_size_;  // abandon the rest of the batch
      } else {
        (*batch_stats_)[index] = std::move(stats);
        ++cells_done_;
        if (options_.on_cell_done) {
          // Invoke the hook outside the pool lock (a slow hook must not
          // stall cell claiming); hook_mutex_ keeps invocations
          // serialized. A throwing hook must not escape the worker
          // thread (std::terminate) — surface it like a cell error.
          const std::size_t done = cells_done_;
          const std::size_t total = batch_size_;
          lock.unlock();
          std::exception_ptr hook_error;
          try {
            const std::lock_guard hook_lock{hook_mutex_};
            options_.on_cell_done(done, total);
          } catch (...) {
            hook_error = std::current_exception();
          }
          lock.lock();
          if (hook_error) {
            if (!batch_error_) batch_error_ = hook_error;
            next_index_ = batch_size_;
          }
        }
      }
      --in_flight_;
      if (next_index_ >= batch_size_ && in_flight_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

}  // namespace msa::campaign
