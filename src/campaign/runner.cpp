#include "campaign/runner.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/campaign_store.h"
#include "util/monotime.h"
#include "util/prng.h"

namespace msa::campaign {

namespace {

// Pool metrics (obs/metrics.h references are stable for the process).
// Updates are relaxed atomics plus two clock reads per cell — nothing
// here feeds back into results, so reports stay byte-identical whether
// anyone reads the registry or not.
obs::Counter& cells_metric() {
  static obs::Counter& c = obs::counter("campaign.cells");
  return c;
}
obs::Counter& trials_metric() {
  static obs::Counter& c = obs::counter("campaign.trials");
  return c;
}
obs::Histogram& queue_wait_metric() {
  static obs::Histogram& h = obs::histogram("campaign.queue_wait_ns");
  return h;
}
obs::Histogram& cell_duration_metric() {
  static obs::Histogram& h = obs::histogram("campaign.cell_ns");
  return h;
}

}  // namespace

CampaignRunner::CampaignRunner(CampaignOptions options)
    : threads_{options.threads != 0 ? options.threads
                                    : std::max(1u,
                                               std::thread::hardware_concurrency())},
      options_{std::move(options)} {
  pool_.reserve(threads_);
  try {
    for (unsigned i = 0; i < threads_; ++i) {
      pool_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // Partial spawn (std::system_error on resource exhaustion): the
    // destructor won't run, so join the threads that did start before
    // letting the exception escape.
    {
      const std::lock_guard lock{mutex_};
      stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : pool_) t.join();
    throw;
  }
}

CampaignRunner::~CampaignRunner() {
  {
    const std::lock_guard lock{mutex_};
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : pool_) t.join();
}

CellStats CampaignRunner::score_cell(const CampaignCell& cell, unsigned trials,
                                     std::uint64_t trial_salt,
                                     const TrialHook& on_trial,
                                     attack::ProfileCache* profiles) {
  CellStats stats;
  stats.index = cell.index;
  stats.coords = cell.coords;

  for (unsigned trial = 0; trial < trials; ++trial) {
    TRACE_SPAN("campaign", "trial");
    trials_metric().add();
    attack::ScenarioConfig cfg = cell.config;
    if (trial > 0) {
      // Fresh board layout and input per trial, derived only from
      // (cell, trial, salt) so any thread may run it.
      std::uint64_t stream = trial_salt + trial +
                             (static_cast<std::uint64_t>(cell.index) << 32);
      cfg.system.seed ^= util::splitmix64(stream);
      cfg.image_seed ^= util::splitmix64(stream);
    }
    const attack::ScenarioResult result = attack::run_scenario(cfg, profiles);
    if (on_trial) on_trial(trial, result);
    stats.accumulate(result);
  }
  stats.finalize();
  return stats;
}

SweepReport CampaignRunner::run(const GridBuilder& grid) {
  return run(grid.build());
}

SweepReport CampaignRunner::run(const GridBuilder& grid,
                                persist::CampaignStore& store,
                                std::size_t max_new_cells) {
  return run(grid.build(), store, max_new_cells);
}

CampaignRunner::CacheCounterSnapshot CampaignRunner::cache_counters() {
  // The profile cache publishes onto the process-wide metrics registry
  // (attack/profile_cache.cpp); per-run report telemetry is the delta
  // across a run() call. Reading relaxed counters while quiescent (run()
  // snapshots before workers start and after they drain) is exact.
  return CacheCounterSnapshot{
      obs::counter("cache.profile_hits").value(),
      obs::counter("cache.profile_misses").value(),
      obs::counter("cache.twin_boards_built").value(),
      obs::counter("cache.twin_boards_reused").value(),
  };
}

void CampaignRunner::fill_cache_stats(SweepReport& report,
                                      const CacheCounterSnapshot& before) {
  const CacheCounterSnapshot now = cache_counters();
  report.profile_cache_hits = now.hits - before.hits;
  report.profile_cache_misses = now.misses - before.misses;
  report.twin_boards_built = now.boards_built - before.boards_built;
  report.twin_boards_reused = now.boards_reused - before.boards_reused;
}

SweepReport CampaignRunner::run(const std::vector<CampaignCell>& cells) {
  SweepReport report;
  const CacheCounterSnapshot before = cache_counters();
  StaticCellSource source{cells};
  report.cells = execute(source, nullptr);
  fill_cache_stats(report, before);
  return report;
}

SweepReport CampaignRunner::run(CellSource& source) {
  SweepReport report;
  const CacheCounterSnapshot before = cache_counters();
  report.cells = execute(source, nullptr);
  fill_cache_stats(report, before);
  std::sort(report.cells.begin(), report.cells.end(),
            [](const CellStats& a, const CellStats& b) {
              return a.index < b.index;
            });
  return report;
}

SweepReport CampaignRunner::run(CellSource& source,
                                persist::CampaignStore& store) {
  const persist::StoreManifest& manifest = store.manifest();
  if (manifest.trials_per_cell != options_.trials_per_cell ||
      manifest.trial_salt != options_.trial_salt) {
    throw std::invalid_argument(
        "campaign: store was written with different trials/salt than this "
        "runner");
  }
  SweepReport report;
  const CacheCounterSnapshot before = cache_counters();
  report.cells = execute(source, &store);
  fill_cache_stats(report, before);
  std::sort(report.cells.begin(), report.cells.end(),
            [](const CellStats& a, const CellStats& b) {
              return a.index < b.index;
            });
  return report;
}

SweepReport CampaignRunner::run(const std::vector<CampaignCell>& cells,
                                persist::CampaignStore& store,
                                std::size_t max_new_cells) {
  const persist::StoreManifest& manifest = store.manifest();
  if (manifest.trials_per_cell != options_.trials_per_cell ||
      manifest.trial_salt != options_.trial_salt) {
    throw std::invalid_argument(
        "campaign: store was written with different trials/salt than this "
        "runner");
  }

  SweepReport report;
  report.cells.resize(cells.size());
  std::vector<CampaignCell> pending;
  std::vector<std::size_t> pending_pos;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CampaignCell& cell = cells[i];
    if (cell.index >= manifest.grid_cells ||
        cell.index % manifest.shard_count != manifest.shard_index) {
      throw std::invalid_argument(
          "campaign: cell " + std::to_string(cell.index) +
          " does not belong to store shard " +
          std::to_string(manifest.shard_index) + "/" +
          std::to_string(manifest.shard_count));
    }
    if (const CellStats* done = store.completed_stats(cell.index)) {
      report.cells[i] = *done;  // resume: skip, reuse the stored bytes
    } else {
      pending.push_back(cell);
      pending_pos.push_back(i);
    }
  }
  if (max_new_cells != 0 && pending.size() > max_new_cells) {
    pending.resize(max_new_cells);
    pending_pos.resize(max_new_cells);
  }

  const CacheCounterSnapshot before = cache_counters();
  StaticCellSource source{pending};
  std::vector<CellStats> stats = execute(source, &store);
  fill_cache_stats(report, before);
  for (std::size_t j = 0; j < stats.size(); ++j) {
    report.cells[pending_pos[j]] = std::move(stats[j]);
  }
  return report;
}

std::vector<CellStats> CampaignRunner::execute(CellSource& source,
                                               persist::CampaignStore* store) {
  std::vector<CellStats> stats;
  stats.resize(source.planned());

  {
    const std::lock_guard lock{mutex_};
    batch_source_ = &source;
    batch_stats_ = &stats;
    batch_store_ = store;
    batch_total_ = source.planned();
    batch_slots_used_ = 0;
    cells_done_ = 0;
    participants_ = 0;
    source_drained_ = false;
    batch_error_ = nullptr;
    ++batch_generation_;
  }
  work_cv_.notify_all();

  {
    std::unique_lock lock{mutex_};
    done_cv_.wait(lock,
                  [this] { return source_drained_ && participants_ == 0; });
    batch_source_ = nullptr;
    batch_stats_ = nullptr;
    batch_store_ = nullptr;
    if (batch_error_) std::rethrow_exception(batch_error_);
  }
  // A dynamic source may hand out fewer cells than planned (peers took
  // the rest); drop the never-claimed tail slots. batch_slots_used_ is
  // exact — every placement recorded its slot under the lock.
  stats.resize(batch_slots_used_);
  return stats;
}

void CampaignRunner::worker_loop() {
  std::uint64_t seen_generation = 0;
  while (true) {
    std::unique_lock lock{mutex_};
    work_cv_.wait(lock, [&] {
      return stopping_ ||
             (batch_generation_ != seen_generation && batch_source_ != nullptr);
    });
    if (stopping_) return;
    seen_generation = batch_generation_;
    CellSource* source = batch_source_;
    persist::CampaignStore* store = batch_store_;
    ++participants_;
    lock.unlock();

    while (true) {
      std::optional<ClaimedCell> claim;
      CellStats stats;
      std::exception_ptr error;
      try {
        {
          // Queue wait: how long this thread sat inside the source —
          // instant on a static batch, scan/backoff time on a lease.
          TRACE_SPAN("campaign", "acquire");
          const std::uint64_t wait_start = util::monotonic_ns();
          // May block on a dynamic source (lease endgame); abort() — from
          // an error elsewhere or the destructor path — unblocks it.
          claim = source->acquire();
          queue_wait_metric().record(util::monotonic_ns() - wait_start);
        }
        if (claim.has_value()) {
          TRACE_SPAN("campaign", "cell");
          const std::uint64_t cell_start = util::monotonic_ns();
          attack::ProfileCache* profiles =
              options_.share_profiles ? &profile_cache_ : nullptr;
          const CampaignCell& cell = claim->cell;
          // Stream every trial as it finishes (a store I/O failure
          // aborts the batch like any other infrastructure error) and
          // keep the source's lease fresh between trials.
          stats = score_cell(
              cell, options_.trials_per_cell, options_.trial_salt,
              [&](std::uint32_t trial, const attack::ScenarioResult& result) {
                if (store != nullptr) {
                  store->append_trial(persist::TrialRecord::from_result(
                      cell.index, trial, result));
                }
                source->renew(*claim);
              },
              profiles);
          // The source arbitrates ownership; the persist callback runs
          // between the decision and the source's own completion record
          // so durable stats always precede the "done" marker. A false
          // return means the cell was re-completed elsewhere after our
          // lease expired — the stale stats must not reach the store.
          (void)source->commit(*claim, stats, [&] {
            if (store != nullptr) store->complete_cell(stats);
          });
          cell_duration_metric().record(util::monotonic_ns() - cell_start);
          cells_metric().add();
        }
      } catch (...) {
        error = std::current_exception();
      }

      if (error) {
        {
          const std::lock_guard relock{mutex_};
          if (!batch_error_) batch_error_ = error;
        }
        source->abort();  // drain every other participant's acquire()
        lock.lock();
        break;
      }
      if (!claim.has_value()) {
        lock.lock();
        break;
      }

      lock.lock();
      if (batch_stats_->size() <= claim->slot) {
        batch_stats_->resize(claim->slot + 1);
      }
      (*batch_stats_)[claim->slot] = std::move(stats);
      batch_slots_used_ = std::max(batch_slots_used_, claim->slot + 1);
      ++cells_done_;
      if (options_.on_cell_done) {
        // Invoke the hook outside the pool lock (a slow hook must not
        // stall cell claiming); hook_mutex_ keeps invocations
        // serialized. A throwing hook must not escape the worker
        // thread (std::terminate) — surface it like a cell error.
        const std::size_t done = cells_done_;
        const std::size_t total = batch_total_;
        lock.unlock();
        std::exception_ptr hook_error;
        try {
          const std::lock_guard hook_lock{hook_mutex_};
          options_.on_cell_done(done, total);
        } catch (...) {
          hook_error = std::current_exception();
        }
        lock.lock();
        if (hook_error) {
          if (!batch_error_) batch_error_ = hook_error;
          lock.unlock();
          source->abort();
          lock.lock();
          break;
        }
      }
      lock.unlock();
    }

    // Participant exit: either the source drained for us or we aborted;
    // both mean we will claim nothing more from this batch.
    source_drained_ = true;
    --participants_;
    if (participants_ == 0) done_cv_.notify_all();
  }
}

}  // namespace msa::campaign
