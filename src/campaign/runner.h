// Parallel campaign engine: fans a grid of scenario configs out over
// run_scenario on an internal thread pool and aggregates per-cell stats.
//
// Determinism contract: the report produced by run() is byte-identical
// for any thread count, because
//   * cells are scored independently (run_scenario shares no mutable
//     state between boards; util::Log, the one process-wide global, is
//     thread-safe and not part of the result),
//   * each trial's seeds derive only from (cell, trial index), and
//   * per-cell accumulation happens serially in trial order on whichever
//     worker owns the cell, with results stored by cell index.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "attack/profile_cache.h"
#include "campaign/cell_source.h"
#include "campaign/grid.h"
#include "campaign/report.h"

namespace msa::persist {
class CampaignStore;
}

namespace msa::campaign {

struct CampaignOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned threads = 0;
  /// Independent scenario runs per cell. Trial 0 runs the cell's config
  /// verbatim; later trials re-seed the board and input image.
  unsigned trials_per_cell = 1;
  /// Salt folded into the per-trial reseeding (vary to get a fresh
  /// family of trials over the same grid).
  std::uint64_t trial_salt = 0xca3face0ULL;
  /// Share one attack::ProfileCache (and its twin-board pool) across
  /// every cell and trial of this runner's sweeps, so the offline
  /// profiling phase runs once per distinct (model, dims, layout) key
  /// instead of once per trial. Reports are byte-identical with the
  /// cache on or off; only the cells/second changes. The cache persists
  /// across run() calls on the same runner.
  bool share_profiles = true;
  /// Optional progress hook, invoked after each finished cell with
  /// (cells_done, cells_total). Called from worker threads, serialized
  /// by a dedicated mutex (outside the pool lock, so a slow hook does
  /// not stall workers — consecutive counts may arrive out of order
  /// under contention). If it throws, the sweep is aborted and the
  /// exception rethrown from run().
  std::function<void(std::size_t, std::size_t)> on_cell_done;
};

/// Owns a pool of worker threads for its whole lifetime; run() may be
/// called repeatedly (e.g. one sweep per defense family) without
/// re-spawning threads. Not itself thread-safe: call run() from one
/// thread at a time.
class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options = {});
  ~CampaignRunner();

  CampaignRunner(const CampaignRunner&) = delete;
  CampaignRunner& operator=(const CampaignRunner&) = delete;

  [[nodiscard]] unsigned thread_count() const noexcept { return threads_; }

  /// Scores every cell (trials_per_cell runs each) and returns the
  /// aggregate report, cells in grid order. Infrastructure exceptions
  /// from run_scenario abort the sweep and rethrow; defense denials are
  /// data, not errors.
  [[nodiscard]] SweepReport run(const std::vector<CampaignCell>& cells);
  [[nodiscard]] SweepReport run(const GridBuilder& grid);

  /// Scores whatever `source` hands out — the scheduler-agnostic entry
  /// point the vector/grid overloads route through (they wrap the cells
  /// in a StaticCellSource). With a dynamic source (persist::
  /// LeaseScheduler) the cells scored and their order depend on the race
  /// with other workers, so the returned report is sorted by global cell
  /// index; it covers the cells THIS worker scored, and with a store the
  /// committed ones are durable — the cross-worker report comes from
  /// persist::merge_worker_stores, byte-identical to a single-process
  /// run. Trial records stream into `store` as they finish; a cell's
  /// aggregate is persisted only when the source confirms this worker
  /// owns the completion (exactly-once against lease reclaims).
  [[nodiscard]] SweepReport run(CellSource& source);
  [[nodiscard]] SweepReport run(CellSource& source,
                                persist::CampaignStore& store);

  /// Durable, resumable run. Cells already complete in `store` are NOT
  /// re-scored: their stats are loaded from the store (bit-exact, so the
  /// final report matches an uninterrupted run byte for byte). Each
  /// remaining cell streams one trial record per finished trial into the
  /// store and is marked complete (durably flushed) when its last trial
  /// lands. `max_new_cells` > 0 caps how many previously-incomplete cells
  /// this call scores — the cell-budget used to bound one process's slice
  /// of work (and to simulate crashes in tests); cells skipped by the
  /// budget are left default-initialized (trials == 0) in the returned
  /// report, and store.completed_count() tells the caller whether the
  /// sweep is finished. The progress hook sees (done, total) over the
  /// cells actually scored this call. Throws std::invalid_argument when
  /// the store manifest disagrees with this runner's trials/salt or a
  /// cell falls outside the store's shard.
  [[nodiscard]] SweepReport run(const std::vector<CampaignCell>& cells,
                                persist::CampaignStore& store,
                                std::size_t max_new_cells = 0);
  [[nodiscard]] SweepReport run(const GridBuilder& grid,
                                persist::CampaignStore& store,
                                std::size_t max_new_cells = 0);

  /// Per-trial observer: (trial index, that trial's result).
  using TrialHook =
      std::function<void(std::uint32_t, const attack::ScenarioResult&)>;

  /// Scores one cell exactly as a pool worker would — the unit the
  /// determinism tests pin down. `on_trial`, when set, observes every
  /// trial in order (the store streaming path); `profiles`, when set,
  /// serves the offline phase of every trial from the shared cache.
  [[nodiscard]] static CellStats score_cell(const CampaignCell& cell,
                                            unsigned trials,
                                            std::uint64_t trial_salt,
                                            const TrialHook& on_trial = {},
                                            attack::ProfileCache* profiles =
                                                nullptr);

 private:
  /// Snapshot of the four profile-cache counters on the obs metrics
  /// registry (process-wide; the runner reports per-run deltas).
  struct CacheCounterSnapshot {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t boards_built = 0;
    std::uint64_t boards_reused = 0;
  };
  [[nodiscard]] static CacheCounterSnapshot cache_counters();
  /// Copies the cache-counter delta accumulated since `before` into the
  /// report's telemetry fields.
  static void fill_cache_stats(SweepReport& report,
                               const CacheCounterSnapshot& before);
  /// Pool execution over `source` into a stats vector indexed by claim
  /// slot; persists per-trial/per-cell records when `store` is non-null.
  [[nodiscard]] std::vector<CellStats> execute(CellSource& source,
                                               persist::CampaignStore* store);

  void worker_loop();

  unsigned threads_;
  CampaignOptions options_;
  /// Shared across all cells/trials when options_.share_profiles is set;
  /// lives as long as the runner so back-to-back sweeps reuse profiles.
  attack::ProfileCache profile_cache_;
  std::vector<std::thread> pool_;

  // Pool state, guarded by mutex_. A "batch" is one run() call; workers
  // pull cells from batch_source_ until it drains. The batch is done when
  // the source has drained AND every worker that joined it has left its
  // claim loop (participants_ == 0) — execute() must not return, and
  // destroy the source, while a worker is still blocked inside
  // acquire(). Workers that never woke for the batch never join it, so
  // they cannot stall the drain.
  std::mutex mutex_;
  std::mutex hook_mutex_;             ///< serializes on_cell_done only
  std::condition_variable work_cv_;   ///< wakes workers for a new batch
  std::condition_variable done_cv_;   ///< wakes run() when a batch drains
  bool stopping_ = false;
  std::uint64_t batch_generation_ = 0;
  std::size_t batch_total_ = 0;       ///< source->planned(), hook totals
  std::size_t batch_slots_used_ = 0;  ///< max placed slot + 1 (exact trim)
  std::size_t cells_done_ = 0;
  std::size_t participants_ = 0;      ///< workers inside the claim loop
  bool source_drained_ = false;       ///< some worker saw acquire()==nullopt
  CellSource* batch_source_ = nullptr;
  std::vector<CellStats>* batch_stats_ = nullptr;
  persist::CampaignStore* batch_store_ = nullptr;
  std::exception_ptr batch_error_;
};

}  // namespace msa::campaign
