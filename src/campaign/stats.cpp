#include "campaign/stats.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "attack/scenario.h"
#include "campaign/table.h"

namespace msa::campaign {

namespace {

using table::Align;
using table::Cell;
using table::Column;
using table::Table;
using table::count_cell;
using table::empty_cell;
using table::format_double;
using table::num_cell;
using table::str_cell;

bool trial_full_success(const persist::TrialRecord& t) {
  return attack::is_full_success(t.model_identified, t.pixel_match);
}

struct MarginalAccumulator {
  std::size_t trials = 0;
  std::size_t successes = 0;
  std::size_t denials = 0;
  double psnr_sum = 0.0;
  std::size_t order = 0;  ///< first-appearance rank, for stable output
};

}  // namespace

WilsonInterval wilson_interval(std::size_t successes, std::size_t trials,
                               double z) {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    throw std::invalid_argument("stats: percentile of an empty sample");
  }
  if (q <= 0.0) return sorted.front();
  if (q >= 100.0) return sorted.back();
  // Nearest-rank: the smallest value with at least q% of the sample at
  // or below it.
  const double n = static_cast<double>(sorted.size());
  const std::size_t rank =
      static_cast<std::size_t>(std::ceil(q / 100.0 * n));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

StatsReport analyze_sweep(const persist::SweepData& data) {
  StatsReport report;

  // Trials grouped per completed cell; the rest are orphans.
  std::map<std::uint64_t, std::vector<const persist::TrialRecord*>> by_cell;
  std::map<std::uint64_t, const CellStats*> cells;
  for (const CellStats& cell : data.cells) cells.emplace(cell.index, &cell);
  for (const persist::TrialRecord& trial : data.trials) {
    if (cells.contains(trial.cell_index)) {
      by_cell[trial.cell_index].push_back(&trial);
      ++report.trials_analyzed;
    } else {
      ++report.orphan_trials;
    }
  }

  std::map<std::pair<std::string, std::string>, MarginalAccumulator> marginals;
  auto marginal = [&](const std::string& axis,
                      const std::string& value) -> MarginalAccumulator& {
    const auto [it, inserted] =
        marginals.try_emplace({axis, value}, MarginalAccumulator{});
    if (inserted) it->second.order = marginals.size() - 1;
    return it->second;
  };

  report.cells.reserve(data.cells.size());
  for (const CellStats& cell : data.cells) {
    const auto it = by_cell.find(cell.index);
    if (it == by_cell.end()) {
      throw std::runtime_error(
          "stats: completed cell " + std::to_string(cell.index) +
          " has no trial records (incompatible or hand-edited store)");
    }
    const std::vector<const persist::TrialRecord*>& trials = it->second;

    CellDistribution dist;
    dist.index = cell.index;
    dist.defense = cell.defense;
    dist.model = cell.model;
    dist.attack_delay_s = cell.attack_delay_s;
    dist.scrubber_bytes_per_s = cell.scrubber_bytes_per_s;
    dist.trials = trials.size();

    std::vector<double> psnrs;
    psnrs.reserve(trials.size());
    double psnr_sum = 0.0;
    for (const persist::TrialRecord* t : trials) {
      if (trial_full_success(*t)) ++dist.successes;
      if (t->denied) ++dist.denials;
      psnrs.push_back(t->psnr);
      psnr_sum += t->psnr;
    }
    std::sort(psnrs.begin(), psnrs.end());
    dist.p50_psnr = percentile_sorted(psnrs, 50.0);
    dist.p90_psnr = percentile_sorted(psnrs, 90.0);
    dist.p99_psnr = percentile_sorted(psnrs, 99.0);
    dist.success_rate =
        static_cast<double>(dist.successes) / static_cast<double>(dist.trials);
    dist.success_ci = wilson_interval(dist.successes, dist.trials);

    const std::pair<const char*, std::string> axes[] = {
        {"defense", cell.defense},
        {"model", cell.model},
        {"delay_s", format_double(cell.attack_delay_s)},
        {"scrubber_Bps", format_double(cell.scrubber_bytes_per_s)},
    };
    for (const auto& [axis, value] : axes) {
      MarginalAccumulator& acc = marginal(axis, value);
      acc.trials += dist.trials;
      acc.successes += dist.successes;
      acc.denials += dist.denials;
      acc.psnr_sum += psnr_sum;
    }

    report.cells.push_back(std::move(dist));
  }

  // Axis blocks in a fixed order; values by first appearance (== grid
  // order, since cells ascend by index).
  const char* axis_order[] = {"defense", "model", "delay_s", "scrubber_Bps"};
  for (const char* axis : axis_order) {
    std::vector<
        std::pair<std::size_t, std::pair<std::string, MarginalAccumulator>>>
        entries;
    for (const auto& [key, acc] : marginals) {
      if (key.first != axis) continue;
      entries.push_back({acc.order, {key.second, acc}});
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [order, entry] : entries) {
      const auto& [value, acc] = entry;
      AxisMarginal m;
      m.axis = axis;
      m.value = value;
      m.trials = acc.trials;
      m.successes = acc.successes;
      m.denials = acc.denials;
      m.success_rate = acc.trials == 0
                           ? 0.0
                           : static_cast<double>(acc.successes) /
                                 static_cast<double>(acc.trials);
      m.success_ci = wilson_interval(acc.successes, acc.trials);
      m.mean_psnr = acc.trials == 0
                        ? 0.0
                        : acc.psnr_sum / static_cast<double>(acc.trials);
      report.marginals.push_back(std::move(m));
    }
  }

  return report;
}

namespace {

/// Text tables combine the CI bounds into one "[low,high]" column; the
/// CSV/JSON emitters below split them so consumers get plain numbers.
Cell ci_cell(const WilsonInterval& ci) {
  return table::interval_cell(ci.low, ci.high);
}

}  // namespace

std::string StatsReport::to_text() const {
  std::string out;
  out += "== per-cell distributions (" + std::to_string(cells.size()) +
         " cells, " + std::to_string(trials_analyzed) + " trials";
  if (orphan_trials > 0) {
    out += ", " + std::to_string(orphan_trials) + " orphan trials excluded";
  }
  out += ") ==\n";
  Table cell_table{{{"index", Align::kLeft},
                    {"defense", Align::kLeft},
                    {"model", Align::kLeft},
                    {"delay_s", Align::kRight},
                    {"scrub_Bps", Align::kRight},
                    {"trials", Align::kRight},
                    {"success", Align::kRight},
                    {"ci95", Align::kRight},
                    {"denials", Align::kRight},
                    {"p50_psnr", Align::kRight},
                    {"p90_psnr", Align::kRight},
                    {"p99_psnr", Align::kRight}}};
  for (const CellDistribution& c : cells) {
    cell_table.add_row({count_cell(c.index), str_cell(c.defense),
                        str_cell(c.model), num_cell(c.attack_delay_s),
                        num_cell(c.scrubber_bytes_per_s),
                        count_cell(c.trials),
                        num_cell(c.success_rate, 3), ci_cell(c.success_ci),
                        count_cell(c.denials), num_cell(c.p50_psnr, 2),
                        num_cell(c.p90_psnr, 2), num_cell(c.p99_psnr, 2)});
  }
  out += cell_table.to_text();

  out += "\n== per-axis marginals ==\n";
  Table marginal_table{{{"axis", Align::kLeft},
                        {"value", Align::kLeft},
                        {"trials", Align::kRight},
                        {"success", Align::kRight},
                        {"ci95", Align::kRight},
                        {"denials", Align::kRight},
                        {"mean_psnr", Align::kRight}}};
  for (const AxisMarginal& m : marginals) {
    marginal_table.add_row({str_cell(m.axis), str_cell(m.value),
                            count_cell(m.trials), num_cell(m.success_rate, 3),
                            ci_cell(m.success_ci), count_cell(m.denials),
                            num_cell(m.mean_psnr, 2)});
  }
  out += marginal_table.to_text();
  return out;
}

std::string StatsReport::to_csv() const {
  Table t{{{"section"},      {"index"},       {"defense"},
           {"model"},        {"delay_s"},     {"scrubber_Bps"},
           {"axis"},         {"value"},       {"trials"},
           {"successes"},    {"denials"},     {"success_rate"},
           {"ci95_low"},     {"ci95_high"},   {"p50_psnr"},
           {"p90_psnr"},     {"p99_psnr"},    {"mean_psnr"}}};
  for (const CellDistribution& c : cells) {
    t.add_row({str_cell("cell"), count_cell(c.index), str_cell(c.defense),
               str_cell(c.model), num_cell(c.attack_delay_s),
               num_cell(c.scrubber_bytes_per_s), empty_cell(), empty_cell(),
               count_cell(c.trials), count_cell(c.successes),
               count_cell(c.denials), num_cell(c.success_rate),
               num_cell(c.success_ci.low), num_cell(c.success_ci.high),
               num_cell(c.p50_psnr), num_cell(c.p90_psnr),
               num_cell(c.p99_psnr), empty_cell()});
  }
  for (const AxisMarginal& m : marginals) {
    t.add_row({str_cell("marginal"), empty_cell(), empty_cell(), empty_cell(),
               empty_cell(), empty_cell(), str_cell(m.axis), str_cell(m.value),
               count_cell(m.trials), count_cell(m.successes),
               count_cell(m.denials), num_cell(m.success_rate),
               num_cell(m.success_ci.low), num_cell(m.success_ci.high),
               empty_cell(), empty_cell(), empty_cell(), num_cell(m.mean_psnr)});
  }
  return t.to_csv();
}

std::string StatsReport::to_json() const {
  Table cell_table{{{"index"},        {"defense"},   {"model"},
                    {"delay_s"},      {"scrubber_Bps"}, {"trials"},
                    {"successes"},    {"denials"},   {"success_rate"},
                    {"ci95_low"},     {"ci95_high"}, {"p50_psnr"},
                    {"p90_psnr"},     {"p99_psnr"}}};
  for (const CellDistribution& c : cells) {
    cell_table.add_row(
        {count_cell(c.index), str_cell(c.defense), str_cell(c.model),
         num_cell(c.attack_delay_s), num_cell(c.scrubber_bytes_per_s),
         count_cell(c.trials), count_cell(c.successes), count_cell(c.denials),
         num_cell(c.success_rate), num_cell(c.success_ci.low),
         num_cell(c.success_ci.high), num_cell(c.p50_psnr),
         num_cell(c.p90_psnr), num_cell(c.p99_psnr)});
  }
  Table marginal_table{{{"axis"},         {"value"},    {"trials"},
                        {"successes"},    {"denials"},  {"success_rate"},
                        {"ci95_low"},     {"ci95_high"}, {"mean_psnr"}}};
  for (const AxisMarginal& m : marginals) {
    marginal_table.add_row(
        {str_cell(m.axis), str_cell(m.value), count_cell(m.trials),
         count_cell(m.successes), count_cell(m.denials),
         num_cell(m.success_rate), num_cell(m.success_ci.low),
         num_cell(m.success_ci.high), num_cell(m.mean_psnr)});
  }
  std::string out = "{\"trials_analyzed\":" + std::to_string(trials_analyzed);
  out += ",\"orphan_trials\":" + std::to_string(orphan_trials);
  out += ",\"cells\":" + cell_table.to_json();
  out += ",\"marginals\":" + marginal_table.to_json();
  out += '}';
  return out;
}

}  // namespace msa::campaign
