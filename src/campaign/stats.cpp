#include "campaign/stats.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <map>
#include <stdexcept>

namespace msa::campaign {

namespace {

/// Same shortest-round-trip formatting as the report CSV (report.cpp);
/// duplicated rather than exported because the two files must be allowed
/// to evolve their formats independently.
std::string format_double(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (std::abs(v) < 1e15 &&
      v == static_cast<double>(static_cast<long long>(v))) {
    char ibuf[32];
    const auto res =
        std::to_chars(ibuf, ibuf + sizeof ibuf, static_cast<long long>(v));
    return std::string(ibuf, res.ptr);
  }
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

/// Fixed decimals for table columns (alignment beats round-tripping in
/// human-facing output).
std::string fixed(double v, int decimals) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string pad(std::string s, std::size_t width) {
  if (s.size() < width) s.insert(0, width - s.size(), ' ');
  return s;
}

std::string pad_right(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

bool trial_full_success(const persist::TrialRecord& t) {
  // Mirrors attack::ScenarioResult::full_success().
  return t.model_identified && t.pixel_match > 0.999;
}

struct MarginalAccumulator {
  std::size_t trials = 0;
  std::size_t successes = 0;
  std::size_t denials = 0;
  double psnr_sum = 0.0;
  std::size_t order = 0;  ///< first-appearance rank, for stable output
};

}  // namespace

WilsonInterval wilson_interval(std::size_t successes, std::size_t trials,
                               double z) {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    throw std::invalid_argument("stats: percentile of an empty sample");
  }
  if (q <= 0.0) return sorted.front();
  if (q >= 100.0) return sorted.back();
  // Nearest-rank: the smallest value with at least q% of the sample at
  // or below it.
  const double n = static_cast<double>(sorted.size());
  const std::size_t rank =
      static_cast<std::size_t>(std::ceil(q / 100.0 * n));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

StatsReport analyze_sweep(const persist::SweepData& data) {
  StatsReport report;

  // Trials grouped per completed cell; the rest are orphans.
  std::map<std::uint64_t, std::vector<const persist::TrialRecord*>> by_cell;
  std::map<std::uint64_t, const CellStats*> cells;
  for (const CellStats& cell : data.cells) cells.emplace(cell.index, &cell);
  for (const persist::TrialRecord& trial : data.trials) {
    if (cells.contains(trial.cell_index)) {
      by_cell[trial.cell_index].push_back(&trial);
      ++report.trials_analyzed;
    } else {
      ++report.orphan_trials;
    }
  }

  std::map<std::pair<std::string, std::string>, MarginalAccumulator> marginals;
  auto marginal = [&](const std::string& axis,
                      const std::string& value) -> MarginalAccumulator& {
    const auto [it, inserted] =
        marginals.try_emplace({axis, value}, MarginalAccumulator{});
    if (inserted) it->second.order = marginals.size() - 1;
    return it->second;
  };

  report.cells.reserve(data.cells.size());
  for (const CellStats& cell : data.cells) {
    const auto it = by_cell.find(cell.index);
    if (it == by_cell.end()) {
      throw std::runtime_error(
          "stats: completed cell " + std::to_string(cell.index) +
          " has no trial records (incompatible or hand-edited store)");
    }
    const std::vector<const persist::TrialRecord*>& trials = it->second;

    CellDistribution dist;
    dist.index = cell.index;
    dist.defense = cell.defense;
    dist.model = cell.model;
    dist.attack_delay_s = cell.attack_delay_s;
    dist.scrubber_bytes_per_s = cell.scrubber_bytes_per_s;
    dist.trials = trials.size();

    std::vector<double> psnrs;
    psnrs.reserve(trials.size());
    double psnr_sum = 0.0;
    for (const persist::TrialRecord* t : trials) {
      if (trial_full_success(*t)) ++dist.successes;
      if (t->denied) ++dist.denials;
      psnrs.push_back(t->psnr);
      psnr_sum += t->psnr;
    }
    std::sort(psnrs.begin(), psnrs.end());
    dist.p50_psnr = percentile_sorted(psnrs, 50.0);
    dist.p90_psnr = percentile_sorted(psnrs, 90.0);
    dist.p99_psnr = percentile_sorted(psnrs, 99.0);
    dist.success_rate =
        static_cast<double>(dist.successes) / static_cast<double>(dist.trials);
    dist.success_ci = wilson_interval(dist.successes, dist.trials);

    const std::pair<const char*, std::string> axes[] = {
        {"defense", cell.defense},
        {"model", cell.model},
        {"delay_s", format_double(cell.attack_delay_s)},
        {"scrubber_Bps", format_double(cell.scrubber_bytes_per_s)},
    };
    for (const auto& [axis, value] : axes) {
      MarginalAccumulator& acc = marginal(axis, value);
      acc.trials += dist.trials;
      acc.successes += dist.successes;
      acc.denials += dist.denials;
      acc.psnr_sum += psnr_sum;
    }

    report.cells.push_back(std::move(dist));
  }

  // Axis blocks in a fixed order; values by first appearance (== grid
  // order, since cells ascend by index).
  const char* axis_order[] = {"defense", "model", "delay_s", "scrubber_Bps"};
  for (const char* axis : axis_order) {
    std::vector<
        std::pair<std::size_t, std::pair<std::string, MarginalAccumulator>>>
        entries;
    for (const auto& [key, acc] : marginals) {
      if (key.first != axis) continue;
      entries.push_back({acc.order, {key.second, acc}});
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [order, entry] : entries) {
      const auto& [value, acc] = entry;
      AxisMarginal m;
      m.axis = axis;
      m.value = value;
      m.trials = acc.trials;
      m.successes = acc.successes;
      m.denials = acc.denials;
      m.success_rate = acc.trials == 0
                           ? 0.0
                           : static_cast<double>(acc.successes) /
                                 static_cast<double>(acc.trials);
      m.success_ci = wilson_interval(acc.successes, acc.trials);
      m.mean_psnr = acc.trials == 0
                        ? 0.0
                        : acc.psnr_sum / static_cast<double>(acc.trials);
      report.marginals.push_back(std::move(m));
    }
  }

  return report;
}

std::string StatsReport::to_text() const {
  std::string out;
  out += "== per-cell distributions (" + std::to_string(cells.size()) +
         " cells, " + std::to_string(trials_analyzed) + " trials";
  if (orphan_trials > 0) {
    out += ", " + std::to_string(orphan_trials) + " orphan trials excluded";
  }
  out += ") ==\n";
  out +=
      "index  defense          model            delay_s  scrub_Bps  trials"
      "  success        ci95          denials  p50_psnr  p90_psnr  p99_psnr\n";
  for (const CellDistribution& c : cells) {
    out += pad_right(std::to_string(c.index), 5) + "  ";
    out += pad_right(c.defense, 15) + "  ";
    out += pad_right(c.model, 15) + "  ";
    out += pad(format_double(c.attack_delay_s), 7) + "  ";
    out += pad(format_double(c.scrubber_bytes_per_s), 9) + "  ";
    out += pad(std::to_string(c.trials), 6) + "  ";
    out += pad(fixed(c.success_rate, 3), 7) + "  ";
    out += "[" + fixed(c.success_ci.low, 3) + "," +
           fixed(c.success_ci.high, 3) + "]  ";
    out += pad(std::to_string(c.denials), 7) + "  ";
    out += pad(fixed(c.p50_psnr, 2), 8) + "  ";
    out += pad(fixed(c.p90_psnr, 2), 8) + "  ";
    out += pad(fixed(c.p99_psnr, 2), 8) + "\n";
  }

  out += "\n== per-axis marginals ==\n";
  out +=
      "axis          value            trials  success        ci95        "
      "  denials  mean_psnr\n";
  for (const AxisMarginal& m : marginals) {
    out += pad_right(m.axis, 12) + "  ";
    out += pad_right(m.value, 15) + "  ";
    out += pad(std::to_string(m.trials), 6) + "  ";
    out += pad(fixed(m.success_rate, 3), 7) + "  ";
    out += "[" + fixed(m.success_ci.low, 3) + "," +
           fixed(m.success_ci.high, 3) + "]  ";
    out += pad(std::to_string(m.denials), 7) + "  ";
    out += pad(fixed(m.mean_psnr, 2), 9) + "\n";
  }
  return out;
}

}  // namespace msa::campaign
