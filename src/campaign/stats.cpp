#include "campaign/stats.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "attack/scenario.h"
#include "campaign/table.h"

namespace msa::campaign {

namespace {

using table::Align;
using table::Cell;
using table::Column;
using table::Table;
using table::count_cell;
using table::empty_cell;
using table::format_double;
using table::num_cell;
using table::str_cell;

bool trial_full_success(const persist::TrialRecord& t) {
  return attack::is_full_success(t.model_identified, t.pixel_match);
}

struct MarginalAccumulator {
  std::size_t trials = 0;
  std::size_t successes = 0;
  std::size_t denials = 0;
  double psnr_sum = 0.0;
  std::size_t order = 0;  ///< first-appearance rank, for stable output
};

}  // namespace

WilsonInterval wilson_interval(std::size_t successes, std::size_t trials,
                               double z) {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    throw std::invalid_argument("stats: percentile of an empty sample");
  }
  if (q <= 0.0) return sorted.front();
  if (q >= 100.0) return sorted.back();
  // Nearest-rank: the smallest value with at least q% of the sample at
  // or below it.
  const double n = static_cast<double>(sorted.size());
  const std::size_t rank =
      static_cast<std::size_t>(std::ceil(q / 100.0 * n));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

StatsReport analyze_sweep(const persist::SweepData& data) {
  StatsReport report;

  // Trials grouped per completed cell; the rest are orphans.
  std::map<std::uint64_t, std::vector<const persist::TrialRecord*>> by_cell;
  std::map<std::uint64_t, const CellStats*> cells;
  for (const CellStats& cell : data.cells) cells.emplace(cell.index, &cell);
  for (const persist::TrialRecord& trial : data.trials) {
    if (cells.contains(trial.cell_index)) {
      by_cell[trial.cell_index].push_back(&trial);
      ++report.trials_analyzed;
    } else {
      ++report.orphan_trials;
    }
  }

  std::map<std::pair<std::string, std::string>, MarginalAccumulator> marginals;
  auto marginal = [&](const std::string& axis,
                      const std::string& value) -> MarginalAccumulator& {
    const auto [it, inserted] =
        marginals.try_emplace({axis, value}, MarginalAccumulator{});
    if (inserted) it->second.order = marginals.size() - 1;
    return it->second;
  };
  std::vector<std::string> axis_order;  // first-appearance axis order

  report.cells.reserve(data.cells.size());
  for (const CellStats& cell : data.cells) {
    const auto it = by_cell.find(cell.index);
    if (it == by_cell.end()) {
      throw std::runtime_error(
          "stats: completed cell " + std::to_string(cell.index) +
          " has no trial records (incompatible or hand-edited store)");
    }
    const std::vector<const persist::TrialRecord*>& trials = it->second;

    CellDistribution dist;
    dist.index = cell.index;
    dist.coords = cell.coords;
    dist.trials = trials.size();

    std::vector<double> psnrs;
    psnrs.reserve(trials.size());
    double psnr_sum = 0.0;
    for (const persist::TrialRecord* t : trials) {
      if (trial_full_success(*t)) ++dist.successes;
      if (t->denied) ++dist.denials;
      psnrs.push_back(t->psnr);
      psnr_sum += t->psnr;
    }
    std::sort(psnrs.begin(), psnrs.end());
    dist.p50_psnr = percentile_sorted(psnrs, 50.0);
    dist.p90_psnr = percentile_sorted(psnrs, 90.0);
    dist.p99_psnr = percentile_sorted(psnrs, 99.0);
    dist.success_rate =
        static_cast<double>(dist.successes) / static_cast<double>(dist.trials);
    dist.success_ci = wilson_interval(dist.successes, dist.trials);

    for (const AxisCoordinate& coord : cell.coords) {
      if (std::find(axis_order.begin(), axis_order.end(), coord.axis) ==
          axis_order.end()) {
        axis_order.push_back(coord.axis);
      }
      MarginalAccumulator& acc = marginal(coord.axis, coord.value.label());
      acc.trials += dist.trials;
      acc.successes += dist.successes;
      acc.denials += dist.denials;
      acc.psnr_sum += psnr_sum;
    }

    report.cells.push_back(std::move(dist));
  }

  // Axis blocks in schema order (first appearance across cells — every
  // cell of one sweep shares the schema); values by first appearance
  // (== grid order, since cells ascend by index).
  for (const std::string& axis : axis_order) {
    std::vector<
        std::pair<std::size_t, std::pair<std::string, MarginalAccumulator>>>
        entries;
    for (const auto& [key, acc] : marginals) {
      if (key.first != axis) continue;
      entries.push_back({acc.order, {key.second, acc}});
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [order, entry] : entries) {
      const auto& [value, acc] = entry;
      AxisMarginal m;
      m.axis = axis;
      m.value = value;
      m.trials = acc.trials;
      m.successes = acc.successes;
      m.denials = acc.denials;
      m.success_rate = acc.trials == 0
                           ? 0.0
                           : static_cast<double>(acc.successes) /
                                 static_cast<double>(acc.trials);
      m.success_ci = wilson_interval(acc.successes, acc.trials);
      m.mean_psnr = acc.trials == 0
                        ? 0.0
                        : acc.psnr_sum / static_cast<double>(acc.trials);
      report.marginals.push_back(std::move(m));
    }
  }

  return report;
}

namespace {

/// Text tables combine the CI bounds into one "[low,high]" column; the
/// CSV/JSON emitters below split them so consumers get plain numbers.
Cell ci_cell(const WilsonInterval& ci) {
  return table::interval_cell(ci.low, ci.high);
}

/// Axis columns of this report: the first cell's coordinate order, the
/// legacy four when there are no cells (header-only output keeps its
/// historical shape).
std::vector<std::string> axis_columns(
    const std::vector<CellDistribution>& cells) {
  if (cells.empty()) return legacy_axis_names();
  std::vector<std::string> names;
  names.reserve(cells.front().coords.size());
  for (const AxisCoordinate& c : cells.front().coords) names.push_back(c.axis);
  return names;
}

using table::axis_text_header;
using table::axis_value_cell;

}  // namespace

std::string StatsReport::to_text() const {
  std::string out;
  out += "== per-cell distributions (" + std::to_string(cells.size()) +
         " cells, " + std::to_string(trials_analyzed) + " trials";
  if (orphan_trials > 0) {
    out += ", " + std::to_string(orphan_trials) + " orphan trials excluded";
  }
  out += ") ==\n";
  const std::vector<std::string> axes = axis_columns(cells);
  std::vector<Column> cell_columns{{"index", Align::kLeft}};
  for (const std::string& axis : axes) {
    // String-valued axes read better left-aligned, numeric ones right.
    const AxisValue* v =
        cells.empty() ? nullptr : find_coord(cells.front().coords, axis);
    const bool textual = v != nullptr && (v->kind == AxisKind::kString ||
                                          v->kind == AxisKind::kEnum);
    cell_columns.push_back(
        {axis_text_header(axis), textual ? Align::kLeft : Align::kRight});
  }
  for (const char* name : {"trials", "success", "ci95", "denials", "p50_psnr",
                           "p90_psnr", "p99_psnr"}) {
    cell_columns.push_back({name, Align::kRight});
  }
  Table cell_table{std::move(cell_columns)};
  for (const CellDistribution& c : cells) {
    std::vector<Cell> row{count_cell(c.index)};
    for (const AxisCoordinate& coord : c.coords) {
      row.push_back(axis_value_cell(coord.value));
    }
    row.push_back(count_cell(c.trials));
    row.push_back(num_cell(c.success_rate, 3));
    row.push_back(ci_cell(c.success_ci));
    row.push_back(count_cell(c.denials));
    row.push_back(num_cell(c.p50_psnr, 2));
    row.push_back(num_cell(c.p90_psnr, 2));
    row.push_back(num_cell(c.p99_psnr, 2));
    cell_table.add_row(std::move(row));
  }
  out += cell_table.to_text();

  out += "\n== per-axis marginals ==\n";
  Table marginal_table{{{"axis", Align::kLeft},
                        {"value", Align::kLeft},
                        {"trials", Align::kRight},
                        {"success", Align::kRight},
                        {"ci95", Align::kRight},
                        {"denials", Align::kRight},
                        {"mean_psnr", Align::kRight}}};
  for (const AxisMarginal& m : marginals) {
    marginal_table.add_row({str_cell(m.axis), str_cell(m.value),
                            count_cell(m.trials), num_cell(m.success_rate, 3),
                            ci_cell(m.success_ci), count_cell(m.denials),
                            num_cell(m.mean_psnr, 2)});
  }
  out += marginal_table.to_text();
  return out;
}

std::string StatsReport::to_csv() const {
  const std::vector<std::string> axes = axis_columns(cells);
  std::vector<Column> columns{{"section"}, {"index"}};
  for (const std::string& axis : axes) columns.push_back({axis});
  for (const char* name :
       {"axis", "value", "trials", "successes", "denials", "success_rate",
        "ci95_low", "ci95_high", "p50_psnr", "p90_psnr", "p99_psnr",
        "mean_psnr"}) {
    columns.push_back({name});
  }
  Table t{std::move(columns)};
  for (const CellDistribution& c : cells) {
    std::vector<Cell> row{str_cell("cell"), count_cell(c.index)};
    for (const AxisCoordinate& coord : c.coords) {
      row.push_back(axis_value_cell(coord.value));
    }
    row.push_back(empty_cell());  // axis
    row.push_back(empty_cell());  // value
    row.push_back(count_cell(c.trials));
    row.push_back(count_cell(c.successes));
    row.push_back(count_cell(c.denials));
    row.push_back(num_cell(c.success_rate));
    row.push_back(num_cell(c.success_ci.low));
    row.push_back(num_cell(c.success_ci.high));
    row.push_back(num_cell(c.p50_psnr));
    row.push_back(num_cell(c.p90_psnr));
    row.push_back(num_cell(c.p99_psnr));
    row.push_back(empty_cell());  // mean_psnr
    t.add_row(std::move(row));
  }
  for (const AxisMarginal& m : marginals) {
    std::vector<Cell> row{str_cell("marginal"), empty_cell()};
    for (std::size_t i = 0; i < axes.size(); ++i) row.push_back(empty_cell());
    row.push_back(str_cell(m.axis));
    row.push_back(str_cell(m.value));
    row.push_back(count_cell(m.trials));
    row.push_back(count_cell(m.successes));
    row.push_back(count_cell(m.denials));
    row.push_back(num_cell(m.success_rate));
    row.push_back(num_cell(m.success_ci.low));
    row.push_back(num_cell(m.success_ci.high));
    row.push_back(empty_cell());  // p50_psnr
    row.push_back(empty_cell());  // p90_psnr
    row.push_back(empty_cell());  // p99_psnr
    row.push_back(num_cell(m.mean_psnr));
    t.add_row(std::move(row));
  }
  return t.to_csv();
}

std::string StatsReport::to_json() const {
  const std::vector<std::string> axes = axis_columns(cells);
  std::vector<Column> cell_columns{{"index"}};
  for (const std::string& axis : axes) cell_columns.push_back({axis});
  for (const char* name :
       {"trials", "successes", "denials", "success_rate", "ci95_low",
        "ci95_high", "p50_psnr", "p90_psnr", "p99_psnr"}) {
    cell_columns.push_back({name});
  }
  Table cell_table{std::move(cell_columns)};
  for (const CellDistribution& c : cells) {
    std::vector<Cell> row{count_cell(c.index)};
    for (const AxisCoordinate& coord : c.coords) {
      row.push_back(axis_value_cell(coord.value));
    }
    row.push_back(count_cell(c.trials));
    row.push_back(count_cell(c.successes));
    row.push_back(count_cell(c.denials));
    row.push_back(num_cell(c.success_rate));
    row.push_back(num_cell(c.success_ci.low));
    row.push_back(num_cell(c.success_ci.high));
    row.push_back(num_cell(c.p50_psnr));
    row.push_back(num_cell(c.p90_psnr));
    row.push_back(num_cell(c.p99_psnr));
    cell_table.add_row(std::move(row));
  }
  Table marginal_table{{{"axis"},         {"value"},    {"trials"},
                        {"successes"},    {"denials"},  {"success_rate"},
                        {"ci95_low"},     {"ci95_high"}, {"mean_psnr"}}};
  for (const AxisMarginal& m : marginals) {
    marginal_table.add_row(
        {str_cell(m.axis), str_cell(m.value), count_cell(m.trials),
         count_cell(m.successes), count_cell(m.denials),
         num_cell(m.success_rate), num_cell(m.success_ci.low),
         num_cell(m.success_ci.high), num_cell(m.mean_psnr)});
  }
  std::string out = "{\"trials_analyzed\":" + std::to_string(trials_analyzed);
  out += ",\"orphan_trials\":" + std::to_string(orphan_trials);
  out += ",\"cells\":" + cell_table.to_json();
  out += ",\"marginals\":" + marginal_table.to_json();
  out += '}';
  return out;
}

}  // namespace msa::campaign
