// Store-backed sweep analysis: distributional statistics computed from
// the per-trial record stream (persist::read_store / load_sweep), not
// from the per-cell means the report carries. This is the `campaign_sweep
// stats` subcommand's engine — percentiles need every trial, which only
// the store has. All output is deterministic: cells ascend by global
// index, marginals follow first-appearance order, doubles use the same
// shortest-round-trip formatting as the report CSV.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "persist/campaign_store.h"

namespace msa::campaign {

/// Wilson score interval for a binomial proportion — the small-n-safe
/// confidence interval for per-cell success rates (a normal interval is
/// garbage at the 3-of-5 sample sizes sweeps actually have).
struct WilsonInterval {
  double low = 0.0;
  double high = 0.0;
};

/// z defaults to the 95% two-sided normal quantile. trials == 0 yields
/// the no-information interval [0, 1].
[[nodiscard]] WilsonInterval wilson_interval(std::size_t successes,
                                             std::size_t trials,
                                             double z = 1.959964);

/// Nearest-rank percentile of an ASCENDING-sorted, non-empty sample;
/// q in [0, 100]. q = 0 is the minimum, q = 100 the maximum.
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted,
                                       double q);

/// Per-cell distribution over that cell's trial stream.
struct CellDistribution {
  std::uint64_t index = 0;
  /// Ordered axis coordinates, copied from the stored CellStats (a v1
  /// store's cells decode with the synthesized legacy four).
  std::vector<AxisCoordinate> coords;

  std::size_t trials = 0;
  std::size_t successes = 0;  ///< full successes (attack::is_full_success)
  std::size_t denials = 0;
  double p50_psnr = 0.0;
  double p90_psnr = 0.0;
  double p99_psnr = 0.0;
  double success_rate = 0.0;
  WilsonInterval success_ci;
};

/// One value of one sweep axis, pooled over every cell carrying it.
struct AxisMarginal {
  std::string axis;   ///< any swept axis name ("defense", "power_cycled", ...)
  std::string value;  ///< the axis value's label
  std::size_t trials = 0;
  std::size_t successes = 0;
  std::size_t denials = 0;
  double success_rate = 0.0;
  WilsonInterval success_ci;
  double mean_psnr = 0.0;
};

struct StatsReport {
  std::size_t trials_analyzed = 0;
  /// Trial records whose cell never completed (a killed worker's
  /// leftovers) — excluded from every statistic below.
  std::size_t orphan_trials = 0;
  std::vector<CellDistribution> cells;
  std::vector<AxisMarginal> marginals;

  /// Aligned text tables (cells, then marginals).
  [[nodiscard]] std::string to_text() const;
  /// One strict CSV table: a `section` column discriminates cell rows
  /// from marginal rows; columns the other section does not populate are
  /// empty. Doubles are round-trip exact (table::format_double).
  [[nodiscard]] std::string to_csv() const;
  /// {"trials_analyzed":..,"orphan_trials":..,"cells":[..],
  ///  "marginals":[..]} — doubles round-trip exact, infinities as the
  /// +/-1e999 sentinels, NaN as null.
  [[nodiscard]] std::string to_json() const;
};

/// Computes the report from loaded store data. Only completed cells are
/// analyzed; their trial streams are complete by the store's durability
/// contract. Throws std::runtime_error when a completed cell has no
/// trial records at all (a store written by a pre-trial-stream tool).
[[nodiscard]] StatsReport analyze_sweep(const persist::SweepData& data);

}  // namespace msa::campaign
