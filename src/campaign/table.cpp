#include "campaign/table.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace msa::campaign::table {

std::string format_double(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  // Magnitude check first: casting |v| >= 2^63 to long long is UB.
  if (std::abs(v) < 1e15 &&
      v == static_cast<double>(static_cast<long long>(v))) {
    char ibuf[32];
    const auto res =
        std::to_chars(ibuf, ibuf + sizeof ibuf, static_cast<long long>(v));
    return std::string(ibuf, res.ptr);
  }
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

std::string fixed(double v, int decimals) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (std::isnan(v)) return "null";
  if (std::isinf(v)) return v > 0 ? "1e999" : "-1e999";
  return format_double(v);
}

Cell str_cell(const std::string& s) {
  return {s, s, '"' + json_escape(s) + '"'};
}

Cell count_cell(std::uint64_t n) {
  const std::string s = std::to_string(n);
  return {s, s, s};
}

Cell num_cell(double v) {
  const std::string exact = format_double(v);
  return {exact, exact, json_double(v)};
}

Cell num_cell(double v, int text_decimals) {
  return {fixed(v, text_decimals), format_double(v), json_double(v)};
}

Cell bool_cell(bool b) {
  return {b ? "yes" : "no", b ? "true" : "false", b ? "true" : "false"};
}

Cell interval_cell(double low, double high) {
  std::string s = "[";
  s += fixed(low, 3);
  s += ',';
  s += fixed(high, 3);
  s += ']';
  return str_cell(s);
}

Cell pvalue_cell(double p) { return num_cell(p, 4); }

Cell empty_cell() { return {"", "", "null"}; }

Cell axis_value_cell(const AxisValue& v) {
  switch (v.kind) {
    case AxisKind::kString:
    case AxisKind::kEnum:
      return str_cell(v.str);
    case AxisKind::kDouble:
      return num_cell(v.num);
    case AxisKind::kBool:
      return Cell{v.flag ? "1" : "0", v.flag ? "1" : "0",
                  v.flag ? "true" : "false"};
  }
  return empty_cell();
}

std::string axis_text_header(const std::string& axis) {
  return axis == "scrubber_Bps" ? "scrub_Bps" : axis;
}

Table::Table(std::vector<Column> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("table: a table needs at least one column");
  }
}

void Table::add_row(std::vector<Cell> row) {
  if (row.size() != columns_.size()) {
    throw std::invalid_argument("table: row has " + std::to_string(row.size()) +
                                " cell(s), table has " +
                                std::to_string(columns_.size()) + " column(s)");
  }
  rows_.push_back(std::move(row));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].name.size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].text.size());
    }
  }
  std::string out;
  auto emit_line = [&](auto&& cell_text) {
    std::string line;
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) line += "  ";
      const std::string& s = cell_text(c);
      const std::size_t fill = widths[c] - s.size();
      if (columns_[c].align == Align::kRight) line.append(fill, ' ');
      line += s;
      if (columns_[c].align == Align::kLeft) line.append(fill, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    out += line;
    out += '\n';
  };
  emit_line([&](std::size_t c) -> const std::string& {
    return columns_[c].name;
  });
  for (const auto& row : rows_) {
    emit_line([&](std::size_t c) -> const std::string& { return row[c].text; });
  }
  return out;
}

std::string Table::to_csv() const {
  std::string out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out += ',';
    out += csv_escape(columns_[c].name);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += ',';
      out += csv_escape(row[c].csv);
    }
    out += '\n';
  }
  return out;
}

std::string Table::to_json() const {
  std::string out = "[";
  bool first_row = true;
  for (const auto& row : rows_) {
    if (!first_row) out += ',';
    first_row = false;
    out += '{';
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += ',';
      out += '"' + json_escape(columns_[c].name) + "\":" + row[c].json;
    }
    out += '}';
  }
  out += ']';
  return out;
}

}  // namespace msa::campaign::table
