// Shared table-emission layer for every campaign analysis surface
// (SweepReport CSV/JSON, `stats`, `diff`). One definition of the value
// formats — shortest-round-trip doubles, RFC-4180 CSV quoting, JSON
// escaping — so the emitters cannot drift apart, plus a small Table
// abstraction that renders the same rows as an aligned text table, a
// strict single-header CSV, or a JSON array of objects. All output is
// byte-stable: no locale, no pointers, no timestamps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/axis.h"

namespace msa::campaign::table {

/// Shortest round-trip-exact decimal form (std::to_chars), with "inf" /
/// "-inf" / "nan" spelled out so CSV output agrees byte-for-byte across
/// runs. Integral values keep their plain form ("60", not "6e+01").
[[nodiscard]] std::string format_double(double v);

/// Fixed decimals for human-facing text columns (alignment beats
/// round-tripping there).
[[nodiscard]] std::string fixed(double v, int decimals);

/// RFC-4180 field quoting: the field is wrapped in double quotes (with
/// embedded quotes doubled) when it contains a comma, quote, newline, or
/// carriage return. `\r` is in the trigger set deliberately — a bare CR
/// inside an unquoted field splits the row in most strict readers.
[[nodiscard]] std::string csv_escape(const std::string& s);

/// JSON string-body escaping (caller supplies the surrounding quotes).
[[nodiscard]] std::string json_escape(const std::string& s);

/// JSON numeric token. JSON has no literal for infinity or NaN: NaN
/// becomes null, infinities the overflow sentinels +/-1e999 (documented
/// in README).
[[nodiscard]] std::string json_double(double v);

/// One table cell, pre-rendered per output format. The three forms may
/// legitimately differ: a rate prints with fixed decimals in text but
/// round-trip-exact in CSV, and JSON needs a typed token (quoted string,
/// bare number, true/false, null).
struct Cell {
  std::string text;  ///< text-table rendering (padded on emit)
  std::string csv;   ///< raw CSV field (escaped on emit)
  std::string json;  ///< complete JSON token, already escaped/quoted
};

[[nodiscard]] Cell str_cell(const std::string& s);
[[nodiscard]] Cell count_cell(std::uint64_t n);
/// Round-trip-exact in every format.
[[nodiscard]] Cell num_cell(double v);
/// Fixed `text_decimals` in text, round-trip-exact in CSV/JSON.
[[nodiscard]] Cell num_cell(double v, int text_decimals);
[[nodiscard]] Cell bool_cell(bool b);  ///< text yes/no, CSV/JSON true/false
/// "[low,high]" at 3 decimals — the one rendering of a confidence
/// interval every text table shares (CSV/JSON split the bounds into
/// numeric columns instead).
[[nodiscard]] Cell interval_cell(double low, double high);
/// P-value cell shared by the diff and gate surfaces: fixed 4 decimals
/// in text (a human reads "0.0317"; more digits is noise), round-trip
/// exact in CSV/JSON so thresholds can be re-applied downstream.
[[nodiscard]] Cell pvalue_cell(double p);
/// Blank text/CSV field, JSON null — for columns another section of a
/// flat CSV does not populate.
[[nodiscard]] Cell empty_cell();
/// Axis-value cell shared by the stats and diff emitters: canonical
/// label in text/CSV ("0"/"1" for bools, so cell rows join against
/// marginal `value` fields verbatim), typed token in JSON.
[[nodiscard]] Cell axis_value_cell(const AxisValue& v);
/// Text-table header for an axis column. Text tables have always
/// abbreviated scrubber_Bps to scrub_Bps for width; keeping the mapping
/// keeps pre-refactor text output byte-stable.
[[nodiscard]] std::string axis_text_header(const std::string& axis);

enum class Align : std::uint8_t { kLeft, kRight };

struct Column {
  std::string name;  ///< CSV header field and JSON object key
  Align align = Align::kRight;
};

/// Column-typed row collection with three renderers. Rendering is a pure
/// function of (columns, rows): text pads every column to its widest
/// member, CSV emits one header plus one line per row, JSON emits an
/// array of one object per row keyed by column name.
class Table {
 public:
  explicit Table(std::vector<Column> columns);

  /// Throws std::invalid_argument when the row arity mismatches the
  /// column set (a programming error in the caller).
  void add_row(std::vector<Cell> row);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Aligned fixed-width table, two-space gutters, no trailing spaces.
  [[nodiscard]] std::string to_text() const;
  /// Strict CSV: header row, then every row with exactly one field per
  /// column, quoted per csv_escape.
  [[nodiscard]] std::string to_csv() const;
  /// JSON array of objects ("[]" when empty) — callers wrap it in their
  /// own envelope.
  [[nodiscard]] std::string to_json() const;

 private:
  std::vector<Column> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace msa::campaign::table
