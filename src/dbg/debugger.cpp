#include "dbg/debugger.h"

#include "dbg/memory_firewall.h"
#include "util/strings.h"

namespace msa::dbg {

SystemDebugger::SystemDebugger(os::PetaLinuxSystem& system, os::Uid invoking_uid,
                               DebuggerAcl acl)
    : system_{system}, uid_{invoking_uid}, acl_{acl} {}

void SystemDebugger::check_physical() {
  if (!acl_.allows_physical(uid_)) {
    ++stats_.denials;
    throw DebuggerAccessDenied("debugger: physical access denied for uid " +
                               std::to_string(uid_));
  }
}

void SystemDebugger::check_process(os::Pid pid) {
  if (acl_.mode == AclMode::kDisabled) {
    ++stats_.denials;
    throw DebuggerAccessDenied("debugger disabled");
  }
  const os::Uid target_uid = system_.process(pid).uid();
  if (!acl_.allows_process(uid_, target_uid)) {
    ++stats_.denials;
    throw DebuggerAccessDenied("debugger: uid " + std::to_string(uid_) +
                               " denied access to pid " + std::to_string(pid));
  }
}

std::string SystemDebugger::ps() {
  if (acl_.mode == AclMode::kDisabled) {
    ++stats_.denials;
    throw DebuggerAccessDenied("debugger disabled");
  }
  ++stats_.ps_calls;
  return system_.ps_ef();
}

std::vector<os::Pid> SystemDebugger::pids() {
  if (acl_.mode == AclMode::kDisabled) {
    ++stats_.denials;
    throw DebuggerAccessDenied("debugger disabled");
  }
  ++stats_.ps_calls;
  return system_.pids();
}

std::string SystemDebugger::maps(os::Pid pid) {
  check_process(pid);
  ++stats_.maps_reads;
  // The PetaLinux proc access policy may still deny this even when the
  // debugger ACL allows it; both layers are modelled independently.
  return system_.proc_maps(uid_, pid);
}

std::uint64_t SystemDebugger::pagemap_entry(os::Pid pid, mem::VirtAddr va) {
  check_process(pid);
  ++stats_.pagemap_reads;
  const auto window = system_.proc_pagemap(uid_, pid, mem::vpn_of(va), 1);
  return window.empty() ? 0 : window.front();
}

std::optional<dram::PhysAddr> SystemDebugger::virt_to_phys(os::Pid pid,
                                                           mem::VirtAddr va) {
  const std::uint64_t raw = pagemap_entry(pid, va);
  return mem::phys_from_pagemap(raw, va);
}

std::uint32_t SystemDebugger::devmem32(dram::PhysAddr addr) {
  check_physical();
  if (firewall_ && !firewall_->allows(uid_, addr)) {
    ++stats_.denials;
    throw DebuggerAccessDenied("memory firewall: uid " + std::to_string(uid_) +
                               " denied devmem at " + util::hex_0x(addr));
  }
  ++stats_.devmem_reads;
  return system_.devmem_read32(addr);
}

void SystemDebugger::devmem_block(dram::PhysAddr addr,
                                  std::span<std::uint8_t> out) {
  if (out.empty()) return;
  check_physical();
  const std::uint64_t words = (out.size() + 3) / 4;
  if (firewall_) {
    for (std::uint64_t i = 0; i < words; ++i) {
      if (!firewall_->allows(uid_, addr + 4 * i)) {
        // The word loop had already read (and counted) i words before
        // hitting the denied one.
        stats_.devmem_reads += i;
        ++stats_.denials;
        throw DebuggerAccessDenied("memory firewall: uid " +
                                   std::to_string(uid_) +
                                   " denied devmem at " +
                                   util::hex_0x(addr + 4 * i));
      }
    }
  }
  stats_.devmem_reads += words;
  const std::size_t aligned = out.size() & ~std::size_t{3};
  if (aligned != 0) system_.dram().read_block(addr, out.first(aligned));
  if (aligned != out.size()) {
    // Tail: the loop reads a full word at the last aligned offset (with
    // that word's range check) and keeps only the remaining bytes.
    const std::uint32_t w = system_.devmem_read32(addr + aligned);
    for (std::size_t b = 0; aligned + b < out.size(); ++b) {
      out[aligned + b] = static_cast<std::uint8_t>((w >> (8 * b)) & 0xFF);
    }
  }
}

std::string SystemDebugger::devmem_command(dram::PhysAddr addr) {
  const std::uint32_t value = devmem32(addr);
  return "devmem " + util::hex_0x(addr) + "\n" + util::hex_0x(value, 8) + "\n";
}

}  // namespace msa::dbg
