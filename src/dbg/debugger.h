// Xilinx System Debugger (XSDB/XSCT) analogue.
//
// The paper's second contribution is that the manufacturer-provided
// debugger can be invoked from a *different user space* and grants
// unrestricted access to pids, maps, pagemaps, and — via the /dev/mem
// path — raw physical DRAM (devmem). On a CPU-Linux system those
// privileges are gated by the kernel; on the PetaLinux target they are
// not, because the debugger reaches local memory without host-OS
// mediation.
//
// SystemDebugger reifies that surface. Every verb mirrors a command from
// the paper's methodology:
//
//   ps()            -> "ps -ef"                 (attack step 1)
//   maps(pid)       -> "vim /proc/<pid>/maps"   (attack step 2)
//   pagemap_entry() -> pread(/proc/<pid>/pagemap)
//   virt_to_phys()  -> the paper's virtual_to_physical.out helper
//   devmem32()      -> "devmem <phys-addr>"     (attack step 3)
//
// A DebuggerAcl decides whether a verb is permitted for the invoking uid.
// AclMode::kUnrestricted reproduces the vulnerability; kOwnerOnly models a
// fixed debugger that refuses cross-user inspection; kDisabled models
// removing debugger access outright (e.g. production fuses).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "os/system.h"

namespace msa::dbg {

enum class AclMode { kUnrestricted, kOwnerOnly, kDisabled };

/// Thrown when the ACL denies a debugger verb.
struct DebuggerAccessDenied : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct DebuggerAcl {
  AclMode mode = AclMode::kUnrestricted;

  /// Physical-memory verbs (devmem) have no target process; they are
  /// allowed unless the debugger is disabled or owner-only is enforced
  /// with no way to attribute the address — a fixed debugger denies them
  /// to non-root.
  [[nodiscard]] bool allows_physical(os::Uid requester) const noexcept {
    switch (mode) {
      case AclMode::kUnrestricted: return true;
      case AclMode::kOwnerOnly: return requester == 0;
      case AclMode::kDisabled: return false;
    }
    return false;
  }

  [[nodiscard]] bool allows_process(os::Uid requester,
                                    os::Uid target_uid) const noexcept {
    switch (mode) {
      case AclMode::kUnrestricted: return true;
      case AclMode::kOwnerOnly: return requester == 0 || requester == target_uid;
      case AclMode::kDisabled: return false;
    }
    return false;
  }
};

struct DebuggerStats {
  std::uint64_t ps_calls = 0;
  std::uint64_t maps_reads = 0;
  std::uint64_t pagemap_reads = 0;
  std::uint64_t devmem_reads = 0;
  std::uint64_t denials = 0;
};

class MemoryFirewall;

class SystemDebugger {
 public:
  /// Attaches the debugger to a live system on behalf of `invoking_uid`.
  /// The system reference must outlive the debugger.
  SystemDebugger(os::PetaLinuxSystem& system, os::Uid invoking_uid,
                 DebuggerAcl acl = {});

  /// Installs (or clears, with nullptr) a physical-access firewall on the
  /// devmem path. Non-owning; the firewall must outlive the debugger.
  void set_firewall(MemoryFirewall* firewall) noexcept {
    firewall_ = firewall;
  }

  [[nodiscard]] os::Uid invoking_uid() const noexcept { return uid_; }
  [[nodiscard]] const DebuggerAcl& acl() const noexcept { return acl_; }
  [[nodiscard]] const DebuggerStats& stats() const noexcept { return stats_; }

  /// "ps -ef": full process listing text.
  [[nodiscard]] std::string ps();

  /// Live pids (parsed view of ps, for tooling).
  [[nodiscard]] std::vector<os::Pid> pids();

  /// /proc/<pid>/maps text for any process (ACL-checked).
  [[nodiscard]] std::string maps(os::Pid pid);

  /// Raw pagemap entry for one virtual page of a process (ACL-checked).
  [[nodiscard]] std::uint64_t pagemap_entry(os::Pid pid, mem::VirtAddr va);

  /// Full VA->PA translation, the virtual_to_physical helper from the
  /// paper's Fig. 8. Returns nullopt for unmapped pages.
  [[nodiscard]] std::optional<dram::PhysAddr> virt_to_phys(os::Pid pid,
                                                           mem::VirtAddr va);

  /// "devmem <addr>": 32-bit read of physical DRAM (ACL-checked).
  [[nodiscard]] std::uint32_t devmem32(dram::PhysAddr addr);

  /// Bulk devmem: fills `out` with the bytes the word loop
  /// `devmem32(addr), devmem32(addr+4), ...` would assemble
  /// (little-endian, the tail read as a full word), in one DRAM block
  /// read instead of one bus transaction per word. Observable behaviour
  /// is identical to the loop: same ACL check, the firewall consulted
  /// per 32-bit word (a denial counts the words already read, then
  /// throws the loop's exact message naming the denied word's address),
  /// and devmem_reads advances by ceil(out.size()/4).
  void devmem_block(dram::PhysAddr addr, std::span<std::uint8_t> out);

  /// Text transcript form of devmem32, matching the paper's Fig. 10
  /// ("devmem 0x61c6d730" -> "0x00000000").
  [[nodiscard]] std::string devmem_command(dram::PhysAddr addr);

 private:
  void check_physical();
  void check_process(os::Pid pid);

  os::PetaLinuxSystem& system_;
  os::Uid uid_;
  DebuggerAcl acl_;
  DebuggerStats stats_;
  MemoryFirewall* firewall_ = nullptr;
};

}  // namespace msa::dbg
