#include "dbg/memory_firewall.h"

namespace msa::dbg {

bool MemoryFirewall::allows(os::Uid requester, dram::PhysAddr addr) {
  ++stats_.checks;
  if (mode_ == FirewallMode::kDisabled) return true;
  if (requester == 0) return true;

  const mem::Pfn pfn = mem::PageFrameAllocator::phys_to_frame(addr);
  const auto& cfg = system_.allocator().config();
  if (pfn < cfg.first_pfn || pfn >= cfg.first_pfn + cfg.frame_count) {
    return true;  // outside the managed pool: not process memory
  }

  const mem::FrameInfo& info = system_.allocator().info(pfn);

  // Owner pids are recorded at allocation time; map them to uids through
  // the live process table (or the termination records for dead pids).
  auto uid_of_pid = [&](std::int64_t pid) -> std::optional<os::Uid> {
    if (pid == 0) return std::nullopt;
    if (system_.alive(pid)) return system_.process(pid).uid();
    for (const auto& rec : system_.terminated()) {
      if (rec.pid == pid) return rec.uid;
    }
    return std::nullopt;
  };

  if (info.owner_pid != 0) {
    // Live frame: must belong to one of the requester's processes.
    const auto owner_uid = uid_of_pid(info.owner_pid);
    if (owner_uid && *owner_uid == requester) return true;
    ++stats_.denials;
    return false;
  }

  // Freed frame.
  if (mode_ == FirewallMode::kLiveOwnerOnly) return true;  // half measure
  if (!info.ever_used) return true;  // never held data: nothing to leak
  const auto residue_uid = uid_of_pid(info.last_owner);
  if (residue_uid && *residue_uid == requester) return true;
  ++stats_.denials;
  return false;
}

}  // namespace msa::dbg
