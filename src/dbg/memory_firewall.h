// Memory firewall for the debugger's physical-access path.
//
// The paper's conclusion places the burden on the FPGA manufacturer:
// "Since the debugger accesses the local accelerator memory without host
// OS mediation, it falls on the FPGA manufacturer to restrict debugger
// access privileges." A blanket ACL (AclMode::kOwnerOnly) throws away
// devmem entirely; the surgical fix is an *owner-tracking firewall*:
// devmem of a physical address is allowed only if the frame's current
// owner — or, for freed frames, its *previous* owner — belongs to the
// requesting user. That preserves self-debugging (the legitimate use
// case) while closing exactly the residue-scraping channel.
//
// The firewall consults the frame allocator's ownership records, i.e. it
// models a hypervisor/firmware layer that has the same bookkeeping the
// kernel already keeps.
#pragma once

#include <cstdint>

#include "os/system.h"

namespace msa::dbg {

enum class FirewallMode {
  kDisabled,        ///< no filtering (the PetaLinux status quo)
  kLiveOwnerOnly,   ///< allow frames currently owned by the requester;
                    ///< freed frames are world-readable (half measure)
  kOwnerOrResidue,  ///< allow frames owned by the requester now or, when
                    ///< free, whose residue the requester produced
};

struct FirewallStats {
  std::uint64_t checks = 0;
  std::uint64_t denials = 0;
};

class MemoryFirewall {
 public:
  MemoryFirewall(const os::PetaLinuxSystem& system, FirewallMode mode)
      : system_{system}, mode_{mode} {}

  [[nodiscard]] FirewallMode mode() const noexcept { return mode_; }
  [[nodiscard]] const FirewallStats& stats() const noexcept { return stats_; }

  /// May `requester` (a uid) read the 32-bit word at `addr`?
  /// Root (uid 0) always may; addresses outside the managed pool (device
  /// registers, carveouts) are always allowed — the firewall only guards
  /// the process-memory pool.
  [[nodiscard]] bool allows(os::Uid requester, dram::PhysAddr addr);

 private:
  const os::PetaLinuxSystem& system_;
  FirewallMode mode_;
  FirewallStats stats_;
};

}  // namespace msa::dbg
