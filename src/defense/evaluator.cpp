#include "defense/evaluator.h"

#include <cstdio>

namespace msa::defense {

DefenseOutcome DefenseEvaluator::evaluate(const DefensePreset& preset,
                                          std::size_t trials) {
  DefenseOutcome out;
  out.preset_name = preset.name;
  out.trials = trials;

  double match_sum = 0.0;
  double psnr_sum = 0.0;
  std::size_t scored = 0;

  for (std::size_t t = 0; t < trials; ++t) {
    attack::ScenarioConfig cfg = preset.apply(base_);
    cfg.image_seed = base_.image_seed + t * 7919;  // vary the victim input
    cfg.system.seed = base_.system.seed + t;       // vary board entropy
    const attack::ScenarioResult r = attack::run_scenario(cfg);
    if (r.denied) {
      ++out.denied;
      continue;
    }
    if (r.model_identified_correctly) ++out.model_identified;
    if (r.pixel_match > attack::kFullSuccessPixelMatch) ++out.image_recovered;
    match_sum += r.pixel_match;
    psnr_sum += r.psnr > 0 ? r.psnr : 0.0;
    ++scored;
  }
  if (scored > 0) {
    out.mean_pixel_match = match_sum / static_cast<double>(scored);
    out.mean_psnr = psnr_sum / static_cast<double>(scored);
  }
  return out;
}

std::vector<DefenseOutcome> DefenseEvaluator::evaluate_all(std::size_t trials) {
  std::vector<DefenseOutcome> results;
  for (const auto& p : all_presets()) {
    results.push_back(evaluate(p, trials));
  }
  return results;
}

std::string DefenseEvaluator::format_table(
    const std::vector<DefenseOutcome>& outcomes) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%-18s %7s %7s %9s %10s %11s %9s\n",
                "defense", "trials", "denied", "model-id", "img-recov",
                "pixel-match", "psnr-db");
  out += line;
  for (const auto& o : outcomes) {
    std::snprintf(line, sizeof line,
                  "%-18s %7zu %7zu %8.0f%% %9.0f%% %11.4f %9.2f\n",
                  o.preset_name.c_str(), o.trials, o.denied, o.id_rate() * 100,
                  o.recovery_rate() * 100, o.mean_pixel_match, o.mean_psnr);
    out += line;
  }
  return out;
}

}  // namespace msa::defense
