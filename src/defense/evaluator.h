// DefenseEvaluator: measures every defense preset against the full attack
// (DESIGN.md Abl. A). For each preset it runs N independent scenario
// trials (varying the victim's input image and, optionally, the model)
// and aggregates: how often the attack was denied outright, how often the
// model was identified, how often the image came back, and with what
// fidelity.
#pragma once

#include <string>
#include <vector>

#include "attack/scenario.h"
#include "defense/presets.h"

namespace msa::defense {

struct DefenseOutcome {
  std::string preset_name;
  std::size_t trials = 0;
  std::size_t denied = 0;              ///< attack blocked before scraping
  std::size_t model_identified = 0;    ///< correct string identification
  std::size_t image_recovered = 0;  ///< pixel_match > attack::kFullSuccessPixelMatch
  double mean_pixel_match = 0.0;
  double mean_psnr = 0.0;

  [[nodiscard]] double id_rate() const noexcept {
    return trials ? static_cast<double>(model_identified) / trials : 0.0;
  }
  [[nodiscard]] double recovery_rate() const noexcept {
    return trials ? static_cast<double>(image_recovered) / trials : 0.0;
  }
};

class DefenseEvaluator {
 public:
  /// `base` provides the workload parameters (model, image size); each
  /// preset overrides only policy knobs.
  explicit DefenseEvaluator(attack::ScenarioConfig base) : base_{base} {}

  /// Evaluates one preset over `trials` runs with varying image seeds.
  [[nodiscard]] DefenseOutcome evaluate(const DefensePreset& preset,
                                        std::size_t trials);

  /// Evaluates every registered preset.
  [[nodiscard]] std::vector<DefenseOutcome> evaluate_all(std::size_t trials);

  /// Fixed-width table of outcomes (the Abl. A artifact).
  [[nodiscard]] static std::string format_table(
      const std::vector<DefenseOutcome>& outcomes);

 private:
  attack::ScenarioConfig base_;
};

}  // namespace msa::defense
