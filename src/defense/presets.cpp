#include "defense/presets.h"

#include <stdexcept>

namespace msa::defense {

attack::ScenarioConfig baseline_vulnerable(attack::ScenarioConfig base) {
  base.system.sanitize = mem::SanitizePolicy::kNone;
  base.system.placement = mem::PlacementPolicy::kSequentialLifo;
  base.system.proc_access = os::ProcAccessPolicy::kWorldReadable;
  base.system.heap_va_aslr = false;
  base.acl.mode = dbg::AclMode::kUnrestricted;
  return base;
}

namespace {

attack::ScenarioConfig zero_on_free(attack::ScenarioConfig base) {
  base = baseline_vulnerable(std::move(base));
  base.system.sanitize = mem::SanitizePolicy::kZeroOnFree;
  return base;
}

attack::ScenarioConfig zero_on_alloc(attack::ScenarioConfig base) {
  base = baseline_vulnerable(std::move(base));
  base.system.sanitize = mem::SanitizePolicy::kZeroOnAlloc;
  return base;
}

attack::ScenarioConfig physical_aslr(attack::ScenarioConfig base) {
  base = baseline_vulnerable(std::move(base));
  base.system.placement = mem::PlacementPolicy::kRandomized;
  return base;
}

attack::ScenarioConfig heap_va_aslr(attack::ScenarioConfig base) {
  base = baseline_vulnerable(std::move(base));
  base.system.heap_va_aslr = true;
  return base;
}

attack::ScenarioConfig proc_owner_only(attack::ScenarioConfig base) {
  base = baseline_vulnerable(std::move(base));
  base.system.proc_access = os::ProcAccessPolicy::kOwnerOrRoot;
  return base;
}

attack::ScenarioConfig debugger_owner_only(attack::ScenarioConfig base) {
  base = baseline_vulnerable(std::move(base));
  base.acl.mode = dbg::AclMode::kOwnerOnly;
  return base;
}

attack::ScenarioConfig debugger_disabled(attack::ScenarioConfig base) {
  base = baseline_vulnerable(std::move(base));
  base.acl.mode = dbg::AclMode::kDisabled;
  return base;
}

attack::ScenarioConfig devmem_firewall(attack::ScenarioConfig base) {
  base = baseline_vulnerable(std::move(base));
  base.firewall = dbg::FirewallMode::kOwnerOrResidue;
  return base;
}

attack::ScenarioConfig devmem_firewall_weak(attack::ScenarioConfig base) {
  base = baseline_vulnerable(std::move(base));
  base.firewall = dbg::FirewallMode::kLiveOwnerOnly;
  return base;
}

}  // namespace

const std::vector<DefensePreset>& all_presets() {
  static const std::vector<DefensePreset> kPresets{
      {"baseline", "vulnerable PetaLinux defaults", &baseline_vulnerable},
      {"zero_on_free", "scrub frames when a process exits", &zero_on_free},
      {"zero_on_alloc", "scrub frames before reuse (residue persists while free)",
       &zero_on_alloc},
      {"physical_aslr", "randomized physical frame placement", &physical_aslr},
      {"heap_va_aslr", "randomized per-process heap base (VA only)",
       &heap_va_aslr},
      {"proc_owner_only", "maps/pagemap readable by owner or root only",
       &proc_owner_only},
      {"dbg_owner_only", "debugger refuses cross-user targets and physical reads",
       &debugger_owner_only},
      {"dbg_disabled", "debugger interface removed", &debugger_disabled},
      {"fw_owner_residue",
       "devmem firewall: own frames + own residue only (surgical fix)",
       &devmem_firewall},
      {"fw_live_only",
       "devmem firewall guarding live frames only (freed frames open)",
       &devmem_firewall_weak},
  };
  return kPresets;
}

const DefensePreset& preset(const std::string& name) {
  for (const auto& p : all_presets()) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("unknown defense preset: " + name);
}

}  // namespace msa::defense
