// Named defense configurations. Each preset hardens exactly one of the
// three holes the paper's §VI enumerates (plus the debugger ACL the
// conclusion says the manufacturer must fix), so the evaluator can
// attribute attack failure to a specific countermeasure:
//
//   1. "unrestricted access to the page map tables"  -> proc ACL / dbg ACL
//   2. "does not sanitize the physical memory"       -> zero-on-free/alloc
//   3. "no randomization in physical page layout"    -> placement random.
#pragma once

#include <string>
#include <vector>

#include "attack/scenario.h"

namespace msa::defense {

struct DefensePreset {
  std::string name;
  std::string description;
  /// Applies the preset's policy changes to a baseline scenario config.
  attack::ScenarioConfig (*apply)(attack::ScenarioConfig base);
};

/// The vulnerable PetaLinux baseline (no defense).
[[nodiscard]] attack::ScenarioConfig baseline_vulnerable(
    attack::ScenarioConfig base);

/// All presets, baseline first. Ordered for report tables.
[[nodiscard]] const std::vector<DefensePreset>& all_presets();

/// Lookup by name; throws std::invalid_argument when unknown.
[[nodiscard]] const DefensePreset& preset(const std::string& name);

}  // namespace msa::defense
