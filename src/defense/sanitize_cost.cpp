#include "defense/sanitize_cost.h"

#include <map>
#include <set>

namespace msa::defense {

SanitizeCostReport SanitizeCostModel::cost(
    const std::vector<mem::Pfn>& freed_frames,
    const std::vector<mem::Pfn>& live_frames) {
  constexpr std::uint64_t kPage = mem::PageFrameAllocator::kPageSize;

  SanitizeCostReport report;
  report.frames = freed_frames.size();
  report.bytes_requested = freed_frames.size() * kPage;

  // CPU store path: zero each freed frame individually.
  timing_.reset();
  for (const mem::Pfn pfn : freed_frames) {
    report.cpu_zero_ns += timing_.cpu_zero_ns(
        mem::PageFrameAllocator::frame_to_phys(pfn), kPage);
  }

  // In-DRAM paths: clear each freed frame's row span; dedupe rows since
  // one row op clears every page in the row.
  const std::uint32_t bytes_per_row = 8192;  // matches DramConfig defaults
  std::set<std::uint64_t> rows;
  for (const mem::Pfn pfn : freed_frames) {
    const dram::PhysAddr base = mem::PageFrameAllocator::frame_to_phys(pfn);
    rows.insert(base / bytes_per_row);
    rows.insert((base + kPage - 1) / bytes_per_row);
  }
  report.rows_touched = rows.size();

  timing_.reset();
  for (const std::uint64_t row : rows) {
    report.rowclone_ns +=
        timing_.rowclone_zero_ns(row * bytes_per_row, bytes_per_row);
  }
  timing_.reset();
  for (const std::uint64_t row : rows) {
    report.rowreset_ns +=
        timing_.rowreset_zero_ns(row * bytes_per_row, bytes_per_row);
  }

  // Collateral: live frames overlapping a cleared row lose their bytes in
  // that row.
  const std::set<mem::Pfn> freed_set{freed_frames.begin(), freed_frames.end()};
  for (const mem::Pfn live : live_frames) {
    if (freed_set.count(live) != 0) continue;  // caller error tolerance
    const dram::PhysAddr base = mem::PageFrameAllocator::frame_to_phys(live);
    for (dram::PhysAddr a = base; a < base + kPage; a += bytes_per_row) {
      if (rows.count(a / bytes_per_row) != 0) {
        const dram::PhysAddr row_start = (a / bytes_per_row) * bytes_per_row;
        const dram::PhysAddr lo = std::max(base, row_start);
        const dram::PhysAddr hi =
            std::min<dram::PhysAddr>(base + kPage, row_start + bytes_per_row);
        report.collateral_bytes += hi - lo;
      }
    }
  }
  return report;
}

std::vector<mem::Pfn> make_frame_set(mem::Pfn first, std::uint64_t count,
                                     std::uint64_t stride) {
  std::vector<mem::Pfn> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(first + i * (stride == 0 ? 1 : stride));
  }
  return out;
}

}  // namespace msa::defense
