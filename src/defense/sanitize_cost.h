// Sanitization cost analysis (paper §I-B / related work).
//
// The paper argues that in-DRAM bulk-initialization schemes (RowClone,
// RowReset) are attractive for contiguous regions but dangerous for the
// non-contiguous page layouts of multi-tenant FPGAs: clearing whole rows
// can wipe a co-resident active tenant's data. This module quantifies
// both sides:
//
//   * cost:       ns to zero a set of freed frames with CPU stores vs
//                 RowClone vs RowReset (via the DRAM timing model);
//   * collateral: bytes of *other* owners' live data destroyed when the
//                 in-DRAM scheme rounds the freed set up to whole rows.
#pragma once

#include <cstdint>
#include <vector>

#include "dram/timing_model.h"
#include "mem/frame_allocator.h"

namespace msa::defense {

struct SanitizeCostReport {
  std::uint64_t frames = 0;
  std::uint64_t bytes_requested = 0;   ///< frames * page size
  double cpu_zero_ns = 0.0;            ///< store-based scrubbing
  double rowclone_ns = 0.0;
  double rowreset_ns = 0.0;
  std::uint64_t rows_touched = 0;      ///< whole rows the in-DRAM ops clear
  std::uint64_t collateral_bytes = 0;  ///< live non-victim bytes in those rows

  [[nodiscard]] double cpu_over_rowclone() const noexcept {
    return rowclone_ns > 0 ? cpu_zero_ns / rowclone_ns : 0.0;
  }
};

class SanitizeCostModel {
 public:
  explicit SanitizeCostModel(dram::DramTimingModel timing)
      : timing_{std::move(timing)} {}

  /// Costs zeroing the given frames. `live_frames` lists frames belonging
  /// to other (active) owners; any of their bytes inside a cleared row
  /// count as collateral damage. Frame lists need not be sorted.
  [[nodiscard]] SanitizeCostReport cost(const std::vector<mem::Pfn>& freed_frames,
                                        const std::vector<mem::Pfn>& live_frames);

  [[nodiscard]] const dram::DramTimingModel& timing() const noexcept {
    return timing_;
  }

 private:
  dram::DramTimingModel timing_;
};

/// Generates a freed-frame set: `count` frames starting at `first`, either
/// contiguous or scattered with the given stride (models multi-tenant
/// interleaving).
[[nodiscard]] std::vector<mem::Pfn> make_frame_set(mem::Pfn first,
                                                   std::uint64_t count,
                                                   std::uint64_t stride = 1);

}  // namespace msa::defense
