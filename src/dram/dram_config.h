// Board-level DRAM configuration. The paper demonstrates on the ZCU104 and
// re-verifies on the ZCU102 (generalizability, §I-C); both are Zynq
// UltraScale+ MPSoC boards whose PS DDR4 occupies the low physical address
// region. Addresses the paper reports (e.g. 0x61c6d730) fall inside the
// ZCU104's 2 GiB DDR-Low window, which is why our defaults mirror it.
#pragma once

#include <cstdint>
#include <string>

namespace msa::dram {

using PhysAddr = std::uint64_t;

struct DramConfig {
  std::string board_name;       ///< e.g. "zcu104"
  PhysAddr base = 0x0;          ///< start of the DDR window
  std::uint64_t size = 0;       ///< bytes of local DRAM
  std::uint32_t page_size = 4096;  ///< allocation granule (matches MMU pages)

  // Geometry used by the timing model and by RowClone/RowReset defenses.
  std::uint32_t row_bytes = 8192;   ///< one DRAM row (8 KiB typical DDR4 x64)
  std::uint32_t banks = 16;         ///< bank count (4 groups x 4 banks)

  [[nodiscard]] PhysAddr end() const noexcept { return base + size; }
  [[nodiscard]] bool contains(PhysAddr addr, std::uint64_t len = 1) const noexcept {
    return addr >= base && len <= size && addr - base <= size - len;
  }
  [[nodiscard]] std::uint64_t frames() const noexcept { return size / page_size; }

  /// ZCU104: Zynq UltraScale+ EV, 2 GiB PS DDR4 at 0x0 (DDR-Low).
  [[nodiscard]] static DramConfig zcu104();
  /// ZCU102: Zynq UltraScale+ EG, 4 GiB PS DDR4 (2 GiB low + high window);
  /// we model the low window plus an extended region.
  [[nodiscard]] static DramConfig zcu102();
  /// Tiny config for fast unit tests (16 MiB).
  [[nodiscard]] static DramConfig test_small();
};

inline DramConfig DramConfig::zcu104() {
  return DramConfig{.board_name = "zcu104",
                    .base = 0x0,
                    .size = 2ULL * 1024 * 1024 * 1024,
                    .page_size = 4096,
                    .row_bytes = 8192,
                    .banks = 16};
}

inline DramConfig DramConfig::zcu102() {
  return DramConfig{.board_name = "zcu102",
                    .base = 0x0,
                    .size = 4ULL * 1024 * 1024 * 1024,
                    .page_size = 4096,
                    .row_bytes = 8192,
                    .banks = 16};
}

inline DramConfig DramConfig::test_small() {
  return DramConfig{.board_name = "testboard",
                    .base = 0x0,
                    .size = 16ULL * 1024 * 1024,
                    .page_size = 4096,
                    .row_bytes = 8192,
                    .banks = 4};
}

}  // namespace msa::dram
