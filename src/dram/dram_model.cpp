#include "dram/dram_model.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "util/crc32.h"
#include "util/strings.h"

namespace msa::dram {

namespace {

void validate_config(const dram::DramConfig& config) {
  if (config.size == 0) throw std::invalid_argument("DramModel: zero-size DRAM");
  if (config.size % 4096 != 0) {
    throw std::invalid_argument("DramModel: size must be a multiple of 4 KiB");
  }
}

}  // namespace

DramModel::DramModel(DramConfig config) : config_{std::move(config)} {
  validate_config(config_);
}

void DramModel::reset(DramConfig config) {
  validate_config(config);
  config_ = std::move(config);
  for (auto& [index, block] : blocks_) recycle(std::move(block));
  blocks_.clear();
  stats_ = {};
}

void DramModel::recycle(Block&& block) {
  if (spare_.size() < kSpareBlocks) spare_.push_back(std::move(block));
}

void DramModel::check_range(PhysAddr addr, std::uint64_t len) const {
  if (!config_.contains(addr, len)) {
    throw std::out_of_range("DRAM access outside board window: addr=" +
                            util::hex_0x(addr) + " len=" + std::to_string(len));
  }
}

const DramModel::Block* DramModel::find_block(std::uint64_t index) const noexcept {
  const auto it = blocks_.find(index);
  return it == blocks_.end() ? nullptr : &it->second;
}

DramModel::Block& DramModel::touch_block(std::uint64_t index) {
  auto [it, inserted] = blocks_.try_emplace(index);
  if (inserted) {
    // Reuse parked storage when available: assign() on a spare block
    // re-zeroes in place without touching the allocator.
    if (!spare_.empty()) {
      it->second = std::move(spare_.back());
      spare_.pop_back();
    }
    it->second.assign(kBlockSize, 0);
    ++stats_.blocks_touched;
  }
  return it->second;
}

namespace {

template <typename Word>
Word load_le(const std::uint8_t* p) noexcept {
  Word w{};
  std::memcpy(&w, p, sizeof(Word));
  return w;  // host is little-endian; ARM Cortex-A53 in the paper is too
}

template <typename Word>
void store_le(std::uint8_t* p, Word w) noexcept {
  std::memcpy(p, &w, sizeof(Word));
}

}  // namespace

std::uint8_t DramModel::read8(PhysAddr addr) const {
  check_range(addr, 1);
  ++stats_.reads;
  stats_.bytes_read += 1;
  const std::uint64_t off = addr - config_.base;
  const Block* b = find_block(off / kBlockSize);
  return b ? (*b)[off % kBlockSize] : 0;
}

std::uint16_t DramModel::read16(PhysAddr addr) const {
  check_range(addr, 2);
  ++stats_.reads;
  stats_.bytes_read += 2;
  std::uint8_t buf[2] = {};
  const std::uint64_t off = addr - config_.base;
  for (int i = 0; i < 2; ++i) {
    const Block* b = find_block((off + i) / kBlockSize);
    buf[i] = b ? (*b)[(off + i) % kBlockSize] : 0;
  }
  return load_le<std::uint16_t>(buf);
}

std::uint32_t DramModel::read32(PhysAddr addr) const {
  check_range(addr, 4);
  ++stats_.reads;
  stats_.bytes_read += 4;
  const std::uint64_t off = addr - config_.base;
  if (off % kBlockSize <= kBlockSize - 4) {
    const Block* b = find_block(off / kBlockSize);
    return b ? load_le<std::uint32_t>(b->data() + off % kBlockSize) : 0;
  }
  std::uint8_t buf[4] = {};
  for (int i = 0; i < 4; ++i) {
    const Block* b = find_block((off + i) / kBlockSize);
    buf[i] = b ? (*b)[(off + i) % kBlockSize] : 0;
  }
  return load_le<std::uint32_t>(buf);
}

std::uint64_t DramModel::read64(PhysAddr addr) const {
  check_range(addr, 8);
  ++stats_.reads;
  stats_.bytes_read += 8;
  const std::uint64_t off = addr - config_.base;
  if (off % kBlockSize <= kBlockSize - 8) {
    const Block* b = find_block(off / kBlockSize);
    return b ? load_le<std::uint64_t>(b->data() + off % kBlockSize) : 0;
  }
  std::uint8_t buf[8] = {};
  for (int i = 0; i < 8; ++i) {
    const Block* b = find_block((off + i) / kBlockSize);
    buf[i] = b ? (*b)[(off + i) % kBlockSize] : 0;
  }
  return load_le<std::uint64_t>(buf);
}

void DramModel::write8(PhysAddr addr, std::uint8_t value) {
  check_range(addr, 1);
  ++stats_.writes;
  stats_.bytes_written += 1;
  const std::uint64_t off = addr - config_.base;
  touch_block(off / kBlockSize)[off % kBlockSize] = value;
}

void DramModel::write16(PhysAddr addr, std::uint16_t value) {
  check_range(addr, 2);
  ++stats_.writes;
  stats_.bytes_written += 2;
  std::uint8_t buf[2];
  store_le(buf, value);
  const std::uint64_t off = addr - config_.base;
  for (int i = 0; i < 2; ++i) {
    touch_block((off + i) / kBlockSize)[(off + i) % kBlockSize] = buf[i];
  }
}

void DramModel::write32(PhysAddr addr, std::uint32_t value) {
  check_range(addr, 4);
  ++stats_.writes;
  stats_.bytes_written += 4;
  const std::uint64_t off = addr - config_.base;
  if (off % kBlockSize <= kBlockSize - 4) {
    store_le(touch_block(off / kBlockSize).data() + off % kBlockSize, value);
    return;
  }
  std::uint8_t buf[4];
  store_le(buf, value);
  for (int i = 0; i < 4; ++i) {
    touch_block((off + i) / kBlockSize)[(off + i) % kBlockSize] = buf[i];
  }
}

void DramModel::write64(PhysAddr addr, std::uint64_t value) {
  check_range(addr, 8);
  ++stats_.writes;
  stats_.bytes_written += 8;
  const std::uint64_t off = addr - config_.base;
  if (off % kBlockSize <= kBlockSize - 8) {
    store_le(touch_block(off / kBlockSize).data() + off % kBlockSize, value);
    return;
  }
  std::uint8_t buf[8];
  store_le(buf, value);
  for (int i = 0; i < 8; ++i) {
    touch_block((off + i) / kBlockSize)[(off + i) % kBlockSize] = buf[i];
  }
}

void DramModel::read_block(PhysAddr addr, std::span<std::uint8_t> out) const {
  check_range(addr, out.size());
  stats_.bytes_read += out.size();
  ++stats_.reads;
  std::uint64_t off = addr - config_.base;
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t block_index = off / kBlockSize;
    const std::uint64_t in_block = off % kBlockSize;
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(kBlockSize - in_block, out.size() - done));
    const Block* b = find_block(block_index);
    if (b) {
      std::memcpy(out.data() + done, b->data() + in_block, chunk);
    } else {
      std::memset(out.data() + done, 0, chunk);
    }
    done += chunk;
    off += chunk;
  }
}

void DramModel::write_block(PhysAddr addr, std::span<const std::uint8_t> data) {
  check_range(addr, data.size());
  stats_.bytes_written += data.size();
  ++stats_.writes;
  std::uint64_t off = addr - config_.base;
  std::size_t done = 0;
  while (done < data.size()) {
    const std::uint64_t block_index = off / kBlockSize;
    const std::uint64_t in_block = off % kBlockSize;
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(kBlockSize - in_block, data.size() - done));
    std::memcpy(touch_block(block_index).data() + in_block, data.data() + done,
                chunk);
    done += chunk;
    off += chunk;
  }
}

void DramModel::zero_range(PhysAddr addr, std::uint64_t len) {
  fill_range(addr, len, 0);
}

void DramModel::fill_range(PhysAddr addr, std::uint64_t len, std::uint8_t value) {
  check_range(addr, len);
  stats_.bytes_written += len;
  ++stats_.writes;
  std::uint64_t off = addr - config_.base;
  std::uint64_t remaining = len;
  while (remaining > 0) {
    const std::uint64_t block_index = off / kBlockSize;
    const std::uint64_t in_block = off % kBlockSize;
    const std::uint64_t chunk = std::min(kBlockSize - in_block, remaining);
    if (value == 0 && in_block == 0 && chunk == kBlockSize) {
      // Whole-block zero: drop the block; absent blocks read as zero.
      const auto it = blocks_.find(block_index);
      if (it != blocks_.end()) {
        recycle(std::move(it->second));
        blocks_.erase(it);
      }
    } else {
      auto& b = touch_block(block_index);
      std::memset(b.data() + in_block, value, static_cast<std::size_t>(chunk));
    }
    off += chunk;
    remaining -= chunk;
  }
}

bool DramModel::any_nonzero(PhysAddr addr, std::uint64_t len) const {
  check_range(addr, len);
  std::uint64_t off = addr - config_.base;
  std::uint64_t remaining = len;
  while (remaining > 0) {
    const std::uint64_t block_index = off / kBlockSize;
    const std::uint64_t in_block = off % kBlockSize;
    const std::uint64_t chunk = std::min(kBlockSize - in_block, remaining);
    if (const Block* b = find_block(block_index)) {
      const auto* begin = b->data() + in_block;
      if (std::any_of(begin, begin + chunk, [](std::uint8_t v) { return v != 0; })) {
        return true;
      }
    }
    off += chunk;
    remaining -= chunk;
  }
  return false;
}

std::uint32_t DramModel::checksum(PhysAddr addr, std::uint64_t len) const {
  check_range(addr, len);
  // Stats match the old memcpy-through-a-64KiB-buffer implementation
  // (one read op per 64 KiB chunk), but the CRC now folds resident
  // blocks in place and absent stretches against a static zero page.
  stats_.reads += (len + 0xFFFF) >> 16;
  stats_.bytes_read += len;
  util::Crc32 crc;
  static constexpr std::uint8_t kZeros[kBlockSize] = {};
  visit_blocks(addr, len,
               [&crc](std::uint64_t, std::size_t n, const std::uint8_t* data) {
                 crc.update({data ? data : kZeros, n});
               });
  return crc.value();
}

}  // namespace msa::dram
