// Word-addressable model of the FPGA board's local DRAM.
//
// The security property under study is *remanence*: bytes written by a
// process stay in DRAM after the owning process terminates, unless some
// layer explicitly sanitizes them. The model therefore never clears
// storage implicitly — only explicit zero_range()/fill_range() calls
// (issued by OS sanitization policies or defenses) change content, exactly
// mirroring the paper's observation that PetaLinux performs no automatic
// memory sanitization.
//
// Storage is sparse (4 KiB blocks allocated on first touch) so a 2 GiB
// board image costs only what the workload actually dirties. Unwritten
// memory reads as zero, which matches a freshly powered DRAM model after
// initialization and keeps test fixtures cheap.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "dram/dram_config.h"

namespace msa::dram {

struct DramStats {
  std::uint64_t reads = 0;          ///< word-level read operations
  std::uint64_t writes = 0;         ///< word-level write operations
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t blocks_touched = 0; ///< sparse blocks materialized
};

class DramModel {
 public:
  explicit DramModel(DramConfig config);

  [[nodiscard]] const DramConfig& config() const noexcept { return config_; }
  [[nodiscard]] const DramStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// Drops all content and stats and adopts `config`: the model is
  /// byte-equivalent to a freshly constructed one (absent blocks read as
  /// zero). Block storage is parked on a bounded spare list so a pooled
  /// board's next life re-touches pages without allocating.
  void reset(DramConfig config);

  // --- word accessors (devmem semantics: aligned loads/stores) ----------
  [[nodiscard]] std::uint8_t read8(PhysAddr addr) const;
  [[nodiscard]] std::uint16_t read16(PhysAddr addr) const;
  [[nodiscard]] std::uint32_t read32(PhysAddr addr) const;
  [[nodiscard]] std::uint64_t read64(PhysAddr addr) const;
  void write8(PhysAddr addr, std::uint8_t value);
  void write16(PhysAddr addr, std::uint16_t value);
  void write32(PhysAddr addr, std::uint32_t value);
  void write64(PhysAddr addr, std::uint64_t value);

  // --- bulk accessors ----------------------------------------------------
  void read_block(PhysAddr addr, std::span<std::uint8_t> out) const;
  void write_block(PhysAddr addr, std::span<const std::uint8_t> data);

  /// Explicit sanitization primitives; the only paths that erase content.
  void zero_range(PhysAddr addr, std::uint64_t len);
  void fill_range(PhysAddr addr, std::uint64_t len, std::uint8_t value);

  /// True if any byte in [addr, addr+len) is nonzero. Cheap for untouched
  /// regions (sparse blocks absent => all zero).
  [[nodiscard]] bool any_nonzero(PhysAddr addr, std::uint64_t len) const;

  /// CRC-32 over a physical range; used to assert byte-exact residue.
  [[nodiscard]] std::uint32_t checksum(PhysAddr addr, std::uint64_t len) const;

  /// Number of sparse blocks currently materialized (memory footprint probe).
  [[nodiscard]] std::size_t materialized_blocks() const noexcept {
    return blocks_.size();
  }

  /// Visits [addr, addr+len) block by block, in address order, without
  /// copying: calls v(offset_from_addr, chunk_len, data) where data
  /// points at the resident bytes in place, or is nullptr for an
  /// untouched (all-zero) stretch. Each chunk stays within one 4 KiB
  /// block. Does not count toward DramStats — callers that model a read
  /// account for it themselves.
  template <typename Visitor>
  void visit_blocks(PhysAddr addr, std::uint64_t len, Visitor&& v) const {
    check_range(addr, len);
    std::uint64_t off = addr - config_.base;
    std::uint64_t done = 0;
    while (done < len) {
      const std::uint64_t block_index = off / kBlockSize;
      const std::uint64_t in_block = off % kBlockSize;
      const std::uint64_t chunk = std::min(kBlockSize - in_block, len - done);
      const Block* b = find_block(block_index);
      v(done, static_cast<std::size_t>(chunk),
        b ? b->data() + in_block : nullptr);
      done += chunk;
      off += chunk;
    }
  }

 private:
  static constexpr std::uint64_t kBlockSize = 4096;
  /// Spare-list cap: 4 MiB of parked block storage per model.
  static constexpr std::size_t kSpareBlocks = 1024;

  using Block = std::vector<std::uint8_t>;

  void check_range(PhysAddr addr, std::uint64_t len) const;
  [[nodiscard]] const Block* find_block(std::uint64_t index) const noexcept;
  [[nodiscard]] Block& touch_block(std::uint64_t index);
  void recycle(Block&& block);

  DramConfig config_;
  std::unordered_map<std::uint64_t, Block> blocks_;
  std::vector<Block> spare_;
  mutable DramStats stats_;
};

}  // namespace msa::dram
