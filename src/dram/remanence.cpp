#include "dram/remanence.h"

#include <cmath>
#include <vector>

namespace msa::dram {

double RemanenceModel::decay_probability(double elapsed_s) const noexcept {
  if (params_.refresh_active || elapsed_s <= 0.0) return 0.0;
  // P(decayed) = 1 - 2^(-t / half_life)
  return 1.0 - std::exp2(-elapsed_s / params_.retention_half_life_s);
}

std::uint64_t RemanenceModel::apply(DramModel& dram, PhysAddr addr,
                                    std::uint64_t len, double elapsed_s,
                                    util::Prng& prng) const {
  const double p = decay_probability(elapsed_s);
  if (p <= 0.0) return 0;

  std::uint64_t flipped = 0;
  std::vector<std::uint8_t> buf;
  constexpr std::uint64_t kChunk = 1 << 16;
  PhysAddr p_addr = addr;
  std::uint64_t remaining = len;
  while (remaining > 0) {
    const std::size_t chunk =
        static_cast<std::size_t>(remaining < kChunk ? remaining : kChunk);
    buf.resize(chunk);
    dram.read_block(p_addr, buf);
    bool dirty = false;
    for (auto& byte : buf) {
      for (int bit = 0; bit < 8; ++bit) {
        // Decide the discharge value of this cell, then flip toward it
        // with probability p if the stored value differs.
        const bool anti = prng.chance(params_.anti_cell_fraction);
        const std::uint8_t discharge = anti ? 1 : 0;
        const std::uint8_t current = (byte >> bit) & 1u;
        if (current != discharge && prng.chance(p)) {
          byte = static_cast<std::uint8_t>(byte ^ (1u << bit));
          ++flipped;
          dirty = true;
        }
      }
    }
    if (dirty) dram.write_block(p_addr, buf);
    p_addr += chunk;
    remaining -= chunk;
  }
  return flipped;
}

}  // namespace msa::dram
