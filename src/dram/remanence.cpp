#include "dram/remanence.h"

#include <bit>
#include <cmath>
#include <vector>

#include "obs/trace.h"

namespace msa::dram {

namespace {

constexpr std::uint64_t kChunk = 1 << 16;
constexpr std::size_t kWordBatch = 4096;  // 32 KiB of buffered draws

// uniform01 on a raw xoshiro word — must stay bit-identical to
// util::Prng::uniform01 so buffered draws decide exactly as live ones.
inline double to_u01(std::uint64_t w) noexcept {
  return static_cast<double>(w >> 11) * 0x1.0p-53;
}

// Decays one chunk in place, consuming draws from `draw` (a callable
// returning raw u64 PRNG words) in the same data-dependent per-bit
// order as the original loop: an anti-cell draw per bit iff
// 0 < f < 1, then a flip draw iff the stored bit differs from its
// discharge value and p < 1. Flips are applied as 64-bit XOR masks,
// eight data bytes at a time.
template <typename DrawU64>
std::uint64_t decay_chunk(std::uint8_t* data, std::size_t n, double p,
                          double f, bool& dirty, DrawU64&& draw) {
  const bool anti_all0 = f <= 0.0;
  const bool anti_all1 = f >= 1.0;
  const bool p_certain = p >= 1.0;
  std::uint64_t flipped = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t word = 0;
    for (int b = 0; b < 8; ++b) {
      word |= static_cast<std::uint64_t>(data[i + b]) << (8 * b);
    }
    // No anti draws and every cell discharges to 0: an all-zero word
    // consumes nothing and flips nothing.
    if (anti_all0 && word == 0) continue;
    std::uint64_t mask = 0;
    for (int bit = 0; bit < 64; ++bit) {
      bool anti;
      if (anti_all0) {
        anti = false;
      } else if (anti_all1) {
        anti = true;
      } else {
        anti = to_u01(draw()) < f;
      }
      const unsigned current = static_cast<unsigned>(word >> bit) & 1u;
      if (current != (anti ? 1u : 0u)) {
        if (p_certain || to_u01(draw()) < p) mask |= 1ULL << bit;
      }
    }
    if (mask != 0) {
      word ^= mask;
      for (int b = 0; b < 8; ++b) {
        data[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
      }
      flipped += static_cast<std::uint64_t>(std::popcount(mask));
      dirty = true;
    }
  }
  for (; i < n; ++i) {
    std::uint8_t byte = data[i];
    if (anti_all0 && byte == 0) continue;
    std::uint8_t mask = 0;
    for (int bit = 0; bit < 8; ++bit) {
      bool anti;
      if (anti_all0) {
        anti = false;
      } else if (anti_all1) {
        anti = true;
      } else {
        anti = to_u01(draw()) < f;
      }
      const unsigned current = static_cast<unsigned>(byte >> bit) & 1u;
      if (current != (anti ? 1u : 0u)) {
        if (p_certain || to_u01(draw()) < p) {
          mask = static_cast<std::uint8_t>(mask | (1u << bit));
        }
      }
    }
    if (mask != 0) {
      data[i] = static_cast<std::uint8_t>(byte ^ mask);
      flipped += static_cast<std::uint64_t>(std::popcount(mask));
      dirty = true;
    }
  }
  return flipped;
}

// A chunk with no discharge-to-1 cells and no nonzero data draws and
// flips nothing; skipping it whole keeps the draw stream aligned.
bool chunk_skippable(const std::uint8_t* data, std::size_t n,
                     double f) noexcept {
  if (f > 0.0) return false;
  for (std::size_t i = 0; i < n; ++i) {
    if (data[i] != 0) return false;
  }
  return true;
}

template <typename DrawU64>
std::uint64_t apply_chunked(DramModel& dram, PhysAddr addr, std::uint64_t len,
                            double p, double f,
                            std::vector<std::uint8_t>& buf, DrawU64&& draw) {
  std::uint64_t flipped = 0;
  PhysAddr p_addr = addr;
  std::uint64_t remaining = len;
  while (remaining > 0) {
    const std::size_t chunk =
        static_cast<std::size_t>(remaining < kChunk ? remaining : kChunk);
    if (buf.size() < chunk) buf.resize(chunk);
    const std::span<std::uint8_t> view{buf.data(), chunk};
    dram.read_block(p_addr, view);
    bool dirty = false;
    if (!chunk_skippable(view.data(), chunk, f)) {
      flipped += decay_chunk(view.data(), chunk, p, f, dirty, draw);
    }
    if (dirty) dram.write_block(p_addr, view);
    p_addr += chunk;
    remaining -= chunk;
  }
  return flipped;
}

}  // namespace

double RemanenceModel::decay_probability(double elapsed_s) const noexcept {
  if (params_.refresh_active || elapsed_s <= 0.0) return 0.0;
  // P(decayed) = 1 - 2^(-t / half_life)
  return 1.0 - std::exp2(-elapsed_s / params_.retention_half_life_s);
}

std::uint64_t RemanenceModel::apply(DramModel& dram, PhysAddr addr,
                                    std::uint64_t len, double elapsed_s,
                                    util::Prng& prng) const {
  const double p = decay_probability(elapsed_s);
  if (p <= 0.0) return 0;
  std::vector<std::uint8_t> buf;
  // Draw live from the caller's prng: its end state matches the
  // original per-bit loop exactly.
  return apply_chunked(dram, addr, len, p, params_.anti_cell_fraction, buf,
                       [&prng] { return prng(); });
}

std::uint64_t RemanenceModel::apply(DramModel& dram, PhysAddr addr,
                                    std::uint64_t len, double elapsed_s,
                                    util::Prng& prng,
                                    RemanenceScratch& scratch) const {
  if (scratch.p_elapsed_s != elapsed_s) {
    scratch.p = decay_probability(elapsed_s);
    scratch.p_elapsed_s = elapsed_s;
  }
  const double p = scratch.p;
  if (p <= 0.0) return 0;
  auto draw = [&scratch, &prng]() -> std::uint64_t {
    if (scratch.next_word == scratch.words.size()) {
      TRACE_SPAN("trial", "residue_decay/prng_fill");
      scratch.words.resize(kWordBatch);
      for (auto& w : scratch.words) w = prng();
      scratch.next_word = 0;
    }
    return scratch.words[scratch.next_word++];
  };
  return apply_chunked(dram, addr, len, p, params_.anti_cell_fraction,
                       scratch.bytes, draw);
}

}  // namespace msa::dram
