// Remanence / decay model.
//
// On the paper's boards DRAM is continuously refreshed while powered, so a
// terminated process's data survives bit-exact — that is the headline
// vulnerability. This module makes the remanence assumption explicit and
// testable, and additionally supports an ablation where refresh is
// interrupted (e.g. a board power-cycle between victim and attacker):
// cells decay toward their discharge value with a per-bit probability that
// grows with elapsed time, following the exponential retention model used
// in cold-boot literature. The ablation shows how recovery quality
// degrades when the attacker cannot scrape promptly.
#pragma once

#include <cstdint>

#include "dram/dram_model.h"
#include "util/prng.h"

namespace msa::dram {

struct RemanenceParams {
  /// True on a powered, refreshed board (the paper's setting): no decay.
  bool refresh_active = true;
  /// Retention half-life (seconds) of a cell once refresh stops at the
  /// operating temperature. Seconds-scale retention is typical near 45°C.
  double retention_half_life_s = 2.0;
  /// Fraction of cells that discharge toward '1' instead of '0'
  /// (anti-cells in true/anti-cell DRAM layouts).
  double anti_cell_fraction = 0.1;
};

class RemanenceModel {
 public:
  explicit RemanenceModel(RemanenceParams params = {}) : params_{params} {}

  [[nodiscard]] const RemanenceParams& params() const noexcept { return params_; }

  /// Probability that a given bit has flipped to its discharge value after
  /// `elapsed_s` seconds without refresh.
  [[nodiscard]] double decay_probability(double elapsed_s) const noexcept;

  /// Applies decay in place to [addr, addr+len). No-op when refresh is
  /// active. Returns the number of bits flipped.
  std::uint64_t apply(DramModel& dram, PhysAddr addr, std::uint64_t len,
                      double elapsed_s, util::Prng& prng) const;

 private:
  RemanenceParams params_;
};

}  // namespace msa::dram
