// Remanence / decay model.
//
// On the paper's boards DRAM is continuously refreshed while powered, so a
// terminated process's data survives bit-exact — that is the headline
// vulnerability. This module makes the remanence assumption explicit and
// testable, and additionally supports an ablation where refresh is
// interrupted (e.g. a board power-cycle between victim and attacker):
// cells decay toward their discharge value with a per-bit probability that
// grows with elapsed time, following the exponential retention model used
// in cold-boot literature. The ablation shows how recovery quality
// degrades when the attacker cannot scrape promptly.
#pragma once

#include <cstdint>
#include <vector>

#include "dram/dram_model.h"
#include "util/prng.h"

namespace msa::dram {

/// Reusable buffers for the batched decay path: the 64 KiB chunk staging
/// buffer (hoisted out of the per-chunk resize) and a block of raw PRNG
/// words pre-drawn from the caller's generator. Buffered words persist
/// across apply() calls that share the same scratch + prng, so a loop
/// over many pages consumes the generator's stream in exactly the same
/// draw order as the unbatched path; do not interleave other draws from
/// that prng between such calls.
struct RemanenceScratch {
  std::vector<std::uint8_t> bytes;
  std::vector<std::uint64_t> words;
  std::size_t next_word = 0;
  /// decay_probability memo (elapsed -> p), hoisted across same-delay calls.
  double p_elapsed_s = -1.0;
  double p = 0.0;
};

struct RemanenceParams {
  /// True on a powered, refreshed board (the paper's setting): no decay.
  bool refresh_active = true;
  /// Retention half-life (seconds) of a cell once refresh stops at the
  /// operating temperature. Seconds-scale retention is typical near 45°C.
  double retention_half_life_s = 2.0;
  /// Fraction of cells that discharge toward '1' instead of '0'
  /// (anti-cells in true/anti-cell DRAM layouts).
  double anti_cell_fraction = 0.1;
};

class RemanenceModel {
 public:
  explicit RemanenceModel(RemanenceParams params = {}) : params_{params} {}

  [[nodiscard]] const RemanenceParams& params() const noexcept { return params_; }

  /// Probability that a given bit has flipped to its discharge value after
  /// `elapsed_s` seconds without refresh.
  [[nodiscard]] double decay_probability(double elapsed_s) const noexcept;

  /// Applies decay in place to [addr, addr+len). No-op when refresh is
  /// active. Returns the number of bits flipped. Leaves `prng` in
  /// exactly the state the per-bit draw loop would: flips are
  /// bit-identical to the batched overload below.
  std::uint64_t apply(DramModel& dram, PhysAddr addr, std::uint64_t len,
                      double elapsed_s, util::Prng& prng) const;

  /// Batched variant: PRNG words are bulk-drawn into `scratch` and
  /// consumed in the same data-dependent per-bit order, flips are
  /// applied with word-at-a-time XOR masks, and the chunk buffer is
  /// reused across calls. The prng runs ahead of the draws actually
  /// consumed (the surplus sits buffered in scratch), so callers that
  /// keep drawing from the same prng afterwards must use the unbatched
  /// overload instead.
  std::uint64_t apply(DramModel& dram, PhysAddr addr, std::uint64_t len,
                      double elapsed_s, util::Prng& prng,
                      RemanenceScratch& scratch) const;

 private:
  RemanenceParams params_;
};

}  // namespace msa::dram
