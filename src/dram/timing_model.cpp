#include "dram/timing_model.h"

#include <stdexcept>

namespace msa::dram {

DramTimingModel::DramTimingModel(DramConfig config, TimingParams params)
    : config_{std::move(config)}, params_{params} {
  if (config_.banks == 0 || config_.row_bytes == 0) {
    throw std::invalid_argument("DramTimingModel: bad geometry");
  }
  open_row_.assign(config_.banks, -1);
}

DramLocation DramTimingModel::locate(PhysAddr addr) const noexcept {
  const std::uint64_t off = addr - config_.base;
  const std::uint64_t global_row = off / config_.row_bytes;
  DramLocation loc;
  loc.column = static_cast<std::uint32_t>(off % config_.row_bytes);
  loc.bank = static_cast<std::uint32_t>(global_row % config_.banks);
  loc.row = global_row / config_.banks;
  return loc;
}

double DramTimingModel::access_ns(PhysAddr addr, std::uint32_t bytes) noexcept {
  const DramLocation loc = locate(addr);
  double ns = 0.0;
  if (open_row_[loc.bank] == static_cast<std::int64_t>(loc.row)) {
    ++row_hits_;
    ns += params_.t_cas;
  } else {
    ++row_misses_;
    // Close the previously open row (if any) then activate the new one.
    if (open_row_[loc.bank] >= 0) ns += params_.t_rp;
    ns += params_.t_rcd + params_.t_cas;
    open_row_[loc.bank] = static_cast<std::int64_t>(loc.row);
  }
  // Burst transfer: one BL8 burst moves 64 bytes on a 64-bit channel.
  const std::uint32_t lines = (bytes + 63) / 64;
  ns += params_.t_burst * lines;
  return ns;
}

double DramTimingModel::cpu_zero_ns(PhysAddr addr, std::uint64_t len) noexcept {
  double ns = 0.0;
  PhysAddr p = addr;
  std::uint64_t remaining = len;
  while (remaining > 0) {
    const std::uint32_t chunk =
        static_cast<std::uint32_t>(remaining < 64 ? remaining : 64);
    ns += access_ns(p, chunk);
    p += chunk;
    remaining -= chunk;
  }
  return ns;
}

double DramTimingModel::rowclone_zero_ns(PhysAddr addr, std::uint64_t len,
                                         std::uint64_t* rows_touched) noexcept {
  const std::uint64_t first_row = (addr - config_.base) / config_.row_bytes;
  const std::uint64_t last_row =
      (addr - config_.base + (len == 0 ? 0 : len - 1)) / config_.row_bytes;
  const std::uint64_t rows = len == 0 ? 0 : last_row - first_row + 1;
  if (rows_touched) *rows_touched = rows;
  // Each cleared row invalidates the open-row state of its bank.
  for (std::uint64_t r = first_row; len != 0 && r <= last_row; ++r) {
    open_row_[static_cast<std::uint32_t>(r % config_.banks)] = -1;
  }
  return params_.t_rowclone * static_cast<double>(rows);
}

double DramTimingModel::rowreset_zero_ns(PhysAddr addr, std::uint64_t len,
                                         std::uint64_t* rows_touched) noexcept {
  const std::uint64_t first_row = (addr - config_.base) / config_.row_bytes;
  const std::uint64_t last_row =
      (addr - config_.base + (len == 0 ? 0 : len - 1)) / config_.row_bytes;
  const std::uint64_t rows = len == 0 ? 0 : last_row - first_row + 1;
  if (rows_touched) *rows_touched = rows;
  for (std::uint64_t r = first_row; len != 0 && r <= last_row; ++r) {
    open_row_[static_cast<std::uint32_t>(r % config_.banks)] = -1;
  }
  return params_.t_rowreset * static_cast<double>(rows);
}

std::uint64_t DramTimingModel::row_footprint_bytes(PhysAddr addr,
                                                   std::uint64_t len) const noexcept {
  if (len == 0) return 0;
  const std::uint64_t first_row = (addr - config_.base) / config_.row_bytes;
  const std::uint64_t last_row = (addr - config_.base + len - 1) / config_.row_bytes;
  return (last_row - first_row + 1) * config_.row_bytes;
}

void DramTimingModel::reset() noexcept {
  open_row_.assign(config_.banks, -1);
  row_hits_ = 0;
  row_misses_ = 0;
}

}  // namespace msa::dram
