// DDR4-style timing model for the board's local DRAM.
//
// Used by the sanitization-cost ablation (DESIGN.md Abl. B): the paper's
// related-work section argues that RowClone/RowReset-style in-DRAM bulk
// zeroing is fast for contiguous rows but hazardous for the non-contiguous
// page layouts of multi-tenant FPGAs. To measure that trade-off we need a
// cost for (a) CPU store-based zeroing, word by word through the memory
// controller, and (b) in-DRAM row operations.
//
// The model is deliberately first-order: per-bank open-row tracking with
// row-hit / row-miss / bank-conflict latencies taken from DDR4-2400
// datasheet-class numbers. It is a cost model, not a cycle-accurate DRAM
// simulator — the ablations need relative magnitudes, which this captures.
#pragma once

#include <cstdint>
#include <vector>

#include "dram/dram_config.h"

namespace msa::dram {

struct TimingParams {
  // All values in nanoseconds, DDR4-2400 class.
  double t_cas = 13.32;        ///< CL: column access (row already open)
  double t_rcd = 13.32;        ///< RAS-to-CAS: open a row
  double t_rp = 13.32;         ///< precharge: close a row
  double t_burst = 3.33;       ///< data burst per 64-byte line (BL8 @ 1200 MHz)
  double t_rowclone = 100.0;   ///< in-DRAM row copy/zero (RowClone FPM)
  double t_rowreset = 50.0;    ///< VDD/VSS manipulation per row (RowReset)
  std::uint32_t bus_bytes = 8; ///< 64-bit channel
};

/// Address decomposition result.
struct DramLocation {
  std::uint32_t bank = 0;
  std::uint64_t row = 0;
  std::uint32_t column = 0;
};

class DramTimingModel {
 public:
  DramTimingModel(DramConfig config, TimingParams params = {});

  [[nodiscard]] const TimingParams& params() const noexcept { return params_; }

  /// Maps a physical address to (bank, row, column) by bit slicing:
  /// column bits low, bank bits middle (for bank-level parallelism on
  /// strided access), row bits high.
  [[nodiscard]] DramLocation locate(PhysAddr addr) const noexcept;

  /// Cost in ns of one CPU-side access of `bytes` at `addr`, accounting
  /// for row hit/miss in the addressed bank. Updates open-row state.
  double access_ns(PhysAddr addr, std::uint32_t bytes) noexcept;

  /// Cost in ns of zeroing [addr, addr+len) with CPU stores (the software
  /// sanitization baseline): sequential 64-byte line writes through the
  /// controller.
  double cpu_zero_ns(PhysAddr addr, std::uint64_t len) noexcept;

  /// Cost in ns of zeroing whole rows covering [addr, addr+len) with
  /// RowClone-style in-DRAM operations. Returns cost; `rows_touched` out
  /// param (if non-null) reports how many rows were cleared — the
  /// collateral-damage analysis compares this span with the requested one.
  double rowclone_zero_ns(PhysAddr addr, std::uint64_t len,
                          std::uint64_t* rows_touched = nullptr) noexcept;

  /// Same accounting for RowReset (per-row VDD/VSS reset).
  double rowreset_zero_ns(PhysAddr addr, std::uint64_t len,
                          std::uint64_t* rows_touched = nullptr) noexcept;

  /// Bytes covered by the whole-row footprint of [addr, addr+len); the
  /// difference vs len is potential collateral damage to co-resident data.
  [[nodiscard]] std::uint64_t row_footprint_bytes(PhysAddr addr,
                                                  std::uint64_t len) const noexcept;

  void reset() noexcept;

  [[nodiscard]] std::uint64_t row_hits() const noexcept { return row_hits_; }
  [[nodiscard]] std::uint64_t row_misses() const noexcept { return row_misses_; }

 private:
  DramConfig config_;
  TimingParams params_;
  std::vector<std::int64_t> open_row_;  // per bank; -1 = closed
  std::uint64_t row_hits_ = 0;
  std::uint64_t row_misses_ = 0;
};

}  // namespace msa::dram
