#include "img/image.h"

#include <cmath>
#include <stdexcept>

#include "img/score_kernels.h"

namespace msa::img {

// The scoring kernels fold over pixels() reinterpreted as a raw byte
// span; that is only the RGB byte stream if Rgb stays a padding-free
// 3-byte struct.
static_assert(sizeof(Rgb) == 3);

Image::Image(std::uint32_t width, std::uint32_t height, Rgb fill)
    : width_{width}, height_{height} {
  if (width == 0 || height == 0) {
    throw std::invalid_argument("Image: zero dimension");
  }
  pixels_.assign(static_cast<std::size_t>(width) * height, fill);
}

Rgb& Image::at(std::uint32_t x, std::uint32_t y) {
  if (x >= width_ || y >= height_) throw std::out_of_range("Image::at");
  return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

const Rgb& Image::at(std::uint32_t x, std::uint32_t y) const {
  if (x >= width_ || y >= height_) throw std::out_of_range("Image::at");
  return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

std::vector<std::uint32_t> Image::to_words() const {
  std::vector<std::uint32_t> out;
  out.reserve(pixels_.size());
  for (const Rgb& p : pixels_) out.push_back(p.packed());
  return out;
}

Image Image::from_words(std::span<const std::uint32_t> words,
                        std::uint32_t width, std::uint32_t height) {
  if (words.size() < static_cast<std::size_t>(width) * height) {
    throw std::invalid_argument("Image::from_words: not enough words");
  }
  Image img{width, height};
  for (std::size_t i = 0; i < img.pixels_.size(); ++i) {
    img.pixels_[i] = Rgb::from_packed(words[i]);
  }
  return img;
}

std::vector<std::uint8_t> Image::to_rgb_bytes() const {
  std::vector<std::uint8_t> out;
  out.reserve(pixels_.size() * 3);
  for (const Rgb& p : pixels_) {
    out.push_back(p.r);
    out.push_back(p.g);
    out.push_back(p.b);
  }
  return out;
}

Image Image::from_rgb_bytes(std::span<const std::uint8_t> bytes,
                            std::uint32_t width, std::uint32_t height) {
  if (bytes.size() < static_cast<std::size_t>(width) * height * 3) {
    throw std::invalid_argument("Image::from_rgb_bytes: not enough bytes");
  }
  Image img{width, height};
  for (std::size_t i = 0; i < img.pixels_.size(); ++i) {
    img.pixels_[i] = Rgb{bytes[3 * i], bytes[3 * i + 1], bytes[3 * i + 2]};
  }
  return img;
}

void Image::fill_region(Rgb pixel, double fraction) {
  if (fraction <= 0.0) return;
  if (fraction > 1.0) fraction = 1.0;
  const std::size_t count =
      static_cast<std::size_t>(fraction * static_cast<double>(pixels_.size()));
  for (std::size_t i = 0; i < count; ++i) pixels_[i] = pixel;
}

Image make_test_image(std::uint32_t width, std::uint32_t height,
                      std::uint64_t seed) {
  Image img{width, height};
  util::Prng prng{seed};
  // Low-frequency gradients give the image structure; PRNG noise gives it
  // texture so reconstruction errors are visible in metrics.
  const double fx = 255.0 / static_cast<double>(width);
  const double fy = 255.0 / static_cast<double>(height);
  Rgb* px = img.pixels().data();
  for (std::uint32_t y = 0; y < height; ++y) {
    Rgb* row = px + static_cast<std::size_t>(y) * width;
    for (std::uint32_t x = 0; x < width; ++x) {
      const auto noise = static_cast<std::uint8_t>(prng.below(32));
      Rgb p;
      p.r = static_cast<std::uint8_t>(
          std::min(255.0, x * fx * 0.8 + noise));
      p.g = static_cast<std::uint8_t>(
          std::min(255.0, y * fy * 0.8 + noise));
      p.b = static_cast<std::uint8_t>(
          std::min(255.0, (x * fx + y * fy) * 0.4 + noise));
      row[x] = p;
    }
  }
  return img;
}

Image resize_nearest(const Image& src, std::uint32_t width, std::uint32_t height) {
  Image out{width, height};
  const Rgb* sp = src.pixels().data();
  Rgb* dp = out.pixels().data();
  for (std::uint32_t y = 0; y < height; ++y) {
    const std::uint32_t sy = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(y) * src.height() / height);
    const Rgb* srow = sp + static_cast<std::size_t>(sy) * src.width();
    Rgb* drow = dp + static_cast<std::size_t>(y) * width;
    for (std::uint32_t x = 0; x < width; ++x) {
      const std::uint32_t sx = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(x) * src.width() / width);
      drow[x] = srow[sx];
    }
  }
  return out;
}

double pixel_match_fraction(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height() || a.empty()) {
    return 0.0;
  }
  const auto pa = a.pixels();
  const auto pb = b.pixels();
  const std::size_t same = detail::match_count(
      reinterpret_cast<const std::uint8_t*>(pa.data()),
      reinterpret_cast<const std::uint8_t*>(pb.data()), pa.size());
  return static_cast<double>(same) / static_cast<double>(pa.size());
}

double psnr_db(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height() || a.empty()) {
    return -1.0;
  }
  const auto pa = a.pixels();
  const auto pb = b.pixels();
  // The u64 total of squared byte differences is <= 195075 * pixels,
  // far below 2^53 for any image we handle, so the double conversion is
  // exact and matches the old double-accumulation loop bit for bit.
  const std::uint64_t se = detail::squared_error(
      reinterpret_cast<const std::uint8_t*>(pa.data()),
      reinterpret_cast<const std::uint8_t*>(pb.data()), pa.size() * 3);
  const double mse =
      static_cast<double>(se) / static_cast<double>(pa.size() * 3);
  if (mse == 0.0) return 99.0;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace msa::img
