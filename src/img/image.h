// RGB888 image type plus the manipulations the paper's experiment uses:
// corrupting an image to the 0xFFFFFF sentinel (Fig. 4), filling with the
// 0x555555 profiling marker, and similarity metrics for judging how much
// of the victim's input the attack reconstructed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/prng.h"

namespace msa::img {

struct Rgb {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  bool operator==(const Rgb&) const = default;

  /// 0x00RRGGBB packing — the 32-bit word layout the runtime stages into
  /// DRAM, and what a devmem read of a pixel returns.
  [[nodiscard]] std::uint32_t packed() const noexcept {
    return (static_cast<std::uint32_t>(r) << 16) |
           (static_cast<std::uint32_t>(g) << 8) | b;
  }
  [[nodiscard]] static Rgb from_packed(std::uint32_t w) noexcept {
    return Rgb{static_cast<std::uint8_t>((w >> 16) & 0xFF),
               static_cast<std::uint8_t>((w >> 8) & 0xFF),
               static_cast<std::uint8_t>(w & 0xFF)};
  }
};

/// The corrupted-image sentinel the paper writes over the input (Fig. 4b).
inline constexpr Rgb kCorruptPixel{0xFF, 0xFF, 0xFF};
/// The offline-profiling marker (paper Step 4.b: "changing pixel values to
/// 0x555555").
inline constexpr Rgb kProfilingPixel{0x55, 0x55, 0x55};

class Image {
 public:
  Image() = default;
  Image(std::uint32_t width, std::uint32_t height, Rgb fill = {});

  [[nodiscard]] std::uint32_t width() const noexcept { return width_; }
  [[nodiscard]] std::uint32_t height() const noexcept { return height_; }
  [[nodiscard]] std::size_t pixel_count() const noexcept { return pixels_.size(); }
  [[nodiscard]] bool empty() const noexcept { return pixels_.empty(); }

  [[nodiscard]] Rgb& at(std::uint32_t x, std::uint32_t y);
  [[nodiscard]] const Rgb& at(std::uint32_t x, std::uint32_t y) const;

  [[nodiscard]] std::span<const Rgb> pixels() const noexcept { return pixels_; }
  [[nodiscard]] std::span<Rgb> pixels() noexcept { return pixels_; }

  /// Row-major packed 0x00RRGGBB words (one pixel per 32-bit word).
  [[nodiscard]] std::vector<std::uint32_t> to_words() const;
  [[nodiscard]] static Image from_words(std::span<const std::uint32_t> words,
                                        std::uint32_t width, std::uint32_t height);

  /// Row-major raw RGB888 bytes (3 bytes per pixel, no padding) — the
  /// in-memory form the victim's runtime stages into its heap. A fully
  /// corrupted (0xFFFFFF) image therefore reads back as unbroken FF bytes,
  /// reproducing the "FFFF FFFF" rows in the paper's Fig. 12 hexdump.
  [[nodiscard]] std::vector<std::uint8_t> to_rgb_bytes() const;
  [[nodiscard]] static Image from_rgb_bytes(std::span<const std::uint8_t> bytes,
                                            std::uint32_t width,
                                            std::uint32_t height);

  /// Overwrites a fraction of the image (top rows) with `pixel`. The paper
  /// corrupts ~the whole input but displays only ~80 % of it; fraction=1.0
  /// reproduces the experiment, smaller fractions support partial-corruption
  /// sweeps.
  void fill_region(Rgb pixel, double fraction = 1.0);

  bool operator==(const Image&) const = default;

 private:
  std::uint32_t width_ = 0;
  std::uint32_t height_ = 0;
  std::vector<Rgb> pixels_;
};

/// Deterministic synthetic "photograph": smooth gradients plus PRNG
/// texture, seeded — used as the victim's input everywhere the real
/// experiment used Xilinx's sample JPEG.
[[nodiscard]] Image make_test_image(std::uint32_t width, std::uint32_t height,
                                    std::uint64_t seed);

/// Nearest-neighbour resize (the runtime's input preprocessing step).
[[nodiscard]] Image resize_nearest(const Image& src, std::uint32_t width,
                                   std::uint32_t height);

/// Fraction of pixels identical between two equally sized images; 0 for
/// size mismatch.
[[nodiscard]] double pixel_match_fraction(const Image& a, const Image& b);

/// PSNR in dB between equally sized images (infinity -> returned as 99.0
/// sentinel for identical images). Returns negative value on size mismatch.
[[nodiscard]] double psnr_db(const Image& a, const Image& b);

}  // namespace msa::img
