#include "img/ppm.h"

#include <cctype>
#include <fstream>
#include <stdexcept>

namespace msa::img {

namespace {

/// Reads the next whitespace/comment-delimited token of a PPM header.
std::string next_token(const std::string& s, std::size_t& pos) {
  while (pos < s.size()) {
    if (std::isspace(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    } else if (s[pos] == '#') {
      while (pos < s.size() && s[pos] != '\n') ++pos;
    } else {
      break;
    }
  }
  const std::size_t start = pos;
  while (pos < s.size() && !std::isspace(static_cast<unsigned char>(s[pos]))) {
    ++pos;
  }
  if (start == pos) throw std::invalid_argument("ppm: truncated header");
  return s.substr(start, pos - start);
}

std::uint32_t parse_dim(const std::string& tok) {
  std::uint32_t v = 0;
  for (const char c : tok) {
    if (c < '0' || c > '9') throw std::invalid_argument("ppm: bad number");
    v = v * 10 + static_cast<std::uint32_t>(c - '0');
    if (v > 1 << 20) throw std::invalid_argument("ppm: dimension too large");
  }
  return v;
}

}  // namespace

std::string to_ppm(const Image& image) {
  std::string out = "P6\n" + std::to_string(image.width()) + " " +
                    std::to_string(image.height()) + "\n255\n";
  out.reserve(out.size() + image.pixel_count() * 3);
  for (const Rgb& p : image.pixels()) {
    out.push_back(static_cast<char>(p.r));
    out.push_back(static_cast<char>(p.g));
    out.push_back(static_cast<char>(p.b));
  }
  return out;
}

Image from_ppm(const std::string& ppm_bytes) {
  std::size_t pos = 0;
  if (next_token(ppm_bytes, pos) != "P6") {
    throw std::invalid_argument("ppm: not a P6 file");
  }
  const std::uint32_t width = parse_dim(next_token(ppm_bytes, pos));
  const std::uint32_t height = parse_dim(next_token(ppm_bytes, pos));
  const std::uint32_t maxval = parse_dim(next_token(ppm_bytes, pos));
  if (maxval != 255) throw std::invalid_argument("ppm: only maxval 255 supported");
  if (width == 0 || height == 0) throw std::invalid_argument("ppm: zero dimension");
  ++pos;  // single whitespace byte after maxval
  const std::size_t need = static_cast<std::size_t>(width) * height * 3;
  if (ppm_bytes.size() - pos < need) {
    throw std::invalid_argument("ppm: truncated raster");
  }
  Image img{width, height};
  auto px = img.pixels();
  for (std::size_t i = 0; i < px.size(); ++i) {
    px[i].r = static_cast<std::uint8_t>(ppm_bytes[pos + 3 * i]);
    px[i].g = static_cast<std::uint8_t>(ppm_bytes[pos + 3 * i + 1]);
    px[i].b = static_cast<std::uint8_t>(ppm_bytes[pos + 3 * i + 2]);
  }
  return img;
}

void write_ppm_file(const Image& image, const std::string& path) {
  std::ofstream f{path, std::ios::binary};
  if (!f) throw std::runtime_error("ppm: cannot open for write: " + path);
  const std::string bytes = to_ppm(image);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!f) throw std::runtime_error("ppm: write failed: " + path);
}

Image read_ppm_file(const std::string& path) {
  std::ifstream f{path, std::ios::binary};
  if (!f) throw std::runtime_error("ppm: cannot open for read: " + path);
  std::string bytes{std::istreambuf_iterator<char>{f},
                    std::istreambuf_iterator<char>{}};
  return from_ppm(bytes);
}

}  // namespace msa::img
