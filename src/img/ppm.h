// Binary PPM (P6) serialization for Image. The examples write the victim
// input, the corrupted variant and the reconstruction to disk so a human
// can compare them exactly as the paper's Fig. 4/12 do.
#pragma once

#include <string>

#include "img/image.h"

namespace msa::img {

/// Serializes to a P6 PPM byte string.
[[nodiscard]] std::string to_ppm(const Image& image);

/// Parses a P6 PPM byte string. Throws std::invalid_argument on malformed
/// input (bad magic, missing fields, truncated raster, maxval != 255).
[[nodiscard]] Image from_ppm(const std::string& ppm_bytes);

/// File conveniences; throw std::runtime_error on I/O failure.
void write_ppm_file(const Image& image, const std::string& path);
[[nodiscard]] Image read_ppm_file(const std::string& path);

}  // namespace msa::img
