#include "img/score_kernels.h"

#include <atomic>
#include <bit>

#if defined(MSA_ENABLE_SIMD) && (defined(__SSE2__) || defined(_M_X64))
#define MSA_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(MSA_ENABLE_SIMD) && defined(__aarch64__) && defined(__ARM_NEON)
#define MSA_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace msa::img {

namespace {

std::atomic<bool> g_simd_enabled{true};

std::size_t match_count_scalar(const std::uint8_t* a, const std::uint8_t* b,
                               std::size_t n_pixels) noexcept {
  std::size_t same = 0;
  for (std::size_t i = 0; i < n_pixels; ++i) {
    same += static_cast<std::size_t>((a[3 * i] == b[3 * i]) &
                                     (a[3 * i + 1] == b[3 * i + 1]) &
                                     (a[3 * i + 2] == b[3 * i + 2]));
  }
  return same;
}

std::uint64_t squared_error_scalar(const std::uint8_t* a,
                                   const std::uint8_t* b,
                                   std::size_t n_bytes) noexcept {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n_bytes; ++i) {
    const std::int32_t d =
        static_cast<std::int32_t>(a[i]) - static_cast<std::int32_t>(b[i]);
    sum += static_cast<std::uint64_t>(d * d);
  }
  return sum;
}

#if defined(MSA_SIMD_SSE2)

std::size_t match_count_sse2(const std::uint8_t* a, const std::uint8_t* b,
                             std::size_t n_pixels) noexcept {
  std::size_t same = 0;
  std::size_t i = 0;
  // 16 pixels = 48 bytes per step: three byte-equality movemasks build a
  // 48-bit lane mask, AND-folded so bit 3p survives iff all three bytes
  // of pixel p matched, then popcounted against the 0b001001... comb.
  for (; i + 16 <= n_pixels; i += 16) {
    const std::uint8_t* pa = a + 3 * i;
    const std::uint8_t* pb = b + 3 * i;
    const __m128i e0 = _mm_cmpeq_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb)));
    const __m128i e1 = _mm_cmpeq_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa + 16)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb + 16)));
    const __m128i e2 = _mm_cmpeq_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa + 32)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb + 32)));
    const std::uint64_t m =
        static_cast<std::uint64_t>(
            static_cast<unsigned>(_mm_movemask_epi8(e0))) |
        (static_cast<std::uint64_t>(
             static_cast<unsigned>(_mm_movemask_epi8(e1)))
         << 16) |
        (static_cast<std::uint64_t>(
             static_cast<unsigned>(_mm_movemask_epi8(e2)))
         << 32);
    const std::uint64_t all3 = m & (m >> 1) & (m >> 2);
    same += static_cast<std::size_t>(
        std::popcount(all3 & 0x0000249249249249ULL));
  }
  return same + match_count_scalar(a + 3 * i, b + 3 * i, n_pixels - i);
}

std::uint64_t squared_error_sse2(const std::uint8_t* a, const std::uint8_t* b,
                                 std::size_t n_bytes) noexcept {
  __m128i acc = _mm_setzero_si128();
  const __m128i zero = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 16 <= n_bytes; i += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i dlo = _mm_sub_epi16(_mm_unpacklo_epi8(va, zero),
                                      _mm_unpacklo_epi8(vb, zero));
    const __m128i dhi = _mm_sub_epi16(_mm_unpackhi_epi8(va, zero),
                                      _mm_unpackhi_epi8(vb, zero));
    // madd pairs the squares into 4 x u32 lanes, each <= 2 * 255^2, so
    // the lane sum below stays far inside u32 before widening to u64.
    const __m128i s = _mm_add_epi32(_mm_madd_epi16(dlo, dlo),
                                    _mm_madd_epi16(dhi, dhi));
    acc = _mm_add_epi64(acc, _mm_unpacklo_epi32(s, zero));
    acc = _mm_add_epi64(acc, _mm_unpackhi_epi32(s, zero));
  }
  std::uint64_t sum =
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(acc)) +
      static_cast<std::uint64_t>(
          _mm_cvtsi128_si64(_mm_unpackhi_epi64(acc, acc)));
  return sum + squared_error_scalar(a + i, b + i, n_bytes - i);
}

#elif defined(MSA_SIMD_NEON)

std::size_t match_count_neon(const std::uint8_t* a, const std::uint8_t* b,
                             std::size_t n_pixels) noexcept {
  std::size_t same = 0;
  std::size_t i = 0;
  for (; i + 16 <= n_pixels; i += 16) {
    // De-interleaving loads put each channel in its own lane vector, so
    // pixel equality is a three-way AND of per-channel compares.
    const uint8x16x3_t va = vld3q_u8(a + 3 * i);
    const uint8x16x3_t vb = vld3q_u8(b + 3 * i);
    const uint8x16_t eq = vandq_u8(
        vandq_u8(vceqq_u8(va.val[0], vb.val[0]),
                 vceqq_u8(va.val[1], vb.val[1])),
        vceqq_u8(va.val[2], vb.val[2]));
    same += vaddvq_u8(vandq_u8(eq, vdupq_n_u8(1)));
  }
  return same + match_count_scalar(a + 3 * i, b + 3 * i, n_pixels - i);
}

std::uint64_t squared_error_neon(const std::uint8_t* a, const std::uint8_t* b,
                                 std::size_t n_bytes) noexcept {
  std::uint64_t sum = 0;
  std::size_t i = 0;
  for (; i + 16 <= n_bytes; i += 16) {
    const uint8x16_t d = vabdq_u8(vld1q_u8(a + i), vld1q_u8(b + i));
    const uint16x8_t lo = vmull_u8(vget_low_u8(d), vget_low_u8(d));
    const uint16x8_t hi = vmull_u8(vget_high_u8(d), vget_high_u8(d));
    sum += vaddlvq_u16(lo) + vaddlvq_u16(hi);
  }
  return sum + squared_error_scalar(a + i, b + i, n_bytes - i);
}

#endif

bool use_simd() noexcept {
#if defined(MSA_SIMD_SSE2) || defined(MSA_SIMD_NEON)
  return g_simd_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

}  // namespace

void set_simd_enabled(bool on) noexcept {
  g_simd_enabled.store(on, std::memory_order_relaxed);
}

bool simd_enabled() noexcept { return use_simd(); }

const char* simd_backend() noexcept {
#if defined(MSA_SIMD_SSE2)
  if (use_simd()) return "sse2";
#elif defined(MSA_SIMD_NEON)
  if (use_simd()) return "neon";
#endif
  return "scalar";
}

namespace detail {

std::size_t match_count(const std::uint8_t* a, const std::uint8_t* b,
                        std::size_t n_pixels) noexcept {
#if defined(MSA_SIMD_SSE2)
  if (use_simd()) return match_count_sse2(a, b, n_pixels);
#elif defined(MSA_SIMD_NEON)
  if (use_simd()) return match_count_neon(a, b, n_pixels);
#endif
  return match_count_scalar(a, b, n_pixels);
}

std::uint64_t squared_error(const std::uint8_t* a, const std::uint8_t* b,
                            std::size_t n_bytes) noexcept {
#if defined(MSA_SIMD_SSE2)
  if (use_simd()) return squared_error_sse2(a, b, n_bytes);
#elif defined(MSA_SIMD_NEON)
  if (use_simd()) return squared_error_neon(a, b, n_bytes);
#endif
  return squared_error_scalar(a, b, n_bytes);
}

}  // namespace detail

}  // namespace msa::img
