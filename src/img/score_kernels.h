// Integer scoring kernels behind img::pixel_match_fraction / psnr_db.
//
// Both metrics reduce to exact integer folds over the contiguous RGB
// byte span (a pixel-equality popcount and a u64 sum of squared byte
// differences), so the scalar, SSE2, and NEON implementations produce
// bit-identical results — the squared-error total for any image this
// simulator handles stays far below 2^53, so converting the u64 sum to
// double loses nothing and the reduction order cannot matter.
//
// SIMD paths compile in under the MSA_ENABLE_SIMD CMake option (on
// x86-64/SSE2 or AArch64/NEON) and dispatch at runtime through
// set_simd_enabled(), so a single binary can exercise and byte-compare
// both paths; scalar is always compiled and is the fallback everywhere
// else.
#pragma once

#include <cstddef>
#include <cstdint>

namespace msa::img {

/// Runtime toggle for the SIMD scoring paths. No-op (stays scalar) when
/// SIMD support was not compiled in.
void set_simd_enabled(bool on) noexcept;
[[nodiscard]] bool simd_enabled() noexcept;

/// Backend the next scoring call will use: "sse2", "neon", or "scalar".
[[nodiscard]] const char* simd_backend() noexcept;

namespace detail {

/// Number of 3-byte RGB pixels that are equal in a and b (all three
/// channel bytes match). n_pixels is the pixel count; the byte spans are
/// 3 * n_pixels long.
[[nodiscard]] std::size_t match_count(const std::uint8_t* a,
                                      const std::uint8_t* b,
                                      std::size_t n_pixels) noexcept;

/// Sum over n_bytes of (a[i] - b[i])^2, exact in u64.
[[nodiscard]] std::uint64_t squared_error(const std::uint8_t* a,
                                          const std::uint8_t* b,
                                          std::size_t n_bytes) noexcept;

}  // namespace detail

}  // namespace msa::img
