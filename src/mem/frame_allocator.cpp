#include "mem/frame_allocator.h"

#include <algorithm>
#include <stdexcept>

namespace msa::mem {

PageFrameAllocator::PageFrameAllocator(dram::DramModel& dram,
                                       FrameAllocatorConfig config)
    : dram_{dram}, config_{config}, prng_{config.seed} {
  init();
}

void PageFrameAllocator::init() {
  if (config_.frame_count == 0) {
    throw std::invalid_argument("PageFrameAllocator: empty pool");
  }
  const dram::PhysAddr pool_end =
      frame_to_phys(config_.first_pfn + config_.frame_count);
  if (!dram_.config().contains(frame_to_phys(config_.first_pfn),
                               pool_end - frame_to_phys(config_.first_pfn))) {
    throw std::invalid_argument("PageFrameAllocator: pool outside DRAM window");
  }
  frames_.assign(config_.frame_count, FrameInfo{});
  free_list_.clear();
  free_list_.reserve(config_.frame_count);
  // Push descending so LIFO pop_back hands out ascending PFNs first — the
  // deterministic low-to-high layout the paper's profiling step relies on.
  for (std::uint64_t i = config_.frame_count; i-- > 0;) {
    free_list_.push_back(config_.first_pfn + i);
  }
  stats_ = {};
}

void PageFrameAllocator::reset(FrameAllocatorConfig config) {
  config_ = config;
  prng_ = util::Prng{config.seed};
  init();
}

std::size_t PageFrameAllocator::index_of(Pfn pfn) const {
  if (pfn < config_.first_pfn || pfn >= config_.first_pfn + config_.frame_count) {
    throw std::out_of_range("PageFrameAllocator: pfn outside pool");
  }
  return static_cast<std::size_t>(pfn - config_.first_pfn);
}

void PageFrameAllocator::scrub(Pfn pfn) {
  dram_.zero_range(frame_to_phys(pfn), kPageSize);
  ++stats_.frames_scrubbed;
  stats_.bytes_scrubbed += kPageSize;
}

std::optional<Pfn> PageFrameAllocator::allocate(std::int64_t owner_pid) {
  if (free_list_.empty()) return std::nullopt;

  Pfn pfn;
  switch (config_.placement) {
    case PlacementPolicy::kSequentialLifo:
      pfn = free_list_.back();
      free_list_.pop_back();
      break;
    case PlacementPolicy::kSequentialFifo:
      // The free list is kept in push order; take from the oldest end.
      // O(n) erase is fine at simulation scale.
      pfn = free_list_.front();
      free_list_.erase(free_list_.begin());
      break;
    case PlacementPolicy::kRandomized: {
      const std::size_t i =
          static_cast<std::size_t>(prng_.below(free_list_.size()));
      pfn = free_list_[i];
      free_list_[i] = free_list_.back();
      free_list_.pop_back();
      break;
    }
    default:
      throw std::logic_error("PageFrameAllocator: unknown placement policy");
  }

  auto& fi = frames_[index_of(pfn)];
  const bool dirty = fi.ever_used &&
                     dram_.any_nonzero(frame_to_phys(pfn), kPageSize);
  if (dirty) ++stats_.dirty_reuses;
  if (config_.sanitize == SanitizePolicy::kZeroOnAlloc && fi.ever_used) {
    scrub(pfn);
  }
  fi.owner_pid = owner_pid;
  fi.ever_used = true;
  ++stats_.allocations;
  return pfn;
}

void PageFrameAllocator::free(Pfn pfn) {
  auto& fi = frames_[index_of(pfn)];
  if (fi.owner_pid == 0) {
    throw std::logic_error("PageFrameAllocator: double free of frame");
  }
  fi.last_owner = fi.owner_pid;
  fi.owner_pid = 0;
  if (config_.sanitize == SanitizePolicy::kZeroOnFree) {
    scrub(pfn);
  }
  free_list_.push_back(pfn);
  ++stats_.frees;
}

const FrameInfo& PageFrameAllocator::info(Pfn pfn) const {
  return frames_[index_of(pfn)];
}

std::vector<Pfn> PageFrameAllocator::dirty_free_frames() const {
  std::vector<Pfn> out;
  for (const Pfn pfn : free_list_) {
    const auto& fi = frames_[pfn - config_.first_pfn];
    if (fi.ever_used && dram_.any_nonzero(frame_to_phys(pfn), kPageSize)) {
      out.push_back(pfn);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace msa::mem
