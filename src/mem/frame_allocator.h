// Physical page-frame allocator for the board's local DRAM.
//
// This is where the paper's first vulnerability lives: PetaLinux returns a
// terminated process's frames to the free pool *without clearing them*,
// and hands dirty frames to the next requester. The allocator makes every
// relevant knob an explicit policy:
//
//   SanitizePolicy::kNone        — the vulnerable PetaLinux behaviour.
//   SanitizePolicy::kZeroOnFree  — defense: scrub when frames are released.
//   SanitizePolicy::kZeroOnAlloc — defense: scrub before frames are reused
//                                  (residue persists in DRAM while free!).
//
//   PlacementPolicy::kSequentialLifo — deterministic layout (paper's
//                                      setting; enables offline profiling).
//   PlacementPolicy::kSequentialFifo — deterministic, delays reuse.
//   PlacementPolicy::kRandomized     — physical-layout randomization
//                                      (the paper's §VI defense #3).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dram/dram_model.h"
#include "util/prng.h"

namespace msa::mem {

using Pfn = std::uint64_t;  ///< page frame number (physical addr >> 12)

enum class SanitizePolicy { kNone, kZeroOnFree, kZeroOnAlloc };
enum class PlacementPolicy { kSequentialLifo, kSequentialFifo, kRandomized };

struct FrameAllocatorConfig {
  Pfn first_pfn = 0;             ///< first allocatable frame
  std::uint64_t frame_count = 0; ///< number of allocatable frames
  SanitizePolicy sanitize = SanitizePolicy::kNone;
  PlacementPolicy placement = PlacementPolicy::kSequentialLifo;
  std::uint64_t seed = 1;        ///< PRNG seed for kRandomized
};

struct FrameAllocatorStats {
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
  std::uint64_t dirty_reuses = 0;   ///< frames handed out still holding data
  std::uint64_t frames_scrubbed = 0;
  std::uint64_t bytes_scrubbed = 0;
};

/// Per-frame bookkeeping visible to forensics tooling and tests.
struct FrameInfo {
  std::int64_t owner_pid = 0;   ///< 0 = free
  std::int64_t last_owner = 0;  ///< pid that most recently dirtied it
  bool ever_used = false;
};

class PageFrameAllocator {
 public:
  static constexpr std::uint32_t kPageSize = 4096;
  static constexpr std::uint32_t kPageShift = 12;

  /// The allocator scrubs through `dram` when a sanitize policy demands
  /// it; the reference must outlive the allocator.
  PageFrameAllocator(dram::DramModel& dram, FrameAllocatorConfig config);

  /// Reinitializes in place to exactly the state a freshly constructed
  /// allocator over the same DRAM would have (frame table, free-list
  /// order, PRNG, stats), reusing vector storage — the board-pooling
  /// fast path for same-shape reuse.
  void reset(FrameAllocatorConfig config);

  [[nodiscard]] const FrameAllocatorConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const FrameAllocatorStats& stats() const noexcept { return stats_; }

  /// Allocates one frame for `owner_pid`. Returns std::nullopt when the
  /// pool is exhausted.
  [[nodiscard]] std::optional<Pfn> allocate(std::int64_t owner_pid);

  /// Releases a frame. Precondition: currently allocated. Applies the
  /// free-time sanitize policy.
  void free(Pfn pfn);

  /// Frame metadata (owner tracking); throws std::out_of_range for frames
  /// outside the pool.
  [[nodiscard]] const FrameInfo& info(Pfn pfn) const;

  [[nodiscard]] std::uint64_t free_frames() const noexcept {
    return free_list_.size();
  }
  [[nodiscard]] std::uint64_t used_frames() const noexcept {
    return config_.frame_count - free_list_.size();
  }

  /// All frames currently free but previously used (i.e. carrying residue
  /// if sanitize policy is kNone). Forensics/defense-evaluation helper.
  [[nodiscard]] std::vector<Pfn> dirty_free_frames() const;

  [[nodiscard]] static dram::PhysAddr frame_to_phys(Pfn pfn) noexcept {
    return static_cast<dram::PhysAddr>(pfn) << kPageShift;
  }
  [[nodiscard]] static Pfn phys_to_frame(dram::PhysAddr addr) noexcept {
    return addr >> kPageShift;
  }

 private:
  void init();
  [[nodiscard]] std::size_t index_of(Pfn pfn) const;
  void scrub(Pfn pfn);

  dram::DramModel& dram_;
  FrameAllocatorConfig config_;
  std::vector<Pfn> free_list_;     // back = next LIFO candidate
  std::vector<FrameInfo> frames_;  // indexed by pfn - first_pfn
  util::Prng prng_;
  FrameAllocatorStats stats_;
};

}  // namespace msa::mem
