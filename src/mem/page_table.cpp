#include "mem/page_table.h"

#include <stdexcept>

namespace msa::mem {

void PageTable::map(Vpn vpn, Pfn pfn) {
  const auto [it, inserted] = table_.emplace(vpn, pfn);
  if (!inserted) {
    throw std::logic_error("PageTable::map: vpn already mapped");
  }
}

Pfn PageTable::unmap(Vpn vpn) {
  const auto it = table_.find(vpn);
  if (it == table_.end()) {
    throw std::logic_error("PageTable::unmap: vpn not mapped");
  }
  const Pfn pfn = it->second;
  table_.erase(it);
  return pfn;
}

bool PageTable::is_mapped(Vpn vpn) const noexcept {
  return table_.find(vpn) != table_.end();
}

std::optional<Pfn> PageTable::lookup(Vpn vpn) const noexcept {
  const auto it = table_.find(vpn);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

std::optional<dram::PhysAddr> PageTable::translate(VirtAddr va) const noexcept {
  const auto pfn = lookup(vpn_of(va));
  if (!pfn) return std::nullopt;
  return PageFrameAllocator::frame_to_phys(*pfn) + page_offset(va);
}

}  // namespace msa::mem
