// Per-process page table: 4 KiB virtual pages to physical frames.
//
// On the paper's target this is the Linux page table that /proc/<pid>/
// pagemap exposes; the attack never touches hardware translation — it
// reads the translations through the pagemap interface (see pagemap.h) and
// then accesses physical DRAM directly with devmem. The PageTable here is
// the ground truth those views are generated from.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "dram/dram_config.h"
#include "mem/frame_allocator.h"

namespace msa::mem {

using VirtAddr = std::uint64_t;
using Vpn = std::uint64_t;  ///< virtual page number (va >> 12)

constexpr std::uint32_t kPageSize = PageFrameAllocator::kPageSize;
constexpr std::uint32_t kPageShift = PageFrameAllocator::kPageShift;

[[nodiscard]] constexpr Vpn vpn_of(VirtAddr va) noexcept { return va >> kPageShift; }
[[nodiscard]] constexpr std::uint32_t page_offset(VirtAddr va) noexcept {
  return static_cast<std::uint32_t>(va & (kPageSize - 1));
}

class PageTable {
 public:
  /// Installs a translation. Throws std::logic_error if the vpn is mapped.
  void map(Vpn vpn, Pfn pfn);

  /// Removes a translation; returns the pfn it held. Throws if unmapped.
  Pfn unmap(Vpn vpn);

  [[nodiscard]] bool is_mapped(Vpn vpn) const noexcept;

  /// VPN -> PFN lookup.
  [[nodiscard]] std::optional<Pfn> lookup(Vpn vpn) const noexcept;

  /// Full VA -> PA translation (carries the page offset through).
  [[nodiscard]] std::optional<dram::PhysAddr> translate(VirtAddr va) const noexcept;

  [[nodiscard]] std::size_t mapped_pages() const noexcept { return table_.size(); }

  /// Ordered (vpn, pfn) view, for pagemap generation and teardown.
  [[nodiscard]] const std::map<Vpn, Pfn>& entries() const noexcept { return table_; }

 private:
  std::map<Vpn, Pfn> table_;
};

}  // namespace msa::mem
