#include "mem/pagemap.h"

namespace msa::mem {

namespace {
constexpr std::uint64_t kPfnMask = (1ULL << 55) - 1;
constexpr std::uint64_t kSoftDirtyBit = 1ULL << 55;
constexpr std::uint64_t kExclusiveBit = 1ULL << 56;
constexpr std::uint64_t kFilePageBit = 1ULL << 61;
constexpr std::uint64_t kSwappedBit = 1ULL << 62;
constexpr std::uint64_t kPresentBit = 1ULL << 63;
}  // namespace

std::uint64_t PagemapEntry::encode() const noexcept {
  std::uint64_t raw = 0;
  if (present) raw |= kPresentBit;
  if (swapped) raw |= kSwappedBit;
  if (soft_dirty) raw |= kSoftDirtyBit;
  if (exclusive) raw |= kExclusiveBit;
  if (file_page) raw |= kFilePageBit;
  if (present && !swapped) raw |= pfn & kPfnMask;
  return raw;
}

PagemapEntry PagemapEntry::decode(std::uint64_t raw) noexcept {
  PagemapEntry e;
  e.present = (raw & kPresentBit) != 0;
  e.swapped = (raw & kSwappedBit) != 0;
  e.soft_dirty = (raw & kSoftDirtyBit) != 0;
  e.exclusive = (raw & kExclusiveBit) != 0;
  e.file_page = (raw & kFilePageBit) != 0;
  e.pfn = (e.present && !e.swapped) ? (raw & kPfnMask) : 0;
  return e;
}

std::vector<std::uint64_t> pagemap_window(const PageTable& table, Vpn first_vpn,
                                          std::uint64_t count) {
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    PagemapEntry e;
    if (const auto pfn = table.lookup(first_vpn + i)) {
      e.present = true;
      e.exclusive = true;  // anonymous private pages in our model
      e.pfn = *pfn;
    }
    out.push_back(e.encode());
  }
  return out;
}

std::optional<dram::PhysAddr> phys_from_pagemap(std::uint64_t raw_entry,
                                                VirtAddr va) noexcept {
  const PagemapEntry e = PagemapEntry::decode(raw_entry);
  if (!e.present || e.swapped) return std::nullopt;
  return (e.pfn << kPageShift) | page_offset(va);
}

}  // namespace msa::mem
