// Linux /proc/<pid>/pagemap binary format codec.
//
// The paper's Step 2 converts heap virtual addresses to physical DRAM
// addresses by reading the victim's pagemap file — possible because
// PetaLinux leaves pagemap world-accessible (the second vulnerability).
// We reproduce the real on-disk format so the attack-side translation code
// is the genuine algorithm, not a shortcut through simulator internals:
//
//   bits 0-54   page frame number (if present and not swapped)
//   bit  55     soft-dirty
//   bit  56     exclusively mapped
//   bit  61     file-page / shared-anon
//   bit  62     swapped
//   bit  63     present
//
// (See Documentation/admin-guide/mm/pagemap.rst in the Linux kernel.)
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/page_table.h"

namespace msa::mem {

struct PagemapEntry {
  bool present = false;
  bool swapped = false;
  bool soft_dirty = false;
  bool exclusive = false;
  bool file_page = false;
  std::uint64_t pfn = 0;  ///< valid only when present && !swapped

  [[nodiscard]] std::uint64_t encode() const noexcept;
  [[nodiscard]] static PagemapEntry decode(std::uint64_t raw) noexcept;

  bool operator==(const PagemapEntry&) const = default;
};

/// Generates the pagemap "file" contents for a contiguous VPN range
/// [first_vpn, first_vpn + count) of a process page table: one 64-bit
/// little-endian entry per page, exactly what pread() on the real file
/// returns at offset first_vpn * 8.
[[nodiscard]] std::vector<std::uint64_t> pagemap_window(const PageTable& table,
                                                        Vpn first_vpn,
                                                        std::uint64_t count);

/// The attacker-side translation: given a raw pagemap entry for va's page,
/// recover the physical address (or nullopt if the page is absent).
/// Mirrors the arithmetic in the paper's virtual_to_physical.c.
[[nodiscard]] std::optional<dram::PhysAddr> phys_from_pagemap(
    std::uint64_t raw_entry, VirtAddr va) noexcept;

}  // namespace msa::mem
