#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "campaign/table.h"

namespace msa::obs {

void Histogram::record(std::uint64_t v) noexcept {
  buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const noexcept {
  // Gate on count, not on the UINT64_MAX init sentinel: a histogram
  // whose one recorded value IS UINT64_MAX must report it, not 0.
  if (count_.load(std::memory_order_relaxed) == 0) return 0;
  return min_.load(std::memory_order_relaxed);
}

double Histogram::percentile(double p) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const double lo_clamp = static_cast<double>(min());
  const double hi_clamp = static_cast<double>(max());
  if (p <= 0.0) return lo_clamp;
  if (p >= 100.0) return hi_clamp;
  const double rank = p / 100.0 * static_cast<double>(n);
  double cum = 0.0;
  for (int b = 0; b < kBuckets; ++b) {
    const auto c =
        static_cast<double>(buckets_[b].load(std::memory_order_relaxed));
    if (c <= 0.0) continue;
    if (cum + c >= rank) {
      const double lo = (b == 0) ? 0.0 : std::ldexp(1.0, b - 1);
      const double hi = (b == 0) ? 0.0 : std::ldexp(1.0, b) - 1.0;
      const double frac = (rank - cum) / c;
      return std::clamp(lo + frac * (hi - lo), lo_clamp, hi_clamp);
    }
    cum += c;
  }
  return hi_clamp;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

namespace {

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

struct Entry {
  Kind kind = Kind::kCounter;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

std::mutex g_registry_mutex;

// Leaked deliberately: cached Counter& references in other translation
// units may be touched during static destruction; the registry must
// outlive them all.
std::map<std::string, Entry>& registry() {
  static auto* r = new std::map<std::string, Entry>;
  return *r;
}

Entry& find_or_create(std::string_view name, Kind kind) {
  const std::lock_guard lock{g_registry_mutex};
  auto [it, inserted] = registry().try_emplace(std::string(name));
  Entry& entry = it->second;
  if (inserted) {
    entry.kind = kind;
    switch (kind) {
      case Kind::kCounter: entry.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: entry.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
  } else if (entry.kind != kind) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered as a different kind");
  }
  return entry;
}

}  // namespace

Counter& counter(std::string_view name) {
  return *find_or_create(name, Kind::kCounter).counter;
}

Gauge& gauge(std::string_view name) {
  return *find_or_create(name, Kind::kGauge).gauge;
}

Histogram& histogram(std::string_view name) {
  return *find_or_create(name, Kind::kHistogram).histogram;
}

void reset_metrics() {
  const std::lock_guard lock{g_registry_mutex};
  for (auto& [name, entry] : registry()) {
    switch (entry.kind) {
      case Kind::kCounter: entry.counter->reset(); break;
      case Kind::kGauge: entry.gauge->reset(); break;
      case Kind::kHistogram: entry.histogram->reset(); break;
    }
  }
}

std::string render_metrics(MetricsFormat format) {
  namespace tbl = campaign::table;
  tbl::Table t{{
      {"metric", tbl::Align::kLeft},
      {"kind", tbl::Align::kLeft},
      {"value"},
      {"count"},
      {"min"},
      {"p50"},
      {"p90"},
      {"p99"},
      {"max"},
      {"sum"},
  }};
  const std::lock_guard lock{g_registry_mutex};
  for (const auto& [name, entry] : registry()) {
    switch (entry.kind) {
      case Kind::kCounter:
        t.add_row({tbl::str_cell(name), tbl::str_cell("counter"),
                   tbl::count_cell(entry.counter->value()), tbl::empty_cell(),
                   tbl::empty_cell(), tbl::empty_cell(), tbl::empty_cell(),
                   tbl::empty_cell(), tbl::empty_cell(), tbl::empty_cell()});
        break;
      case Kind::kGauge:
        t.add_row({tbl::str_cell(name), tbl::str_cell("gauge"),
                   tbl::num_cell(static_cast<double>(entry.gauge->value())),
                   tbl::empty_cell(), tbl::empty_cell(), tbl::empty_cell(),
                   tbl::empty_cell(), tbl::empty_cell(), tbl::empty_cell(),
                   tbl::empty_cell()});
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        t.add_row({tbl::str_cell(name), tbl::str_cell("histogram"),
                   tbl::empty_cell(), tbl::count_cell(h.count()),
                   tbl::count_cell(h.min()), tbl::num_cell(h.percentile(50), 1),
                   tbl::num_cell(h.percentile(90), 1),
                   tbl::num_cell(h.percentile(99), 1), tbl::count_cell(h.max()),
                   tbl::count_cell(h.sum())});
        break;
      }
    }
  }
  switch (format) {
    case MetricsFormat::kText: return t.to_text();
    case MetricsFormat::kCsv: return t.to_csv();
    case MetricsFormat::kJson: return "{\"metrics\":" + t.to_json() + "}\n";
  }
  return {};
}

}  // namespace msa::obs
