// Process-wide registry of named atomic metrics. Counters, gauges and
// log-bucketed histograms are registered on first use and live for the
// process; `metric("name")` returns a stable reference callers cache.
// Updates are relaxed atomics — cheap enough to run unconditionally, so
// unlike tracing there is no enable gate. A snapshot renders through
// the campaign/table emitters (`campaign_sweep metrics --format ...`).
//
// Metrics never feed back into results: the sweep report path reads
// counters only into the never-serialized telemetry fields, so reports
// stay byte-identical whether anyone looks at the registry or not.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace msa::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Power-of-two log-bucketed histogram of non-negative values (bucket b
/// holds values whose bit width is b, so bucket 0 is exactly {0} and
/// bucket b covers [2^(b-1), 2^b - 1]). Tracks exact count/sum/min/max;
/// percentiles interpolate linearly inside a bucket and are clamped to
/// [min, max], so a single-valued histogram reports that value at every
/// percentile.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void record(std::uint64_t v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// 0 when empty.
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  /// Estimated p-th percentile. Empty histogram → 0; p <= 0 → min;
  /// p >= 100 → max.
  [[nodiscard]] double percentile(double p) const noexcept;

  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

/// Registry lookups: find-or-create by name. The returned reference is
/// valid for the rest of the process. Throws std::logic_error when the
/// name is already registered as a different kind.
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name);

/// Zeroes every registered metric (registrations and references stay
/// valid). For tests and bench baselining.
void reset_metrics();

enum class MetricsFormat { kText, kCsv, kJson };

/// Snapshot of every registered metric, one row per metric sorted by
/// name, rendered through campaign::table. Columns: metric, kind,
/// value (counter/gauge), then count/min/p50/p90/p99/max/sum for
/// histograms (blank/null elsewhere). JSON output is the envelope
/// {"metrics":[...]}.
[[nodiscard]] std::string render_metrics(MetricsFormat format);

}  // namespace msa::obs
