#include "obs/progress.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <set>
#include <stdexcept>

#include "campaign/table.h"

namespace msa::obs {

namespace {

persist::StoreManifest discover_manifest(const std::string& dir) {
  std::error_code ec;
  std::vector<std::string> lease_files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().filename().string().ends_with(".lease")) {
      lease_files.push_back(entry.path().string());
    }
  }
  if (ec) {
    throw std::runtime_error("obs: cannot list workers dir: " + dir + ": " +
                             ec.message());
  }
  std::sort(lease_files.begin(), lease_files.end());
  for (const std::string& path : lease_files) {
    if (const auto manifest = persist::read_lease_manifest(path)) {
      return *manifest;
    }
  }
  throw std::runtime_error("obs: no readable lease log in workers dir: " + dir);
}

std::string worker_id_of(const std::string& lease_file_name) {
  constexpr std::string_view kSuffix = ".lease";
  return lease_file_name.substr(0, lease_file_name.size() - kSuffix.size());
}

}  // namespace

ProgressView::ProgressView(const std::string& dir)
    : dir_{dir},
      manifest_{discover_manifest(dir)},
      scanner_{dir, /*skip=*/"", manifest_} {}

ProgressSnapshot ProgressView::poll() {
  scanner_.refresh(/*idle=*/false);

  ProgressSnapshot snapshot;
  snapshot.total_cells = manifest_.grid_cells;
  snapshot.trials_per_cell = manifest_.trials_per_cell;

  std::set<std::uint64_t> completed;
  std::set<std::uint64_t> claimed;
  // std::map iteration is name-sorted, so workers land sorted by id.
  for (const auto& [name, state] : scanner_.workers()) {
    WorkerProgress wp;
    wp.id = worker_id_of(name);
    wp.claimed = state.claimed.size();
    wp.completed = state.completed.size();
    completed.insert(state.completed.begin(), state.completed.end());
    claimed.insert(state.claimed.begin(), state.claimed.end());

    auto [tailer, first_time] = tailers_.try_emplace(
        wp.id, persist::LeaseScheduler::store_path(dir_, wp.id));
    (void)first_time;
    const persist::StoreTailer::Counts counts = tailer->second.poll();
    wp.trials = counts.trials;
    snapshot.trials_done += counts.trials;

    const std::uint64_t store_records = counts.trials + counts.cells;
    wp.advanced = state.frames > last_lease_frames_[wp.id] ||
                  store_records > last_store_records_[wp.id];
    last_lease_frames_[wp.id] = state.frames;
    last_store_records_[wp.id] = store_records;

    snapshot.workers.push_back(std::move(wp));
  }
  // A cell both claimed (by a slow worker) and completed (by the one
  // that won) counts as completed only.
  for (const std::uint64_t cell : completed) claimed.erase(cell);
  snapshot.completed_cells = completed.size();
  snapshot.claimed_cells = claimed.size();
  return snapshot;
}

std::string ProgressView::render(const ProgressSnapshot& snapshot,
                                 double cells_per_s) {
  namespace tbl = campaign::table;
  std::string out;
  char line[192];

  const double pct =
      snapshot.total_cells == 0
          ? 0.0
          : 100.0 * static_cast<double>(snapshot.completed_cells) /
                static_cast<double>(snapshot.total_cells);
  std::snprintf(line, sizeof(line),
                "sweep: %" PRIu64 "/%" PRIu64 " cells (%s%%), %" PRIu64
                " trials, %" PRIu64 " claimed, %zu worker(s)\n",
                snapshot.completed_cells, snapshot.total_cells,
                tbl::fixed(pct, 1).c_str(), snapshot.trials_done,
                snapshot.claimed_cells, snapshot.workers.size());
  out += line;

  if (snapshot.complete()) {
    out += "rate:  complete\n";
  } else if (cells_per_s < 0.0) {
    out += "rate:  - cells/s, eta -\n";
  } else {
    const auto remaining = static_cast<double>(snapshot.total_cells -
                                               snapshot.completed_cells);
    std::string eta = "-";
    if (cells_per_s > 0.0) eta = tbl::fixed(remaining / cells_per_s, 0) + "s";
    std::snprintf(line, sizeof(line), "rate:  %s cells/s, eta %s\n",
                  tbl::fixed(cells_per_s, 2).c_str(), eta.c_str());
    out += line;
  }

  tbl::Table t{{
      {"worker", tbl::Align::kLeft},
      {"state", tbl::Align::kLeft},
      {"claimed"},
      {"completed"},
      {"trials"},
  }};
  for (const WorkerProgress& wp : snapshot.workers) {
    t.add_row({tbl::str_cell(wp.id),
               tbl::str_cell(wp.claimed > 0 ? "working" : "idle"),
               tbl::count_cell(wp.claimed), tbl::count_cell(wp.completed),
               tbl::count_cell(wp.trials)});
  }
  out += t.to_text();
  return out;
}

}  // namespace msa::obs
