// Read-only live view over a lease-mode workers directory: the
// `campaign_sweep progress` backend and the precursor to the planned
// coordinator daemon. Discovers the sweep manifest from the first lease
// log, then polls incrementally — lease logs through the same
// offset-resuming LeaseDirScanner the scheduler uses, worker stores
// through persist::StoreTailer — so each poll reads only newly appended
// bytes no matter how large the directory has grown. Purely an
// observer: never writes into the directory, never blocks a worker.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "persist/campaign_store.h"
#include "persist/lease_log.h"

namespace msa::obs {

/// One worker's progress as reconstructed from its lease log + store.
struct WorkerProgress {
  std::string id;                ///< lease file stem
  std::uint64_t claimed = 0;     ///< open (uncompleted, unreset) claims
  std::uint64_t completed = 0;   ///< cells this worker completed
  std::uint64_t trials = 0;      ///< trial records in its store
  bool advanced = false;         ///< gained records since the last poll
};

struct ProgressSnapshot {
  std::uint64_t total_cells = 0;      ///< full grid size from the manifest
  std::uint32_t trials_per_cell = 0;
  std::uint64_t completed_cells = 0;  ///< union across workers, deduplicated
  std::uint64_t claimed_cells = 0;    ///< distinct cells under an open claim
  std::uint64_t trials_done = 0;      ///< store trial records (duplicates included)
  std::vector<WorkerProgress> workers;  ///< sorted by id

  [[nodiscard]] bool complete() const noexcept {
    return total_cells > 0 && completed_cells >= total_cells;
  }
};

/// Incremental poller bound to one workers directory.
class ProgressView {
 public:
  /// Discovers the sweep manifest from the lease logs in `dir` (sorted
  /// order, first decodable manifest wins). Throws std::runtime_error
  /// when the directory holds no readable lease log — there is nothing
  /// to observe yet.
  explicit ProgressView(const std::string& dir);

  [[nodiscard]] const persist::StoreManifest& manifest() const noexcept {
    return manifest_;
  }

  /// One incremental scan round of every lease log and worker store.
  [[nodiscard]] ProgressSnapshot poll();

  /// Deterministic text rendering of a snapshot. `cells_per_s` < 0
  /// means "unknown" (first poll, or a `--once` shot) and renders as
  /// "-" for both the rate and the ETA.
  [[nodiscard]] static std::string render(const ProgressSnapshot& snapshot,
                                          double cells_per_s);

 private:
  std::string dir_;
  persist::StoreManifest manifest_;
  persist::LeaseDirScanner scanner_;
  std::map<std::string, persist::StoreTailer> tailers_;     ///< by worker id
  std::map<std::string, std::uint64_t> last_lease_frames_;  ///< advance detection
  std::map<std::string, std::uint64_t> last_store_records_;
};

}  // namespace msa::obs
