#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>

#include "campaign/table.h"

namespace msa::obs {

namespace internal {

std::atomic<bool> g_enabled{false};

// Writable only by its owner thread; head is the release point readers
// synchronize on. Rings are never destroyed once created so a cached
// thread_local pointer can never dangle, and threads that exit before
// export still contribute their spans.
struct ThreadRing {
  std::uint32_t tid = 0;
  std::size_t capacity = 0;
  std::vector<TraceSpan> slots;
  std::atomic<std::uint64_t> head{0};  ///< spans ever recorded
};

namespace {

std::mutex g_rings_mutex;
std::vector<std::unique_ptr<ThreadRing>>& rings() {
  static std::vector<std::unique_ptr<ThreadRing>> r;
  return r;
}
std::atomic<std::size_t> g_capacity{Trace::kDefaultCapacity};

}  // namespace

ThreadRing* ring_for_this_thread() {
  thread_local ThreadRing* ring = [] {
    auto owned = std::make_unique<ThreadRing>();
    owned->tid = util::thread_ordinal();
    owned->capacity = std::max<std::size_t>(1, g_capacity.load(std::memory_order_relaxed));
    owned->slots.resize(owned->capacity);
    ThreadRing* raw = owned.get();
    const std::lock_guard lock{g_rings_mutex};
    rings().push_back(std::move(owned));
    return raw;
  }();
  return ring;
}

void record(ThreadRing* ring, const char* category, const char* name,
            std::uint64_t start_ns, std::uint64_t dur_ns) noexcept {
  const std::uint64_t h = ring->head.load(std::memory_order_relaxed);
  TraceSpan& slot = ring->slots[static_cast<std::size_t>(h % ring->capacity)];
  slot.category = category;
  slot.name = name;
  slot.start_ns = start_ns;
  slot.dur_ns = dur_ns;
  ring->head.store(h + 1, std::memory_order_release);
}

}  // namespace internal

void Trace::enable(std::size_t per_thread_capacity) {
  internal::g_capacity.store(std::max<std::size_t>(1, per_thread_capacity),
                             std::memory_order_relaxed);
  internal::g_enabled.store(true, std::memory_order_relaxed);
}

void Trace::disable() noexcept {
  internal::g_enabled.store(false, std::memory_order_relaxed);
}

void Trace::clear() noexcept {
  const std::lock_guard lock{internal::g_rings_mutex};
  for (auto& ring : internal::rings()) {
    ring->head.store(0, std::memory_order_relaxed);
  }
}

std::vector<ThreadTrace> Trace::snapshot() {
  std::vector<ThreadTrace> out;
  const std::lock_guard lock{internal::g_rings_mutex};
  for (const auto& ring : internal::rings()) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    ThreadTrace trace;
    trace.tid = ring->tid;
    const std::uint64_t kept = std::min<std::uint64_t>(head, ring->capacity);
    trace.dropped = head - kept;
    trace.spans.reserve(static_cast<std::size_t>(kept));
    for (std::uint64_t i = head - kept; i < head; ++i) {
      trace.spans.push_back(
          ring->slots[static_cast<std::size_t>(i % ring->capacity)]);
    }
    if (!trace.spans.empty()) out.push_back(std::move(trace));
  }
  std::sort(out.begin(), out.end(),
            [](const ThreadTrace& a, const ThreadTrace& b) { return a.tid < b.tid; });
  return out;
}

namespace {

// µs with three decimals from ns — Chrome trace-event timestamps are
// microseconds; keeping the sub-µs digits keeps short spans nonzero.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, ns / 1000,
                ns % 1000);
  out += buf;
}

}  // namespace

std::string Trace::chrome_json() {
  const std::vector<ThreadTrace> traces = snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const ThreadTrace& trace : traces) {
    for (const TraceSpan& span : trace.spans) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"";
      out += campaign::table::json_escape(span.name);
      out += "\",\"cat\":\"";
      out += campaign::table::json_escape(span.category);
      out += "\",\"ph\":\"X\",\"ts\":";
      append_us(out, span.start_ns);
      out += ",\"dur\":";
      append_us(out, span.dur_ns);
      out += ",\"pid\":1,\"tid\":";
      out += std::to_string(trace.tid);
      out += '}';
    }
  }
  out += "]}\n";
  return out;
}

}  // namespace msa::obs
