// Runtime-gated tracing for the trial pipeline. Each thread records
// spans into its own lock-free ring buffer; the only cost on the
// disabled path is one relaxed atomic load per TRACE_SPAN site, so the
// instrumentation can stay compiled into release builds. Spans are
// exported after the instrumented code quiesces, as Chrome trace-event
// JSON that loads directly in Perfetto / chrome://tracing.
//
// Category and name must be string literals (or otherwise outlive the
// trace): the ring stores the pointers, not copies.
//
// Tracing never feeds back into the report path — enabling it changes
// wall-clock timings only, so sweep reports stay byte-identical with
// tracing on or off (pinned by tests/test_obs_invariance.cpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/monotime.h"

namespace msa::obs {

/// One closed span. Timestamps are util::monotonic_ns() — the same
/// anchor the default log sink prefixes with.
struct TraceSpan {
  const char* category = nullptr;
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// Snapshot of one thread's ring: the retained spans in close order
/// (oldest first) plus how many older spans the ring overwrote.
struct ThreadTrace {
  std::uint32_t tid = 0;  ///< util::thread_ordinal() of the recording thread
  std::uint64_t dropped = 0;
  std::vector<TraceSpan> spans;
};

namespace internal {

struct ThreadRing;

extern std::atomic<bool> g_enabled;

/// Ring for the calling thread, created on first use. Rings live for
/// the rest of the process (a thread may exit before export).
[[nodiscard]] ThreadRing* ring_for_this_thread();

void record(ThreadRing* ring, const char* category, const char* name,
            std::uint64_t start_ns, std::uint64_t dur_ns) noexcept;

}  // namespace internal

/// Process-wide trace control. enable/disable/clear/snapshot must only
/// be called while instrumented threads are quiescent (before a sweep
/// starts or after it joins) — recording itself is lock-free and
/// per-thread, but the control plane is not synchronized against it.
class Trace {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  /// Turns recording on. `per_thread_capacity` sizes rings created
  /// after this call (existing rings keep theirs); when a ring fills,
  /// the oldest spans are overwritten and counted as dropped.
  static void enable(std::size_t per_thread_capacity = kDefaultCapacity);
  static void disable() noexcept;
  [[nodiscard]] static bool enabled() noexcept {
    return internal::g_enabled.load(std::memory_order_relaxed);
  }

  /// Empties every ring (keeps the enabled state and capacities).
  static void clear() noexcept;

  /// Retained spans of every thread that ever recorded, sorted by tid.
  [[nodiscard]] static std::vector<ThreadTrace> snapshot();

  /// The snapshot as Chrome trace-event JSON ("X" complete events,
  /// microsecond timestamps): {"traceEvents":[...]}.
  [[nodiscard]] static std::string chrome_json();
};

/// RAII span guard. Captures the start timestamp on construction when
/// tracing is enabled, records the closed span on destruction. The gate
/// is re-checked at close so a span that straddles disable() is simply
/// dropped rather than recorded half-timed.
class SpanGuard {
 public:
  SpanGuard(const char* category, const char* name) noexcept {
    if (!internal::g_enabled.load(std::memory_order_relaxed)) return;
    category_ = category;
    name_ = name;
    start_ns_ = util::monotonic_ns();
    open_ = true;
  }
  ~SpanGuard() {
    if (open_ && internal::g_enabled.load(std::memory_order_relaxed)) {
      internal::record(internal::ring_for_this_thread(), category_, name_,
                       start_ns_, util::monotonic_ns() - start_ns_);
    }
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* category_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  bool open_ = false;
};

#define MSA_OBS_CONCAT2(a, b) a##b
#define MSA_OBS_CONCAT(a, b) MSA_OBS_CONCAT2(a, b)

/// Opens a span covering the rest of the enclosing scope. Category and
/// name must be string literals.
#define TRACE_SPAN(category, name)                                      \
  ::msa::obs::SpanGuard MSA_OBS_CONCAT(msa_trace_span_, __LINE__) {     \
    category, name                                                      \
  }

}  // namespace msa::obs
