#include "os/proc_fs.h"

#include <cstdio>

#include "util/strings.h"

namespace msa::os {

std::string format_stime(std::uint64_t seconds_of_day) {
  const unsigned hours = static_cast<unsigned>((seconds_of_day / 3600) % 24);
  const unsigned minutes = static_cast<unsigned>((seconds_of_day / 60) % 60);
  char buf[8];
  std::snprintf(buf, sizeof buf, "%02u:%02u", hours, minutes);
  return buf;
}

std::string format_cpu_time(std::uint64_t seconds) {
  const unsigned h = static_cast<unsigned>(seconds / 3600);
  const unsigned m = static_cast<unsigned>((seconds / 60) % 60);
  const unsigned s = static_cast<unsigned>(seconds % 60);
  char buf[16];
  std::snprintf(buf, sizeof buf, "%02u:%02u:%02u", h, m, s);
  return buf;
}

std::string ps_header() { return "PID PPID C STIME TTY TIME CMD"; }

std::string format_ps_line(const Process& proc) {
  std::string line;
  line += std::to_string(proc.pid());
  line += ' ';
  line += std::to_string(proc.ppid());
  line += ' ';
  line += std::to_string(proc.cpu_percent());
  line += ' ';
  line += format_stime(proc.start_time_s());
  line += ' ';
  line += proc.tty().empty() ? "?" : proc.tty();
  line += ' ';
  line += format_cpu_time(0);
  line += ' ';
  line += proc.cmdline();
  return line;
}

std::string format_maps(const Process& proc) {
  std::string out;
  for (const auto& v : proc.vmas()) {
    out += util::hex_no_prefix(v.start);
    out += '-';
    out += util::hex_no_prefix(v.end);
    out += ' ';
    out += v.perms();
    out += ' ';
    char off[16];
    std::snprintf(off, sizeof off, "%08llx",
                  static_cast<unsigned long long>(v.file_offset));
    out += off;
    out += ' ';
    out += v.device;
    out += ' ';
    out += std::to_string(v.inode);
    if (!v.name.empty()) {
      out += ' ';
      out += v.name;
    }
    out += '\n';
  }
  return out;
}

std::vector<MapsLine> parse_maps(const std::string& maps_text) {
  std::vector<MapsLine> out;
  for (const auto& line : util::split(maps_text, '\n')) {
    if (line.empty()) continue;
    const auto fields = util::split_ws(line);
    if (fields.size() < 5) continue;
    const auto range = util::split(fields[0], '-');
    if (range.size() != 2) continue;
    MapsLine m;
    m.start = util::parse_hex(range[0]);
    m.end = util::parse_hex(range[1]);
    m.perms = fields[1];
    if (fields.size() >= 6) m.name = fields[5];
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace msa::os
