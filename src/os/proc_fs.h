// Text renderers for the /proc views and the ps(1) output the attack
// consumes. Formats match the paper's figures:
//
//   ps -ef  (Figs. 5/6/9):
//     UID PID PPID C STIME TTY TIME CMD  (we render the columns the
//     figures show: PID PPID C STIME TTY TIME CMD)
//   /proc/<pid>/maps (Fig. 7):
//     aaaaee775000-aaaaefd8a000 rw-p 00000000 00:00 0    [heap]
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "os/process.h"

namespace msa::os {

/// Formats seconds-since-midnight as the STIME column ("03:51", "12:33").
[[nodiscard]] std::string format_stime(std::uint64_t seconds_of_day);

/// Formats cumulative CPU time as the TIME column ("00:00:00").
[[nodiscard]] std::string format_cpu_time(std::uint64_t seconds);

/// One ps -ef body line for a process.
[[nodiscard]] std::string format_ps_line(const Process& proc);

/// The ps -ef header line.
[[nodiscard]] std::string ps_header();

/// Full /proc/<pid>/maps content for a process (one line per VMA,
/// trailing newline on each).
[[nodiscard]] std::string format_maps(const Process& proc);

/// Parses a maps line back into (start, end, perms, name). Used by the
/// *attacker* code, which only sees the text — exactly like the paper's
/// "vim /proc/1391/maps" step.
struct MapsLine {
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  std::string perms;
  std::string name;
};
[[nodiscard]] std::vector<MapsLine> parse_maps(const std::string& maps_text);

}  // namespace msa::os
