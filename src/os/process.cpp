#include "os/process.h"

#include <algorithm>

#include "util/strings.h"

namespace msa::os {

Process::Process(Pid pid, Pid ppid, Uid uid, std::vector<std::string> argv,
                 std::string tty, std::uint64_t start_time_s,
                 mem::VirtAddr heap_base)
    : pid_{pid},
      ppid_{ppid},
      uid_{uid},
      argv_{std::move(argv)},
      tty_{std::move(tty)},
      start_time_s_{start_time_s},
      heap_base_{heap_base},
      brk_{heap_base} {}

std::string Process::cmdline() const { return util::join(argv_, " "); }

void Process::add_vma(Vma vma) {
  const auto pos = std::lower_bound(
      vmas_.begin(), vmas_.end(), vma,
      [](const Vma& a, const Vma& b) { return a.start < b.start; });
  vmas_.insert(pos, std::move(vma));
}

const Vma* Process::find_vma(mem::VirtAddr va) const noexcept {
  for (const auto& v : vmas_) {
    if (v.contains(va)) return &v;
  }
  return nullptr;
}

const Vma* Process::find_vma_named(std::string_view name) const noexcept {
  for (const auto& v : vmas_) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

mem::VirtAddr Process::push_brk(std::uint64_t delta) {
  const mem::VirtAddr old = brk_;
  brk_ += delta;
  // Keep the [heap] VMA in sync.
  for (auto& v : vmas_) {
    if (v.name == "[heap]") {
      v.end = brk_;
      return old;
    }
  }
  return old;
}

}  // namespace msa::os
