// A PetaLinux process: identity, command line, VMAs, page table, heap.
//
// Processes never touch DRAM directly — all loads/stores go through the
// owning PetaLinuxSystem, which walks this process's page table. That
// keeps the translation path identical to what the attack later replays
// from the outside via the pagemap interface.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/page_table.h"
#include "os/vma.h"

namespace msa::os {

using Pid = std::int64_t;
using Uid = std::uint32_t;

enum class ProcState { kRunning, kSleeping, kZombie };

class Process {
 public:
  Process(Pid pid, Pid ppid, Uid uid, std::vector<std::string> argv,
          std::string tty, std::uint64_t start_time_s, mem::VirtAddr heap_base);

  [[nodiscard]] Pid pid() const noexcept { return pid_; }
  [[nodiscard]] Pid ppid() const noexcept { return ppid_; }
  [[nodiscard]] Uid uid() const noexcept { return uid_; }
  [[nodiscard]] const std::vector<std::string>& argv() const noexcept {
    return argv_;
  }
  [[nodiscard]] std::string cmdline() const;
  [[nodiscard]] const std::string& tty() const noexcept { return tty_; }
  [[nodiscard]] std::uint64_t start_time_s() const noexcept { return start_time_s_; }
  [[nodiscard]] ProcState state() const noexcept { return state_; }
  void set_state(ProcState s) noexcept { state_ = s; }

  /// Synthetic CPU utilisation for the ps -ef "C" column (the paper's
  /// Fig. 6 shows 18 for the running resnet50_pt).
  [[nodiscard]] int cpu_percent() const noexcept { return cpu_percent_; }
  void set_cpu_percent(int c) noexcept { cpu_percent_ = c; }

  // --- address space -----------------------------------------------------
  [[nodiscard]] mem::PageTable& page_table() noexcept { return page_table_; }
  [[nodiscard]] const mem::PageTable& page_table() const noexcept {
    return page_table_;
  }

  [[nodiscard]] const std::vector<Vma>& vmas() const noexcept { return vmas_; }
  /// Registers a VMA (maps-file bookkeeping only; frames are the system's
  /// job). VMAs are kept sorted by start address.
  void add_vma(Vma vma);
  /// Finds the VMA containing va, or nullptr.
  [[nodiscard]] const Vma* find_vma(mem::VirtAddr va) const noexcept;
  /// Finds the VMA named `name` (e.g. "[heap]"), or nullptr.
  [[nodiscard]] const Vma* find_vma_named(std::string_view name) const noexcept;

  // --- heap (brk) ---------------------------------------------------------
  [[nodiscard]] mem::VirtAddr heap_base() const noexcept { return heap_base_; }
  [[nodiscard]] mem::VirtAddr brk() const noexcept { return brk_; }
  /// Raises brk; returns the old brk (= start of the fresh region). The
  /// system is responsible for backing the new pages with frames and for
  /// updating the [heap] VMA.
  mem::VirtAddr push_brk(std::uint64_t delta);

 private:
  Pid pid_;
  Pid ppid_;
  Uid uid_;
  std::vector<std::string> argv_;
  std::string tty_;
  std::uint64_t start_time_s_;
  ProcState state_ = ProcState::kRunning;
  int cpu_percent_ = 0;

  mem::PageTable page_table_;
  std::vector<Vma> vmas_;
  mem::VirtAddr heap_base_;
  mem::VirtAddr brk_;
};

}  // namespace msa::os
