#include "os/scrubber.h"

#include <stdexcept>

namespace msa::os {

ScrubberDaemon::ScrubberDaemon(PetaLinuxSystem& system,
                               double bytes_per_second)
    : system_{system}, rate_{bytes_per_second} {
  if (bytes_per_second <= 0.0) {
    throw std::invalid_argument("ScrubberDaemon: rate must be positive");
  }
}

std::uint64_t ScrubberDaemon::run_for(double seconds) {
  if (seconds <= 0.0) return 0;
  constexpr std::uint64_t kPage = mem::PageFrameAllocator::kPageSize;

  double budget = carry_budget_ + rate_ * seconds;
  std::uint64_t scrubbed = 0;

  // Walk the dirty free list lowest-PFN-first. Re-query after each pass:
  // zeroing a frame removes it from the dirty set.
  const auto dirty = system_.allocator().dirty_free_frames();
  for (const mem::Pfn pfn : dirty) {
    if (budget < static_cast<double>(kPage)) break;
    system_.dram().zero_range(mem::PageFrameAllocator::frame_to_phys(pfn),
                              kPage);
    budget -= static_cast<double>(kPage);
    scrubbed += kPage;
    ++stats_.frames_scrubbed;
  }

  stats_.bytes_scrubbed += scrubbed;
  stats_.busy_seconds += scrubbed > 0 ? static_cast<double>(scrubbed) / rate_ : 0.0;
  // Unused budget does not accumulate across idle periods beyond one
  // frame's worth — a real idle thread cannot bank CPU time.
  carry_budget_ = budget < static_cast<double>(kPage) ? budget : 0.0;
  return scrubbed;
}

std::uint64_t ScrubberDaemon::backlog_frames() const {
  return system_.allocator().dirty_free_frames().size();
}

}  // namespace msa::os
