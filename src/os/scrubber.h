// Deferred background scrubbing — the deployable middle ground between
// PetaLinux's no-sanitization and synchronous zero-on-free.
//
// A real fix has to avoid adding scrubbing latency to process exit, so
// vendors ship it as an idle-priority kernel thread that walks the free
// list and zeroes dirty frames at a bounded rate (cf. Linux's
// init_on_free vs. background page poisoning). That leaves a *window of
// vulnerability*: frames freed but not yet scrubbed are scrapable. The
// ScrubberDaemon models exactly that trade-off so the evaluator can plot
// attack success against the attacker's reaction time and the scrubber's
// throughput budget.
#pragma once

#include <cstdint>

#include "os/system.h"

namespace msa::os {

struct ScrubberStats {
  std::uint64_t frames_scrubbed = 0;
  std::uint64_t bytes_scrubbed = 0;
  double busy_seconds = 0.0;  ///< simulated time spent scrubbing
};

class ScrubberDaemon {
 public:
  /// `bytes_per_second` is the scrub throughput budget (idle-priority
  /// memset through the memory controller; a few GiB/s is realistic for
  /// the PS DDR4, much less if heavily throttled).
  ScrubberDaemon(PetaLinuxSystem& system, double bytes_per_second);

  /// Advances the daemon by `seconds` of simulated time: scrubs dirty
  /// free frames (lowest PFN first) until the time budget is exhausted or
  /// nothing dirty remains. Returns bytes scrubbed in this slice.
  std::uint64_t run_for(double seconds);

  /// Dirty free frames still waiting (the current exposure).
  [[nodiscard]] std::uint64_t backlog_frames() const;

  [[nodiscard]] const ScrubberStats& stats() const noexcept { return stats_; }
  [[nodiscard]] double bytes_per_second() const noexcept { return rate_; }

 private:
  PetaLinuxSystem& system_;
  double rate_;
  double carry_budget_ = 0.0;  ///< fractional-frame budget carried over
  ScrubberStats stats_;
};

}  // namespace msa::os
