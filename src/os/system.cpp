#include "os/system.h"

#include <algorithm>
#include <new>

#include "os/proc_fs.h"
#include "util/log.h"
#include "util/strings.h"

namespace msa::os {

SystemConfig SystemConfig::zcu104() { return SystemConfig{}; }

SystemConfig SystemConfig::zcu102() {
  SystemConfig c;
  c.board = dram::DramConfig::zcu102();
  // Same pool placement; the ZCU102 simply has a larger window above it.
  return c;
}

SystemConfig SystemConfig::test_small() {
  SystemConfig c;
  c.board = dram::DramConfig::test_small();
  c.pool_first_pfn = 0x100;           // skip the first 1 MiB
  c.pool_frames = (16ULL * 1024 * 1024 - 0x100000) / 4096;
  return c;
}

PetaLinuxSystem::PetaLinuxSystem(SystemConfig config)
    : config_{std::move(config)},
      dram_{config_.board},
      alloc_{dram_,
             mem::FrameAllocatorConfig{.first_pfn = config_.pool_first_pfn,
                                       .frame_count = config_.pool_frames,
                                       .sanitize = config_.sanitize,
                                       .placement = config_.placement,
                                       .seed = config_.seed}},
      now_s_{config_.boot_seconds_of_day},
      prng_{config_.seed ^ 0x9d8f00dULL} {
  add_user(0, "root");
}

void PetaLinuxSystem::reset(SystemConfig config) {
  config_ = std::move(config);
  dram_.reset(config_.board);
  alloc_.reset(
      mem::FrameAllocatorConfig{.first_pfn = config_.pool_first_pfn,
                                .frame_count = config_.pool_frames,
                                .sanitize = config_.sanitize,
                                .placement = config_.placement,
                                .seed = config_.seed});
  procs_.clear();
  users_.clear();
  terminated_.clear();
  next_pid_ = 1000;
  now_s_ = config_.boot_seconds_of_day;
  prng_ = util::Prng{config_.seed ^ 0x9d8f00dULL};
  add_user(0, "root");
}

void PetaLinuxSystem::add_user(Uid uid, std::string name) {
  users_[uid] = std::move(name);
}

std::string PetaLinuxSystem::user_name(Uid uid) const {
  const auto it = users_.find(uid);
  return it == users_.end() ? std::to_string(uid) : it->second;
}

void PetaLinuxSystem::set_next_pid(Pid pid) {
  if (pid <= 0) throw std::invalid_argument("set_next_pid: pid must be positive");
  if (procs_.count(pid) != 0) {
    throw std::invalid_argument("set_next_pid: pid is alive");
  }
  next_pid_ = pid;
}

Pid PetaLinuxSystem::spawn(Uid uid, std::vector<std::string> argv,
                           std::string tty, Pid ppid) {
  if (argv.empty()) throw std::invalid_argument("spawn: empty argv");
  // Skip over any pid still alive (pids wrap and get reused on real
  // systems; the simulator just avoids collisions).
  while (procs_.count(next_pid_) != 0) ++next_pid_;
  const Pid pid = next_pid_++;

  mem::VirtAddr heap_base = config_.heap_va_base;
  if (config_.heap_va_aslr) {
    // Randomize the heap base page-aligned within a 256 MiB window, like
    // Linux heap ASLR. This breaks the offset stability the paper's
    // profiling step depends on.
    heap_base += prng_.below(64 * 1024) * mem::kPageSize;
  }

  auto proc = std::make_unique<Process>(pid, ppid, uid, std::move(argv),
                                        std::move(tty), now_s_, heap_base);

  // Text segment VMA (bookkeeping only; not backed from the heap pool).
  Vma text;
  text.start = 0xaaaaac000000ULL;
  text.end = text.start + 0x20000;
  text.readable = true;
  text.executable = true;
  text.name = proc->argv().front();
  proc->add_vma(text);

  // Empty [heap] VMA; grows with sbrk.
  Vma heap;
  heap.start = heap_base;
  heap.end = heap_base;
  heap.readable = true;
  heap.writable = true;
  heap.name = "[heap]";
  proc->add_vma(heap);

  util::Log::debug("spawn pid=" + std::to_string(pid) + " cmd=" +
                   proc->cmdline());
  procs_.emplace(pid, std::move(proc));
  return pid;
}

bool PetaLinuxSystem::alive(Pid pid) const noexcept {
  return procs_.find(pid) != procs_.end();
}

Process& PetaLinuxSystem::require(Pid pid) {
  const auto it = procs_.find(pid);
  if (it == procs_.end()) {
    throw std::invalid_argument("no such process: " + std::to_string(pid));
  }
  return *it->second;
}

const Process& PetaLinuxSystem::require(Pid pid) const {
  const auto it = procs_.find(pid);
  if (it == procs_.end()) {
    throw std::invalid_argument("no such process: " + std::to_string(pid));
  }
  return *it->second;
}

Process& PetaLinuxSystem::process(Pid pid) { return require(pid); }
const Process& PetaLinuxSystem::process(Pid pid) const { return require(pid); }

std::vector<Pid> PetaLinuxSystem::pids() const {
  std::vector<Pid> out;
  out.reserve(procs_.size());
  for (const auto& [pid, _] : procs_) out.push_back(pid);
  return out;
}

void PetaLinuxSystem::terminate(Pid pid) {
  Process& proc = require(pid);

  TerminatedRecord rec;
  rec.pid = pid;
  rec.uid = proc.uid();
  rec.cmdline = proc.cmdline();
  rec.heap_base = proc.heap_base();
  rec.heap_end = proc.brk();

  // Record the physical layout of the heap in VA order, then tear down.
  for (mem::VirtAddr va = rec.heap_base; va < rec.heap_end; va += mem::kPageSize) {
    if (const auto pa = proc.page_table().translate(va)) {
      rec.heap_frames.push_back(*pa);
    }
  }

  // Free every mapped frame. The allocator's sanitize policy decides
  // whether the DRAM content survives — with kNone (PetaLinux) it does.
  // Frames are released in reverse VA order so the LIFO free list hands
  // them back in ascending order to the next same-sized allocation: the
  // deterministic, repeatable physical layout the paper observes (and
  // that its offline profiling depends on).
  std::vector<mem::Vpn> vpns;
  vpns.reserve(proc.page_table().mapped_pages());
  for (const auto& [vpn, pfn] : proc.page_table().entries()) vpns.push_back(vpn);
  for (auto it = vpns.rbegin(); it != vpns.rend(); ++it) {
    const mem::Pfn pfn = proc.page_table().unmap(*it);
    alloc_.free(pfn);
  }

  util::Log::debug("terminate pid=" + std::to_string(pid));
  terminated_.push_back(std::move(rec));
  procs_.erase(pid);
}

mem::VirtAddr PetaLinuxSystem::sbrk(Pid pid, std::uint64_t delta) {
  Process& proc = require(pid);
  const mem::VirtAddr old_brk = proc.brk();
  if (delta == 0) return old_brk;
  proc.push_brk(delta);
  back_range(proc, old_brk, delta);
  return old_brk;
}

void PetaLinuxSystem::back_range(Process& proc, mem::VirtAddr start,
                                 std::uint64_t len) {
  if (len == 0) return;
  const mem::Vpn first = mem::vpn_of(start);
  const mem::Vpn last = mem::vpn_of(start + len - 1);
  for (mem::Vpn vpn = first; vpn <= last; ++vpn) {
    if (proc.page_table().is_mapped(vpn)) continue;
    const auto pfn = alloc_.allocate(proc.pid());
    if (!pfn) throw std::bad_alloc{};
    proc.page_table().map(vpn, *pfn);
  }
}

void PetaLinuxSystem::mmap_region(Pid pid, mem::VirtAddr start,
                                  std::uint64_t len, std::string name,
                                  bool shared) {
  Process& proc = require(pid);
  Vma v;
  v.start = start;
  v.end = start + len;
  v.readable = true;
  v.writable = true;
  v.shared = shared;
  v.name = std::move(name);
  proc.add_vma(v);
}

void PetaLinuxSystem::write_virt(Pid pid, mem::VirtAddr va,
                                 std::span<const std::uint8_t> data) {
  Process& proc = require(pid);
  std::size_t done = 0;
  while (done < data.size()) {
    const auto pa = proc.page_table().translate(va + done);
    if (!pa) {
      throw SegmentationFault("write to unmapped va " + util::hex_0x(va + done) +
                              " in pid " + std::to_string(pid));
    }
    const std::size_t in_page = mem::page_offset(va + done);
    const std::size_t chunk =
        std::min<std::size_t>(mem::kPageSize - in_page, data.size() - done);
    dram_.write_block(*pa, data.subspan(done, chunk));
    done += chunk;
  }
}

void PetaLinuxSystem::read_virt(Pid pid, mem::VirtAddr va,
                                std::span<std::uint8_t> out) const {
  const Process& proc = require(pid);
  std::size_t done = 0;
  while (done < out.size()) {
    const auto pa = proc.page_table().translate(va + done);
    if (!pa) {
      throw SegmentationFault("read of unmapped va " + util::hex_0x(va + done) +
                              " in pid " + std::to_string(pid));
    }
    const std::size_t in_page = mem::page_offset(va + done);
    const std::size_t chunk =
        std::min<std::size_t>(mem::kPageSize - in_page, out.size() - done);
    dram_.read_block(*pa, out.subspan(done, chunk));
    done += chunk;
  }
}

void PetaLinuxSystem::write_virt32(Pid pid, mem::VirtAddr va, std::uint32_t value) {
  std::uint8_t buf[4];
  buf[0] = static_cast<std::uint8_t>(value & 0xFF);
  buf[1] = static_cast<std::uint8_t>((value >> 8) & 0xFF);
  buf[2] = static_cast<std::uint8_t>((value >> 16) & 0xFF);
  buf[3] = static_cast<std::uint8_t>((value >> 24) & 0xFF);
  write_virt(pid, va, buf);
}

std::uint32_t PetaLinuxSystem::read_virt32(Pid pid, mem::VirtAddr va) const {
  std::uint8_t buf[4] = {};
  read_virt(pid, va, buf);
  return static_cast<std::uint32_t>(buf[0]) |
         (static_cast<std::uint32_t>(buf[1]) << 8) |
         (static_cast<std::uint32_t>(buf[2]) << 16) |
         (static_cast<std::uint32_t>(buf[3]) << 24);
}

std::string PetaLinuxSystem::ps_ef() const {
  std::string out = ps_header();
  out += '\n';
  for (const auto& [pid, proc] : procs_) {
    out += format_ps_line(*proc);
    out += '\n';
  }
  return out;
}

void PetaLinuxSystem::check_proc_access(Uid requester,
                                        const Process& target) const {
  if (config_.proc_access == ProcAccessPolicy::kWorldReadable) return;
  if (requester == 0 || requester == target.uid()) return;
  throw PermissionError("uid " + std::to_string(requester) +
                        " denied /proc access to pid " +
                        std::to_string(target.pid()));
}

std::string PetaLinuxSystem::proc_maps(Uid requester, Pid pid) const {
  const Process& proc = require(pid);
  check_proc_access(requester, proc);
  return format_maps(proc);
}

std::vector<std::uint64_t> PetaLinuxSystem::proc_pagemap(Uid requester, Pid pid,
                                                         mem::Vpn first_vpn,
                                                         std::uint64_t count) const {
  const Process& proc = require(pid);
  check_proc_access(requester, proc);
  return mem::pagemap_window(proc.page_table(), first_vpn, count);
}

std::uint32_t PetaLinuxSystem::devmem_read32(dram::PhysAddr addr) const {
  return dram_.read32(addr);
}

void PetaLinuxSystem::devmem_write32(dram::PhysAddr addr, std::uint32_t value) {
  dram_.write32(addr, value);
}

}  // namespace msa::os
