// PetaLinux system simulator for a Zynq UltraScale+ board.
//
// Owns the board DRAM, the physical frame allocator, the process table and
// the simulated clock, and exposes:
//
//   * process lifecycle  — spawn / terminate (frames freed per the
//     configured sanitize policy; with the default kNone the heap residue
//     stays in DRAM — the paper's core vulnerability);
//   * memory syscalls    — sbrk (demand-backed by physical frames) and
//     virtual reads/writes that walk the process page table;
//   * /proc views        — ps -ef, /proc/<pid>/maps and
//     /proc/<pid>/pagemap text/binary renderings with a configurable
//     access-control policy (world-readable reproduces PetaLinux);
//   * physical access    — the devmem path used by the Xilinx debugger.
//
// The simulator is single-threaded and deterministic: given a config seed,
// every run produces identical layouts, which is what makes the paper's
// offline-profiling step work and what our tests assert.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "dram/dram_model.h"
#include "mem/frame_allocator.h"
#include "mem/pagemap.h"
#include "os/process.h"

namespace msa::os {

/// Thrown when a /proc access is denied by policy.
struct PermissionError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Thrown when a process touches an unmapped virtual address.
struct SegmentationFault : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Who may read another process's /proc/<pid>/{maps,pagemap}.
/// kWorldReadable is the PetaLinux behaviour the paper exploits; kOwnerOrRoot
/// is the hardened CPU-Linux-like policy used as a defense configuration.
enum class ProcAccessPolicy { kWorldReadable, kOwnerOrRoot };

struct SystemConfig {
  dram::DramConfig board = dram::DramConfig::zcu104();

  // Allocatable pool (CMA-style region used for process heaps). The
  // defaults put it at 0x6000_0000 so allocated heap pages land in the
  // same physical neighbourhood as the addresses the paper reports
  // (e.g. 0x61c6d730).
  mem::Pfn pool_first_pfn = 0x60000;
  std::uint64_t pool_frames = 128 * 1024;  ///< 512 MiB

  mem::SanitizePolicy sanitize = mem::SanitizePolicy::kNone;
  mem::PlacementPolicy placement = mem::PlacementPolicy::kSequentialLifo;
  ProcAccessPolicy proc_access = ProcAccessPolicy::kWorldReadable;

  /// Default ARM64 Linux heap neighbourhood (paper Fig. 7).
  mem::VirtAddr heap_va_base = 0xaaaaee775000ULL;
  /// Per-process heap-base randomization (VA ASLR defense; off on the
  /// paper's target).
  bool heap_va_aslr = false;

  std::uint64_t seed = 42;
  std::uint64_t boot_seconds_of_day = 3 * 3600 + 50 * 60;  ///< 03:50

  [[nodiscard]] static SystemConfig zcu104();
  [[nodiscard]] static SystemConfig zcu102();
  /// 16 MiB board, small pool — fast unit-test fixture.
  [[nodiscard]] static SystemConfig test_small();
};

/// Ground-truth record of a terminated process, kept by the simulator for
/// verification only (tests compare attack output against it); it is NOT
/// part of the attacker-visible surface.
struct TerminatedRecord {
  Pid pid = 0;
  Uid uid = 0;
  std::string cmdline;
  mem::VirtAddr heap_base = 0;
  mem::VirtAddr heap_end = 0;
  /// Physical address of each former heap page, in VA order.
  std::vector<dram::PhysAddr> heap_frames;
};

class PetaLinuxSystem {
 public:
  explicit PetaLinuxSystem(SystemConfig config = SystemConfig::zcu104());

  /// Reboots the board in place to exactly the state
  /// `PetaLinuxSystem{config}` would construct — DRAM content, frame
  /// tables, process table, users, clock, and PRNG all reinitialized —
  /// while reusing block and table storage. This is what makes victim
  /// boards poolable across trials: reset + reuse is indistinguishable
  /// from a fresh construction.
  void reset(SystemConfig config);

  [[nodiscard]] const SystemConfig& config() const noexcept { return config_; }
  [[nodiscard]] dram::DramModel& dram() noexcept { return dram_; }
  [[nodiscard]] const dram::DramModel& dram() const noexcept { return dram_; }
  [[nodiscard]] mem::PageFrameAllocator& allocator() noexcept { return alloc_; }
  [[nodiscard]] const mem::PageFrameAllocator& allocator() const noexcept {
    return alloc_;
  }

  // --- users ---------------------------------------------------------------
  void add_user(Uid uid, std::string name);
  [[nodiscard]] std::string user_name(Uid uid) const;

  // --- simulated clock -------------------------------------------------------
  void advance_time(std::uint64_t seconds) noexcept { now_s_ += seconds; }
  [[nodiscard]] std::uint64_t now_s() const noexcept { return now_s_; }

  // --- process lifecycle -----------------------------------------------------
  /// Forces the next spawn to use this pid (test/figure fixtures that want
  /// to reproduce the paper's pid 1391). Must be greater than any live pid.
  void set_next_pid(Pid pid);

  Pid spawn(Uid uid, std::vector<std::string> argv, std::string tty,
            Pid ppid = 1);
  [[nodiscard]] bool alive(Pid pid) const noexcept;
  [[nodiscard]] Process& process(Pid pid);
  [[nodiscard]] const Process& process(Pid pid) const;
  [[nodiscard]] std::vector<Pid> pids() const;

  /// Terminates the process: unmaps every page, frees the frames (the
  /// allocator applies the configured sanitize policy — kNone leaves the
  /// residue), erases the process, and appends a TerminatedRecord.
  void terminate(Pid pid);

  [[nodiscard]] const std::vector<TerminatedRecord>& terminated() const noexcept {
    return terminated_;
  }

  // --- memory syscalls ---------------------------------------------------------
  /// Grows the heap by `delta` bytes (rounded up to whole pages for frame
  /// backing) and returns the old brk, i.e. the start of the new region.
  /// Throws std::bad_alloc if the physical pool is exhausted.
  mem::VirtAddr sbrk(Pid pid, std::uint64_t delta);

  /// Registers a device/file VMA without physical backing in the pool
  /// (e.g. the /dev/dri/renderD128 mapping visible in the paper's Fig. 7).
  void mmap_region(Pid pid, mem::VirtAddr start, std::uint64_t len,
                   std::string name, bool shared = true);

  void write_virt(Pid pid, mem::VirtAddr va, std::span<const std::uint8_t> data);
  void read_virt(Pid pid, mem::VirtAddr va, std::span<std::uint8_t> out) const;
  void write_virt32(Pid pid, mem::VirtAddr va, std::uint32_t value);
  [[nodiscard]] std::uint32_t read_virt32(Pid pid, mem::VirtAddr va) const;

  // --- /proc views (requester-checked) --------------------------------------
  /// ps -ef output: header plus one line per live process. Visible to all
  /// users (as on real Linux).
  [[nodiscard]] std::string ps_ef() const;

  /// /proc/<pid>/maps text. Checked against the proc access policy.
  [[nodiscard]] std::string proc_maps(Uid requester, Pid pid) const;

  /// /proc/<pid>/pagemap window: `count` raw 64-bit entries starting at
  /// `first_vpn`. Checked against the proc access policy.
  [[nodiscard]] std::vector<std::uint64_t> proc_pagemap(Uid requester, Pid pid,
                                                        mem::Vpn first_vpn,
                                                        std::uint64_t count) const;

  // --- physical access (the /dev/mem // debugger path) ------------------------
  [[nodiscard]] std::uint32_t devmem_read32(dram::PhysAddr addr) const;
  void devmem_write32(dram::PhysAddr addr, std::uint32_t value);

 private:
  [[nodiscard]] Process& require(Pid pid);
  [[nodiscard]] const Process& require(Pid pid) const;
  void check_proc_access(Uid requester, const Process& target) const;
  /// Backs [start, start+len) of the process with freshly allocated frames.
  void back_range(Process& proc, mem::VirtAddr start, std::uint64_t len);

  SystemConfig config_;
  dram::DramModel dram_;
  mem::PageFrameAllocator alloc_;
  std::map<Pid, std::unique_ptr<Process>> procs_;
  std::map<Uid, std::string> users_;
  std::vector<TerminatedRecord> terminated_;
  Pid next_pid_ = 1000;
  std::uint64_t now_s_;
  util::Prng prng_;
};

}  // namespace msa::os
