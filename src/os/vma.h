// Virtual memory area descriptor, mirroring one line of /proc/<pid>/maps.
#pragma once

#include <cstdint>
#include <string>

#include "mem/page_table.h"

namespace msa::os {

struct Vma {
  mem::VirtAddr start = 0;
  mem::VirtAddr end = 0;  ///< exclusive
  bool readable = false;
  bool writable = false;
  bool executable = false;
  bool shared = false;  ///< 's' vs 'p' in the perms column
  std::uint64_t file_offset = 0;
  std::string device = "00:00";
  std::uint64_t inode = 0;
  std::string name;  ///< "[heap]", "/dev/dri/renderD128", exe path, or ""

  [[nodiscard]] std::uint64_t length() const noexcept { return end - start; }
  [[nodiscard]] bool contains(mem::VirtAddr va) const noexcept {
    return va >= start && va < end;
  }

  /// Four-character perms column, e.g. "rw-p".
  [[nodiscard]] std::string perms() const {
    std::string p;
    p.push_back(readable ? 'r' : '-');
    p.push_back(writable ? 'w' : '-');
    p.push_back(executable ? 'x' : '-');
    p.push_back(shared ? 's' : 'p');
    return p;
  }
};

}  // namespace msa::os
