#include "persist/campaign_store.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <utility>

#include "attack/scenario.h"
#include "campaign/axis.h"
#include "persist/encoding.h"
#include "persist/manifest.h"
#include "persist/segment.h"
#include "persist/store_codec.h"
#include "persist/store_reader.h"

namespace msa::persist {

namespace {

std::uint64_t file_size_or_zero(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

}  // namespace

std::vector<std::uint8_t> encode_store_manifest(const StoreManifest& m) {
  // Always writes the CURRENT format — re-encoding a v1-loaded manifest
  // (compaction) upgrades the file to v2 with the synthesized schema.
  ByteWriter w;
  w.u32(kStoreFormatVersion);
  w.u64(m.grid_fingerprint);
  w.u64(m.grid_cells);
  w.u32(m.trials_per_cell);
  w.u64(m.trial_salt);
  w.u32(m.shard_index);
  w.u32(m.shard_count);
  w.varint(m.axes.size());
  for (const campaign::AxisSpec& axis : m.axes) {
    w.str(axis.name);
    w.u8(static_cast<std::uint8_t>(axis.kind));
    w.varint(axis.values.size());
    for (const campaign::AxisValue& v : axis.values) encode_axis_value(w, v);
  }
  return {w.bytes().begin(), w.bytes().end()};
}

StoreManifest decode_store_manifest(std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  const std::uint32_t version = r.u32();
  if (version == 0 || version > kStoreFormatVersion) {
    throw std::runtime_error("persist: unsupported store format version " +
                             std::to_string(version));
  }
  StoreManifest m;
  m.version = version;
  m.grid_fingerprint = r.u64();
  m.grid_cells = r.u64();
  m.trials_per_cell = r.u32();
  m.trial_salt = r.u64();
  m.shard_index = r.u32();
  m.shard_count = r.u32();
  if (version == 1) {
    // v1 manifests end here; the four-axis schema was implicit.
    m.axes = legacy_axis_schema();
    return m;
  }
  const std::uint64_t axes = r.varint();
  m.axes.reserve(axes);
  for (std::uint64_t i = 0; i < axes; ++i) {
    campaign::AxisSpec spec;
    spec.name = r.str();
    spec.kind = static_cast<campaign::AxisKind>(r.u8());
    const std::uint64_t values = r.varint();
    spec.values.reserve(values);
    for (std::uint64_t j = 0; j < values; ++j) {
      spec.values.push_back(decode_axis_value(r));
    }
    m.axes.push_back(std::move(spec));
  }
  return m;
}

std::string describe_manifest_mismatch(const StoreManifest& have,
                                       const StoreManifest& want) {
  std::string out;
  auto field = [&](const char* name, auto a, auto b) {
    if (a != b) {
      if (!out.empty()) out += ", ";
      out += std::string(name) + " " + std::to_string(a) + " != " +
             std::to_string(b);
    }
  };
  field("version", have.version, want.version);
  field("grid_fingerprint", have.grid_fingerprint, want.grid_fingerprint);
  field("grid_cells", have.grid_cells, want.grid_cells);
  field("trials_per_cell", have.trials_per_cell, want.trials_per_cell);
  field("trial_salt", have.trial_salt, want.trial_salt);
  field("shard_index", have.shard_index, want.shard_index);
  field("shard_count", have.shard_count, want.shard_count);
  if (!(have.axes == want.axes)) {
    if (!out.empty()) out += ", ";
    auto schema = [](const StoreManifest& m) {
      std::string s;
      for (const campaign::AxisSpec& axis : m.axes) {
        if (!s.empty()) s += '/';
        s += axis.name;
      }
      return s.empty() ? std::string("<none>") : s;
    };
    out += "axis schema [" + schema(have) + "] != [" + schema(want) + "]";
  }
  return out;
}

bool CellFilter::matches(
    const std::vector<campaign::AxisCoordinate>& coords) const {
  for (const Clause& clause : clauses) {
    const campaign::AxisValue* value =
        campaign::find_coord(coords, clause.axis);
    if (value == nullptr) return false;
    const std::string label = value->label();
    if (std::find(clause.labels.begin(), clause.labels.end(), label) ==
        clause.labels.end()) {
      return false;
    }
  }
  return true;
}

CellFilter::Clause CellFilter::parse_clause(const std::string& spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument(
        "cell filter expects AXIS=VALUE[,VALUE...]: " + spec);
  }
  Clause clause;
  clause.axis = spec.substr(0, eq);
  std::size_t start = eq + 1;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    if (end == start) {
      throw std::invalid_argument("cell filter has an empty value: " + spec);
    }
    clause.labels.push_back(spec.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (clause.labels.empty()) {
    throw std::invalid_argument("cell filter has no values: " + spec);
  }
  return clause;
}

TrialRecord TrialRecord::from_result(std::uint64_t cell_index,
                                     std::uint32_t trial,
                                     const attack::ScenarioResult& result) {
  TrialRecord t;
  t.cell_index = cell_index;
  t.trial = trial;
  t.denied = result.denied;
  t.model_identified = result.model_identified_correctly;
  t.pixel_match = result.pixel_match;
  t.psnr = result.psnr;
  t.descriptor_pixel_match = result.descriptor_pixel_match;
  t.denial_reason = result.denial_reason;
  return t;
}

CampaignStore::CampaignStore(const std::string& path,
                             const StoreManifest& manifest, Mode mode,
                             StoreOptions options)
    : path_{path},
      manifest_{manifest},
      options_{options},
      resuming_{[&] {
        // A file shorter than the magic is the debris of a kill between
        // create and the magic write — not a resumable store. Only
        // explicit kCreate refuses to clobber it.
        const bool usable = record_file_usable(path);
        if (mode == Mode::kCreate && std::filesystem::exists(path)) {
          throw std::runtime_error(
              "persist: store already exists (resume instead?): " + path);
        }
        if (mode == Mode::kResume && !usable) {
          throw std::runtime_error("persist: no store to resume: " + path);
        }
        if (!usable &&
            std::filesystem::exists(levels_manifest_path(path))) {
          // A sidecar without its log is a half-deleted store; writing a
          // fresh log under it would attach the old segments to a new
          // sweep. Refuse until the debris is cleared.
          throw std::runtime_error(
              "persist: stale levels manifest without its store log "
              "(remove " +
              levels_manifest_path(path) + " and its segments): " + path);
        }
        return usable;
      }()},
      writer_{path, [&] {
                if (!resuming_) return RecordWriter::Mode::kTruncate;
                // One pass: validate manifest, reload completed cells,
                // find the torn-tail truncation point — all before the
                // writer opens (and without rejecting the file by
                // mutating it first).
                const std::uint64_t keep = scan_existing();
                std::error_code ec;
                std::filesystem::resize_file(path, keep, ec);
                if (ec) {
                  throw std::runtime_error(
                      "persist: cannot truncate torn tail: " + path + ": " +
                      ec.message());
                }
                return RecordWriter::Mode::kAppendClean;
              }()} {
  if (!resuming_ || !manifest_on_disk_) {
    // Fresh store — or an existing file whose every record was torn off.
    writer_.append(kRecManifest, encode_store_manifest(manifest_));
    writer_.flush();
  }
}

std::uint64_t CampaignStore::scan_existing() {
  bool any_records = false;
  RecordReader reader{path_};
  for (std::optional<Record> rec = reader.next(); rec.has_value();
       rec = reader.next()) {
    any_records = true;
    if (rec->type == kRecManifest) {
      manifest_on_disk_ = true;
      const StoreManifest on_disk = decode_store_manifest(rec->payload);
      if (!(on_disk == manifest_)) {
        throw std::runtime_error(
            "persist: store belongs to a different sweep (" +
            describe_manifest_mismatch(on_disk, manifest_) + "): " + path_);
      }
    } else if (rec->type == kRecCell || rec->type == kRecCellV2) {
      campaign::CellStats cell = rec->type == kRecCellV2
                                     ? decode_cell_v2(rec->payload)
                                     : decode_cell_v1(rec->payload);
      const std::uint64_t index = cell.index;
      completed_[index] = std::move(cell);
    }
    // Trial records are not replayed here: resume re-runs incomplete
    // cells from scratch, and deterministic reseeding reproduces the
    // identical trials.
  }
  if (any_records && !manifest_on_disk_) {
    throw std::runtime_error("persist: store has no manifest record: " +
                             path_);
  }

  // Segmented store: the completed-cell map continues in the segments'
  // cell blocks — the log was trimmed at the last compaction. Only the
  // small cell blocks are read; resume never replays segment trial data,
  // so seeking to the incomplete cells costs O(completed cells), not
  // O(trials).
  if (const std::optional<LevelsManifest> levels =
          read_levels_manifest(path_)) {
    if (!(levels->identity == manifest_)) {
      throw std::runtime_error(
          "persist: levels manifest belongs to a different sweep (" +
          describe_manifest_mismatch(levels->identity, manifest_) +
          "): " + path_);
    }
    for (const SegmentRef& ref : levels->segments) {
      const SegmentReader segment{segment_path(path_, ref)};
      if (!(segment.info().identity == manifest_)) {
        throw std::runtime_error("persist: segment " + ref.file +
                                 " belongs to a different sweep: " + path_);
      }
      for (campaign::CellStats& cell : segment.cells()) {
        const std::uint64_t index = cell.index;
        completed_.emplace(index, std::move(cell));
      }
    }
  }
  return reader.valid_bytes();
}

void CampaignStore::append_trial(const TrialRecord& trial) {
  const std::lock_guard lock{mutex_};
  writer_.append(kRecTrial, encode_trial(trial));
}

void CampaignStore::complete_cell(const campaign::CellStats& stats) {
  const std::lock_guard lock{mutex_};
  writer_.append(kRecCellV2, encode_cell(stats));
  if (options_.fsync_every != 0 && ++cells_since_sync_ >= options_.fsync_every) {
    writer_.sync();
    cells_since_sync_ = 0;
  } else {
    writer_.flush();
  }
  completed_[stats.index] = stats;
}

bool CampaignStore::cell_complete(std::uint64_t cell_index) const {
  const std::lock_guard lock{mutex_};
  return completed_.contains(cell_index);
}

const campaign::CellStats* CampaignStore::completed_stats(
    std::uint64_t cell_index) const {
  const std::lock_guard lock{mutex_};
  const auto it = completed_.find(cell_index);
  return it == completed_.end() ? nullptr : &it->second;
}

std::size_t CampaignStore::completed_count() const {
  const std::lock_guard lock{mutex_};
  return completed_.size();
}

std::vector<std::uint64_t> CampaignStore::completed_cells() const {
  const std::lock_guard lock{mutex_};
  std::vector<std::uint64_t> out;
  out.reserve(completed_.size());
  for (const auto& [index, stats] : completed_) out.push_back(index);
  std::sort(out.begin(), out.end());
  return out;
}

void CampaignStore::sync() {
  const std::lock_guard lock{mutex_};
  writer_.sync();
  cells_since_sync_ = 0;
}

StoreContents read_store(const std::string& path) {
  return StoreReader{path}.read_all();
}

campaign::SweepReport merge_stores(const std::vector<std::string>& paths) {
  if (paths.empty()) {
    throw std::runtime_error("persist: merge needs at least one store");
  }

  std::vector<StoreContents> stores;
  stores.reserve(paths.size());
  for (const std::string& path : paths) stores.push_back(read_store(path));

  const StoreManifest& first = stores.front().manifest;
  std::map<std::uint32_t, const std::string*> shards_seen;
  std::map<std::uint64_t, campaign::CellStats> merged;
  for (std::size_t i = 0; i < stores.size(); ++i) {
    const StoreManifest& m = stores[i].manifest;
    StoreManifest sweep_identity = m;
    sweep_identity.shard_index = first.shard_index;
    if (!(sweep_identity == first)) {
      throw std::runtime_error(
          "persist: store is from a different sweep: " + paths[i]);
    }
    if (m.shard_index >= m.shard_count) {
      throw std::runtime_error("persist: shard index out of range: " +
                               paths[i]);
    }
    const auto [it, inserted] = shards_seen.emplace(m.shard_index, &paths[i]);
    if (!inserted) {
      throw std::runtime_error("persist: duplicate shard " +
                               std::to_string(m.shard_index) + ": " + paths[i] +
                               " and " + *it->second);
    }
    for (campaign::CellStats& cell : stores[i].cells) {
      if (cell.index >= m.grid_cells) {
        throw std::runtime_error("persist: cell index beyond grid in " +
                                 paths[i]);
      }
      const std::uint64_t index = cell.index;
      if (!merged.emplace(index, std::move(cell)).second) {
        throw std::runtime_error("persist: cell " + std::to_string(index) +
                                 " reported by more than one store");
      }
    }
  }

  if (merged.size() != first.grid_cells) {
    throw std::runtime_error(
        "persist: merged stores cover " + std::to_string(merged.size()) +
        " of " + std::to_string(first.grid_cells) +
        " cells (incomplete shard? missing store?)");
  }

  campaign::SweepReport report;
  report.cells.reserve(merged.size());
  for (auto& [index, cell] : merged) report.cells.push_back(std::move(cell));
  return report;
}

SweepData load_sweep(const std::vector<std::string>& paths,
                     const CellFilter& filter) {
  if (paths.empty()) {
    throw std::runtime_error("persist: load_sweep needs at least one store");
  }

  SweepData out;
  // Keyed views with the encoded bytes kept alongside, so a duplicate is
  // accepted only when it is the SAME bytes — the only duplicates a
  // deterministic sweep can legally produce.
  std::map<std::uint64_t,
           std::pair<campaign::CellStats, std::vector<std::uint8_t>>>
      cells;
  std::map<std::pair<std::uint64_t, std::uint32_t>,
           std::pair<TrialRecord, std::vector<std::uint8_t>>>
      trials;

  bool first = true;
  for (const std::string& path : paths) {
    StoreContents contents = StoreReader{path}.read_matching(filter);
    if (first) {
      out.manifest = contents.manifest;
      first = false;
    } else {
      StoreManifest identity = contents.manifest;
      identity.shard_index = out.manifest.shard_index;
      identity.shard_count = out.manifest.shard_count;
      if (!(identity == out.manifest)) {
        throw std::runtime_error(
            "persist: store is from a different sweep (" +
            describe_manifest_mismatch(contents.manifest, out.manifest) +
            "): " + path);
      }
    }
    out.truncated_tail = out.truncated_tail || contents.truncated_tail;

    for (campaign::CellStats& cell : contents.cells) {
      if (cell.index >= contents.manifest.grid_cells) {
        throw std::runtime_error("persist: cell index beyond grid in " + path);
      }
      std::vector<std::uint8_t> bytes = encode_cell(cell);
      const std::uint64_t index = cell.index;
      const auto it = cells.find(index);
      if (it == cells.end()) {
        cells.emplace(index, std::pair{std::move(cell), std::move(bytes)});
      } else if (it->second.second == bytes) {
        ++out.duplicate_cells;
      } else {
        throw std::runtime_error(
            "persist: cell " + std::to_string(index) +
            " has conflicting copies (corrupt store or mixed sweeps): " +
            path);
      }
    }
    for (TrialRecord& trial : contents.trials) {
      std::vector<std::uint8_t> bytes = encode_trial(trial);
      const std::pair<std::uint64_t, std::uint32_t> key{trial.cell_index,
                                                        trial.trial};
      const auto it = trials.find(key);
      if (it == trials.end()) {
        trials.emplace(key, std::pair{std::move(trial), std::move(bytes)});
      } else if (it->second.second == bytes) {
        ++out.duplicate_trials;
      } else {
        throw std::runtime_error(
            "persist: trial (" + std::to_string(key.first) + ", " +
            std::to_string(key.second) +
            ") has conflicting copies (corrupt store or mixed sweeps): " +
            path);
      }
    }
  }

  out.cells.reserve(cells.size());
  for (auto& [index, entry] : cells) out.cells.push_back(std::move(entry.first));
  out.trials.reserve(trials.size());
  for (auto& [key, entry] : trials) {
    out.trials.push_back(std::move(entry.first));
  }
  return out;
}

StoreTailer::Counts StoreTailer::poll() {
  // Segment totals come from the levels manifest alone — no block
  // reads. A generation bump means a compaction replaced the segment
  // set and trimmed the log under us: rebase and rescan the (now tiny)
  // log from the top.
  try {
    const std::optional<LevelsManifest> levels = read_levels_manifest(path_);
    const std::uint64_t generation = levels ? levels->generation : 0;
    if (generation != generation_) {
      generation_ = generation;
      offset_ = 0;
      log_counts_ = {};
      segment_counts_ = {};
      if (levels.has_value()) {
        for (const SegmentRef& ref : levels->segments) {
          segment_counts_.trials += ref.trials;
          segment_counts_.cells += ref.cells;
        }
      }
    }
  } catch (const std::runtime_error&) {
    // Sidecar mid-replacement: keep the previous view, retry next poll.
  }

  if (record_file_usable(path_)) {
    try {
      RecordReader reader{path_, offset_};
      while (const auto rec = reader.next()) {
        switch (rec->type) {
          case kRecTrial: ++log_counts_.trials; break;
          case kRecCell:
          case kRecCellV2: ++log_counts_.cells; break;
          default: break;  // manifest / future record types
        }
      }
      offset_ = reader.valid_bytes();
    } catch (const std::runtime_error&) {
      // Mid-creation file (magic in flight) or transient I/O hiccup: a
      // progress view reports nothing new and retries next poll.
    }
  }
  return {segment_counts_.trials + log_counts_.trials,
          segment_counts_.cells + log_counts_.cells};
}

std::vector<std::string> list_store_files(const std::string& dir) {
  std::vector<std::string> stores;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() == ".store") {
      stores.push_back(entry.path().string());
    }
  }
  std::sort(stores.begin(), stores.end());
  return stores;
}

SweepData load_sweep_path(const std::string& path, const CellFilter& filter) {
  if (std::filesystem::is_directory(path)) {
    const std::vector<std::string> stores = list_store_files(path);
    if (stores.empty()) {
      throw std::runtime_error("persist: no *.store files in " + path);
    }
    return load_sweep(stores, filter);
  }
  return load_sweep({path}, filter);
}

campaign::SweepReport merge_worker_stores(const std::vector<std::string>& paths) {
  SweepData data = load_sweep(paths);
  if (data.cells.size() != data.manifest.grid_cells) {
    throw std::runtime_error(
        "persist: worker stores cover " + std::to_string(data.cells.size()) +
        " of " + std::to_string(data.manifest.grid_cells) +
        " cells (sweep still in flight? missing store?)");
  }
  campaign::SweepReport report;
  report.cells = std::move(data.cells);
  return report;
}

namespace {

/// In-flight unit of compaction: one live segment (existing or written
/// this pass) that may still be merged into a deeper level.
struct CompactUnit {
  std::string path;
  std::uint32_t level = 0;
  std::uint64_t sequence = 0;
  std::unique_ptr<SegmentReader> reader;
};

using CellMap = std::map<std::uint64_t, campaign::CellStats>;
using TrialMap = std::map<std::pair<std::uint64_t, std::uint32_t>, TrialRecord>;

std::vector<SegmentCell> to_segment_cells(CellMap cells, TrialMap trials) {
  std::vector<SegmentCell> out;
  out.reserve(cells.size());
  for (auto& [index, stats] : cells) {
    SegmentCell cell;
    cell.stats = std::move(stats);
    const auto lo = trials.lower_bound({index, 0});
    const auto hi = trials.lower_bound({index + 1, 0});
    for (auto it = lo; it != hi; ++it) {
      cell.trials.push_back(std::move(it->second));
    }
    out.push_back(std::move(cell));
  }
  return out;
}

/// Drains `inputs` (ascending sequence = last-wins) into key maps,
/// returning how many duplicate records the merge collapsed.
std::pair<std::size_t, std::size_t> drain_units(
    const std::vector<CompactUnit*>& inputs, CellMap& cells,
    TrialMap& trials) {
  std::size_t trial_records = 0;
  std::size_t cell_records = 0;
  for (const CompactUnit* unit : inputs) {
    for (campaign::CellStats& cell : unit->reader->cells()) {
      ++cell_records;
      const std::uint64_t index = cell.index;
      cells[index] = std::move(cell);
    }
    unit->reader->for_each_group([&](const SegmentReader::TrialGroup& group) {
      for (const TrialRecord& t : group.trials) {
        ++trial_records;
        trials[{t.cell_index, t.trial}] = t;
      }
    });
  }
  return {trial_records - trials.size(), cell_records - cells.size()};
}

}  // namespace

CompactionResult compact_store(const std::string& path,
                               const CompactOptions& options) {
  CompactionResult result;

  // ---- Load the current state: sidecar + segments + raw log pass.
  std::optional<LevelsManifest> levels = read_levels_manifest(path);
  std::vector<CompactUnit> units;
  std::uint64_t next_sequence = 0;
  if (levels.has_value()) {
    for (const SegmentRef& ref : levels->segments) {
      CompactUnit unit;
      unit.path = segment_path(path, ref);
      unit.level = ref.level;
      unit.sequence = ref.sequence;
      unit.reader = std::make_unique<SegmentReader>(unit.path);
      next_sequence = std::max(next_sequence, ref.sequence);
      units.push_back(std::move(unit));
    }
  }

  StoreManifest manifest;
  bool saw_manifest = false;
  CellMap log_cells;
  TrialMap log_trials;
  std::vector<Record> unknown;  // forward-compat: preserved verbatim
  std::size_t trial_records = 0;
  std::size_t cell_records = 0;
  bool torn_tail = false;
  {
    RecordReader reader{path};
    for (std::optional<Record> rec = reader.next(); rec.has_value();
         rec = reader.next()) {
      switch (rec->type) {
        case kRecManifest: {
          const StoreManifest m = decode_store_manifest(rec->payload);
          if (saw_manifest && !(m == manifest)) {
            throw std::runtime_error(
                "persist: conflicting manifest records in " + path);
          }
          manifest = m;
          saw_manifest = true;
          break;
        }
        case kRecTrial: {
          ++trial_records;
          TrialRecord t = decode_trial(rec->payload);
          log_trials[{t.cell_index, t.trial}] = std::move(t);
          break;
        }
        case kRecCell: {
          ++cell_records;
          campaign::CellStats c = decode_cell_v1(rec->payload);
          const std::uint64_t index = c.index;
          log_cells[index] = std::move(c);
          break;
        }
        case kRecCellV2: {
          ++cell_records;
          campaign::CellStats c = decode_cell_v2(rec->payload);
          const std::uint64_t index = c.index;
          log_cells[index] = std::move(c);
          break;
        }
        default:
          unknown.push_back(std::move(*rec));
          break;
      }
    }
    torn_tail = reader.truncated();
  }
  if (!saw_manifest) {
    throw std::runtime_error("persist: store has no manifest record: " + path);
  }
  if (levels.has_value() && !(levels->identity == manifest)) {
    throw std::runtime_error(
        "persist: levels manifest does not match store (" +
        describe_manifest_mismatch(levels->identity, manifest) + "): " + path);
  }

  result.bytes_before = file_size_or_zero(path) +
                        file_size_or_zero(levels_manifest_path(path));
  for (const CompactUnit& unit : units) {
    result.bytes_before += unit.reader->file_bytes();
  }

  // ---- Drop superseded log records. A cell is "completed" if any tier
  // holds its aggregate; orphan trials (their cell never completed) are
  // re-run and re-streamed by a resume, so they drop here.
  std::set<std::uint64_t> completed;
  CellMap segment_cells;
  for (const CompactUnit& unit : units) {
    for (campaign::CellStats& cell : unit.reader->cells()) {
      const std::uint64_t index = cell.index;
      completed.insert(index);
      segment_cells[index] = std::move(cell);
    }
  }
  for (const auto& [index, cell] : log_cells) completed.insert(index);
  for (auto it = log_trials.begin(); it != log_trials.end();) {
    if (!completed.contains(it->first.first)) {
      it = log_trials.erase(it);
    } else {
      ++it;
    }
  }
  result.trials_dropped = trial_records - log_trials.size();
  result.cells_dropped = cell_records - log_cells.size();

  const bool log_dirty = trial_records > 0 || cell_records > 0 || torn_tail;
  bool changed = false;

  // ---- Flush the log's data into a fresh level-0 segment. Trials of a
  // cell completed in an older segment (crash-window duplicates) flush
  // under that segment's aggregate — bit-identical, deduped on merge.
  if (!log_cells.empty() || !log_trials.empty()) {
    CellMap flush_cells = log_cells;
    for (const auto& [key, t] : log_trials) {
      if (!flush_cells.contains(key.first)) {
        flush_cells[key.first] = segment_cells.at(key.first);
      }
    }
    CompactUnit unit;
    unit.level = 0;
    unit.sequence = ++next_sequence;
    unit.path = (std::filesystem::path(path).parent_path() /
                 segment_file_name(path, unit.sequence))
                    .string();
    SegmentWriteOptions write_options;
    write_options.block_bytes = options.block_bytes;
    write_segment(unit.path, unit.level, unit.sequence, manifest,
                  to_segment_cells(std::move(flush_cells),
                                   std::move(log_trials)),
                  write_options);
    unit.reader = std::make_unique<SegmentReader>(unit.path);
    units.push_back(std::move(unit));
    ++result.segments_written;
    changed = true;
  }

  // ---- Tier merge. Default (cap 0): everything into one sorted
  // segment. Tiered (cap > 0): any level over the cap merges, together
  // with the next level down, into a single deeper segment — young
  // levels stay small and churn, old levels are rewritten rarely.
  std::vector<std::string> obsolete;
  const auto merge_into = [&](std::vector<std::size_t> input_indices,
                              std::uint32_t out_level) {
    std::vector<CompactUnit*> inputs;
    inputs.reserve(input_indices.size());
    for (const std::size_t i : input_indices) inputs.push_back(&units[i]);
    std::sort(inputs.begin(), inputs.end(),
              [](const CompactUnit* a, const CompactUnit* b) {
                return a->sequence < b->sequence;
              });
    CellMap cells;
    TrialMap trials;
    const auto [dup_trials, dup_cells] = drain_units(inputs, cells, trials);
    result.trials_dropped += dup_trials;
    result.cells_dropped += dup_cells;

    CompactUnit unit;
    unit.level = out_level;
    unit.sequence = ++next_sequence;
    unit.path = (std::filesystem::path(path).parent_path() /
                 segment_file_name(path, unit.sequence))
                    .string();
    SegmentWriteOptions write_options;
    write_options.block_bytes = options.block_bytes;
    write_segment(unit.path, unit.level, unit.sequence, manifest,
                  to_segment_cells(std::move(cells), std::move(trials)),
                  write_options);
    unit.reader = std::make_unique<SegmentReader>(unit.path);
    ++result.segments_written;
    changed = true;

    std::sort(input_indices.begin(), input_indices.end(),
              std::greater<std::size_t>{});
    for (const std::size_t i : input_indices) {
      obsolete.push_back(units[i].path);
      units.erase(units.begin() + static_cast<std::ptrdiff_t>(i));
    }
    units.push_back(std::move(unit));
  };

  if (options.max_level_bytes == 0) {
    if (units.size() > 1) {
      std::vector<std::size_t> all(units.size());
      for (std::size_t i = 0; i < units.size(); ++i) all[i] = i;
      std::uint32_t deepest = 1;
      for (const CompactUnit& unit : units) {
        deepest = std::max(deepest, unit.level);
      }
      merge_into(std::move(all), deepest);
    }
  } else {
    for (bool merged = true; merged;) {
      merged = false;
      std::map<std::uint32_t, std::vector<std::size_t>> by_level;
      std::map<std::uint32_t, std::uint64_t> level_bytes;
      for (std::size_t i = 0; i < units.size(); ++i) {
        by_level[units[i].level].push_back(i);
        level_bytes[units[i].level] += units[i].reader->file_bytes();
      }
      for (const auto& [level, indices] : by_level) {
        if (level_bytes[level] <= options.max_level_bytes) continue;
        std::vector<std::size_t> inputs = indices;
        const auto next = by_level.find(level + 1);
        if (next != by_level.end()) {
          inputs.insert(inputs.end(), next->second.begin(),
                        next->second.end());
        }
        // A single oversized segment with nothing to merge against
        // would only be relabeled deeper forever — leave it be.
        if (inputs.size() < 2) continue;
        merge_into(std::move(inputs), level + 1);
        merged = true;
        break;  // unit indices are stale; recompute the level map
      }
    }
  }

  // ---- Publish. No-op when nothing changed and the log is already
  // clean: repeated compaction must be byte-stable.
  if (!changed && !log_dirty) {
    result.bytes_after = result.bytes_before;
    result.segments_live = units.size();
    result.generation = levels.has_value() ? levels->generation : 0;
    return result;
  }

  if (!units.empty() || levels.has_value()) {
    LevelsManifest out;
    out.generation = (levels.has_value() ? levels->generation : 0) + 1;
    out.identity = manifest;
    // Round-trip the identity through its encoding so a v1 manifest
    // upgrades to the version the trimmed log will carry.
    out.identity = decode_store_manifest(encode_store_manifest(manifest));
    for (const CompactUnit& unit : units) {
      SegmentRef ref;
      ref.file = std::filesystem::path(unit.path).filename().string();
      ref.level = unit.level;
      ref.sequence = unit.sequence;
      ref.bytes = unit.reader->file_bytes();
      ref.trials = unit.reader->info().trial_count;
      ref.cells = unit.reader->info().cell_count;
      out.segments.push_back(std::move(ref));
    }
    std::sort(out.segments.begin(), out.segments.end(),
              [](const SegmentRef& a, const SegmentRef& b) {
                return a.sequence < b.sequence;
              });
    result.generation = out.generation;
    write_levels_manifest(path, out);
  }

  // Trim the log to its write-ahead essentials: the manifest record and
  // any unknown (future-format) records, preserved verbatim. Rename over
  // the original only once durable; fsync the directory so a crash
  // cannot resurrect the fat pre-compaction log.
  {
    const std::string tmp = path + ".compact";
    {
      RecordWriter writer{tmp, RecordWriter::Mode::kTruncate};
      writer.append(kRecManifest, encode_store_manifest(manifest));
      for (const Record& rec : unknown) {
        writer.append(rec.type, rec.payload);
      }
      writer.sync();
    }
    std::filesystem::rename(tmp, path);
    fsync_parent_dir(path);
  }

  // Obsolete segments last: the manifest no longer names them, so a
  // crash before this point merely leaves invisible debris (cleared by
  // the stale-file sweep below, next compaction).
  std::set<std::string> live;
  for (const CompactUnit& unit : units) {
    live.insert(std::filesystem::path(unit.path).filename().string());
  }
  {
    const std::filesystem::path store{path};
    const std::string base = store.filename().string();
    std::filesystem::path dir = store.parent_path();
    if (dir.empty()) dir = ".";
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.size() > base.size() && name.starts_with(base) &&
          name.ends_with(".seg") && !live.contains(name)) {
        std::filesystem::remove(entry.path(), ec);
      }
    }
  }
  fsync_parent_dir(path);

  result.segments_live = units.size();
  result.bytes_after = file_size_or_zero(path) +
                       file_size_or_zero(levels_manifest_path(path));
  for (const CompactUnit& unit : units) {
    result.bytes_after += unit.reader->file_bytes();
  }
  return result;
}

}  // namespace msa::persist
