#include "persist/campaign_store.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <utility>

#include "attack/scenario.h"
#include "persist/encoding.h"

namespace msa::persist {

namespace {

// Record types inside a campaign store. Unknown types are skipped on
// read so later format additions stay backward-readable.
constexpr std::uint8_t kRecManifest = 1;
constexpr std::uint8_t kRecTrial = 2;
constexpr std::uint8_t kRecCell = 3;    ///< v1: four named axis fields
constexpr std::uint8_t kRecCellV2 = 4;  ///< v2: ordered axis coordinates

constexpr std::uint8_t kTrialDenied = 1u << 0;
constexpr std::uint8_t kTrialModelIdentified = 1u << 1;

std::vector<std::uint8_t> encode_trial(const TrialRecord& t) {
  ByteWriter w;
  w.varint(t.cell_index);
  w.varint(t.trial);
  std::uint8_t flags = 0;
  if (t.denied) flags |= kTrialDenied;
  if (t.model_identified) flags |= kTrialModelIdentified;
  w.u8(flags);
  w.f64(t.pixel_match);
  w.f64(t.psnr);
  w.f64(t.descriptor_pixel_match);
  w.str(t.denial_reason);
  return {w.bytes().begin(), w.bytes().end()};
}

TrialRecord decode_trial(std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  TrialRecord t;
  t.cell_index = r.varint();
  t.trial = static_cast<std::uint32_t>(r.varint());
  const std::uint8_t flags = r.u8();
  t.denied = (flags & kTrialDenied) != 0;
  t.model_identified = (flags & kTrialModelIdentified) != 0;
  t.pixel_match = r.f64();
  t.psnr = r.f64();
  t.descriptor_pixel_match = r.f64();
  t.denial_reason = r.str();
  return t;
}

void encode_axis_value(ByteWriter& w, const campaign::AxisValue& v) {
  w.u8(static_cast<std::uint8_t>(v.kind));
  switch (v.kind) {
    case campaign::AxisKind::kString:
    case campaign::AxisKind::kEnum:
      w.str(v.str);
      break;
    case campaign::AxisKind::kDouble:
      w.f64(v.num);
      break;
    case campaign::AxisKind::kBool:
      w.u8(v.flag ? 1 : 0);
      break;
  }
}

campaign::AxisValue decode_axis_value(ByteReader& r) {
  campaign::AxisValue v;
  const std::uint8_t kind = r.u8();
  switch (kind) {
    case static_cast<std::uint8_t>(campaign::AxisKind::kString):
      return campaign::AxisValue::of_string(r.str());
    case static_cast<std::uint8_t>(campaign::AxisKind::kEnum):
      return campaign::AxisValue::of_enum(r.str());
    case static_cast<std::uint8_t>(campaign::AxisKind::kDouble):
      return campaign::AxisValue::of_number(r.f64());
    case static_cast<std::uint8_t>(campaign::AxisKind::kBool):
      return campaign::AxisValue::of_bool(r.u8() != 0);
    default:
      throw std::runtime_error("persist: unknown axis-value kind " +
                               std::to_string(kind));
  }
}

void encode_cell_counters(ByteWriter& w, const campaign::CellStats& c) {
  w.varint(c.trials);
  w.varint(c.full_successes);
  w.varint(c.model_identified);
  w.varint(c.denials);
  w.f64(c.mean_pixel_match);
  w.f64(c.mean_psnr_db);
  w.f64(c.mean_descriptor_pixel_match);
  w.str(c.first_denial_reason);
}

void decode_cell_counters(ByteReader& r, campaign::CellStats& c) {
  c.trials = static_cast<std::size_t>(r.varint());
  c.full_successes = static_cast<std::size_t>(r.varint());
  c.model_identified = static_cast<std::size_t>(r.varint());
  c.denials = static_cast<std::size_t>(r.varint());
  c.mean_pixel_match = r.f64();
  c.mean_psnr_db = r.f64();
  c.mean_descriptor_pixel_match = r.f64();
  c.first_denial_reason = r.str();
}

// v2 cell record: ordered (axis, value) coordinates, then the counters.
std::vector<std::uint8_t> encode_cell(const campaign::CellStats& c) {
  ByteWriter w;
  w.varint(c.index);
  w.varint(c.coords.size());
  for (const campaign::AxisCoordinate& coord : c.coords) {
    w.str(coord.axis);
    encode_axis_value(w, coord.value);
  }
  encode_cell_counters(w, c);
  return {w.bytes().begin(), w.bytes().end()};
}

campaign::CellStats decode_cell_v2(std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  campaign::CellStats c;
  c.index = static_cast<std::size_t>(r.varint());
  const std::uint64_t coords = r.varint();
  c.coords.reserve(coords);
  for (std::uint64_t i = 0; i < coords; ++i) {
    std::string axis = r.str();
    campaign::AxisValue value = decode_axis_value(r);
    c.coords.push_back({std::move(axis), std::move(value)});
  }
  decode_cell_counters(r, c);
  return c;
}

// v1 cell record: the four hard-coded axis fields. Decoding synthesizes
// the equivalent coordinates so everything downstream of read is
// version-blind.
campaign::CellStats decode_cell_v1(std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  campaign::CellStats c;
  c.index = static_cast<std::size_t>(r.varint());
  c.coords.reserve(4);
  c.coords.push_back({"defense", campaign::AxisValue::of_string(r.str())});
  c.coords.push_back({"model", campaign::AxisValue::of_string(r.str())});
  c.coords.push_back({"delay_s", campaign::AxisValue::of_number(r.f64())});
  c.coords.push_back(
      {"scrubber_Bps", campaign::AxisValue::of_number(r.f64())});
  decode_cell_counters(r, c);
  return c;
}

/// The schema a v1 writer implicitly used: the legacy four axes. Value
/// lists stay empty — v1 manifests never recorded them; the cells carry
/// the actual values.
std::vector<campaign::AxisSpec> legacy_axis_schema() {
  return {{"defense", campaign::AxisKind::kString, {}},
          {"model", campaign::AxisKind::kString, {}},
          {"delay_s", campaign::AxisKind::kDouble, {}},
          {"scrubber_Bps", campaign::AxisKind::kDouble, {}}};
}

}  // namespace

std::vector<std::uint8_t> encode_store_manifest(const StoreManifest& m) {
  // Always writes the CURRENT format — re-encoding a v1-loaded manifest
  // (compaction) upgrades the file to v2 with the synthesized schema.
  ByteWriter w;
  w.u32(kStoreFormatVersion);
  w.u64(m.grid_fingerprint);
  w.u64(m.grid_cells);
  w.u32(m.trials_per_cell);
  w.u64(m.trial_salt);
  w.u32(m.shard_index);
  w.u32(m.shard_count);
  w.varint(m.axes.size());
  for (const campaign::AxisSpec& axis : m.axes) {
    w.str(axis.name);
    w.u8(static_cast<std::uint8_t>(axis.kind));
    w.varint(axis.values.size());
    for (const campaign::AxisValue& v : axis.values) encode_axis_value(w, v);
  }
  return {w.bytes().begin(), w.bytes().end()};
}

StoreManifest decode_store_manifest(std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  const std::uint32_t version = r.u32();
  if (version == 0 || version > kStoreFormatVersion) {
    throw std::runtime_error("persist: unsupported store format version " +
                             std::to_string(version));
  }
  StoreManifest m;
  m.version = version;
  m.grid_fingerprint = r.u64();
  m.grid_cells = r.u64();
  m.trials_per_cell = r.u32();
  m.trial_salt = r.u64();
  m.shard_index = r.u32();
  m.shard_count = r.u32();
  if (version == 1) {
    // v1 manifests end here; the four-axis schema was implicit.
    m.axes = legacy_axis_schema();
    return m;
  }
  const std::uint64_t axes = r.varint();
  m.axes.reserve(axes);
  for (std::uint64_t i = 0; i < axes; ++i) {
    campaign::AxisSpec spec;
    spec.name = r.str();
    spec.kind = static_cast<campaign::AxisKind>(r.u8());
    const std::uint64_t values = r.varint();
    spec.values.reserve(values);
    for (std::uint64_t j = 0; j < values; ++j) {
      spec.values.push_back(decode_axis_value(r));
    }
    m.axes.push_back(std::move(spec));
  }
  return m;
}

std::string describe_manifest_mismatch(const StoreManifest& have,
                                       const StoreManifest& want) {
  std::string out;
  auto field = [&](const char* name, auto a, auto b) {
    if (a != b) {
      if (!out.empty()) out += ", ";
      out += std::string(name) + " " + std::to_string(a) + " != " +
             std::to_string(b);
    }
  };
  field("version", have.version, want.version);
  field("grid_fingerprint", have.grid_fingerprint, want.grid_fingerprint);
  field("grid_cells", have.grid_cells, want.grid_cells);
  field("trials_per_cell", have.trials_per_cell, want.trials_per_cell);
  field("trial_salt", have.trial_salt, want.trial_salt);
  field("shard_index", have.shard_index, want.shard_index);
  field("shard_count", have.shard_count, want.shard_count);
  if (!(have.axes == want.axes)) {
    if (!out.empty()) out += ", ";
    auto schema = [](const StoreManifest& m) {
      std::string s;
      for (const campaign::AxisSpec& axis : m.axes) {
        if (!s.empty()) s += '/';
        s += axis.name;
      }
      return s.empty() ? std::string("<none>") : s;
    };
    out += "axis schema [" + schema(have) + "] != [" + schema(want) + "]";
  }
  return out;
}

TrialRecord TrialRecord::from_result(std::uint64_t cell_index,
                                     std::uint32_t trial,
                                     const attack::ScenarioResult& result) {
  TrialRecord t;
  t.cell_index = cell_index;
  t.trial = trial;
  t.denied = result.denied;
  t.model_identified = result.model_identified_correctly;
  t.pixel_match = result.pixel_match;
  t.psnr = result.psnr;
  t.descriptor_pixel_match = result.descriptor_pixel_match;
  t.denial_reason = result.denial_reason;
  return t;
}

CampaignStore::CampaignStore(const std::string& path,
                             const StoreManifest& manifest, Mode mode,
                             StoreOptions options)
    : path_{path},
      manifest_{manifest},
      options_{options},
      resuming_{[&] {
        // A file shorter than the magic is the debris of a kill between
        // create and the magic write — not a resumable store. Only
        // explicit kCreate refuses to clobber it.
        const bool usable = record_file_usable(path);
        if (mode == Mode::kCreate && std::filesystem::exists(path)) {
          throw std::runtime_error(
              "persist: store already exists (resume instead?): " + path);
        }
        if (mode == Mode::kResume && !usable) {
          throw std::runtime_error("persist: no store to resume: " + path);
        }
        return usable;
      }()},
      writer_{path, [&] {
                if (!resuming_) return RecordWriter::Mode::kTruncate;
                // One pass: validate manifest, reload completed cells,
                // find the torn-tail truncation point — all before the
                // writer opens (and without rejecting the file by
                // mutating it first).
                const std::uint64_t keep = scan_existing();
                std::error_code ec;
                std::filesystem::resize_file(path, keep, ec);
                if (ec) {
                  throw std::runtime_error(
                      "persist: cannot truncate torn tail: " + path + ": " +
                      ec.message());
                }
                return RecordWriter::Mode::kAppendClean;
              }()} {
  if (!resuming_ || !manifest_on_disk_) {
    // Fresh store — or an existing file whose every record was torn off.
    writer_.append(kRecManifest, encode_store_manifest(manifest_));
    writer_.flush();
  }
}

std::uint64_t CampaignStore::scan_existing() {
  bool any_records = false;
  RecordReader reader{path_};
  for (std::optional<Record> rec = reader.next(); rec.has_value();
       rec = reader.next()) {
    any_records = true;
    if (rec->type == kRecManifest) {
      manifest_on_disk_ = true;
      const StoreManifest on_disk = decode_store_manifest(rec->payload);
      if (!(on_disk == manifest_)) {
        throw std::runtime_error(
            "persist: store belongs to a different sweep (" +
            describe_manifest_mismatch(on_disk, manifest_) + "): " + path_);
      }
    } else if (rec->type == kRecCell || rec->type == kRecCellV2) {
      campaign::CellStats cell = rec->type == kRecCellV2
                                     ? decode_cell_v2(rec->payload)
                                     : decode_cell_v1(rec->payload);
      const std::uint64_t index = cell.index;
      completed_[index] = std::move(cell);
    }
    // Trial records are not replayed here: resume re-runs incomplete
    // cells from scratch, and deterministic reseeding reproduces the
    // identical trials.
  }
  if (any_records && !manifest_on_disk_) {
    throw std::runtime_error("persist: store has no manifest record: " +
                             path_);
  }
  return reader.valid_bytes();
}

void CampaignStore::append_trial(const TrialRecord& trial) {
  const std::lock_guard lock{mutex_};
  writer_.append(kRecTrial, encode_trial(trial));
}

void CampaignStore::complete_cell(const campaign::CellStats& stats) {
  const std::lock_guard lock{mutex_};
  writer_.append(kRecCellV2, encode_cell(stats));
  if (options_.fsync_every != 0 && ++cells_since_sync_ >= options_.fsync_every) {
    writer_.sync();
    cells_since_sync_ = 0;
  } else {
    writer_.flush();
  }
  completed_[stats.index] = stats;
}

bool CampaignStore::cell_complete(std::uint64_t cell_index) const {
  const std::lock_guard lock{mutex_};
  return completed_.contains(cell_index);
}

const campaign::CellStats* CampaignStore::completed_stats(
    std::uint64_t cell_index) const {
  const std::lock_guard lock{mutex_};
  const auto it = completed_.find(cell_index);
  return it == completed_.end() ? nullptr : &it->second;
}

std::size_t CampaignStore::completed_count() const {
  const std::lock_guard lock{mutex_};
  return completed_.size();
}

std::vector<std::uint64_t> CampaignStore::completed_cells() const {
  const std::lock_guard lock{mutex_};
  std::vector<std::uint64_t> out;
  out.reserve(completed_.size());
  for (const auto& [index, stats] : completed_) out.push_back(index);
  std::sort(out.begin(), out.end());
  return out;
}

void CampaignStore::sync() {
  const std::lock_guard lock{mutex_};
  writer_.sync();
  cells_since_sync_ = 0;
}

StoreContents read_store(const std::string& path) {
  StoreContents out;
  bool saw_manifest = false;
  std::map<std::uint64_t, campaign::CellStats> cells;
  std::map<std::pair<std::uint64_t, std::uint32_t>, TrialRecord> trials;

  RecordReader reader{path};
  for (std::optional<Record> rec = reader.next(); rec.has_value();
       rec = reader.next()) {
    switch (rec->type) {
      case kRecManifest:
        out.manifest = decode_store_manifest(rec->payload);
        saw_manifest = true;
        break;
      case kRecTrial: {
        TrialRecord t = decode_trial(rec->payload);
        trials[{t.cell_index, t.trial}] = std::move(t);
        break;
      }
      case kRecCell: {
        campaign::CellStats c = decode_cell_v1(rec->payload);
        cells[c.index] = std::move(c);
        break;
      }
      case kRecCellV2: {
        campaign::CellStats c = decode_cell_v2(rec->payload);
        cells[c.index] = std::move(c);
        break;
      }
      default:
        break;  // unknown record type: forward-compatible skip
    }
  }
  out.truncated_tail = reader.truncated();
  if (!saw_manifest) {
    throw std::runtime_error("persist: store has no manifest record: " + path);
  }
  out.cells.reserve(cells.size());
  for (auto& [index, cell] : cells) out.cells.push_back(std::move(cell));
  out.trials.reserve(trials.size());
  for (auto& [key, trial] : trials) out.trials.push_back(std::move(trial));
  return out;
}

campaign::SweepReport merge_stores(const std::vector<std::string>& paths) {
  if (paths.empty()) {
    throw std::runtime_error("persist: merge needs at least one store");
  }

  std::vector<StoreContents> stores;
  stores.reserve(paths.size());
  for (const std::string& path : paths) stores.push_back(read_store(path));

  const StoreManifest& first = stores.front().manifest;
  std::map<std::uint32_t, const std::string*> shards_seen;
  std::map<std::uint64_t, campaign::CellStats> merged;
  for (std::size_t i = 0; i < stores.size(); ++i) {
    const StoreManifest& m = stores[i].manifest;
    StoreManifest sweep_identity = m;
    sweep_identity.shard_index = first.shard_index;
    if (!(sweep_identity == first)) {
      throw std::runtime_error(
          "persist: store is from a different sweep: " + paths[i]);
    }
    if (m.shard_index >= m.shard_count) {
      throw std::runtime_error("persist: shard index out of range: " +
                               paths[i]);
    }
    const auto [it, inserted] = shards_seen.emplace(m.shard_index, &paths[i]);
    if (!inserted) {
      throw std::runtime_error("persist: duplicate shard " +
                               std::to_string(m.shard_index) + ": " + paths[i] +
                               " and " + *it->second);
    }
    for (campaign::CellStats& cell : stores[i].cells) {
      if (cell.index >= m.grid_cells) {
        throw std::runtime_error("persist: cell index beyond grid in " +
                                 paths[i]);
      }
      const std::uint64_t index = cell.index;
      if (!merged.emplace(index, std::move(cell)).second) {
        throw std::runtime_error("persist: cell " + std::to_string(index) +
                                 " reported by more than one store");
      }
    }
  }

  if (merged.size() != first.grid_cells) {
    throw std::runtime_error(
        "persist: merged stores cover " + std::to_string(merged.size()) +
        " of " + std::to_string(first.grid_cells) +
        " cells (incomplete shard? missing store?)");
  }

  campaign::SweepReport report;
  report.cells.reserve(merged.size());
  for (auto& [index, cell] : merged) report.cells.push_back(std::move(cell));
  return report;
}

SweepData load_sweep(const std::vector<std::string>& paths) {
  if (paths.empty()) {
    throw std::runtime_error("persist: load_sweep needs at least one store");
  }

  SweepData out;
  // Keyed views with the encoded bytes kept alongside, so a duplicate is
  // accepted only when it is the SAME bytes — the only duplicates a
  // deterministic sweep can legally produce.
  std::map<std::uint64_t,
           std::pair<campaign::CellStats, std::vector<std::uint8_t>>>
      cells;
  std::map<std::pair<std::uint64_t, std::uint32_t>,
           std::pair<TrialRecord, std::vector<std::uint8_t>>>
      trials;

  bool first = true;
  for (const std::string& path : paths) {
    StoreContents contents = read_store(path);
    if (first) {
      out.manifest = contents.manifest;
      first = false;
    } else {
      StoreManifest identity = contents.manifest;
      identity.shard_index = out.manifest.shard_index;
      identity.shard_count = out.manifest.shard_count;
      if (!(identity == out.manifest)) {
        throw std::runtime_error(
            "persist: store is from a different sweep (" +
            describe_manifest_mismatch(contents.manifest, out.manifest) +
            "): " + path);
      }
    }
    out.truncated_tail = out.truncated_tail || contents.truncated_tail;

    for (campaign::CellStats& cell : contents.cells) {
      if (cell.index >= contents.manifest.grid_cells) {
        throw std::runtime_error("persist: cell index beyond grid in " + path);
      }
      std::vector<std::uint8_t> bytes = encode_cell(cell);
      const std::uint64_t index = cell.index;
      const auto it = cells.find(index);
      if (it == cells.end()) {
        cells.emplace(index, std::pair{std::move(cell), std::move(bytes)});
      } else if (it->second.second == bytes) {
        ++out.duplicate_cells;
      } else {
        throw std::runtime_error(
            "persist: cell " + std::to_string(index) +
            " has conflicting copies (corrupt store or mixed sweeps): " +
            path);
      }
    }
    for (TrialRecord& trial : contents.trials) {
      std::vector<std::uint8_t> bytes = encode_trial(trial);
      const std::pair<std::uint64_t, std::uint32_t> key{trial.cell_index,
                                                        trial.trial};
      const auto it = trials.find(key);
      if (it == trials.end()) {
        trials.emplace(key, std::pair{std::move(trial), std::move(bytes)});
      } else if (it->second.second == bytes) {
        ++out.duplicate_trials;
      } else {
        throw std::runtime_error(
            "persist: trial (" + std::to_string(key.first) + ", " +
            std::to_string(key.second) +
            ") has conflicting copies (corrupt store or mixed sweeps): " +
            path);
      }
    }
  }

  out.cells.reserve(cells.size());
  for (auto& [index, entry] : cells) out.cells.push_back(std::move(entry.first));
  out.trials.reserve(trials.size());
  for (auto& [key, entry] : trials) {
    out.trials.push_back(std::move(entry.first));
  }
  return out;
}

StoreTailer::Counts StoreTailer::poll() {
  if (!record_file_usable(path_)) return counts_;
  try {
    RecordReader reader{path_, offset_};
    while (const auto rec = reader.next()) {
      switch (rec->type) {
        case kRecTrial: ++counts_.trials; break;
        case kRecCell:
        case kRecCellV2: ++counts_.cells; break;
        default: break;  // manifest / future record types
      }
    }
    offset_ = reader.valid_bytes();
  } catch (const std::runtime_error&) {
    // Mid-creation file (magic in flight) or transient I/O hiccup: a
    // progress view reports nothing new and retries next poll.
  }
  return counts_;
}

std::vector<std::string> list_store_files(const std::string& dir) {
  std::vector<std::string> stores;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() == ".store") {
      stores.push_back(entry.path().string());
    }
  }
  std::sort(stores.begin(), stores.end());
  return stores;
}

SweepData load_sweep_path(const std::string& path) {
  if (std::filesystem::is_directory(path)) {
    const std::vector<std::string> stores = list_store_files(path);
    if (stores.empty()) {
      throw std::runtime_error("persist: no *.store files in " + path);
    }
    return load_sweep(stores);
  }
  return load_sweep({path});
}

campaign::SweepReport merge_worker_stores(const std::vector<std::string>& paths) {
  SweepData data = load_sweep(paths);
  if (data.cells.size() != data.manifest.grid_cells) {
    throw std::runtime_error(
        "persist: worker stores cover " + std::to_string(data.cells.size()) +
        " of " + std::to_string(data.manifest.grid_cells) +
        " cells (sweep still in flight? missing store?)");
  }
  campaign::SweepReport report;
  report.cells = std::move(data.cells);
  return report;
}

CompactionResult compact_store(const std::string& path) {
  CompactionResult result;
  result.bytes_before = std::filesystem::file_size(path);

  // Single raw pass: last-wins maps plus the counts the dedupe drops.
  StoreManifest manifest;
  bool saw_manifest = false;
  std::map<std::uint64_t, campaign::CellStats> cells;
  std::map<std::pair<std::uint64_t, std::uint32_t>, TrialRecord> trials;
  std::vector<Record> unknown;  // forward-compat: preserved verbatim
  std::size_t trial_records = 0;
  std::size_t cell_records = 0;
  {
    RecordReader reader{path};
    for (std::optional<Record> rec = reader.next(); rec.has_value();
         rec = reader.next()) {
      switch (rec->type) {
        case kRecManifest: {
          const StoreManifest m = decode_store_manifest(rec->payload);
          if (saw_manifest && !(m == manifest)) {
            throw std::runtime_error(
                "persist: conflicting manifest records in " + path);
          }
          manifest = m;
          saw_manifest = true;
          break;
        }
        case kRecTrial: {
          ++trial_records;
          TrialRecord t = decode_trial(rec->payload);
          trials[{t.cell_index, t.trial}] = std::move(t);
          break;
        }
        case kRecCell: {
          ++cell_records;
          campaign::CellStats c = decode_cell_v1(rec->payload);
          const std::uint64_t index = c.index;
          cells[index] = std::move(c);
          break;
        }
        case kRecCellV2: {
          ++cell_records;
          campaign::CellStats c = decode_cell_v2(rec->payload);
          const std::uint64_t index = c.index;
          cells[index] = std::move(c);
          break;
        }
        default:
          unknown.push_back(std::move(*rec));
          break;
      }
    }
  }
  if (!saw_manifest) {
    throw std::runtime_error("persist: store has no manifest record: " + path);
  }

  // Orphan trials (their cell never completed) are superseded too: a
  // resume re-runs those cells and re-streams identical trials.
  for (auto it = trials.begin(); it != trials.end();) {
    if (!cells.contains(it->first.first)) {
      it = trials.erase(it);
    } else {
      ++it;
    }
  }
  result.trials_dropped = trial_records - trials.size();
  result.cells_dropped = cell_records - cells.size();

  // Rewrite to a sibling and rename over the original only once the
  // replacement is durable; a crash mid-compaction leaves the source
  // untouched (plus at most a stale .compact file the next run clobbers).
  const std::string tmp = path + ".compact";
  {
    RecordWriter writer{tmp, RecordWriter::Mode::kTruncate};
    writer.append(kRecManifest, encode_store_manifest(manifest));
    for (const auto& [key, trial] : trials) {
      writer.append(kRecTrial, encode_trial(trial));
    }
    // Cells rewrite as v2 records (and the manifest re-encodes as v2
    // above): compacting a v1 store upgrades it in place.
    for (const auto& [index, cell] : cells) {
      writer.append(kRecCellV2, encode_cell(cell));
    }
    for (const Record& rec : unknown) {
      writer.append(rec.type, rec.payload);
    }
    writer.sync();
  }
  std::filesystem::rename(tmp, path);
  result.bytes_after = std::filesystem::file_size(path);
  return result;
}

}  // namespace msa::persist
