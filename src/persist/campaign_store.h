// Durable campaign results: one record per finished trial, one per
// completed cell, streamed into an append-only RecordWriter file as
// workers finish. A store file belongs to exactly one (grid, shard): the
// manifest record written first pins the grid fingerprint, full-grid cell
// count, trials per cell, trial salt and shard coordinates, so a resumed
// or merged sweep can refuse a store produced by a different experiment.
//
// Durability contract: complete_cell() flushes, so a killed process loses
// at most the trials of cells that had not completed — exactly the cells
// a resume re-runs. Trial records of an incomplete cell may therefore
// appear twice after a resume; readers deduplicate by (cell, trial),
// which is lossless because trials are deterministic functions of
// (cell, trial, salt).
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "campaign/report.h"
#include "persist/record_io.h"

namespace msa::attack {
struct ScenarioResult;
}

namespace msa::persist {

/// Current LOG format. v2 added the serialized axis schema to the
/// manifest and the coordinate-carrying cell record (kRecCellV2); v1
/// stores remain readable — decode synthesizes the legacy four-axis
/// schema for them — but cannot be resumed by a v2 writer.
inline constexpr std::uint32_t kStoreFormatVersion = 2;

/// Effective format of a SEGMENTED store: a v2 write-ahead log plus a
/// `.levels` sidecar naming sorted block-indexed segments (see
/// persist/manifest.h). v3 changes no log bytes — the log manifest still
/// encodes version 2, so flat and segmented stores of one sweep remain
/// identity-equal and mergeable — which is why this is a separate
/// constant rather than a bump of kStoreFormatVersion. Readers report it
/// via StoreContents::format / StoreReader::format_version().
inline constexpr std::uint32_t kSegmentedStoreFormat = 3;

/// Identity of the sweep a store file belongs to.
struct StoreManifest {
  std::uint32_t version = kStoreFormatVersion;  ///< format the file was written in
  std::uint64_t grid_fingerprint = 0;  ///< campaign::GridBuilder::fingerprint
  std::uint64_t grid_cells = 0;        ///< FULL (unsharded) grid size
  std::uint32_t trials_per_cell = 0;
  std::uint64_t trial_salt = 0;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  /// Ordered swept-axis schema (GridBuilder::axis_schema). For a v1
  /// store this is synthesized: the legacy four axes with empty value
  /// lists (v1 never recorded the values; cells still carry them).
  std::vector<campaign::AxisSpec> axes;

  friend bool operator==(const StoreManifest&, const StoreManifest&) = default;
};

/// On-disk encoding of the manifest payload — shared by campaign stores
/// and lease logs (both pin the same sweep identity so a stray file from
/// a different experiment is rejected).
[[nodiscard]] std::vector<std::uint8_t> encode_store_manifest(
    const StoreManifest& m);
[[nodiscard]] StoreManifest decode_store_manifest(
    std::span<const std::uint8_t> payload);

/// Human-readable field-by-field diff, "" when equal (error messages).
[[nodiscard]] std::string describe_manifest_mismatch(const StoreManifest& have,
                                                     const StoreManifest& want);

/// One scenario run, keyed by (global cell index, trial index). Carries
/// every field CellStats::accumulate consumes, with doubles bit-exact, so
/// per-cell aggregates rebuilt from the trial stream match the in-memory
/// sweep byte for byte.
struct TrialRecord {
  std::uint64_t cell_index = 0;
  std::uint32_t trial = 0;
  bool denied = false;
  bool model_identified = false;
  double pixel_match = 0.0;
  double psnr = 0.0;
  double descriptor_pixel_match = 0.0;
  std::string denial_reason;

  [[nodiscard]] static TrialRecord from_result(
      std::uint64_t cell_index, std::uint32_t trial,
      const attack::ScenarioResult& result);
};

/// Durability knobs beyond CampaignStore's per-cell flush.
struct StoreOptions {
  /// When nonzero, fsync(2) the store after every K completed cells so
  /// results survive power loss, not just process death. Off by
  /// default: fsync per cell can dominate a fast sweep, and the
  /// per-cell flush already covers the kill/crash cases the resume
  /// machinery is built for.
  unsigned fsync_every = 0;
};

/// Writable store bound to one shard's file. Thread-safe: workers append
/// trials and complete cells concurrently.
class CampaignStore {
 public:
  enum class Mode {
    kCreate,          ///< fresh file; an existing one is an error
    kResume,          ///< existing file required; manifest must match
    kCreateOrResume,  ///< resume if the file exists, else create
  };

  /// Opens `path`. On resume the torn tail (if any) is truncated and the
  /// completed-cell map reloaded; a manifest that does not equal
  /// `manifest` throws std::runtime_error (wrong grid / trials / shard).
  CampaignStore(const std::string& path, const StoreManifest& manifest,
                Mode mode, StoreOptions options = {});

  CampaignStore(const CampaignStore&) = delete;
  CampaignStore& operator=(const CampaignStore&) = delete;

  /// Streams one finished trial; buffered until the owning cell completes.
  void append_trial(const TrialRecord& trial);

  /// Marks a cell done: writes its aggregate stats and flushes, making
  /// the cell (and every buffered trial before it) durable.
  void complete_cell(const campaign::CellStats& stats);

  [[nodiscard]] bool cell_complete(std::uint64_t cell_index) const;
  /// Stored aggregate for a completed cell, nullptr when incomplete.
  [[nodiscard]] const campaign::CellStats* completed_stats(
      std::uint64_t cell_index) const;
  [[nodiscard]] std::size_t completed_count() const;
  /// Global indices of every completed cell, ascending (the lease
  /// scheduler seeds its "already done" view from this on restart).
  [[nodiscard]] std::vector<std::uint64_t> completed_cells() const;

  /// fsync the store now, regardless of the batching option (the final
  /// durability point a caller can take at sweep end).
  void sync();

  [[nodiscard]] const StoreManifest& manifest() const noexcept {
    return manifest_;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  /// Resume path: single pass over the existing file that validates the
  /// on-disk manifest, reloads completed_, and returns the byte offset
  /// of the last intact frame (the truncation point for the torn tail).
  /// Must run before writer_ opens — declaration order matters below.
  [[nodiscard]] std::uint64_t scan_existing();

  mutable std::mutex mutex_;
  std::string path_;
  StoreManifest manifest_;
  StoreOptions options_;
  std::unordered_map<std::uint64_t, campaign::CellStats> completed_;
  unsigned cells_since_sync_ = 0;  ///< fsync batching counter
  bool resuming_ = false;
  bool manifest_on_disk_ = false;  ///< set by scan_existing()
  // Writer last: constructed after the resume scan decided the append
  // point (kAppendClean skips RecordWriter's own recovery pass, so the
  // file is read exactly once on resume).
  RecordWriter writer_;
};

/// Cell-coordinate predicate: AND of per-axis allowed-label clauses (a
/// cell matches when, for every clause, its value on that axis — by
/// canonical label — is one of the listed labels). Empty filter = match
/// everything. This is the `--cells AXIS=VALUE[,...]` CLI surface, and
/// the thing StoreReader turns into indexed block reads on a segmented
/// store.
struct CellFilter {
  struct Clause {
    std::string axis;
    std::vector<std::string> labels;
  };
  std::vector<Clause> clauses;

  [[nodiscard]] bool empty() const noexcept { return clauses.empty(); }
  [[nodiscard]] bool matches(
      const std::vector<campaign::AxisCoordinate>& coords) const;

  /// Parses one "AXIS=V1[,V2...]" spec into a clause; throws
  /// std::invalid_argument on a malformed spec (no '=', empty axis or
  /// value list). Repeated flags append clauses (AND).
  static Clause parse_clause(const std::string& spec);
};

/// Read-only snapshot of a store file.
struct StoreContents {
  StoreManifest manifest;
  /// kSegmentedStoreFormat when a levels sidecar is present, else the
  /// log manifest's version (1 or 2).
  std::uint32_t format = 0;
  /// Completed cells sorted by global index (duplicates last-wins).
  std::vector<campaign::CellStats> cells;
  /// Trial stream sorted by (cell index, trial), deduplicated last-wins.
  std::vector<TrialRecord> trials;
  /// True when a torn/corrupt tail was dropped while reading the LOG
  /// (segments are immutable and reject damage instead of healing).
  bool truncated_tail = false;
};

/// Loads everything readable from a store — log and, for a segmented
/// store, its blocks — stopping cleanly at a torn log tail. Throws
/// std::runtime_error for a missing/misframed file, a store with no
/// manifest record, or a damaged segment/sidecar. (Convenience wrapper
/// over StoreReader::read_all(); see persist/store_reader.h for the
/// cell-range interface.)
[[nodiscard]] StoreContents read_store(const std::string& path);

/// Reassembles shard stores into the single-process sweep report, cells
/// in grid order. Validates that every store belongs to the same sweep
/// (equal fingerprint/grid/trials/salt/shard_count), shard indices are
/// distinct, no cell is reported twice, and the union covers the full
/// grid — throws std::runtime_error otherwise. A single complete
/// unsharded store is the N=1 case.
[[nodiscard]] campaign::SweepReport merge_stores(
    const std::vector<std::string>& paths);

/// Union of several stores from ONE sweep, with duplicates tolerated —
/// the reader for lease-mode worker stores, where a reclaimed-then-
/// resurrected lease can leave the same cell (bit-identical, because
/// trials are deterministic) in two workers' stores. Stores must agree
/// on fingerprint/grid/trials/salt (shard coordinates are NOT compared,
/// so shard stores can be analyzed with the same call); a duplicated
/// cell or trial whose bytes differ from the first copy throws — that is
/// data corruption or a mixed-up directory, never a legal lease race.
struct SweepData {
  StoreManifest manifest;  ///< identity fields of the first store
  /// Completed cells, deduplicated, ascending global index.
  std::vector<campaign::CellStats> cells;
  /// Trial stream, deduplicated by (cell, trial), ascending.
  std::vector<TrialRecord> trials;
  std::size_t duplicate_cells = 0;   ///< identical copies dropped
  std::size_t duplicate_trials = 0;  ///< identical copies dropped
  bool truncated_tail = false;       ///< any store had a torn tail
};
/// When `filter` is non-empty only matching completed cells (and their
/// trials) load — on a segmented store via the block index, on a flat
/// store by scan-and-drop — so filtered flat and segmented views of the
/// same data are identical. Orphan trials of never-completed cells are
/// excluded under a filter (their coordinates are unknowable without the
/// cell record).
[[nodiscard]] SweepData load_sweep(const std::vector<std::string>& paths,
                                   const CellFilter& filter = {});

/// Incremental tail reader over one store file for progress views: each
/// poll() parses only the bytes appended since the previous poll and
/// counts trial / completed-cell records. Tolerates a file that does not
/// exist yet and torn tails (both simply yield no new records until the
/// writer catches up — the same heal-on-reparse strategy as
/// LeaseDirScanner). Segment-aware: on a segmented store the per-segment
/// totals come from the levels manifest (no block reads at all), the log
/// tail is followed by offset as before, and a generation bump — a
/// compaction trimming the log under the poller — rebases the counts
/// instead of double- or under-counting. Read-only; safe to point at a
/// live worker's store.
class StoreTailer {
 public:
  explicit StoreTailer(std::string path) : path_{std::move(path)} {}

  struct Counts {
    std::uint64_t trials = 0;  ///< trial records seen (log duplicates included)
    std::uint64_t cells = 0;   ///< completed-cell records seen
  };

  /// Cumulative counts after tailing any newly appended records.
  [[nodiscard]] Counts poll();

 private:
  std::string path_;
  std::uint64_t offset_ = 0;      ///< last intact log frame boundary
  std::uint64_t generation_ = 0;  ///< levels-manifest generation seen
  Counts segment_counts_;         ///< totals from the levels manifest
  Counts log_counts_;             ///< records tailed from the log
};

/// Every "*.store" file directly under `dir`, sorted by path — the
/// worker-store enumeration shared by merge/stats/diff tooling.
[[nodiscard]] std::vector<std::string> list_store_files(const std::string& dir);

/// Loads one analysis input by path: a directory means "every *.store
/// inside" (a lease-mode workers dir), anything else a single store
/// file. Throws std::runtime_error when a directory holds no stores —
/// and this is the loader `campaign_sweep diff` uses per side, so each
/// side of a comparison can independently be a file or a directory.
[[nodiscard]] SweepData load_sweep_path(const std::string& path,
                                        const CellFilter& filter = {});

/// Lease-mode merge: load_sweep over the worker stores plus the full-
/// coverage check, yielding the report in grid order — byte-identical to
/// the single-process run. Throws std::runtime_error when cells are
/// missing (sweep still in flight or a worker store was lost).
[[nodiscard]] campaign::SweepReport merge_worker_stores(
    const std::vector<std::string>& paths);

/// Compaction tuning. The default (max_level_bytes = 0) merges the log
/// and every existing segment into one sorted segment — the smallest,
/// fastest-to-query store. A nonzero max_level_bytes keeps a tiered
/// shape instead: the log always flushes to a fresh level-0 segment, and
/// any level whose total bytes exceed the cap merges into the next level
/// — repeated compactions of a growing store then rewrite only the
/// young, small levels instead of the whole history every time.
struct CompactOptions {
  std::uint64_t max_level_bytes = 0;
  /// Segment trial-block target (SegmentWriteOptions::block_bytes).
  std::size_t block_bytes = 64 * 1024;
};

/// Compacts a store into segmented (v3) form, dropping superseded
/// records a resumed or raced sweep leaves behind: duplicate trial
/// records (same cell+trial; last wins), duplicate cell records (last
/// wins), trial records of cells that never completed (a resume re-runs
/// and re-streams them), and the torn log tail if any. The log's
/// completed cells flush into a sorted block-indexed segment, levels
/// merge per `options`, and the log is trimmed to its manifest record
/// (it stays the write-ahead tier for future appends). Unknown record
/// types are preserved verbatim in the log for forward compatibility.
///
/// Crash-safe by write ordering: new segments are fsynced (file and
/// directory) before the levels manifest names them, the manifest
/// replacement is atomic, the trimmed log replaces the old one only
/// after a flush+fsync, and obsolete segment files are deleted last. A
/// crash at any point leaves a readable store — at worst with invisible
/// debris or bit-identical log/segment duplicates that the next
/// compaction clears. Do not compact a store a live worker has open.
///
/// Compacting an already-compacted store with nothing new is a no-op
/// (bytes_after == bytes_before, nothing dropped, generation unchanged).
struct CompactionResult {
  std::uint64_t bytes_before = 0;  ///< log + sidecar + segments
  std::uint64_t bytes_after = 0;
  std::size_t trials_dropped = 0;  ///< duplicates + orphans of incomplete cells
  std::size_t cells_dropped = 0;   ///< superseded duplicate cell records
  std::size_t segments_written = 0;  ///< new segment files this pass
  std::size_t segments_live = 0;     ///< segment files after compaction
  std::uint64_t generation = 0;      ///< levels-manifest generation after
};
[[nodiscard]] CompactionResult compact_store(const std::string& path,
                                             const CompactOptions& options = {});

}  // namespace msa::persist
