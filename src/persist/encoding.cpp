#include "persist/encoding.h"

#include <stdexcept>

namespace msa::persist {

void ByteReader::need(std::size_t n) const {
  if (data_.size() - pos_ < n) {
    throw std::out_of_range("persist: record payload shorter than expected");
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = 0;
  for (int shift = 0; shift < 16; shift += 8) {
    v = static_cast<std::uint16_t>(v | (static_cast<std::uint16_t>(data_[pos_++])
                                        << shift));
  }
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<std::uint32_t>(data_[pos_++]) << shift;
  }
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    v |= static_cast<std::uint64_t>(data_[pos_++]) << shift;
  }
  return v;
}

std::uint64_t ByteReader::varint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    need(1);
    const std::uint8_t byte = data_[pos_++];
    // The 10th byte may only carry the single remaining bit.
    if (shift == 63 && byte > 1) {
      throw std::out_of_range("persist: varint exceeds 64 bits");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  throw std::out_of_range("persist: unterminated varint");
}

std::string ByteReader::str() {
  const std::uint64_t len = varint();
  need(len);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

}  // namespace msa::persist
