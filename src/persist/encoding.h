// Endian-safe binary encoding primitives for the on-disk record format.
// All multi-byte integers are little-endian on disk regardless of host
// byte order; doubles are serialized as their IEEE-754 bit pattern so a
// value round-trips bit-exactly (including -0.0, subnormals, infinities
// and NaN payloads — the campaign reports must be byte-identical whether
// they were computed in RAM or reloaded from a store). Unsigned varints
// use LEB128 (7 bits per byte, high bit = continuation), which keeps
// small counts and cell indices at one byte.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace msa::persist {

/// Append-only serialization buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
    buf_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  }

  void u32(std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      buf_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
    }
  }

  void u64(std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      buf_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
    }
  }

  /// IEEE-754 bit pattern; exact round-trip for every double, NaNs
  /// included.
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  /// LEB128 unsigned varint, 1–10 bytes.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  /// Varint byte length followed by the raw bytes.
  void str(std::string_view s) {
    varint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Raw bytes, no length prefix — for splicing an already-encoded,
  /// self-delimiting payload (a segment block entry) into a buffer.
  void raw(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  void clear() noexcept { buf_.clear(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked deserializer over a byte span. Overruns and malformed
/// varints throw std::out_of_range — inside a CRC-validated record that
/// means a format bug, not disk corruption, so throwing is correct.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) noexcept
      : data_{bytes} {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] std::uint64_t varint();
  [[nodiscard]] std::string str();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace msa::persist
