#include "persist/lease_log.h"

#include <filesystem>
#include <stdexcept>

#include "obs/metrics.h"
#include "persist/encoding.h"
#include "util/prng.h"

namespace msa::persist {

namespace {

// Scheduler metrics, registered once (obs/metrics.h returns stable
// references). These mirror LeaseScheduler::Telemetry but aggregate
// process-wide and add the idle/expiry signals the in-struct counters
// never carried.
obs::Counter& claims_metric() {
  static obs::Counter& c = obs::counter("lease.claims");
  return c;
}
obs::Counter& renews_metric() {
  static obs::Counter& c = obs::counter("lease.renews");
  return c;
}
obs::Counter& steals_metric() {
  static obs::Counter& c = obs::counter("lease.steals");
  return c;
}
obs::Counter& forfeits_metric() {
  static obs::Counter& c = obs::counter("lease.forfeits");
  return c;
}
obs::Counter& scans_metric() {
  static obs::Counter& c = obs::counter("lease.scans");
  return c;
}
obs::Counter& idle_sleeps_metric() {
  static obs::Counter& c = obs::counter("lease.idle_sleeps");
  return c;
}
obs::Counter& peer_expiries_metric() {
  static obs::Counter& c = obs::counter("lease.peer_expiries");
  return c;
}

// Lease-log record types. Deliberately disjoint from the campaign-store
// types (1..3) so a lease file can never be misread as a store: read_store
// skips these as unknown and then fails its "no manifest" check.
constexpr std::uint8_t kRecLeaseManifest = 17;
constexpr std::uint8_t kRecLeaseClaim = 18;
constexpr std::uint8_t kRecLeaseRenew = 19;
constexpr std::uint8_t kRecLeaseComplete = 20;
constexpr std::uint8_t kRecLeaseReset = 21;

std::vector<std::uint8_t> encode_cell_index(std::uint64_t cell_index) {
  ByteWriter w;
  w.varint(cell_index);
  return {w.bytes().begin(), w.bytes().end()};
}

std::uint64_t decode_cell_index(std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  return r.varint();
}

/// Validates the worker id, makes sure the directory exists, and returns
/// the lease-log path — runs in the LeaseScheduler init list, before the
/// LeaseLog member opens the file.
std::string prepare_lease_path(const std::string& dir,
                               const std::string& worker_id) {
  if (!LeaseScheduler::valid_worker_id(worker_id)) {
    throw std::invalid_argument(
        "persist: worker id must be [A-Za-z0-9_-]+ (it names files): '" +
        worker_id + "'");
  }
  std::filesystem::create_directories(dir);
  return LeaseScheduler::lease_path(dir, worker_id);
}

}  // namespace

// ---------------------------------------------------------------- LeaseLog

LeaseLog::LeaseLog(const std::string& path, const StoreManifest& manifest)
    : path_{path},
      manifest_{manifest},
      // Shorter than the magic = killed between create and magic write;
      // start fresh instead of throwing bad-magic on every restart.
      resuming_{record_file_usable(path)},
      writer_{path, [&] {
                if (!resuming_) return RecordWriter::Mode::kTruncate;
                const std::uint64_t keep = scan_existing();
                std::error_code ec;
                std::filesystem::resize_file(path, keep, ec);
                if (ec) {
                  throw std::runtime_error(
                      "persist: cannot truncate torn lease tail: " + path +
                      ": " + ec.message());
                }
                return RecordWriter::Mode::kAppendClean;
              }()} {
  if (!resuming_ || !manifest_on_disk_) {
    writer_.append(kRecLeaseManifest, encode_store_manifest(manifest_));
  } else {
    // Worker restart: the previous life's unfinished claims are void;
    // peers drop them when they see the reset.
    writer_.append(kRecLeaseReset, {});
  }
  writer_.flush();
}

std::uint64_t LeaseLog::scan_existing() {
  bool any_records = false;
  RecordReader reader{path_};
  for (std::optional<Record> rec = reader.next(); rec.has_value();
       rec = reader.next()) {
    any_records = true;
    switch (rec->type) {
      case kRecLeaseManifest: {
        const StoreManifest on_disk = decode_store_manifest(rec->payload);
        if (!(on_disk == manifest_)) {
          throw std::runtime_error(
              "persist: lease log belongs to a different sweep (" +
              describe_manifest_mismatch(on_disk, manifest_) + "): " + path_);
        }
        manifest_on_disk_ = true;
        break;
      }
      case kRecLeaseComplete:
        completed_.insert(decode_cell_index(rec->payload));
        break;
      default:
        break;  // claims/renews of the previous life: voided by the reset
    }
  }
  if (any_records && !manifest_on_disk_) {
    throw std::runtime_error("persist: lease log has no manifest record: " +
                             path_);
  }
  return reader.valid_bytes();
}

void LeaseLog::claim(std::uint64_t cell_index) {
  writer_.append(kRecLeaseClaim, encode_cell_index(cell_index));
  writer_.flush();
}

void LeaseLog::renew(std::uint64_t cell_index) {
  writer_.append(kRecLeaseRenew, encode_cell_index(cell_index));
  writer_.flush();
}

void LeaseLog::complete(std::uint64_t cell_index) {
  writer_.append(kRecLeaseComplete, encode_cell_index(cell_index));
  writer_.flush();
  completed_.insert(cell_index);
}

std::optional<StoreManifest> read_lease_manifest(const std::string& path) {
  if (!record_file_usable(path)) return std::nullopt;
  try {
    RecordReader reader{path};
    const std::optional<Record> rec = reader.next();
    if (!rec.has_value() || rec->type != kRecLeaseManifest) return std::nullopt;
    return decode_store_manifest(rec->payload);
  } catch (const std::exception&) {
    return std::nullopt;  // bad magic, torn manifest, unreadable file
  }
}

// --------------------------------------------------------- LeaseDirScanner

LeaseDirScanner::LeaseDirScanner(std::string dir, std::string skip,
                                 StoreManifest manifest)
    : dir_{std::move(dir)}, skip_{std::move(skip)}, manifest_{manifest} {}

void LeaseDirScanner::refresh(bool idle) {
  std::set<std::string> seen;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!name.ends_with(".lease") || name == skip_) continue;
    seen.insert(name);
    scan_file(name, entry.path().string(), idle);
  }
  // A log whose file vanished (operator cleanup, tmpwatch) can never
  // grow again; freezing its stale counter below the threshold would
  // make its open claims look live forever and hang the sweep. Age it
  // like any other silent peer so the claims expire.
  if (idle) {
    for (auto& [name, state] : workers_) {
      if (!seen.contains(name)) ++state.stale_scans;
    }
  }
}

void LeaseDirScanner::scan_file(const std::string& name,
                                const std::string& path, bool idle) {
  WorkerLeaseState& state = workers_[name];

  std::optional<RecordReader> reader;
  try {
    reader.emplace(path, state.valid_bytes);
  } catch (const std::runtime_error&) {
    // Unopenable or bad magic. A file we have never read may simply be
    // mid-creation (the peer's magic write is in flight) — check again
    // next round. A log we HAVE read going unreadable is real breakage.
    if (state.valid_bytes == 0) {
      if (idle) ++state.stale_scans;
      return;
    }
    throw;
  }

  std::size_t parsed = 0;
  for (std::optional<Record> rec = reader->next(); rec.has_value();
       rec = reader->next()) {
    if (!state.manifest_checked) {
      // The first record of a lease log is always its manifest; anything
      // else is a foreign or corrupt file polluting the directory.
      if (rec->type != kRecLeaseManifest) {
        throw std::runtime_error("persist: not a lease log (first record): " +
                                 path);
      }
      const StoreManifest on_disk = decode_store_manifest(rec->payload);
      if (!(on_disk == manifest_)) {
        throw std::runtime_error(
            "persist: lease log belongs to a different sweep (" +
            describe_manifest_mismatch(on_disk, manifest_) + "): " + path);
      }
      state.manifest_checked = true;
      ++parsed;
      continue;
    }
    switch (rec->type) {
      case kRecLeaseClaim: {
        const std::uint64_t cell = decode_cell_index(rec->payload);
        if (!state.completed.contains(cell)) state.claimed.insert(cell);
        break;
      }
      case kRecLeaseComplete: {
        const std::uint64_t cell = decode_cell_index(rec->payload);
        state.completed.insert(cell);
        state.claimed.erase(cell);
        break;
      }
      case kRecLeaseReset:
        state.claimed.clear();
        break;
      default:
        break;  // renew (liveness is the append itself) / forward-compat
    }
    ++parsed;
  }
  state.valid_bytes = reader->valid_bytes();
  state.frames += parsed;
  if (parsed > 0) {
    state.stale_scans = 0;
  } else if (idle) {
    ++state.stale_scans;
  }
}

bool LeaseDirScanner::completed_elsewhere(std::uint64_t cell_index) const {
  for (const auto& [name, worker] : workers_) {
    if (worker.completed.contains(cell_index)) return true;
  }
  return false;
}

// ---------------------------------------------------------- LeaseScheduler

LeaseScheduler::LeaseScheduler(const std::string& dir,
                               const std::string& worker_id,
                               std::vector<campaign::CampaignCell> cells,
                               const StoreManifest& manifest,
                               const CampaignStore* own_store,
                               LeaseSchedulerOptions options)
    : cells_{std::move(cells)},
      options_{options},
      log_{prepare_lease_path(dir, worker_id), manifest},
      scanner_{dir, worker_id + ".lease", manifest} {
  for (std::size_t pos = 0; pos < cells_.size(); ++pos) {
    if (!index_to_pos_.emplace(cells_[pos].index, pos).second) {
      throw std::invalid_argument(
          "persist: duplicate cell index in lease grid: " +
          std::to_string(cells_[pos].index));
    }
  }
  own_completed_ = log_.completed();
  if (own_store != nullptr) {
    if (!(own_store->manifest() == manifest)) {
      throw std::invalid_argument(
          "persist: lease scheduler and worker store disagree on the sweep (" +
          describe_manifest_mismatch(own_store->manifest(), manifest) + ")");
    }
    // Repair the store->log direction: a kill between the store's cell
    // flush and the lease append left a completion peers cannot see.
    for (const std::uint64_t index : own_store->completed_cells()) {
      if (!own_completed_.contains(index)) log_.complete(index);
      own_completed_.insert(index);
    }
  }

  // Spread concurrent starters across the grid so their first claims
  // do not pile onto cell 0.
  rotation_ = cells_.empty() ? 0 : util::fnv1a_64(worker_id) % cells_.size();

  const std::lock_guard lock{mutex_};
  scanner_.refresh(/*idle=*/false);
  ++telemetry_.scans;
  scans_metric().add();
  for (const campaign::CampaignCell& cell : cells_) {
    if (!is_completed_locked(cell.index)) ++planned_;
  }
}

std::string LeaseScheduler::lease_path(const std::string& dir,
                                       const std::string& worker_id) {
  return (std::filesystem::path{dir} / (worker_id + ".lease")).string();
}

std::string LeaseScheduler::store_path(const std::string& dir,
                                       const std::string& worker_id) {
  return (std::filesystem::path{dir} / (worker_id + ".store")).string();
}

bool LeaseScheduler::valid_worker_id(const std::string& worker_id) {
  if (worker_id.empty()) return false;
  for (const char c : worker_id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::size_t LeaseScheduler::planned() const { return planned_; }

bool LeaseScheduler::is_completed_locked(std::uint64_t cell_index) const {
  return own_completed_.contains(cell_index) ||
         scanner_.completed_elsewhere(cell_index);
}

bool LeaseScheduler::all_complete_locked() const {
  for (const campaign::CampaignCell& cell : cells_) {
    if (!is_completed_locked(cell.index)) return false;
  }
  return true;
}

std::optional<campaign::ClaimedCell> LeaseScheduler::acquire() {
  std::unique_lock lock{mutex_};
  // Scope the aging token to this call (destroyed before `lock`, so the
  // flag flip is still under the mutex even on an exception path).
  struct AgingToken {
    bool* active = nullptr;
    bool held = false;
    void grab(bool* flag) {
      if (!held && !*flag) {
        *flag = true;
        active = flag;
        held = true;
      }
    }
    ~AgingToken() {
      if (held) *active = false;
    }
  } aging;
  bool idle_round = false;
  while (true) {
    if (aborted_) return std::nullopt;
    // During the idle endgame only the token holder polls the directory
    // (its refresh also ages silent peers); the other parked threads
    // just re-read the shared scanner state it maintains — N threads
    // must not multiply the poll I/O or the aging rate by N.
    if (!idle_round || aging.held) {
      scanner_.refresh(idle_round && aging.held);
      ++telemetry_.scans;
      scans_metric().add();
    }
    if (all_complete_locked()) return std::nullopt;

    // Fresh cells first; stealing from a peer that stopped appending is
    // the last resort, so scan rounds during busy claiming never cause
    // duplicated work.
    const std::size_t n = cells_.size();
    std::optional<std::size_t> fresh_pos;
    std::optional<std::size_t> steal_pos;
    for (std::size_t k = 0; k < n && !fresh_pos; ++k) {
      const std::size_t pos = (rotation_ + k) % n;
      const std::uint64_t index = cells_[pos].index;
      if (is_completed_locked(index) || own_inflight_.contains(index)) {
        continue;
      }
      bool live_claim = false;
      bool expired_claim = false;
      for (const auto& [name, worker] : scanner_.workers()) {
        if (!worker.claimed.contains(index)) continue;
        if (worker.stale_scans >= options_.expiry_scans) {
          expired_claim = true;
          if (expired_peers_.insert(name).second) peer_expiries_metric().add();
        } else {
          live_claim = true;
          break;
        }
      }
      if (live_claim) continue;
      if (expired_claim) {
        if (!steal_pos) steal_pos = pos;
        continue;
      }
      fresh_pos = pos;
    }

    const std::optional<std::size_t> pick = fresh_pos ? fresh_pos : steal_pos;
    if (pick.has_value()) {
      const std::uint64_t index = cells_[*pick].index;
      log_.claim(index);
      own_inflight_.insert(index);
      ++telemetry_.claims;
      claims_metric().add();
      if (!fresh_pos.has_value()) {
        ++telemetry_.steals;
        steals_metric().add();
      }
      return campaign::ClaimedCell{cells_[*pick], next_slot_++};
    }

    // Every remaining cell is leased to a peer that still looks alive:
    // wait a beat (abort() interrupts) and rescan. Only waited rounds of
    // the one token-holding thread age peers toward expiry, so the
    // silence a peer is granted is expiry_scans x idle_backoff no
    // matter how many pool threads are parked here.
    aging.grab(&idle_ager_active_);
    idle_round = true;
    idle_sleeps_metric().add();
    wake_.wait_for(lock, options_.idle_backoff, [this] { return aborted_; });
  }
}

bool LeaseScheduler::commit(const campaign::ClaimedCell& claim,
                            const campaign::CellStats& stats,
                            const std::function<void()>& persist) {
  (void)stats;  // identical on every worker by determinism; nothing to check
  const std::uint64_t index = claim.cell.index;
  {
    const std::lock_guard lock{mutex_};
    scanner_.refresh(/*idle=*/false);
    ++telemetry_.scans;
    scans_metric().add();
    if (scanner_.completed_elsewhere(index)) {
      // Lost the race: our lease was presumed expired, a peer re-ran and
      // completed the cell. The stale completion must NOT be persisted —
      // the peer's store already owns the bytes.
      own_inflight_.erase(index);
      ++telemetry_.forfeits;
      forfeits_metric().add();
      return false;
    }
    // The cell stays in own_inflight_ across the unlock below, so our
    // own pool threads cannot re-claim it meanwhile.
  }
  // Persist outside the scheduler lock: a store flush (or --fsync-every
  // sync) must not stall sibling threads' renew()/acquire() — stalled
  // renewals are exactly what makes peers presume this worker dead. If
  // a peer completes the same cell during this window both copies are
  // bit-identical and the merge deduplicates; correctness never relied
  // on commit being atomic, only on stats-durable-before-done-marker,
  // which this ordering preserves.
  if (persist) persist();
  const std::lock_guard lock{mutex_};
  log_.complete(index);
  own_inflight_.erase(index);
  own_completed_.insert(index);
  return true;
}

void LeaseScheduler::renew(const campaign::ClaimedCell& claim) {
  const std::lock_guard lock{mutex_};
  if (aborted_) return;
  log_.renew(claim.cell.index);
  renews_metric().add();
}

void LeaseScheduler::abort() {
  {
    const std::lock_guard lock{mutex_};
    aborted_ = true;
  }
  wake_.notify_all();
}

LeaseScheduler::Telemetry LeaseScheduler::telemetry() const {
  const std::lock_guard lock{mutex_};
  return telemetry_;
}

}  // namespace msa::persist
