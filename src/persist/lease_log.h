// Lease-based work-stealing over a shared store directory: the scheduler
// layer that turns N independent campaign_sweep processes into one
// cooperating sweep without a coordinator process.
//
// Each worker owns two append-only files in the directory:
//
//   <dir>/<worker>.lease   claim / renew / complete / reset records
//   <dir>/<worker>.store   its CampaignStore (trials + completed cells)
//
// Both use the CRC32-framed record format (record_io.h), so a SIGKILL
// tears at most one frame, and both open with a manifest record pinning
// the sweep identity — a worker joining with different axes, trials or
// salt is rejected the moment its log is scanned.
//
// The protocol is optimistic, not mutually exclusive: two workers CAN
// claim the same cell in a tight race. That is safe because every trial
// is a deterministic function of (cell, trial, salt) — duplicated work
// produces bit-identical stats, and merge_worker_stores deduplicates
// identical copies. The scheduler's job is to make duplicates rare
// (claims are advertised before work starts, scans are cheap and
// incremental) and crashes cheap (leases expire).
//
// Lease expiry is wall-clock-free: no timestamps are ever compared.
// A worker's liveness signal is its log GROWING — every claim, renewal
// (one per finished trial) and completion appends a record. A scanner
// counts its own scan rounds in which a peer's log gained no records;
// after `expiry_scans` such rounds the peer's open claims are treated as
// expired and may be stolen. Stealing an actually-alive-but-slow worker's
// cell wastes work but stays correct (identical duplicate, deduped at
// merge); the `expiry_scans x idle_backoff` product is the knob that
// makes it rare. A worker that restarts appends a reset record, which
// voids its previous life's open claims (its completions stand).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "campaign/cell_source.h"
#include "persist/campaign_store.h"
#include "persist/record_io.h"

namespace msa::persist {

/// One worker's state as reconstructed from its lease log.
struct WorkerLeaseState {
  std::uint64_t frames = 0;       ///< intact records parsed so far
  std::uint64_t valid_bytes = 0;  ///< resume offset for the next scan
  std::set<std::uint64_t> claimed;    ///< claimed, not completed, not reset
  std::set<std::uint64_t> completed;  ///< completion recorded
  /// Consecutive idle scan rounds with no new frames; compared against
  /// LeaseSchedulerOptions::expiry_scans to decide staleness.
  unsigned stale_scans = 0;
  bool manifest_checked = false;  ///< first record validated
};

/// Append-only writer for one worker's lease file. Reopening an existing
/// file (worker restart) chops the torn tail, validates the manifest,
/// reloads completions, forgets the previous life's claims and appends a
/// reset record so peers forget them too.
class LeaseLog {
 public:
  LeaseLog(const std::string& path, const StoreManifest& manifest);

  LeaseLog(const LeaseLog&) = delete;
  LeaseLog& operator=(const LeaseLog&) = delete;

  /// Each append is flushed immediately: peers poll this file.
  void claim(std::uint64_t cell_index);
  void renew(std::uint64_t cell_index);
  void complete(std::uint64_t cell_index);

  /// Completions recorded by this log across all its lives.
  [[nodiscard]] const std::set<std::uint64_t>& completed() const noexcept {
    return completed_;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  /// Resume scan (same declaration-order trick as CampaignStore: runs
  /// before writer_ opens). Returns the torn-tail truncation point.
  [[nodiscard]] std::uint64_t scan_existing();

  std::string path_;
  StoreManifest manifest_;
  std::set<std::uint64_t> completed_;
  bool resuming_ = false;
  bool manifest_on_disk_ = false;
  RecordWriter writer_;  // last: see scan_existing()
};

/// Decodes the manifest record a lease log opens with, without loading
/// the rest of the file — how a read-only observer (`campaign_sweep
/// progress`) discovers the sweep identity from a workers directory it
/// did not create. nullopt when the file is missing, empty, torn before
/// the manifest, or not a lease log at all.
[[nodiscard]] std::optional<StoreManifest> read_lease_manifest(
    const std::string& path);

/// Incremental poller over every "*.lease" file in a store directory.
/// Each refresh() re-lists the directory (new workers join mid-sweep),
/// reads only the bytes appended since the previous refresh, and updates
/// per-worker claim/completion sets. A tail that looked torn may heal on
/// the next refresh (the writer's append was simply in flight), which the
/// resume-at-last-intact-offset strategy handles for free.
class LeaseDirScanner {
 public:
  /// `skip` is this worker's own lease file name (its state is tracked
  /// in memory, not polled). Logs whose manifest disagrees with
  /// `manifest` make refresh() throw std::runtime_error.
  LeaseDirScanner(std::string dir, std::string skip, StoreManifest manifest);

  /// One scan round. `idle` marks rounds taken while waiting for
  /// stragglers: only those advance stale_scans, so rapid back-to-back
  /// scans during busy claiming never age a peer toward expiry.
  void refresh(bool idle);

  [[nodiscard]] const std::map<std::string, WorkerLeaseState>& workers()
      const noexcept {
    return workers_;
  }

  /// True when any peer recorded a completion for this cell.
  [[nodiscard]] bool completed_elsewhere(std::uint64_t cell_index) const;

 private:
  void scan_file(const std::string& name, const std::string& path, bool idle);

  std::string dir_;
  std::string skip_;
  StoreManifest manifest_;
  std::map<std::string, WorkerLeaseState> workers_;
};

struct LeaseSchedulerOptions {
  /// Idle scan rounds with zero new records from a peer before its open
  /// claims are treated as expired and may be stolen.
  unsigned expiry_scans = 8;
  /// Sleep between idle scan rounds while remaining cells are all leased
  /// to live peers. expiry_scans x idle_backoff is the silence a peer is
  /// granted before being presumed dead; keep it above one trial's
  /// duration (renewals land once per trial) to avoid duplicated work.
  std::chrono::milliseconds idle_backoff{25};
};

/// campaign::CellSource that leases cells from the shared directory: the
/// work-stealing alternative to GridBuilder::shard's static partition.
/// One instance per worker process; the runner's pool threads share it.
class LeaseScheduler final : public campaign::CellSource {
 public:
  /// `cells` is the FULL grid (global indices intact). `own_store`, when
  /// given, seeds the done-set with cells this worker already completed
  /// in a previous life and repairs lease-complete records a crash
  /// between store flush and lease append may have lost.
  LeaseScheduler(const std::string& dir, const std::string& worker_id,
                 std::vector<campaign::CampaignCell> cells,
                 const StoreManifest& manifest,
                 const CampaignStore* own_store = nullptr,
                 LeaseSchedulerOptions options = {});

  [[nodiscard]] std::size_t planned() const override;
  [[nodiscard]] std::optional<campaign::ClaimedCell> acquire() override;
  [[nodiscard]] bool commit(const campaign::ClaimedCell& claim,
                            const campaign::CellStats& stats,
                            const std::function<void()>& persist) override;
  void renew(const campaign::ClaimedCell& claim) override;
  void abort() override;

  struct Telemetry {
    std::uint64_t claims = 0;    ///< cells claimed (fresh + stolen)
    std::uint64_t steals = 0;    ///< claims of cells whose lease expired
    std::uint64_t forfeits = 0;  ///< completions discarded (lost the race)
    std::uint64_t scans = 0;     ///< directory scan rounds
  };
  [[nodiscard]] Telemetry telemetry() const;

  /// Canonical file names inside a store directory.
  [[nodiscard]] static std::string lease_path(const std::string& dir,
                                              const std::string& worker_id);
  [[nodiscard]] static std::string store_path(const std::string& dir,
                                              const std::string& worker_id);
  /// [A-Za-z0-9_-]+ — worker ids become file names.
  [[nodiscard]] static bool valid_worker_id(const std::string& worker_id);

 private:
  /// True when every grid cell is completed (peers, own, or store).
  [[nodiscard]] bool all_complete_locked() const;
  [[nodiscard]] bool is_completed_locked(std::uint64_t cell_index) const;

  mutable std::mutex mutex_;
  std::condition_variable wake_;  ///< abort() interrupts idle backoff
  std::vector<campaign::CampaignCell> cells_;
  std::map<std::uint64_t, std::size_t> index_to_pos_;
  LeaseSchedulerOptions options_;
  LeaseLog log_;
  LeaseDirScanner scanner_;
  std::set<std::uint64_t> own_inflight_;   ///< claimed here, uncommitted
  std::set<std::uint64_t> own_completed_;  ///< committed here or resumed
  /// Peers this scheduler has ever presumed expired — each first
  /// sighting bumps the lease.peer_expiries metric exactly once.
  std::set<std::string> expired_peers_;
  /// A single pool thread holds the "aging" token while idle-waiting:
  /// only ITS scan rounds advance peers' stale_scans, so the expiry
  /// window stays expiry_scans x idle_backoff regardless of how many
  /// threads this worker's runner parks in acquire() (N threads polling
  /// must not presume a peer dead N times sooner).
  bool idle_ager_active_ = false;
  std::size_t rotation_ = 0;  ///< claim-order offset, spreads workers out
  std::size_t next_slot_ = 0;
  std::size_t planned_ = 0;
  bool aborted_ = false;
  Telemetry telemetry_;
};

}  // namespace msa::persist
