#include "persist/manifest.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "persist/encoding.h"
#include "persist/record_io.h"
#include "persist/store_codec.h"

namespace msa::persist {

namespace {

/// The single record type inside a `.levels` sidecar.
constexpr std::uint8_t kRecLevels = 30;

[[noreturn]] void levels_error(const std::string& path,
                               const std::string& what) {
  throw std::runtime_error("persist: levels manifest " + path + ": " + what);
}

}  // namespace

std::string levels_manifest_path(const std::string& store_path) {
  return store_path + ".levels";
}

std::string segment_file_name(const std::string& store_path,
                              std::uint64_t sequence) {
  const std::string base =
      std::filesystem::path(store_path).filename().string();
  char buf[32];
  std::snprintf(buf, sizeof buf, ".g%06" PRIu64 ".seg", sequence);
  return base + buf;
}

std::string segment_path(const std::string& store_path,
                         const SegmentRef& ref) {
  return (std::filesystem::path(store_path).parent_path() / ref.file)
      .string();
}

std::optional<LevelsManifest> read_levels_manifest(
    const std::string& store_path) {
  const std::string path = levels_manifest_path(store_path);
  if (!std::filesystem::exists(path)) return std::nullopt;

  std::optional<Record> rec;
  bool truncated = false;
  try {
    RecordReader reader{path};
    rec = reader.next();
    truncated = reader.truncated();
  } catch (const std::runtime_error& e) {
    levels_error(path, e.what());
  }
  if (!rec.has_value() || truncated || rec->type != kRecLevels) {
    levels_error(path, "missing or corrupt levels record");
  }

  LevelsManifest out;
  ByteReader r{rec->payload};
  out.format = r.u32();
  if (out.format != kLevelsManifestFormatVersion) {
    levels_error(path,
                 "unsupported format version " + std::to_string(out.format));
  }
  out.generation = r.u64();
  {
    const std::string blob = r.str();
    out.identity = decode_store_manifest(std::span<const std::uint8_t>{
        reinterpret_cast<const std::uint8_t*>(blob.data()), blob.size()});
  }
  const std::uint64_t n = r.varint();
  out.segments.reserve(n);
  std::uint64_t prev_sequence = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    SegmentRef ref;
    ref.file = r.str();
    ref.level = r.u32();
    ref.sequence = r.varint();
    ref.bytes = r.varint();
    ref.trials = r.varint();
    ref.cells = r.varint();
    if (i > 0 && ref.sequence <= prev_sequence) {
      levels_error(path, "segment sequences out of order");
    }
    prev_sequence = ref.sequence;
    out.segments.push_back(std::move(ref));
  }
  return out;
}

void write_levels_manifest(const std::string& store_path,
                           const LevelsManifest& manifest) {
  ByteWriter w;
  w.u32(manifest.format);
  w.u64(manifest.generation);
  {
    const std::vector<std::uint8_t> blob =
        encode_store_manifest(manifest.identity);
    w.str(std::string_view{reinterpret_cast<const char*>(blob.data()),
                           blob.size()});
  }
  w.varint(manifest.segments.size());
  for (const SegmentRef& ref : manifest.segments) {
    w.str(ref.file);
    w.u32(ref.level);
    w.varint(ref.sequence);
    w.varint(ref.bytes);
    w.varint(ref.trials);
    w.varint(ref.cells);
  }

  const std::string path = levels_manifest_path(store_path);
  const std::string tmp = path + ".tmp";
  {
    RecordWriter writer{tmp, RecordWriter::Mode::kTruncate};
    writer.append(kRecLevels, w.bytes());
    writer.sync();
  }
  std::filesystem::rename(tmp, path);
  fsync_parent_dir(path);
}

void remove_segment_files(const std::string& store_path) {
  std::error_code ec;
  std::filesystem::remove(levels_manifest_path(store_path), ec);
  const std::filesystem::path store{store_path};
  const std::string base = store.filename().string();
  std::filesystem::path dir = store.parent_path();
  if (dir.empty()) dir = ".";
  if (!std::filesystem::is_directory(dir, ec)) return;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > base.size() && name.starts_with(base) &&
        name.ends_with(".seg")) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
  fsync_parent_dir(store_path);
}

}  // namespace msa::persist
