// Levels manifest: the sidecar that turns a flat store log into a
// segmented (format v3) store. It names the live segment files and their
// compaction levels; the append-only `.store` log remains the write-ahead
// tier that readers merge on top. The sidecar is itself a record-framed
// file replaced atomically (tmp + fsync + rename + parent-dir fsync), so
// at every instant exactly one generation is visible:
//
//   <name>.store          append-only log (WAL tier, always present)
//   <name>.store.levels   this manifest (present iff the store is v3)
//   <name>.store.gNNNNNN.seg   segments, named by write sequence
//
// Crash windows are safe by ordering: segments are durable before the
// manifest names them, the manifest is durable before the log is
// trimmed, and unreferenced `.seg` files are deleted last (a crash
// leaves either invisible debris or bit-identical duplicates in log +
// segment, both of which readers tolerate and the next compaction
// clears).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "persist/campaign_store.h"

namespace msa::persist {

inline constexpr std::uint32_t kLevelsManifestFormatVersion = 1;

/// One live segment, as named by the manifest. `file` is the bare file
/// name — segments always live next to the store, so a store directory
/// can be moved wholesale.
struct SegmentRef {
  std::string file;
  std::uint32_t level = 0;
  std::uint64_t sequence = 0;
  std::uint64_t bytes = 0;
  std::uint64_t trials = 0;
  std::uint64_t cells = 0;

  friend bool operator==(const SegmentRef&, const SegmentRef&) = default;
};

struct LevelsManifest {
  std::uint32_t format = kLevelsManifestFormatVersion;
  /// Bumped by every compaction that changes the segment set — pollers
  /// (StoreTailer) use it to notice the log was trimmed under them.
  std::uint64_t generation = 0;
  StoreManifest identity;  ///< must equal the log's manifest record
  std::vector<SegmentRef> segments;  ///< ascending sequence
};

/// `store_path` + ".levels" — where the sidecar for a store lives.
[[nodiscard]] std::string levels_manifest_path(const std::string& store_path);

/// Sibling file name (no directory) for the segment with `sequence`.
[[nodiscard]] std::string segment_file_name(const std::string& store_path,
                                            std::uint64_t sequence);

/// Absolute/relative path of `ref` resolved next to its store.
[[nodiscard]] std::string segment_path(const std::string& store_path,
                                       const SegmentRef& ref);

/// The sidecar for `store_path`, or nullopt when none exists (a flat
/// v1/v2 store). A present-but-corrupt sidecar throws — unlike a log
/// tail there is no legal torn state, because writes are atomic renames.
[[nodiscard]] std::optional<LevelsManifest> read_levels_manifest(
    const std::string& store_path);

/// Atomically replaces the sidecar: write to tmp, fsync, rename over,
/// fsync the parent directory.
void write_levels_manifest(const std::string& store_path,
                           const LevelsManifest& manifest);

/// Deletes `store_path`'s sidecar and every `<store>.g*.seg` sibling —
/// the cleanup path for tests and tools that reset a store wholesale.
void remove_segment_files(const std::string& store_path);

}  // namespace msa::persist
