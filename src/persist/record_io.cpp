#include "persist/record_io.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "obs/metrics.h"
#include "persist/encoding.h"
#include "util/crc32.h"
#include "util/monotime.h"

namespace msa::persist {

namespace {

// Registry lookups hashed once; the references stay valid for the
// process (obs/metrics.h).
obs::Counter& records_written_counter() {
  static obs::Counter& c = obs::counter("persist.records_written");
  return c;
}
obs::Counter& bytes_written_counter() {
  static obs::Counter& c = obs::counter("persist.bytes_written");
  return c;
}
obs::Counter& fsync_counter() {
  static obs::Counter& c = obs::counter("persist.fsyncs");
  return c;
}
obs::Histogram& fsync_histogram() {
  static obs::Histogram& h = obs::histogram("persist.fsync_ns");
  return h;
}
obs::Counter& crc_failure_counter() {
  static obs::Counter& c = obs::counter("persist.crc_frame_failures");
  return c;
}

[[noreturn]] void io_error(const std::string& what, const std::string& path) {
  throw std::runtime_error("persist: " + what + ": " + path + ": " +
                           std::strerror(errno));
}

/// True when all n bytes arrived; false only at end-of-data. A genuine
/// stream error (EIO, ...) throws instead — conflating it with EOF would
/// make append recovery "truncate" intact records behind a transient
/// read failure.
bool read_exact(std::FILE* f, const std::string& path, std::uint8_t* out,
                std::size_t n, std::size_t* got = nullptr) {
  const std::size_t r = std::fread(out, 1, n, f);
  if (got != nullptr) *got = r;
  if (r != n && std::ferror(f) != 0) io_error("read failed", path);
  return r == n;
}

}  // namespace

void fsync_parent_dir(const std::string& file_path) {
#if defined(_WIN32)
  (void)file_path;  // directory entries cannot be fsynced on Windows
#else
  std::filesystem::path dir = std::filesystem::path(file_path).parent_path();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) io_error("cannot open directory for fsync", dir.string());
  const std::uint64_t start_ns = util::monotonic_ns();
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    io_error("directory fsync failed", dir.string());
  }
  ::close(fd);
  fsync_counter().add();
  fsync_histogram().record(util::monotonic_ns() - start_ns);
#endif
}

bool record_file_usable(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  return !ec && size >= kRecordMagic.size();
}

RecordReader::RecordReader(const std::string& path,
                           std::uint64_t resume_offset)
    : path_{path} {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) io_error("cannot open store", path);
  std::array<std::uint8_t, kRecordMagic.size()> magic{};
  if (!read_exact(file_, path_, magic.data(), magic.size()) ||
      magic != kRecordMagic) {
    std::fclose(file_);
    file_ = nullptr;
    throw std::runtime_error("persist: not a record store (bad magic): " +
                             path);
  }
  valid_bytes_ = kRecordMagic.size();
  if (resume_offset > kRecordMagic.size()) {
    // 64-bit seek: plain fseek takes a long, which is 32 bits on
    // Windows — a >2 GiB log (one renew record per trial adds up) must
    // still resume.
#if defined(_WIN32)
    const int rc =
        _fseeki64(file_, static_cast<long long>(resume_offset), SEEK_SET);
#else
    const int rc = fseeko(file_, static_cast<off_t>(resume_offset), SEEK_SET);
#endif
    if (rc != 0) {
      std::fclose(file_);
      file_ = nullptr;
      io_error("cannot seek to resume offset", path);
    }
    valid_bytes_ = resume_offset;
  }
}

RecordReader::~RecordReader() {
  if (file_ != nullptr) std::fclose(file_);
}

std::optional<Record> RecordReader::next() {
  if (done_) return std::nullopt;

  std::array<std::uint8_t, 8> header{};
  std::size_t got = 0;
  if (!read_exact(file_, path_, header.data(), header.size(), &got)) {
    done_ = true;
    truncated_ = got != 0;  // a partial header is a torn frame
    if (truncated_) crc_failure_counter().add();
    return std::nullopt;
  }
  ByteReader hr{header};
  const std::uint32_t body_len = hr.u32();
  const std::uint32_t stored_crc = hr.u32();
  if (body_len == 0 || body_len > kMaxRecordBody) {
    done_ = true;
    truncated_ = true;
    crc_failure_counter().add();
    return std::nullopt;
  }

  std::vector<std::uint8_t> body(body_len);
  if (!read_exact(file_, path_, body.data(), body.size())) {
    done_ = true;
    truncated_ = true;
    crc_failure_counter().add();
    return std::nullopt;
  }
  if (util::crc32(std::span<const std::uint8_t>{body}) != stored_crc) {
    done_ = true;
    truncated_ = true;
    crc_failure_counter().add();
    return std::nullopt;
  }

  valid_bytes_ += header.size() + body.size();
  Record record;
  record.type = body[0];
  record.payload.assign(body.begin() + 1, body.end());
  return record;
}

RecordWriter::RecordWriter(const std::string& path, Mode mode) : path_{path} {
  const bool exists = std::filesystem::exists(path);
  if (mode == Mode::kTruncate || !exists) {
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr) io_error("cannot create store", path);
    if (std::fwrite(kRecordMagic.data(), 1, kRecordMagic.size(), file_) !=
        kRecordMagic.size()) {
      std::fclose(file_);
      file_ = nullptr;
      io_error("cannot write store magic", path);
    }
    return;
  }

  if (mode == Mode::kAppendRecover) {
    // Append recovery: find the end of the last intact frame, drop any
    // torn tail so new frames land on a clean boundary.
    std::uint64_t keep = 0;
    {
      RecordReader reader{path};  // throws on bad magic — never clobber
      while (reader.next().has_value()) {
      }
      keep = reader.valid_bytes();
    }
    std::error_code ec;
    std::filesystem::resize_file(path, keep, ec);
    if (ec) {
      throw std::runtime_error("persist: cannot truncate torn tail: " + path +
                               ": " + ec.message());
    }
  } else {
    // kAppendClean: the caller scanned and truncated already; just make
    // sure this really is a record store before appending to it.
    RecordReader magic_check{path};
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) io_error("cannot open store for append", path);
}

RecordWriter::~RecordWriter() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

void RecordWriter::append(std::uint8_t type,
                          std::span<const std::uint8_t> payload) {
  if (payload.size() >= kMaxRecordBody) {
    throw std::length_error("persist: record payload too large");
  }
  util::Crc32 crc;
  crc.update(std::span<const std::uint8_t>{&type, 1});
  crc.update(payload);

  ByteWriter header;
  header.u32(static_cast<std::uint32_t>(payload.size() + 1));
  header.u32(crc.value());
  if (std::fwrite(header.bytes().data(), 1, header.size(), file_) !=
          header.size() ||
      std::fwrite(&type, 1, 1, file_) != 1 ||
      // payload.data() may be null for an empty payload; fwrite's pointer
      // argument must not be.
      (!payload.empty() &&
       std::fwrite(payload.data(), 1, payload.size(), file_) !=
           payload.size())) {
    io_error("short write", path_);
  }
  records_written_counter().add();
  bytes_written_counter().add(header.size() + 1 + payload.size());
}

void RecordWriter::flush() {
  if (std::fflush(file_) != 0) io_error("flush failed", path_);
}

void RecordWriter::sync() {
  flush();
  const std::uint64_t start_ns = util::monotonic_ns();
#if defined(_WIN32)
  // No fsync on the MSVC runtime's stdio handle without _commit; flush
  // is the best available there.
#else
  if (::fsync(fileno(file_)) != 0) io_error("fsync failed", path_);
#endif
  fsync_counter().add();
  fsync_histogram().record(util::monotonic_ns() - start_ns);
}

}  // namespace msa::persist
