// Crash-safe, append-only record streams: the storage layer under the
// campaign store. A store file is an 8-byte magic followed by frames of
//
//   [u32 body_len][u32 crc32(body)][body: u8 type + payload]
//
// with all integers little-endian on disk. A process killed mid-write
// leaves at most one torn frame at the tail; the reader detects it (short
// read or CRC mismatch), reports the stream truncated, and exposes the
// byte offset of the last intact frame so a writer reopening the file can
// chop the garbage off and keep appending. Corruption is never "skipped":
// the first bad frame ends the stream, because in an append-only log
// everything after a bad length prefix is unframed noise.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace msa::persist {

inline constexpr std::array<std::uint8_t, 8> kRecordMagic = {
    'M', 'S', 'A', 'R', 'E', 'C', '0', '1'};

/// Frames larger than this are treated as corruption (a torn length
/// prefix can otherwise claim gigabytes and stall the reader).
inline constexpr std::uint32_t kMaxRecordBody = 1u << 28;

struct Record {
  std::uint8_t type = 0;
  std::vector<std::uint8_t> payload;
};

/// fsync(2) the directory containing `file_path`, making a just-created
/// or just-renamed directory entry durable. Renaming a compacted store
/// (or a fresh segment / levels manifest) into place is only crash-proof
/// once the PARENT directory is synced — without it a power loss can
/// resurrect the pre-rename file even though the rename "succeeded".
/// No-op on Windows (directories have no fsync there); throws
/// std::runtime_error on a genuine I/O failure elsewhere.
void fsync_parent_dir(const std::string& file_path);

/// True when `path` exists and is at least magic-sized — i.e. worth
/// opening for append-resume. A shorter file is the debris of a process
/// killed between creating the file and writing the magic; resuming
/// writers treat it as absent (start fresh) rather than throwing
/// bad-magic forever, which would brick the path until manual cleanup.
[[nodiscard]] bool record_file_usable(const std::string& path);

/// Sequential reader. Construct, call next() until it returns nullopt,
/// then check truncated() to distinguish a clean EOF from a torn tail.
class RecordReader {
 public:
  /// Throws std::runtime_error if the file cannot be opened or does not
  /// start with the record magic. `resume_offset`, when nonzero, must be
  /// a frame boundary previously obtained from valid_bytes(): reading
  /// continues from there instead of the first frame — the incremental
  /// path for pollers (lease-log scans) that re-read a growing file.
  /// Note a tail that looked torn on the previous pass may have been an
  /// in-flight append that has since completed, so resuming at the LAST
  /// INTACT offset and re-parsing is exactly right: the "tear" heals.
  explicit RecordReader(const std::string& path,
                        std::uint64_t resume_offset = 0);
  ~RecordReader();

  RecordReader(const RecordReader&) = delete;
  RecordReader& operator=(const RecordReader&) = delete;

  /// Next intact record, or nullopt at end of stream (clean or torn).
  /// Throws std::runtime_error on a genuine stream error (EIO etc.) —
  /// an I/O fault is not a torn tail and must not trigger truncation.
  [[nodiscard]] std::optional<Record> next();

  /// True once next() has hit a short or CRC-mismatched frame.
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }

  /// Byte offset just past the last intact frame (>= magic size); the
  /// safe truncation point for append recovery.
  [[nodiscard]] std::uint64_t valid_bytes() const noexcept {
    return valid_bytes_;
  }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;  ///< for error messages
  std::uint64_t valid_bytes_ = 0;
  bool truncated_ = false;
  bool done_ = false;
};

/// Append-only writer.
class RecordWriter {
 public:
  enum class Mode {
    kTruncate,        ///< start a fresh file (magic + nothing)
    kAppendRecover,   ///< keep existing records, chop any torn tail
    kAppendClean,     ///< append as-is: caller already scanned/truncated
  };

  /// kTruncate creates/overwrites `path`. kAppendRecover scans an
  /// existing file with RecordReader, truncates it to the last intact
  /// frame, and positions for append (a missing file is created fresh).
  /// kAppendClean skips the recovery scan — only the magic is checked —
  /// for callers that just read the file themselves and already chopped
  /// any torn tail (CampaignStore resume, which needs the records anyway
  /// and should not pay a second full pass).
  /// Throws std::runtime_error on I/O failure or bad magic.
  RecordWriter(const std::string& path, Mode mode);
  ~RecordWriter();

  RecordWriter(const RecordWriter&) = delete;
  RecordWriter& operator=(const RecordWriter&) = delete;

  /// Appends one frame. Buffered; call flush() to push to the OS.
  void append(std::uint8_t type, std::span<const std::uint8_t> payload);

  /// Flushes stdio buffers so a subsequent process kill cannot tear
  /// already-appended frames.
  void flush();

  /// flush() plus fsync(2): already-appended frames survive power loss,
  /// not just a process kill. Much slower than flush — callers batch it
  /// (CampaignStore's opt-in --fsync-every).
  void sync();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

}  // namespace msa::persist
