#include "persist/segment.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "obs/metrics.h"
#include "persist/encoding.h"
#include "persist/record_io.h"
#include "persist/store_codec.h"

namespace msa::persist {

namespace {

// Segment record types — disjoint from the store-log types (1..4) so a
// segment frame can never be mistaken for a log record and vice versa.
constexpr std::uint8_t kSegHeader = 20;
constexpr std::uint8_t kSegTrialBlock = 21;
constexpr std::uint8_t kSegCellBlock = 22;
constexpr std::uint8_t kSegIndex = 23;
constexpr std::uint8_t kSegFooter = 24;

// "MSASEGF1" little-endian: the first 8 bytes of a valid footer payload.
constexpr std::uint64_t kSegmentFooterMagic = 0x314647455341534dULL;
constexpr std::size_t kFooterPayloadBytes = 48;

obs::Counter& segment_bytes_read_counter() {
  static obs::Counter& c = obs::counter("persist.segment_bytes_read");
  return c;
}
obs::Counter& segment_blocks_read_counter() {
  static obs::Counter& c = obs::counter("persist.segment_blocks_read");
  return c;
}

[[noreturn]] void seg_error(const std::string& path, const std::string& what) {
  throw std::runtime_error("persist: segment " + path + ": " + what);
}

void put_blob(ByteWriter& w, std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) {
    w.varint(0);
    return;
  }
  w.str(std::string_view{reinterpret_cast<const char*>(bytes.data()),
                         bytes.size()});
}

std::vector<std::uint8_t> get_blob(ByteReader& r) {
  const std::string s = r.str();
  return {s.begin(), s.end()};
}

}  // namespace

SegmentInfo write_segment(const std::string& path, std::uint32_t level,
                          std::uint64_t sequence,
                          const StoreManifest& identity,
                          std::vector<SegmentCell> cells,
                          const SegmentWriteOptions& options) {
  std::sort(cells.begin(), cells.end(),
            [](const SegmentCell& a, const SegmentCell& b) {
              return cell_key_less(a.stats.coords, b.stats.coords);
            });
  for (SegmentCell& cell : cells) {
    std::sort(cell.trials.begin(), cell.trials.end(),
              [](const TrialRecord& a, const TrialRecord& b) {
                return a.trial < b.trial;
              });
  }

  SegmentInfo info;
  info.level = level;
  info.sequence = sequence;
  info.identity = identity;
  info.cell_count = cells.size();

  struct PendingBlock {
    std::vector<std::uint8_t> first_key;
    std::vector<std::vector<std::uint8_t>> entries;  ///< encoded groups/cells
    std::uint64_t count = 0;                         ///< trials or cells
    std::size_t bytes = 0;
  };
  struct WrittenBlock {
    std::vector<std::uint8_t> first_key;
    std::uint64_t offset = 0;
    std::uint64_t frame_len = 0;
    std::uint64_t count = 0;
  };
  std::vector<WrittenBlock> trial_blocks;
  std::vector<WrittenBlock> cell_blocks;

  // kTruncate: segment file names embed the compaction sequence, so an
  // existing file at `path` can only be debris from an interrupted
  // compaction that never published its manifest — clobber it.
  RecordWriter writer{path, RecordWriter::Mode::kTruncate};
  std::uint64_t offset = kRecordMagic.size();
  const auto append = [&](std::uint8_t type,
                          std::span<const std::uint8_t> payload) {
    writer.append(type, payload);
    const std::uint64_t frame_len = 8 + 1 + payload.size();
    const std::uint64_t at = offset;
    offset += frame_len;
    return std::pair{at, frame_len};
  };

  {
    ByteWriter h;
    h.u32(kSegmentFormatVersion);
    h.u32(level);
    h.u64(sequence);
    put_blob(h, encode_store_manifest(identity));
    append(kSegHeader, h.bytes());
  }

  const auto flush_block = [&](std::uint8_t type, PendingBlock& block,
                               std::vector<WrittenBlock>& out) {
    if (block.entries.empty()) return;
    ByteWriter w;
    w.varint(block.entries.size());
    for (const std::vector<std::uint8_t>& entry : block.entries) {
      w.raw(entry);
    }
    const auto [at, frame_len] = append(type, w.bytes());
    out.push_back({std::move(block.first_key), at, frame_len, block.count});
    block = {};
  };

  // Trial blocks: whole-cell groups, a block closing at the first cell
  // that reaches the target size. Group entry:
  //   blob(cell key) varint(trial count) { blob(trial record) }...
  PendingBlock trial_block;
  for (const SegmentCell& cell : cells) {
    std::vector<std::uint8_t> key = encode_cell_key(cell.stats.coords);
    ByteWriter g;
    put_blob(g, key);
    g.varint(cell.trials.size());
    for (const TrialRecord& trial : cell.trials) {
      put_blob(g, encode_trial(trial));
    }
    if (trial_block.entries.empty()) trial_block.first_key = key;
    trial_block.bytes += g.size();
    trial_block.count += cell.trials.size();
    info.trial_count += cell.trials.size();
    trial_block.entries.emplace_back(g.bytes().begin(), g.bytes().end());
    if (trial_block.bytes >= options.block_bytes) {
      flush_block(kSegTrialBlock, trial_block, trial_blocks);
    }
  }
  flush_block(kSegTrialBlock, trial_block, trial_blocks);

  // Cell blocks: the aggregate records (coords embedded — the key is
  // derivable, so entries are plain v2 cell payloads).
  PendingBlock cell_block;
  for (const SegmentCell& cell : cells) {
    ByteWriter e;
    put_blob(e, encode_cell(cell.stats));
    if (cell_block.entries.empty()) {
      cell_block.first_key = encode_cell_key(cell.stats.coords);
    }
    cell_block.bytes += e.size();
    cell_block.count += 1;
    cell_block.entries.emplace_back(e.bytes().begin(), e.bytes().end());
    if (cell_block.bytes >= options.block_bytes) {
      flush_block(kSegCellBlock, cell_block, cell_blocks);
    }
  }
  flush_block(kSegCellBlock, cell_block, cell_blocks);

  const std::uint64_t index_offset = offset;
  {
    ByteWriter idx;
    const auto put_refs = [&](const std::vector<WrittenBlock>& blocks) {
      idx.varint(blocks.size());
      for (const WrittenBlock& b : blocks) {
        put_blob(idx, b.first_key);
        idx.varint(b.offset);
        idx.varint(b.frame_len);
        idx.varint(b.count);
      }
    };
    put_refs(trial_blocks);
    put_refs(cell_blocks);
    append(kSegIndex, idx.bytes());
  }

  {
    ByteWriter f;
    f.u64(kSegmentFooterMagic);
    f.u32(kSegmentFormatVersion);
    f.u32(level);
    f.u64(sequence);
    f.u64(index_offset);
    f.u64(info.trial_count);
    f.u64(info.cell_count);
    append(kSegFooter, f.bytes());
  }
  writer.sync();
  fsync_parent_dir(path);
  return info;
}

std::vector<std::uint8_t> SegmentReader::read_frame_at(
    std::uint64_t offset, std::uint8_t expect_type) const {
  std::optional<Record> rec;
  std::uint64_t frame_bytes = 0;
  try {
    RecordReader reader{path_, offset};
    rec = reader.next();
    frame_bytes = reader.valid_bytes() - offset;
  } catch (const std::runtime_error& e) {
    seg_error(path_, std::string{"unreadable frame: "} + e.what());
  }
  if (!rec.has_value()) {
    seg_error(path_, "truncated or corrupt frame at offset " +
                         std::to_string(offset));
  }
  if (rec->type != expect_type) {
    seg_error(path_, "unexpected record type " + std::to_string(rec->type) +
                         " at offset " + std::to_string(offset));
  }
  segment_bytes_read_counter().add(frame_bytes);
  return std::move(rec->payload);
}

SegmentReader::SegmentReader(std::string path) : path_{std::move(path)} {
  std::error_code ec;
  file_bytes_ = std::filesystem::file_size(path_, ec);
  if (ec) seg_error(path_, "cannot stat: " + ec.message());
  if (file_bytes_ < kRecordMagic.size() + kSegmentFooterFrameBytes) {
    seg_error(path_, "too small to hold a footer (truncated?)");
  }

  // Footer first: fixed-size frame at EOF. Truncating the file by even
  // one byte shifts this window onto unrelated bytes, so the CRC check
  // rejects every torn segment here.
  std::uint64_t index_offset = 0;
  {
    const std::vector<std::uint8_t> payload =
        read_frame_at(file_bytes_ - kSegmentFooterFrameBytes, kSegFooter);
    if (payload.size() != kFooterPayloadBytes) {
      seg_error(path_, "footer payload has wrong size");
    }
    ByteReader r{payload};
    if (r.u64() != kSegmentFooterMagic) seg_error(path_, "bad footer magic");
    info_.format = r.u32();
    if (info_.format != kSegmentFormatVersion) {
      seg_error(path_,
                "unsupported format version " + std::to_string(info_.format));
    }
    info_.level = r.u32();
    info_.sequence = r.u64();
    index_offset = r.u64();
    info_.trial_count = r.u64();
    info_.cell_count = r.u64();
    if (index_offset < kRecordMagic.size() ||
        index_offset >= file_bytes_ - kSegmentFooterFrameBytes) {
      seg_error(path_, "index offset out of bounds");
    }
  }

  {
    const std::vector<std::uint8_t> payload =
        read_frame_at(kRecordMagic.size(), kSegHeader);
    ByteReader r{payload};
    const std::uint32_t format = r.u32();
    const std::uint32_t level = r.u32();
    const std::uint64_t sequence = r.u64();
    if (format != info_.format || level != info_.level ||
        sequence != info_.sequence) {
      seg_error(path_, "header does not match footer");
    }
    const std::vector<std::uint8_t> manifest_bytes = get_blob(r);
    info_.identity = decode_store_manifest(manifest_bytes);
  }

  {
    const std::vector<std::uint8_t> payload =
        read_frame_at(index_offset, kSegIndex);
    ByteReader r{payload};
    const auto get_refs = [&](std::vector<BlockRef>& out,
                              std::uint64_t lo_offset) {
      const std::uint64_t n = r.varint();
      out.reserve(n);
      std::uint64_t prev_end = lo_offset;
      for (std::uint64_t i = 0; i < n; ++i) {
        BlockRef ref;
        ref.first_key = get_blob(r);
        ref.first = decode_cell_key(ref.first_key);
        ref.offset = r.varint();
        ref.frame_len = r.varint();
        ref.count = r.varint();
        if (ref.offset < prev_end ||
            ref.offset + ref.frame_len > index_offset) {
          seg_error(path_, "index entry out of bounds");
        }
        prev_end = ref.offset + ref.frame_len;
        out.push_back(std::move(ref));
      }
      return prev_end;
    };
    const std::uint64_t trials_end = get_refs(trial_blocks_, 0);
    get_refs(cell_blocks_, trials_end);
    std::uint64_t trials = 0;
    for (const BlockRef& b : trial_blocks_) trials += b.count;
    std::uint64_t cells = 0;
    for (const BlockRef& b : cell_blocks_) cells += b.count;
    if (trials != info_.trial_count || cells != info_.cell_count) {
      seg_error(path_, "index totals do not match footer");
    }
  }
}

std::vector<campaign::CellStats> SegmentReader::cells() const {
  std::vector<campaign::CellStats> out;
  out.reserve(info_.cell_count);
  for (const BlockRef& block : cell_blocks_) {
    const std::vector<std::uint8_t> payload =
        read_frame_at(block.offset, kSegCellBlock);
    segment_blocks_read_counter().add();
    ByteReader r{payload};
    const std::uint64_t n = r.varint();
    if (n != block.count) seg_error(path_, "cell block count mismatch");
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::vector<std::uint8_t> bytes = get_blob(r);
      out.push_back(decode_cell_v2(bytes));
    }
  }
  return out;
}

std::optional<std::size_t> SegmentReader::trial_block_for(
    std::span<const std::uint8_t> key) const {
  if (trial_blocks_.empty()) return std::nullopt;
  const std::vector<campaign::AxisCoordinate> want = decode_cell_key(key);
  // Last block whose first key <= want: upper_bound on "want < first".
  const auto it = std::upper_bound(
      trial_blocks_.begin(), trial_blocks_.end(), want,
      [](const std::vector<campaign::AxisCoordinate>& w, const BlockRef& b) {
        return cell_key_less(w, b.first);
      });
  if (it == trial_blocks_.begin()) return std::nullopt;
  return static_cast<std::size_t>(std::distance(trial_blocks_.begin(), it)) -
         1;
}

std::vector<SegmentReader::TrialGroup> SegmentReader::read_trial_block(
    std::size_t block) const {
  const BlockRef& ref = trial_blocks_.at(block);
  const std::vector<std::uint8_t> payload =
      read_frame_at(ref.offset, kSegTrialBlock);
  segment_blocks_read_counter().add();
  ByteReader r{payload};
  const std::uint64_t groups = r.varint();
  std::vector<TrialGroup> out;
  out.reserve(groups);
  std::uint64_t trials = 0;
  for (std::uint64_t g = 0; g < groups; ++g) {
    TrialGroup group;
    group.key = get_blob(r);
    const std::uint64_t n = r.varint();
    group.trials.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::vector<std::uint8_t> bytes = get_blob(r);
      group.trials.push_back(decode_trial(bytes));
    }
    trials += n;
    out.push_back(std::move(group));
  }
  if (trials != ref.count) seg_error(path_, "trial block count mismatch");
  return out;
}

std::vector<TrialRecord> SegmentReader::trials_for_key(
    std::span<const std::uint8_t> key) const {
  const std::optional<std::size_t> block = trial_block_for(key);
  if (!block.has_value()) return {};
  for (TrialGroup& group : read_trial_block(*block)) {
    if (std::span<const std::uint8_t>{group.key}.size() == key.size() &&
        std::equal(group.key.begin(), group.key.end(), key.begin())) {
      return std::move(group.trials);
    }
  }
  return {};
}

std::optional<campaign::CellStats> SegmentReader::cell_for_key(
    std::span<const std::uint8_t> key) const {
  if (cell_blocks_.empty()) return std::nullopt;
  const std::vector<campaign::AxisCoordinate> want = decode_cell_key(key);
  const auto it = std::upper_bound(
      cell_blocks_.begin(), cell_blocks_.end(), want,
      [](const std::vector<campaign::AxisCoordinate>& w, const BlockRef& b) {
        return cell_key_less(w, b.first);
      });
  if (it == cell_blocks_.begin()) return std::nullopt;
  const BlockRef& block = *std::prev(it);
  const std::vector<std::uint8_t> payload =
      read_frame_at(block.offset, kSegCellBlock);
  segment_blocks_read_counter().add();
  ByteReader r{payload};
  const std::uint64_t n = r.varint();
  if (n != block.count) seg_error(path_, "cell block count mismatch");
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::vector<std::uint8_t> bytes = get_blob(r);
    campaign::CellStats cell = decode_cell_v2(bytes);
    const std::vector<std::uint8_t> cell_key = encode_cell_key(cell.coords);
    if (cell_key.size() == key.size() &&
        std::equal(cell_key.begin(), cell_key.end(), key.begin())) {
      return cell;
    }
  }
  return std::nullopt;
}

void SegmentReader::for_each_group(
    const std::function<void(const TrialGroup&)>& fn) const {
  for (std::size_t i = 0; i < trial_blocks_.size(); ++i) {
    for (const TrialGroup& group : read_trial_block(i)) fn(group);
  }
}

}  // namespace msa::persist
