// Immutable sorted segments — the SSTable-shaped tier campaign-store
// compaction writes. A segment holds one store's completed cells and
// their trials, sorted by (cell axis-key, trial index) and grouped into
// CRC-framed blocks, with a first-key block index and a fixed-size footer
// so a reader seeks straight to the blocks of one cell instead of
// replaying the whole file:
//
//   magic | header | trial block ... | cell block ... | index | footer
//
// Every piece is a standard RecordWriter frame ([len][crc][type+payload]),
// so torn writes are detected by the same CRC machinery as the log. The
// footer frame has a fixed size and sits at EOF; opening a segment reads
// it first (seek to size-57), then the index it points at. Any truncation
// or corruption therefore fails loudly at open — a segment is immutable
// once written, so unlike the append-only log there is no tail to heal:
// the reader REJECTS a damaged segment with a named error and never
// serves a partial view of it.
//
// Layout invariants:
//  - trial blocks: groups of whole cells — a cell's trials never split
//    across blocks, so the block whose first key is the greatest key
//    <= K is the ONLY block that can hold cell K.
//  - cell blocks: the per-cell aggregate records, separately from the
//    (much larger) trial data, so `cells()` — the resume path and every
//    progress poll — reads a few small blocks and no trial bytes.
//  - the header pins the owning store's identity manifest; readers refuse
//    a segment from a different sweep.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "persist/campaign_store.h"

namespace msa::persist {

inline constexpr std::uint32_t kSegmentFormatVersion = 1;

/// Fixed-size footer frame: 8 (frame header) + 1 (type) + 48 (payload).
inline constexpr std::uint64_t kSegmentFooterFrameBytes = 57;

/// Identity and totals of one segment, from its header + footer.
struct SegmentInfo {
  std::uint32_t format = kSegmentFormatVersion;
  std::uint32_t level = 0;     ///< compaction tier (0 = freshest flush)
  std::uint64_t sequence = 0;  ///< global write order; later wins on read
  StoreManifest identity;      ///< the owning store's manifest
  std::uint64_t trial_count = 0;
  std::uint64_t cell_count = 0;
};

/// Write unit: one completed cell and its trial stream.
struct SegmentCell {
  campaign::CellStats stats;
  std::vector<TrialRecord> trials;
};

struct SegmentWriteOptions {
  /// Target block payload size; a block closes at the first whole cell
  /// that reaches it (one oversized cell still becomes one block).
  std::size_t block_bytes = 64 * 1024;
};

/// Writes `cells` as a fresh segment at `path` (clobbering any stale file
/// from an interrupted compaction), sorted by cell key, then syncs the
/// file AND its parent directory — once this returns, the segment exists
/// after power loss. Returns the totals that go into the levels manifest.
SegmentInfo write_segment(const std::string& path, std::uint32_t level,
                          std::uint64_t sequence,
                          const StoreManifest& identity,
                          std::vector<SegmentCell> cells,
                          const SegmentWriteOptions& options = {});

/// Random-access reader over one segment. The constructor validates
/// footer, header and index (throwing "persist: segment ..." errors on
/// any damage); block reads happen on demand and feed the
/// persist.segment_bytes_read / persist.segment_blocks_read counters, so
/// tests and benches can assert an indexed query touched a small
/// fraction of the file.
class SegmentReader {
 public:
  explicit SegmentReader(std::string path);

  [[nodiscard]] const SegmentInfo& info() const noexcept { return info_; }
  [[nodiscard]] std::uint64_t file_bytes() const noexcept {
    return file_bytes_;
  }

  /// Every completed cell, in key order (decoded from the cell blocks —
  /// no trial bytes are touched).
  [[nodiscard]] std::vector<campaign::CellStats> cells() const;

  /// One cell's trials, located via the first-key index: reads exactly
  /// one trial block. `key` is the encoded cell key (encode_cell_key);
  /// empty result when the segment holds no such cell.
  [[nodiscard]] std::vector<TrialRecord> trials_for_key(
      std::span<const std::uint8_t> key) const;

  /// One cell's aggregate via the cell-block index: reads exactly one
  /// (small) cell block, nullopt when the segment holds no such cell.
  [[nodiscard]] std::optional<campaign::CellStats> cell_for_key(
      std::span<const std::uint8_t> key) const;

  /// Index of the single trial block that can hold `key`, nullopt when
  /// the key sorts before every block. Lets a caller reading several
  /// cells read each shared block once.
  [[nodiscard]] std::optional<std::size_t> trial_block_for(
      std::span<const std::uint8_t> key) const;
  [[nodiscard]] std::size_t trial_block_count() const noexcept {
    return trial_blocks_.size();
  }

  struct TrialGroup {
    std::vector<std::uint8_t> key;  ///< encoded cell key
    std::vector<TrialRecord> trials;
  };
  /// Decodes one trial block into its per-cell groups (key order).
  [[nodiscard]] std::vector<TrialGroup> read_trial_block(
      std::size_t block) const;

  /// Streams every trial group in key order — the full-merge path.
  void for_each_group(const std::function<void(const TrialGroup&)>& fn) const;

 private:
  struct BlockRef {
    std::vector<std::uint8_t> first_key;          ///< encoded
    std::vector<campaign::AxisCoordinate> first;  ///< decoded, for ordering
    std::uint64_t offset = 0;  ///< frame start (RecordReader resume offset)
    std::uint64_t frame_len = 0;
    std::uint64_t count = 0;  ///< trials (trial block) or cells (cell block)
  };

  /// Reads the single frame starting at `offset`, validating its type.
  [[nodiscard]] std::vector<std::uint8_t> read_frame_at(
      std::uint64_t offset, std::uint8_t expect_type) const;

  std::string path_;
  std::uint64_t file_bytes_ = 0;
  SegmentInfo info_;
  std::vector<BlockRef> trial_blocks_;
  std::vector<BlockRef> cell_blocks_;
};

}  // namespace msa::persist
