#include "persist/store_codec.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace msa::persist {

namespace {

constexpr std::uint8_t kTrialDenied = 1u << 0;
constexpr std::uint8_t kTrialModelIdentified = 1u << 1;

void encode_cell_counters(ByteWriter& w, const campaign::CellStats& c) {
  w.varint(c.trials);
  w.varint(c.full_successes);
  w.varint(c.model_identified);
  w.varint(c.denials);
  w.f64(c.mean_pixel_match);
  w.f64(c.mean_psnr_db);
  w.f64(c.mean_descriptor_pixel_match);
  w.str(c.first_denial_reason);
}

void decode_cell_counters(ByteReader& r, campaign::CellStats& c) {
  c.trials = static_cast<std::size_t>(r.varint());
  c.full_successes = static_cast<std::size_t>(r.varint());
  c.model_identified = static_cast<std::size_t>(r.varint());
  c.denials = static_cast<std::size_t>(r.varint());
  c.mean_pixel_match = r.f64();
  c.mean_psnr_db = r.f64();
  c.mean_descriptor_pixel_match = r.f64();
  c.first_denial_reason = r.str();
}

}  // namespace

void encode_axis_value(ByteWriter& w, const campaign::AxisValue& v) {
  w.u8(static_cast<std::uint8_t>(v.kind));
  switch (v.kind) {
    case campaign::AxisKind::kString:
    case campaign::AxisKind::kEnum:
      w.str(v.str);
      break;
    case campaign::AxisKind::kDouble:
      w.f64(v.num);
      break;
    case campaign::AxisKind::kBool:
      w.u8(v.flag ? 1 : 0);
      break;
  }
}

campaign::AxisValue decode_axis_value(ByteReader& r) {
  const std::uint8_t kind = r.u8();
  switch (kind) {
    case static_cast<std::uint8_t>(campaign::AxisKind::kString):
      return campaign::AxisValue::of_string(r.str());
    case static_cast<std::uint8_t>(campaign::AxisKind::kEnum):
      return campaign::AxisValue::of_enum(r.str());
    case static_cast<std::uint8_t>(campaign::AxisKind::kDouble):
      return campaign::AxisValue::of_number(r.f64());
    case static_cast<std::uint8_t>(campaign::AxisKind::kBool):
      return campaign::AxisValue::of_bool(r.u8() != 0);
    default:
      throw std::runtime_error("persist: unknown axis-value kind " +
                               std::to_string(kind));
  }
}

std::vector<std::uint8_t> encode_trial(const TrialRecord& t) {
  ByteWriter w;
  w.varint(t.cell_index);
  w.varint(t.trial);
  std::uint8_t flags = 0;
  if (t.denied) flags |= kTrialDenied;
  if (t.model_identified) flags |= kTrialModelIdentified;
  w.u8(flags);
  w.f64(t.pixel_match);
  w.f64(t.psnr);
  w.f64(t.descriptor_pixel_match);
  w.str(t.denial_reason);
  return {w.bytes().begin(), w.bytes().end()};
}

TrialRecord decode_trial(std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  TrialRecord t;
  t.cell_index = r.varint();
  t.trial = static_cast<std::uint32_t>(r.varint());
  const std::uint8_t flags = r.u8();
  t.denied = (flags & kTrialDenied) != 0;
  t.model_identified = (flags & kTrialModelIdentified) != 0;
  t.pixel_match = r.f64();
  t.psnr = r.f64();
  t.descriptor_pixel_match = r.f64();
  t.denial_reason = r.str();
  return t;
}

std::vector<std::uint8_t> encode_cell(const campaign::CellStats& c) {
  ByteWriter w;
  w.varint(c.index);
  w.varint(c.coords.size());
  for (const campaign::AxisCoordinate& coord : c.coords) {
    w.str(coord.axis);
    encode_axis_value(w, coord.value);
  }
  encode_cell_counters(w, c);
  return {w.bytes().begin(), w.bytes().end()};
}

campaign::CellStats decode_cell_v2(std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  campaign::CellStats c;
  c.index = static_cast<std::size_t>(r.varint());
  const std::uint64_t coords = r.varint();
  c.coords.reserve(coords);
  for (std::uint64_t i = 0; i < coords; ++i) {
    std::string axis = r.str();
    campaign::AxisValue value = decode_axis_value(r);
    c.coords.push_back({std::move(axis), std::move(value)});
  }
  decode_cell_counters(r, c);
  return c;
}

campaign::CellStats decode_cell_v1(std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  campaign::CellStats c;
  c.index = static_cast<std::size_t>(r.varint());
  c.coords.reserve(4);
  c.coords.push_back({"defense", campaign::AxisValue::of_string(r.str())});
  c.coords.push_back({"model", campaign::AxisValue::of_string(r.str())});
  c.coords.push_back({"delay_s", campaign::AxisValue::of_number(r.f64())});
  c.coords.push_back(
      {"scrubber_Bps", campaign::AxisValue::of_number(r.f64())});
  decode_cell_counters(r, c);
  return c;
}

std::vector<campaign::AxisSpec> legacy_axis_schema() {
  return {{"defense", campaign::AxisKind::kString, {}},
          {"model", campaign::AxisKind::kString, {}},
          {"delay_s", campaign::AxisKind::kDouble, {}},
          {"scrubber_Bps", campaign::AxisKind::kDouble, {}}};
}

std::vector<std::uint8_t> encode_cell_key(
    const std::vector<campaign::AxisCoordinate>& coords) {
  ByteWriter w;
  w.varint(coords.size());
  for (const campaign::AxisCoordinate& coord : coords) {
    w.str(coord.axis);
    encode_axis_value(w, coord.value);
  }
  return {w.bytes().begin(), w.bytes().end()};
}

std::vector<campaign::AxisCoordinate> decode_cell_key(
    std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  const std::uint64_t n = r.varint();
  std::vector<campaign::AxisCoordinate> coords;
  coords.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string axis = r.str();
    campaign::AxisValue value = decode_axis_value(r);
    coords.push_back({std::move(axis), std::move(value)});
  }
  return coords;
}

bool cell_key_less(const std::vector<campaign::AxisCoordinate>& a,
                   const std::vector<campaign::AxisCoordinate>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i].axis != b[i].axis) return a[i].axis < b[i].axis;
    if (!(a[i].value == b[i].value)) return a[i].value < b[i].value;
  }
  return a.size() < b.size();
}

}  // namespace msa::persist
