// Shared on-disk codecs for campaign-store records. One encoder per
// record type, used by the append-only log writer (campaign_store.cpp),
// the segment writer/reader (segment.cpp), and the merged-view reader
// (store_reader.cpp) — byte-identical encoding everywhere is what makes
// the cross-store duplicate check ("same bytes or corruption") and the
// before/after-compaction byte-identity contract possible.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "campaign/report.h"
#include "persist/campaign_store.h"
#include "persist/encoding.h"

namespace msa::persist {

// Record types inside a campaign store log. Unknown types are skipped on
// read (and preserved verbatim by compaction) so later format additions
// stay backward-readable.
inline constexpr std::uint8_t kRecManifest = 1;
inline constexpr std::uint8_t kRecTrial = 2;
inline constexpr std::uint8_t kRecCell = 3;    ///< v1: four named axis fields
inline constexpr std::uint8_t kRecCellV2 = 4;  ///< v2: ordered axis coordinates

void encode_axis_value(ByteWriter& w, const campaign::AxisValue& v);
[[nodiscard]] campaign::AxisValue decode_axis_value(ByteReader& r);

[[nodiscard]] std::vector<std::uint8_t> encode_trial(const TrialRecord& t);
[[nodiscard]] TrialRecord decode_trial(std::span<const std::uint8_t> payload);

/// v2 cell record: ordered (axis, value) coordinates, then the counters.
[[nodiscard]] std::vector<std::uint8_t> encode_cell(
    const campaign::CellStats& c);
[[nodiscard]] campaign::CellStats decode_cell_v2(
    std::span<const std::uint8_t> payload);
/// v1 cell record: the four hard-coded axis fields, decoded into the
/// equivalent coordinates so everything downstream of read is
/// version-blind.
[[nodiscard]] campaign::CellStats decode_cell_v1(
    std::span<const std::uint8_t> payload);

/// The schema a v1 writer implicitly used: the legacy four axes. Value
/// lists stay empty — v1 manifests never recorded them; the cells carry
/// the actual values.
[[nodiscard]] std::vector<campaign::AxisSpec> legacy_axis_schema();

/// Encoded sort key of a cell: its ordered (axis, value) coordinates.
/// Encoding is deterministic, so equal keys are equal bytes — segment
/// lookups compare raw bytes for equality and decode only to ORDER keys
/// (axis name, then AxisValue's total order), because the semantic order
/// is not the byte order.
[[nodiscard]] std::vector<std::uint8_t> encode_cell_key(
    const std::vector<campaign::AxisCoordinate>& coords);
[[nodiscard]] std::vector<campaign::AxisCoordinate> decode_cell_key(
    std::span<const std::uint8_t> bytes);
[[nodiscard]] bool cell_key_less(
    const std::vector<campaign::AxisCoordinate>& a,
    const std::vector<campaign::AxisCoordinate>& b);

}  // namespace msa::persist
