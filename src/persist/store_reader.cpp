#include "persist/store_reader.h"

#include <filesystem>
#include <set>
#include <stdexcept>

#include "obs/metrics.h"
#include "persist/record_io.h"
#include "persist/store_codec.h"

namespace msa::persist {

namespace {

obs::Counter& log_bytes_read_counter() {
  static obs::Counter& c = obs::counter("persist.log_bytes_read");
  return c;
}

std::uint64_t file_size_or_zero(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

}  // namespace

StoreReader::StoreReader(const std::string& path) : path_{path} {
  // Log pass: manifest + the write-ahead tail (the whole store when no
  // sidecar exists). Last-wins maps mirror the historical replay order.
  bool saw_manifest = false;
  {
    RecordReader reader{path};
    for (std::optional<Record> rec = reader.next(); rec.has_value();
         rec = reader.next()) {
      switch (rec->type) {
        case kRecManifest:
          manifest_ = decode_store_manifest(rec->payload);
          saw_manifest = true;
          break;
        case kRecTrial: {
          TrialRecord t = decode_trial(rec->payload);
          const std::pair<std::uint64_t, std::uint32_t> key{t.cell_index,
                                                            t.trial};
          log_trials_[key] = std::move(t);
          break;
        }
        case kRecCell: {
          campaign::CellStats c = decode_cell_v1(rec->payload);
          const std::uint64_t index = c.index;
          log_cells_[index] = std::move(c);
          break;
        }
        case kRecCellV2: {
          campaign::CellStats c = decode_cell_v2(rec->payload);
          const std::uint64_t index = c.index;
          log_cells_[index] = std::move(c);
          break;
        }
        default:
          break;  // unknown record type: forward-compatible skip
      }
    }
    truncated_tail_ = reader.truncated();
    log_bytes_read_counter().add(reader.valid_bytes());
    store_bytes_ += file_size_or_zero(path);
  }
  if (!saw_manifest) {
    throw std::runtime_error("persist: store has no manifest record: " + path);
  }

  levels_ = read_levels_manifest(path);
  if (!levels_.has_value()) return;
  store_bytes_ += file_size_or_zero(levels_manifest_path(path));
  if (!(levels_->identity == manifest_)) {
    throw std::runtime_error(
        "persist: levels manifest does not match store (" +
        describe_manifest_mismatch(levels_->identity, manifest_) +
        "): " + path);
  }
  segments_.reserve(levels_->segments.size());
  for (const SegmentRef& ref : levels_->segments) {
    auto seg = std::make_unique<SegmentReader>(segment_path(path, ref));
    if (seg->info().sequence != ref.sequence) {
      throw std::runtime_error("persist: segment " + ref.file +
                               " does not carry its manifest sequence: " +
                               path);
    }
    if (!(seg->info().identity == manifest_)) {
      throw std::runtime_error(
          "persist: segment " + ref.file + " is from a different sweep (" +
          describe_manifest_mismatch(seg->info().identity, manifest_) +
          "): " + path);
    }
    store_bytes_ += seg->file_bytes();
    segments_.push_back(std::move(seg));
  }
}

StoreReader::~StoreReader() = default;

std::vector<campaign::CellStats> StoreReader::cells() const {
  std::map<std::uint64_t, campaign::CellStats> merged;
  for (const std::unique_ptr<SegmentReader>& seg : segments_) {
    for (campaign::CellStats& cell : seg->cells()) {
      const std::uint64_t index = cell.index;
      merged[index] = std::move(cell);
    }
  }
  for (const auto& [index, cell] : log_cells_) merged[index] = cell;
  std::vector<campaign::CellStats> out;
  out.reserve(merged.size());
  for (auto& [index, cell] : merged) out.push_back(std::move(cell));
  return out;
}

std::optional<StoreReader::CellData> StoreReader::read_cell(
    const std::vector<campaign::AxisCoordinate>& coords) const {
  const std::vector<std::uint8_t> key = encode_cell_key(coords);
  // Indexed lookup: one cell block per segment that can hold the key,
  // later segments winning, the in-memory log tail on top — never a
  // full cells() scan.
  std::optional<campaign::CellStats> stats;
  for (const std::unique_ptr<SegmentReader>& seg : segments_) {
    if (std::optional<campaign::CellStats> cell = seg->cell_for_key(key)) {
      stats = std::move(cell);
    }
  }
  for (const auto& [index, cell] : log_cells_) {
    if (cell.coords == coords) stats = cell;
  }
  if (!stats.has_value()) return std::nullopt;

  std::map<std::uint32_t, TrialRecord> trials;
  for (const std::unique_ptr<SegmentReader>& seg : segments_) {
    for (TrialRecord& t : seg->trials_for_key(key)) {
      const std::uint32_t trial = t.trial;
      trials[trial] = std::move(t);
    }
  }
  for (const auto& [log_key, t] : log_trials_) {
    if (log_key.first == stats->index) trials[log_key.second] = t;
  }

  CellData out;
  out.stats = std::move(*stats);
  out.trials.reserve(trials.size());
  for (auto& [trial, t] : trials) out.trials.push_back(std::move(t));
  return out;
}

StoreContents StoreReader::read_matching(const CellFilter& filter) const {
  StoreContents out;
  out.manifest = manifest_;
  out.format = format_version();
  out.truncated_tail = truncated_tail_;

  std::vector<campaign::CellStats> matched;
  std::set<std::uint64_t> selected;
  for (campaign::CellStats& cell : cells()) {
    if (!filter.empty() && !filter.matches(cell.coords)) continue;
    selected.insert(cell.index);
    matched.push_back(std::move(cell));
  }

  std::map<std::pair<std::uint64_t, std::uint32_t>, TrialRecord> trials;
  if (filter.empty()) {
    // Full view: every segment group plus every log trial, orphans
    // included — byte-equivalent to replaying the original flat log.
    for (const std::unique_ptr<SegmentReader>& seg : segments_) {
      seg->for_each_group([&](const SegmentReader::TrialGroup& group) {
        for (const TrialRecord& t : group.trials) {
          trials[{t.cell_index, t.trial}] = t;
        }
      });
    }
    for (const auto& [key, t] : log_trials_) trials[key] = t;
  } else {
    // Indexed path: per segment, the set of blocks that can hold any
    // selected cell — each block read once even when it serves several.
    std::set<std::vector<std::uint8_t>> keys;
    for (const campaign::CellStats& cell : matched) {
      keys.insert(encode_cell_key(cell.coords));
    }
    for (const std::unique_ptr<SegmentReader>& seg : segments_) {
      std::set<std::size_t> blocks;
      for (const std::vector<std::uint8_t>& key : keys) {
        const std::optional<std::size_t> block = seg->trial_block_for(key);
        if (block.has_value()) blocks.insert(*block);
      }
      for (const std::size_t block : blocks) {
        for (SegmentReader::TrialGroup& group : seg->read_trial_block(block)) {
          if (!keys.contains(group.key)) continue;
          for (TrialRecord& t : group.trials) {
            const std::pair<std::uint64_t, std::uint32_t> key{t.cell_index,
                                                              t.trial};
            trials[key] = std::move(t);
          }
        }
      }
    }
    for (const auto& [key, t] : log_trials_) {
      if (selected.contains(key.first)) trials[key] = t;
    }
  }

  out.cells = std::move(matched);
  out.trials.reserve(trials.size());
  for (auto& [key, t] : trials) out.trials.push_back(std::move(t));
  return out;
}

}  // namespace msa::persist
