// Unified read path over a campaign store in any format: v1/v2 flat
// logs and v3 segmented stores (log + levels sidecar + sorted segments)
// behind one interface. Every consumer — stats, diff/gate, merge,
// progress, resume — reads through this class, so the flat and segmented
// views of the same data are identical by construction, which is what
// keeps `stats`/`diff`/`gate` byte-identical before and after
// compaction.
//
// Merge semantics: segments apply in ascending write sequence, then the
// log tail on top — the same last-wins order as replaying the original
// flat log. Cell-range queries (`read_cell`, a non-empty CellFilter in
// `read_matching`) use the segments' first-key block index and read only
// the blocks that can hold the requested cells; the log tail is always
// scanned in full, but after compaction it is just the manifest record.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "persist/campaign_store.h"
#include "persist/manifest.h"
#include "persist/segment.h"

namespace msa::persist {

class StoreReader {
 public:
  /// Opens the log, the levels sidecar (if present) and every named
  /// segment's footer + index — but no data blocks. Throws
  /// std::runtime_error for a missing/misframed log, a store with no
  /// manifest record, a damaged segment/sidecar, or a segment whose
  /// identity does not match the log's.
  explicit StoreReader(const std::string& path);
  ~StoreReader();

  StoreReader(const StoreReader&) = delete;
  StoreReader& operator=(const StoreReader&) = delete;

  [[nodiscard]] const StoreManifest& manifest() const noexcept {
    return manifest_;
  }
  [[nodiscard]] bool segmented() const noexcept { return levels_.has_value(); }
  /// kSegmentedStoreFormat for a segmented store, else the log version.
  [[nodiscard]] std::uint32_t format_version() const noexcept {
    return segmented() ? kSegmentedStoreFormat : manifest_.version;
  }
  [[nodiscard]] bool truncated_tail() const noexcept {
    return truncated_tail_;
  }
  /// Total on-disk footprint: log + sidecar + live segments.
  [[nodiscard]] std::uint64_t store_bytes() const noexcept {
    return store_bytes_;
  }

  /// Every completed cell, ascending global index, duplicates last-wins.
  /// On a segmented store this touches only the (small) cell blocks —
  /// never trial data — which is the resume and progress fast path.
  [[nodiscard]] std::vector<campaign::CellStats> cells() const;

  /// One cell looked up by its axis coordinates: the aggregate plus the
  /// deduplicated trial stream, or nullopt when no such cell completed.
  /// Segmented: one indexed block read per segment that can hold the
  /// key, plus the log tail.
  struct CellData {
    campaign::CellStats stats;
    std::vector<TrialRecord> trials;
  };
  [[nodiscard]] std::optional<CellData> read_cell(
      const std::vector<campaign::AxisCoordinate>& coords) const;

  /// The store restricted to cells matching `filter` (empty filter =
  /// everything, including orphan log trials — byte-equivalent to the
  /// historical full read). Cells/trials sorted exactly like read_store:
  /// ascending index, ascending (cell, trial).
  [[nodiscard]] StoreContents read_matching(const CellFilter& filter) const;
  [[nodiscard]] StoreContents read_all() const {
    return read_matching(CellFilter{});
  }

 private:
  std::string path_;
  StoreManifest manifest_;
  bool truncated_tail_ = false;
  std::uint64_t store_bytes_ = 0;
  std::optional<LevelsManifest> levels_;
  std::vector<std::unique_ptr<SegmentReader>> segments_;  ///< ascending seq
  // Log contents, loaded once at construction (after compaction the log
  // is just the manifest record — this IS the "offset past the
  // segments" resume: segment data is never replayed through the log).
  std::map<std::uint64_t, campaign::CellStats> log_cells_;
  std::map<std::pair<std::uint64_t, std::uint32_t>, TrialRecord> log_trials_;
};

}  // namespace msa::persist
