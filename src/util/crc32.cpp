#include "util/crc32.h"

#include <array>

namespace msa::util {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

void Crc32::update(std::span<const std::uint8_t> bytes) noexcept {
  std::uint32_t c = state_;
  for (const std::uint8_t b : bytes) {
    c = kTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

void Crc32::update(std::string_view text) noexcept {
  update(std::span{reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept {
  Crc32 c;
  c.update(bytes);
  return c.value();
}

std::uint32_t crc32(std::string_view text) noexcept {
  Crc32 c;
  c.update(text);
  return c.value();
}

}  // namespace msa::util
