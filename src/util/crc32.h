// CRC-32 (IEEE 802.3 polynomial, reflected). Used to checksum xmodel
// payloads and scraped memory regions so tests can assert byte-exact
// residue recovery without storing full golden buffers.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace msa::util {

/// Incremental CRC-32. Construct, update() over chunks, value().
class Crc32 {
 public:
  void update(std::span<const std::uint8_t> bytes) noexcept;
  void update(std::string_view text) noexcept;

  /// Finalized CRC value for everything fed so far.
  [[nodiscard]] std::uint32_t value() const noexcept { return ~state_; }

  void reset() noexcept { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept;
[[nodiscard]] std::uint32_t crc32(std::string_view text) noexcept;

}  // namespace msa::util
