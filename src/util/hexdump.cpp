#include "util/hexdump.h"

#include <cctype>
#include <stdexcept>

namespace msa::util {

namespace {

constexpr char kLower[] = "0123456789abcdef";
constexpr char kUpper[] = "0123456789ABCDEF";

void append_byte_hex(std::string& out, std::uint8_t b, bool uppercase) {
  const char* digits = uppercase ? kUpper : kLower;
  out.push_back(digits[b >> 4]);
  out.push_back(digits[b & 0xF]);
}

void append_offset(std::string& out, std::size_t offset, bool uppercase) {
  const char* digits = uppercase ? kUpper : kLower;
  for (int shift = 28; shift >= 0; shift -= 4) {
    out.push_back(digits[(offset >> shift) & 0xF]);
  }
  out.push_back(' ');
  out.push_back(' ');
}

}  // namespace

char ascii_or_dot(std::uint8_t b) noexcept {
  return (b >= 0x20 && b < 0x7F) ? static_cast<char>(b) : '.';
}

std::string hex_row(std::span<const std::uint8_t> bytes, const HexDumpOptions& opts) {
  std::string out;
  const std::size_t width = opts.bytes_per_row;
  out.reserve(width * 4);
  // Hex column: 16-bit big-endian-looking groups, matching hexdump(1)'s
  // default on little-endian hosts would swap bytes; the paper's listings
  // show plain byte order ("6c73" for "ls"), i.e. hexdump -C style pairs
  // grouped two bytes at a time. We emit bytes in order, grouped in pairs.
  for (std::size_t i = 0; i < width; ++i) {
    if (i > 0 && i % 2 == 0) out.push_back(' ');
    if (i < bytes.size()) {
      append_byte_hex(out, bytes[i], opts.uppercase);
    } else {
      out.append("  ");  // pad short final row so the gutter aligns
    }
  }
  if (opts.ascii_gutter) {
    out.append("  ");
    for (const std::uint8_t b : bytes) out.push_back(ascii_or_dot(b));
  }
  return out;
}

std::string hex_dump(std::span<const std::uint8_t> bytes, const HexDumpOptions& opts) {
  std::string out;
  const std::size_t width = opts.bytes_per_row == 0 ? 16 : opts.bytes_per_row;
  out.reserve(bytes.size() * 4 + bytes.size() / width * 2);
  for (std::size_t row = 0; row * width < bytes.size(); ++row) {
    if (row > 0) out.push_back('\n');
    if (opts.offsets) append_offset(out, row * width, opts.uppercase);
    const std::size_t begin = row * width;
    const std::size_t len = std::min(width, bytes.size() - begin);
    out += hex_row(bytes.subspan(begin, len), opts);
  }
  return out;
}

std::vector<std::uint8_t> parse_hex_dump(const std::string& text) {
  std::vector<std::uint8_t> out;
  out.reserve(text.size() / 3);
  int hi = -1;
  bool in_gutter = false;
  int spaces = 0;
  for (const char c : text) {
    if (c == '\n') {
      in_gutter = false;
      spaces = 0;
      hi = -1;
      continue;
    }
    if (in_gutter) continue;
    if (c == ' ') {
      // Two consecutive spaces separate the hex column from the gutter.
      if (++spaces >= 2) in_gutter = true;
      continue;
    }
    spaces = 0;
    int v = -1;
    if (c >= '0' && c <= '9') v = c - '0';
    else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
    else throw std::invalid_argument("parse_hex_dump: non-hex character in hex column");
    if (hi < 0) {
      hi = v;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | v));
      hi = -1;
    }
  }
  if (hi >= 0) throw std::invalid_argument("parse_hex_dump: dangling nibble");
  return out;
}

std::vector<std::uint8_t> words_to_bytes_le(std::span<const std::uint32_t> words) {
  std::vector<std::uint8_t> out;
  out.reserve(words.size() * 4);
  for (const std::uint32_t w : words) {
    out.push_back(static_cast<std::uint8_t>(w & 0xFF));
    out.push_back(static_cast<std::uint8_t>((w >> 8) & 0xFF));
    out.push_back(static_cast<std::uint8_t>((w >> 16) & 0xFF));
    out.push_back(static_cast<std::uint8_t>((w >> 24) & 0xFF));
  }
  return out;
}

}  // namespace msa::util
