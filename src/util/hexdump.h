// Hexdump formatting in the style the paper's Step 4.a uses: the scraped
// words are arranged "into rows of eight nibbles each" and then rendered
// like hexdump(1) with a 16-bit-group hex column plus an ASCII gutter.
// The attack's model-identification step greps this text, so the format
// must round-trip the raw bytes faithfully.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace msa::util {

struct HexDumpOptions {
  std::size_t bytes_per_row = 16;   ///< hexdump(1) default row width.
  bool ascii_gutter = true;         ///< append printable-ASCII column.
  bool offsets = false;             ///< prefix each row with byte offset.
  bool uppercase = false;           ///< A-F instead of a-f.
};

/// Formats one row of bytes as space-separated 16-bit groups ("6c73 2f72 ...").
[[nodiscard]] std::string hex_row(std::span<const std::uint8_t> bytes,
                                  const HexDumpOptions& opts = {});

/// Full multi-row dump; rows separated by '\n' (no trailing newline).
[[nodiscard]] std::string hex_dump(std::span<const std::uint8_t> bytes,
                                   const HexDumpOptions& opts = {});

/// Renders a byte as hexdump(1) does in the ASCII gutter: printable ASCII
/// verbatim, everything else as '.'.
[[nodiscard]] char ascii_or_dot(std::uint8_t b) noexcept;

/// Parses the hex column of a dump produced by hex_dump back into bytes.
/// Ignores the ASCII gutter and offsets. Throws std::invalid_argument on
/// malformed hex.
[[nodiscard]] std::vector<std::uint8_t> parse_hex_dump(const std::string& text);

/// Converts a vector of 32-bit little-endian words (devmem output order)
/// into a flat byte stream, the representation the analysis pipeline
/// hexdumps and greps.
[[nodiscard]] std::vector<std::uint8_t> words_to_bytes_le(
    std::span<const std::uint32_t> words);

}  // namespace msa::util
