#include "util/log.h"

#include <cstdio>

namespace msa::util {

namespace {

LogLevel g_level = LogLevel::kWarn;
Log::Sink g_sink;

void default_sink(LogLevel level, std::string_view message) {
  std::fprintf(stderr, "[%.*s] %.*s\n",
               static_cast<int>(to_string(level).size()), to_string(level).data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

void Log::set_level(LogLevel level) noexcept { g_level = level; }

LogLevel Log::level() noexcept { return g_level; }

void Log::set_sink(Sink sink) { g_sink = std::move(sink); }

void Log::write(LogLevel level, std::string_view message) {
  if (level < g_level || g_level == LogLevel::kOff) return;
  if (g_sink) {
    g_sink(level, message);
  } else {
    default_sink(level, message);
  }
}

}  // namespace msa::util
