#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "util/monotime.h"

namespace msa::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<bool> g_plain{false};

// Guards g_sink — both replacement and invocation. Invoking under the
// lock also serializes concurrent writes, so sinks (and stderr lines)
// never interleave mid-message.
std::mutex g_sink_mutex;
Log::Sink g_sink;

void default_sink(LogLevel level, std::string_view message) {
  if (g_plain.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "[%.*s] %.*s\n",
                 static_cast<int>(to_string(level).size()),
                 to_string(level).data(), static_cast<int>(message.size()),
                 message.data());
    return;
  }
  const std::uint64_t ns = monotonic_ns();
  std::fprintf(stderr, "[%8.3fs t%02u] [%.*s] %.*s\n",
               static_cast<double>(ns) / 1e9, thread_ordinal(),
               static_cast<int>(to_string(level).size()),
               to_string(level).data(), static_cast<int>(message.size()),
               message.data());
}

}  // namespace

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

void Log::set_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel Log::level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void Log::set_sink(Sink sink) {
  const std::lock_guard lock{g_sink_mutex};
  g_sink = std::move(sink);
}

void Log::set_plain(bool plain) noexcept {
  g_plain.store(plain, std::memory_order_relaxed);
}

bool Log::plain() noexcept { return g_plain.load(std::memory_order_relaxed); }

void Log::write(LogLevel level, std::string_view message) {
  const LogLevel threshold = g_level.load(std::memory_order_relaxed);
  if (level < threshold || threshold == LogLevel::kOff) return;
  const std::lock_guard lock{g_sink_mutex};
  if (g_sink) {
    g_sink(level, message);
  } else {
    default_sink(level, message);
  }
}

}  // namespace msa::util
