// Minimal leveled logger. Components log attack/system events through this
// so examples can show the step-by-step transcript the paper's figures
// present, while tests run silently. Thread-safe: the campaign engine
// runs boards concurrently, so the level is atomic and sink access is
// mutex-guarded (a custom sink is invoked under that mutex — keep sinks
// non-reentrant and fast).
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace msa::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Process-wide logger configuration.
class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static void set_level(LogLevel level) noexcept;
  [[nodiscard]] static LogLevel level() noexcept;

  /// Replaces the output sink (default: stderr). Pass nullptr to restore
  /// the default sink.
  static void set_sink(Sink sink);

  /// The default stderr sink prefixes each line with monotonic elapsed
  /// seconds since process start and the writer's dense thread ordinal —
  /// "[  12.345s t03] [info] ..." — using the same clock anchor and
  /// thread ids as obs/trace.h, so transcripts correlate with exported
  /// trace spans. set_plain(true) restores the bare "[info] ..." form
  /// (custom sinks installed via set_sink are never prefixed either
  /// way).
  static void set_plain(bool plain = true) noexcept;
  [[nodiscard]] static bool plain() noexcept;

  static void write(LogLevel level, std::string_view message);

  static void debug(std::string_view m) { write(LogLevel::kDebug, m); }
  static void info(std::string_view m) { write(LogLevel::kInfo, m); }
  static void warn(std::string_view m) { write(LogLevel::kWarn, m); }
  static void error(std::string_view m) { write(LogLevel::kError, m); }
};

/// RAII guard that silences logging for a scope (used by tests).
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level) : previous_{Log::level()} {
    Log::set_level(level);
  }
  ~ScopedLogLevel() { Log::set_level(previous_); }
  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel previous_;
};

}  // namespace msa::util
