#include "util/monotime.h"

#include <atomic>
#include <chrono>

namespace msa::util {

namespace {

std::chrono::steady_clock::time_point anchor() noexcept {
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return t0;
}

}  // namespace

std::uint64_t monotonic_ns() noexcept {
  const auto elapsed = std::chrono::steady_clock::now() - anchor();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

std::uint32_t thread_ordinal() noexcept {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace msa::util
