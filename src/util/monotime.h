// Process-wide monotonic time anchor and dense thread ordinals. The
// tracer (obs/trace.h) and the default log sink both stamp against the
// same steady-clock origin, so a `[  12.345s t03]` log line lines up
// with span timestamps in an exported trace, and the small sequential
// thread ids match between the two as well.
#pragma once

#include <cstdint>

namespace msa::util {

/// Nanoseconds since the process's monotonic anchor. The anchor is the
/// steady-clock reading taken on the first call in the process, so
/// values start near zero and never go backwards.
[[nodiscard]] std::uint64_t monotonic_ns() noexcept;

/// Small dense id for the calling thread: the first thread that asks
/// gets 1, the next 2, and so on. Stable for the thread's lifetime and
/// never reused within a process.
[[nodiscard]] std::uint32_t thread_ordinal() noexcept;

}  // namespace msa::util
