#include "util/prng.h"

namespace msa::util {

std::uint64_t Prng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method with rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    // 128-bit multiply-high to map r into [0, bound) without modulo.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(r) * static_cast<unsigned __int128>(bound);
    const auto low = static_cast<std::uint64_t>(m);
    if (low >= threshold) return static_cast<std::uint64_t>(m >> 64);
  }
}

std::uint64_t Prng::between(std::uint64_t lo, std::uint64_t hi) noexcept {
  if (lo >= hi) return lo;
  return lo + below(hi - lo + 1);
}

double Prng::uniform01() noexcept {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Prng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

}  // namespace msa::util
