// Deterministic pseudo-random number generation for simulation.
//
// Every stochastic component in the library (frame allocation order under
// ASLR, synthetic weights, workload generators) draws from an explicitly
// seeded Prng so that tests and benchmarks are bit-reproducible. We do not
// use std::mt19937 because its state is large and its seeding is easy to
// get subtly wrong; xoshiro256** with a splitmix64 seeder is small, fast,
// and has well-understood statistical quality.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string_view>

namespace msa::util {

/// FNV-1a over a byte string: the deterministic, seed-free identity hash
/// used wherever a stable value must agree across processes and runs
/// (worker-rotation spread; campaign::GridBuilder::fingerprint streams
/// the same constants over a structured serialization).
[[nodiscard]] constexpr std::uint64_t fnv1a_64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// splitmix64 step; used to expand a single 64-bit seed into stream state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can
/// be used with <random> distributions if needed.
class Prng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 256-bit state words from a single seed via splitmix64.
  explicit constexpr Prng(std::uint64_t seed = 0x5eed0f0e1d2c3b4aULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Bernoulli draw with probability p of returning true.
  [[nodiscard]] bool chance(double p) noexcept;

  /// Forks an independent stream (for per-component generators derived
  /// from one master seed).
  [[nodiscard]] Prng fork() noexcept { return Prng{(*this)()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace msa::util
