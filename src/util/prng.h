// Deterministic pseudo-random number generation for simulation.
//
// Every stochastic component in the library (frame allocation order under
// ASLR, synthetic weights, workload generators) draws from an explicitly
// seeded Prng so that tests and benchmarks are bit-reproducible. We do not
// use std::mt19937 because its state is large and its seeding is easy to
// get subtly wrong; xoshiro256** with a splitmix64 seeder is small, fast,
// and has well-understood statistical quality.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string_view>

namespace msa::util {

/// FNV-1a over a byte string: the deterministic, seed-free identity hash
/// used wherever a stable value must agree across processes and runs
/// (worker-rotation spread; campaign::GridBuilder::fingerprint streams
/// the same constants over a structured serialization).
[[nodiscard]] constexpr std::uint64_t fnv1a_64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// splitmix64 step; used to expand a single 64-bit seed into stream state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can
/// be used with <random> distributions if needed.
class Prng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 256-bit state words from a single seed via splitmix64.
  explicit constexpr Prng(std::uint64_t seed = 0x5eed0f0e1d2c3b4aULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero. Defined
  /// inline: the frame allocator, image generators, and remanence model
  /// call this tens of millions of times per sweep, so the call must
  /// fold into the caller's loop.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless method with rejection to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      // 128-bit multiply-high to map r into [0, bound) without modulo.
      const unsigned __int128 m = static_cast<unsigned __int128>(r) *
                                  static_cast<unsigned __int128>(bound);
      const auto low = static_cast<std::uint64_t>(m);
      if (low >= threshold) return static_cast<std::uint64_t>(m >> 64);
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    if (lo >= hi) return lo;
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    // 53 random mantissa bits -> uniform double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p of returning true. Consumes no
  /// state when the outcome is certain (p <= 0 or p >= 1).
  [[nodiscard]] bool chance(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Forks an independent stream (for per-component generators derived
  /// from one master seed).
  [[nodiscard]] Prng fork() noexcept { return Prng{(*this)()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace msa::util
