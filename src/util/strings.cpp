#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <stdexcept>

namespace msa::util {

std::string hex_no_prefix(std::uint64_t v) {
  if (v == 0) return "0";
  char buf[17];
  int pos = 16;
  buf[16] = '\0';
  while (v != 0) {
    buf[--pos] = "0123456789abcdef"[v & 0xF];
    v >>= 4;
  }
  return std::string{&buf[pos]};
}

std::string hex_0x(std::uint64_t v, int width) {
  std::string digits = hex_no_prefix(v);
  if (width > 0 && digits.size() < static_cast<std::size_t>(width)) {
    digits.insert(0, static_cast<std::size_t>(width) - digits.size(), '0');
  }
  return "0x" + digits;
}

std::uint64_t parse_hex(std::string_view s) {
  if (starts_with(s, "0x") || starts_with(s, "0X")) s.remove_prefix(2);
  if (s.empty() || s.size() > 16) {
    throw std::invalid_argument("parse_hex: bad length");
  }
  std::uint64_t v = 0;
  for (const char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else throw std::invalid_argument("parse_hex: non-hex character");
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  return v;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    const std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool contains(std::string_view haystack, std::string_view needle) noexcept {
  return haystack.find(needle) != std::string_view::npos;
}

std::vector<std::size_t> find_all(std::span<const std::uint8_t> haystack,
                                  std::string_view needle) {
  std::vector<std::size_t> hits;
  if (needle.empty() || haystack.size() < needle.size()) return hits;
  const auto* n = reinterpret_cast<const std::uint8_t*>(needle.data());
  const std::uint8_t* base = haystack.data();
  const std::size_t last = haystack.size() - needle.size();
  // memchr skips runs without the lead byte at word speed; scraped dumps
  // are mostly zeros or weight noise, so this dominates the scan.
  std::size_t i = 0;
  while (i <= last) {
    const void* hit = std::memchr(base + i, n[0], last - i + 1);
    if (hit == nullptr) break;
    i = static_cast<std::size_t>(static_cast<const std::uint8_t*>(hit) - base);
    if (std::equal(n, n + needle.size(), base + i)) hits.push_back(i);
    ++i;
  }
  return hits;
}

std::vector<std::string> extract_strings(std::span<const std::uint8_t> data,
                                         std::size_t min_len) {
  std::vector<std::string> out;
  std::string run;
  auto flush = [&] {
    if (run.size() >= min_len) out.push_back(run);
    run.clear();
  };
  for (const std::uint8_t b : data) {
    if (b >= 0x20 && b < 0x7F) {
      run.push_back(static_cast<char>(b));
    } else {
      flush();
    }
  }
  flush();
  return out;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

}  // namespace msa::util
