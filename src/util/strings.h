// Small string utilities shared across modules: fixed-width hex formatting
// (for addresses in /proc emulation and devmem output), splitting, and
// substring search over binary data (the grep step of the attack).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace msa::util {

/// Lower-case hex without leading zeros, no "0x" prefix — the format Linux
/// uses in /proc/<pid>/maps ("aaaaee775000-aaaaefd8a000").
[[nodiscard]] std::string hex_no_prefix(std::uint64_t v);

/// "0x"-prefixed lower-case hex, zero-padded to the given nibble width.
/// devmem prints 32-bit reads as 0x%08X; we match that with width 8.
[[nodiscard]] std::string hex_0x(std::uint64_t v, int width = 0);

/// Parses hex with or without "0x" prefix. Throws std::invalid_argument.
[[nodiscard]] std::uint64_t parse_hex(std::string_view s);

/// Splits on a delimiter; empty fields preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Splits on runs of whitespace; no empty fields.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;
[[nodiscard]] bool contains(std::string_view haystack, std::string_view needle) noexcept;

/// Finds every occurrence of an ASCII needle in a binary buffer, returning
/// byte offsets. This is the primitive behind the attack's
/// "grep resnet50 <hexdump>" model-identification step, applied directly
/// to the scraped bytes.
[[nodiscard]] std::vector<std::size_t> find_all(std::span<const std::uint8_t> haystack,
                                                std::string_view needle);

/// Extracts all printable-ASCII runs of at least min_len bytes (like
/// strings(1)); used by the analyzer to enumerate candidate model names.
[[nodiscard]] std::vector<std::string> extract_strings(
    std::span<const std::uint8_t> data, std::size_t min_len = 4);

/// Joins pieces with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& pieces,
                               std::string_view sep);

}  // namespace msa::util
