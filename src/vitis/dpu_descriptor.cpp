#include "vitis/dpu_descriptor.h"

#include "util/crc32.h"

namespace msa::vitis {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t get_u32(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint32_t>(b[off]) |
         (static_cast<std::uint32_t>(b[off + 1]) << 8) |
         (static_cast<std::uint32_t>(b[off + 2]) << 16) |
         (static_cast<std::uint32_t>(b[off + 3]) << 24);
}

std::uint64_t get_u64(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint64_t>(get_u32(b, off)) |
         (static_cast<std::uint64_t>(get_u32(b, off + 4)) << 32);
}

}  // namespace

std::vector<std::uint8_t> DpuDescriptor::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(kEncodedSize);
  put_u32(out, kMagic);
  put_u16(out, version);
  put_u16(out, 0);  // reserved / alignment
  put_u64(out, input_va);
  put_u32(out, input_width);
  put_u32(out, input_height);
  put_u64(out, output_va);
  put_u32(out, output_len);
  put_u32(out, model_crc);
  // Pad to the fixed size minus the CRC word.
  while (out.size() < kEncodedSize - 4) out.push_back(0);
  put_u32(out, util::crc32(out));
  return out;
}

std::optional<DpuDescriptor> DpuDescriptor::decode_at(
    std::span<const std::uint8_t> bytes, std::size_t offset) {
  if (offset > bytes.size() || bytes.size() - offset < kEncodedSize) {
    return std::nullopt;
  }
  const auto view = bytes.subspan(offset, kEncodedSize);
  if (get_u32(view, 0) != kMagic) return std::nullopt;
  const std::uint32_t stored_crc = get_u32(view, kEncodedSize - 4);
  if (util::crc32(view.subspan(0, kEncodedSize - 4)) != stored_crc) {
    return std::nullopt;
  }
  DpuDescriptor d;
  d.version = static_cast<std::uint16_t>(view[4] | (view[5] << 8));
  if (d.version != 1) return std::nullopt;
  d.input_va = get_u64(view, 8);
  d.input_width = get_u32(view, 16);
  d.input_height = get_u32(view, 20);
  d.output_va = get_u64(view, 24);
  d.output_len = get_u32(view, 32);
  d.model_crc = get_u32(view, 36);
  return d;
}

}  // namespace msa::vitis
