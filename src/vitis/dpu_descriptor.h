// DPU job descriptor — the control block a DPU-class accelerator consumes
// from device-visible memory. Real Vitis-AI runs leave such descriptors
// (buffer addresses, tensor geometry) in the board DRAM next to the data
// they describe; since the adversary has the runtime library (paper §II,
// "Adversary's access"), the descriptor format is public knowledge.
//
// For the attack this is a gift: a surviving descriptor names the input
// buffer's *virtual address and geometry*, enabling image reconstruction
// without any offline profiling (see attack/descriptor_scan.h) — an
// extension beyond the paper's profiling-based Step 4.b.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace msa::vitis {

struct DpuDescriptor {
  static constexpr std::uint32_t kMagic = 0x44555044;  // "DPUD" little-endian
  static constexpr std::size_t kEncodedSize = 48;

  std::uint16_t version = 1;
  std::uint64_t input_va = 0;    ///< staged input image (raw RGB888)
  std::uint32_t input_width = 0;
  std::uint32_t input_height = 0;
  std::uint64_t output_va = 0;   ///< output tensor (float32 scores)
  std::uint32_t output_len = 0;  ///< number of output elements
  std::uint32_t model_crc = 0;   ///< CRC-32 of the model name

  bool operator==(const DpuDescriptor&) const = default;

  /// Fixed-size little-endian encoding, trailing CRC-32 over the payload.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Decodes a descriptor starting at bytes[offset]; validates magic,
  /// version and CRC. Returns nullopt on any mismatch (residue is noisy).
  [[nodiscard]] static std::optional<DpuDescriptor> decode_at(
      std::span<const std::uint8_t> bytes, std::size_t offset);
};

}  // namespace msa::vitis
