#include "vitis/dpu_runner.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/crc32.h"
#include "vitis/dpu_descriptor.h"
#include "vitis/tensor.h"

namespace msa::vitis {

namespace {

constexpr std::uint64_t kMetaBytes = 64;

std::uint64_t align16(std::uint64_t v) { return (v + 15) & ~std::uint64_t{15}; }

/// Heap metadata words: a glibc-style malloc chunk header (the paper's
/// Fig. 12 dump begins "9102 0000 0000 0000" = little-endian 0x291, a
/// chunk size) followed by plausible ARM64 heap pointers.
std::vector<std::uint8_t> meta_bytes(mem::VirtAddr heap_base) {
  std::vector<std::uint8_t> out(kMetaBytes, 0);
  auto put_u64 = [&](std::size_t off, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out[off + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
    }
  };
  put_u64(8, 0x291);                    // chunk size | flags
  put_u64(16, heap_base + 0x1f17108);   // fd-style pointer into the heap
  put_u64(24, heap_base + 0x1f11270);   // bk-style pointer
  return out;
}

}  // namespace

std::vector<std::uint8_t> DpuRunner::staged_strings(const XModel& model) {
  std::vector<std::uint8_t> out;
  auto put = [&](const std::string& s) {
    out.insert(out.end(), s.begin(), s.end());
    out.push_back(0);
  };
  // argv-style strings first (what the process was invoked with) ...
  put("./" + model.name());
  put(model.install_path());
  put("../images/001.jpg");
  // ... then the runtime metadata strings.
  for (const auto& s : model.aux_strings()) put(s);
  // Pad to 16 so the next section starts aligned.
  while (out.size() % 16 != 0) out.push_back(0);
  return out;
}

HeapLayout DpuRunner::layout_for(const XModel& model, std::uint32_t image_width,
                                 std::uint32_t image_height) {
  HeapLayout lay;
  lay.image_width = image_width;
  lay.image_height = image_height;
  lay.meta_off = 0;
  lay.descriptor_off = kMetaBytes;
  lay.strings_off = align16(lay.descriptor_off + DpuDescriptor::kEncodedSize);
  lay.xmodel_off = align16(lay.strings_off + staged_strings(model).size());
  lay.image_off = align16(lay.xmodel_off + model.serialize().size());
  lay.output_off = align16(
      lay.image_off + static_cast<std::uint64_t>(image_width) * image_height * 3);
  lay.total_bytes =
      align16(lay.output_off + model.num_classes() * sizeof(float));
  return lay;
}

RunResult DpuRunner::run(os::Pid pid, const XModel& model,
                         const img::Image& input) {
  const HeapLayout lay = layout_for(model, input.width(), input.height());
  const mem::VirtAddr heap_start = system_.sbrk(pid, lay.total_bytes);

  // Stage every section through the page table.
  system_.write_virt(pid, heap_start + lay.meta_off, meta_bytes(heap_start));
  DpuDescriptor desc;
  desc.input_va = heap_start + lay.image_off;
  desc.input_width = input.width();
  desc.input_height = input.height();
  desc.output_va = heap_start + lay.output_off;
  desc.output_len = model.num_classes();
  desc.model_crc = util::crc32(model.name());
  system_.write_virt(pid, heap_start + lay.descriptor_off, desc.encode());
  system_.write_virt(pid, heap_start + lay.strings_off, staged_strings(model));
  system_.write_virt(pid, heap_start + lay.xmodel_off, model.serialize());
  system_.write_virt(pid, heap_start + lay.image_off, input.to_rgb_bytes());

  // The DPU reads its input from device memory: read the image back out of
  // the heap rather than using the caller's copy.
  std::vector<std::uint8_t> staged(
      static_cast<std::size_t>(input.width()) * input.height() * 3);
  system_.read_virt(pid, heap_start + lay.image_off, staged);
  const img::Image from_heap =
      img::Image::from_rgb_bytes(staged, input.width(), input.height());
  const img::Image preprocessed = img::resize_nearest(
      from_heap, model.input_shape().w, model.input_shape().h);

  RunResult result;
  result.layout = lay;
  result.scores = model.infer(tensor_from_image(preprocessed));
  result.top_class = static_cast<std::size_t>(
      std::max_element(result.scores.begin(), result.scores.end()) -
      result.scores.begin());

  // Write the output tensor back into the heap (it, too, becomes residue).
  std::vector<std::uint8_t> out_bytes(result.scores.size() * sizeof(float));
  std::memcpy(out_bytes.data(), result.scores.data(), out_bytes.size());
  system_.write_virt(pid, heap_start + lay.output_off, out_bytes);

  return result;
}

}  // namespace msa::vitis
