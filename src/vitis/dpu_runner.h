// DpuRunner: stages a model run into a process's heap and executes it.
//
// This is the component whose memory footprint the attack scrapes. For a
// given (model, input-image-size) pair the heap layout is fully
// deterministic — the property the paper exploits in Step 4.b ("As we
// only modified the image ... the image's offset within the heap remained
// consistent for any image used with this model"):
//
//   +-----------------+  heap_base
//   | heap metadata   |  malloc-chunk-style header words and pointers
//   +-----------------+  descriptor_off
//   | DPU descriptor  |  job control block: input VA + geometry (see
//   |                 |  vitis/dpu_descriptor.h)
//   +-----------------+  strings_off
//   | metadata strings|  install path, torchvision/..., .so names
//   +-----------------+  xmodel_off
//   | serialized      |  full xmodel container (weights included)
//   | xmodel          |
//   +-----------------+  image_off
//   | input image     |  raw RGB888 bytes, row major (3 B / pixel)
//   +-----------------+  output_off
//   | output scores   |  float32 per class
//   +-----------------+  total_bytes
//
// All writes go through PetaLinuxSystem::write_virt, i.e. through the
// page table into simulated DRAM, so after termination the residue is
// whatever the sanitize policy left there.
#pragma once

#include <cstdint>
#include <vector>

#include "img/image.h"
#include "os/system.h"
#include "vitis/xmodel.h"

namespace msa::vitis {

struct HeapLayout {
  std::uint64_t total_bytes = 0;
  std::uint64_t meta_off = 0;
  std::uint64_t descriptor_off = 0;
  std::uint64_t strings_off = 0;
  std::uint64_t xmodel_off = 0;
  std::uint64_t image_off = 0;
  std::uint64_t output_off = 0;
  std::uint32_t image_width = 0;
  std::uint32_t image_height = 0;

  bool operator==(const HeapLayout&) const = default;
};

struct RunResult {
  HeapLayout layout;
  std::vector<float> scores;   ///< softmax class probabilities
  std::size_t top_class = 0;
};

class DpuRunner {
 public:
  explicit DpuRunner(os::PetaLinuxSystem& system) : system_{system} {}

  /// Deterministic layout for a model + input image geometry.
  [[nodiscard]] static HeapLayout layout_for(const XModel& model,
                                             std::uint32_t image_width,
                                             std::uint32_t image_height);

  /// Bytes of the staged strings area (same content for every run of the
  /// same model).
  [[nodiscard]] static std::vector<std::uint8_t> staged_strings(
      const XModel& model);

  /// Grows pid's heap, stages every section, runs inference (reading the
  /// input back out of the staged heap bytes), writes the output scores
  /// into the heap, and returns them.
  RunResult run(os::Pid pid, const XModel& model, const img::Image& input);

 private:
  os::PetaLinuxSystem& system_;
};

}  // namespace msa::vitis
