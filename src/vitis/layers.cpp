#include "vitis/layers.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace msa::vitis {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
}

std::uint32_t get_u32(std::span<const std::uint8_t> blob, std::size_t& pos) {
  if (pos + 4 > blob.size()) throw std::invalid_argument("xmodel: truncated u32");
  const std::uint32_t v = static_cast<std::uint32_t>(blob[pos]) |
                          (static_cast<std::uint32_t>(blob[pos + 1]) << 8) |
                          (static_cast<std::uint32_t>(blob[pos + 2]) << 16) |
                          (static_cast<std::uint32_t>(blob[pos + 3]) << 24);
  pos += 4;
  return v;
}

std::int8_t requantize(std::int32_t acc, std::uint32_t shift) {
  const std::int32_t scaled = acc >> shift;
  return static_cast<std::int8_t>(std::clamp(scaled, -128, 127));
}

}  // namespace

// ---------------------------------------------------------------- Conv2d ---

Conv2d::Conv2d(std::uint32_t in_c, std::uint32_t out_c, std::uint32_t k,
               std::uint32_t stride, std::uint32_t pad, bool relu,
               std::uint32_t requant_shift, std::vector<std::int8_t> weights,
               std::vector<std::int32_t> bias)
    : in_c_{in_c},
      out_c_{out_c},
      k_{k},
      stride_{stride},
      pad_{pad},
      relu_{relu},
      requant_shift_{requant_shift},
      weights_{std::move(weights)},
      bias_{std::move(bias)} {
  if (stride_ == 0 || k_ == 0) throw std::invalid_argument("Conv2d: bad geometry");
  const std::size_t expect =
      static_cast<std::size_t>(out_c_) * in_c_ * k_ * k_;
  if (weights_.size() != expect || bias_.size() != out_c_) {
    throw std::invalid_argument("Conv2d: parameter size mismatch");
  }
}

std::string Conv2d::name() const {
  return "conv" + std::to_string(k_) + "x" + std::to_string(k_) + "_" +
         std::to_string(in_c_) + "->" + std::to_string(out_c_);
}

TensorShape Conv2d::output_shape(const TensorShape& in) const {
  if (in.c != in_c_) throw std::invalid_argument("Conv2d: channel mismatch");
  if (in.h + 2 * pad_ < k_ || in.w + 2 * pad_ < k_) {
    throw std::invalid_argument("Conv2d: input smaller than kernel");
  }
  return TensorShape{out_c_, (in.h + 2 * pad_ - k_) / stride_ + 1,
                     (in.w + 2 * pad_ - k_) / stride_ + 1};
}

Tensor Conv2d::forward(const Tensor& in) const {
  // Accumulator-plane formulation: for each (ic, ky, kx) tap, add the
  // scalar-weighted input row into a reused int32 plane, then requantize
  // the plane once per output channel. int32 addition is associative and
  // commutative, so every output pixel receives exactly the same sum as
  // the per-pixel gather loop — just in tap order instead of pixel order
  // — while the inner loop becomes a dense multiply-accumulate the
  // compiler can vectorize (no bounds checks, no out-of-line calls).
  const TensorShape os = output_shape(in.shape());
  Tensor out{os};
  const auto& ish = in.shape();
  const std::int8_t* src = in.data().data();
  std::int8_t* dst = out.data().data();
  const std::size_t in_plane = static_cast<std::size_t>(ish.h) * ish.w;
  const std::size_t out_plane = static_cast<std::size_t>(os.h) * os.w;
  std::vector<std::int32_t> acc(out_plane);
  for (std::uint32_t oc = 0; oc < out_c_; ++oc) {
    std::fill(acc.begin(), acc.end(), bias_[oc]);
    const std::int8_t* wbase =
        weights_.data() + static_cast<std::size_t>(oc) * in_c_ * k_ * k_;
    for (std::uint32_t ic = 0; ic < in_c_; ++ic) {
      const std::int8_t* plane = src + static_cast<std::size_t>(ic) * in_plane;
      for (std::uint32_t ky = 0; ky < k_; ++ky) {
        // iy = oy*stride + ky - pad must land in [0, ish.h); solve for
        // the valid [oy0, oy1] range once instead of testing per pixel.
        const std::int64_t off_y = static_cast<std::int64_t>(ky) - pad_;
        const std::int64_t max_y = static_cast<std::int64_t>(ish.h) - 1 - off_y;
        if (max_y < 0) continue;
        const std::uint32_t oy0 =
            off_y < 0 ? static_cast<std::uint32_t>((-off_y + stride_ - 1) /
                                                   stride_)
                      : 0;
        const std::uint32_t oy1 = std::min(
            static_cast<std::uint32_t>(max_y / stride_), os.h - 1);
        for (std::uint32_t kx = 0; kx < k_; ++kx) {
          const std::int64_t off_x = static_cast<std::int64_t>(kx) - pad_;
          const std::int64_t max_x =
              static_cast<std::int64_t>(ish.w) - 1 - off_x;
          if (max_x < 0) continue;
          const std::uint32_t ox0 =
              off_x < 0 ? static_cast<std::uint32_t>((-off_x + stride_ - 1) /
                                                     stride_)
                        : 0;
          const std::uint32_t ox1 = std::min(
              static_cast<std::uint32_t>(max_x / stride_), os.w - 1);
          if (ox0 > ox1 || oy0 > oy1) continue;
          const std::int32_t w =
              wbase[(static_cast<std::size_t>(ic) * k_ + ky) * k_ + kx];
          if (w == 0) continue;
          for (std::uint32_t oy = oy0; oy <= oy1; ++oy) {
            const std::int8_t* in_row =
                plane + (static_cast<std::int64_t>(oy) * stride_ + off_y) *
                            ish.w;
            std::int32_t* acc_row = acc.data() + static_cast<std::size_t>(oy) *
                                                     os.w;
            for (std::uint32_t ox = ox0; ox <= ox1; ++ox) {
              acc_row[ox] +=
                  w * in_row[static_cast<std::int64_t>(ox) * stride_ + off_x];
            }
          }
        }
      }
    }
    std::int8_t* out_row = dst + static_cast<std::size_t>(oc) * out_plane;
    for (std::size_t i = 0; i < out_plane; ++i) {
      std::int8_t v = requantize(acc[i], requant_shift_);
      if (relu_ && v < 0) v = 0;
      out_row[i] = v;
    }
  }
  return out;
}

std::size_t Conv2d::param_bytes() const noexcept {
  return weights_.size() + bias_.size() * sizeof(std::int32_t);
}

void Conv2d::serialize(std::vector<std::uint8_t>& out) const {
  out.push_back(static_cast<std::uint8_t>(kind()));
  put_u32(out, in_c_);
  put_u32(out, out_c_);
  put_u32(out, k_);
  put_u32(out, stride_);
  put_u32(out, pad_);
  out.push_back(relu_ ? 1 : 0);
  put_u32(out, requant_shift_);
  put_u32(out, static_cast<std::uint32_t>(weights_.size()));
  for (const std::int8_t w : weights_) {
    out.push_back(static_cast<std::uint8_t>(w));
  }
  put_u32(out, static_cast<std::uint32_t>(bias_.size()));
  for (const std::int32_t b : bias_) {
    put_u32(out, static_cast<std::uint32_t>(b));
  }
}

// ------------------------------------------------------------- MaxPool2d ---

MaxPool2d::MaxPool2d(std::uint32_t k, std::uint32_t stride)
    : k_{k}, stride_{stride} {
  if (k_ == 0 || stride_ == 0) throw std::invalid_argument("MaxPool2d: bad geometry");
}

std::string MaxPool2d::name() const {
  return "maxpool" + std::to_string(k_) + "s" + std::to_string(stride_);
}

TensorShape MaxPool2d::output_shape(const TensorShape& in) const {
  if (in.h < k_ || in.w < k_) {
    throw std::invalid_argument("MaxPool2d: input smaller than window");
  }
  return TensorShape{in.c, (in.h - k_) / stride_ + 1, (in.w - k_) / stride_ + 1};
}

Tensor MaxPool2d::forward(const Tensor& in) const {
  const TensorShape os = output_shape(in.shape());
  Tensor out{os};
  const auto& ish = in.shape();
  const std::int8_t* src = in.data().data();
  std::int8_t* dst = out.data().data();
  const std::size_t in_plane = static_cast<std::size_t>(ish.h) * ish.w;
  const std::size_t out_plane = static_cast<std::size_t>(os.h) * os.w;
  for (std::uint32_t c = 0; c < os.c; ++c) {
    const std::int8_t* plane = src + static_cast<std::size_t>(c) * in_plane;
    std::int8_t* out_plane_p = dst + static_cast<std::size_t>(c) * out_plane;
    for (std::uint32_t oy = 0; oy < os.h; ++oy) {
      std::int8_t* out_row = out_plane_p + static_cast<std::size_t>(oy) * os.w;
      for (std::uint32_t ox = 0; ox < os.w; ++ox) {
        const std::int8_t* win =
            plane + static_cast<std::size_t>(oy) * stride_ * ish.w +
            static_cast<std::size_t>(ox) * stride_;
        std::int8_t best = -128;
        for (std::uint32_t ky = 0; ky < k_; ++ky) {
          const std::int8_t* row = win + static_cast<std::size_t>(ky) * ish.w;
          for (std::uint32_t kx = 0; kx < k_; ++kx) {
            best = std::max(best, row[kx]);
          }
        }
        out_row[ox] = best;
      }
    }
  }
  return out;
}

void MaxPool2d::serialize(std::vector<std::uint8_t>& out) const {
  out.push_back(static_cast<std::uint8_t>(kind()));
  put_u32(out, k_);
  put_u32(out, stride_);
}

// --------------------------------------------------------- GlobalAvgPool ---

TensorShape GlobalAvgPool::output_shape(const TensorShape& in) const {
  return TensorShape{in.c, 1, 1};
}

Tensor GlobalAvgPool::forward(const Tensor& in) const {
  const auto& ish = in.shape();
  Tensor out{TensorShape{ish.c, 1, 1}};
  const std::int64_t area = static_cast<std::int64_t>(ish.h) * ish.w;
  const std::int8_t* src = in.data().data();
  const std::size_t plane = static_cast<std::size_t>(ish.h) * ish.w;
  for (std::uint32_t c = 0; c < ish.c; ++c) {
    const std::int8_t* p = src + static_cast<std::size_t>(c) * plane;
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < plane; ++i) sum += p[i];
    out.set(c, 0, 0, static_cast<std::int8_t>(sum / area));
  }
  return out;
}

void GlobalAvgPool::serialize(std::vector<std::uint8_t>& out) const {
  out.push_back(static_cast<std::uint8_t>(kind()));
}

// ------------------------------------------------------------------ Dense ---

Dense::Dense(std::uint32_t in, std::uint32_t out, bool relu,
             std::uint32_t requant_shift, std::vector<std::int8_t> weights,
             std::vector<std::int32_t> bias)
    : in_{in},
      out_{out},
      relu_{relu},
      requant_shift_{requant_shift},
      weights_{std::move(weights)},
      bias_{std::move(bias)} {
  if (weights_.size() != static_cast<std::size_t>(in_) * out_ ||
      bias_.size() != out_) {
    throw std::invalid_argument("Dense: parameter size mismatch");
  }
}

std::string Dense::name() const {
  return "dense_" + std::to_string(in_) + "->" + std::to_string(out_);
}

TensorShape Dense::output_shape(const TensorShape& in) const {
  if (in.volume() != in_) throw std::invalid_argument("Dense: input mismatch");
  return TensorShape{out_, 1, 1};
}

Tensor Dense::forward(const Tensor& in) const {
  if (in.shape().volume() != in_) {
    throw std::invalid_argument("Dense: input mismatch");
  }
  Tensor out{TensorShape{out_, 1, 1}};
  const auto& flat = in.data();
  for (std::uint32_t o = 0; o < out_; ++o) {
    std::int32_t acc = bias_[o];
    for (std::uint32_t i = 0; i < in_; ++i) {
      acc += static_cast<std::int32_t>(weights_[static_cast<std::size_t>(o) * in_ + i]) *
             flat[i];
    }
    std::int8_t v = requantize(acc, requant_shift_);
    if (relu_ && v < 0) v = 0;
    out.set(o, 0, 0, v);
  }
  return out;
}

std::size_t Dense::param_bytes() const noexcept {
  return weights_.size() + bias_.size() * sizeof(std::int32_t);
}

void Dense::serialize(std::vector<std::uint8_t>& out) const {
  out.push_back(static_cast<std::uint8_t>(kind()));
  put_u32(out, in_);
  put_u32(out, out_);
  out.push_back(relu_ ? 1 : 0);
  put_u32(out, requant_shift_);
  put_u32(out, static_cast<std::uint32_t>(weights_.size()));
  for (const std::int8_t w : weights_) {
    out.push_back(static_cast<std::uint8_t>(w));
  }
  put_u32(out, static_cast<std::uint32_t>(bias_.size()));
  for (const std::int32_t b : bias_) {
    put_u32(out, static_cast<std::uint32_t>(b));
  }
}

// ---------------------------------------------------------- deserializer ---

std::unique_ptr<Layer> deserialize_layer(std::span<const std::uint8_t> blob,
                                         std::size_t& pos) {
  if (pos >= blob.size()) throw std::invalid_argument("xmodel: truncated layer");
  const auto kind = static_cast<LayerKind>(blob[pos++]);
  switch (kind) {
    case LayerKind::kConv2d: {
      const std::uint32_t in_c = get_u32(blob, pos);
      const std::uint32_t out_c = get_u32(blob, pos);
      const std::uint32_t k = get_u32(blob, pos);
      const std::uint32_t stride = get_u32(blob, pos);
      const std::uint32_t pad = get_u32(blob, pos);
      if (pos >= blob.size()) throw std::invalid_argument("xmodel: truncated conv");
      const bool relu = blob[pos++] != 0;
      const std::uint32_t shift = get_u32(blob, pos);
      const std::uint32_t n_w = get_u32(blob, pos);
      if (n_w > blob.size() || pos + n_w > blob.size()) {
        throw std::invalid_argument("xmodel: truncated weights");
      }
      std::vector<std::int8_t> w(n_w);
      for (std::uint32_t i = 0; i < n_w; ++i) {
        w[i] = static_cast<std::int8_t>(blob[pos++]);
      }
      const std::uint32_t n_b = get_u32(blob, pos);
      // Validate the length BEFORE sizing the vector: residue parsing must
      // reject corrupted counts, not ask the allocator for 16 GiB.
      if (static_cast<std::uint64_t>(n_b) * 4 > blob.size() - pos) {
        throw std::invalid_argument("xmodel: truncated bias");
      }
      std::vector<std::int32_t> b(n_b);
      for (std::uint32_t i = 0; i < n_b; ++i) {
        b[i] = static_cast<std::int32_t>(get_u32(blob, pos));
      }
      return std::make_unique<Conv2d>(in_c, out_c, k, stride, pad, relu, shift,
                                      std::move(w), std::move(b));
    }
    case LayerKind::kMaxPool2d: {
      const std::uint32_t k = get_u32(blob, pos);
      const std::uint32_t stride = get_u32(blob, pos);
      return std::make_unique<MaxPool2d>(k, stride);
    }
    case LayerKind::kGlobalAvgPool:
      return std::make_unique<GlobalAvgPool>();
    case LayerKind::kDense: {
      const std::uint32_t in = get_u32(blob, pos);
      const std::uint32_t out = get_u32(blob, pos);
      if (pos >= blob.size()) throw std::invalid_argument("xmodel: truncated dense");
      const bool relu = blob[pos++] != 0;
      const std::uint32_t shift = get_u32(blob, pos);
      const std::uint32_t n_w = get_u32(blob, pos);
      if (n_w > blob.size() || pos + n_w > blob.size()) {
        throw std::invalid_argument("xmodel: truncated weights");
      }
      std::vector<std::int8_t> w(n_w);
      for (std::uint32_t i = 0; i < n_w; ++i) {
        w[i] = static_cast<std::int8_t>(blob[pos++]);
      }
      const std::uint32_t n_b = get_u32(blob, pos);
      if (static_cast<std::uint64_t>(n_b) * 4 > blob.size() - pos) {
        throw std::invalid_argument("xmodel: truncated bias");
      }
      std::vector<std::int32_t> b(n_b);
      for (std::uint32_t i = 0; i < n_b; ++i) {
        b[i] = static_cast<std::int32_t>(get_u32(blob, pos));
      }
      return std::make_unique<Dense>(in, out, relu, shift, std::move(w),
                                     std::move(b));
    }
  }
  throw std::invalid_argument("xmodel: unknown layer kind");
}

std::vector<float> softmax(const Tensor& logits) {
  const auto& data = logits.data();
  float max_v = -1e30f;
  for (const std::int8_t v : data) max_v = std::max(max_v, static_cast<float>(v));
  std::vector<float> out(data.size());
  float sum = 0.0f;
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = std::exp((static_cast<float>(data[i]) - max_v) / 8.0f);
    sum += out[i];
  }
  for (auto& v : out) v /= sum;
  return out;
}

}  // namespace msa::vitis
