// Quantized inference layers. Deliberately small and naive: the attack
// does not depend on inference speed, only on the layers producing real
// weight and activation buffers with deterministic content. Arithmetic is
// int8 weights/activations with int32 accumulation and a per-layer
// right-shift requantization, the standard fixed-point scheme DPU-class
// accelerators use.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "vitis/tensor.h"

namespace msa::vitis {

enum class LayerKind : std::uint8_t {
  kConv2d = 1,
  kMaxPool2d = 2,
  kGlobalAvgPool = 3,
  kDense = 4,
};

class Layer {
 public:
  virtual ~Layer() = default;

  [[nodiscard]] virtual LayerKind kind() const noexcept = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual TensorShape output_shape(const TensorShape& in) const = 0;
  [[nodiscard]] virtual Tensor forward(const Tensor& in) const = 0;
  /// Bytes of parameters (weights + biases) this layer stages into DRAM.
  [[nodiscard]] virtual std::size_t param_bytes() const noexcept = 0;
  /// Appends the layer descriptor + parameters to an xmodel blob.
  virtual void serialize(std::vector<std::uint8_t>& out) const = 0;
};

class Conv2d final : public Layer {
 public:
  /// Weights are laid out [out_c][in_c][k][k]; bias per out channel.
  Conv2d(std::uint32_t in_c, std::uint32_t out_c, std::uint32_t k,
         std::uint32_t stride, std::uint32_t pad, bool relu,
         std::uint32_t requant_shift, std::vector<std::int8_t> weights,
         std::vector<std::int32_t> bias);

  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kConv2d;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] TensorShape output_shape(const TensorShape& in) const override;
  [[nodiscard]] Tensor forward(const Tensor& in) const override;
  [[nodiscard]] std::size_t param_bytes() const noexcept override;
  void serialize(std::vector<std::uint8_t>& out) const override;

  [[nodiscard]] const std::vector<std::int8_t>& weights() const noexcept {
    return weights_;
  }

 private:
  std::uint32_t in_c_, out_c_, k_, stride_, pad_;
  bool relu_;
  std::uint32_t requant_shift_;
  std::vector<std::int8_t> weights_;
  std::vector<std::int32_t> bias_;
};

class MaxPool2d final : public Layer {
 public:
  MaxPool2d(std::uint32_t k, std::uint32_t stride);

  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kMaxPool2d;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] TensorShape output_shape(const TensorShape& in) const override;
  [[nodiscard]] Tensor forward(const Tensor& in) const override;
  [[nodiscard]] std::size_t param_bytes() const noexcept override { return 0; }
  void serialize(std::vector<std::uint8_t>& out) const override;

 private:
  std::uint32_t k_, stride_;
};

class GlobalAvgPool final : public Layer {
 public:
  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kGlobalAvgPool;
  }
  [[nodiscard]] std::string name() const override { return "global_avg_pool"; }
  [[nodiscard]] TensorShape output_shape(const TensorShape& in) const override;
  [[nodiscard]] Tensor forward(const Tensor& in) const override;
  [[nodiscard]] std::size_t param_bytes() const noexcept override { return 0; }
  void serialize(std::vector<std::uint8_t>& out) const override;
};

class Dense final : public Layer {
 public:
  /// Expects a [C,1,1] input; weights [out][in], bias per output.
  Dense(std::uint32_t in, std::uint32_t out, bool relu,
        std::uint32_t requant_shift, std::vector<std::int8_t> weights,
        std::vector<std::int32_t> bias);

  [[nodiscard]] LayerKind kind() const noexcept override {
    return LayerKind::kDense;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] TensorShape output_shape(const TensorShape& in) const override;
  [[nodiscard]] Tensor forward(const Tensor& in) const override;
  [[nodiscard]] std::size_t param_bytes() const noexcept override;
  void serialize(std::vector<std::uint8_t>& out) const override;

 private:
  std::uint32_t in_, out_;
  bool relu_;
  std::uint32_t requant_shift_;
  std::vector<std::int8_t> weights_;
  std::vector<std::int32_t> bias_;
};

/// Reads one serialized layer back (inverse of Layer::serialize).
/// Advances `pos`. Throws std::invalid_argument on malformed input.
[[nodiscard]] std::unique_ptr<Layer> deserialize_layer(
    std::span<const std::uint8_t> blob, std::size_t& pos);

/// Softmax over a [C,1,1] logits tensor -> probabilities.
[[nodiscard]] std::vector<float> softmax(const Tensor& logits);

}  // namespace msa::vitis
