#include "vitis/model_zoo.h"

#include <stdexcept>

#include "util/crc32.h"
#include "util/prng.h"

namespace msa::vitis {

namespace {

std::vector<std::int8_t> random_weights(util::Prng& prng, std::size_t n) {
  std::vector<std::int8_t> w(n);
  for (auto& v : w) {
    // Small magnitudes keep int32 accumulators far from saturation.
    v = static_cast<std::int8_t>(static_cast<std::int64_t>(prng.between(0, 30)) - 15);
  }
  return w;
}

std::vector<std::int32_t> random_bias(util::Prng& prng, std::size_t n) {
  std::vector<std::int32_t> b(n);
  for (auto& v : b) {
    v = static_cast<std::int32_t>(static_cast<std::int64_t>(prng.between(0, 64)) - 32);
  }
  return b;
}

std::unique_ptr<Conv2d> conv(util::Prng& prng, std::uint32_t in_c,
                             std::uint32_t out_c, std::uint32_t k,
                             std::uint32_t stride, std::uint32_t pad,
                             std::uint32_t shift = 6) {
  return std::make_unique<Conv2d>(
      in_c, out_c, k, stride, pad, /*relu=*/true, shift,
      random_weights(prng, static_cast<std::size_t>(out_c) * in_c * k * k),
      random_bias(prng, out_c));
}

std::unique_ptr<Dense> dense(util::Prng& prng, std::uint32_t in,
                             std::uint32_t out, bool relu = false,
                             std::uint32_t shift = 5) {
  return std::make_unique<Dense>(
      in, out, relu, shift,
      random_weights(prng, static_cast<std::size_t>(in) * out),
      random_bias(prng, out));
}

/// Aux strings shared by every Vitis-AI deployment plus per-model entries.
std::vector<std::string> aux_strings_for(const std::string& name,
                                         const std::string& framework) {
  std::vector<std::string> aux{
      "/usr/share/vitis_ai_library/models/" + name + "/" + name + ".xmodel",
      "/usr/share/vitis_ai_library/models/" + name + "/" + name + ".prototxt",
      "vart/dpu_runner",
      "libvitis_ai_library-model_config.so.3",
      "libvart-runner.so.3",
      "xir::Graph::deserialize",
  };
  if (framework == "pt") {
    // torchvision-style qualified name; the paper's Fig. 11 shows the
    // fragment "hvision/<model>" surviving in memory.
    std::string base = name;
    if (const auto pos = base.rfind("_pt"); pos != std::string::npos) {
      base = base.substr(0, pos);
    }
    aux.push_back("torchvision/" + base);
    aux.push_back("pytorch_nndct/quantization");
  } else {
    aux.push_back("tensorflow/compiler/vitis");
  }
  return aux;
}

XModel build_classifier(const std::string& name, const std::string& framework,
                        std::uint32_t c1, std::uint32_t c2, std::uint32_t c3,
                        std::uint32_t classes) {
  // Deterministic per-name weights: profiling transfers across runs.
  util::Prng prng{util::crc32(name) * 0x9e3779b97f4a7c15ULL + 1};
  const TensorShape input{3, 64, 64};
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(conv(prng, 3, c1, 3, 2, 1));       // 64 -> 32
  layers.push_back(std::make_unique<MaxPool2d>(2, 2)); // 32 -> 16
  layers.push_back(conv(prng, c1, c2, 3, 2, 1));      // 16 -> 8
  layers.push_back(conv(prng, c2, c3, 3, 2, 1));      // 8 -> 4
  layers.push_back(std::make_unique<GlobalAvgPool>());
  layers.push_back(dense(prng, c3, classes));
  return XModel{name, framework, input, aux_strings_for(name, framework),
                std::move(layers)};
}

XModel build_detector(const std::string& name, const std::string& framework,
                      std::uint32_t c1, std::uint32_t c2,
                      std::uint32_t outputs) {
  util::Prng prng{util::crc32(name) * 0x9e3779b97f4a7c15ULL + 1};
  const TensorShape input{3, 64, 64};
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(conv(prng, 3, c1, 3, 2, 1));        // 64 -> 32
  layers.push_back(conv(prng, c1, c2, 3, 2, 1));       // 32 -> 16
  layers.push_back(std::make_unique<MaxPool2d>(2, 2)); // 16 -> 8
  layers.push_back(std::make_unique<GlobalAvgPool>());
  layers.push_back(dense(prng, c2, outputs));
  return XModel{name, framework, input, aux_strings_for(name, framework),
                std::move(layers)};
}

}  // namespace

const std::vector<std::string>& zoo_model_names() {
  static const std::vector<std::string> kNames{
      "resnet50_pt", "squeezenet_pt", "inception_v1_tf", "mobilenet_v2_tf",
      "yolov3_tiny_tf",
  };
  return kNames;
}

bool zoo_has_model(const std::string& name) {
  for (const auto& n : zoo_model_names()) {
    if (n == name) return true;
  }
  return false;
}

XModel make_zoo_model(const std::string& name) {
  // Channel widths differ per model so parameter-blob sizes (and thus heap
  // layouts) differ — model identity is observable both from strings and
  // from layout, as in the paper.
  if (name == "resnet50_pt") {
    return build_classifier(name, "pt", 16, 32, 64, 10);
  }
  if (name == "squeezenet_pt") {
    return build_classifier(name, "pt", 8, 16, 24, 10);
  }
  if (name == "inception_v1_tf") {
    return build_classifier(name, "tf", 12, 24, 48, 10);
  }
  if (name == "mobilenet_v2_tf") {
    return build_classifier(name, "tf", 8, 24, 32, 10);
  }
  if (name == "yolov3_tiny_tf") {
    return build_detector(name, "tf", 16, 32, 18);
  }
  throw std::invalid_argument("unknown zoo model: " + name);
}

}  // namespace msa::vitis
