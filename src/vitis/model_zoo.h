// The model zoo: small stand-ins for the Vitis-AI model library entries
// the paper profiles. Each zoo entry has the real entry's name and
// metadata-string footprint (which is what the attack identifies models
// by) and a scaled-down but fully functional quantized network (so
// weights, activations and outputs are genuine computed data, not filler).
//
// Weights are generated deterministically from the model name, so two
// runs of "resnet50_pt" stage byte-identical parameter blobs — the
// property that makes the paper's offline profiling transferable from the
// attacker's own runs to the victim's.
#pragma once

#include <string>
#include <vector>

#include "vitis/xmodel.h"

namespace msa::vitis {

/// Names of the bundled models, mirroring Vitis-AI model-zoo entries.
[[nodiscard]] const std::vector<std::string>& zoo_model_names();

/// True if `name` is a bundled zoo model.
[[nodiscard]] bool zoo_has_model(const std::string& name);

/// Builds a zoo model by name. Throws std::invalid_argument for unknown
/// names. Same name -> identical model (deterministic weights).
[[nodiscard]] XModel make_zoo_model(const std::string& name);

}  // namespace msa::vitis
