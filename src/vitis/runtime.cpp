#include "vitis/runtime.h"

#include "util/log.h"

namespace msa::vitis {

const XModel& VitisAiRuntime::model(const std::string& name) {
  const auto it = cache_.find(name);
  if (it != cache_.end()) return it->second;
  return cache_.emplace(name, make_zoo_model(name)).first->second;
}

VictimRun VitisAiRuntime::launch(os::Uid uid, const std::string& model_name,
                                 const img::Image& input, std::string tty,
                                 os::Pid ppid) {
  const XModel& m = model(model_name);

  const os::Pid pid = system_.spawn(
      uid,
      {"./" + model_name, m.install_path(), "../images/001.jpg"},
      std::move(tty), ppid);

  // The Vitis-AI stack maps the GPU render node (visible in the paper's
  // Fig. 7 maps listing right after the heap).
  system_.mmap_region(pid, 0xffffb13b5000ULL, 0x586a000, "/dev/dri/renderD128");

  system_.process(pid).set_cpu_percent(18);  // matches Fig. 6's C column

  DpuRunner runner{system_};
  const RunResult r = runner.run(pid, m, input);

  system_.process(pid).set_cpu_percent(0);
  system_.process(pid).set_state(os::ProcState::kSleeping);

  VictimRun run;
  run.pid = pid;
  run.model_name = model_name;
  run.heap_base = system_.process(pid).heap_base();
  run.layout = r.layout;
  run.scores = r.scores;
  run.top_class = r.top_class;
  util::Log::info("vitis: ran " + model_name + " in pid " + std::to_string(pid));
  return run;
}

}  // namespace msa::vitis
