// VitisAiRuntime: the victim-side entry point tying the OS simulator to
// the model zoo. launch() reproduces what the paper's victim terminal
// does: start "./resnet50_pt <xmodel-path> <image>", stage and execute the
// model on the DPU, and leave the process alive until the caller
// terminates it (so the attacker can observe maps/pagemap first).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "img/image.h"
#include "os/system.h"
#include "vitis/dpu_runner.h"
#include "vitis/model_zoo.h"

namespace msa::vitis {

struct VictimRun {
  os::Pid pid = 0;
  std::string model_name;
  mem::VirtAddr heap_base = 0;
  HeapLayout layout;
  std::vector<float> scores;
  std::size_t top_class = 0;
};

class VitisAiRuntime {
 public:
  explicit VitisAiRuntime(os::PetaLinuxSystem& system) : system_{system} {}

  /// Lazily built, cached zoo model.
  [[nodiscard]] const XModel& model(const std::string& name);

  [[nodiscard]] static std::vector<std::string> available_models() {
    return zoo_model_names();
  }

  /// Spawns the victim process and runs the model on `input`. The process
  /// stays alive (state kSleeping, as if waiting at a prompt for the next
  /// frame) until the caller invokes system().terminate(pid).
  VictimRun launch(os::Uid uid, const std::string& model_name,
                   const img::Image& input, std::string tty, os::Pid ppid = 1);

  [[nodiscard]] os::PetaLinuxSystem& system() noexcept { return system_; }

 private:
  os::PetaLinuxSystem& system_;
  std::map<std::string, XModel> cache_;
};

}  // namespace msa::vitis
