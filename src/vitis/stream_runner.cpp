#include "vitis/stream_runner.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "util/crc32.h"
#include "vitis/dpu_runner.h"
#include "vitis/tensor.h"

namespace msa::vitis {

namespace {
std::uint64_t align16(std::uint64_t v) { return (v + 15) & ~std::uint64_t{15}; }
}  // namespace

StreamLayout StreamRunner::layout_for(const XModel& model,
                                      std::uint32_t frame_width,
                                      std::uint32_t frame_height,
                                      std::uint32_t ring_frames) {
  if (ring_frames == 0) {
    throw std::invalid_argument("StreamRunner: ring_frames must be positive");
  }
  StreamLayout lay;
  lay.ring_frames = ring_frames;
  lay.frame_width = frame_width;
  lay.frame_height = frame_height;
  lay.num_classes = model.num_classes();
  lay.meta_off = 0;
  lay.desc_ring_off = 64;
  lay.strings_off = align16(lay.desc_ring_off +
                            ring_frames * DpuDescriptor::kEncodedSize);
  lay.xmodel_off =
      align16(lay.strings_off + DpuRunner::staged_strings(model).size());
  lay.frame_ring_off = align16(lay.xmodel_off + model.serialize().size());
  lay.output_ring_off =
      align16(lay.frame_ring_off + ring_frames * lay.frame_bytes());
  lay.total_bytes = align16(lay.output_ring_off +
                            ring_frames * lay.num_classes * sizeof(float));
  return lay;
}

StreamRunResult StreamRunner::run(os::Pid pid, const XModel& model,
                                  std::span<const img::Image> frames,
                                  std::uint32_t ring_frames) {
  if (frames.empty()) {
    throw std::invalid_argument("StreamRunner: no frames");
  }
  const std::uint32_t w = frames[0].width();
  const std::uint32_t h = frames[0].height();
  for (const auto& f : frames) {
    if (f.width() != w || f.height() != h) {
      throw std::invalid_argument("StreamRunner: mixed frame geometry");
    }
  }

  const StreamLayout lay = layout_for(model, w, h, ring_frames);
  const mem::VirtAddr heap = system_.sbrk(pid, lay.total_bytes);

  // One-time staging: metadata strings + serialized model.
  system_.write_virt(pid, heap + lay.strings_off,
                     DpuRunner::staged_strings(model));
  system_.write_virt(pid, heap + lay.xmodel_off, model.serialize());

  StreamRunResult result;
  result.layout = lay;
  result.top_classes.reserve(frames.size());

  for (std::size_t i = 0; i < frames.size(); ++i) {
    const std::uint32_t slot = static_cast<std::uint32_t>(i % ring_frames);

    // Stage the frame and its descriptor into the ring slot.
    system_.write_virt(pid, heap + lay.frame_slot_off(slot),
                       frames[i].to_rgb_bytes());
    DpuDescriptor desc;
    desc.input_va = heap + lay.frame_slot_off(slot);
    desc.input_width = w;
    desc.input_height = h;
    desc.output_va = heap + lay.output_slot_off(slot);
    desc.output_len = lay.num_classes;
    desc.model_crc = util::crc32(model.name());
    system_.write_virt(pid, heap + lay.desc_slot_off(slot), desc.encode());

    // Read the frame back from device memory, infer, stage the output.
    std::vector<std::uint8_t> staged(
        static_cast<std::size_t>(lay.frame_bytes()));
    system_.read_virt(pid, heap + lay.frame_slot_off(slot), staged);
    const img::Image from_heap = img::Image::from_rgb_bytes(staged, w, h);
    const img::Image pre = img::resize_nearest(
        from_heap, model.input_shape().w, model.input_shape().h);
    const auto scores = model.infer(tensor_from_image(pre));
    result.top_classes.push_back(static_cast<std::size_t>(
        std::max_element(scores.begin(), scores.end()) - scores.begin()));

    std::vector<std::uint8_t> out_bytes(scores.size() * sizeof(float));
    std::memcpy(out_bytes.data(), scores.data(), out_bytes.size());
    system_.write_virt(pid, heap + lay.output_slot_off(slot), out_bytes);
  }
  return result;
}

}  // namespace msa::vitis
