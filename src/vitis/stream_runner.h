// StreamRunner: a video-pipeline victim. The paper's intro motivates
// FPGA acceleration with computer-vision workloads; deployed pipelines
// process a *stream* of frames through a ring of reusable buffers, not a
// single image. The ring amplifies the vulnerability: after termination
// the residue holds the last `ring_frames` frames the camera saw, each
// described by its own DPU descriptor.
//
// Heap layout (fixed given model/geometry/ring — profilable like the
// single-shot layout):
//
//   +------------------+  meta_off          malloc-style metadata
//   +------------------+  desc_ring_off     ring_frames descriptors
//   +------------------+  strings_off       runtime metadata strings
//   +------------------+  xmodel_off        serialized model
//   +------------------+  frame_ring_off    ring_frames RGB888 slots
//   +------------------+  output_ring_off   ring_frames score vectors
//   +------------------+  total_bytes
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "img/image.h"
#include "os/system.h"
#include "vitis/dpu_descriptor.h"
#include "vitis/xmodel.h"

namespace msa::vitis {

struct StreamLayout {
  std::uint64_t total_bytes = 0;
  std::uint64_t meta_off = 0;
  std::uint64_t desc_ring_off = 0;
  std::uint64_t strings_off = 0;
  std::uint64_t xmodel_off = 0;
  std::uint64_t frame_ring_off = 0;
  std::uint64_t output_ring_off = 0;
  std::uint32_t ring_frames = 0;
  std::uint32_t frame_width = 0;
  std::uint32_t frame_height = 0;
  std::uint32_t num_classes = 0;

  [[nodiscard]] std::uint64_t frame_bytes() const noexcept {
    return static_cast<std::uint64_t>(frame_width) * frame_height * 3;
  }
  [[nodiscard]] std::uint64_t frame_slot_off(std::uint32_t slot) const noexcept {
    return frame_ring_off + slot * frame_bytes();
  }
  [[nodiscard]] std::uint64_t desc_slot_off(std::uint32_t slot) const noexcept {
    return desc_ring_off + slot * DpuDescriptor::kEncodedSize;
  }
  [[nodiscard]] std::uint64_t output_slot_off(std::uint32_t slot) const noexcept {
    return output_ring_off + slot * num_classes * sizeof(float);
  }

  bool operator==(const StreamLayout&) const = default;
};

struct StreamRunResult {
  StreamLayout layout;
  std::vector<std::size_t> top_classes;  ///< per processed frame, in order
};

class StreamRunner {
 public:
  explicit StreamRunner(os::PetaLinuxSystem& system) : system_{system} {}

  /// Deterministic layout for (model, frame geometry, ring depth).
  [[nodiscard]] static StreamLayout layout_for(const XModel& model,
                                               std::uint32_t frame_width,
                                               std::uint32_t frame_height,
                                               std::uint32_t ring_frames);

  /// Processes every frame through the model, cycling the ring. All
  /// frames must share the geometry of frames[0]. Throws
  /// std::invalid_argument on empty input, zero ring, or mixed geometry.
  StreamRunResult run(os::Pid pid, const XModel& model,
                      std::span<const img::Image> frames,
                      std::uint32_t ring_frames);

 private:
  os::PetaLinuxSystem& system_;
};

}  // namespace msa::vitis
