#include "vitis/tensor.h"

#include <stdexcept>

namespace msa::vitis {

Tensor::Tensor(TensorShape shape, std::int8_t fill) : shape_{shape} {
  if (shape.volume() == 0) throw std::invalid_argument("Tensor: empty shape");
  data_.assign(shape.volume(), fill);
}

Tensor tensor_from_image(const img::Image& image) {
  const std::uint32_t h = image.height();
  const std::uint32_t w = image.width();
  Tensor t{TensorShape{3, h, w}};
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  const img::Rgb* src = image.pixels().data();
  std::int8_t* r = t.data().data();
  std::int8_t* g = r + plane;
  std::int8_t* b = g + plane;
  for (std::size_t i = 0; i < plane; ++i) {
    r[i] = static_cast<std::int8_t>(static_cast<int>(src[i].r) - 128);
    g[i] = static_cast<std::int8_t>(static_cast<int>(src[i].g) - 128);
    b[i] = static_cast<std::int8_t>(static_cast<int>(src[i].b) - 128);
  }
  return t;
}

}  // namespace msa::vitis
