#include "vitis/tensor.h"

#include <stdexcept>

namespace msa::vitis {

Tensor::Tensor(TensorShape shape, std::int8_t fill) : shape_{shape} {
  if (shape.volume() == 0) throw std::invalid_argument("Tensor: empty shape");
  data_.assign(shape.volume(), fill);
}

std::int8_t Tensor::at(std::uint32_t c, std::uint32_t y, std::uint32_t x) const {
  if (c >= shape_.c || y >= shape_.h || x >= shape_.w) {
    throw std::out_of_range("Tensor::at");
  }
  return data_[(static_cast<std::size_t>(c) * shape_.h + y) * shape_.w + x];
}

void Tensor::set(std::uint32_t c, std::uint32_t y, std::uint32_t x,
                 std::int8_t v) {
  if (c >= shape_.c || y >= shape_.h || x >= shape_.w) {
    throw std::out_of_range("Tensor::set");
  }
  data_[(static_cast<std::size_t>(c) * shape_.h + y) * shape_.w + x] = v;
}

Tensor tensor_from_image(const img::Image& image) {
  Tensor t{TensorShape{3, image.height(), image.width()}};
  for (std::uint32_t y = 0; y < image.height(); ++y) {
    for (std::uint32_t x = 0; x < image.width(); ++x) {
      const img::Rgb p = image.at(x, y);
      t.set(0, y, x, static_cast<std::int8_t>(static_cast<int>(p.r) - 128));
      t.set(1, y, x, static_cast<std::int8_t>(static_cast<int>(p.g) - 128));
      t.set(2, y, x, static_cast<std::int8_t>(static_cast<int>(p.b) - 128));
    }
  }
  return t;
}

}  // namespace msa::vitis
