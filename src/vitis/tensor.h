// Quantized (int8) CHW tensor, the data type our DPU-analogue inference
// engine computes on. The Vitis-AI DPU is an int8 accelerator; modelling
// that keeps staged weight/activation buffers byte-comparable with what a
// real deployment would leave in DRAM.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "img/image.h"

namespace msa::vitis {

struct TensorShape {
  std::uint32_t c = 0;
  std::uint32_t h = 0;
  std::uint32_t w = 0;

  [[nodiscard]] std::size_t volume() const noexcept {
    return static_cast<std::size_t>(c) * h * w;
  }
  bool operator==(const TensorShape&) const = default;
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(TensorShape shape, std::int8_t fill = 0);

  [[nodiscard]] const TensorShape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  // at/set stay bounds-checked but live in the header: inference kernels
  // used to spend a double-digit share of a trial on out-of-line calls
  // to these two accessors (billions of calls per sweep).
  [[nodiscard]] std::int8_t at(std::uint32_t c, std::uint32_t y,
                               std::uint32_t x) const {
    if (c >= shape_.c || y >= shape_.h || x >= shape_.w) {
      throw std::out_of_range("Tensor::at");
    }
    return data_[(static_cast<std::size_t>(c) * shape_.h + y) * shape_.w + x];
  }
  void set(std::uint32_t c, std::uint32_t y, std::uint32_t x, std::int8_t v) {
    if (c >= shape_.c || y >= shape_.h || x >= shape_.w) {
      throw std::out_of_range("Tensor::set");
    }
    data_[(static_cast<std::size_t>(c) * shape_.h + y) * shape_.w + x] = v;
  }

  [[nodiscard]] const std::vector<std::int8_t>& data() const noexcept {
    return data_;
  }
  [[nodiscard]] std::vector<std::int8_t>& data() noexcept { return data_; }

 private:
  TensorShape shape_;
  std::vector<std::int8_t> data_;
};

/// Quantizes an RGB image to a 3xHxW int8 tensor: channel value v maps to
/// v - 128 (symmetric zero-point), matching typical DPU preprocessing.
[[nodiscard]] Tensor tensor_from_image(const img::Image& image);

}  // namespace msa::vitis
