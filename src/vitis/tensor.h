// Quantized (int8) CHW tensor, the data type our DPU-analogue inference
// engine computes on. The Vitis-AI DPU is an int8 accelerator; modelling
// that keeps staged weight/activation buffers byte-comparable with what a
// real deployment would leave in DRAM.
#pragma once

#include <cstdint>
#include <vector>

#include "img/image.h"

namespace msa::vitis {

struct TensorShape {
  std::uint32_t c = 0;
  std::uint32_t h = 0;
  std::uint32_t w = 0;

  [[nodiscard]] std::size_t volume() const noexcept {
    return static_cast<std::size_t>(c) * h * w;
  }
  bool operator==(const TensorShape&) const = default;
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(TensorShape shape, std::int8_t fill = 0);

  [[nodiscard]] const TensorShape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] std::int8_t at(std::uint32_t c, std::uint32_t y,
                               std::uint32_t x) const;
  void set(std::uint32_t c, std::uint32_t y, std::uint32_t x, std::int8_t v);

  [[nodiscard]] const std::vector<std::int8_t>& data() const noexcept {
    return data_;
  }
  [[nodiscard]] std::vector<std::int8_t>& data() noexcept { return data_; }

 private:
  TensorShape shape_;
  std::vector<std::int8_t> data_;
};

/// Quantizes an RGB image to a 3xHxW int8 tensor: channel value v maps to
/// v - 128 (symmetric zero-point), matching typical DPU preprocessing.
[[nodiscard]] Tensor tensor_from_image(const img::Image& image);

}  // namespace msa::vitis
