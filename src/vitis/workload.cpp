#include "vitis/workload.h"

#include <algorithm>
#include <stdexcept>

#include "vitis/model_zoo.h"

namespace msa::vitis {

std::vector<WorkloadEvent> WorkloadGenerator::generate(
    const WorkloadParams& params) {
  if (params.events == 0 || params.tenants == 0) {
    throw std::invalid_argument("WorkloadGenerator: empty workload");
  }
  const auto& models = zoo_model_names();
  std::vector<WorkloadEvent> events;
  events.reserve(params.events);

  double clock = 0.0;
  for (std::size_t i = 0; i < params.events; ++i) {
    // Exponential-ish inter-arrival via inverse transform on uniform01.
    const double u = prng_.uniform01();
    clock += params.mean_gap_s * (0.25 + 1.5 * u);

    WorkloadEvent e;
    e.start_s = clock;
    e.duration_s = params.mean_duration_s * (0.5 + prng_.uniform01());
    e.uid = static_cast<os::Uid>(1000 + prng_.below(params.tenants));
    e.model = models[prng_.below(models.size())];
    e.image_seed = prng_();
    e.image_side = params.image_side;
    events.push_back(std::move(e));
  }
  std::sort(events.begin(), events.end(),
            [](const WorkloadEvent& a, const WorkloadEvent& b) {
              return a.start_s < b.start_s;
            });
  return events;
}

std::vector<ExecutedEvent> WorkloadExecutor::run(
    const std::vector<WorkloadEvent>& events) {
  if (events.empty()) {
    throw std::invalid_argument("WorkloadExecutor: empty schedule");
  }

  struct Active {
    double end_s;
    os::Pid pid;
  };

  std::vector<ExecutedEvent> results;
  results.reserve(events.size());
  std::vector<Active> active;
  double now = 0.0;

  auto reap_until = [&](double t) {
    // Terminate every active job whose end time has passed, in end order.
    for (;;) {
      auto next = std::min_element(
          active.begin(), active.end(),
          [](const Active& a, const Active& b) { return a.end_s < b.end_s; });
      if (next == active.end() || next->end_s > t) break;
      system_.advance_time(
          static_cast<std::uint64_t>(std::max(0.0, next->end_s - now)));
      now = std::max(now, next->end_s);
      system_.terminate(next->pid);
      active.erase(next);
    }
  };

  for (const WorkloadEvent& e : events) {
    if (!zoo_has_model(e.model)) {
      throw std::invalid_argument("WorkloadExecutor: unknown model " + e.model);
    }
    reap_until(e.start_s);
    system_.advance_time(
        static_cast<std::uint64_t>(std::max(0.0, e.start_s - now)));
    now = std::max(now, e.start_s);

    ExecutedEvent rec;
    rec.event = e;
    rec.input = img::make_test_image(e.image_side, e.image_side, e.image_seed);
    const VictimRun run =
        runtime_.launch(e.uid, e.model, rec.input, "pts/1");
    rec.pid = run.pid;
    rec.top_class = run.top_class;
    results.push_back(std::move(rec));
    active.push_back(Active{e.end_s(), run.pid});
  }
  // Drain the tail.
  reap_until(1e300);
  return results;
}

}  // namespace msa::vitis
