// Multi-tenant workload generation and replay.
//
// FaaS boards (paper §I: "FPGA-as-a-Service") see a churn of tenant jobs:
// different users, models, and inputs arriving over hours. The residue
// question then becomes cumulative — after a day of churn, how much of
// the board's history can one late scan recover? WorkloadGenerator
// produces deterministic synthetic schedules; WorkloadExecutor replays
// them on a PetaLinuxSystem, launching and terminating victims at their
// scheduled times, and returns the ground truth for scoring.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "img/image.h"
#include "os/system.h"
#include "vitis/runtime.h"

namespace msa::vitis {

struct WorkloadEvent {
  double start_s = 0.0;     ///< launch time relative to schedule start
  double duration_s = 0.0;  ///< lifetime until termination
  os::Uid uid = 0;
  std::string model;
  std::uint64_t image_seed = 0;
  std::uint32_t image_side = 64;

  [[nodiscard]] double end_s() const noexcept { return start_s + duration_s; }
};

struct WorkloadParams {
  std::size_t events = 16;
  std::size_t tenants = 3;          ///< distinct uids (1000, 1001, ...)
  double mean_gap_s = 30.0;         ///< inter-arrival spacing
  double mean_duration_s = 20.0;    ///< job lifetime
  std::uint32_t image_side = 64;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(std::uint64_t seed) : prng_{seed} {}

  /// Events are returned sorted by start time; models cycle through the
  /// zoo, tenants round-robin with jitter. Deterministic per seed.
  [[nodiscard]] std::vector<WorkloadEvent> generate(const WorkloadParams& params);

 private:
  util::Prng prng_;
};

/// One completed job with its ground truth, for scoring scans against.
struct ExecutedEvent {
  WorkloadEvent event;
  os::Pid pid = 0;
  img::Image input;
  std::size_t top_class = 0;
};

class WorkloadExecutor {
 public:
  WorkloadExecutor(os::PetaLinuxSystem& system, VitisAiRuntime& runtime)
      : system_{system}, runtime_{runtime} {}

  /// Replays the schedule to completion: every event is launched at its
  /// start time and terminated after its duration (the simulated clock
  /// advances accordingly). Returns one record per event, in start order.
  /// Throws std::invalid_argument on an empty schedule or unknown model.
  std::vector<ExecutedEvent> run(const std::vector<WorkloadEvent>& events);

 private:
  os::PetaLinuxSystem& system_;
  VitisAiRuntime& runtime_;
};

}  // namespace msa::vitis
