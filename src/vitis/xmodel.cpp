#include "vitis/xmodel.h"

#include <array>
#include <stdexcept>

#include "util/crc32.h"

namespace msa::vitis {

namespace {

constexpr std::array<std::uint8_t, 6> kMagic{'X', 'M', 'D', 'L', '1', '\0'};
constexpr std::uint16_t kVersion = 1;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

std::uint16_t get_u16(std::span<const std::uint8_t> blob, std::size_t& pos) {
  if (pos + 2 > blob.size()) throw std::invalid_argument("xmodel: truncated u16");
  const std::uint16_t v = static_cast<std::uint16_t>(
      blob[pos] | (static_cast<std::uint16_t>(blob[pos + 1]) << 8));
  pos += 2;
  return v;
}

std::uint32_t get_u32(std::span<const std::uint8_t> blob, std::size_t& pos) {
  if (pos + 4 > blob.size()) throw std::invalid_argument("xmodel: truncated u32");
  const std::uint32_t v = static_cast<std::uint32_t>(blob[pos]) |
                          (static_cast<std::uint32_t>(blob[pos + 1]) << 8) |
                          (static_cast<std::uint32_t>(blob[pos + 2]) << 16) |
                          (static_cast<std::uint32_t>(blob[pos + 3]) << 24);
  pos += 4;
  return v;
}

std::string get_string(std::span<const std::uint8_t> blob, std::size_t& pos) {
  const std::uint32_t len = get_u32(blob, pos);
  if (len > blob.size() || pos + len > blob.size()) {
    throw std::invalid_argument("xmodel: truncated string");
  }
  std::string s{blob.begin() + static_cast<std::ptrdiff_t>(pos),
                blob.begin() + static_cast<std::ptrdiff_t>(pos + len)};
  pos += len;
  return s;
}

}  // namespace

XModel::XModel(std::string name, std::string framework, TensorShape input_shape,
               std::vector<std::string> aux_strings,
               std::vector<std::unique_ptr<Layer>> layers)
    : name_{std::move(name)},
      framework_{std::move(framework)},
      input_shape_{input_shape},
      aux_strings_{std::move(aux_strings)},
      layers_{std::move(layers)} {
  if (name_.empty()) throw std::invalid_argument("XModel: empty name");
  if (layers_.empty()) throw std::invalid_argument("XModel: no layers");
  // Validate the layer chain composes.
  TensorShape s = input_shape_;
  for (const auto& layer : layers_) s = layer->output_shape(s);
}

std::string XModel::install_path() const {
  return "/usr/share/vitis_ai_library/models/" + name_ + "/" + name_ + ".xmodel";
}

std::size_t XModel::param_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer->param_bytes();
  return total;
}

std::uint32_t XModel::num_classes() const {
  TensorShape s = input_shape_;
  for (const auto& layer : layers_) s = layer->output_shape(s);
  return s.c;
}

std::vector<float> XModel::infer(const Tensor& input) const {
  if (!(input.shape() == input_shape_)) {
    throw std::invalid_argument("XModel::infer: input shape mismatch");
  }
  Tensor t = input;
  for (const auto& layer : layers_) t = layer->forward(t);
  return softmax(t);
}

std::vector<std::uint8_t> XModel::serialize() const {
  // Range-construct rather than insert into an empty vector: GCC 12's
  // -Wstringop-overflow misfires on the latter at -O2 and the build is
  // warning-clean under -Werror.
  std::vector<std::uint8_t> out(kMagic.begin(), kMagic.end());
  put_u16(out, kVersion);
  put_string(out, name_);
  put_string(out, framework_);
  put_u32(out, static_cast<std::uint32_t>(aux_strings_.size()));
  for (const auto& s : aux_strings_) put_string(out, s);
  put_u32(out, input_shape_.c);
  put_u32(out, input_shape_.h);
  put_u32(out, input_shape_.w);
  put_u32(out, static_cast<std::uint32_t>(layers_.size()));
  for (const auto& layer : layers_) layer->serialize(out);
  put_u32(out, util::crc32(out));
  return out;
}

XModel XModel::deserialize_at(std::span<const std::uint8_t> blob,
                              std::size_t offset, std::size_t* consumed) {
  std::size_t pos = offset;
  if (blob.size() < offset || blob.size() - offset < kMagic.size() + 2 + 4) {
    throw std::invalid_argument("xmodel: too short");
  }
  for (const std::uint8_t m : kMagic) {
    if (blob[pos++] != m) throw std::invalid_argument("xmodel: bad magic");
  }
  const std::uint16_t version = get_u16(blob, pos);
  if (version != kVersion) throw std::invalid_argument("xmodel: bad version");

  std::string name = get_string(blob, pos);
  std::string framework = get_string(blob, pos);
  const std::uint32_t n_aux = get_u32(blob, pos);
  if (n_aux > 1024) throw std::invalid_argument("xmodel: implausible aux count");
  std::vector<std::string> aux;
  aux.reserve(n_aux);
  for (std::uint32_t i = 0; i < n_aux; ++i) aux.push_back(get_string(blob, pos));
  TensorShape in_shape;
  in_shape.c = get_u32(blob, pos);
  in_shape.h = get_u32(blob, pos);
  in_shape.w = get_u32(blob, pos);
  const std::uint32_t n_layers = get_u32(blob, pos);
  if (n_layers > 1024) throw std::invalid_argument("xmodel: implausible layer count");
  std::vector<std::unique_ptr<Layer>> layers;
  layers.reserve(n_layers);
  for (std::uint32_t i = 0; i < n_layers; ++i) {
    layers.push_back(deserialize_layer(blob, pos));
  }

  // The container ends with a CRC-32 over everything since `offset`.
  const std::uint32_t stored_crc = get_u32(blob, pos);
  const std::uint32_t computed =
      util::crc32(blob.subspan(offset, pos - 4 - offset));
  if (stored_crc != computed) throw std::invalid_argument("xmodel: CRC mismatch");

  if (consumed) *consumed = pos - offset;
  return XModel{std::move(name), std::move(framework), in_shape, std::move(aux),
                std::move(layers)};
}

XModel XModel::deserialize(const std::vector<std::uint8_t>& blob) {
  std::size_t consumed = 0;
  XModel m = deserialize_at(blob, 0, &consumed);
  if (consumed != blob.size()) {
    throw std::invalid_argument("xmodel: trailing bytes");
  }
  return m;
}

const std::array<std::uint8_t, 6>& XModel::magic() noexcept { return kMagic; }

}  // namespace msa::vitis
