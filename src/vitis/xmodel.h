// XModel: our analogue of the Vitis-AI .xmodel container.
//
// An xmodel bundles the network topology, the quantized parameters, and a
// set of metadata strings (install path, framework tag, companion library
// names). When the runtime executes a model, all of this lands in the
// process heap — and those metadata strings are precisely what the
// paper's Step 4.a greps out of the scraped residue to identify which
// model the victim ran ("resnet50_pt" in Fig. 11).
//
// The serialized form is deterministic: same model name + seed -> same
// bytes, which lets tests assert byte-exact residue recovery via CRC.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "vitis/layers.h"

namespace msa::vitis {

class XModel {
 public:
  XModel(std::string name, std::string framework, TensorShape input_shape,
         std::vector<std::string> aux_strings,
         std::vector<std::unique_ptr<Layer>> layers);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& framework() const noexcept {
    return framework_;
  }
  [[nodiscard]] const TensorShape& input_shape() const noexcept {
    return input_shape_;
  }
  /// Metadata strings staged into memory alongside the weights: install
  /// path, framework-qualified names, companion shared-object names.
  [[nodiscard]] const std::vector<std::string>& aux_strings() const noexcept {
    return aux_strings_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Layer>>& layers() const noexcept {
    return layers_;
  }

  /// Canonical install path, mirroring the Vitis-AI layout the paper
  /// shows: /usr/share/vitis_ai_library/models/<name>/<name>.xmodel
  [[nodiscard]] std::string install_path() const;

  /// Total parameter bytes across layers.
  [[nodiscard]] std::size_t param_bytes() const noexcept;

  /// Number of classes (output width of the final layer).
  [[nodiscard]] std::uint32_t num_classes() const;

  /// Runs the network; returns softmax class probabilities.
  [[nodiscard]] std::vector<float> infer(const Tensor& input) const;

  /// Serialized container: magic, version, name, framework, aux strings,
  /// input shape, layers (with parameters), trailing CRC-32.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Parses a serialized container; validates magic and CRC. Requires the
  /// blob to be exactly one container.
  [[nodiscard]] static XModel deserialize(const std::vector<std::uint8_t>& blob);

  /// Forensic variant: parses a container that begins at blob[offset] and
  /// may be followed by unrelated bytes (memory residue). On success sets
  /// *consumed to the container length. Throws std::invalid_argument on
  /// malformed input or CRC mismatch.
  [[nodiscard]] static XModel deserialize_at(std::span<const std::uint8_t> blob,
                                             std::size_t offset,
                                             std::size_t* consumed = nullptr);

  /// The 6-byte container magic ("XMDL1\0"); exposed so forensic tooling
  /// (deep model identification from residue) can scan for it.
  [[nodiscard]] static const std::array<std::uint8_t, 6>& magic() noexcept;

 private:
  std::string name_;
  std::string framework_;
  TensorShape input_shape_;
  std::vector<std::string> aux_strings_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace msa::vitis
