#include "attack/address_resolver.h"

#include <gtest/gtest.h>

namespace msa::attack {
namespace {

struct Fixture {
  os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
  dbg::SystemDebugger dbg{sys, 1001};
  os::Pid victim = 0;

  explicit Fixture(std::uint64_t heap_pages = 4) {
    sys.add_user(1000, "victim");
    sys.add_user(1001, "attacker");
    victim = sys.spawn(1000, {"./resnet50_pt"}, "pts/1");
    (void)sys.sbrk(victim, heap_pages * mem::kPageSize);
  }
};

TEST(AddressResolver, ResolvesEveryHeapPage) {
  Fixture f;
  AddressResolver resolver{f.dbg};
  const ResolvedTarget t = resolver.resolve_heap(f.victim);
  EXPECT_EQ(t.pid, f.victim);
  EXPECT_EQ(t.heap_start, f.sys.process(f.victim).heap_base());
  EXPECT_EQ(t.heap_bytes(), 4 * mem::kPageSize);
  EXPECT_EQ(t.page_pa.size(), 4u);
  EXPECT_EQ(t.pages_resolved(), 4u);
}

TEST(AddressResolver, TranslationsMatchGroundTruth) {
  Fixture f;
  AddressResolver resolver{f.dbg};
  const ResolvedTarget t = resolver.resolve_heap(f.victim);
  const auto& table = f.sys.process(f.victim).page_table();
  for (std::size_t i = 0; i < t.page_pa.size(); ++i) {
    const mem::VirtAddr va = t.heap_start + i * mem::kPageSize;
    EXPECT_EQ(t.page_pa[i], table.translate(va));
  }
}

TEST(AddressResolver, MapsTextIsCaptured) {
  Fixture f;
  AddressResolver resolver{f.dbg};
  const ResolvedTarget t = resolver.resolve_heap(f.victim);
  EXPECT_NE(t.maps_text.find("[heap]"), std::string::npos);
  EXPECT_NE(t.maps_text.find("rw-p"), std::string::npos);
}

TEST(AddressResolver, NoHeapThrows) {
  // A process whose heap never grew has an empty [heap] VMA; resolving
  // yields zero pages rather than an error. A process with *no* heap VMA
  // at all is the error case — simulate by resolving a kernel thread.
  os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
  dbg::SystemDebugger dbg{sys, 0};
  const os::Pid pid = sys.spawn(0, {"[kworker/0:1]"}, "");
  AddressResolver resolver{dbg};
  // Our spawn always creates a heap VMA, so zero-page resolution:
  const ResolvedTarget t = resolver.resolve_heap(pid);
  EXPECT_EQ(t.heap_bytes(), 0u);
  EXPECT_TRUE(t.page_pa.empty());
}

TEST(AddressResolver, SingleVaTranslationMatchesPaperFlow) {
  // Fig. 8: translate the two heap endpoints.
  Fixture f;
  AddressResolver resolver{f.dbg};
  const auto start_pa =
      resolver.virt_to_phys(f.victim, f.sys.process(f.victim).heap_base());
  ASSERT_TRUE(start_pa.has_value());
  EXPECT_EQ(*start_pa & 0xFFF, 0u);
  EXPECT_FALSE(resolver.virt_to_phys(f.victim, 0x10000).has_value());
}

TEST(AddressResolver, DeniedByDebuggerAcl) {
  Fixture f;
  dbg::SystemDebugger locked{f.sys, 1001,
                             dbg::DebuggerAcl{dbg::AclMode::kOwnerOnly}};
  AddressResolver resolver{locked};
  EXPECT_THROW((void)resolver.resolve_heap(f.victim),
               dbg::DebuggerAccessDenied);
}

TEST(AddressResolver, DeniedByProcPolicy) {
  os::SystemConfig cfg = os::SystemConfig::test_small();
  cfg.proc_access = os::ProcAccessPolicy::kOwnerOrRoot;
  os::PetaLinuxSystem sys{cfg};
  sys.add_user(1000, "victim");
  sys.add_user(1001, "attacker");
  const os::Pid victim = sys.spawn(1000, {"app"}, "pts/1");
  dbg::SystemDebugger dbg{sys, 1001};
  AddressResolver resolver{dbg};
  EXPECT_THROW((void)resolver.resolve_heap(victim), os::PermissionError);
}

TEST(AddressResolver, PartialHeapBacking) {
  // Pages beyond brk-backed range: simulate by growing brk without backing
  // is not possible through the public API, so instead verify resolution
  // of a heap whose final page is partially used.
  Fixture f{1};
  (void)f.sys.sbrk(f.victim, 100);  // adds 100 bytes -> one more page
  AddressResolver resolver{f.dbg};
  const ResolvedTarget t = resolver.resolve_heap(f.victim);
  EXPECT_EQ(t.page_pa.size(), 2u);
  EXPECT_EQ(t.pages_resolved(), 2u);
  EXPECT_EQ(t.heap_bytes(), mem::kPageSize + 100);
}

}  // namespace
}  // namespace msa::attack
