// Axis-schema tests: the registry contract every downstream layer leans
// on (grid enumeration, store manifests, stats marginals, diff keys) —
// typed values, CLI parsing, validation messages, and appliers actually
// reaching their ScenarioConfig knob.
#include "campaign/axis.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "campaign/grid.h"

namespace msa::campaign {
namespace {

TEST(AxisValue, FactoriesLabelsAndOrdering) {
  EXPECT_EQ(AxisValue::of_string("baseline").label(), "baseline");
  EXPECT_EQ(AxisValue::of_enum("owner_only").label(), "owner_only");
  EXPECT_EQ(AxisValue::of_number(5.0).label(), "5");
  EXPECT_EQ(AxisValue::of_number(0.5).label(), "0.5");
  EXPECT_EQ(AxisValue::of_bool(true).label(), "1");
  EXPECT_EQ(AxisValue::of_bool(false).label(), "0");

  // The kind is part of identity: string "0" never equals number 0.
  EXPECT_FALSE(AxisValue::of_string("0") == AxisValue::of_number(0.0));
  EXPECT_TRUE(AxisValue::of_number(5.0) == AxisValue::of_number(5.0));

  // Total order: kind first, then payload.
  EXPECT_TRUE(AxisValue::of_string("a") < AxisValue::of_string("b"));
  EXPECT_TRUE(AxisValue::of_number(1.0) < AxisValue::of_number(2.0));
  EXPECT_TRUE(AxisValue::of_bool(false) < AxisValue::of_bool(true));
  EXPECT_TRUE(AxisValue::of_string("z") < AxisValue::of_number(0.0));
}

TEST(AxisCoordinates, FindAndLabel) {
  const std::vector<AxisCoordinate> coords{
      {"defense", AxisValue::of_string("baseline")},
      {"delay_s", AxisValue::of_number(5.0)},
      {"power_cycled", AxisValue::of_bool(true)}};
  ASSERT_NE(find_coord(coords, "delay_s"), nullptr);
  EXPECT_EQ(find_coord(coords, "delay_s")->num, 5.0);
  EXPECT_EQ(find_coord(coords, "scrubber_Bps"), nullptr);
  EXPECT_EQ(coords_label(coords), "defense=baseline/delay_s=5/power_cycled=1");
  EXPECT_EQ(coords_label({}), "");
}

TEST(AxisRegistry, LegacyFourLeadAndEveryAxisIsComplete) {
  const std::vector<AxisDescriptor>& registry = axis_registry();
  ASSERT_GE(registry.size(), 4u);
  for (std::size_t i = 0; i < legacy_axis_names().size(); ++i) {
    EXPECT_EQ(registry[i].name, legacy_axis_names()[i]);
  }
  for (const AxisDescriptor& axis : registry) {
    EXPECT_TRUE(axis.apply) << axis.name;
    EXPECT_TRUE(axis.read) << axis.name;
    EXPECT_FALSE(axis.description.empty()) << axis.name;
    EXPECT_EQ(axis.kind == AxisKind::kEnum, !axis.enum_labels.empty())
        << axis.name;
  }
}

TEST(AxisRegistry, LookupByName) {
  EXPECT_NE(find_axis("power_cycled"), nullptr);
  EXPECT_EQ(find_axis("power_cycled")->kind, AxisKind::kBool);
  EXPECT_EQ(find_axis("no_such_axis"), nullptr);
  EXPECT_EQ(axis_descriptor("firewall").kind, AxisKind::kEnum);
  try {
    (void)axis_descriptor("no_such_axis");
    FAIL() << "unknown axis must throw";
  } catch (const std::invalid_argument& e) {
    // The message lists the known axes so a CLI typo is self-correcting.
    EXPECT_NE(std::string(e.what()).find("known axes:"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("corrupt_fraction"),
              std::string::npos);
  }
}

TEST(AxisParsing, TypedTokensRoundTrip) {
  EXPECT_EQ(parse_axis_value(axis_descriptor("model"), "resnet50_pt").str,
            "resnet50_pt");
  EXPECT_EQ(parse_axis_value(axis_descriptor("delay_s"), "2.5").num, 2.5);
  EXPECT_TRUE(parse_axis_value(axis_descriptor("power_cycled"), "true").flag);
  EXPECT_FALSE(parse_axis_value(axis_descriptor("power_cycled"), "0").flag);
  EXPECT_EQ(parse_axis_value(axis_descriptor("firewall"), "disabled").str,
            "disabled");

  // Partial parses, bad bools, and off-label enums are all rejected with
  // the axis name in the message.
  EXPECT_THROW((void)parse_axis_value(axis_descriptor("delay_s"), "5x"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_axis_value(axis_descriptor("delay_s"), ""),
               std::invalid_argument);
  EXPECT_THROW((void)parse_axis_value(axis_descriptor("power_cycled"), "yes"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_axis_value(axis_descriptor("firewall"), "on"),
               std::invalid_argument);
}

TEST(AxisValidation, RangeAndKindChecksName) {
  // Kind mismatch.
  EXPECT_NE(check_axis_value(axis_descriptor("delay_s"),
                             AxisValue::of_string("5")),
            "");
  // Range violations carry the axis name and offending label.
  const std::string err = check_axis_value(axis_descriptor("corrupt_fraction"),
                                           AxisValue::of_number(1.5));
  EXPECT_NE(err.find("corrupt_fraction"), std::string::npos);
  EXPECT_NE(err.find("1.5"), std::string::npos);
  EXPECT_NE(check_axis_value(axis_descriptor("delay_s"),
                             AxisValue::of_number(-1.0)),
            "");
  EXPECT_NE(check_axis_value(axis_descriptor("delay_s"),
                             AxisValue::of_number(std::nan(""))),
            "");
  EXPECT_NE(check_axis_value(axis_descriptor("retention_half_life_s"),
                             AxisValue::of_number(0.0)),
            "");
  EXPECT_NE(check_axis_value(axis_descriptor("image_width"),
                             AxisValue::of_number(2.5)),
            "");
  EXPECT_NE(check_axis_value(axis_descriptor("image_width"),
                             AxisValue::of_number(0.0)),
            "");
  // In-range values pass.
  EXPECT_EQ(check_axis_value(axis_descriptor("corrupt_fraction"),
                             AxisValue::of_number(0.5)),
            "");
  EXPECT_EQ(check_axis_value(axis_descriptor("image_width"),
                             AxisValue::of_number(96.0)),
            "");
}

TEST(AxisAppliers, ReachTheirConfigKnob) {
  attack::ScenarioConfig cfg;

  axis_descriptor("power_cycled").apply(cfg, AxisValue::of_bool(true));
  EXPECT_TRUE(cfg.power_cycled);
  axis_descriptor("delay_s").apply(cfg, AxisValue::of_number(30.0));
  EXPECT_EQ(cfg.attack_delay_s, 30.0);
  axis_descriptor("image_width").apply(cfg, AxisValue::of_number(128.0));
  EXPECT_EQ(cfg.image_width, 128u);
  // Sweeping the corruption fraction implies corruption itself.
  cfg.corrupt_image = false;
  axis_descriptor("corrupt_fraction").apply(cfg, AxisValue::of_number(0.25));
  EXPECT_TRUE(cfg.corrupt_image);
  EXPECT_EQ(cfg.corrupt_fraction, 0.25);
  axis_descriptor("firewall").apply(cfg, AxisValue::of_enum("live_owner_only"));
  EXPECT_EQ(cfg.firewall, dbg::FirewallMode::kLiveOwnerOnly);

  // read() inverts apply() for every registered axis — the property the
  // fingerprint's base-value folding depends on.
  for (const AxisDescriptor& axis : axis_registry()) {
    if (axis.name == "defense") continue;  // presets are one-way deltas
    const AxisValue v = axis.read(cfg);
    attack::ScenarioConfig copy = cfg;
    axis.apply(copy, v);
    EXPECT_TRUE(axis.read(copy) == v) << axis.name;
  }
}

TEST(GridBuilder, GenericAxisSweepEnumeratesAndApplies) {
  attack::ScenarioConfig base;
  base.system = os::SystemConfig::test_small();
  base.image_width = 48;
  base.image_height = 48;

  GridBuilder grid{base};
  grid.defenses({"baseline"})
      .axis("power_cycled",
            {AxisValue::of_bool(false), AxisValue::of_bool(true)})
      .axis("corrupt_fraction",
            {AxisValue::of_number(0.5), AxisValue::of_number(1.0)});
  EXPECT_EQ(grid.size(), 4u);

  const auto cells = grid.build();
  ASSERT_EQ(cells.size(), 4u);
  // Last axis fastest: (pc=0,cf=0.5), (0,1), (1,0.5), (1,1).
  EXPECT_FALSE(cells[0].config.power_cycled);
  EXPECT_TRUE(cells[3].config.power_cycled);
  EXPECT_EQ(cells[0].config.corrupt_fraction, 0.5);
  EXPECT_EQ(cells[1].config.corrupt_fraction, 1.0);
  EXPECT_TRUE(cells[1].config.corrupt_image);  // implied by the sweep
  ASSERT_NE(cells[2].coord("power_cycled"), nullptr);
  EXPECT_TRUE(cells[2].coord("power_cycled")->flag);

  // The schema lists the six axes in order: legacy four then the two
  // appended sweeps.
  const std::vector<AxisSpec>& schema = grid.axis_schema();
  ASSERT_EQ(schema.size(), 6u);
  EXPECT_EQ(schema[4].name, "power_cycled");
  EXPECT_EQ(schema[5].name, "corrupt_fraction");
}

TEST(GridBuilder, DuplicateAxisValuesRejectedByName) {
  GridBuilder grid{attack::ScenarioConfig{}};
  grid.axis("delay_s", {AxisValue::of_number(5.0), AxisValue::of_number(5.0)});
  try {
    (void)grid.build();
    FAIL() << "duplicate axis values must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("delay_s"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
  }
}

TEST(GridBuilder, BadAxisArgumentsThrow) {
  GridBuilder grid{attack::ScenarioConfig{}};
  EXPECT_THROW(grid.axis("no_such_axis", {AxisValue::of_number(1.0)}),
               std::invalid_argument);
  EXPECT_THROW(grid.axis("power_cycled", {}), std::invalid_argument);
  // Kind mismatch is caught at set time, not build time.
  EXPECT_THROW(grid.axis("power_cycled", {AxisValue::of_number(1.0)}),
               std::invalid_argument);
}

TEST(GridBuilder, FingerprintCoversUnsweptBaseKnobs) {
  attack::ScenarioConfig base;
  base.system = os::SystemConfig::test_small();
  GridBuilder a{base};

  // Same grid over a base differing only in an UNSWEPT registered knob:
  // different experiment, different fingerprint, so the store paths can
  // never collide.
  attack::ScenarioConfig cycled = base;
  cycled.power_cycled = true;
  GridBuilder b{cycled};
  EXPECT_NE(a.fingerprint(), b.fingerprint());

  // Sweeping a non-legacy axis changes the fingerprint too.
  GridBuilder c{base};
  c.axis("power_cycled", {AxisValue::of_bool(false), AxisValue::of_bool(true)});
  EXPECT_NE(a.fingerprint(), c.fingerprint());

  // And the fingerprint is a pure function of (base, schema).
  GridBuilder d{base};
  d.axis("power_cycled", {AxisValue::of_bool(false), AxisValue::of_bool(true)});
  EXPECT_EQ(c.fingerprint(), d.fingerprint());
}

}  // namespace
}  // namespace msa::campaign
