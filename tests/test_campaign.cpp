// Campaign engine tests: grid construction, aggregation semantics, and —
// the load-bearing property — thread-count invariance: the same grid must
// produce a byte-identical report on 1 worker and on many.
#include "campaign/runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

#include "campaign/grid.h"
#include "campaign/report.h"
#include "defense/presets.h"
#include "util/log.h"

namespace msa::campaign {
namespace {

attack::ScenarioConfig small_base() {
  attack::ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();
  cfg.image_width = 48;
  cfg.image_height = 48;
  return cfg;
}

CampaignOptions make_options(unsigned threads, unsigned trials = 1) {
  CampaignOptions options;
  options.threads = threads;
  options.trials_per_cell = trials;
  return options;
}

/// Canonical label of one axis value on a cell ("<missing>" when the
/// grid did not sweep that axis) — keeps the assertions readable.
std::string coord_label(const CampaignCell& cell, std::string_view axis) {
  const AxisValue* v = cell.coord(axis);
  return v == nullptr ? "<missing>" : v->label();
}

/// 2 defenses x 2 models x 2 delays x 1 scrubber = 8 cells mixing clear
/// successes (baseline) with scrub-defeated scrapes (zero_on_free).
GridBuilder small_grid() {
  GridBuilder grid{small_base()};
  grid.defenses({"baseline", "zero_on_free"})
      .models({"resnet50_pt", "squeezenet_pt"})
      .attack_delays_s({0.0, 5.0})
      .scrubber_rates({0.0});
  return grid;
}

TEST(CampaignGrid, SizeAndDeterministicOrder) {
  const GridBuilder grid = small_grid();
  EXPECT_EQ(grid.size(), 8u);
  const std::vector<CampaignCell> cells = grid.build();
  ASSERT_EQ(cells.size(), 8u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
  }
  // Nested order: defense > model > delay > scrubber (first axis
  // outermost, last fastest).
  EXPECT_EQ(coord_label(cells[0], "defense"), "baseline");
  EXPECT_EQ(coord_label(cells[0], "model"), "resnet50_pt");
  EXPECT_EQ(coord_label(cells[0], "delay_s"), "0");
  EXPECT_EQ(coord_label(cells[1], "delay_s"), "5");
  EXPECT_EQ(coord_label(cells[2], "model"), "squeezenet_pt");
  EXPECT_EQ(coord_label(cells[4], "defense"), "zero_on_free");
  // Axis coordinates are folded into the cell's config.
  EXPECT_EQ(cells[1].config.attack_delay_s, 5.0);
  EXPECT_EQ(cells[2].config.model_name, "squeezenet_pt");
  EXPECT_EQ(cells[4].config.system.sanitize, mem::SanitizePolicy::kZeroOnFree);
}

TEST(CampaignGrid, DefaultBuilderIsOneBaselineCell) {
  const GridBuilder grid{small_base()};
  EXPECT_EQ(grid.size(), 1u);
  const auto cells = grid.build();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(coord_label(cells[0], "defense"), "baseline");
  EXPECT_EQ(coord_label(cells[0], "model"), "resnet50_pt");
}

TEST(CampaignGrid, UnknownNamesThrow) {
  GridBuilder bad_defense{small_base()};
  bad_defense.defenses({"no_such_preset"});
  EXPECT_THROW((void)bad_defense.build(), std::invalid_argument);

  GridBuilder bad_model{small_base()};
  bad_model.models({"alexnet_caffe"});
  EXPECT_THROW((void)bad_model.build(), std::invalid_argument);
}

TEST(CampaignRunner, EmptyGridYieldsEmptyReport) {
  CampaignRunner runner{make_options(2)};
  const SweepReport report = runner.run(std::vector<CampaignCell>{});
  EXPECT_TRUE(report.cells.empty());
  EXPECT_EQ(report.total_trials(), 0u);
  EXPECT_EQ(report.total_full_successes(), 0u);
  EXPECT_EQ(report.total_denials(), 0u);
  // Header-only CSV, no data rows.
  const std::string csv = report.to_csv();
  EXPECT_EQ(csv.find('\n'), csv.size() - 1);
  EXPECT_EQ(report.to_json(),
            "{\"cells\":[],\"totals\":{\"trials\":0,\"full_successes\":0,"
            "\"denials\":0}}");
}

TEST(CampaignRunner, BaselineCellFullySucceeds) {
  GridBuilder grid{small_base()};
  CampaignRunner runner{make_options(1)};
  const SweepReport report = runner.run(grid);
  ASSERT_EQ(report.cells.size(), 1u);
  const CellStats& cell = report.cells[0];
  EXPECT_EQ(cell.trials, 1u);
  EXPECT_EQ(cell.full_successes, 1u);
  EXPECT_EQ(cell.model_identified, 1u);
  EXPECT_EQ(cell.denials, 0u);
  EXPECT_DOUBLE_EQ(cell.mean_pixel_match, 1.0);
  EXPECT_DOUBLE_EQ(cell.success_rate(), 1.0);
}

TEST(CampaignRunner, DenialHeavyGridCountsDenialsNotSuccesses) {
  // Defense presets that block the attack outright: every trial must be
  // recorded as a denial with a reason, and nothing as success.
  GridBuilder grid{small_base()};
  grid.defenses({"dbg_disabled", "dbg_owner_only", "proc_owner_only"})
      .models({"resnet50_pt"});
  CampaignRunner runner{make_options(2, 2)};
  const SweepReport report = runner.run(grid);
  ASSERT_EQ(report.cells.size(), 3u);
  for (const CellStats& cell : report.cells) {
    EXPECT_EQ(cell.trials, 2u) << cell.coords_text();
    EXPECT_EQ(cell.denials, 2u) << cell.coords_text();
    EXPECT_EQ(cell.full_successes, 0u) << cell.coords_text();
    EXPECT_FALSE(cell.first_denial_reason.empty()) << cell.coords_text();
    EXPECT_DOUBLE_EQ(cell.mean_pixel_match, 0.0) << cell.coords_text();
  }
  EXPECT_EQ(report.total_denials(), 6u);
  EXPECT_EQ(report.total_full_successes(), 0u);
}

TEST(CampaignRunner, ReportInvariantUnderThreadCount) {
  // The acceptance-criterion property: same grid + trials => the exact
  // same bytes out, whether one worker runs every cell or eight race
  // over them.
  const GridBuilder grid = small_grid();
  CampaignRunner serial{make_options(1, 2)};
  CampaignRunner parallel{make_options(8, 2)};
  const SweepReport a = serial.run(grid);
  const SweepReport b = parallel.run(grid);
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_EQ(a.to_json(), b.to_json());
  // And re-running the same runner reproduces the same report.
  const SweepReport c = parallel.run(grid);
  EXPECT_EQ(a.to_csv(), c.to_csv());
}

TEST(CampaignRunner, CachedAndUncachedReportsAreByteIdentical) {
  // The PR-3 acceptance property: the shared profile cache may only
  // change cells/second, never a byte of the report — at 1 thread and
  // at 8.
  const GridBuilder grid = small_grid();
  std::string csv[2][2];
  std::string json[2][2];
  for (const bool cache : {false, true}) {
    for (const unsigned threads : {1u, 8u}) {
      CampaignOptions options = make_options(threads, 2);
      options.share_profiles = cache;
      CampaignRunner runner{options};
      const SweepReport report = runner.run(grid);
      csv[cache][threads == 8] = report.to_csv();
      json[cache][threads == 8] = report.to_json();
      // Telemetry reflects the mode: 8 cells x 2 trials = 16 lookups
      // over 2 models x 1 board shape = 2 profile keys.
      if (cache) {
        EXPECT_EQ(report.profile_cache_misses, 2u);
        EXPECT_EQ(report.profile_cache_hits, 14u);
      } else {
        EXPECT_EQ(report.profile_cache_misses, 0u);
        EXPECT_EQ(report.profile_cache_hits, 0u);
      }
    }
  }
  EXPECT_EQ(csv[0][0], csv[0][1]);
  EXPECT_EQ(csv[0][0], csv[1][0]);
  EXPECT_EQ(csv[0][0], csv[1][1]);
  EXPECT_EQ(json[0][0], json[0][1]);
  EXPECT_EQ(json[0][0], json[1][0]);
  EXPECT_EQ(json[0][0], json[1][1]);
}

TEST(CampaignRunner, CacheCountersMatchGridShapeAndPersistAcrossRuns) {
  // 2 defenses share one twin-board shape, so keys = models(2) x
  // dims(1) x shape(1); every later run on the same runner is all-hits
  // (the cache outlives run()), and each miss acquires exactly one
  // board from the pool.
  const GridBuilder grid = small_grid();
  CampaignOptions options = make_options(4, 2);
  CampaignRunner runner{options};

  const SweepReport first = runner.run(grid);
  EXPECT_EQ(first.profile_cache_misses, 2u);
  EXPECT_EQ(first.profile_cache_hits, 14u);
  EXPECT_EQ(first.twin_boards_built + first.twin_boards_reused,
            first.profile_cache_misses);
  EXPECT_GE(first.twin_boards_built, 1u);

  const SweepReport second = runner.run(grid);
  EXPECT_EQ(second.profile_cache_misses, 0u);
  EXPECT_EQ(second.profile_cache_hits, 16u);
  EXPECT_EQ(second.twin_boards_built, 0u);
  EXPECT_EQ(first.to_csv(), second.to_csv());
}

TEST(CampaignRunner, AslrDefensesAddProfileKeysDeterministically) {
  // physical_aslr and heap_va_aslr change the twin-board layout, so a
  // grid spanning them must profile one key per (defense-shape, model):
  // {sequential, randomized, va-aslr} x 1 model = 3 misses, regardless
  // of schedule.
  GridBuilder grid{small_base()};
  grid.defenses({"baseline", "physical_aslr", "heap_va_aslr"})
      .models({"resnet50_pt"})
      .attack_delays_s({0.0, 5.0});
  CampaignRunner runner{make_options(8, 2)};
  const SweepReport report = runner.run(grid);
  EXPECT_EQ(report.profile_cache_misses, 3u);
  EXPECT_EQ(report.profile_cache_hits, 6u * 2u - 3u);
}

TEST(CampaignRunner, TrialZeroMatchesDirectScenarioRun) {
  // A single-trial cell must agree with calling run_scenario directly on
  // the preset-applied config — the campaign adds aggregation, not drift.
  const auto cells = GridBuilder{small_base()}.build();
  ASSERT_EQ(cells.size(), 1u);
  const attack::ScenarioResult direct = attack::run_scenario(cells[0].config);
  const CellStats stats = CampaignRunner::score_cell(cells[0], 1, 0);
  EXPECT_EQ(stats.full_successes, direct.full_success() ? 1u : 0u);
  EXPECT_DOUBLE_EQ(stats.mean_pixel_match, direct.pixel_match);
  EXPECT_DOUBLE_EQ(stats.mean_psnr_db, direct.psnr);
}

TEST(CampaignRunner, TrialsAreReseededIndependently) {
  // With >1 trial the boards differ (different image/system seeds), but
  // the aggregate is still deterministic: two runs agree exactly.
  GridBuilder grid{small_base()};
  CampaignRunner runner{make_options(2, 3)};
  const SweepReport a = runner.run(grid);
  const SweepReport b = runner.run(grid);
  ASSERT_EQ(a.cells.size(), 1u);
  EXPECT_EQ(a.cells[0].trials, 3u);
  EXPECT_EQ(a.to_csv(), b.to_csv());
}

TEST(CampaignRunner, ProgressCallbackCoversEveryCell) {
  const GridBuilder grid = small_grid();
  std::atomic<std::size_t> calls{0};
  std::size_t last_total = 0;
  CampaignOptions options;
  options.threads = 4;
  options.on_cell_done = [&](std::size_t done, std::size_t total) {
    ++calls;
    last_total = total;
    EXPECT_LE(done, total);
  };
  CampaignRunner runner{options};
  (void)runner.run(grid);
  EXPECT_EQ(calls.load(), 8u);
  EXPECT_EQ(last_total, 8u);
}

TEST(CampaignRunner, ThrowingProgressHookAbortsAndRethrows) {
  // A throwing hook must surface from run(), not std::terminate the
  // worker thread.
  const GridBuilder grid = small_grid();
  CampaignOptions options;
  options.threads = 2;
  options.on_cell_done = [](std::size_t, std::size_t) {
    throw std::runtime_error("progress hook failed");
  };
  CampaignRunner runner{options};
  EXPECT_THROW((void)runner.run(grid), std::runtime_error);
}

TEST(CampaignRunner, LogStormFromWorkersStaysWellFormed) {
  // Hammer the (now thread-safe) logger from concurrent sweeps; the
  // capture sink must see only intact messages.
  std::atomic<std::size_t> lines{0};
  util::Log::set_sink([&](util::LogLevel, std::string_view message) {
    if (message == "campaign-log-probe") ++lines;
  });
  util::Log::set_level(util::LogLevel::kInfo);

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < 250; ++i) util::Log::info("campaign-log-probe");
    });
  }
  for (auto& w : writers) w.join();

  util::Log::set_sink(nullptr);
  util::Log::set_level(util::LogLevel::kWarn);
  EXPECT_EQ(lines.load(), 1000u);
}

}  // namespace
}  // namespace msa::campaign
