// Campaign store tests: the durability/resume/sharding contract. The
// load-bearing properties are byte-identity — a resumed or sharded sweep
// must reproduce the uninterrupted single-process report exactly — and
// crash recovery: a torn tail costs only the incomplete cell.
#include "persist/campaign_store.h"

#include <gtest/gtest.h>

#include "persist/manifest.h"

#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <vector>

#include "campaign/grid.h"
#include "campaign/report.h"
#include "campaign/runner.h"

namespace msa::persist {
namespace {

using campaign::CampaignCell;
using campaign::CampaignOptions;
using campaign::CampaignRunner;
using campaign::CellStats;
using campaign::GridBuilder;
using campaign::SweepReport;

std::string tmp_store(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / "msa_store_tests";
  std::filesystem::create_directories(dir);
  const auto path = dir / name;
  std::filesystem::remove(path);
  // A previous run may have compacted this store: clear the levels
  // sidecar and segment files too, or a fresh create refuses the debris.
  persist::remove_segment_files(path.string());
  return path.string();
}

attack::ScenarioConfig small_base() {
  attack::ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();
  cfg.image_width = 48;
  cfg.image_height = 48;
  return cfg;
}

/// 2 defenses x 2 delays x 2 scrubbers = 8 cells mixing successes,
/// scrub-defeated scrapes and denial-free baselines.
GridBuilder small_grid() {
  GridBuilder grid{small_base()};
  grid.defenses({"baseline", "zero_on_free"})
      .attack_delays_s({0.0, 5.0})
      .scrubber_rates({0.0, 512.0 * 1024});
  return grid;
}

CampaignOptions make_options(unsigned threads, unsigned trials = 2) {
  CampaignOptions options;
  options.threads = threads;
  options.trials_per_cell = trials;
  return options;
}

StoreManifest manifest_for(const GridBuilder& grid,
                           const CampaignOptions& options,
                           std::uint32_t shard_index = 0,
                           std::uint32_t shard_count = 1) {
  StoreManifest m;
  m.grid_fingerprint = grid.fingerprint();
  m.grid_cells = grid.full_size();
  m.trials_per_cell = options.trials_per_cell;
  m.trial_salt = options.trial_salt;
  m.shard_index = shard_index;
  m.shard_count = shard_count;
  m.axes = grid.axis_schema();
  return m;
}

TEST(GridShard, PartitionIsDisjointAndComplete) {
  GridBuilder full = small_grid();
  ASSERT_EQ(full.full_size(), 8u);

  std::vector<bool> covered(8, false);
  std::size_t total = 0;
  for (std::uint32_t s = 0; s < 3; ++s) {
    GridBuilder shard = small_grid();
    shard.shard(s, 3);
    const auto cells = shard.build();
    EXPECT_EQ(cells.size(), shard.size());
    EXPECT_EQ(shard.full_size(), 8u);
    for (const CampaignCell& cell : cells) {
      EXPECT_EQ(cell.index % 3, s);
      ASSERT_LT(cell.index, covered.size());
      EXPECT_FALSE(covered[cell.index]) << "cell in two shards";
      covered[cell.index] = true;
    }
    total += cells.size();
  }
  EXPECT_EQ(total, 8u);

  // Shard cells are the same cells as the full build, global indices kept.
  const auto all = full.build();
  GridBuilder s1 = small_grid();
  const auto slice = s1.shard(1, 3).build();
  for (const CampaignCell& cell : slice) {
    EXPECT_EQ(cell.coords, all[cell.index].coords);
  }
}

TEST(GridShard, BadShardArgumentsThrow) {
  GridBuilder grid = small_grid();
  EXPECT_THROW(grid.shard(0, 0), std::invalid_argument);
  EXPECT_THROW(grid.shard(2, 2), std::invalid_argument);
}

TEST(GridShard, FingerprintIsShardInvariantButAxisSensitive) {
  GridBuilder a = small_grid();
  GridBuilder b = small_grid();
  b.shard(1, 4);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  GridBuilder c = small_grid();
  c.attack_delays_s({0.0, 6.0});
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(CampaignStore, RoundTripMatchesInMemoryReport) {
  const GridBuilder grid = small_grid();
  const CampaignOptions options = make_options(2);
  CampaignRunner runner{options};
  const SweepReport in_memory = runner.run(grid);

  const std::string path = tmp_store("roundtrip.store");
  {
    CampaignStore store{path, manifest_for(grid, options),
                        CampaignStore::Mode::kCreate};
    const SweepReport stored = runner.run(grid, store);
    EXPECT_EQ(stored.to_csv(), in_memory.to_csv());
    EXPECT_EQ(store.completed_count(), 8u);
  }

  // Reload from disk alone: byte-identical CSV and JSON.
  const SweepReport reloaded = merge_stores({path});
  EXPECT_EQ(reloaded.to_csv(), in_memory.to_csv());
  EXPECT_EQ(reloaded.to_json(), in_memory.to_json());
}

TEST(CampaignStore, TrialStreamReconstructsCellAggregates) {
  const GridBuilder grid = small_grid();
  const CampaignOptions options = make_options(4, 3);
  const std::string path = tmp_store("trialstream.store");
  {
    CampaignRunner runner{options};
    CampaignStore store{path, manifest_for(grid, options),
                        CampaignStore::Mode::kCreate};
    (void)runner.run(grid, store);
  }

  const StoreContents contents = read_store(path);
  EXPECT_FALSE(contents.truncated_tail);
  ASSERT_EQ(contents.cells.size(), 8u);
  ASSERT_EQ(contents.trials.size(), 8u * 3u);

  // Re-accumulate the per-trial stream; it must land on the exact stored
  // aggregates (same doubles bit for bit, since both sides ran the same
  // accumulation in trial order).
  for (const CellStats& cell : contents.cells) {
    CellStats rebuilt;
    rebuilt.index = cell.index;
    rebuilt.coords = cell.coords;
    for (const TrialRecord& t : contents.trials) {
      if (t.cell_index != cell.index) continue;
      attack::ScenarioResult result;
      result.denied = t.denied;
      result.denial_reason = t.denial_reason;
      result.model_identified_correctly = t.model_identified;
      result.pixel_match = t.pixel_match;
      result.psnr = t.psnr;
      result.descriptor_pixel_match = t.descriptor_pixel_match;
      rebuilt.accumulate(result);
    }
    rebuilt.finalize();
    EXPECT_EQ(rebuilt.trials, cell.trials);
    EXPECT_EQ(rebuilt.full_successes, cell.full_successes);
    EXPECT_EQ(rebuilt.model_identified, cell.model_identified);
    EXPECT_EQ(rebuilt.denials, cell.denials);
    EXPECT_EQ(rebuilt.first_denial_reason, cell.first_denial_reason);
    EXPECT_EQ(rebuilt.mean_pixel_match, cell.mean_pixel_match);
    EXPECT_EQ(rebuilt.mean_psnr_db, cell.mean_psnr_db);
    EXPECT_EQ(rebuilt.mean_descriptor_pixel_match,
              cell.mean_descriptor_pixel_match);
  }
}

TEST(CampaignStore, InterruptedSweepResumesByteIdentical) {
  // The acceptance criterion: interrupt after K cells, reopen, finish —
  // the final report matches an uninterrupted run at any thread count.
  const GridBuilder grid = small_grid();
  const CampaignOptions options = make_options(1, 2);
  CampaignRunner uninterrupted{make_options(4, 2)};
  const SweepReport golden = uninterrupted.run(grid);

  const std::string path = tmp_store("resume.store");
  {
    CampaignRunner runner{options};
    CampaignStore store{path, manifest_for(grid, options),
                        CampaignStore::Mode::kCreate};
    (void)runner.run(grid, store, /*max_new_cells=*/3);  // "crash" here
    EXPECT_EQ(store.completed_count(), 3u);
  }

  std::size_t resumed_total = 0;
  CampaignOptions resume_options = make_options(4, 2);
  resume_options.on_cell_done = [&](std::size_t, std::size_t total) {
    resumed_total = total;
  };
  CampaignRunner resumer{resume_options};
  CampaignStore store{path, manifest_for(grid, resume_options),
                      CampaignStore::Mode::kResume};
  const SweepReport finished = resumer.run(grid, store);
  EXPECT_EQ(resumed_total, 5u);  // only the cells the "crash" lost
  EXPECT_EQ(store.completed_count(), 8u);
  EXPECT_EQ(finished.to_csv(), golden.to_csv());
  EXPECT_EQ(finished.to_json(), golden.to_json());
}

TEST(CampaignStore, TornTailRedoesOnlyIncompleteCell) {
  const GridBuilder grid = small_grid();
  const CampaignOptions options = make_options(1, 2);
  CampaignRunner runner{options};
  const SweepReport golden = runner.run(grid);

  const std::string path = tmp_store("torntail.store");
  {
    CampaignStore store{path, manifest_for(grid, options),
                        CampaignStore::Mode::kCreate};
    (void)runner.run(grid, store);
  }
  // Tear the tail: with one worker the file ends with the last cell's
  // completion record, so this reverts exactly one cell to "incomplete".
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);

  std::size_t redone = 0;
  CampaignOptions resume_options = make_options(2, 2);
  resume_options.on_cell_done = [&](std::size_t, std::size_t total) {
    redone = total;
  };
  CampaignRunner resumer{resume_options};
  CampaignStore store{path, manifest_for(grid, resume_options),
                      CampaignStore::Mode::kResume};
  EXPECT_EQ(store.completed_count(), 7u);
  const SweepReport finished = resumer.run(grid, store);
  EXPECT_EQ(redone, 1u);
  EXPECT_EQ(finished.to_csv(), golden.to_csv());
}

TEST(CampaignStore, ManifestMismatchAndModeErrors) {
  const GridBuilder grid = small_grid();
  const CampaignOptions options = make_options(1, 2);
  const std::string path = tmp_store("mismatch.store");
  {
    CampaignStore store{path, manifest_for(grid, options),
                        CampaignStore::Mode::kCreate};
  }

  // Same path, different trial count: a different sweep.
  EXPECT_THROW((CampaignStore{path, manifest_for(grid, make_options(1, 3)),
                              CampaignStore::Mode::kResume}),
               std::runtime_error);
  // Different grid axes: different fingerprint.
  GridBuilder other = small_grid();
  other.defenses({"baseline"});
  EXPECT_THROW((CampaignStore{path, manifest_for(other, options),
                              CampaignStore::Mode::kResume}),
               std::runtime_error);
  // kCreate refuses to clobber, kResume refuses to invent.
  EXPECT_THROW((CampaignStore{path, manifest_for(grid, options),
                              CampaignStore::Mode::kCreate}),
               std::runtime_error);
  EXPECT_THROW((CampaignStore{tmp_store("absent.store"),
                              manifest_for(grid, options),
                              CampaignStore::Mode::kResume}),
               std::runtime_error);

  // A runner whose trials/salt disagree with the store must refuse.
  CampaignStore store{path, manifest_for(grid, options),
                      CampaignStore::Mode::kResume};
  CampaignRunner wrong_trials{make_options(1, 3)};
  EXPECT_THROW((void)wrong_trials.run(grid, store), std::invalid_argument);
}

TEST(CampaignStore, CreateOrResumeTakesBothBranches) {
  const GridBuilder grid = small_grid();
  const CampaignOptions options = make_options(1, 1);
  const std::string path = tmp_store("createorresume.store");

  // File absent: behaves like kCreate.
  {
    CampaignRunner runner{options};
    CampaignStore store{path, manifest_for(grid, options),
                        CampaignStore::Mode::kCreateOrResume};
    (void)runner.run(grid, store, /*max_new_cells=*/2);
    EXPECT_EQ(store.completed_count(), 2u);
  }
  // File present: behaves like kResume — completed cells survive, and a
  // mismatched manifest is still rejected.
  {
    CampaignStore store{path, manifest_for(grid, options),
                        CampaignStore::Mode::kCreateOrResume};
    EXPECT_EQ(store.completed_count(), 2u);
  }
  EXPECT_THROW((CampaignStore{path, manifest_for(grid, make_options(1, 5)),
                              CampaignStore::Mode::kCreateOrResume}),
               std::runtime_error);
}

TEST(CampaignStore, WrongShardCellsRejected) {
  const GridBuilder grid = small_grid();
  const CampaignOptions options = make_options(1, 1);
  const std::string path = tmp_store("wrongshard.store");
  CampaignStore store{path, manifest_for(grid, options, /*shard_index=*/1,
                                         /*shard_count=*/2),
                      CampaignStore::Mode::kCreate};
  GridBuilder shard0 = small_grid();
  shard0.shard(0, 2);
  CampaignRunner runner{options};
  EXPECT_THROW((void)runner.run(shard0, store), std::invalid_argument);
}

TEST(CampaignStore, ShardedSweepMergesToSingleProcessReport) {
  const GridBuilder grid = small_grid();
  const CampaignOptions options = make_options(2, 2);
  CampaignRunner single{make_options(4, 2)};
  const SweepReport golden = single.run(grid);

  std::vector<std::string> paths;
  for (std::uint32_t s = 0; s < 2; ++s) {
    GridBuilder shard = small_grid();
    shard.shard(s, 2);
    const std::string path =
        tmp_store((std::string{"shard"} + std::to_string(s) + ".store").c_str());
    CampaignRunner runner{options};
    CampaignStore store{path, manifest_for(shard, options, s, 2),
                        CampaignStore::Mode::kCreate};
    (void)runner.run(shard, store);
    paths.push_back(path);
  }

  const SweepReport merged = merge_stores(paths);
  EXPECT_EQ(merged.to_csv(), golden.to_csv());
  EXPECT_EQ(merged.to_json(), golden.to_json());

  // Merge order must not matter: report is reassembled in grid order.
  const SweepReport reversed = merge_stores({paths[1], paths[0]});
  EXPECT_EQ(reversed.to_csv(), golden.to_csv());
}

TEST(CampaignStore, FsyncBatchingChangesNoBytes) {
  // fsync is a durability knob, not a format knob: a store written with
  // --fsync-every 1 is byte-identical to the default flush-only store.
  // One worker thread: the trial-record interleaving (not the report) is
  // schedule-dependent at higher thread counts.
  const GridBuilder grid = small_grid();
  const CampaignOptions options = make_options(1, 2);
  const std::string plain = tmp_store("fsync_off.store");
  const std::string synced = tmp_store("fsync_on.store");
  {
    CampaignRunner runner{options};
    CampaignStore store{plain, manifest_for(grid, options),
                        CampaignStore::Mode::kCreate};
    (void)runner.run(grid, store);
  }
  {
    CampaignRunner runner{options};
    StoreOptions durability;
    durability.fsync_every = 1;
    CampaignStore store{synced, manifest_for(grid, options),
                        CampaignStore::Mode::kCreate, durability};
    (void)runner.run(grid, store);
    store.sync();  // the explicit final sync point is also byte-neutral
  }
  std::ifstream a{plain, std::ios::binary};
  std::ifstream b{synced, std::ios::binary};
  const std::string bytes_a{std::istreambuf_iterator<char>{a}, {}};
  const std::string bytes_b{std::istreambuf_iterator<char>{b}, {}};
  EXPECT_EQ(bytes_a, bytes_b);
}

TEST(CampaignStore, CompactionDropsSupersededRecords) {
  // A resume leaves duplicate trial records behind (the interrupted
  // cell's trials are re-streamed); compaction removes them without
  // changing what any reader sees.
  const GridBuilder grid = small_grid();
  const CampaignOptions options = make_options(1, 2);
  CampaignRunner runner{options};
  const SweepReport golden = runner.run(grid);

  const std::string path = tmp_store("compact.store");
  {
    CampaignStore store{path, manifest_for(grid, options),
                        CampaignStore::Mode::kCreate};
    (void)runner.run(grid, store);
  }
  // Tear the final cell record: its trials stay behind as duplicates
  // once the resume re-runs the cell.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 5);
  {
    CampaignRunner resumer{options};
    CampaignStore store{path, manifest_for(grid, options),
                        CampaignStore::Mode::kResume};
    (void)resumer.run(grid, store);
  }
  const StoreContents before = read_store(path);
  ASSERT_EQ(before.cells.size(), 8u);

  const CompactionResult result = compact_store(path);
  EXPECT_GT(result.trials_dropped, 0u);  // the re-streamed duplicates
  EXPECT_EQ(result.cells_dropped, 0u);   // every cell completed once
  // (bytes_after vs bytes_before is asserted at scale in test_segment:
  // on a tiny 8-cell store the segment index/footer can outweigh the
  // dropped duplicates.)
  EXPECT_EQ(result.segments_written, 1u);
  EXPECT_EQ(result.segments_live, 1u);
  EXPECT_EQ(read_store(path).format, kSegmentedStoreFormat);

  // Identical view after compaction, and still a valid mergeable store.
  const StoreContents after = read_store(path);
  EXPECT_FALSE(after.truncated_tail);
  ASSERT_EQ(after.cells.size(), before.cells.size());
  ASSERT_EQ(after.trials.size(), before.trials.size());
  const SweepReport merged = merge_stores({path});
  EXPECT_EQ(merged.to_csv(), golden.to_csv());
  EXPECT_EQ(merged.to_json(), golden.to_json());

  // Re-compacting a compact store is a no-op.
  const CompactionResult again = compact_store(path);
  EXPECT_EQ(again.trials_dropped, 0u);
  EXPECT_EQ(again.bytes_after, again.bytes_before);
}

TEST(CampaignStore, CompactionDropsOrphanTrialsAndTornTail) {
  // A sweep killed mid-cell leaves that cell's already-streamed trials
  // behind with no completion record — orphans a future resume will
  // supersede. Compaction drops them (and the torn tail) now, and the
  // compacted store still resumes to the golden report.
  const GridBuilder grid = small_grid();
  const CampaignOptions options = make_options(1, 2);
  const std::string path = tmp_store("compact_orphans.store");
  {
    CampaignRunner runner{options};
    CampaignStore store{path, manifest_for(grid, options),
                        CampaignStore::Mode::kCreate};
    (void)runner.run(grid, store);
  }
  // Tear the last cell's completion record mid-frame: its trials become
  // orphans and the file ends in garbage.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 5);
  ASSERT_TRUE(read_store(path).truncated_tail);

  const CompactionResult result = compact_store(path);
  EXPECT_EQ(result.cells_dropped, 0u);
  EXPECT_EQ(result.trials_dropped, 2u);  // the incomplete cell's 2 trials
  const StoreContents after = read_store(path);
  EXPECT_FALSE(after.truncated_tail);
  EXPECT_EQ(after.cells.size(), 7u);
  EXPECT_EQ(after.trials.size(), 14u);  // only completed cells' trials

  // The compacted store still resumes to the full golden report.
  CampaignRunner resumer{options};
  const SweepReport golden = resumer.run(grid);
  CampaignStore store{path, manifest_for(grid, options),
                      CampaignStore::Mode::kResume};
  const SweepReport finished = resumer.run(grid, store);
  EXPECT_EQ(finished.to_csv(), golden.to_csv());
}

TEST(CampaignStore, LoadSweepDeduplicatesIdenticalCopiesOnly) {
  const GridBuilder grid = small_grid();
  const CampaignOptions options = make_options(1, 1);
  // Two "workers" that both completed the same cells — the lease-race
  // shape. Deterministic trials make the copies bit-identical.
  const std::string a = tmp_store("dup_a.store");
  const std::string b = tmp_store("dup_b.store");
  for (const std::string& path : {a, b}) {
    CampaignRunner runner{options};
    CampaignStore store{path, manifest_for(grid, options),
                        CampaignStore::Mode::kCreate};
    (void)runner.run(grid, store);
  }

  const SweepData data = load_sweep({a, b});
  EXPECT_EQ(data.cells.size(), 8u);
  EXPECT_EQ(data.duplicate_cells, 8u);
  EXPECT_EQ(data.duplicate_trials, 8u);
  const SweepReport merged = merge_worker_stores({a, b});
  CampaignRunner runner{options};
  EXPECT_EQ(merged.to_csv(), runner.run(grid).to_csv());

  // Conflicting bytes for the same key are corruption, never tolerated.
  const std::string c = tmp_store("dup_c.store");
  {
    CampaignStore store{c, manifest_for(grid, options),
                        CampaignStore::Mode::kCreate};
    // Hand-write a conflicting completed cell for index 0.
    CellStats fake;
    fake.index = 0;
    fake.coords = {{"defense", campaign::AxisValue::of_string("baseline")},
                   {"model", campaign::AxisValue::of_string("resnet50_pt")}};
    fake.trials = 1;
    fake.mean_psnr_db = -1.0;  // cannot match the real cell
    store.complete_cell(fake);
  }
  EXPECT_THROW((void)load_sweep({a, c}), std::runtime_error);
  // Strict shard-merge still rejects duplicates outright.
  EXPECT_THROW((void)merge_stores({a, b}), std::runtime_error);
}

TEST(CampaignStore, MergeRejectsDuplicateAndIncompleteShards) {
  const GridBuilder grid = small_grid();
  const CampaignOptions options = make_options(2, 1);
  GridBuilder shard0 = small_grid();
  shard0.shard(0, 2);
  const std::string path = tmp_store("lonely.store");
  {
    CampaignRunner runner{options};
    CampaignStore store{path, manifest_for(shard0, options, 0, 2),
                        CampaignStore::Mode::kCreate};
    (void)runner.run(shard0, store);
  }
  // Half the grid missing.
  EXPECT_THROW((void)merge_stores({path}), std::runtime_error);
  // Same shard twice.
  EXPECT_THROW((void)merge_stores({path, path}), std::runtime_error);
  EXPECT_THROW((void)merge_stores({}), std::runtime_error);
}

}  // namespace
}  // namespace msa::persist
