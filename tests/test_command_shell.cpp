#include "attack/command_shell.h"

#include <gtest/gtest.h>

#include "util/strings.h"
#include "vitis/runtime.h"

namespace msa::attack {
namespace {

struct Fixture {
  os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
  vitis::VitisAiRuntime runtime{sys};
  dbg::SystemDebugger dbg{sys, 1001};
  CommandShell shell{dbg};
  os::Pid victim = 0;

  Fixture() {
    sys.add_user(1000, "victim");
    sys.add_user(1001, "attacker");
    const vitis::VictimRun run = runtime.launch(
        1000, "resnet50_pt", img::make_test_image(48, 48, 9), "pts/1");
    victim = run.pid;
  }
};

TEST(CommandShell, EmptyLineIsSilent) {
  Fixture f;
  EXPECT_EQ(f.shell.execute(""), "");
  EXPECT_EQ(f.shell.execute("   "), "");
}

TEST(CommandShell, UnknownCommandIsError) {
  Fixture f;
  EXPECT_EQ(f.shell.execute("frobnicate").substr(0, 6), "error:");
}

TEST(CommandShell, HelpListsCommands) {
  Fixture f;
  const std::string help = f.shell.execute("help");
  for (const char* cmd : {"ps", "maps", "v2p", "devmem", "scrape", "grep",
                          "strings", "identify"}) {
    EXPECT_NE(help.find(cmd), std::string::npos) << cmd;
  }
}

TEST(CommandShell, PsShowsVictim) {
  Fixture f;
  EXPECT_NE(f.shell.execute("ps").find("resnet50_pt"), std::string::npos);
}

TEST(CommandShell, MapsRequiresValidPid) {
  Fixture f;
  EXPECT_EQ(f.shell.execute("maps").substr(0, 6), "error:");
  EXPECT_EQ(f.shell.execute("maps abc").substr(0, 6), "error:");
  EXPECT_EQ(f.shell.execute("maps 99999").substr(0, 6), "error:");
  EXPECT_NE(f.shell.execute("maps " + std::to_string(f.victim)).find("[heap]"),
            std::string::npos);
}

TEST(CommandShell, V2pTranslates) {
  Fixture f;
  const mem::VirtAddr heap = f.sys.process(f.victim).heap_base();
  const std::string out = f.shell.execute(
      "v2p " + std::to_string(f.victim) + " " + util::hex_0x(heap));
  EXPECT_EQ(out.substr(0, 2), "0x");
  EXPECT_EQ(util::parse_hex(out),
            *f.sys.process(f.victim).page_table().translate(heap));
  // Unmapped page:
  EXPECT_EQ(f.shell
                .execute("v2p " + std::to_string(f.victim) + " 0xdead0000")
                .substr(0, 6),
            "error:");
}

TEST(CommandShell, DevmemReadsPhysical) {
  Fixture f;
  f.sys.devmem_write32(0x4000, 0xF7F5F8FD);
  EXPECT_EQ(f.shell.execute("devmem 0x4000"), "0xf7f5f8fd");
  EXPECT_EQ(f.shell.execute("devmem zzz").substr(0, 6), "error:");
}

TEST(CommandShell, FullScriptedAttack) {
  Fixture f;
  const std::string scrape_out =
      f.shell.execute("scrape " + std::to_string(f.victim));
  EXPECT_NE(scrape_out.find("scraped"), std::string::npos);
  ASSERT_TRUE(f.shell.dump().has_value());

  f.sys.terminate(f.victim);

  const std::string grep_out = f.shell.execute("grep resnet50");
  EXPECT_NE(grep_out.find("matching rows"), std::string::npos);

  const std::string id_out = f.shell.execute("identify");
  EXPECT_NE(id_out.find("=> resnet50_pt"), std::string::npos);
  EXPECT_NE(id_out.find("deep:"), std::string::npos);

  const std::string strings_out = f.shell.execute("strings 10");
  EXPECT_NE(strings_out.find("vitis_ai_library"), std::string::npos);
}

TEST(CommandShell, AnalysisBeforeScrapeIsError) {
  Fixture f;
  EXPECT_EQ(f.shell.execute("grep x").substr(0, 6), "error:");
  EXPECT_EQ(f.shell.execute("identify").substr(0, 6), "error:");
  EXPECT_EQ(f.shell.execute("strings").substr(0, 6), "error:");
}

TEST(CommandShell, GrepMissSaysSo) {
  Fixture f;
  (void)f.shell.execute("scrape " + std::to_string(f.victim));
  EXPECT_EQ(f.shell.execute("grep qqqqqqq"), "(no matches)");
}

TEST(CommandShell, DenialsSurfaceAsErrors) {
  Fixture f;
  dbg::SystemDebugger locked{f.sys, 1001,
                             dbg::DebuggerAcl{dbg::AclMode::kOwnerOnly}};
  CommandShell shell{locked};
  EXPECT_EQ(shell.execute("maps " + std::to_string(f.victim)).substr(0, 6),
            "error:");
  EXPECT_EQ(shell.execute("devmem 0x1000").substr(0, 6), "error:");
}

}  // namespace
}  // namespace msa::attack
